(* ocgra — command-line front door to the framework.

     ocgra list                         kernels and mappers
     ocgra arch --rows 4 --cols 4       describe an array
     ocgra map -k fir4 -m modulo-greedy describe a mapping
     ocgra sim -k fir4 -m sat           map, simulate, verify
     ocgra table1                       the survey's Table I (corpus)
     ocgra timeline                     the survey's Fig. 4            *)

open Cmdliner

let mk_cgra rows cols topology hetero faults fault_seed =
  let topology = Ocgra_arch.Topology.of_string topology in
  let cgra =
    if hetero then Ocgra_arch.Cgra.adres_like ~topology ~rows ~cols ()
    else Ocgra_arch.Cgra.uniform ~topology ~rows ~cols ()
  in
  if faults = 0 then cgra
  else Ocgra_arch.Cgra.with_faults cgra (Ocgra_arch.Cgra.inject_faults cgra ~seed:fault_seed ~n:faults)

let rows_t = Arg.(value & opt int 4 & info [ "rows" ] ~doc:"Array rows.")
let cols_t = Arg.(value & opt int 4 & info [ "cols" ] ~doc:"Array columns.")

let topo_t =
  Arg.(value & opt string "mesh" & info [ "topology" ] ~doc:"mesh|torus|diagonal|one-hop|full.")

let hetero_t =
  Arg.(value & flag & info [ "hetero" ] ~doc:"ADRES-like heterogeneous array.")

let kernel_t =
  Arg.(value & opt string "dot-product" & info [ "k"; "kernel" ] ~doc:"Kernel name.")

let mapper_t =
  Arg.(
    value
    & opt string "modulo-greedy"
    & info [ "m"; "mapper" ]
        ~doc:
          "Mapper name (see $(b,list)); also accepts the off-table extras $(b,constructive) \
           and $(b,sat-cold), the cold-per-II baseline of the incremental SAT sweep.")

let seed_t = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")

let spatial_t = Arg.(value & flag & info [ "spatial" ] ~doc:"Spatial (II=1) problem.")

let faults_t =
  Arg.(value & opt int 0 & info [ "faults" ] ~doc:"Inject $(docv) random resource faults.")

let fault_seed_t =
  Arg.(value & opt int 1 & info [ "fault-seed" ] ~doc:"Seed for fault injection.")

let deadline_t =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~doc:"Wall-clock mapping budget in seconds.")

let fallback_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "fallback" ]
        ~doc:"Comma-separated fallback chain of mappers (overrides $(b,-m)), tried in order.")

let jobs_t =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ]
        ~doc:
          "Worker domains: with $(b,--fallback), race the tiers concurrently (first validated \
           success wins and cancels the rest); with $(b,--campaign), shard the trials.  0 = all \
           cores (or \\$OCGRA_JOBS).")

let resolve_jobs j = if j <= 0 then Ocgra_par.Pool.default_workers () else j

let harden_t =
  Arg.(
    value & opt string "none"
    & info [ "harden" ] ~doc:"Hardening transform applied before mapping: none|dmr|tmr.")

let campaign_t =
  Arg.(
    value & opt int 0
    & info [ "campaign" ]
        ~doc:"Run a Monte-Carlo reliability campaign of $(docv) fault-injection trials.")

let fault_rate_t =
  Arg.(
    value & opt float 0.002
    & info [ "fault-rate" ]
        ~doc:"Transient-event probability per PE per cycle during the campaign.")

let retries_t =
  Arg.(
    value & opt int 2
    & info [ "retries" ]
        ~doc:
          "Bounded retry budget: seed-varied tries per fallback tier, and supervised re-runs of a \
           raising campaign trial (seeded exponential backoff + jitter between tries).")

let chaos_t =
  Arg.(
    value & opt float 0.0
    & info [ "chaos" ]
        ~doc:
          "Chaos injection: kill each campaign trial try with probability $(docv) (seeded from \
           $(b,--fault-seed), so the fault pattern is reproducible).  Killed tries are retried up \
           to $(b,--retries) times; a trial that keeps dying is quarantined, never fatal.")

let checkpoint_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:
          "Journal every completed campaign trial to $(docv) (append-only JSON lines, fsync'd in \
           batches) so a killed campaign can be resumed.")

let resume_t =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Replay the $(b,--checkpoint) journal before running: completed trials are skipped and \
           the final report is byte-identical to an uninterrupted run.")

let repair_t =
  Arg.(
    value & opt int 0
    & info [ "repair" ]
        ~doc:
          "After mapping, degrade the array to $(docv) more faults (same $(b,--fault-seed) \
           sequence, so the new mask contains the old one) and salvage the mapping through the \
           certified repair ladder instead of remapping cold.")

let survivor_t =
  Arg.(
    value & opt int 0
    & info [ "survivor" ]
        ~doc:
          "Survivor campaign: walk $(docv) escalating seeded permanent faults, at each step \
           repairing the previous mapping through the certified ladder and replaying it on the \
           simulator; reports the II-degradation curve, repair-vs-scratch time ratio and the \
           certified failure point.")

let chain_of mapper fallback =
  match fallback with
  | Some spec -> Ocgra_mappers.Registry.chain_of_spec spec
  | None -> [ Ocgra_mappers.Registry.find mapper ]

let trace_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write a Chrome trace-event JSON of the run to $(docv) (chrome://tracing).")

let metrics_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write the run's counters to $(docv): a flat JSON object when the path ends in .json, \
           $(b,key=value) lines otherwise.  Dumps are name-sorted with integer values only, so \
           two runs that did the same work are byte-identical.")

let events_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "events" ] ~docv:"FILE"
        ~doc:
          "Write the run's structured event log to $(docv) as JSON lines (one object per line): \
           per-II SAT convergence, repair-ladder rungs, harness tier verdicts, campaign trial \
           outcomes.  Events carry no wall-clock payloads, so for a fixed seed the log is \
           byte-identical across worker counts.")

(* The observability context is live exactly when at least one output
   file was asked for; with no flag the whole stack sees [Ctx.off] and
   pays one branch per instrumented site. *)
let mk_obs trace metrics events =
  match (trace, metrics, events) with
  | None, None, None -> Ocgra_obs.Ctx.off
  | _ ->
      Ocgra_obs.Ctx.v
        ~trace:(if trace <> None then Ocgra_obs.Trace.create () else Ocgra_obs.Trace.off)
        ~metrics:(if metrics <> None then Ocgra_obs.Metrics.create () else Ocgra_obs.Metrics.off)
        ~events:(if events <> None then Ocgra_obs.Events.create () else Ocgra_obs.Events.off)
        ()

let write_obs obs trace metrics events =
  Option.iter (Ocgra_obs.Export.write_chrome_trace (Ocgra_obs.Ctx.trace obs)) trace;
  Option.iter
    (Ocgra_obs.Export.write_metrics ~hists:(Ocgra_obs.Ctx.hists obs) (Ocgra_obs.Ctx.metrics obs))
    metrics;
  Option.iter (Ocgra_obs.Export.write_events (Ocgra_obs.Ctx.events obs)) events

(* Map through the fallback harness when a chain is given, else through
   the single named mapper; both paths validate the result.  With
   [jobs] > 1 the chain is raced across domains instead of walked in
   order — same validated answer contract, min-over-tiers latency. *)
let run_mapper ?(obs = Ocgra_obs.Ctx.off) ?(retries = 2) mapper fallback seed deadline jobs p =
  match fallback with
  | Some spec ->
      let chain = Ocgra_mappers.Registry.chain_of_spec spec in
      let workers = resolve_jobs jobs in
      if workers > 1 then
        Ocgra_core.Mapper.Harness.race ~seed ?deadline_s:deadline ~workers ~obs chain p
      else Ocgra_core.Mapper.Harness.run ~seed ?deadline_s:deadline ~retries ~obs chain p
  | None ->
      Ocgra_core.Mapper.run (Ocgra_mappers.Registry.find mapper) ~seed ?deadline_s:deadline ~obs p

let list_cmd =
  let run () =
    print_endline "kernels:";
    List.iter
      (fun (k : Ocgra_workloads.Kernels.t) -> Printf.printf "  %-14s %s\n" k.name k.description)
      (Ocgra_workloads.Kernels.all ());
    print_endline "\nmappers (scope / technique):";
    List.iter
      (fun (m : Ocgra_core.Mapper.t) ->
        Printf.printf "  %-18s %-18s %-24s %s\n" m.name
          (Ocgra_core.Taxonomy.scope_to_string m.scope)
          (Ocgra_core.Taxonomy.approach_to_string m.approach)
          m.citation)
      Ocgra_mappers.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List kernels and mappers") Term.(const run $ const ())

let arch_cmd =
  let run rows cols topo hetero faults fault_seed =
    print_string (Ocgra_arch.Cgra.describe (mk_cgra rows cols topo hetero faults fault_seed))
  in
  Cmd.v (Cmd.info "arch" ~doc:"Describe a CGRA instance")
    Term.(const run $ rows_t $ cols_t $ topo_t $ hetero_t $ faults_t $ fault_seed_t)

let problem_of kernel spatial cgra =
  let k = Ocgra_workloads.Kernels.find kernel in
  let p =
    if spatial then Ocgra_core.Problem.spatial ~init:k.init ~dfg:k.dfg ~cgra ()
    else Ocgra_core.Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra ()
  in
  (k, p)

let map_cmd =
  let run kernel mapper rows cols topo hetero seed spatial faults fault_seed deadline fallback
      retries repair jobs trace metrics events =
    let cgra = mk_cgra rows cols topo hetero faults fault_seed in
    let k, p = problem_of kernel spatial cgra in
    Printf.printf "%s\n" (Ocgra_core.Problem.describe p);
    let obs = mk_obs trace metrics events in
    let o = run_mapper ~obs ~retries mapper fallback seed deadline jobs p in
    (match o.mapping with
    | None -> Printf.printf "mapping failed after %d attempts (%s)\n" o.attempts o.note
    | Some mapping ->
        let cost = Ocgra_core.Cost.of_mapping p mapping in
        Printf.printf "mapped: %s%s in %.2fs (%d attempts; %s)\n"
          (Ocgra_core.Cost.to_string cost)
          (if o.proven_optimal then ", II optimal" else "")
          o.elapsed_s o.attempts o.note;
        print_string (Ocgra_core.Mapping.to_grid mapping k.dfg cgra));
    if o.trail <> [] then begin
      Printf.printf "tiers:\n";
      List.iter
        (fun r -> Printf.printf "  %s\n" (Ocgra_core.Mapper.report_to_string r))
        o.trail
    end;
    (* --repair: degrade the same fabric further (the seeded draw is
       sequential, so the escalated mask contains the original one) and
       salvage the mapping we just printed through the ladder *)
    (match (o.mapping, repair > 0) with
    | Some mapping, true ->
        let base = mk_cgra rows cols topo hetero 0 fault_seed in
        let mask = Ocgra_arch.Cgra.inject_faults base ~seed:fault_seed ~n:(faults + repair) in
        let cgra' = Ocgra_arch.Cgra.with_faults base mask in
        let p' = { p with Ocgra_core.Problem.cgra = cgra' } in
        Printf.printf "repair: degrading to %s\n" (Ocgra_arch.Fault.list_to_string mask);
        let r =
          Ocgra_core.Repair.repair ~seed
            ~deadline:(Ocgra_core.Deadline.of_seconds deadline)
            ~obs
            ~fallback:(chain_of mapper fallback)
            ~workers:(resolve_jobs jobs) p' mapping
        in
        Printf.printf "diagnosis: %s\n"
          (Ocgra_core.Repair.diagnosis_to_string r.Ocgra_core.Repair.diagnosis);
        (match r.Ocgra_core.Repair.mapping with
        | Some m' ->
            Printf.printf "repaired: %s in %.3fs (%s)\n"
              (Ocgra_core.Cost.to_string (Ocgra_core.Cost.of_mapping p' m'))
              r.Ocgra_core.Repair.elapsed_s r.Ocgra_core.Repair.note;
            print_string (Ocgra_core.Mapping.to_grid m' k.dfg cgra')
        | None -> Printf.printf "repair failed: %s\n" r.Ocgra_core.Repair.note);
        Printf.printf "rungs:\n";
        List.iter
          (fun tr -> Printf.printf "  %s\n" (Ocgra_core.Mapper.report_to_string tr))
          r.Ocgra_core.Repair.trail
    | _ -> ());
    write_obs obs trace metrics events
  in
  Cmd.v (Cmd.info "map" ~doc:"Map a kernel with a mapper")
    Term.(
      const run $ kernel_t $ mapper_t $ rows_t $ cols_t $ topo_t $ hetero_t $ seed_t $ spatial_t
      $ faults_t $ fault_seed_t $ deadline_t $ fallback_t $ retries_t $ repair_t $ jobs_t
      $ trace_t $ metrics_t $ events_t)

let sim_cmd =
  let run kernel mapper rows cols topo hetero seed iters faults fault_seed deadline fallback harden
      campaign fault_rate retries chaos checkpoint resume survivor jobs trace metrics events =
    let obs = mk_obs trace metrics events in
    let cgra = mk_cgra rows cols topo hetero faults fault_seed in
    if faults > 0 then
      Printf.printf "faults: %s\n"
        (Ocgra_arch.Fault.list_to_string (Ocgra_arch.Cgra.faults cgra));
    let k, p_base = problem_of kernel false cgra in
    let mode = Ocgra_dfg.Harden.mode_of_string harden in
    (* hardening is a DFG-level rewrite: the mapper sees an ordinary
       (if larger) problem; init values follow the replicas via the
       origin map *)
    let hdfg, origin = Ocgra_dfg.Harden.apply mode k.dfg in
    let p =
      if mode = Ocgra_dfg.Harden.No_harden then p_base
      else Ocgra_core.Problem.temporal ~init:(fun v -> k.init (origin v)) ~dfg:hdfg ~cgra ()
    in
    if mode <> Ocgra_dfg.Harden.No_harden then
      Printf.printf "hardening: %s (%d -> %d ops)\n"
        (Ocgra_dfg.Harden.mode_to_string mode)
        (Ocgra_dfg.Dfg.node_count k.dfg)
        (Ocgra_dfg.Dfg.node_count hdfg);
    let o = run_mapper ~obs ~retries mapper fallback seed deadline jobs p in
    (match o.mapping with
    | None -> Printf.printf "mapping failed (%s)\n" o.note
    | Some mapping -> (
        Printf.printf "mapped in %.2fs (%s)\n" o.elapsed_s o.note;
        let mk_io () = Ocgra_sim.Machine.io_of_streams ~memory:k.memory (k.inputs iters) in
        match Ocgra_sim.Machine.run ~obs p mapping (mk_io ()) ~iters with
        | exception Ocgra_sim.Machine.Simulation_error e ->
            Printf.printf "simulation refused: cycle %d, PE %d: %s\n" e.cycle e.pe e.message
        | result ->
            let reference = Ocgra_workloads.Kernels.eval_reference k ~iters in
            Printf.printf "II=%d; %d iterations in %d cycles; %d op instances, %d route instances\n"
              mapping.Ocgra_core.Mapping.ii iters result.Ocgra_sim.Machine.stats.cycles
              result.Ocgra_sim.Machine.stats.op_instances
              result.Ocgra_sim.Machine.stats.route_instances;
            let expected =
              List.map
                (fun name -> (name, Ocgra_dfg.Eval.output_stream reference name))
                k.outputs
            in
            List.iter
              (fun (name, want) ->
                let got = Ocgra_sim.Machine.output_stream result name in
                Printf.printf "output %-8s %s\n" name
                  (if got = want then "matches the reference interpreter" else "MISMATCH"))
              expected;
            if campaign > 0 then begin
              (* trials shard across domains; the report is
                 bit-identical for any worker count, chaos-masked
                 retries included *)
              let workers = resolve_jobs jobs in
              let chaos_t =
                if chaos > 0.0 then
                  Ocgra_par.Chaos.make ~fail_rate:chaos ~seed:(0xC4A05 lxor fault_seed) ()
                else Ocgra_par.Chaos.none
              in
              let checkpoint_t =
                Option.map
                  (fun path -> { Ocgra_sim.Reliability.path; resume })
                  checkpoint
              in
              if chaos > 0.0 then
                Printf.printf "chaos: injecting task failures at rate %g (retries %d)\n" chaos
                  retries;
              (match checkpoint with
              | Some path ->
                  Printf.printf "checkpoint: %s journal %s\n"
                    (if resume then "resuming from" else "writing")
                    path
              | None -> ());
              let rep =
                Ocgra_sim.Reliability.run_campaign ~workers ~obs ~retries ~chaos:chaos_t
                  ?checkpoint:checkpoint_t p mapping ~mk_io ~iters ~expected ~trials:campaign
                  ~rate:fault_rate ~seed:fault_seed
              in
              Printf.printf "campaign (%s, rate %g, seed %d): %s\n"
                (Ocgra_dfg.Harden.mode_to_string mode)
                fault_rate fault_seed
                (Ocgra_sim.Reliability.to_string rep);
              (* hardened runs are judged against the unhardened
                 mapping of the same kernel under the same fault load *)
              if mode <> Ocgra_dfg.Harden.No_harden then begin
                let o0 = run_mapper mapper fallback seed deadline jobs p_base in
                match o0.mapping with
                | None -> Printf.printf "baseline mapping failed (%s)\n" o0.note
                | Some m0 ->
                    let rep0 =
                      Ocgra_sim.Reliability.run_campaign ~workers p_base m0 ~mk_io ~iters ~expected
                        ~trials:campaign ~rate:fault_rate ~seed:fault_seed
                    in
                    Printf.printf "baseline (none, rate %g, seed %d): %s\n" fault_rate fault_seed
                      (Ocgra_sim.Reliability.to_string rep0);
                    let ov =
                      Ocgra_sim.Reliability.overhead ~baseline:(p_base, m0) ~hardened:(p, mapping)
                        ~mk_io ~iters
                    in
                    Printf.printf "hardening overhead: %s\n"
                      (Ocgra_sim.Reliability.overhead_to_string ov)
              end
            end;
            if survivor > 0 then begin
              (* escalating permanent faults, each step salvaged by the
                 certified ladder and replayed on the simulator *)
              let rep =
                Ocgra_sim.Reliability.run_survivor ~workers:(resolve_jobs jobs) ~obs
                  ?step_deadline_s:deadline
                  ~chain:(chain_of mapper fallback)
                  p mapping ~mk_io ~iters ~expected ~steps:survivor ~seed:fault_seed
              in
              List.iter
                (fun s ->
                  Printf.printf "  %s\n" (Ocgra_sim.Reliability.survivor_step_to_string s))
                rep.Ocgra_sim.Reliability.steps;
              Printf.printf "survivor (seed %d): %s\n" fault_seed
                (Ocgra_sim.Reliability.survivor_to_string rep)
            end));
    write_obs obs trace metrics events
  in
  let iters_t = Arg.(value & opt int 12 & info [ "iters" ] ~doc:"Loop iterations.") in
  Cmd.v (Cmd.info "sim" ~doc:"Map, simulate and verify a kernel")
    Term.(
      const run $ kernel_t $ mapper_t $ rows_t $ cols_t $ topo_t $ hetero_t $ seed_t $ iters_t
      $ faults_t $ fault_seed_t $ deadline_t $ fallback_t $ harden_t $ campaign_t $ fault_rate_t
      $ retries_t $ chaos_t $ checkpoint_t $ resume_t $ survivor_t $ jobs_t $ trace_t $ metrics_t
      $ events_t)

(* Perf-regression gate over BENCH_*.json snapshots.  Exit codes are
   the contract CI scripts on: 0 clean (improvements allowed), 1
   regression beyond tolerance, 2 unreadable/mismatched snapshots or
   structural drift. *)
let report_cmd =
  let run candidate against tol_time tol_count json_out =
    let module D = Ocgra_obs.Bench_diff in
    let load_or_die path =
      match D.load path with
      | Ok s -> s
      | Error e ->
          Printf.eprintf "report: %s\n" e;
          exit 2
    in
    let baseline = load_or_die against in
    (* no candidate = self-diff: a snapshot must always pass against
       itself, which is the gate's own sanity check *)
    let candidate = match candidate with Some p -> load_or_die p | None -> baseline in
    let tol = { D.time_rel = tol_time; count_rel = tol_count } in
    match D.diff ~tol ~baseline ~candidate () with
    | Error e ->
        Printf.eprintf "report: %s\n" e;
        exit 2
    | Ok r ->
        print_string (D.render_human r);
        Option.iter (fun path -> Ocgra_obs.Export.write_file path (D.render_json r)) json_out;
        if r.D.structural <> [] then exit 2 else if r.D.regressions <> [] then exit 1
  in
  let candidate_t =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"CANDIDATE"
          ~doc:"Candidate snapshot to judge; omitted = self-diff the baseline (always exits 0).")
  in
  let against_t =
    Arg.(
      required
      & opt (some string) None
      & info [ "against" ] ~docv:"BASELINE" ~doc:"Baseline BENCH_*.json snapshot.")
  in
  let tol_time_t =
    Arg.(
      value & opt float 0.25
      & info [ "tol-time" ]
          ~doc:"Relative tolerance for wall-clock leaves (0.25 = 25% slower still passes).")
  in
  let tol_count_t =
    Arg.(
      value & opt float 0.0
      & info [ "tol-count" ]
          ~doc:
            "Relative tolerance for deterministic work counts (conflicts, decisions, \
             propagations); default exact.")
  in
  let json_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also write the machine-readable diff report to $(docv).")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Diff two BENCH_*.json snapshots and exit non-zero on regression (the CI perf gate). \
          Schema-stamped snapshots only; mismatched schema or bench names are refused.")
    Term.(const run $ candidate_t $ against_t $ tol_time_t $ tol_count_t $ json_t)

(* The mapping daemon: JSONL requests in, JSONL responses out, one
   canonical-form cache across the whole stream.  A malformed line
   costs an error *response* and a non-zero exit at the end — the
   daemon itself never crashes on input. *)
let serve_cmd =
  let run input output batch cache_cap mapper fallback jobs seed deadline retries trace metrics
      events =
    let obs = mk_obs trace metrics events in
    let svc =
      Ocgra_svc.Svc.create ~obs
        {
          Ocgra_svc.Svc.default_config with
          Ocgra_svc.Svc.capacity = cache_cap;
          chain = chain_of mapper fallback;
          workers = resolve_jobs jobs;
          deadline_s = deadline;
          seed;
          retries;
        }
    in
    let lookup name =
      match Ocgra_workloads.Kernels.find name with
      | k -> Ok k.Ocgra_workloads.Kernels.dfg
      | exception Invalid_argument m -> Error m
    in
    let lines =
      match input with
      | "-" ->
          let rec go acc =
            match input_line stdin with
            | line -> go (line :: acc)
            | exception End_of_file -> List.rev acc
          in
          List.filter (fun l -> String.trim l <> "") (go [])
      | path -> Ocgra_par.Journal.read_lines path
    in
    (* responses go through the journal's fsync discipline when writing
       to a file, so a killed daemon leaves at most one torn tail *)
    let journal, to_stdout =
      match output with
      | None -> (None, true)
      | Some path -> (Some (Ocgra_par.Journal.open_append ~fresh:true ~fsync_every:64 path), false)
    in
    let emit line =
      match journal with Some j -> Ocgra_par.Journal.append j line | None -> print_endline line
    in
    let errors = ref 0 in
    let t0 = Ocgra_core.Deadline.now () in
    (* classify each line, then serve batch-by-batch; responses keep
       input order, with error responses interleaved back in place *)
    let items =
      List.mapi
        (fun i line ->
          match Ocgra_svc.Wire.parse_req line with
          | Ok r -> (
              match Ocgra_svc.Wire.to_request ~lookup r with
              | Ok req -> Ok req
              | Error msg ->
                  incr errors;
                  Error (Ocgra_svc.Wire.error_to_json ~id:r.Ocgra_svc.Wire.id msg))
          | Error msg ->
              incr errors;
              Error
                (Ocgra_svc.Wire.error_to_json
                   ~id:(Ocgra_svc.Wire.salvage_id ~line:(i + 1) line)
                   msg))
        lines
    in
    let rec chunks = function
      | [] -> ()
      | rest ->
          let n = List.length rest in
          let take = min batch n in
          let chunk = List.filteri (fun i _ -> i < take) rest in
          let rest = List.filteri (fun i _ -> i >= take) rest in
          let reqs = List.filter_map (function Ok r -> Some r | Error _ -> None) chunk in
          let resps = ref (Ocgra_svc.Svc.submit_batch svc reqs) in
          List.iter
            (function
              | Error line -> emit line
              | Ok _ -> (
                  match !resps with
                  | r :: tl ->
                      resps := tl;
                      emit (Ocgra_svc.Wire.response_to_json r)
                  | [] -> ()))
            chunk;
          chunks rest
    in
    chunks items;
    Option.iter Ocgra_par.Journal.close journal;
    let s = Ocgra_svc.Svc.stats svc in
    let summary =
      Printf.sprintf
        "serve: %d requests in %.2fs: %d hits + %d iso + %d repair / %d cold, %d rejected, %d \
         errors; cache %d/%d entries, %d evictions, %d coalesced, %d demotions"
        (List.length lines)
        (Ocgra_core.Deadline.now () -. t0)
        s.Ocgra_svc.Svc.hits s.Ocgra_svc.Svc.iso_hits s.Ocgra_svc.Svc.repair_hits
        s.Ocgra_svc.Svc.misses s.Ocgra_svc.Svc.rejections !errors s.Ocgra_svc.Svc.entries
        cache_cap s.Ocgra_svc.Svc.evictions s.Ocgra_svc.Svc.coalesced s.Ocgra_svc.Svc.demotions
    in
    if to_stdout then prerr_endline summary else print_endline summary;
    write_obs obs trace metrics events;
    if !errors > 0 then exit 1
  in
  let input_t =
    Arg.(
      value & opt string "-"
      & info [ "in" ] ~docv:"FILE" ~doc:"Request stream, one JSON object per line; - = stdin.")
  in
  let output_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Write responses to $(docv) (append-only journal, fsynced in batches); default \
             stdout.  Responses carry no wall-clock fields, so the file is byte-identical \
             across $(b,--jobs) values.")
  in
  let batch_t =
    Arg.(
      value & opt int 32
      & info [ "batch" ]
          ~doc:
            "Serve requests in batches of $(docv): misses drain the pool together, in-batch \
             duplicates coalesce onto one cold map.")
  in
  let cache_t =
    Arg.(
      value & opt int 256
      & info [ "cache" ] ~doc:"Mapping-cache capacity (LRU by request order beyond this).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Mapping as a service: read JSONL mapping requests, serve them through the \
          canonical-form cache (isomorphic kernels hit; grown fault masks repair instead of \
          remapping), write JSONL responses.  Exits non-zero if any line was malformed.")
    Term.(
      const run $ input_t $ output_t $ batch_t $ cache_t $ mapper_t $ fallback_t $ jobs_t
      $ seed_t $ deadline_t $ retries_t $ trace_t $ metrics_t $ events_t)

let table1_cmd =
  let run () = print_string (Ocgra_biblio.Table1.render ()) in
  Cmd.v (Cmd.info "table1" ~doc:"Regenerate the survey's Table I") Term.(const run $ const ())

let timeline_cmd =
  let run () = print_string (Ocgra_biblio.Timeline.render ()) in
  Cmd.v (Cmd.info "timeline" ~doc:"Regenerate the survey's Fig. 4") Term.(const run $ const ())

let () =
  let info = Cmd.info "ocgra" ~doc:"Twenty years of CGRA mapping, as one toolkit" in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; arch_cmd; map_cmd; sim_cmd; serve_cmd; report_cmd; table1_cmd; timeline_cmd ]))

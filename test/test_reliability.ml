(* Transient-fault tolerance tests: the transient-event model and its
   Monte-Carlo generator, the DMR/TMR hardening transforms, the
   fault-injecting simulator mode, and the reliability campaign —
   ending with the headline fixed-seed experiment: TMR strictly beats
   the unhardened mapping on SDC rate under the same injected fault
   load, at a nonzero, reproducible II/energy cost. *)

open Ocgra_core
open Ocgra_dfg
module Cgra = Ocgra_arch.Cgra
module Fault = Ocgra_arch.Fault
module Machine = Ocgra_sim.Machine
module Reliability = Ocgra_sim.Reliability
module Kernels = Ocgra_workloads.Kernels
module Rng = Ocgra_util.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let cgra33 = Cgra.uniform ~rows:3 ~cols:3 ()
let cgra44 = Cgra.uniform ~rows:4 ~cols:4 ()

let map_kernel ?(seed = 42) p =
  let o = Mapper.run (Ocgra_mappers.Registry.find "modulo-greedy") ~seed p in
  match o.Mapper.mapping with
  | Some m -> m
  | None -> Alcotest.fail ("mapping failed: " ^ o.Mapper.note)

let count_op dfg op = Dfg.fold_nodes (fun nd acc -> if nd.Dfg.op = op then acc + 1 else acc) dfg 0

(* ---------- the transient-event model ---------- *)

let test_monte_carlo_deterministic () =
  let links = Cgra.raw_links cgra44 in
  let draw seed = Fault.monte_carlo ~pe_count:16 ~links ~horizon:50 ~rate:0.01 ~seed in
  checkb "same seed, same bombardment" true (draw 3 = draw 3);
  checkb "zero rate, no events" true
    (Fault.monte_carlo ~pe_count:16 ~links ~horizon:50 ~rate:0.0 ~seed:3 = []);
  List.iter
    (fun ev ->
      let c = Fault.transient_cycle ev in
      checkb "event inside horizon" true (c >= 0 && c < 50))
    (draw 3);
  Alcotest.check_raises "rate out of range" (Invalid_argument "Fault.monte_carlo: rate not in [0,1]")
    (fun () -> ignore (Fault.monte_carlo ~pe_count:16 ~links ~horizon:10 ~rate:1.5 ~seed:0))

let test_inject_transients_deterministic () =
  let a = Cgra.inject_transients cgra44 ~seed:9 ~horizon:40 ~rate:0.02 in
  let b = Cgra.inject_transients cgra44 ~seed:9 ~horizon:40 ~rate:0.02 in
  checkb "cgra-level injection deterministic" true (a = b);
  checkb "rendering names the kinds" true
    (a = []
    || String.length (Fault.transients_to_string a) > 0
       && Fault.transients_to_string [] = "none")

(* ---------- hardening transforms: structure ---------- *)

(* dot-product: 4 compute nodes + 1 output sink, one edge into the
   sink.  TMR: 3*4 replicas + 1 sink + 1 voter = 14; DMR: 2*4 + 1 + 1
   comparator = 10. *)
let test_tmr_structure () =
  let k = Kernels.dot_product () in
  let h, origin = Harden.tmr k.dfg in
  Alcotest.(check (list string)) "hardened DFG valid" [] (Dfg.validate h);
  checki "TMR node count" 14 (Dfg.node_count h);
  checki "one voter" 1 (count_op h Op.Vote);
  checki "no comparator" 0 (count_op h Op.Cmp);
  checki "outputs stay single" 1 (count_op h (Op.Output "sum"));
  (* the voter guards the accumulator: its origin is the "sum" node *)
  Dfg.iter_nodes
    (fun nd ->
      if nd.Dfg.op = Op.Vote then
        Alcotest.(check string) "voter origin" "sum" (Dfg.name k.dfg (origin nd.Dfg.id)))
    h

let test_dmr_structure () =
  let k = Kernels.dot_product () in
  let h, _ = Harden.dmr k.dfg in
  Alcotest.(check (list string)) "hardened DFG valid" [] (Dfg.validate h);
  checki "DMR node count" 10 (Dfg.node_count h);
  checki "one comparator" 1 (count_op h Op.Cmp);
  checki "no voter" 0 (count_op h Op.Vote)

let test_mode_parsing () =
  checkb "round trip" true
    (List.for_all
       (fun m -> Harden.mode_of_string (Harden.mode_to_string m) = m)
       [ Harden.No_harden; Harden.Dmr; Harden.Tmr ]);
  checki "copies" 3 (Harden.copies Harden.Tmr);
  Alcotest.check_raises "bad mode"
    (Invalid_argument "Harden.mode_of_string: nmr (want none|dmr|tmr)") (fun () ->
      ignore (Harden.mode_of_string "nmr"))

(* ---------- hardening transforms: semantics preserved ---------- *)

let eval_outputs dfg ~init streams ~memory iters =
  let env = Eval.env_of_streams ~memory streams in
  let r = Eval.run ~init dfg env ~iters in
  List.sort compare
    (Hashtbl.fold (fun name _ acc -> (name, Eval.output_stream r name) :: acc) r.Eval.outputs [])

let qcheck_harden_preserves_semantics =
  QCheck.Test.make ~name:"dmr/tmr preserve interpreter semantics on random DFGs" ~count:60
    QCheck.(pair small_int (int_range 6 18))
    (fun (seed, n) ->
      let rng = Rng.create (seed + 13) in
      let params = { Ocgra_workloads.Random_dfg.default with nodes = n } in
      let dfg, streams = Ocgra_workloads.Random_dfg.generate ~params rng in
      let iters = 5 in
      let before = eval_outputs dfg ~init:(fun _ -> 0) (streams iters) ~memory:[] iters in
      List.for_all
        (fun mode ->
          let h, _ = Harden.apply mode dfg in
          Dfg.validate h = []
          && eval_outputs h ~init:(fun _ -> 0) (streams iters) ~memory:[] iters = before)
        [ Harden.Dmr; Harden.Tmr ])

(* Kernels carry nontrivial init values and memory arrays; the origin
   map must carry the init through the replicas. *)
let test_harden_preserves_kernels () =
  let iters = 6 in
  List.iter
    (fun (k : Kernels.t) ->
      let before = eval_outputs k.dfg ~init:k.init (k.inputs iters) ~memory:k.memory iters in
      List.iter
        (fun mode ->
          let h, origin = Harden.apply mode k.dfg in
          Alcotest.(check (list string))
            (Printf.sprintf "%s %s valid" k.name (Harden.mode_to_string mode))
            [] (Dfg.validate h);
          let after =
            eval_outputs h ~init:(fun v -> k.init (origin v)) (k.inputs iters) ~memory:k.memory iters
          in
          checkb (Printf.sprintf "%s %s semantics" k.name (Harden.mode_to_string mode)) true
            (before = after))
        [ Harden.Dmr; Harden.Tmr ])
    (Kernels.full_suite ())

(* ---------- fault-injecting execution ---------- *)

let dot_setup () =
  let k = Kernels.dot_product () in
  let p = Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra:cgra44 () in
  let m = map_kernel p in
  let iters = 6 in
  let mk_io () = Machine.io_of_streams ~memory:k.memory (k.inputs iters) in
  let reference = Kernels.eval_reference k ~iters in
  let expected = List.map (fun n -> (n, Eval.output_stream reference n)) k.outputs in
  (k, p, m, iters, mk_io, expected)

let test_no_transients_no_change () =
  let _, p, m, iters, mk_io, expected = dot_setup () in
  let result, ts = Machine.run_transient p m (mk_io ()) ~iters ~transients:[] in
  checkb "clean run matches reference" true
    (List.for_all (fun (n, want) -> Machine.output_stream result n = want) expected);
  checki "nothing injected" 0 ts.Machine.injected;
  checki "nothing applied" 0 ts.Machine.applied

(* A flip aimed at the accumulator's write cycle must corrupt the
   output stream: the canonical silent-data-corruption scenario. *)
let test_targeted_flip_is_sdc () =
  let k, p, m, iters, mk_io, expected = dot_setup () in
  (* the accumulator, not the like-named Output sink *)
  let acc =
    Dfg.fold_nodes
      (fun nd acc -> if nd.Dfg.name = "sum" && nd.Dfg.op = Op.Binop Op.Add then nd.Dfg.id else acc)
      k.dfg (-1)
  in
  let pe, cycle = m.Mapping.binding.(acc) in
  let transients = [ Fault.Bit_flip { pe; cycle; bit = 4 } ] in
  let cls, ts = Reliability.classify p m ~io:(mk_io ()) ~iters ~expected ~transients in
  Alcotest.(check string) "classified as SDC" "sdc" (Reliability.trial_class_to_string cls);
  (match ts with
  | Some ts -> checki "the flip struck" 1 ts.Machine.applied
  | None -> Alcotest.fail "run should complete");
  (* same trial, same verdict: classification is deterministic *)
  let cls2, _ = Reliability.classify p m ~io:(mk_io ()) ~iters ~expected ~transients in
  checkb "deterministic" true (cls = cls2)

(* The same targeted flip on one TMR replica is outvoted. *)
let test_targeted_flip_is_masked_under_tmr () =
  let k = Kernels.dot_product () in
  let hdfg, origin = Harden.tmr k.dfg in
  let p = Problem.temporal ~init:(fun v -> k.init (origin v)) ~dfg:hdfg ~cgra:cgra44 () in
  let m = map_kernel p in
  let iters = 6 in
  let mk_io () = Machine.io_of_streams ~memory:k.memory (k.inputs iters) in
  let reference = Kernels.eval_reference k ~iters in
  let expected = List.map (fun n -> (n, Eval.output_stream reference n)) k.outputs in
  (* replica 1 of the accumulator ("sum#1") *)
  let acc1 =
    Dfg.fold_nodes (fun nd acc -> if nd.Dfg.name = "sum#1" then nd.Dfg.id else acc) hdfg (-1)
  in
  checkb "replica exists" true (acc1 >= 0);
  let pe, cycle = m.Mapping.binding.(acc1) in
  let transients = [ Fault.Bit_flip { pe; cycle; bit = 4 } ] in
  let cls, ts = Reliability.classify p m ~io:(mk_io ()) ~iters ~expected ~transients in
  Alcotest.(check string) "masked by the voter" "masked" (Reliability.trial_class_to_string cls);
  match ts with
  | Some ts -> checkb "voter saw the disagreement" true (ts.Machine.corrections > 0)
  | None -> Alcotest.fail "run should complete"

let test_zero_rate_campaign_all_correct () =
  let _, p, m, iters, mk_io, expected = dot_setup () in
  let rep = Reliability.run_campaign p m ~mk_io ~iters ~expected ~trials:10 ~rate:0.0 ~seed:1 in
  checki "all correct" 10 rep.Reliability.correct;
  checki "no events" 0 rep.Reliability.injected;
  checkb "rates zero" true
    (Reliability.sdc_rate rep = 0.0 && Reliability.masked_rate rep = 0.0)

(* ---------- the headline fixed-seed campaign ---------- *)

(* Acceptance experiment: on three kernels, the TMR-hardened mapping
   must have a strictly lower SDC rate than the unhardened mapping of
   the same kernel under the same injected fault rate, the hardening
   must cost nonzero II and energy overhead, and the whole experiment
   must be bit-for-bit reproducible from its seed. *)
let test_tmr_beats_unhardened () =
  let trials = 60 and rate = 0.004 and seed = 11 and iters = 8 in
  List.iter
    (fun name ->
      let k = Kernels.find name in
      let p0 = Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra:cgra33 () in
      let hdfg, origin = Harden.tmr k.dfg in
      let p1 = Problem.temporal ~init:(fun v -> k.init (origin v)) ~dfg:hdfg ~cgra:cgra33 () in
      let m0 = map_kernel p0 and m1 = map_kernel p1 in
      let mk_io () = Machine.io_of_streams ~memory:k.memory (k.inputs iters) in
      let reference = Kernels.eval_reference k ~iters in
      let expected = List.map (fun n -> (n, Eval.output_stream reference n)) k.outputs in
      let camp p m = Reliability.run_campaign p m ~mk_io ~iters ~expected ~trials ~rate ~seed in
      let base = camp p0 m0 and hard = camp p1 m1 in
      checkb
        (Printf.sprintf "%s: unhardened suffers SDC (%d)" name base.Reliability.sdc)
        true (base.Reliability.sdc > 0);
      checkb
        (Printf.sprintf "%s: TMR SDC %d strictly below unhardened %d" name hard.Reliability.sdc
           base.Reliability.sdc)
        true
        (hard.Reliability.sdc < base.Reliability.sdc);
      (* nonzero, reproducible overhead *)
      let ov = Reliability.overhead ~baseline:(p0, m0) ~hardened:(p1, m1) ~mk_io ~iters in
      checkb (Printf.sprintf "%s: II overhead nonzero" name) true (Reliability.ii_overhead ov > 0.0);
      checkb
        (Printf.sprintf "%s: energy overhead nonzero" name)
        true
        (Reliability.energy_overhead ov > 0.0);
      (* same seed, same campaign and same overhead — bit for bit *)
      checkb (Printf.sprintf "%s: campaign reproducible" name) true
        (camp p0 m0 = base && camp p1 m1 = hard);
      let ov2 = Reliability.overhead ~baseline:(p0, m0) ~hardened:(p1, m1) ~mk_io ~iters in
      checkb (Printf.sprintf "%s: overhead reproducible" name) true (ov = ov2))
    [ "saxpy"; "horner"; "absdiff" ]

(* DMR cannot mask, but it must convert silent corruption into
   detection: strictly fewer SDCs than the bare mapping, nonzero
   detections. *)
let test_dmr_detects () =
  let trials = 60 and rate = 0.004 and seed = 11 and iters = 8 in
  let k = Kernels.find "absdiff" in
  let p0 = Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra:cgra33 () in
  let hdfg, origin = Harden.dmr k.dfg in
  let p1 = Problem.temporal ~init:(fun v -> k.init (origin v)) ~dfg:hdfg ~cgra:cgra33 () in
  let m0 = map_kernel p0 and m1 = map_kernel p1 in
  let mk_io () = Machine.io_of_streams ~memory:k.memory (k.inputs iters) in
  let reference = Kernels.eval_reference k ~iters in
  let expected = List.map (fun n -> (n, Eval.output_stream reference n)) k.outputs in
  let camp p m = Reliability.run_campaign p m ~mk_io ~iters ~expected ~trials ~rate ~seed in
  let base = camp p0 m0 and hard = camp p1 m1 in
  checkb "unhardened suffers SDC" true (base.Reliability.sdc > 0);
  checkb "DMR SDC strictly lower" true (hard.Reliability.sdc < base.Reliability.sdc);
  checkb "DMR detects" true (hard.Reliability.detected > 0)

let () =
  Alcotest.run "reliability"
    [
      ( "transients",
        [
          Alcotest.test_case "monte-carlo generator" `Quick test_monte_carlo_deterministic;
          Alcotest.test_case "cgra-level injection" `Quick test_inject_transients_deterministic;
        ] );
      ( "hardening",
        [
          Alcotest.test_case "tmr structure" `Quick test_tmr_structure;
          Alcotest.test_case "dmr structure" `Quick test_dmr_structure;
          Alcotest.test_case "mode parsing" `Quick test_mode_parsing;
          QCheck_alcotest.to_alcotest qcheck_harden_preserves_semantics;
          Alcotest.test_case "kernels preserved" `Quick test_harden_preserves_kernels;
        ] );
      ( "injection",
        [
          Alcotest.test_case "empty bombardment" `Quick test_no_transients_no_change;
          Alcotest.test_case "targeted flip is SDC" `Quick test_targeted_flip_is_sdc;
          Alcotest.test_case "flip masked under TMR" `Quick test_targeted_flip_is_masked_under_tmr;
          Alcotest.test_case "zero-rate campaign" `Quick test_zero_rate_campaign_all_correct;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "tmr beats unhardened" `Slow test_tmr_beats_unhardened;
          Alcotest.test_case "dmr detects" `Slow test_dmr_detects;
        ] );
    ]

#!/bin/sh
# CLI smoke test: list, map, and fault-aware sim with deadline+fallback.
# Usage: smoke.sh <path-to-ocgra>
set -eu
OCGRA="$1"

"$OCGRA" list | grep -q "modulo-greedy"

"$OCGRA" map -k fir4 -m modulo-greedy | grep -q "mapped:"

# the headline robustness path: two injected faults, a wall-clock
# budget, and a three-tier fallback chain; must end in a verified run
"$OCGRA" sim -k fir4 -m sat --faults 2 --fault-seed 7 --deadline 5 \
  --fallback sat,modulo-greedy,constructive \
  | grep -q "matches the reference interpreter"

# TMR hardening + a small reliability campaign: the hardened mapping
# must still verify against the unhardened reference, and the report
# must include the campaign, the unhardened baseline and the overhead
OUT=$("$OCGRA" sim -k saxpy -m modulo-greedy --harden tmr --campaign 20 \
  --fault-rate 0.002 --fault-seed 11)
echo "$OUT" | grep -q "hardening: tmr"
echo "$OUT" | grep -q "matches the reference interpreter"
echo "$OUT" | grep -q "campaign (tmr"
echo "$OUT" | grep -q "baseline (none"
echo "$OUT" | grep -q "hardening overhead:"

# portfolio racing: the same fallback chain raced across domains must
# still end in a validated mapping, and the note must say who won
"$OCGRA" map -k fir4 --fallback sat,modulo-greedy --jobs 2 --deadline 10 \
  | grep -q "race won by tier"

# parallel reliability campaign: the report must be byte-identical to
# the sequential one (seeds are pre-drawn, fold order is fixed)
SEQ=$("$OCGRA" sim -k saxpy -m modulo-greedy --campaign 20 \
  --fault-rate 0.002 --fault-seed 11 --jobs 1 | grep "campaign (")
PAR=$("$OCGRA" sim -k saxpy -m modulo-greedy --campaign 20 \
  --fault-rate 0.002 --fault-seed 11 --jobs 2 | grep "campaign (")
[ "$SEQ" = "$PAR" ]

# an impossible fault load must fail cleanly (exit 0 + explanation),
# never crash or report an invalid mapping as success
"$OCGRA" map -k fir4 --rows 2 --cols 2 --faults 4 --fault-seed 3 --deadline 2 \
  --fallback modulo-greedy,constructive \
  | grep -q "mapping failed"

# observability: --trace must produce a parseable Chrome trace with at
# least one tier span, and --metrics must carry live engine counters
TMPD=$(mktemp -d)
trap 'rm -rf "$TMPD"' EXIT
"$OCGRA" map -k dot-product --fallback constructive,modulo-greedy --jobs 1 \
  --trace "$TMPD/trace.json" --metrics "$TMPD/metrics.json" | grep -q "mapped:"
python3 -m json.tool "$TMPD/trace.json" > /dev/null
grep -q '"tier:' "$TMPD/trace.json"
python3 -m json.tool "$TMPD/metrics.json" > /dev/null
grep -q '"mapper.runs"' "$TMPD/metrics.json"

# determinism: two identical single-worker runs of the same seed must
# dump byte-identical metrics (integer counters only, name-sorted)
"$OCGRA" map -k dot-product -m modulo-greedy --seed 9 --jobs 1 \
  --metrics "$TMPD/m1.metrics" > /dev/null
"$OCGRA" map -k dot-product -m modulo-greedy --seed 9 --jobs 1 \
  --metrics "$TMPD/m2.metrics" > /dev/null
cmp "$TMPD/m1.metrics" "$TMPD/m2.metrics"

# event-log determinism: the structured event log of a fixed-seed
# campaign (tier verdicts, trial outcomes, closing summary) must be
# byte-identical whatever the worker count — events are emitted
# post-hoc from trial-indexed arrays, never from inside the domains
"$OCGRA" sim -k saxpy -m modulo-greedy --campaign 20 --fault-rate 0.002 \
  --fault-seed 11 --jobs 1 --events "$TMPD/e1.jsonl" > /dev/null
"$OCGRA" sim -k saxpy -m modulo-greedy --campaign 20 --fault-rate 0.002 \
  --fault-seed 11 --jobs 2 --events "$TMPD/e2.jsonl" > /dev/null
cmp "$TMPD/e1.jsonl" "$TMPD/e2.jsonl"
grep -q '"ev":"campaign.done"' "$TMPD/e1.jsonl"
grep -q '"ev":"campaign.trial"' "$TMPD/e1.jsonl"

# the SAT sweep must leave per-II convergence events and its LBD
# distribution behind when asked
"$OCGRA" map -k absdiff -m sat --rows 2 --cols 2 --seed 9 --jobs 1 \
  --metrics "$TMPD/sat.metrics" --events "$TMPD/sat.jsonl" | grep -q "mapped:"
grep -q '"ev":"sat.ii"' "$TMPD/sat.jsonl"
grep -q 'sat.lbd.count=' "$TMPD/sat.metrics"

# supervised chaos: injected task failures at 10% with retries must be
# fully masked — the campaign line is byte-identical to the clean run,
# and the supervision counters show the retries actually happened
CLEAN=$("$OCGRA" sim -k saxpy -m modulo-greedy --campaign 20 \
  --fault-rate 0.002 --fault-seed 11 --jobs 4 | grep "campaign (")
CHAOS=$("$OCGRA" sim -k saxpy -m modulo-greedy --campaign 20 \
  --fault-rate 0.002 --fault-seed 11 --jobs 4 --chaos 0.1 --retries 3 \
  --metrics "$TMPD/chaos.json" | grep "campaign (")
[ "$CLEAN" = "$CHAOS" ]
grep -q '"supervise.retries"' "$TMPD/chaos.json"
grep -q '"chaos.failures"' "$TMPD/chaos.json"

# crash-safe checkpointing: SIGKILL a journaled campaign mid-run, then
# --resume must replay the journal, finish the remainder and reproduce
# the byte-identical report of an uninterrupted run
REF=$("$OCGRA" sim -k saxpy -m modulo-greedy --campaign 20000 \
  --fault-rate 0.002 --fault-seed 11 --jobs 2 | grep "campaign (")
"$OCGRA" sim -k saxpy -m modulo-greedy --campaign 20000 \
  --fault-rate 0.002 --fault-seed 11 --jobs 2 \
  --checkpoint "$TMPD/campaign.jsonl" > /dev/null 2>&1 &
CPID=$!
sleep 0.6
kill -9 "$CPID" 2> /dev/null || true
wait "$CPID" 2> /dev/null || true
RES=$("$OCGRA" sim -k saxpy -m modulo-greedy --campaign 20000 \
  --fault-rate 0.002 --fault-seed 11 --jobs 2 \
  --checkpoint "$TMPD/campaign.jsonl" --resume | grep "campaign (")
[ "$REF" = "$RES" ]

# graceful degradation: saxpy under an escalating seeded fault
# sequence must walk down the certified repair ladder — every step
# either certified ("repaired (<rung>)") or an explicit failure, never
# an uncertified mapping; the survivor summary must name the walk
SURV=$("$OCGRA" sim -k saxpy -m modulo-greedy --survivor 10 --fault-seed 1)
echo "$SURV" | grep -q "matches the reference interpreter"
echo "$SURV" | grep -q "survived"
! echo "$SURV" | grep -q "UNCERTIFIED"
! echo "$SURV" | grep -q "REPLAY MISMATCH"
# the ladder degrades gracefully: at least one step is salvaged by a
# cheap rung (untouched/route-only/re-place/ii-bump), not all fallback
echo "$SURV" | grep -Eq "repaired \((untouched|route-only|re-place|ii-bump)\)"

# incremental SAT sweep vs its cold baseline: both mappers must map
# the same multi-attempt sweep (optimal II > MII on a 2x2) to the same
# certified-optimal II, and the sweep must report a real elapsed time
INC=$("$OCGRA" map -k absdiff -m sat --rows 2 --cols 2)
COLD=$("$OCGRA" map -k absdiff -m sat-cold --rows 2 --cols 2)
echo "$INC" | grep -q "II=3"
echo "$COLD" | grep -q "II=3"
echo "$INC" | grep -q "II optimal"
echo "$INC" | grep -q "2 attempts"
! echo "$INC" | grep -q "in 0.00s"

# mapping-as-a-service: a stream with duplicates, an isomorphic
# renaming (saxpy with nodes listed backwards) and a grown fault mask
# must be served through the cache — hits, an iso-hit and a
# repair-or-remap — and every response line must be well-formed JSON
cat > "$TMPD/stream.jsonl" <<'EOF'
{"id":"s1","kernel":"saxpy"}
{"id":"s2","kernel":"saxpy"}
{"id":"iso","dfg":{"nodes":[{"op":"out y","name":"y"},{"op":"add"},{"op":"mul"},{"op":"in y","name":"y"},{"op":"in x","name":"x"},{"op":"const 7"}],"edges":[[5,2,0,0],[4,2,1,0],[2,1,0,0],[3,1,1,0],[1,0,0,0]]}}
{"id":"f2","kernel":"saxpy","n_faults":2,"fault_seed":3}
{"id":"f4","kernel":"saxpy","n_faults":4,"fault_seed":3}
EOF
"$OCGRA" serve --in "$TMPD/stream.jsonl" --out "$TMPD/resp.jsonl" --batch 1 \
  | grep -q "serve: 5 requests"
python3 - "$TMPD/resp.jsonl" <<'EOF'
import json, sys
rows = [json.loads(l) for l in open(sys.argv[1])]
assert [r["id"] for r in rows] == ["s1", "s2", "iso", "f2", "f4"], rows
assert rows[1]["served"] == "hit", rows[1]
assert rows[2]["served"] == "iso-hit", rows[2]
assert all(r["status"] == "ok" for r in rows), rows
EOF

# serve determinism: the response file and the structured event log
# must be byte-identical whatever --jobs says — classification is
# sequential, cold maps run single-worker races in private forks
# absorbed in a fixed order, and neither artifact carries wall-clock
"$OCGRA" serve --in "$TMPD/stream.jsonl" --out "$TMPD/r1.jsonl" --batch 2 \
  --jobs 1 --events "$TMPD/se1.jsonl" > /dev/null
"$OCGRA" serve --in "$TMPD/stream.jsonl" --out "$TMPD/r4.jsonl" --batch 2 \
  --jobs 4 --events "$TMPD/se4.jsonl" > /dev/null
cmp "$TMPD/r1.jsonl" "$TMPD/r4.jsonl"
cmp "$TMPD/se1.jsonl" "$TMPD/se4.jsonl"
grep -q '"ev":"svc.request"' "$TMPD/se1.jsonl"
grep -q '"ev":"svc.batch"' "$TMPD/se1.jsonl"

# malformed request lines get a per-line error response and a nonzero
# exit — the daemon must never crash on bad input, and must still
# serve the well-formed lines around it
cat > "$TMPD/badstream.jsonl" <<'EOF'
{"id":"good","kernel":"fir4"}
this is not json
{"id":"unknown","kernel":"no-such-kernel"}
{"id":"alsogood","kernel":"fir4"}
EOF
if "$OCGRA" serve --in "$TMPD/badstream.jsonl" --out "$TMPD/bad.jsonl" > /dev/null; then
  echo "serve should exit nonzero on malformed input" >&2
  exit 1
fi
python3 - "$TMPD/bad.jsonl" <<'EOF'
import json, sys
rows = [json.loads(l) for l in open(sys.argv[1])]
assert [r["status"] for r in rows] == ["ok", "error", "error", "ok"], rows
assert rows[1]["id"] == "line-2", rows[1]
assert rows[3]["served"] == "hit", rows[3]
EOF

# incremental repair on the map path: degrading after mapping must
# certify through a rung and print the diagnosis
"$OCGRA" map -k saxpy -m modulo-greedy --repair 6 --fault-seed 1 \
  | grep -q "repaired:"

# repair determinism: same diagnosis, same rung, same repaired grid,
# whatever OCGRA_JOBS says (wall-clock times are the only variance)
R1=$(OCGRA_JOBS=1 "$OCGRA" map -k fir4 -m modulo-greedy --repair 8 --fault-seed 1)
R4=$(OCGRA_JOBS=4 "$OCGRA" map -k fir4 -m modulo-greedy --repair 8 --fault-seed 1)
norm_repair() { echo "$1" | grep -E '^(diagnosis|\|)'; echo "$1" | grep -oE 'repaired \([a-z-]+\)'; }
[ "$(norm_repair "$R1")" = "$(norm_repair "$R4")" ]

echo "smoke OK"

(* Observability subsystem tests: span nesting and ordering on the
   monotonic clock, counter determinism (same seed, one worker =>
   byte-identical dumps), lock-free trace merging across worker
   domains, exporter output validity (checked by a small recursive
   descent JSON parser — no JSON library in the tree, on purpose) and
   the structured per-tier trail the racing harness now reports. *)

open Ocgra_core
module Obs = Ocgra_obs
module Ctx = Ocgra_obs.Ctx
module Kernels = Ocgra_workloads.Kernels

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string
let cgra44 = Ocgra_arch.Cgra.uniform ~rows:4 ~cols:4 ()

(* ---------- a minimal JSON validity checker ---------- *)

(* Accepts exactly the JSON grammar (RFC 8259, minus extension
   niceties we never emit: no leading +, no lone surrogate checks).
   Returns true iff the whole string is one valid JSON value. *)
let json_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let fail = ref false in
  let expect c = if peek () = Some c then advance () else fail := true in
  let literal lit =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then pos := !pos + l else fail := true
  in
  let string_lit () =
    expect '"';
    let fin = ref false in
    while (not !fin) && not !fail do
      match peek () with
      | None -> fail := true
      | Some '"' ->
          advance ();
          fin := true
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                (match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> ()
                | _ -> fail := true);
                if not !fail then advance ()
              done
          | _ -> fail := true)
      | Some c when Char.code c < 0x20 -> fail := true
      | Some _ -> advance ()
    done
  in
  let digits () =
    let saw = ref false in
    while (match peek () with Some '0' .. '9' -> true | _ -> false) do
      saw := true;
      advance ()
    done;
    if not !saw then fail := true
  in
  let number () =
    if peek () = Some '-' then advance ();
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    (match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then advance ()
        else begin
          let fin = ref false in
          while (not !fin) && not !fail do
            skip_ws ();
            string_lit ();
            skip_ws ();
            expect ':';
            value ();
            skip_ws ();
            match peek () with
            | Some ',' -> advance ()
            | Some '}' ->
                advance ();
                fin := true
            | _ -> fail := true
          done
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then advance ()
        else begin
          let fin = ref false in
          while (not !fin) && not !fail do
            value ();
            skip_ws ();
            match peek () with
            | Some ',' -> advance ()
            | Some ']' ->
                advance ();
                fin := true
            | _ -> fail := true
          done
        end
    | Some '"' -> string_lit ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail := true);
    skip_ws ()
  in
  value ();
  (not !fail) && !pos = n

let test_json_checker_sanity () =
  (* the checker itself must reject garbage, or the exporter tests
     prove nothing *)
  List.iter
    (fun good -> checkb good true (json_valid good))
    [
      "{}"; "[]"; "null"; "-12.5e3"; "{\"a\": [1, 2, {\"b\": \"c\\n\\u0041\"}]}";
      " { \"x\" : true } ";
    ];
  List.iter
    (fun bad -> checkb bad false (json_valid bad))
    [ ""; "{"; "{\"a\":}"; "[1,]"; "tru"; "\"unterminated"; "{} extra"; "01x"; "\"bad\\q\"" ]

(* ---------- spans ---------- *)

let test_span_nesting_and_order () =
  let tr = Obs.Trace.create () in
  let r =
    Obs.Trace.span tr "outer" (fun () ->
        Obs.Trace.span tr ~cat:"inner-cat" "inner" (fun () -> 41) + 1)
  in
  checki "span returns the body's value" 42 r;
  match Obs.Trace.spans tr with
  | [ outer; inner ] ->
      checks "outer first (earlier start, longer)" "outer" outer.Obs.Trace.name;
      checks "inner second" "inner" inner.Obs.Trace.name;
      checks "category recorded" "inner-cat" inner.Obs.Trace.cat;
      checkb "inner starts within outer" true (inner.Obs.Trace.ts >= outer.Obs.Trace.ts);
      checkb "inner ends within outer" true
        (inner.Obs.Trace.ts +. inner.Obs.Trace.dur
        <= outer.Obs.Trace.ts +. outer.Obs.Trace.dur +. 1e-9);
      checkb "durations non-negative" true
        (outer.Obs.Trace.dur >= 0.0 && inner.Obs.Trace.dur >= 0.0)
  | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l)

let test_span_survives_exception () =
  let tr = Obs.Trace.create () in
  (try Obs.Trace.span tr "boom" (fun () -> failwith "x") with Failure _ -> ());
  checki "span published on exception" 1 (Obs.Trace.count tr)

let test_off_records_nothing () =
  let r = Ctx.span Ctx.off "never" (fun () -> 7) in
  checki "off span still runs the body" 7 r;
  Ctx.incr Ctx.off "never.counter";
  checki "off trace empty" 0 (Obs.Trace.count (Ctx.trace Ctx.off));
  checki "off metrics empty" 0 (List.length (Obs.Metrics.dump (Ctx.metrics Ctx.off)))

(* ---------- counters ---------- *)

let test_counter_basics () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.incr m "b";
  Obs.Metrics.add m "a" 5;
  Obs.Metrics.add m "b" 2;
  Obs.Metrics.set_max m "c" 9;
  Obs.Metrics.set_max m "c" 3;
  checki "get a" 5 (Obs.Metrics.get m "a");
  checki "get absent" 0 (Obs.Metrics.get m "zzz");
  checkb "dump is name-sorted" true
    (Obs.Metrics.dump m = [ ("a", 5); ("b", 3); ("c", 9) ]);
  let dst = Obs.Metrics.create () in
  Obs.Metrics.add dst "b" 1;
  Obs.Metrics.merge ~into:dst m;
  checkb "merge adds" true (Obs.Metrics.dump dst = [ ("a", 5); ("b", 4); ("c", 9) ])

let map_with_metrics seed =
  let k = Kernels.dot_product () in
  let p = Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra:cgra44 () in
  let obs = Ctx.v ~trace:Obs.Trace.off ~metrics:(Obs.Metrics.create ()) () in
  let o = Mapper.run (Ocgra_mappers.Registry.find "sat") ~seed ~obs p in
  checkb "mapped" true (o.Mapper.mapping <> None);
  Obs.Metrics.dump (Ctx.metrics obs)

let test_counters_deterministic () =
  (* one worker, one seed: the counter dump is a pure function of the
     run, so two runs must agree exactly (the smoke test checks the
     same property end-to-end through the CLI, byte-for-byte) *)
  let a = map_with_metrics 11 in
  let b = map_with_metrics 11 in
  checkb "same seed, same counters" true (a = b);
  checkb "engine counters are live" true
    (List.exists (fun (name, v) -> name = "sat.decisions" && v > 0) a)

(* ---------- concurrent tracing and the pool ---------- *)

let test_trace_merge_across_workers () =
  let obs = Ctx.create () in
  let tasks = Array.init 16 (fun i () -> Ctx.span obs "task-body" (fun () -> i * 2)) in
  let out = Ocgra_par.Pool.run ~workers:4 ~obs tasks in
  checkb "results correct" true (out = Array.init 16 (fun i -> i * 2));
  (* every task publishes two spans (its own + the pool's wrapper), all
     CAS-pushed onto one shared list: none may be lost *)
  let spans = Obs.Trace.spans (Ctx.trace obs) in
  checki "16 task-body spans survive the merge" 16
    (List.length (List.filter (fun s -> s.Obs.Trace.name = "task-body") spans));
  checki "16 pool wrapper spans" 16
    (List.length
       (List.filter
          (fun s -> String.length s.Obs.Trace.name >= 5 && String.sub s.Obs.Trace.name 0 5 = "pool:")
          spans));
  checkb "spans sorted by start time" true
    (let rec sorted = function
       | a :: (b :: _ as rest) -> a.Obs.Trace.ts <= b.Obs.Trace.ts && sorted rest
       | _ -> true
     in
     sorted spans);
  (* per-worker claim tallies must account for every task exactly once *)
  let m = Ctx.metrics obs in
  let claimed =
    List.fold_left
      (fun acc (name, v) ->
        if String.length name >= 10 && String.sub name 0 10 = "pool.tasks" then acc + v else acc)
      0 (Obs.Metrics.dump m)
  in
  checki "every task claimed exactly once" 16 claimed

(* ---------- exporters ---------- *)

let test_chrome_trace_valid_json () =
  let obs = Ctx.create () in
  ignore
    (Ocgra_par.Pool.run ~workers:4 ~obs
       (Array.init 8 (fun i () ->
            Ctx.span obs ~args:[ ("i", string_of_int i); ("quote", "a\"b\\c\nd") ] "work"
              (fun () -> i))));
  let json = Obs.Export.chrome_trace (Ctx.trace obs) in
  checkb "chrome trace is valid JSON" true (json_valid json);
  checkb "has traceEvents" true
    (String.length json > 20 && String.sub json 0 16 = "{\"traceEvents\":[")

let test_metrics_exports () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.add m "sat.conflicts" 12;
  Obs.Metrics.add m "weird\"name" 1;
  checkb "metrics JSON valid" true (json_valid (Obs.Export.metrics_json m));
  let kv = Obs.Export.metrics_kv m in
  checkb "kv has both lines" true
    (String.split_on_char '\n' kv |> List.exists (fun l -> l = "sat.conflicts=12"));
  let empty = Obs.Export.metrics_json (Obs.Metrics.create ()) in
  checkb "empty metrics still valid JSON" true (json_valid empty)

(* ---------- the harness trail ---------- *)

let failing_tier =
  Mapper.make ~name:"never" ~citation:"test" ~scope:Taxonomy.Temporal_mapping
    ~approach:Taxonomy.Heuristic (fun _p _rng _dl _obs ->
      Mapper.no_mapping ~attempts:1 ~elapsed_s:0.0 ~note:"synthetic failure" ())

let test_harness_run_trail () =
  let k = Kernels.dot_product () in
  let p = Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra:cgra44 () in
  let chain = [ failing_tier; Ocgra_mappers.Registry.find "modulo-greedy" ] in
  let o = Mapper.Harness.run ~seed:7 ~retries:1 ~deadline_s:30.0 chain p in
  checkb "mapped by tier 2" true (o.Mapper.mapping <> None);
  checki "one record per try" 2 (List.length o.Mapper.trail);
  (match o.Mapper.trail with
  | [ first; second ] ->
      checks "tier 1 name" "never" first.Mapper.tier;
      checkb "tier 1 failed" true (first.Mapper.verdict = Mapper.Failed);
      checks "tier 2 name" "modulo-greedy" second.Mapper.tier;
      checkb "tier 2 won" true (second.Mapper.verdict = Mapper.Won);
      checkb "elapsed recorded" true (first.Mapper.took_s >= 0.0 && second.Mapper.took_s >= 0.0)
  | _ -> Alcotest.fail "expected exactly two trail records");
  checkb "report renders" true
    (String.length (Mapper.report_to_string (List.hd o.Mapper.trail)) > 0)

let test_race_trail_verdicts () =
  let k = Kernels.dot_product () in
  let p = Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra:cgra44 () in
  let obs = Ctx.v ~trace:Obs.Trace.off ~metrics:(Obs.Metrics.create ()) () in
  let chain = [ failing_tier; Ocgra_mappers.Registry.find "modulo-greedy" ] in
  let o = Mapper.Harness.race ~seed:7 ~deadline_s:30.0 ~workers:2 ~obs chain p in
  checkb "race mapped" true (o.Mapper.mapping <> None);
  checki "one record per tier" 2 (List.length o.Mapper.trail);
  let winner = List.filter (fun r -> r.Mapper.verdict = Mapper.Won) o.Mapper.trail in
  checki "exactly one winner" 1 (List.length winner);
  checks "winner is the real mapper" "modulo-greedy" (List.hd winner).Mapper.tier;
  List.iter
    (fun r ->
      checkb
        (Printf.sprintf "tier %s has a non-Won verdict" r.Mapper.tier)
        true
        (r.Mapper.verdict <> Mapper.Won))
    (List.filter (fun r -> r.Mapper.tier = "never") o.Mapper.trail);
  (* the forked per-tier sinks were absorbed back into [obs] *)
  checkb "absorbed counters visible" true
    (Obs.Metrics.get (Ctx.metrics obs) "mapper.runs" >= 2)

(* ---------- histograms ---------- *)

let test_hist_buckets () =
  (* small values are exact *)
  for v = 1 to 7 do
    checki
      (Printf.sprintf "bucket_lo exact at %d" v)
      v
      (Obs.Hist.bucket_lo (Obs.Hist.bucket_of_value v))
  done;
  checki "non-positive values share bucket 0" 0 (Obs.Hist.bucket_of_value 0);
  checki "negative too" 0 (Obs.Hist.bucket_of_value (-5));
  (* monotone in the value, lower bound never above the value *)
  let prev = ref (-1) in
  List.iter
    (fun v ->
      let b = Obs.Hist.bucket_of_value v in
      checkb (Printf.sprintf "bucket monotone at %d" v) true (b >= !prev);
      checkb (Printf.sprintf "lower bound <= value at %d" v) true (Obs.Hist.bucket_lo b <= v);
      prev := b)
    [ 1; 2; 7; 8; 9; 15; 16; 100; 1_000; 65_536; 1_000_000; max_int / 2; max_int ];
  checkb "bucket index in range" true (Obs.Hist.bucket_of_value max_int < Obs.Hist.n_buckets)

let test_hist_summary () =
  let h = Obs.Hist.create () in
  for v = 1 to 100 do
    Obs.Hist.observe h "lat" v
  done;
  (match Obs.Hist.dump h with
  | [ (name, s) ] ->
      checks "one histogram" "lat" name;
      checki "count" 100 s.Obs.Hist.count;
      checki "sum" 5050 s.Obs.Hist.sum;
      checki "max is exact" 100 s.Obs.Hist.max;
      checkb "p50 is the median's bucket lower bound" true
        (s.Obs.Hist.p50 >= 40 && s.Obs.Hist.p50 <= 50);
      checkb "p99 lands in the tail" true (s.Obs.Hist.p99 >= 75 && s.Obs.Hist.p99 <= 100);
      checkb "quantiles ordered" true
        (s.Obs.Hist.p50 <= s.Obs.Hist.p90
        && s.Obs.Hist.p90 <= s.Obs.Hist.p99
        && s.Obs.Hist.p99 <= s.Obs.Hist.max)
  | l -> Alcotest.failf "expected 1 histogram, got %d" (List.length l));
  checkb "off sink records nothing" true
    (Obs.Hist.observe Obs.Hist.off "x" 1;
     Obs.Hist.dump Obs.Hist.off = [])

let qcheck_hist_merge_order_invariant =
  (* recording a stream into one sink must equal recording any
     partition of it into two sinks — the second half reversed — and
     merging: the dump is a function of the multiset only *)
  QCheck.Test.make ~name:"hist merge is order- and partition-invariant" ~count:100
    QCheck.(pair (list (pair (int_range 0 2) (int_range (-4) 100_000))) small_int)
    (fun (stream, cut) ->
      let names = [| "a"; "b"; "c" |] in
      let record h l = List.iter (fun (i, v) -> Obs.Hist.observe h names.(i) v) l in
      let all = Obs.Hist.create () in
      record all stream;
      let k = match stream with [] -> 0 | _ -> cut mod (List.length stream + 1) in
      let h1 = Obs.Hist.create () and h2 = Obs.Hist.create () in
      record h1 (List.filteri (fun i _ -> i < k) stream);
      record h2 (List.rev (List.filteri (fun i _ -> i >= k) stream));
      Obs.Hist.merge ~into:h1 h2;
      Obs.Hist.dump h1 = Obs.Hist.dump all)

let test_hist_parallel_deterministic () =
  (* one shared sink pounded from 4 domains: the export must be
     byte-identical to the sequential run, since bucket bumps commute *)
  let run workers =
    let h = Obs.Hist.create () in
    let tasks =
      Array.init 64 (fun i () ->
          Obs.Hist.observe h "work" (i * 37 mod 101);
          Obs.Hist.observe h "pow2" (1 lsl (i mod 30)))
    in
    ignore (Ocgra_par.Pool.run ~workers tasks);
    Obs.Export.metrics_kv ~hists:h (Obs.Metrics.create ())
  in
  checks "1 vs 4 workers byte-identical" (run 1) (run 4)

let test_gauge_merge_not_summed () =
  (* regression: merge used to fold every cell with [+], double-counting
     gauges when a fork was absorbed *)
  let a = Obs.Metrics.create () and b = Obs.Metrics.create () in
  Obs.Metrics.set a "gauge.last" 5;
  Obs.Metrics.set b "gauge.last" 7;
  Obs.Metrics.set_max a "gauge.max" 9;
  Obs.Metrics.set_max b "gauge.max" 4;
  Obs.Metrics.add a "counter" 2;
  Obs.Metrics.add b "counter" 3;
  Obs.Metrics.merge ~into:a b;
  checki "counters sum" 5 (Obs.Metrics.get a "counter");
  checki "set_max folds by max, never sum" 9 (Obs.Metrics.get a "gauge.max");
  checki "set takes the source value, never sum" 7 (Obs.Metrics.get a "gauge.last")

(* ---------- the event log ---------- *)

let test_events_jsonl_valid () =
  let e = Obs.Events.create () in
  Obs.Events.emit e ~cat:"sat" "sat.ii"
    [ ("ii", Obs.Events.Int 4); ("verdict", Obs.Events.Str "unsat") ];
  Obs.Events.emit e "weird" [ ("s", Obs.Events.Str "a\"b\\c\nd\te") ];
  Obs.Events.emit e "empty" [];
  let lines =
    String.split_on_char '\n' (Obs.Export.events_jsonl e) |> List.filter (fun l -> l <> "")
  in
  checki "one line per event" 3 (List.length lines);
  List.iter (fun l -> checkb ("line is valid JSON: " ^ l) true (json_valid l)) lines

let test_events_bounded_and_absorb () =
  let e = Obs.Events.create ~cap:4 () in
  for i = 0 to 9 do
    Obs.Events.emit e "tick" [ ("i", Obs.Events.Int i) ]
  done;
  checki "retained at the cap" 4 (Obs.Events.count e);
  checki "drops counted" 6 (Obs.Events.dropped e);
  checkb "every jsonl line (dropped record included) is valid JSON" true
    (String.split_on_char '\n' (Obs.Export.events_jsonl e)
    |> List.filter (fun l -> l <> "")
    |> List.for_all json_valid);
  let into = Obs.Events.create () in
  Obs.Events.emit into "first" [];
  Obs.Events.absorb ~into e;
  let names = List.map (fun ev -> ev.Obs.Events.name) (Obs.Events.events into) in
  checkb "absorb appends in order after the host's own events" true
    (names = [ "first"; "tick"; "tick"; "tick"; "tick" ])

(* ---------- bench snapshot diffing ---------- *)

let write_tmp name contents =
  let path = Filename.concat (Filename.get_temp_dir_name ()) name in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  path

let snapshot_src ~time ~conflicts =
  Printf.sprintf
    "{\n\
     \"schema\": 1,\n\
     \"bench\": \"unit\",\n\
     \"kernels\": [ { \"kernel\": \"k1\", \"ii\": 3, \"conflicts\": %d, \"map_time_s\": %s, \
     \"ok\": true } ]\n\
     }\n"
    conflicts time

let load_ok path =
  match Obs.Bench_diff.load path with Ok s -> s | Error e -> Alcotest.fail e

let diff_ok ?tol ~baseline ~candidate () =
  match Obs.Bench_diff.diff ?tol ~baseline ~candidate () with
  | Ok r -> r
  | Error e -> Alcotest.fail e

let test_bench_diff_self () =
  let snap = load_ok (write_tmp "bench_self.json" (snapshot_src ~time:"0.010" ~conflicts:120)) in
  let r = diff_ok ~baseline:snap ~candidate:snap () in
  checkb "self-diff is clean" true (Obs.Bench_diff.ok r);
  checkb "checked some leaves" true (r.Obs.Bench_diff.checked > 0);
  checki "no regressions" 0 (List.length r.Obs.Bench_diff.regressions);
  checkb "human rendering non-empty" true (String.length (Obs.Bench_diff.render_human r) > 0);
  checkb "machine rendering is valid JSON" true (json_valid (Obs.Bench_diff.render_json r))

let test_bench_diff_time_regression () =
  let baseline =
    load_ok (write_tmp "bench_base.json" (snapshot_src ~time:"0.0100" ~conflicts:120))
  in
  let candidate =
    load_ok (write_tmp "bench_cand.json" (snapshot_src ~time:"0.0110" ~conflicts:120))
  in
  (* +10% wall clock: flagged under a 5% tolerance ... *)
  let tight = { Obs.Bench_diff.time_rel = 0.05; count_rel = 0.0 } in
  let r = diff_ok ~tol:tight ~baseline ~candidate () in
  checkb "10% time regression flagged at 5% tolerance" false (Obs.Bench_diff.ok r);
  (match r.Obs.Bench_diff.regressions with
  | [ f ] ->
      checkb "classified as wall-clock" true (f.Obs.Bench_diff.cls = Obs.Bench_diff.Time);
      checkb "relative change is ~+10%" true
        (f.Obs.Bench_diff.rel > 0.09 && f.Obs.Bench_diff.rel < 0.11)
  | l -> Alcotest.failf "expected exactly one regression, got %d" (List.length l));
  (* ... and absorbed by the default generous one *)
  checkb "10% passes the default 25% tolerance" true
    (Obs.Bench_diff.ok (diff_ok ~baseline ~candidate ()))

let test_bench_diff_count_exact () =
  let baseline =
    load_ok (write_tmp "bench_base2.json" (snapshot_src ~time:"0.0100" ~conflicts:120))
  in
  let candidate =
    load_ok (write_tmp "bench_cand2.json" (snapshot_src ~time:"0.0100" ~conflicts:121))
  in
  let r = diff_ok ~baseline ~candidate () in
  checkb "one extra conflict fails the exact default" false (Obs.Bench_diff.ok r);
  match r.Obs.Bench_diff.regressions with
  | [ f ] -> checkb "classified as deterministic work" true (f.Obs.Bench_diff.cls = Obs.Bench_diff.Count)
  | l -> Alcotest.failf "expected exactly one regression, got %d" (List.length l)

let test_bench_diff_stamp_guard () =
  (* an unstamped file refuses to load ... *)
  (match Obs.Bench_diff.load (write_tmp "bench_unstamped.json" "{\"kernels\": []}\n") with
  | Ok _ -> Alcotest.fail "unstamped snapshot must not load"
  | Error e -> checkb "error names the stamp" true (String.length e > 0));
  (* ... and stamped-but-different snapshots refuse to diff *)
  let a = load_ok (write_tmp "bench_s1.json" (snapshot_src ~time:"0.01" ~conflicts:1)) in
  let other =
    "{\n\"schema\": 2,\n\"bench\": \"unit\",\n\"kernels\": []\n}\n"
  in
  let b = load_ok (write_tmp "bench_s2.json" other) in
  match Obs.Bench_diff.diff ~baseline:a ~candidate:b () with
  | Ok _ -> Alcotest.fail "schema mismatch must be an error"
  | Error e -> checkb "mismatch error is descriptive" true (String.length e > 0)

(* ---------- event determinism through the harness ---------- *)

let events_of_run seed =
  let k = Kernels.dot_product () in
  let p = Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra:cgra44 () in
  let obs =
    Ctx.v ~events:(Obs.Events.create ()) ~trace:Obs.Trace.off ~metrics:(Obs.Metrics.create ())
      ()
  in
  let chain = [ failing_tier; Ocgra_mappers.Registry.find "modulo-greedy" ] in
  let o = Mapper.Harness.run ~seed ~retries:1 ~deadline_s:30.0 ~obs chain p in
  checkb "mapped" true (o.Mapper.mapping <> None);
  Obs.Export.events_jsonl (Ctx.events obs)

let test_harness_events_deterministic () =
  let a = events_of_run 7 and b = events_of_run 7 in
  checks "same seed, byte-identical event log" a b;
  checkb "tier verdicts present" true
    (String.split_on_char '\n' a
    |> List.exists (fun l ->
           json_valid l
           && String.length l > 0
           &&
           let has needle =
             let nl = String.length needle and ll = String.length l in
             let rec at i = i + nl <= ll && (String.sub l i nl = needle || at (i + 1)) in
             at 0
           in
           has "harness.tier" && has "won"))

let () =
  Alcotest.run "obs"
    [
      ( "json-checker",
        [ Alcotest.test_case "accepts good, rejects bad" `Quick test_json_checker_sanity ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and order" `Quick test_span_nesting_and_order;
          Alcotest.test_case "published on exception" `Quick test_span_survives_exception;
          Alcotest.test_case "off context records nothing" `Quick test_off_records_nothing;
        ] );
      ( "counters",
        [
          Alcotest.test_case "basics" `Quick test_counter_basics;
          Alcotest.test_case "deterministic at one worker" `Quick test_counters_deterministic;
        ] );
      ( "concurrency",
        [ Alcotest.test_case "trace merge across 4 workers" `Quick test_trace_merge_across_workers ]
      );
      ( "exporters",
        [
          Alcotest.test_case "chrome trace valid JSON" `Quick test_chrome_trace_valid_json;
          Alcotest.test_case "metrics JSON and kv" `Quick test_metrics_exports;
        ] );
      ( "harness-trail",
        [
          Alcotest.test_case "sequential trail" `Quick test_harness_run_trail;
          Alcotest.test_case "race trail verdicts" `Quick test_race_trail_verdicts;
        ] );
      ( "histograms",
        [
          Alcotest.test_case "bucket scheme" `Quick test_hist_buckets;
          Alcotest.test_case "summary quantiles" `Quick test_hist_summary;
          QCheck_alcotest.to_alcotest qcheck_hist_merge_order_invariant;
          Alcotest.test_case "parallel recording deterministic" `Quick
            test_hist_parallel_deterministic;
          Alcotest.test_case "gauges merge without summing" `Quick test_gauge_merge_not_summed;
        ] );
      ( "events",
        [
          Alcotest.test_case "jsonl lines are valid JSON" `Quick test_events_jsonl_valid;
          Alcotest.test_case "bounded log and absorb order" `Quick
            test_events_bounded_and_absorb;
          Alcotest.test_case "harness event log deterministic" `Quick
            test_harness_events_deterministic;
        ] );
      ( "bench-diff",
        [
          Alcotest.test_case "identical snapshots self-diff clean" `Quick test_bench_diff_self;
          Alcotest.test_case "10% time regression flagged" `Quick
            test_bench_diff_time_regression;
          Alcotest.test_case "counts compare exactly by default" `Quick
            test_bench_diff_count_exact;
          Alcotest.test_case "stamp and schema guard" `Quick test_bench_diff_stamp_guard;
        ] );
    ]

(* Observability subsystem tests: span nesting and ordering on the
   monotonic clock, counter determinism (same seed, one worker =>
   byte-identical dumps), lock-free trace merging across worker
   domains, exporter output validity (checked by a small recursive
   descent JSON parser — no JSON library in the tree, on purpose) and
   the structured per-tier trail the racing harness now reports. *)

open Ocgra_core
module Obs = Ocgra_obs
module Ctx = Ocgra_obs.Ctx
module Kernels = Ocgra_workloads.Kernels

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string
let cgra44 = Ocgra_arch.Cgra.uniform ~rows:4 ~cols:4 ()

(* ---------- a minimal JSON validity checker ---------- *)

(* Accepts exactly the JSON grammar (RFC 8259, minus extension
   niceties we never emit: no leading +, no lone surrogate checks).
   Returns true iff the whole string is one valid JSON value. *)
let json_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let fail = ref false in
  let expect c = if peek () = Some c then advance () else fail := true in
  let literal lit =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then pos := !pos + l else fail := true
  in
  let string_lit () =
    expect '"';
    let fin = ref false in
    while (not !fin) && not !fail do
      match peek () with
      | None -> fail := true
      | Some '"' ->
          advance ();
          fin := true
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                (match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> ()
                | _ -> fail := true);
                if not !fail then advance ()
              done
          | _ -> fail := true)
      | Some c when Char.code c < 0x20 -> fail := true
      | Some _ -> advance ()
    done
  in
  let digits () =
    let saw = ref false in
    while (match peek () with Some '0' .. '9' -> true | _ -> false) do
      saw := true;
      advance ()
    done;
    if not !saw then fail := true
  in
  let number () =
    if peek () = Some '-' then advance ();
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    (match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then advance ()
        else begin
          let fin = ref false in
          while (not !fin) && not !fail do
            skip_ws ();
            string_lit ();
            skip_ws ();
            expect ':';
            value ();
            skip_ws ();
            match peek () with
            | Some ',' -> advance ()
            | Some '}' ->
                advance ();
                fin := true
            | _ -> fail := true
          done
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then advance ()
        else begin
          let fin = ref false in
          while (not !fin) && not !fail do
            value ();
            skip_ws ();
            match peek () with
            | Some ',' -> advance ()
            | Some ']' ->
                advance ();
                fin := true
            | _ -> fail := true
          done
        end
    | Some '"' -> string_lit ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail := true);
    skip_ws ()
  in
  value ();
  (not !fail) && !pos = n

let test_json_checker_sanity () =
  (* the checker itself must reject garbage, or the exporter tests
     prove nothing *)
  List.iter
    (fun good -> checkb good true (json_valid good))
    [
      "{}"; "[]"; "null"; "-12.5e3"; "{\"a\": [1, 2, {\"b\": \"c\\n\\u0041\"}]}";
      " { \"x\" : true } ";
    ];
  List.iter
    (fun bad -> checkb bad false (json_valid bad))
    [ ""; "{"; "{\"a\":}"; "[1,]"; "tru"; "\"unterminated"; "{} extra"; "01x"; "\"bad\\q\"" ]

(* ---------- spans ---------- *)

let test_span_nesting_and_order () =
  let tr = Obs.Trace.create () in
  let r =
    Obs.Trace.span tr "outer" (fun () ->
        Obs.Trace.span tr ~cat:"inner-cat" "inner" (fun () -> 41) + 1)
  in
  checki "span returns the body's value" 42 r;
  match Obs.Trace.spans tr with
  | [ outer; inner ] ->
      checks "outer first (earlier start, longer)" "outer" outer.Obs.Trace.name;
      checks "inner second" "inner" inner.Obs.Trace.name;
      checks "category recorded" "inner-cat" inner.Obs.Trace.cat;
      checkb "inner starts within outer" true (inner.Obs.Trace.ts >= outer.Obs.Trace.ts);
      checkb "inner ends within outer" true
        (inner.Obs.Trace.ts +. inner.Obs.Trace.dur
        <= outer.Obs.Trace.ts +. outer.Obs.Trace.dur +. 1e-9);
      checkb "durations non-negative" true
        (outer.Obs.Trace.dur >= 0.0 && inner.Obs.Trace.dur >= 0.0)
  | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l)

let test_span_survives_exception () =
  let tr = Obs.Trace.create () in
  (try Obs.Trace.span tr "boom" (fun () -> failwith "x") with Failure _ -> ());
  checki "span published on exception" 1 (Obs.Trace.count tr)

let test_off_records_nothing () =
  let r = Ctx.span Ctx.off "never" (fun () -> 7) in
  checki "off span still runs the body" 7 r;
  Ctx.incr Ctx.off "never.counter";
  checki "off trace empty" 0 (Obs.Trace.count (Ctx.trace Ctx.off));
  checki "off metrics empty" 0 (List.length (Obs.Metrics.dump (Ctx.metrics Ctx.off)))

(* ---------- counters ---------- *)

let test_counter_basics () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.incr m "b";
  Obs.Metrics.add m "a" 5;
  Obs.Metrics.add m "b" 2;
  Obs.Metrics.set_max m "c" 9;
  Obs.Metrics.set_max m "c" 3;
  checki "get a" 5 (Obs.Metrics.get m "a");
  checki "get absent" 0 (Obs.Metrics.get m "zzz");
  checkb "dump is name-sorted" true
    (Obs.Metrics.dump m = [ ("a", 5); ("b", 3); ("c", 9) ]);
  let dst = Obs.Metrics.create () in
  Obs.Metrics.add dst "b" 1;
  Obs.Metrics.merge ~into:dst m;
  checkb "merge adds" true (Obs.Metrics.dump dst = [ ("a", 5); ("b", 4); ("c", 9) ])

let map_with_metrics seed =
  let k = Kernels.dot_product () in
  let p = Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra:cgra44 () in
  let obs = Ctx.v ~trace:Obs.Trace.off ~metrics:(Obs.Metrics.create ()) in
  let o = Mapper.run (Ocgra_mappers.Registry.find "sat") ~seed ~obs p in
  checkb "mapped" true (o.Mapper.mapping <> None);
  Obs.Metrics.dump (Ctx.metrics obs)

let test_counters_deterministic () =
  (* one worker, one seed: the counter dump is a pure function of the
     run, so two runs must agree exactly (the smoke test checks the
     same property end-to-end through the CLI, byte-for-byte) *)
  let a = map_with_metrics 11 in
  let b = map_with_metrics 11 in
  checkb "same seed, same counters" true (a = b);
  checkb "engine counters are live" true
    (List.exists (fun (name, v) -> name = "sat.decisions" && v > 0) a)

(* ---------- concurrent tracing and the pool ---------- *)

let test_trace_merge_across_workers () =
  let obs = Ctx.create () in
  let tasks = Array.init 16 (fun i () -> Ctx.span obs "task-body" (fun () -> i * 2)) in
  let out = Ocgra_par.Pool.run ~workers:4 ~obs tasks in
  checkb "results correct" true (out = Array.init 16 (fun i -> i * 2));
  (* every task publishes two spans (its own + the pool's wrapper), all
     CAS-pushed onto one shared list: none may be lost *)
  let spans = Obs.Trace.spans (Ctx.trace obs) in
  checki "16 task-body spans survive the merge" 16
    (List.length (List.filter (fun s -> s.Obs.Trace.name = "task-body") spans));
  checki "16 pool wrapper spans" 16
    (List.length
       (List.filter
          (fun s -> String.length s.Obs.Trace.name >= 5 && String.sub s.Obs.Trace.name 0 5 = "pool:")
          spans));
  checkb "spans sorted by start time" true
    (let rec sorted = function
       | a :: (b :: _ as rest) -> a.Obs.Trace.ts <= b.Obs.Trace.ts && sorted rest
       | _ -> true
     in
     sorted spans);
  (* per-worker claim tallies must account for every task exactly once *)
  let m = Ctx.metrics obs in
  let claimed =
    List.fold_left
      (fun acc (name, v) ->
        if String.length name >= 10 && String.sub name 0 10 = "pool.tasks" then acc + v else acc)
      0 (Obs.Metrics.dump m)
  in
  checki "every task claimed exactly once" 16 claimed

(* ---------- exporters ---------- *)

let test_chrome_trace_valid_json () =
  let obs = Ctx.create () in
  ignore
    (Ocgra_par.Pool.run ~workers:4 ~obs
       (Array.init 8 (fun i () ->
            Ctx.span obs ~args:[ ("i", string_of_int i); ("quote", "a\"b\\c\nd") ] "work"
              (fun () -> i))));
  let json = Obs.Export.chrome_trace (Ctx.trace obs) in
  checkb "chrome trace is valid JSON" true (json_valid json);
  checkb "has traceEvents" true
    (String.length json > 20 && String.sub json 0 16 = "{\"traceEvents\":[")

let test_metrics_exports () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.add m "sat.conflicts" 12;
  Obs.Metrics.add m "weird\"name" 1;
  checkb "metrics JSON valid" true (json_valid (Obs.Export.metrics_json m));
  let kv = Obs.Export.metrics_kv m in
  checkb "kv has both lines" true
    (String.split_on_char '\n' kv |> List.exists (fun l -> l = "sat.conflicts=12"));
  let empty = Obs.Export.metrics_json (Obs.Metrics.create ()) in
  checkb "empty metrics still valid JSON" true (json_valid empty)

(* ---------- the harness trail ---------- *)

let failing_tier =
  Mapper.make ~name:"never" ~citation:"test" ~scope:Taxonomy.Temporal_mapping
    ~approach:Taxonomy.Heuristic (fun _p _rng _dl _obs ->
      Mapper.no_mapping ~attempts:1 ~elapsed_s:0.0 ~note:"synthetic failure" ())

let test_harness_run_trail () =
  let k = Kernels.dot_product () in
  let p = Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra:cgra44 () in
  let chain = [ failing_tier; Ocgra_mappers.Registry.find "modulo-greedy" ] in
  let o = Mapper.Harness.run ~seed:7 ~retries:1 ~deadline_s:30.0 chain p in
  checkb "mapped by tier 2" true (o.Mapper.mapping <> None);
  checki "one record per try" 2 (List.length o.Mapper.trail);
  (match o.Mapper.trail with
  | [ first; second ] ->
      checks "tier 1 name" "never" first.Mapper.tier;
      checkb "tier 1 failed" true (first.Mapper.verdict = Mapper.Failed);
      checks "tier 2 name" "modulo-greedy" second.Mapper.tier;
      checkb "tier 2 won" true (second.Mapper.verdict = Mapper.Won);
      checkb "elapsed recorded" true (first.Mapper.took_s >= 0.0 && second.Mapper.took_s >= 0.0)
  | _ -> Alcotest.fail "expected exactly two trail records");
  checkb "report renders" true
    (String.length (Mapper.report_to_string (List.hd o.Mapper.trail)) > 0)

let test_race_trail_verdicts () =
  let k = Kernels.dot_product () in
  let p = Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra:cgra44 () in
  let obs = Ctx.v ~trace:Obs.Trace.off ~metrics:(Obs.Metrics.create ()) in
  let chain = [ failing_tier; Ocgra_mappers.Registry.find "modulo-greedy" ] in
  let o = Mapper.Harness.race ~seed:7 ~deadline_s:30.0 ~workers:2 ~obs chain p in
  checkb "race mapped" true (o.Mapper.mapping <> None);
  checki "one record per tier" 2 (List.length o.Mapper.trail);
  let winner = List.filter (fun r -> r.Mapper.verdict = Mapper.Won) o.Mapper.trail in
  checki "exactly one winner" 1 (List.length winner);
  checks "winner is the real mapper" "modulo-greedy" (List.hd winner).Mapper.tier;
  List.iter
    (fun r ->
      checkb
        (Printf.sprintf "tier %s has a non-Won verdict" r.Mapper.tier)
        true
        (r.Mapper.verdict <> Mapper.Won))
    (List.filter (fun r -> r.Mapper.tier = "never") o.Mapper.trail);
  (* the forked per-tier sinks were absorbed back into [obs] *)
  checkb "absorbed counters visible" true
    (Obs.Metrics.get (Ctx.metrics obs) "mapper.runs" >= 2)

let () =
  Alcotest.run "obs"
    [
      ( "json-checker",
        [ Alcotest.test_case "accepts good, rejects bad" `Quick test_json_checker_sanity ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and order" `Quick test_span_nesting_and_order;
          Alcotest.test_case "published on exception" `Quick test_span_survives_exception;
          Alcotest.test_case "off context records nothing" `Quick test_off_records_nothing;
        ] );
      ( "counters",
        [
          Alcotest.test_case "basics" `Quick test_counter_basics;
          Alcotest.test_case "deterministic at one worker" `Quick test_counters_deterministic;
        ] );
      ( "concurrency",
        [ Alcotest.test_case "trace merge across 4 workers" `Quick test_trace_merge_across_workers ]
      );
      ( "exporters",
        [
          Alcotest.test_case "chrome trace valid JSON" `Quick test_chrome_trace_valid_json;
          Alcotest.test_case "metrics JSON and kv" `Quick test_metrics_exports;
        ] );
      ( "harness-trail",
        [
          Alcotest.test_case "sequential trail" `Quick test_harness_run_trail;
          Alcotest.test_case "race trail verdicts" `Quick test_race_trail_verdicts;
        ] );
    ]

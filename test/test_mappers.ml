(* Mapper tests: the central framework invariant — every mapping any
   registered mapper produces passes the independent checker — plus
   per-technique behaviour checks.  Slow exact mappers run on small
   kernels only. *)

open Ocgra_core
module Kernels = Ocgra_workloads.Kernels
module Rng = Ocgra_util.Rng

let checkb = Alcotest.check Alcotest.bool

let cgra44 = Ocgra_arch.Cgra.uniform ~rows:4 ~cols:4 ()
let cgra_diag = Ocgra_arch.Cgra.uniform ~topology:Ocgra_arch.Topology.Diagonal ~rows:4 ~cols:4 ()

let problem_for (mapper : Mapper.t) (k : Kernels.t) =
  if mapper.scope = Taxonomy.Spatial_mapping then
    Problem.spatial ~init:k.init ~dfg:k.dfg ~cgra:cgra_diag ()
  else Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra:cgra44 ~max_ii:12 ()

(* mappers cheap enough to run on the whole suite in tests *)
let fast = [ "greedy-spatial"; "graph-drawing"; "sa-spatial"; "genmap-ga"; "modulo-greedy";
             "edge-centric"; "branch-and-bound"; "smt"; "iso-binding"; "qea-binding";
             "list-scheduling"; "ilp-schedule"; "dresc-sa" ]

(* THE invariant: raw mapper output (before Mapper.run's demotion)
   always passes the independent validator *)
let test_every_mapper_output_validates () =
  List.iter
    (fun (mapper : Mapper.t) ->
      let kernels =
        if List.mem mapper.name fast then Kernels.small_suite ()
        else [ Kernels.dot_product (); Kernels.horner () ]
      in
      List.iter
        (fun (k : Kernels.t) ->
          let p = problem_for mapper k in
          let rng = Rng.create 7 in
          let outcome = mapper.map p rng Deadline.none Ocgra_obs.Ctx.off in
          match outcome.Mapper.mapping with
          | None -> () (* failing to map is allowed; lying is not *)
          | Some m ->
              let violations = Check.validate p m in
              Alcotest.(check (list string))
                (Printf.sprintf "%s on %s is valid" mapper.name k.name)
                [] violations)
        kernels)
    Ocgra_mappers.Registry.all

(* temporal mappers should all map the easy kernels *)
let test_easy_kernels_map () =
  let easy = [ Kernels.dot_product (); Kernels.horner () ] in
  List.iter
    (fun name ->
      let mapper = Ocgra_mappers.Registry.find name in
      List.iter
        (fun (k : Kernels.t) ->
          let o = Mapper.run mapper ~seed:7 (problem_for mapper k) in
          checkb (Printf.sprintf "%s maps %s" name k.name) true (o.Mapper.mapping <> None))
        easy)
    [ "modulo-greedy"; "edge-centric"; "dresc-sa"; "branch-and-bound"; "sat"; "cp";
      "iso-binding"; "list-scheduling"; "qea-binding"; "ilp-schedule" ]

(* achieved II never beats the MII lower bound *)
let test_ii_respects_mii () =
  List.iter
    (fun (k : Kernels.t) ->
      let mii = Mii.mii k.dfg cgra44 in
      let p = Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra:cgra44 ~max_ii:16 () in
      let rng = Rng.create 5 in
      match Ocgra_mappers.Constructive.map p rng with
      | Some m, _, _ -> checkb (k.name ^ " ii >= mii") true (m.Mapping.ii >= mii)
      | None, _, _ -> ())
    (Kernels.full_suite ())

(* exact methods prove optimality on the dot product *)
let test_exactness_claims () =
  let k = Kernels.dot_product () in
  let p = Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra:cgra44 ~max_ii:8 () in
  let o = Mapper.run (Ocgra_mappers.Registry.find "sat") ~seed:3 p in
  (match o.Mapper.mapping with
  | Some m ->
      checkb "sat achieves mii" true (m.Mapping.ii = Mii.mii k.dfg cgra44);
      checkb "sat proves optimal" true o.Mapper.proven_optimal
  | None -> Alcotest.fail "sat should map the dot product")

(* the SAT mapper refutes impossible IIs: horner at max_ii 1 *)
let test_sat_refutes_infeasible () =
  let k = Kernels.horner () in
  (* RecMII = 2, so max_ii = 1 leaves nothing feasible *)
  let p = Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra:cgra44 ~max_ii:1 () in
  let o = Mapper.run (Ocgra_mappers.Registry.find "sat") ~seed:3 p in
  checkb "unsat below recmii" true (o.Mapper.mapping = None)

(* spatial mapping is refused/impossible for tight recurrences *)
let test_spatial_recurrence_fails () =
  let k = Kernels.horner () in
  let p = Problem.spatial ~init:k.init ~dfg:k.dfg ~cgra:cgra_diag () in
  let rng = Rng.create 3 in
  let m, _, _ = Ocgra_mappers.Constructive.map ~restarts:6 p rng in
  checkb "horner spatial impossible (RecMII 2)" true (m = None)

(* deterministic given the seed *)
let test_seed_determinism () =
  let k = Kernels.fir4 () in
  let p = Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra:cgra44 () in
  let run () =
    match Ocgra_mappers.Constructive.map p (Rng.create 123) with
    | Some m, _, _ -> Some (m.Mapping.ii, m.Mapping.binding)
    | None, _, _ -> None
  in
  checkb "same result" true (run () = run ())

(* ---------- incremental II sweep vs cold-per-II baseline ---------- *)

let small_cgra n = Ocgra_arch.Cgra.uniform ~rows:n ~cols:n ()

let sweep_verdict ~incremental (k : Kernels.t) size max_ii =
  let p = Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra:(small_cgra size) ~max_ii () in
  let m, _, _, _ = Ocgra_mappers.Sat_temporal.map ~incremental p (Rng.create 11) in
  (p, m)

(* the shared-instance sweep and the cold baseline must agree on the
   SAT/UNSAT verdict and on the final II (models may differ) *)
let check_equivalent (k : Kernels.t) size max_ii =
  let p, mi = sweep_verdict ~incremental:true k size max_ii in
  let _, mc = sweep_verdict ~incremental:false k size max_ii in
  let label = Printf.sprintf "%s %dx%d" k.name size size in
  (match (mi, mc) with
  | None, None -> ()
  | Some a, Some b ->
      checkb (label ^ " same final II") true (a.Mapping.ii = b.Mapping.ii)
  | _ -> Alcotest.fail (label ^ ": verdicts differ between incremental and cold"));
  List.iter
    (fun m ->
      match m with
      | Some m ->
          Alcotest.(check (list string)) (label ^ " valid") [] (Check.validate p m)
      | None -> ())
    [ mi; mc ]

(* deterministic multi-attempt cases (optimal II > MII), where the
   incremental sweep actually carries state across candidate IIs *)
let test_cold_incremental_multi_attempt () =
  check_equivalent (Kernels.running_max ()) 2 8;
  check_equivalent (Kernels.absdiff ()) 2 8;
  (* all-UNSAT sweep: both modes must refute every candidate *)
  check_equivalent (Kernels.fir4 ()) 2 8

let qcheck_cold_incremental_equivalent =
  let combos =
    [|
      ("dot-product", 2); ("dot-product", 3); ("dot-product", 4);
      ("saxpy", 2); ("saxpy", 3); ("saxpy", 4);
      ("horner", 2); ("horner", 3); ("horner", 4);
      ("iir2", 2); ("iir2", 3);
      ("running-max", 2); ("running-max", 3);
      ("matvec2", 2);
    |]
  in
  QCheck.Test.make ~name:"cold and incremental sweeps agree" ~count:14
    QCheck.(int_bound (Array.length combos - 1))
    (fun i ->
      let name, size = combos.(i) in
      let k = Kernels.find name in
      let p, mi = sweep_verdict ~incremental:true k size 8 in
      let _, mc = sweep_verdict ~incremental:false k size 8 in
      match (mi, mc) with
      | None, None -> true
      | Some a, Some b ->
          a.Mapping.ii = b.Mapping.ii
          && Check.validate p a = [] && Check.validate p b = []
      | _ -> false)

(* regression: the sat mapper used to report elapsed_s = 0.0 *)
let test_sat_elapsed_reported () =
  let k = Kernels.dot_product () in
  let p = Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra:cgra44 ~max_ii:8 () in
  let mapper = Ocgra_mappers.Registry.find "sat" in
  let o = mapper.Mapper.map p (Rng.create 3) Deadline.none Ocgra_obs.Ctx.off in
  checkb "mapped" true (o.Mapper.mapping <> None);
  checkb "elapsed measured" true (o.Mapper.elapsed_s > 0.0 && o.Mapper.elapsed_s < 300.0)

(* byte-determinism across worker counts: a single-tier race degrades
   to the sequential harness, so the sat mapping must be bit-identical
   at any worker count *)
let test_sat_worker_determinism () =
  let k = Kernels.absdiff () in
  let p = Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra:(small_cgra 2) ~max_ii:8 () in
  let chain = [ Ocgra_mappers.Registry.find "sat" ] in
  let o1 = Mapper.Harness.race ~seed:7 ~workers:1 chain p in
  let o4 = Mapper.Harness.race ~seed:7 ~workers:4 chain p in
  checkb "both map" true (o1.Mapper.mapping <> None && o4.Mapper.mapping <> None);
  checkb "same mapping bytes" true
    (Marshal.to_string o1.Mapper.mapping [] = Marshal.to_string o4.Mapper.mapping []);
  (* and plain repetition with the same seed is byte-stable too *)
  let o1' = Mapper.Harness.race ~seed:7 ~workers:1 chain p in
  checkb "repeat run byte-identical" true
    (Marshal.to_string o1.Mapper.mapping [] = Marshal.to_string o1'.Mapper.mapping [])

(* decoupled scheduling: the list scheduler respects resources & deps *)
let test_list_schedule_properties () =
  let k = Kernels.fir4 () in
  let p = Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra:cgra44 () in
  let rng = Rng.create 3 in
  match Ocgra_mappers.Sched.modulo_list_schedule p rng ~ii:2 with
  | None -> Alcotest.fail "fir4 schedules at II=2"
  | Some times ->
      (* dependences respected *)
      Ocgra_dfg.Dfg.iter_edges
        (fun (e : Ocgra_dfg.Dfg.edge) ->
          if e.src <> e.dst then
            checkb "dep" true
              (times.(e.dst) + (e.dist * 2)
              >= times.(e.src) + Ocgra_dfg.Op.latency (Ocgra_dfg.Dfg.op k.dfg e.src)))
        k.dfg;
      (* per-slot class capacity *)
      let count = Hashtbl.create 8 in
      Array.iteri
        (fun v t ->
          let key = (Ocgra_dfg.Op.func_class (Ocgra_dfg.Dfg.op k.dfg v), t mod 2) in
          Hashtbl.replace count key (1 + Option.value ~default:0 (Hashtbl.find_opt count key)))
        times;
      Hashtbl.iter (fun _ c -> checkb "capacity" true (c <= 16)) count

let () =
  Alcotest.run "mappers"
    [
      ( "validity",
        [ Alcotest.test_case "every mapper output validates" `Slow test_every_mapper_output_validates ] );
      ( "behaviour",
        [
          Alcotest.test_case "easy kernels map" `Slow test_easy_kernels_map;
          Alcotest.test_case "ii >= mii" `Quick test_ii_respects_mii;
          Alcotest.test_case "exactness claims" `Quick test_exactness_claims;
          Alcotest.test_case "sat refutes infeasible" `Quick test_sat_refutes_infeasible;
          Alcotest.test_case "spatial recurrence fails" `Quick test_spatial_recurrence_fails;
          Alcotest.test_case "seed determinism" `Quick test_seed_determinism;
          Alcotest.test_case "list scheduler properties" `Quick test_list_schedule_properties;
        ] );
      ( "incremental sat",
        [
          Alcotest.test_case "multi-attempt sweeps agree" `Slow test_cold_incremental_multi_attempt;
          QCheck_alcotest.to_alcotest qcheck_cold_incremental_equivalent;
          Alcotest.test_case "elapsed_s reported" `Quick test_sat_elapsed_reported;
          Alcotest.test_case "worker-count determinism" `Slow test_sat_worker_determinism;
        ] );
    ]

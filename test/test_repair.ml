(* Repair-ladder tests: certification contract (every repair result
   passes the validator under the new mask), II monotonicity below the
   fallback rung, worker-count determinism, diagnosis edge cases for
   Rf_reduced and Fu_slot_dead, and the fault-list canonicalization the
   ladder relies on. *)

open Ocgra_core
module Cgra = Ocgra_arch.Cgra
module Fault = Ocgra_arch.Fault
module Dfg = Ocgra_dfg.Dfg
module Op = Ocgra_dfg.Op
module Kernels = Ocgra_workloads.Kernels
module Rng = Ocgra_util.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let cgra44 = Cgra.uniform ~rows:4 ~cols:4 ()

let contains msg sub =
  let n = String.length msg and m = String.length sub in
  let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
  go 0

let chain = [ Ocgra_mappers.Registry.find "modulo-greedy" ]

let map_kernel ?(seed = 7) (k : Kernels.t) =
  let p = Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra:cgra44 ~max_ii:12 () in
  match (Mapper.run (List.hd chain) ~seed p).Mapper.mapping with
  | Some m -> (p, m)
  | None -> Alcotest.fail (k.name ^ " should map on the healthy array")

let degrade (p : Problem.t) ~seed ~n =
  { p with Problem.cgra = Cgra.with_faults cgra44 (Cgra.inject_faults cgra44 ~seed ~n) }

(* ---------- fault canonicalization ---------- *)

let test_fault_canonical () =
  let a = Fault.Pe_down 2 and b = Fault.Link_down (1, 3) in
  checkb "dedup + order" true (Fault.canonical [ b; a; a; b ] = Fault.canonical [ a; b ]);
  Alcotest.(check string)
    "list_to_string is order/dup independent"
    (Fault.list_to_string [ a; b ])
    (Fault.list_to_string [ b; a; b; a ]);
  (* the constructors canonicalize too *)
  checki "with_faults dedups" 2 (List.length (Cgra.faults (Cgra.with_faults cgra44 [ b; a; b; a ])))

(* ---------- the untouched rung ---------- *)

let test_untouched () =
  let p, m = map_kernel (Kernels.saxpy ()) in
  let o = Repair.repair ~fallback:chain p m in
  checkb "rung is untouched" true (o.Repair.rung = Some Mapper.Untouched);
  checkb "mapping survives as-is" true (o.Repair.mapping = Some m);
  checkb "nothing diagnosed" true
    (o.Repair.diagnosis.Repair.dead_nodes = [] && o.Repair.diagnosis.Repair.broken_edges = [])

(* ---------- shape guard ---------- *)

let test_shape_refused () =
  let p, _ = map_kernel (Kernels.saxpy ()) in
  let _, m_other = map_kernel (Kernels.fir4 ()) in
  let o = Repair.repair ~fallback:chain p m_other in
  checkb "refused" true (o.Repair.mapping = None && contains o.Repair.note "refused")

(* ---------- certification + II monotonicity (property) ---------- *)

let qcheck_repair_certifies =
  QCheck.Test.make ~name:"every repair result passes Check.validate under the new mask" ~count:60
    QCheck.(pair (int_range 0 10_000) (int_range 1 10))
    (fun (seed, n) ->
      let k =
        Kernels.find
          (match seed mod 3 with 0 -> "saxpy" | 1 -> "fir4" | _ -> "dot-product")
      in
      let p, m0 = map_kernel k in
      let p' = degrade p ~seed ~n in
      let o = Repair.repair ~seed ~fallback:chain p' m0 in
      match o.Repair.mapping with
      | None -> o.Repair.rung = None
      | Some m ->
          Check.validate p' m = []
          && o.Repair.rung <> None
          (* rungs below the fallback never lower the II; the cold
             remap may (it owes nothing to the old schedule) *)
          && (o.Repair.rung = Some Mapper.Full_fallback || m.Mapping.ii >= m0.Mapping.ii))

(* ---------- determinism across worker counts ---------- *)

let test_deterministic_across_workers () =
  List.iter
    (fun n ->
      let p, m0 = map_kernel (Kernels.fir4 ()) in
      let p' = degrade p ~seed:1 ~n in
      (* single-tier fallback: the race degrades to the sequential
         harness, so the whole ladder is deterministic in its inputs
         whatever the worker count *)
      let o1 = Repair.repair ~seed:5 ~fallback:chain ~workers:1 p' m0 in
      let o4 = Repair.repair ~seed:5 ~fallback:chain ~workers:4 p' m0 in
      checkb "same rung" true (o1.Repair.rung = o4.Repair.rung);
      checkb "same mapping bytes" true
        (Marshal.to_string o1.Repair.mapping [] = Marshal.to_string o4.Repair.mapping []);
      checkb "same diagnosis" true (o1.Repair.diagnosis = o4.Repair.diagnosis))
    [ 2; 6; 10 ]

(* ---------- diagnosis: Fu_slot_dead ---------- *)

let test_diagnose_fu_slot_dead () =
  let p, m = map_kernel (Kernels.fir4 ()) in
  let ii = m.Mapping.ii in
  let pe, t = m.Mapping.binding.(0) in
  let p' = { p with Problem.cgra = Cgra.with_faults cgra44 [ Fault.Fu_slot_dead (pe, t mod ii) ] } in
  let d = Repair.diagnose p' m in
  checkb "node 0 diagnosed dead" true (List.mem 0 d.Repair.dead_nodes);
  (* exactly the ops bound to the dead (pe, slot) are dead *)
  List.iter
    (fun v ->
      let pv, tv = m.Mapping.binding.(v) in
      checkb "diagnosed iff on the dead slot"
        (pv = pe && tv mod ii = t mod ii)
        (List.mem v d.Repair.dead_nodes))
    (List.init (Array.length m.Mapping.binding) Fun.id);
  (* and every edge touching a dead node is broken *)
  let edges = Array.of_list (Dfg.edges p.Problem.dfg) in
  Array.iteri
    (fun e (edge : Dfg.edge) ->
      if
        List.mem edge.Dfg.src d.Repair.dead_nodes || List.mem edge.Dfg.dst d.Repair.dead_nodes
      then checkb "incident edge broken" true (List.mem e d.Repair.broken_edges))
    edges;
  (* the ladder still salvages it, certified *)
  let o = Repair.repair ~fallback:chain p' m in
  match o.Repair.mapping with
  | None -> Alcotest.fail "repair should salvage a single dead slot"
  | Some m' -> checkb "certified" true (Check.validate p' m' = [])

(* ---------- diagnosis: Rf_reduced ---------- *)

(* A two-op chain parked on one PE with a gap forces a Hold (the value
   waits in the PE's register file); shrinking that RF to zero must
   break exactly that edge — no binding dies, so the ladder's cheapest
   applicable rung is route-only. *)
let test_diagnose_rf_reduced () =
  let g = Dfg.create () in
  let u = Dfg.input g "u" in
  let v = Dfg.add g Op.Not in
  Dfg.add_edge g ~src:u ~dst:v ~port:0 ~dist:0;
  let p = Problem.temporal ~dfg:g ~cgra:cgra44 ~max_ii:4 ~max_time:24 () in
  let binding = [| (5, 0); (5, 3) |] in
  match Pathfinder.route_all p ~ii:4 binding ~max_iters:8 with
  | None -> Alcotest.fail "two-op hold problem should route"
  | Some m ->
      checkb "route uses a hold" true
        (List.exists
           (function Mapping.Hold _ -> true | Mapping.Hop _ -> false)
           m.Mapping.routes.(0));
      checkb "valid when healthy" true (Check.validate p m = []);
      let rf = Cgra.effective_rf_size cgra44 5 in
      let p' = { p with Problem.cgra = Cgra.with_faults cgra44 [ Fault.Rf_reduced (5, rf) ] } in
      let d = Repair.diagnose p' m in
      checkb "no binding dies" true (d.Repair.dead_nodes = []);
      checkb "the held edge breaks" true (d.Repair.broken_edges = [ 0 ]);
      let o = Repair.repair ~fallback:chain p' m in
      (match o.Repair.mapping with
      | None -> Alcotest.fail "repair should route around a dead RF"
      | Some m' ->
          checkb "certified" true (Check.validate p' m' = []);
          checkb "no hold through the dead RF" true
            (List.for_all
               (function Mapping.Hold { pe = 5; _ } -> false | _ -> true)
               m'.Mapping.routes.(0)))

(* ---------- budget ---------- *)

let test_expired_budget_never_uncertified () =
  let p, m0 = map_kernel (Kernels.fir4 ()) in
  let p' = degrade p ~seed:1 ~n:10 in
  let o = Repair.repair ~deadline:(Deadline.after ~seconds:0.0) ~fallback:chain p' m0 in
  (* the expired clock may stop escalation, but whatever comes back is
     certified or nothing *)
  match o.Repair.mapping with
  | None -> checkb "failure reported" true (o.Repair.rung = None)
  | Some m -> checkb "certified despite expiry" true (Check.validate p' m = [])

(* ---------- frozen-occupancy satellite ---------- *)

let test_occupancy_preclaim_idempotent () =
  let c = Cgra.with_faults cgra44 [ Fault.Pe_down 3; Fault.Fu_slot_dead (1, 0) ] in
  let occ = Occupancy.create ~cgra:c ~npe:16 ~ii:2 () in
  checkb "downed pe claimed" true (Occupancy.fu_user occ ~pe:3 ~time:0 = Some Occupancy.U_fault);
  checkb "dead slot claimed" true (Occupancy.fu_user occ ~pe:1 ~time:0 = Some Occupancy.U_fault);
  checkb "live slot free" true (Occupancy.fu_free occ ~pe:1 ~time:1);
  (* a second pass must not raise on the already-claimed slots *)
  Occupancy.preclaim_faults occ c;
  checkb "still claimed" true (Occupancy.fu_user occ ~pe:3 ~time:1 = Some Occupancy.U_fault)

let test_claim_frozen_filters () =
  let occ = Occupancy.create ~npe:16 ~ii:2 () in
  let binding = [| (0, 0); (1, 1) |] in
  let routes = [| [ Mapping.Hop { pe = 4; time = 1 } ]; [] |] in
  Occupancy.claim_frozen occ ~skip_nodes:(fun v -> v = 1) ~keep_edge:(fun e -> e <> 0) ~binding
    ~routes ();
  checkb "node 0 claimed" true (Occupancy.fu_user occ ~pe:0 ~time:0 = Some (Occupancy.U_node 0));
  checkb "node 1 skipped" true (Occupancy.fu_free occ ~pe:1 ~time:1);
  checkb "edge 0 dropped" true (Occupancy.fu_free occ ~pe:4 ~time:1)

let () =
  Alcotest.run "repair"
    [
      ( "satellites",
        [
          Alcotest.test_case "fault canonicalization" `Quick test_fault_canonical;
          Alcotest.test_case "preclaim idempotent" `Quick test_occupancy_preclaim_idempotent;
          Alcotest.test_case "claim_frozen filters" `Quick test_claim_frozen_filters;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "untouched rung" `Quick test_untouched;
          Alcotest.test_case "shape guard" `Quick test_shape_refused;
          QCheck_alcotest.to_alcotest qcheck_repair_certifies;
          Alcotest.test_case "worker-count determinism" `Quick test_deterministic_across_workers;
          Alcotest.test_case "expired budget" `Quick test_expired_budget_never_uncertified;
        ] );
      ( "diagnosis",
        [
          Alcotest.test_case "fu-slot-dead" `Quick test_diagnose_fu_slot_dead;
          Alcotest.test_case "rf-reduced" `Quick test_diagnose_rf_reduced;
        ] );
    ]

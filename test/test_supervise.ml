(* Supervised execution tests: per-task outcomes instead of
   raise-through, bounded seeded retries that mask injected chaos,
   quarantine of deterministically-poisonous tasks, cooperative
   cancellation (including mid-backoff), per-try watchdogs (including
   firing mid-retry), and the crash-safe campaign checkpoint: journal,
   SIGKILL-shaped truncation, exactly-once-per-seed resume with a
   byte-identical report. *)

open Ocgra_core
module Par = Ocgra_par
module Supervise = Par.Supervise
module Chaos = Par.Chaos
module Journal = Par.Journal
module Kernels = Ocgra_workloads.Kernels
module Machine = Ocgra_sim.Machine
module Reliability = Ocgra_sim.Reliability
module Eval = Ocgra_dfg.Eval

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let live_obs () =
  let metrics = Ocgra_obs.Metrics.create () in
  (Ocgra_obs.Ctx.v ~trace:Ocgra_obs.Trace.off ~metrics (), metrics)

let counter metrics name =
  match List.assoc_opt name (Ocgra_obs.Metrics.dump metrics) with Some v -> v | None -> 0

(* ---------- outcomes ---------- *)

let test_all_ok_parity () =
  let tasks = Array.init 24 (fun i (_stop : unit -> bool) -> (i * i) + 1) in
  let s = Supervise.run ~workers:4 tasks in
  checki "no extra tries" 0 s.Supervise.retried;
  checkb "nothing quarantined" true (s.Supervise.quarantined = []);
  checkb "one try per task" true (Array.for_all (fun t -> t = 1) s.Supervise.tries);
  checkb "payloads in task order" true
    (Supervise.ok_results s = Array.to_list (Array.init 24 (fun i -> (i * i) + 1)))

let test_poison_task_quarantined () =
  let tasks =
    Array.init 9 (fun i (_stop : unit -> bool) ->
        if i = 5 then failwith "poison" else i * 10)
  in
  let obs, metrics = live_obs () in
  let s = Supervise.run ~workers:3 ~obs tasks in
  checkb "poison slot failed" true
    (match s.Supervise.outcomes.(5) with
    | Supervise.Failed (Failure msg) -> msg = "poison"
    | _ -> false);
  checkb "quarantine names exactly the poison task" true (s.Supervise.quarantined = [ 5 ]);
  checki "tries bounded by the policy" (1 + Supervise.default_policy.Supervise.retries)
    s.Supervise.tries.(5);
  checki "everyone else answered" 8 (List.length (Supervise.ok_results s));
  checkb "degraded results in order" true
    (Supervise.ok_results s = [ 0; 10; 20; 30; 40; 60; 70; 80 ]);
  checki "quarantine counter" 1 (counter metrics "supervise.quarantined");
  checki "retry counter matches summary" s.Supervise.retried (counter metrics "supervise.retries")

let test_negative_retries_rejected () =
  Alcotest.check_raises "negative retry count"
    (Invalid_argument "Supervise.run: negative retry count") (fun () ->
      ignore
        (Supervise.run
           ~policy:{ Supervise.default_policy with Supervise.retries = -1 }
           [| (fun _ -> ()) |]))

(* ---------- chaos masked by retries ---------- *)

let test_chaos_masked_by_retries () =
  let n = 48 in
  let tasks = Array.init n (fun i (_stop : unit -> bool) -> i + 100) in
  let chaos = Chaos.make ~fail_rate:0.2 ~seed:2026 () in
  let policy = { Supervise.default_policy with Supervise.retries = 3 } in
  let run workers = Supervise.run ~workers ~policy ~chaos tasks in
  let s = run 1 in
  checkb "chaos actually fired" true (s.Supervise.retried > 0);
  checkb "every injection was masked" true (s.Supervise.quarantined = []);
  checkb "all payloads intact" true
    (Supervise.ok_results s = Array.to_list (Array.init n (fun i -> i + 100)));
  (* the fault pattern is keyed on (seed, task, try), so the whole
     summary is worker-count invariant *)
  List.iter
    (fun w ->
      let sw = run w in
      checkb
        (Printf.sprintf "workers=%d: identical outcomes" w)
        true
        (sw.Supervise.outcomes = s.Supervise.outcomes
        && sw.Supervise.tries = s.Supervise.tries
        && sw.Supervise.retried = s.Supervise.retried))
    [ 2; 4 ]

let test_chaos_determinism () =
  let mk () = Array.init 16 (fun i (_stop : unit -> bool) -> i) in
  let chaos = Chaos.make ~fail_rate:0.5 ~seed:77 () in
  let policy = { Supervise.default_policy with Supervise.retries = 1 } in
  let a = Supervise.run ~workers:4 ~policy ~chaos (mk ()) in
  let b = Supervise.run ~workers:4 ~policy ~chaos (mk ()) in
  checkb "same seed, same summary" true
    (a.Supervise.outcomes = b.Supervise.outcomes
    && a.Supervise.tries = b.Supervise.tries
    && a.Supervise.quarantined = b.Supervise.quarantined)

(* ---------- cancellation ---------- *)

let test_preset_cancel_runs_nothing () =
  let ran = Atomic.make 0 in
  let cancel = Par.Cancel.create () in
  Par.Cancel.set cancel;
  let tasks =
    Array.init 8 (fun i (_stop : unit -> bool) ->
        Atomic.incr ran;
        i)
  in
  let s = Supervise.run ~workers:4 ~cancel tasks in
  checkb "all cancelled" true
    (Array.for_all (function Supervise.Cancelled -> true | _ -> false) s.Supervise.outcomes);
  checki "no task body ran" 0 (Atomic.get ran);
  checkb "no tries started" true (Array.for_all (fun t -> t = 0) s.Supervise.tries);
  checkb "cancelled tasks are not quarantined" true (s.Supervise.quarantined = [])

let test_cancel_interrupts_backoff () =
  (* an always-failing task facing a 5 s backoff: only the cancel
     fired from another domain can end the run quickly *)
  let cancel = Par.Cancel.create () in
  let canceller =
    Domain.spawn (fun () ->
        ignore (Par.Clock.sleep_unless ~until:(fun () -> false) 0.2);
        Par.Cancel.set cancel)
  in
  let policy =
    { Supervise.default_policy with Supervise.retries = 5; backoff_s = 5.0; jitter = 0.0 }
  in
  let t0 = Par.Clock.now () in
  let s = Supervise.run ~workers:1 ~policy ~cancel [| (fun _stop -> failwith "always") |] in
  let dt = Par.Clock.now () -. t0 in
  Domain.join canceller;
  checkb
    (Printf.sprintf "backoff sleep was interrupted (%.2fs)" dt)
    true (dt < 3.0);
  checkb "outcome is Cancelled, not Failed" true
    (s.Supervise.outcomes.(0) = Supervise.Cancelled)

(* ---------- watchdogs ---------- *)

let spin_until_stop stop =
  let t0 = Par.Clock.now () in
  while (not (stop ())) && Par.Clock.now () -. t0 < 10.0 do
    Domain.cpu_relax ()
  done;
  if stop () then failwith "stopped" else failwith "spun to the cap"

let test_watchdog_times_out () =
  let policy =
    {
      Supervise.default_policy with
      Supervise.retries = 1;
      backoff_s = 0.001;
      timeout_s = Some 0.03;
    }
  in
  let s = Supervise.run ~workers:1 ~policy [| spin_until_stop |] in
  checkb "classified Timed_out" true (s.Supervise.outcomes.(0) = Supervise.Timed_out);
  checkb "quarantined" true (s.Supervise.quarantined = [ 0 ]);
  checki "watchdog restarts per try" 2 s.Supervise.tries.(0)

let test_watchdog_fires_mid_retry () =
  (* try 0 fails fast; the watchdog only fires on the retry — the
     fresh per-try deadline must get the blame, and a later clean try
     must still win *)
  let tries_seen = Atomic.make 0 in
  let task stop =
    let k = Atomic.fetch_and_add tries_seen 1 in
    if k = 0 then failwith "fast failure"
    else if k = 1 then spin_until_stop stop
    else 42
  in
  let policy =
    {
      Supervise.default_policy with
      Supervise.retries = 2;
      backoff_s = 0.001;
      timeout_s = Some 0.03;
    }
  in
  let s = Supervise.run ~workers:1 ~policy [| task |] in
  checkb "timed-out retry still retried, then recovered" true
    (s.Supervise.outcomes.(0) = Supervise.Ok 42);
  checki "three tries: fail, time out, succeed" 3 s.Supervise.tries.(0);
  checki "task saw every try" 3 (Atomic.get tries_seen)

let test_chaos_timeout_storm () =
  (* injected delays longer than the watchdog: every try is cut short
     mid-delay, so the whole task set quarantines as Timed_out instead
     of aborting the run *)
  let chaos = Chaos.make ~delay_rate:1.0 ~delay_s:0.5 ~seed:3 () in
  let policy =
    {
      Supervise.default_policy with
      Supervise.retries = 1;
      backoff_s = 0.001;
      timeout_s = Some 0.02;
    }
  in
  let tasks = Array.init 4 (fun i (_stop : unit -> bool) -> i) in
  let s = Supervise.run ~workers:2 ~policy ~chaos tasks in
  checkb "every task timed out" true
    (Array.for_all (fun o -> o = Supervise.Timed_out) s.Supervise.outcomes);
  checkb "all quarantined, run completed" true (s.Supervise.quarantined = [ 0; 1; 2; 3 ])

(* ---------- campaign: chaos equivalence and checkpointing ---------- *)

let cgra33 = Ocgra_arch.Cgra.uniform ~rows:3 ~cols:3 ()

let campaign_setup kernel =
  let k = Kernels.find kernel in
  let p = Problem.temporal ~init:k.Kernels.init ~dfg:k.Kernels.dfg ~cgra:cgra33 () in
  let o = Mapper.run (Ocgra_mappers.Registry.find "modulo-greedy") ~seed:42 p in
  let m =
    match o.Mapper.mapping with
    | Some m -> m
    | None -> Alcotest.fail ("mapping failed: " ^ o.Mapper.note)
  in
  let iters = 6 in
  let mk_io () = Machine.io_of_streams ~memory:k.Kernels.memory (k.Kernels.inputs iters) in
  let reference = Kernels.eval_reference k ~iters in
  let expected = List.map (fun n -> (n, Eval.output_stream reference n)) k.Kernels.outputs in
  (p, m, iters, mk_io, expected)

let test_campaign_chaos_equals_chaos_free () =
  let p, m, iters, mk_io, expected = campaign_setup "saxpy" in
  let camp ?chaos () =
    Reliability.run_campaign ~workers:4 ~retries:3 ?chaos p m ~mk_io ~iters ~expected
      ~trials:40 ~rate:0.004 ~seed:11
  in
  let clean = camp () in
  let chaotic = camp ~chaos:(Chaos.make ~fail_rate:0.1 ~seed:5 ()) () in
  checkb "campaign saw real faults too" true (clean.Reliability.injected > 0);
  checki "nothing quarantined: every injection was masked" 0
    chaotic.Reliability.quarantined;
  checkb "chaotic report identical to chaos-free" true (chaotic = clean)

let with_temp_journal f =
  let path = Filename.temp_file "ocgra-journal" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let test_campaign_checkpoint_resume_identical () =
  let p, m, iters, mk_io, expected = campaign_setup "saxpy" in
  let camp ?checkpoint () =
    Reliability.run_campaign ~workers:2 ?checkpoint p m ~mk_io ~iters ~expected ~trials:24
      ~rate:0.004 ~seed:11
  in
  let straight = camp () in
  with_temp_journal (fun path ->
      let first = camp ~checkpoint:{ Reliability.path; resume = false } () in
      checkb "journaled run matches plain run" true (first = straight);
      checki "header + one line per trial" 25 (List.length (Journal.read_lines path));
      (* resume over the complete journal: nothing re-simulated *)
      let obs, metrics = live_obs () in
      let resumed =
        Reliability.run_campaign ~workers:2 ~obs
          ~checkpoint:{ Reliability.path; resume = true } p m ~mk_io ~iters ~expected
          ~trials:24 ~rate:0.004 ~seed:11
      in
      checkb "full replay is byte-identical" true (resumed = straight);
      checki "every trial replayed from the journal" 24 (counter metrics "campaign.resumed");
      checki "nothing re-journaled" 0 (counter metrics "checkpoint.journaled"))

let test_campaign_resume_after_torn_crash () =
  let p, m, iters, mk_io, expected = campaign_setup "absdiff" in
  let camp ?checkpoint () =
    Reliability.run_campaign ~workers:2 ?checkpoint p m ~mk_io ~iters ~expected ~trials:24
      ~rate:0.004 ~seed:13
  in
  let straight = camp () in
  with_temp_journal (fun path ->
      ignore (camp ~checkpoint:{ Reliability.path; resume = false } ());
      (* SIGKILL shape: keep the header + 9 trials, tear the 10th *)
      let lines = Journal.read_lines path in
      let keep = List.filteri (fun i _ -> i < 10) lines in
      let oc = open_out path in
      List.iter (fun l -> output_string oc (l ^ "\n")) keep;
      output_string oc "{\"trial\": 99, \"se";
      close_out oc;
      let obs, metrics = live_obs () in
      let resumed =
        Reliability.run_campaign ~workers:2 ~obs
          ~checkpoint:{ Reliability.path; resume = true } p m ~mk_io ~iters ~expected
          ~trials:24 ~rate:0.004 ~seed:13
      in
      checkb "resume after crash reproduces the report" true (resumed = straight);
      checki "nine trials replayed, torn line dropped" 9 (counter metrics "campaign.resumed");
      checki "the other fifteen re-simulated and journaled" 15
        (counter metrics "checkpoint.journaled");
      checkb "journal is complete again" true (List.length (Journal.read_lines path) = 25))

let test_campaign_resume_rejects_mismatched_header () =
  let p, m, iters, mk_io, expected = campaign_setup "saxpy" in
  with_temp_journal (fun path ->
      ignore
        (Reliability.run_campaign ~workers:2
           ~checkpoint:{ Reliability.path; resume = false } p m ~mk_io ~iters ~expected
           ~trials:8 ~rate:0.004 ~seed:11);
      checkb "different rate refuses the journal" true
        (try
           ignore
             (Reliability.run_campaign ~workers:2
                ~checkpoint:{ Reliability.path; resume = true } p m ~mk_io ~iters ~expected
                ~trials:8 ~rate:0.005 ~seed:11);
           false
         with Invalid_argument _ -> true))

let () =
  Alcotest.run "supervise"
    [
      ( "outcomes",
        [
          Alcotest.test_case "all-ok parity" `Quick test_all_ok_parity;
          Alcotest.test_case "poison quarantined" `Quick test_poison_task_quarantined;
          Alcotest.test_case "negative retries rejected" `Quick test_negative_retries_rejected;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "masked by retries" `Quick test_chaos_masked_by_retries;
          Alcotest.test_case "seeded determinism" `Quick test_chaos_determinism;
          Alcotest.test_case "timeout storm" `Quick test_chaos_timeout_storm;
        ] );
      ( "cancellation",
        [
          Alcotest.test_case "pre-set cancel" `Quick test_preset_cancel_runs_nothing;
          Alcotest.test_case "interrupts backoff" `Quick test_cancel_interrupts_backoff;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "times out" `Quick test_watchdog_times_out;
          Alcotest.test_case "fires mid-retry" `Quick test_watchdog_fires_mid_retry;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "chaos == chaos-free" `Slow test_campaign_chaos_equals_chaos_free;
          Alcotest.test_case "full-journal replay" `Quick test_campaign_checkpoint_resume_identical;
          Alcotest.test_case "resume after torn crash" `Quick test_campaign_resume_after_torn_crash;
          Alcotest.test_case "mismatched header rejected" `Quick
            test_campaign_resume_rejects_mismatched_header;
        ] );
    ]

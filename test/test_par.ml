(* Parallel execution layer tests: the domain pool (ordering, load
   balancing, exception policy), the composable stop signal
   (Deadline + Cancel), portfolio racing through Mapper.Harness.race
   (validated winners, loser trails, cancellation that actually stops
   a slow tier) and the determinism-under-parallelism guarantee of the
   reliability campaign: one fixed seed, byte-identical report for any
   worker count. *)

open Ocgra_core
module Par = Ocgra_par
module Kernels = Ocgra_workloads.Kernels
module Machine = Ocgra_sim.Machine
module Reliability = Ocgra_sim.Reliability
module Eval = Ocgra_dfg.Eval

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let cgra33 = Ocgra_arch.Cgra.uniform ~rows:3 ~cols:3 ()
let cgra44 = Ocgra_arch.Cgra.uniform ~rows:4 ~cols:4 ()

(* ---------- pool ---------- *)

let test_pool_order_and_parity () =
  let tasks n = Array.init n (fun i () -> (i * i) + 1) in
  let expect n = Array.init n (fun i -> (i * i) + 1) in
  List.iter
    (fun workers ->
      checkb
        (Printf.sprintf "results in task order with %d workers" workers)
        true
        (Par.Pool.run ~workers (tasks 37) = expect 37))
    [ 1; 2; 4; 13 ];
  checkb "default workers" true (Par.Pool.run (tasks 5) = expect 5);
  checkb "empty task array" true (Par.Pool.run ~workers:4 [||] = [||]);
  checki "at least one worker" 1 (max 1 (Par.Pool.default_workers ()) |> min 1);
  Alcotest.(check (list int))
    "map_list preserves order" [ 2; 3; 4; 5 ]
    (Par.Pool.map_list ~workers:3 (fun x -> x + 1) [ 1; 2; 3; 4 ])

let test_pool_uneven_tasks () =
  (* uneven work must still land at the right indices *)
  let tasks =
    Array.init 16 (fun i () ->
        let spin = if i mod 4 = 0 then 20_000 else 10 in
        let acc = ref i in
        for _ = 1 to spin do
          acc := (!acc * 7) mod 1009
        done;
        (i, !acc))
  in
  let seq = Par.Pool.run ~workers:1 tasks in
  let par = Par.Pool.run ~workers:4 tasks in
  checkb "parallel equals sequential" true (seq = par);
  Array.iteri (fun i (j, _) -> checki "index" i j) par

let test_pool_exception_policy () =
  Alcotest.check_raises "lowest-index failure re-raised" (Failure "task 3") (fun () ->
      ignore
        (Par.Pool.run ~workers:4
           (Array.init 8 (fun i () -> if i >= 3 then failwith (Printf.sprintf "task %d" i)))))

(* ---------- stop-signal composition ---------- *)

let test_cancel_flag () =
  let c = Par.Cancel.create () in
  checkb "fresh flag unset" false (Par.Cancel.is_set c);
  let dl = Deadline.with_cancel Deadline.none (Par.Cancel.hook c) in
  checkb "uncancelled, no expiry" false (Deadline.expired dl);
  Par.Cancel.set c;
  Par.Cancel.set c;
  checkb "set is idempotent" true (Par.Cancel.is_set c);
  checkb "cancellation expires the deadline" true (Deadline.expired dl);
  checkb "cancelled is observable on its own" true (Deadline.cancelled dl);
  checkb "clock-only view unaffected" true (Deadline.remaining_s dl = None)

let test_deadline_sooner () =
  let c = Par.Cancel.create () in
  let a = Deadline.after ~seconds:1000.0 in
  let b = Deadline.with_cancel Deadline.none (Par.Cancel.hook c) in
  let s = Deadline.sooner a b in
  checkb "neither fired yet" false (Deadline.expired s);
  (match Deadline.remaining_s s with
  | Some r -> checkb "keeps the finite expiry" true (r > 0.0)
  | None -> Alcotest.fail "sooner lost the clock");
  Par.Cancel.set c;
  checkb "either side cancels" true (Deadline.expired s);
  let tight = Deadline.sooner (Deadline.after ~seconds:1000.0) (Deadline.after ~seconds:(-1.0)) in
  checkb "min of two expiries" true (Deadline.expired tight)

(* The composition edge cases the supervision layer leans on: expired
   inputs, double-cancel hooks, clamping — each must survive [sooner]
   without resurrecting a dead deadline or losing a live hook. *)
let test_deadline_sooner_edge_cases () =
  (* both sides already expired: still expired, remaining clamps to 0 *)
  let dead = Deadline.sooner (Deadline.after ~seconds:(-5.0)) (Deadline.after ~seconds:(-1.0)) in
  checkb "both expired stays expired" true (Deadline.expired dead);
  (match Deadline.remaining_s dead with
  | Some r -> checkb "remaining clamped at zero" true (r = 0.0)
  | None -> Alcotest.fail "sooner of two finite deadlines lost the clock");
  (* one side expired at composition time: the result is born expired *)
  let born_dead = Deadline.sooner Deadline.none (Deadline.after ~seconds:(-1.0)) in
  checkb "expired side dominates none" true (Deadline.expired born_dead);
  checkb "an expired component is not a cancellation" false (Deadline.cancelled born_dead);
  (* none/none: never expires, no clock to report *)
  let never = Deadline.sooner Deadline.none Deadline.none in
  checkb "none of none" false (Deadline.expired never);
  checkb "no clock view" true (Deadline.remaining_s never = None);
  (* hooks on both sides OR together across the composition *)
  let ca = Par.Cancel.create () and cb = Par.Cancel.create () in
  let s =
    Deadline.sooner
      (Deadline.with_cancel (Deadline.after ~seconds:1000.0) (Par.Cancel.hook ca))
      (Deadline.with_cancel Deadline.none (Par.Cancel.hook cb))
  in
  checkb "neither hook fired" false (Deadline.expired s);
  Par.Cancel.set cb;
  checkb "second side's hook cancels the composite" true (Deadline.cancelled s);
  Par.Cancel.set ca;
  checkb "both set stays cancelled" true (Deadline.cancelled s);
  (* stacking with_cancel twice ORs, never replaces *)
  let c1 = Par.Cancel.create () and c2 = Par.Cancel.create () in
  let stacked =
    Deadline.with_cancel (Deadline.with_cancel Deadline.none (Par.Cancel.hook c1))
      (Par.Cancel.hook c2)
  in
  Par.Cancel.set c1;
  checkb "inner hook survives the outer attach" true (Deadline.cancelled stacked);
  (* should_stop observes composed cancellation like expiry *)
  let c3 = Par.Cancel.create () in
  let polled =
    Deadline.sooner (Deadline.after ~seconds:1000.0)
      (Deadline.with_cancel Deadline.none (Par.Cancel.hook c3))
  in
  let stop = Deadline.should_stop polled in
  checkb "hook not fired: polling says go" false (stop ());
  Par.Cancel.set c3;
  checkb "polling sees the composed cancel" true (stop ())

(* ---------- racing mappers ---------- *)

let greedy () = Ocgra_mappers.Registry.find "modulo-greedy"

let problem_of kernel =
  let k = Kernels.find kernel in
  (k, Problem.temporal ~init:k.Kernels.init ~dfg:k.Kernels.dfg ~cgra:cgra44 ())

(* A tier that spins (politely polling its stop signal) for far longer
   than any test budget: only cancellation or expiry can end it. *)
let slow_tier =
  Mapper.make ~name:"slow-spin" ~citation:"test" ~scope:Taxonomy.Temporal_mapping
    ~approach:Taxonomy.Heuristic (fun _p _rng dl _obs ->
      let stop = Deadline.should_stop dl in
      let t0 = Deadline.now () in
      while (not (stop ())) && Deadline.now () -. t0 < 60.0 do
        Domain.cpu_relax ()
      done;
      Mapper.no_mapping ~attempts:1 ~elapsed_s:0.0
        ~note:(if stop () then "stopped by the stop signal" else "spun to the cap")
        ())

(* A tier that instantly claims success with a corrupted mapping: two
   ops forced onto the same (PE, cycle).  [Mapper.run] must demote it,
   so a race can never be won by an invalid mapping. *)
let bogus_tier =
  Mapper.make ~name:"bogus-fast" ~citation:"test" ~scope:Taxonomy.Temporal_mapping
    ~approach:Taxonomy.Heuristic (fun p rng _dl _obs ->
      match Ocgra_mappers.Constructive.map p rng with
      | Some m, attempts, _ ->
          let binding = Array.copy m.Mapping.binding in
          binding.(0) <- binding.(1);
          { mapping = Some { m with Mapping.binding }; proven_optimal = false; attempts;
            elapsed_s = 0.0; note = ""; trail = [] }
      | None, attempts, _ -> Mapper.no_mapping ~attempts ~elapsed_s:0.0 ())

let failing_tier name =
  Mapper.make ~name ~citation:"test" ~scope:Taxonomy.Temporal_mapping
    ~approach:Taxonomy.Heuristic (fun _p _rng _dl _obs ->
      Mapper.no_mapping ~attempts:1 ~elapsed_s:0.0 ~note:"synthetic failure" ())

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let test_race_returns_validated_winner () =
  let _, p = problem_of "dot-product" in
  let o = Mapper.Harness.race ~workers:2 ~deadline_s:30.0 [ bogus_tier; greedy () ] p in
  (match o.Mapper.mapping with
  | None -> Alcotest.fail ("race failed: " ^ o.Mapper.note)
  | Some m -> Alcotest.(check (list string)) "winner validates" [] (Check.validate p m));
  checkb "note names the winner" true (contains o.Mapper.note "race won by");
  checkb "note names the winning tier" true (contains o.Mapper.note "modulo-greedy");
  checkb "loser trail carries the demotion" true (contains o.Mapper.note "INVALID")

let test_race_cancels_slow_tier () =
  let _, p = problem_of "fir4" in
  let t0 = Deadline.now () in
  let o = Mapper.Harness.race ~workers:2 ~deadline_s:30.0 [ slow_tier; greedy () ] p in
  let dt = Deadline.now () -. t0 in
  checkb ("race answered: " ^ o.Mapper.note) true (o.Mapper.mapping <> None);
  (* the slow tier spins for 60 s unless cancelled: answering well
     under that (and under the 30 s budget) proves the winner's flag
     reached the loser through its should_stop polling *)
  checkb (Printf.sprintf "cancelled within the budget (%.2fs)" dt) true (dt < 20.0);
  checkb "loser trail shows the stop" true (contains o.Mapper.note "stopped by the stop signal")

let test_race_no_winner_carries_trail () =
  let _, p = problem_of "dot-product" in
  let o =
    Mapper.Harness.race ~workers:2 ~deadline_s:10.0
      [ failing_tier "fail-a"; failing_tier "fail-b" ]
      p
  in
  checkb "no mapping" true (o.Mapper.mapping = None);
  checkb "trail names both tiers" true
    (contains o.Mapper.note "fail-a" && contains o.Mapper.note "fail-b");
  checkb "trail carries the notes" true (contains o.Mapper.note "synthetic failure")

let test_race_degrades_to_sequential () =
  let _, p = problem_of "dot-product" in
  let o = Mapper.Harness.race ~workers:1 [ failing_tier "fail-a"; greedy () ] p in
  checkb "sequential fallback answers" true (o.Mapper.mapping <> None);
  checkb "sequential note shape" true (contains o.Mapper.note "answered by tier");
  let o1 = Mapper.Harness.race ~workers:4 [ greedy () ] p in
  checkb "single-tier race answers" true (o1.Mapper.mapping <> None);
  Alcotest.check_raises "empty chain rejected"
    (Invalid_argument "Mapper.Harness.race: empty fallback chain") (fun () ->
      ignore (Mapper.Harness.race ~workers:2 [] p))

(* race vs sequential chain latency on the small suite: with >= 2
   domains the race must not answer later than the sequential chain
   (monotonic clock, generous tolerance for 1-core CI time-slicing). *)
let test_race_not_slower_than_chain () =
  let chain = [ slow_tier; greedy () ] in
  let kernels = [ "dot-product"; "saxpy"; "fir4" ] in
  let budget = 6.0 in
  List.iter
    (fun kernel ->
      let _, p = problem_of kernel in
      let t0 = Deadline.now () in
      let seq = Mapper.Harness.run ~retries:1 ~deadline_s:budget chain p in
      let seq_dt = Deadline.now () -. t0 in
      let t1 = Deadline.now () in
      let raced = Mapper.Harness.race ~workers:2 ~deadline_s:budget chain p in
      let raced_dt = Deadline.now () -. t1 in
      checkb (kernel ^ ": both answer") true
        (seq.Mapper.mapping <> None && raced.Mapper.mapping <> None);
      (* the sequential chain burns the slow tier's whole budget share
         first; the race pays only the fast tier plus cancellation *)
      checkb
        (Printf.sprintf "%s: race (%.2fs) <= chain (%.2fs) + slack" kernel raced_dt seq_dt)
        true
        (raced_dt <= seq_dt +. 1.0))
    kernels

(* ---------- parallel reliability campaigns ---------- *)

let campaign_setup kernel =
  let k = Kernels.find kernel in
  let p = Problem.temporal ~init:k.Kernels.init ~dfg:k.Kernels.dfg ~cgra:cgra33 () in
  let o = Mapper.run (greedy ()) ~seed:42 p in
  let m =
    match o.Mapper.mapping with
    | Some m -> m
    | None -> Alcotest.fail ("mapping failed: " ^ o.Mapper.note)
  in
  let iters = 6 in
  let mk_io () = Machine.io_of_streams ~memory:k.Kernels.memory (k.Kernels.inputs iters) in
  let reference = Kernels.eval_reference k ~iters in
  let expected =
    List.map (fun n -> (n, Eval.output_stream reference n)) k.Kernels.outputs
  in
  (p, m, iters, mk_io, expected)

let test_campaign_worker_count_invariance () =
  List.iter
    (fun kernel ->
      let p, m, iters, mk_io, expected = campaign_setup kernel in
      let camp workers =
        Reliability.run_campaign ?workers p m ~mk_io ~iters ~expected ~trials:48 ~rate:0.004
          ~seed:11
      in
      let sequential = camp (Some 1) in
      checkb (kernel ^ ": campaign saw events") true (sequential.Reliability.injected > 0);
      List.iter
        (fun w ->
          checkb
            (Printf.sprintf "%s: workers=%d report identical to sequential" kernel w)
            true
            (camp (Some w) = sequential))
        [ 1; 2; 4 ];
      checkb (kernel ^ ": default workers identical too") true (camp None = sequential))
    [ "saxpy"; "absdiff" ]

let test_campaign_trial_count_tallies () =
  let p, m, iters, mk_io, expected = campaign_setup "saxpy" in
  let rep =
    Reliability.run_campaign ~workers:4 p m ~mk_io ~iters ~expected ~trials:30 ~rate:0.003
      ~seed:7
  in
  checki "every trial classified exactly once" 30
    (rep.Reliability.correct + rep.Reliability.masked + rep.Reliability.detected
    + rep.Reliability.sdc + rep.Reliability.crash)

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "order and parity" `Quick test_pool_order_and_parity;
          Alcotest.test_case "uneven tasks" `Quick test_pool_uneven_tasks;
          Alcotest.test_case "exception policy" `Quick test_pool_exception_policy;
        ] );
      ( "stop-signal",
        [
          Alcotest.test_case "cancel flag" `Quick test_cancel_flag;
          Alcotest.test_case "sooner" `Quick test_deadline_sooner;
          Alcotest.test_case "sooner edge cases" `Quick test_deadline_sooner_edge_cases;
        ] );
      ( "race",
        [
          Alcotest.test_case "validated winner" `Quick test_race_returns_validated_winner;
          Alcotest.test_case "cancels slow tier" `Quick test_race_cancels_slow_tier;
          Alcotest.test_case "no winner, full trail" `Quick test_race_no_winner_carries_trail;
          Alcotest.test_case "sequential degradation" `Quick test_race_degrades_to_sequential;
          Alcotest.test_case "not slower than the chain" `Slow test_race_not_slower_than_chain;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "worker-count invariance" `Slow test_campaign_worker_count_invariance;
          Alcotest.test_case "trial tallies" `Quick test_campaign_trial_count_tallies;
        ] );
    ]

(* LP / ILP solver tests: textbook instances, brute-force agreement on
   random binary programs, knapsack. *)

module Lp = Ocgra_ilp.Lp
module Ilp = Ocgra_ilp.Ilp
module Model = Ocgra_ilp.Model
module Rng = Ocgra_util.Rng

let checkb = Alcotest.check Alcotest.bool
let checkf = Alcotest.check (Alcotest.float 1e-4)

let test_lp_basic () =
  (* max 3x + 2y st x + y <= 4; x + 3y <= 6 -> x=4, y=0, value 12 *)
  let p =
    {
      Lp.n = 2;
      maximize = true;
      objective = [| 3.0; 2.0 |];
      rows = [ ([| 1.0; 1.0 |], Lp.Le, 4.0); ([| 1.0; 3.0 |], Lp.Le, 6.0) ];
    }
  in
  match Lp.solve p with
  | Lp.Optimal { value; solution } ->
      checkf "value" 12.0 value;
      checkf "x" 4.0 solution.(0);
      checkf "y" 0.0 solution.(1)
  | _ -> Alcotest.fail "expected optimal"

let test_lp_degenerate_min () =
  (* min x + y st x + y >= 2; x <= 5 -> value 2 *)
  let p =
    {
      Lp.n = 2;
      maximize = false;
      objective = [| 1.0; 1.0 |];
      rows = [ ([| 1.0; 1.0 |], Lp.Ge, 2.0); ([| 1.0; 0.0 |], Lp.Le, 5.0) ];
    }
  in
  match Lp.solve p with
  | Lp.Optimal { value; _ } -> checkf "value" 2.0 value
  | _ -> Alcotest.fail "expected optimal"

let test_lp_infeasible () =
  let p =
    {
      Lp.n = 1;
      maximize = true;
      objective = [| 1.0 |];
      rows = [ ([| 1.0 |], Lp.Ge, 3.0); ([| 1.0 |], Lp.Le, 2.0) ];
    }
  in
  checkb "infeasible" true (Lp.solve p = Lp.Infeasible)

let test_lp_unbounded () =
  let p = { Lp.n = 1; maximize = true; objective = [| 1.0 |]; rows = [] } in
  checkb "unbounded" true (Lp.solve p = Lp.Unbounded)

let test_lp_equality () =
  (* max x st x + y = 3; y >= 1 modeled as -y <= -1 -> x = 2 *)
  let p =
    {
      Lp.n = 2;
      maximize = true;
      objective = [| 1.0; 0.0 |];
      rows = [ ([| 1.0; 1.0 |], Lp.Eq, 3.0); ([| 0.0; 1.0 |], Lp.Ge, 1.0) ];
    }
  in
  match Lp.solve p with
  | Lp.Optimal { value; _ } -> checkf "value" 2.0 value
  | _ -> Alcotest.fail "expected optimal"

let test_knapsack () =
  (* values 10,13,7,8; weights 5,7,4,3; cap 10 -> best = 13+8=21 (w=10) *)
  let m = Model.create ~maximize:true () in
  let xs = List.map (fun i -> Model.binary m (Printf.sprintf "x%d" i)) [ 0; 1; 2; 3 ] in
  let values = [ 10.0; 13.0; 7.0; 8.0 ] and weights = [ 5.0; 7.0; 4.0; 3.0 ] in
  Model.set_objective m (List.map2 (fun v x -> (v, x)) values xs);
  Model.add_constraint m (List.map2 (fun w x -> (w, x)) weights xs) Lp.Le 10.0;
  match Model.solve m with
  | Model.Optimal value, Some _, _ -> checkf "knapsack" 21.0 value
  | _ -> Alcotest.fail "expected optimal"

(* brute force 0/1 programs *)
let brute_force_binary ~n ~maximize ~objective ~rows =
  let best = ref None in
  for mask = 0 to (1 lsl n) - 1 do
    let x = Array.init n (fun j -> if mask land (1 lsl j) <> 0 then 1.0 else 0.0) in
    let feasible =
      List.for_all
        (fun (coeffs, rel, b) ->
          let lhs = ref 0.0 in
          Array.iteri (fun j c -> lhs := !lhs +. (c *. x.(j))) coeffs;
          match rel with
          | Lp.Le -> !lhs <= b +. 1e-9
          | Lp.Ge -> !lhs >= b -. 1e-9
          | Lp.Eq -> Float.abs (!lhs -. b) < 1e-9)
        rows
    in
    if feasible then begin
      let v = ref 0.0 in
      Array.iteri (fun j xv -> v := !v +. (objective.(j) *. xv)) x;
      match !best with
      | None -> best := Some !v
      | Some b -> if maximize then best := Some (max b !v) else best := Some (min b !v)
    end
  done;
  !best

let qcheck_binary_programs =
  QCheck.Test.make ~name:"random binary programs agree with brute force" ~count:150
    QCheck.(pair (int_bound 1_000_000) (int_range 2 7))
    (fun (seed, n) ->
      let rng = Rng.create ((seed * 31) + n) in
      let nrows = 1 + Rng.int rng 5 in
      let objective = Array.init n (fun _ -> float_of_int (Rng.int_in rng (-5) 9)) in
      let rows =
        List.init nrows (fun _ ->
            let coeffs = Array.init n (fun _ -> float_of_int (Rng.int_in rng (-3) 6)) in
            let rel = if Rng.bool rng then Lp.Le else Lp.Ge in
            let b = float_of_int (Rng.int_in rng (-2) 8) in
            (coeffs, rel, b))
      in
      let maximize = Rng.bool rng in
      (* binary bounds as rows *)
      let bound_rows =
        List.init n (fun j ->
            let c = Array.make n 0.0 in
            c.(j) <- 1.0;
            (c, Lp.Le, 1.0))
      in
      let p =
        {
          Ilp.lp = { Lp.n; maximize; objective; rows = rows @ bound_rows };
          kinds = Array.make n Ilp.Integer;
        }
      in
      let expected = brute_force_binary ~n ~maximize ~objective ~rows in
      match
        ( fst
            (Ilp.solve ~max_nodes:20000
               ~should_stop:(Ocgra_core.Deadline.should_stop (Ocgra_core.Deadline.after ~seconds:5.0))
               p),
          expected )
      with
      | Ilp.Optimal { value; _ }, Some e -> Float.abs (value -. e) < 1e-4
      | Ilp.Infeasible, None -> true
      | Ilp.Optimal _, None -> false
      | Ilp.Infeasible, Some _ -> false
      | (Ilp.Feasible _ | Ilp.Limit | Ilp.Unbounded), _ -> QCheck.assume_fail ())

let () =
  Alcotest.run "ilp"
    [
      ( "lp",
        [
          Alcotest.test_case "basic max" `Quick test_lp_basic;
          Alcotest.test_case "degenerate min" `Quick test_lp_degenerate_min;
          Alcotest.test_case "infeasible" `Quick test_lp_infeasible;
          Alcotest.test_case "unbounded" `Quick test_lp_unbounded;
          Alcotest.test_case "equality" `Quick test_lp_equality;
        ] );
      ( "ilp",
        [
          Alcotest.test_case "knapsack" `Quick test_knapsack;
          QCheck_alcotest.to_alcotest qcheck_binary_programs;
        ] );
    ]

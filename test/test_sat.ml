(* SAT solver tests: hand instances, brute-force agreement on random
   CNF, pigeonhole unsatisfiability, cardinality encodings. *)

module Solver = Ocgra_sat.Solver
module Enc = Ocgra_sat.Encodings
module Rng = Ocgra_util.Rng

let check = Alcotest.check Alcotest.bool

(* brute-force satisfiability of a CNF over vars 1..n *)
let brute_force n clauses =
  let rec go assignment v =
    if v > n then
      List.for_all
        (fun clause ->
          List.exists
            (fun l ->
              let var = Solver.var_of l in
              if Solver.is_pos l then assignment.(var) else not assignment.(var))
            clause)
        clauses
    else begin
      assignment.(v) <- true;
      go assignment (v + 1)
      ||
      (assignment.(v) <- false;
       go assignment (v + 1))
    end
  in
  go (Array.make (n + 1) false) 1

let solve_clauses n clauses =
  let s = Solver.create () in
  let _vars = Solver.new_vars s n in
  List.iter (Solver.add_clause s) clauses;
  (s, Solver.solve s)

let model_satisfies s clauses =
  List.for_all
    (fun clause ->
      List.exists
        (fun l ->
          let v = Solver.value s (Solver.var_of l) in
          if Solver.is_pos l then v else not v)
        clause)
    clauses

let test_trivial () =
  let s = Solver.create () in
  let v = Solver.new_var s in
  Solver.add_clause s [ Solver.pos v ];
  check "sat" true (Solver.solve s = Solver.Sat);
  check "value" true (Solver.value s v)

let test_unsat_pair () =
  let s = Solver.create () in
  let v = Solver.new_var s in
  Solver.add_clause s [ Solver.pos v ];
  Solver.add_clause s [ Solver.neg v ];
  check "unsat" true (Solver.solve s = Solver.Unsat)

let test_empty_clause () =
  let s = Solver.create () in
  let _ = Solver.new_var s in
  Solver.add_clause s [];
  check "unsat" true (Solver.solve s = Solver.Unsat)

let test_implication_chain () =
  let s = Solver.create () in
  let n = 50 in
  let vars = Array.of_list (Solver.new_vars s n) in
  for i = 0 to n - 2 do
    Solver.add_clause s [ Solver.neg vars.(i); Solver.pos vars.(i + 1) ]
  done;
  Solver.add_clause s [ Solver.pos vars.(0) ];
  check "sat" true (Solver.solve s = Solver.Sat);
  for i = 0 to n - 1 do
    check "chain forced" true (Solver.value s vars.(i))
  done

(* Pigeonhole: n+1 pigeons, n holes -> UNSAT; stresses learning. *)
let test_pigeonhole () =
  let n = 5 in
  let s = Solver.create () in
  let x = Array.init (n + 1) (fun _ -> Array.of_list (Solver.new_vars s n)) in
  for p = 0 to n do
    Solver.add_clause s (List.init n (fun h -> Solver.pos x.(p).(h)))
  done;
  for h = 0 to n - 1 do
    for p1 = 0 to n do
      for p2 = p1 + 1 to n do
        Solver.add_clause s [ Solver.neg x.(p1).(h); Solver.neg x.(p2).(h) ]
      done
    done
  done;
  check "php unsat" true (Solver.solve s = Solver.Unsat)

let test_assumptions () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  Solver.add_clause s [ Solver.neg a; Solver.pos b ];
  check "sat under a" true (Solver.solve ~assumptions:[ Solver.pos a ] s = Solver.Sat);
  check "b forced" true (Solver.value s b);
  Solver.add_clause s [ Solver.neg b ];
  check "unsat under a" true (Solver.solve ~assumptions:[ Solver.pos a ] s = Solver.Unsat);
  (* instance still satisfiable without the assumption *)
  check "sat without" true (Solver.solve s = Solver.Sat)

(* regression: at_most_k with k < 0 is contradictory by itself — it
   must add the empty clause, not quietly behave like k = 0 (which is
   satisfiable by setting every listed literal false) *)
let test_at_most_k_negative () =
  let s = Solver.create () in
  let vars = Solver.new_vars s 3 in
  Enc.at_most_k s (List.map Solver.pos vars) (-1);
  check "k=-1 unsat" true (Solver.solve s = Solver.Unsat);
  (* even over zero literals: no assignment has a negative true-count *)
  let s = Solver.create () in
  Enc.at_most_k s [] (-2);
  check "k=-2 over [] unsat" true (Solver.solve s = Solver.Unsat);
  (* guarded: the contradiction is confined to the guard group *)
  let s = Solver.create () in
  let g = Solver.pos (Solver.new_var s) in
  let vars = Solver.new_vars s 2 in
  Enc.at_most_k ~guard:g s (List.map Solver.pos vars) (-1);
  check "plain still sat" true (Solver.solve s = Solver.Sat);
  check "unsat under guard" true (Solver.solve ~assumptions:[ g ] s = Solver.Unsat);
  check "instance stays ok" true (Solver.is_ok s)

let test_failed_assumption_core () =
  let s = Solver.create () in
  let a = Solver.pos (Solver.new_var s)
  and b = Solver.pos (Solver.new_var s)
  and c = Solver.pos (Solver.new_var s) in
  Solver.add_clause s [ Solver.negate a; Solver.negate b ];
  check "unsat under a,b,c" true
    (Solver.solve ~assumptions:[ a; b; c ] s = Solver.Unsat);
  let core = Solver.conflict_assumptions s in
  check "core nonempty" true (core <> []);
  check "core within assumptions" true
    (List.for_all (fun l -> List.mem l [ a; b; c ]) core);
  (* the core alone is already inconsistent with the instance *)
  check "core re-solves unsat" true (Solver.solve ~assumptions:core s = Solver.Unsat);
  check "instance usable" true (Solver.is_ok s);
  check "sat dropping b" true (Solver.solve ~assumptions:[ a; c ] s = Solver.Sat)

let test_instance_unsat_empty_core () =
  let s = Solver.create () in
  let a = Solver.pos (Solver.new_var s) in
  Solver.add_clause s [];
  check "unsat" true (Solver.solve ~assumptions:[ a ] s = Solver.Unsat);
  check "empty core" true (Solver.conflict_assumptions s = []);
  check "not ok" true (not (Solver.is_ok s))

(* guard literals make clause groups retractable: activate each group
   by assumption, retire it with a unit against its guard *)
let test_guard_groups () =
  let s = Solver.create () in
  let g1 = Solver.pos (Solver.new_var s) and g2 = Solver.pos (Solver.new_var s) in
  let x = Solver.new_var s in
  Enc.at_least_one ~guard:g1 s [ Solver.pos x ];
  Enc.at_least_one ~guard:g2 s [ Solver.neg x ];
  check "group 1 sat" true (Solver.solve ~assumptions:[ g1 ] s = Solver.Sat);
  check "group 1 forces x" true (Solver.value s x);
  check "group 2 sat" true (Solver.solve ~assumptions:[ g2 ] s = Solver.Sat);
  check "group 2 forces ~x" true (not (Solver.value s x));
  check "both unsat" true (Solver.solve ~assumptions:[ g1; g2 ] s = Solver.Unsat);
  let core = Solver.conflict_assumptions s in
  check "core is both guards" true
    (List.sort compare core = List.sort compare [ g1; g2 ]);
  (* retire group 1; group 2 must still activate on the same instance *)
  Solver.add_clause s [ Solver.negate g1 ];
  check "group 2 after retirement" true (Solver.solve ~assumptions:[ g2 ] s = Solver.Sat);
  check "still ~x" true (not (Solver.value s x));
  Alcotest.(check (list string)) "self_check clean" [] (Solver.self_check s)

(* a tiny reduce_db budget forces learnt-DB reductions on the
   pigeonhole instance; reductions must never break the verdict or the
   reason/watch invariants (reasons of asserted literals are locked) *)
let test_reduce_db_invariants () =
  let n = 5 in
  let s = Solver.create ~reduce_base:10 () in
  let x = Array.init (n + 1) (fun _ -> Array.of_list (Solver.new_vars s n)) in
  for p = 0 to n do
    Solver.add_clause s (List.init n (fun h -> Solver.pos x.(p).(h)))
  done;
  for h = 0 to n - 1 do
    for p1 = 0 to n do
      for p2 = p1 + 1 to n do
        Solver.add_clause s [ Solver.neg x.(p1).(h); Solver.neg x.(p2).(h) ]
      done
    done
  done;
  check "php unsat under reduction" true (Solver.solve s = Solver.Unsat);
  check "reduction actually ran" true (Solver.n_reduces s >= 1);
  Alcotest.(check (list string)) "self_check clean" [] (Solver.self_check s)

(* long solves must keep clause activities finite: the rescale guard
   is exercised by many conflicts on a small budget *)
let test_clause_activity_rescale () =
  let n = 6 in
  let s = Solver.create ~reduce_base:50 () in
  let x = Array.init (n + 1) (fun _ -> Array.of_list (Solver.new_vars s n)) in
  for p = 0 to n do
    Solver.add_clause s (List.init n (fun h -> Solver.pos x.(p).(h)))
  done;
  for h = 0 to n - 1 do
    for p1 = 0 to n do
      for p2 = p1 + 1 to n do
        Solver.add_clause s [ Solver.neg x.(p1).(h); Solver.neg x.(p2).(h) ]
      done
    done
  done;
  check "php6 unsat" true (Solver.solve s = Solver.Unsat);
  let conflicts, _, _ = Solver.stats s in
  check "enough conflicts to matter" true (conflicts > 100);
  Alcotest.(check (list string)) "self_check clean" [] (Solver.self_check s)

let random_cnf rng ~nvars ~nclauses ~width =
  List.init nclauses (fun _ ->
      List.init (1 + Rng.int rng width) (fun _ ->
          let v = 1 + Rng.int rng nvars in
          if Rng.bool rng then Solver.pos v else Solver.neg v))

let qcheck_agree_with_brute_force =
  QCheck.Test.make ~name:"random CNF agrees with brute force" ~count:300
    QCheck.(pair (int_bound 1_000_000) (int_range 1 10))
    (fun (seed, nvars) ->
      let rng = Rng.create (seed * 7919) in
      let nclauses = 2 + Rng.int rng (4 * nvars) in
      let clauses = random_cnf rng ~nvars ~nclauses ~width:3 in
      let s, result = solve_clauses nvars clauses in
      let expected = brute_force nvars clauses in
      match result with
      | Solver.Sat -> expected && model_satisfies s clauses
      | Solver.Unsat -> not expected
      | Solver.Unknown -> false)

let qcheck_at_most_k =
  QCheck.Test.make ~name:"at_most_k counts correctly" ~count:100
    QCheck.(pair (int_bound 1_000_000) (pair (int_range 1 8) (int_range (-2) 8)))
    (fun (seed, (n, k)) ->
      let rng = Rng.create (seed + 13) in
      let s = Solver.create () in
      let vars = Array.of_list (Solver.new_vars s n) in
      Enc.at_most_k s (Array.to_list (Array.map Solver.pos vars)) k;
      (* force a random subset of size m *)
      let m = Rng.int rng (n + 1) in
      let idx = Rng.sample_indices rng n m in
      Array.iter (fun i -> Solver.add_clause s [ Solver.pos vars.(i) ]) idx;
      let result = Solver.solve s in
      (* k < 0 is contradictory regardless of the forced subset *)
      if k >= 0 && m <= k then result = Solver.Sat else result = Solver.Unsat)

(* failed-assumption-core soundness: whenever a solve is UNSAT under
   assumptions, the reported core is a subset of the assumptions and
   re-solving under exactly the core is again UNSAT *)
let qcheck_failed_core_sound =
  QCheck.Test.make ~name:"failed-assumption core is sound" ~count:300
    QCheck.(pair (int_bound 1_000_000) (int_range 2 10))
    (fun (seed, nvars) ->
      let rng = Rng.create ((seed * 31) + 7) in
      let nclauses = 2 + Rng.int rng (5 * nvars) in
      let clauses = random_cnf rng ~nvars ~nclauses ~width:3 in
      let s = Solver.create () in
      let _ = Solver.new_vars s nvars in
      List.iter (Solver.add_clause s) clauses;
      let n_assump = 1 + Rng.int rng nvars in
      let assumptions =
        Array.to_list
          (Array.map
             (fun i -> if Rng.bool rng then Solver.pos (i + 1) else Solver.neg (i + 1))
             (Rng.sample_indices rng nvars n_assump))
      in
      match Solver.solve ~assumptions s with
      | Solver.Unknown -> false
      | Solver.Sat -> Solver.conflict_assumptions s = []
      | Solver.Unsat ->
          let core = Solver.conflict_assumptions s in
          List.for_all (fun l -> List.mem l assumptions) core
          && (if Solver.is_ok s then core <> [] else true)
          && Solver.solve ~assumptions:core s = Solver.Unsat)

(* incremental reuse: one instance answering a sequence of assumption
   queries must agree with a fresh instance per query *)
let qcheck_incremental_matches_fresh =
  QCheck.Test.make ~name:"incremental solves match fresh solves" ~count:150
    QCheck.(pair (int_bound 1_000_000) (int_range 2 8))
    (fun (seed, nvars) ->
      let rng = Rng.create ((seed * 17) + 3) in
      let nclauses = 2 + Rng.int rng (4 * nvars) in
      let clauses = random_cnf rng ~nvars ~nclauses ~width:3 in
      let shared = Solver.create () in
      let _ = Solver.new_vars shared nvars in
      List.iter (Solver.add_clause shared) clauses;
      let queries =
        List.init 4 (fun _ ->
            let n_assump = Rng.int rng (nvars + 1) in
            Array.to_list
              (Array.map
                 (fun i -> if Rng.bool rng then Solver.pos (i + 1) else Solver.neg (i + 1))
                 (Rng.sample_indices rng nvars n_assump)))
      in
      List.for_all
        (fun assumptions ->
          let fresh = Solver.create () in
          let _ = Solver.new_vars fresh nvars in
          List.iter (Solver.add_clause fresh) clauses;
          Solver.solve ~assumptions shared = Solver.solve ~assumptions fresh)
        queries
      && Solver.self_check shared = [])

let qcheck_exactly_one =
  QCheck.Test.make ~name:"exactly_one has exactly one true" ~count:100
    QCheck.(pair (int_bound 1_000_000) (int_range 1 15))
    (fun (_seed, n) ->
      let s = Solver.create () in
      let vars = Array.of_list (Solver.new_vars s n) in
      Enc.exactly_one s (Array.to_list (Array.map Solver.pos vars));
      match Solver.solve s with
      | Solver.Sat ->
          let count = Array.fold_left (fun acc v -> if Solver.value s v then acc + 1 else acc) 0 vars in
          count = 1
      | _ -> false)

let () =
  Alcotest.run "sat"
    [
      ( "unit",
        [
          Alcotest.test_case "trivial" `Quick test_trivial;
          Alcotest.test_case "unsat pair" `Quick test_unsat_pair;
          Alcotest.test_case "empty clause" `Quick test_empty_clause;
          Alcotest.test_case "implication chain" `Quick test_implication_chain;
          Alcotest.test_case "pigeonhole" `Quick test_pigeonhole;
          Alcotest.test_case "assumptions" `Quick test_assumptions;
          Alcotest.test_case "at_most_k negative k" `Quick test_at_most_k_negative;
          Alcotest.test_case "failed-assumption core" `Quick test_failed_assumption_core;
          Alcotest.test_case "instance-unsat empty core" `Quick test_instance_unsat_empty_core;
          Alcotest.test_case "guard groups" `Quick test_guard_groups;
          Alcotest.test_case "reduce_db invariants" `Quick test_reduce_db_invariants;
          Alcotest.test_case "activity stays finite" `Quick test_clause_activity_rescale;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest qcheck_agree_with_brute_force;
          QCheck_alcotest.to_alcotest qcheck_at_most_k;
          QCheck_alcotest.to_alcotest qcheck_exactly_one;
          QCheck_alcotest.to_alcotest qcheck_failed_core_sound;
          QCheck_alcotest.to_alcotest qcheck_incremental_matches_fresh;
        ] );
    ]

(* Core framework tests: MII bounds, the router, the independent
   checker (including its ability to catch corrupted mappings),
   occupancy bookkeeping, costs, context generation, taxonomy. *)

open Ocgra_core
module Dfg = Ocgra_dfg.Dfg
module Op = Ocgra_dfg.Op
module Cgra = Ocgra_arch.Cgra
module Rng = Ocgra_util.Rng
module Kernels = Ocgra_workloads.Kernels

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let cgra44 = Cgra.uniform ~rows:4 ~cols:4 ()

let mapped_kernel ?(seed = 42) (k : Kernels.t) =
  let p = Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra:cgra44 ~max_ii:16 () in
  let rng = Rng.create seed in
  match Ocgra_mappers.Constructive.map p rng with
  | Some m, _, _ -> (p, m)
  | None, _, _ -> Alcotest.fail (Printf.sprintf "could not map %s" k.name)

(* ---------- Mii ---------- *)

let test_mii () =
  checki "dot product mii" 1 (Mii.mii (Kernels.dot_product ()).dfg cgra44);
  checki "horner mii (rec bound)" 2 (Mii.mii (Kernels.horner ()).dfg cgra44);
  (* resource bound: 20 alu ops on a 2x2 need ceil(20/4) = 5 *)
  let g = Dfg.create () in
  let a = Dfg.input g "a" in
  let prev = ref a in
  for _ = 1 to 19 do
    prev := Dfg.binop g Op.Add !prev a
  done;
  let small = Cgra.uniform ~rows:2 ~cols:2 () in
  checki "res bound" 5 (Mii.res_mii g small)

let test_mii_heterogeneous () =
  (* 4 loads on an adres-like 2x2 with a single mem column (2 cells) *)
  let g = Dfg.create () in
  let i = Dfg.input g "i" in
  for _ = 1 to 4 do
    ignore (Dfg.load g "m" i)
  done;
  let cgra = Cgra.adres_like ~rows:2 ~cols:2 () in
  checkb "mem pressure drives mii" true (Mii.res_mii g cgra >= 2)

(* ---------- router ---------- *)

let test_router_direct_adjacency () =
  let occ = Occupancy.create ~npe:16 ~ii:2 () in
  let cm = Route.strict cgra44 occ in
  (* produce on pe 5 at t=0 (readable 1), consume on neighbour 6 at 1 *)
  match Route.find ~ii:2 cgra44 cm ~src_pe:5 ~avail:1 ~dst_pe:6 ~consume_at:1 with
  | Some ([], 0) -> ()
  | Some (steps, _) ->
      Alcotest.fail
        ("expected empty route, got " ^ String.concat " " (List.map Mapping.step_to_string steps))
  | None -> Alcotest.fail "expected a route"

let test_router_respects_occupancy () =
  let occ = Occupancy.create ~npe:4 ~ii:1 () in
  let cgra = Cgra.uniform ~rows:2 ~cols:2 () in
  (* block every PE except the endpoints: pes 0 -> 3 need 1 intermediate *)
  Occupancy.claim_fu occ ~pe:1 ~time:0 (Occupancy.U_node 99);
  Occupancy.claim_fu occ ~pe:2 ~time:0 (Occupancy.U_node 98);
  let cm = Route.strict cgra occ in
  checkb "blocked" true (Route.find ~ii:1 cgra cm ~src_pe:0 ~avail:1 ~dst_pe:3 ~consume_at:2 = None)

let test_router_uses_hold () =
  (* waiting 3 cycles on the same PE at II >= 2 should use the RF *)
  let occ = Occupancy.create ~npe:16 ~ii:4 () in
  let cm = Route.strict cgra44 occ in
  match Route.find ~ii:4 cgra44 cm ~src_pe:5 ~avail:1 ~dst_pe:5 ~consume_at:4 with
  | Some (steps, _) ->
      checkb "uses a hold" true
        (List.exists (function Mapping.Hold _ -> true | Mapping.Hop _ -> false) steps)
  | None -> Alcotest.fail "expected a route"

let test_router_no_backward_time () =
  let occ = Occupancy.create ~npe:16 ~ii:2 () in
  let cm = Route.strict cgra44 occ in
  checkb "no time travel" true
    (Route.find ~ii:2 cgra44 cm ~src_pe:5 ~avail:3 ~dst_pe:6 ~consume_at:2 = None)

(* router round-trip property: any route the strict router returns for
   a random two-op problem yields a checker-valid mapping *)
let qcheck_router_checker_roundtrip =
  QCheck.Test.make ~name:"strict routes always validate" ~count:300
    QCheck.(pair small_int (pair (int_range 1 4) (int_range 0 2)))
    (fun (seed, (ii, dist)) ->
      let rng = Rng.create ((seed * 31) + ii) in
      let g = Dfg.create () in
      let u = Dfg.input g "u" in
      let v = Dfg.add g Op.Not in
      Dfg.add_edge g ~src:u ~dst:v ~port:0 ~dist;
      let p = Problem.temporal ~dfg:g ~cgra:cgra44 ~max_ii:ii ~max_time:24 () in
      let pu = Rng.int rng 16 and pv = Rng.int rng 16 in
      let tu = Rng.int rng 6 in
      let tv = tu + Rng.int_in rng (-2) 8 in
      if tv < 0 || (pu = pv && tu mod ii = tv mod ii && (tu <> tv || u = v)) then true
      else begin
        let occ = Occupancy.create ~npe:16 ~ii () in
        Occupancy.claim_fu occ ~pe:pu ~time:tu (Occupancy.U_node u);
        if not (Occupancy.fu_free occ ~pe:pv ~time:tv) then true
        else begin
          Occupancy.claim_fu occ ~pe:pv ~time:tv (Occupancy.U_node v);
          let cm = Route.strict cgra44 occ in
          match
            Route.route_edge cgra44 cm ~ii ~src:(pu, tu) ~dst:(pv, tv)
              ~lat:(Op.latency (Dfg.op g u)) ~dist
          with
          | None -> true (* infeasible is fine; wrong routes are not *)
          | Some (route, _) ->
              (* the route must also be claimable (no self-conflicts) *)
              let m = { Mapping.ii; binding = [| (pu, tu); (pv, tv) |]; routes = [| route |] } in
              (match Check.validate p m with
              | [] -> true
              | v ->
                  (* modulo self-conflicts of wrapping routes are allowed
                     router outcomes; everything else is a bug *)
                  List.for_all
                    (fun msg ->
                      let has sub =
                        let n = String.length msg and m = String.length sub in
                        let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
                        go 0
                      in
                      has "oversubscribed")
                    v)
        end
      end)

(* every mapping of every kernel yields contexts whose encoded words
   decode back exactly *)
let qcheck_context_roundtrip_mapped =
  QCheck.Test.make ~name:"mapped contexts roundtrip through bits" ~count:20
    QCheck.(int_range 0 1000)
    (fun seed ->
      let k = Kernels.find (if seed mod 2 = 0 then "fir4" else "matvec2") in
      let p = Problem.temporal ~init:k.Kernels.init ~dfg:k.Kernels.dfg ~cgra:cgra44 ~max_ii:16 () in
      match Ocgra_mappers.Constructive.map p (Rng.create seed) with
      | None, _, _ -> false
      | Some m, _, _ ->
          let build = Contexts.of_mapping p m in
          let words = Contexts.encode build in
          let ok = ref true in
          Array.iteri
            (fun c row ->
              Array.iteri
                (fun pe w ->
                  if Ocgra_arch.Context.decode_slot w <> build.Contexts.contexts.(c).(pe) then
                    ok := false)
                row)
            words;
          !ok)

(* ---------- checker catches corruption ---------- *)

let test_checker_accepts_valid () =
  let p, m = mapped_kernel (Kernels.fir4 ()) in
  Alcotest.(check (list string)) "valid" [] (Check.validate p m)

let corrupt_and_check mutate =
  let p, m = mapped_kernel (Kernels.fir4 ()) in
  let m' = mutate { m with Mapping.binding = Array.copy m.Mapping.binding; routes = Array.copy m.Mapping.routes } in
  Check.validate p m' <> []

let test_checker_catches_bad_pe () =
  checkb "bad pe" true
    (corrupt_and_check (fun m ->
         m.Mapping.binding.(0) <- (999, snd m.Mapping.binding.(0));
         m))

let test_checker_catches_moved_op () =
  checkb "moved op breaks dependences" true
    (corrupt_and_check (fun m ->
         (* move a node far away without rerouting *)
         let pe, t = m.Mapping.binding.(2) in
         m.Mapping.binding.(2) <- ((pe + 7) mod 16, t);
         m))

let test_checker_catches_dropped_route () =
  checkb "dropped route" true
    (corrupt_and_check (fun m ->
         (* blank out the longest route *)
         let longest = ref 0 and idx = ref (-1) in
         Array.iteri
           (fun i r ->
             if List.length r > !longest then begin
               longest := List.length r;
               idx := i
             end)
           m.Mapping.routes;
         if !idx >= 0 then m.Mapping.routes.(!idx) <- [];
         m))

let test_checker_catches_double_booking () =
  checkb "double booking" true
    (corrupt_and_check (fun m ->
         (* put node 1 exactly where node 0 sits *)
         m.Mapping.binding.(1) <- m.Mapping.binding.(0);
         m))

let test_checker_catches_wrong_ii () =
  checkb "ii out of bounds" true
    (corrupt_and_check (fun m -> { m with Mapping.ii = 0 }))

(* ---------- occupancy ---------- *)

let test_occupancy_claim_release () =
  let occ = Occupancy.create ~npe:4 ~ii:2 () in
  checkb "free" true (Occupancy.fu_free occ ~pe:1 ~time:5);
  Occupancy.claim_fu occ ~pe:1 ~time:5 (Occupancy.U_node 3);
  checkb "claimed (mod ii)" false (Occupancy.fu_free occ ~pe:1 ~time:7);
  Occupancy.release_fu occ ~pe:1 ~time:7;
  checkb "released" true (Occupancy.fu_free occ ~pe:1 ~time:5);
  Occupancy.claim_hold occ ~pe:2 ~from_:0 ~until:3;
  (* cycles 1,2,3 at ii=2: slot 1 is covered twice (cycles 1 and 3) *)
  checki "rf pressure wraps" 2 (Occupancy.rf_count occ ~pe:2 ~time:1);
  checki "rf pressure" 1 (Occupancy.rf_count occ ~pe:2 ~time:2);
  Occupancy.release_hold occ ~pe:2 ~from_:0 ~until:3;
  checki "rf released" 0 (Occupancy.rf_count occ ~pe:2 ~time:1)

let test_occupancy_double_claim_rejected () =
  let occ = Occupancy.create ~npe:2 ~ii:1 () in
  Occupancy.claim_fu occ ~pe:0 ~time:0 (Occupancy.U_node 1);
  Alcotest.check_raises "double claim"
    (Invalid_argument "Occupancy.claim_fu: slot already in use") (fun () ->
      Occupancy.claim_fu occ ~pe:0 ~time:3 (Occupancy.U_node 2))

(* ---------- cost ---------- *)

let test_cost_fields () =
  let p, m = mapped_kernel (Kernels.dot_product ()) in
  let c = Cost.of_mapping p m in
  checki "ops" (Dfg.node_count (Kernels.dot_product ()).dfg) c.Cost.ops;
  checkb "ii positive" true (c.Cost.ii >= 1);
  checkb "utilization in (0,1]" true (c.Cost.fu_utilization > 0.0 && c.Cost.fu_utilization <= 1.0);
  checkb "throughput" true (Cost.throughput c > 0.0)

(* ---------- contexts ---------- *)

let test_contexts_generation () =
  let p, m = mapped_kernel (Kernels.fir4 ()) in
  let build = Contexts.of_mapping p m in
  checki "one context per II cycle" m.Mapping.ii (Array.length build.Contexts.contexts);
  let words = Contexts.encode build in
  (* decode every word back and compare field-wise *)
  Array.iteri
    (fun c _ctx ->
      Array.iteri
        (fun pe word ->
          let slot = Ocgra_arch.Context.decode_slot word in
          checkb "roundtrip" true (slot = build.Contexts.contexts.(c).(pe)))
        words.(c))
    words;
  (* every scheduled op appears in some context *)
  let non_nop =
    Array.fold_left
      (fun acc ctx ->
        acc
        + Array.fold_left
            (fun acc (s : Ocgra_arch.Context.slot) -> if s.opcode <> 0 then acc + 1 else acc)
            0 ctx)
      0 build.Contexts.contexts
  in
  checkb "ops + routes present" true (non_nop >= Dfg.node_count (Kernels.fir4 ()).dfg)

(* ---------- taxonomy / registry ---------- *)

let test_taxonomy_columns () =
  let open Taxonomy in
  checkb "sa is metaheuristic" true (column_of_approach (Meta_local "SA") = Col_metaheuristics);
  checkb "sat is csp" true (column_of_approach Exact_sat = Col_csp);
  checkb "ilp exact" true (is_exact Exact_ilp);
  checkb "heuristic not exact" false (is_exact Heuristic)

let test_registry_covers_table1 () =
  (* at least one implemented mapper in every non-empty Table I cell
     family: heuristic/meta/ilp-bb/csp x spatial/temporal *)
  let has scope col =
    List.exists
      (fun (m : Mapper.t) ->
        m.scope = scope && Taxonomy.column_of_approach m.approach = col)
      Ocgra_mappers.Registry.all
  in
  checkb "spatial heuristics" true (has Taxonomy.Spatial_mapping Taxonomy.Col_heuristics);
  checkb "spatial meta" true (has Taxonomy.Spatial_mapping Taxonomy.Col_metaheuristics);
  checkb "spatial ilp" true (has Taxonomy.Spatial_mapping Taxonomy.Col_ilp_bb);
  checkb "temporal heuristics" true (has Taxonomy.Temporal_mapping Taxonomy.Col_heuristics);
  checkb "temporal meta" true (has Taxonomy.Temporal_mapping Taxonomy.Col_metaheuristics);
  checkb "temporal ilp/bb" true (has Taxonomy.Temporal_mapping Taxonomy.Col_ilp_bb);
  checkb "temporal csp" true (has Taxonomy.Temporal_mapping Taxonomy.Col_csp);
  checkb "binding heuristics" true (has Taxonomy.Binding_only Taxonomy.Col_heuristics);
  checkb "binding meta" true (has Taxonomy.Binding_only Taxonomy.Col_metaheuristics);
  checkb "scheduling heuristics" true (has Taxonomy.Scheduling_only Taxonomy.Col_heuristics);
  checkb "scheduling ilp" true (has Taxonomy.Scheduling_only Taxonomy.Col_ilp_bb);
  checki "18 mappers" 18 (List.length Ocgra_mappers.Registry.all)

let test_mapper_run_validates () =
  (* Mapper.run must demote invalid mappings: a fake mapper returning
     garbage gets reported as a failure with violations in the note *)
  let bogus =
    Mapper.make ~name:"bogus" ~citation:"-" ~scope:Taxonomy.Temporal_mapping
      ~approach:Taxonomy.Heuristic (fun p _rng _dl _obs ->
        let n = Dfg.node_count p.Problem.dfg in
        {
          Mapper.mapping =
            Some { Mapping.ii = 1; binding = Array.make n (0, 0); routes = Array.make (Ocgra_dfg.Dfg.edge_count p.Problem.dfg) [] };
          proven_optimal = true;
          attempts = 1;
          elapsed_s = 0.0;
          note = "";
          trail = [];
        })
  in
  let k = Kernels.dot_product () in
  let p = Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra:cgra44 () in
  let o = Mapper.run bogus p in
  checkb "demoted" true (o.Mapper.mapping = None);
  checkb "note explains" true (String.length o.Mapper.note > 0)

let () =
  Alcotest.run "core"
    [
      ( "mii",
        [
          Alcotest.test_case "bounds" `Quick test_mii;
          Alcotest.test_case "heterogeneous" `Quick test_mii_heterogeneous;
        ] );
      ( "router",
        [
          Alcotest.test_case "direct adjacency" `Quick test_router_direct_adjacency;
          Alcotest.test_case "occupancy respected" `Quick test_router_respects_occupancy;
          Alcotest.test_case "uses holds" `Quick test_router_uses_hold;
          Alcotest.test_case "no backward time" `Quick test_router_no_backward_time;
          QCheck_alcotest.to_alcotest qcheck_router_checker_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_context_roundtrip_mapped;
        ] );
      ( "checker",
        [
          Alcotest.test_case "accepts valid" `Quick test_checker_accepts_valid;
          Alcotest.test_case "bad pe" `Quick test_checker_catches_bad_pe;
          Alcotest.test_case "moved op" `Quick test_checker_catches_moved_op;
          Alcotest.test_case "dropped route" `Quick test_checker_catches_dropped_route;
          Alcotest.test_case "double booking" `Quick test_checker_catches_double_booking;
          Alcotest.test_case "bad ii" `Quick test_checker_catches_wrong_ii;
        ] );
      ( "occupancy",
        [
          Alcotest.test_case "claim/release" `Quick test_occupancy_claim_release;
          Alcotest.test_case "double claim rejected" `Quick test_occupancy_double_claim_rejected;
        ] );
      ("cost", [ Alcotest.test_case "fields" `Quick test_cost_fields ]);
      ("contexts", [ Alcotest.test_case "generation + roundtrip" `Quick test_contexts_generation ]);
      ( "taxonomy",
        [
          Alcotest.test_case "columns" `Quick test_taxonomy_columns;
          Alcotest.test_case "registry coverage" `Quick test_registry_covers_table1;
          Alcotest.test_case "run validates" `Quick test_mapper_run_validates;
        ] );
    ]

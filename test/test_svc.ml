(* Mapping-as-a-service tests: canonicalization (WL fingerprint is
   permutation-invariant, witnesses are exact), the cache decision tree
   (hit / iso-hit / repair-hit / miss), canonical fault masks in the
   key, deterministic seq-ordered eviction, the wire codec, and the
   worker-count-invariance property over random iso-renamed request
   streams. *)

module Svc = Ocgra_svc.Svc
module Cache = Ocgra_svc.Cache
module Canon = Ocgra_svc.Canon
module Wire = Ocgra_svc.Wire
module Cgra = Ocgra_arch.Cgra
module Fault = Ocgra_arch.Fault
module Dfg = Ocgra_dfg.Dfg
module Op = Ocgra_dfg.Op
module Kernels = Ocgra_workloads.Kernels
module Rng = Ocgra_util.Rng
open Ocgra_core

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let cgra44 = Cgra.uniform ~rows:4 ~cols:4 ()
let chain = [ Ocgra_mappers.Registry.find "modulo-greedy" ]
let config = { Svc.default_config with Svc.chain }

let req ?(id = "r") ?(cgra = cgra44) dfg = { Svc.id; dfg; cgra; spatial = false; max_ii = None }

let rand_perm rng n = Rng.shuffle rng (Array.init n Fun.id)

let served_name (r : Svc.response) = Svc.served_to_string r.Svc.served

(* ---------- canonical form ---------- *)

let test_fingerprint_invariant () =
  let rng = Rng.create 11 in
  List.iter
    (fun (k : Kernels.t) ->
      let c = Canon.of_dfg k.Kernels.dfg in
      for _ = 1 to 5 do
        let p = rand_perm rng (Dfg.node_count k.Kernels.dfg) in
        let c' = Canon.of_dfg (Canon.permute k.Kernels.dfg p) in
        checki (k.Kernels.name ^ " fingerprint is permutation-invariant")
          (Canon.fingerprint c) (Canon.fingerprint c');
        match Canon.witness c c' with
        | None -> Alcotest.fail (k.Kernels.name ^ ": witness must exist for a renaming")
        | Some w ->
            (* the witness is a bijection matching ops label-for-label *)
            let seen = Array.make (Array.length w) false in
            Array.iteri
              (fun i j ->
                checkb "injective" false seen.(j);
                seen.(j) <- true;
                checkb "class-compatible ops"
                  true
                  (Op.func_class (Dfg.op k.Kernels.dfg i)
                  = Op.func_class (Dfg.op (Canon.dfg c') j)))
              w
      done)
    (Kernels.small_suite ())

let test_fingerprint_separates () =
  (* different kernels should (essentially always) get different
     fingerprints; at minimum these structurally different pairs do *)
  let fp name = Canon.fingerprint (Canon.of_dfg (Kernels.find name).Kernels.dfg) in
  checkb "saxpy != fir4" true (fp "saxpy" <> fp "fir4");
  checkb "dot-product != horner" true (fp "dot-product" <> fp "horner")

let test_witness_rejects_relabel () =
  (* same shape, different op: must not be isomorphic *)
  let d1 = Dfg.create () in
  let a = Dfg.add d1 (Op.Input "a") in
  let b = Dfg.add d1 (Op.Binop Op.Add) in
  let o = Dfg.add d1 (Op.Output "y") in
  Dfg.add_edge d1 ~src:a ~dst:b;
  Dfg.add_edge d1 ~src:b ~dst:o ~port:1 |> ignore;
  let d2 = Dfg.create () in
  let a2 = Dfg.add d2 (Op.Input "a") in
  let b2 = Dfg.add d2 (Op.Binop Op.Mul) in
  let o2 = Dfg.add d2 (Op.Output "y") in
  Dfg.add_edge d2 ~src:a2 ~dst:b2;
  Dfg.add_edge d2 ~src:b2 ~dst:o2 ~port:1 |> ignore;
  checkb "add vs mul is not isomorphic" true
    (Canon.witness (Canon.of_dfg d1) (Canon.of_dfg d2) = None)

let test_witness_respects_edge_labels () =
  (* same nodes and arcs, different loop-carried distance: not iso *)
  let build dist =
    let d = Dfg.create () in
    let a = Dfg.add d (Op.Input "a") in
    let s = Dfg.add d (Op.Binop Op.Add) in
    let o = Dfg.add d (Op.Output "y") in
    Dfg.add_edge d ~src:a ~dst:s;
    Dfg.add_edge d ~src:s ~dst:s ~port:1 ~dist;
    Dfg.add_edge d ~src:s ~dst:o |> ignore;
    d
  in
  checkb "dist 1 vs dist 2 differ" true
    (Canon.witness (Canon.of_dfg (build 1)) (Canon.of_dfg (build 2)) = None)

(* ---------- hit / iso-hit / repair / miss decision tree ---------- *)

let test_exact_duplicate_hits () =
  let svc = Svc.create config in
  let k = Kernels.find "saxpy" in
  let first = Svc.submit_batch svc [ req ~id:"a" k.Kernels.dfg ] in
  let rs = first @ Svc.submit_batch svc [ req ~id:"b" k.Kernels.dfg ] in
  Alcotest.(check (list string)) "miss then hit" [ "miss"; "hit" ] (List.map served_name rs);
  let s = Svc.stats svc in
  checki "one hit" 1 s.Svc.hits;
  checki "one miss" 1 s.Svc.misses

let test_iso_hit_certifies_on_renamed () =
  let svc = Svc.create config in
  let k = Kernels.find "fir4" in
  let rng = Rng.create 3 in
  ignore (Svc.submit_batch svc [ req ~id:"cold" k.Kernels.dfg ]);
  let renamed = Canon.permute k.Kernels.dfg (rand_perm rng (Dfg.node_count k.Kernels.dfg)) in
  match Svc.submit_batch svc [ req ~id:"renamed" renamed ] with
  | [ r ] ->
      Alcotest.(check string) "served" "iso-hit" (served_name r);
      let m = Option.get r.Svc.mapping in
      (* the certification that matters: valid on the RENAMED kernel *)
      let p = Problem.temporal ~dfg:renamed ~cgra:cgra44 () in
      Alcotest.(check (list string)) "validates on the renamed kernel" [] (Check.validate p m)
  | _ -> Alcotest.fail "one response expected"

let test_mask_canonical_key () =
  (* permuted-but-equal fault masks must land on the same entry: the
     first request pays, the second (same mask, different order and a
     duplicate) is a pure hit, not a repair and not a miss *)
  let svc = Svc.create config in
  let k = Kernels.find "absdiff" in
  let f1 = Fault.Pe_down 3 and f2 = Fault.Link_down (1, 2) in
  let c1 = Cgra.with_faults cgra44 [ f1; f2 ] in
  let c2 = Cgra.with_faults cgra44 [ f2; f1; f2 ] in
  ignore (Svc.submit_batch svc [ req ~id:"a" ~cgra:c1 k.Kernels.dfg ]);
  match Svc.submit_batch svc [ req ~id:"b" ~cgra:c2 k.Kernels.dfg ] with
  | [ r ] ->
      Alcotest.(check string) "same canonical mask is a pure hit" "hit" (served_name r);
      checki "no repairs" 0 (Svc.stats svc).Svc.repair_hits
  | _ -> Alcotest.fail "one response expected"

let test_mask_growth_repairs_shrink_hits () =
  let svc = Svc.create config in
  let k = Kernels.find "saxpy" in
  let grown = Cgra.with_faults cgra44 (Cgra.inject_faults cgra44 ~seed:3 ~n:4) in
  ignore (Svc.submit_batch svc [ req ~id:"cold" ~cgra:grown k.Kernels.dfg ]);
  (* a *smaller* mask is still covered by the cached certificate *)
  let shrunk = Cgra.with_faults cgra44 (Cgra.inject_faults cgra44 ~seed:3 ~n:2) in
  (match Svc.submit_batch svc [ req ~id:"sub" ~cgra:shrunk k.Kernels.dfg ] with
  | [ r ] ->
      Alcotest.(check string) "subset mask is a hit" "hit" (served_name r);
      let p = Problem.temporal ~dfg:k.Kernels.dfg ~cgra:shrunk () in
      Alcotest.(check (list string)) "certified under the subset mask" []
        (Check.validate p (Option.get r.Svc.mapping))
  | _ -> Alcotest.fail "one response expected");
  (* a grown mask goes through the repair ladder or, failing that, a
     cold remap — never an uncertified answer *)
  let grown6 = Cgra.with_faults cgra44 (Cgra.inject_faults cgra44 ~seed:3 ~n:6) in
  match Svc.submit_batch svc [ req ~id:"grow" ~cgra:grown6 k.Kernels.dfg ] with
  | [ r ] ->
      (match r.Svc.served with
      | Svc.Repair_hit _ | Svc.Miss -> ()
      | s -> Alcotest.fail ("grown mask should repair or remap, got " ^ Svc.served_to_string s));
      (match r.Svc.mapping with
      | Some m ->
          let p = Problem.temporal ~dfg:k.Kernels.dfg ~cgra:grown6 () in
          Alcotest.(check (list string)) "certified under the grown mask" [] (Check.validate p m)
      | None -> Alcotest.fail "expected a mapping")
  | _ -> Alcotest.fail "one response expected"

let test_arch_is_part_of_the_key () =
  let svc = Svc.create config in
  let k = Kernels.find "dot-product" in
  ignore (Svc.submit_batch svc [ req ~id:"a" k.Kernels.dfg ]);
  let c33 = Cgra.uniform ~rows:3 ~cols:3 () in
  match Svc.submit_batch svc [ req ~id:"b" ~cgra:c33 k.Kernels.dfg ] with
  | [ r ] -> Alcotest.(check string) "other fabric misses" "miss" (served_name r)
  | _ -> Alcotest.fail "one response expected"

let test_rejects_invalid_and_failures () =
  let svc = Svc.create config in
  (* a DFG with a dangling operand port is rejected, not mapped *)
  let d = Dfg.create () in
  let a = Dfg.add d (Op.Input "a") in
  let b = Dfg.add d (Op.Binop Op.Add) in
  Dfg.add_edge d ~src:a ~dst:b |> ignore;
  (* an unmappable problem (everything needs mul, no mul PEs) fails
     cleanly too *)
  let mul_only = Dfg.create () in
  let m1 = Dfg.add mul_only (Op.Input "x") in
  let m2 = Dfg.add mul_only (Op.Binop Op.Mul) in
  let m3 = Dfg.add mul_only (Op.Output "y") in
  Dfg.add_edge mul_only ~src:m1 ~dst:m2;
  Dfg.add_edge mul_only ~src:m1 ~dst:m2 ~port:1;
  Dfg.add_edge mul_only ~src:m2 ~dst:m3 |> ignore;
  let dead = Cgra.with_faults cgra44 (List.init 16 (fun i -> Fault.Pe_down i)) in
  let rs =
    Svc.submit_batch svc [ req ~id:"invalid" d; req ~id:"unmappable" ~cgra:dead mul_only ]
  in
  Alcotest.(check (list string))
    "both rejected" [ "rejected"; "rejected" ] (List.map served_name rs);
  checki "no cache pollution" 0 (Svc.stats svc).Svc.entries

(* ---------- deterministic eviction ---------- *)

let test_lru_eviction_deterministic () =
  let svc = Svc.create { config with Svc.capacity = 2 } in
  let dfg name = (Kernels.find name).Kernels.dfg in
  ignore (Svc.submit_batch svc [ req ~id:"a" (dfg "saxpy") ]);
  ignore (Svc.submit_batch svc [ req ~id:"b" (dfg "fir4") ]);
  (* touch saxpy so fir4 is the least recently used *)
  ignore (Svc.submit_batch svc [ req ~id:"a2" (dfg "saxpy") ]);
  ignore (Svc.submit_batch svc [ req ~id:"c" (dfg "absdiff") ]);
  let s = Svc.stats svc in
  checki "capacity bound" 2 s.Svc.entries;
  checki "one eviction" 1 s.Svc.evictions;
  (* saxpy survived (hit), fir4 was evicted (miss again) *)
  let r1 = List.hd (Svc.submit_batch svc [ req ~id:"a3" (dfg "saxpy") ]) in
  Alcotest.(check string) "recently-used survived" "hit" (served_name r1);
  let r2 = List.hd (Svc.submit_batch svc [ req ~id:"b2" (dfg "fir4") ]) in
  Alcotest.(check string) "LRU victim was evicted" "miss" (served_name r2)

(* ---------- in-batch coalescing ---------- *)

let test_batch_coalescing () =
  let svc = Svc.create config in
  let k = Kernels.find "horner" in
  let rng = Rng.create 5 in
  let renamed = Canon.permute k.Kernels.dfg (rand_perm rng (Dfg.node_count k.Kernels.dfg)) in
  let rs =
    Svc.submit_batch svc
      [ req ~id:"a" k.Kernels.dfg; req ~id:"b" k.Kernels.dfg; req ~id:"c" renamed ]
  in
  Alcotest.(check (list string))
    "one cold map, two coalesced" [ "miss"; "hit"; "iso-hit" ] (List.map served_name rs);
  let s = Svc.stats svc in
  checki "coalesced counted" 2 s.Svc.coalesced;
  checki "single entry" 1 s.Svc.entries

(* ---------- wire codec ---------- *)

let test_wire_roundtrip () =
  let k = Kernels.find "fir4" in
  let r =
    {
      Wire.default_req with
      Wire.id = "w1";
      payload = Wire.Inline k.Kernels.dfg;
      rows = 5;
      cols = 3;
      topology = "torus";
      faults = [ Fault.Link_down (1, 2); Fault.Pe_down 3 ];
      spatial = true;
      max_ii = Some 4;
    }
  in
  match Wire.parse_req (Wire.req_to_json r) with
  | Error e -> Alcotest.fail ("roundtrip parse failed: " ^ e)
  | Ok r' -> (
      Alcotest.(check string) "id" r.Wire.id r'.Wire.id;
      checki "rows" r.Wire.rows r'.Wire.rows;
      checki "cols" r.Wire.cols r'.Wire.cols;
      Alcotest.(check string) "topology" r.Wire.topology r'.Wire.topology;
      checkb "spatial" r.Wire.spatial r'.Wire.spatial;
      checkb "max_ii" true (r'.Wire.max_ii = Some 4);
      checkb "faults survive canonically" true
        (Fault.canonical r.Wire.faults = Fault.canonical r'.Wire.faults);
      match r'.Wire.payload with
      | Wire.Inline d ->
          (* the inline DFG round-trips up to identity witness *)
          checkb "dfg identical up to codec" true
            (Canon.witness (Canon.of_dfg k.Kernels.dfg) (Canon.of_dfg d)
            = Some (Array.init (Dfg.node_count d) Fun.id))
      | _ -> Alcotest.fail "expected inline payload")

let test_wire_malformed () =
  let bad l = match Wire.parse_req l with Error _ -> true | Ok _ -> false in
  checkb "not json" true (bad "garbage");
  checkb "no id" true (bad "{\"kernel\":\"saxpy\"}");
  checkb "no payload" true (bad "{\"id\":\"x\"}");
  checkb "both payloads" true (bad "{\"id\":\"x\",\"kernel\":\"a\",\"dfg\":{\"nodes\":[]}}");
  checkb "bad op" true (bad "{\"id\":\"x\",\"dfg\":{\"nodes\":[{\"op\":\"frobnicate\"}]}}");
  checkb "edge out of range" true
    (bad "{\"id\":\"x\",\"dfg\":{\"nodes\":[{\"op\":\"nop\"}],\"edges\":[[0,9,0,0]]}}");
  checkb "bad fault kind" true (bad "{\"id\":\"x\",\"kernel\":\"saxpy\",\"faults\":[[\"cpu\",1]]}");
  checkb "salvages id" true (Wire.salvage_id ~line:7 "{\"id\":\"keep\",\"kernel\":" = "line-7");
  checkb "salvages id from valid json" true
    (Wire.salvage_id ~line:7 "{\"id\":\"keep\",\"rows\":true}" = "keep")

(* ---------- worker-count invariance + certification (QCheck) ---------- *)

let qcheck_iso_requests_certify =
  QCheck.Test.make ~name:"random iso-renamed streams: certified hits, worker-invariant counts"
    ~count:12
    QCheck.(pair (int_range 0 1000) (int_range 6 14))
    (fun (seed, nodes) ->
      let rng = Rng.create seed in
      let dfg, _ =
        Ocgra_workloads.Random_dfg.generate
          ~params:{ Ocgra_workloads.Random_dfg.default with Ocgra_workloads.Random_dfg.nodes }
          rng
      in
      let n = Dfg.node_count dfg in
      let reqs =
        req ~id:"cold" dfg
        :: List.map
             (fun i ->
               req ~id:(Printf.sprintf "iso-%d" i) (Canon.permute dfg (rand_perm rng n)))
             [ 1; 2; 3 ]
      in
      let serve workers =
        let svc = Svc.create { config with Svc.workers } in
        List.concat_map (fun r -> Svc.submit_batch svc [ r ]) reqs |> fun rs ->
        (rs, Svc.stats svc)
      in
      let rs1, s1 = serve 1 in
      let rs4, s4 = serve 4 in
      (* every response with a mapping is certified on ITS OWN dfg *)
      List.iter2
        (fun (r : Svc.response) (q : Svc.request) ->
          match r.Svc.mapping with
          | None -> ()
          | Some m ->
              let p = Problem.temporal ~dfg:q.Svc.dfg ~cgra:cgra44 () in
              if Check.validate p m <> [] then
                QCheck.Test.fail_report "uncertified mapping returned")
        rs1 reqs;
      (* the first request is never a hit; renamings hit iff it mapped *)
      (match (rs1, List.tl rs1) with
      | r0 :: _, rest ->
          if r0.Svc.served = Svc.Miss then
            List.iter
              (fun (r : Svc.response) ->
                if r.Svc.served <> Svc.Iso_hit && r.Svc.served <> Svc.Hit then
                  QCheck.Test.fail_report "renaming of a cached kernel must hit")
              rest
      | _ -> ());
      (* counts are a pure function of the stream, not the worker count *)
      s1.Svc.hits = s4.Svc.hits && s1.Svc.iso_hits = s4.Svc.iso_hits
      && s1.Svc.misses = s4.Svc.misses
      && s1.Svc.rejections = s4.Svc.rejections
      && List.map served_name rs1 = List.map served_name rs4)

(* ---------- Fault.subset ---------- *)

let test_fault_subset () =
  let a = Fault.Pe_down 1 and b = Fault.Link_down (0, 1) and c = Fault.Rf_reduced (2, 1) in
  checkb "empty is subset" true (Fault.subset [] [ a ]);
  checkb "subset holds any order" true (Fault.subset [ b; a ] [ a; c; b ]);
  checkb "duplicates ignored" true (Fault.subset [ a; a ] [ a ]);
  checkb "superset is not subset" false (Fault.subset [ a; c ] [ a ]);
  checkb "incomparable" false (Fault.subset [ b ] [ c ])

let () =
  Alcotest.run "svc"
    [
      ( "canon",
        [
          Alcotest.test_case "fingerprint permutation-invariant" `Quick test_fingerprint_invariant;
          Alcotest.test_case "fingerprints separate kernels" `Quick test_fingerprint_separates;
          Alcotest.test_case "witness rejects op relabel" `Quick test_witness_rejects_relabel;
          Alcotest.test_case "witness respects edge labels" `Quick test_witness_respects_edge_labels;
        ] );
      ( "decision-tree",
        [
          Alcotest.test_case "exact duplicate hits" `Quick test_exact_duplicate_hits;
          Alcotest.test_case "iso hit certifies on renamed" `Quick test_iso_hit_certifies_on_renamed;
          Alcotest.test_case "canonical mask key" `Quick test_mask_canonical_key;
          Alcotest.test_case "mask growth repairs, shrink hits" `Quick
            test_mask_growth_repairs_shrink_hits;
          Alcotest.test_case "arch in the key" `Quick test_arch_is_part_of_the_key;
          Alcotest.test_case "rejections" `Quick test_rejects_invalid_and_failures;
        ] );
      ( "cache",
        [
          Alcotest.test_case "deterministic LRU eviction" `Quick test_lru_eviction_deterministic;
          Alcotest.test_case "in-batch coalescing" `Quick test_batch_coalescing;
        ] );
      ( "wire",
        [
          Alcotest.test_case "request roundtrip" `Quick test_wire_roundtrip;
          Alcotest.test_case "malformed lines are errors" `Quick test_wire_malformed;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_iso_requests_certify;
          Alcotest.test_case "fault subset" `Quick test_fault_subset;
        ] );
    ]

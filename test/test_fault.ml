(* Fault-aware mapping tests: the fault model itself, seeded injection,
   validator and simulator enforcement, the deadline/fallback harness,
   and a registry-wide sweep on healthy and degraded arrays. *)

open Ocgra_core
module Cgra = Ocgra_arch.Cgra
module Fault = Ocgra_arch.Fault
module Kernels = Ocgra_workloads.Kernels
module Rng = Ocgra_util.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let cgra44 = Cgra.uniform ~rows:4 ~cols:4 ()
let cgra_diag = Cgra.uniform ~topology:Ocgra_arch.Topology.Diagonal ~rows:4 ~cols:4 ()

let contains msg sub =
  let n = String.length msg and m = String.length sub in
  let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
  go 0

(* ---------- the fault model ---------- *)

let test_fault_model () =
  let c =
    Cgra.with_faults cgra44
      [ Fault.Pe_down 5; Fault.Link_down (1, 2); Fault.Fu_slot_dead (3, 1); Fault.Rf_reduced (4, 2) ]
  in
  checkb "downed pe not ok" false (Cgra.pe_ok c 5);
  checkb "healthy pe ok" true (Cgra.pe_ok c 0);
  checkb "downed link not ok" false (Cgra.link_ok c 1 2);
  checkb "reverse link ok (directed)" true (Cgra.link_ok c 2 1);
  (* slot 1 of pe 3 dead: bites exactly when time mod ii = 1 and ii > 1 *)
  checkb "dead slot at ii=2 t=1" false (Cgra.slot_ok c ~pe:3 ~ii:2 ~time:1);
  checkb "dead slot at ii=2 t=3" false (Cgra.slot_ok c ~pe:3 ~ii:2 ~time:3);
  checkb "other slot fine" true (Cgra.slot_ok c ~pe:3 ~ii:2 ~time:0);
  checkb "ii=1 never hits slot 1" true (Cgra.slot_ok c ~pe:3 ~ii:1 ~time:7);
  (* rf reduction clamps at 0; downed PE has no RF at all *)
  let full = Cgra.effective_rf_size cgra44 4 in
  checki "rf reduced" (max 0 (full - 2)) (Cgra.effective_rf_size c 4);
  checki "downed pe rf" 0 (Cgra.effective_rf_size c 5);
  (* masked adjacency *)
  checkb "down pe has no neighbours" true (Cgra.neighbours c 5 = []);
  checkb "down pe unreachable" true (not (List.mem 5 (Cgra.neighbours c 6)));
  checkb "dead link masked" true (not (List.mem 2 (Cgra.neighbours c 1)));
  checkb "raw adjacency keeps the wire" true (List.mem 2 (Cgra.raw_neighbours c 1));
  checkb "down pe supports nothing" false (Cgra.supports c 5 Ocgra_dfg.Op.Nop);
  (* rendering *)
  checkb "to_string names the pe" true (contains (Fault.to_string (Fault.Pe_down 5)) "5");
  Alcotest.(check string) "empty set renders none" "none" (Fault.list_to_string [])

let test_fault_dedup () =
  let c = Cgra.with_faults cgra44 [ Fault.Pe_down 3; Fault.Pe_down 3; Fault.Pe_down 3 ] in
  checki "deduplicated" 1 (List.length (Cgra.faults c))

let test_injection_deterministic () =
  let f1 = Cgra.inject_faults cgra44 ~seed:7 ~n:3 in
  let f2 = Cgra.inject_faults cgra44 ~seed:7 ~n:3 in
  checkb "same seed, same faults" true (f1 = f2);
  let f3 = Cgra.inject_faults cgra44 ~seed:8 ~n:3 in
  checkb "seeds independent" true (f1 <> f3 || f1 = f3 (* both legal; just must not raise *));
  checki "requested count" 3 (List.length f1);
  checki "distinct" 3 (List.length (List.sort_uniq Fault.compare f1))

(* ---------- validator enforcement (property) ---------- *)

(* Map a kernel on the healthy array, then fault a resource the mapping
   uses: the validator must reject with a message naming the fault. *)
let qcheck_fault_on_used_resource_rejects =
  QCheck.Test.make ~name:"fault on a used resource yields a naming violation" ~count:40
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let k = Kernels.find (if seed mod 2 = 0 then "fir4" else "dot-product") in
      let p = Problem.temporal ~init:k.Kernels.init ~dfg:k.Kernels.dfg ~cgra:cgra44 ~max_ii:8 () in
      match Ocgra_mappers.Constructive.map p (Rng.create seed) with
      | None, _, _ -> QCheck.assume_fail ()
      | Some m, _, _ ->
          let rng = Rng.create (seed + 1) in
          let used_pe, _ = m.Mapping.binding.(Rng.int rng (Array.length m.Mapping.binding)) in
          let faulted = Cgra.with_faults cgra44 [ Fault.Pe_down used_pe ] in
          let p' =
            Problem.temporal ~init:k.Kernels.init ~dfg:k.Kernels.dfg ~cgra:faulted ~max_ii:8 ()
          in
          let violations = Check.validate p' m in
          violations <> []
          && List.exists
               (fun v -> contains v "fault" && contains v (string_of_int used_pe))
               violations)

(* ---------- simulator refusal ---------- *)

let test_sim_refuses_faulted_execution () =
  let k = Kernels.fir4 () in
  let p = Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra:cgra44 ~max_ii:8 () in
  match Ocgra_mappers.Constructive.map p (Rng.create 3) with
  | None, _, _ -> Alcotest.fail "fir4 should map on the healthy array"
  | Some m, _, _ -> (
      let used_pe, _ = m.Mapping.binding.(0) in
      let faulted = Cgra.with_faults cgra44 [ Fault.Pe_down used_pe ] in
      let p' = Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra:faulted ~max_ii:8 () in
      let io = Ocgra_sim.Machine.io_of_streams ~memory:k.memory (k.inputs 4) in
      match Ocgra_sim.Machine.run p' m io ~iters:4 with
      | exception Ocgra_sim.Machine.Simulation_error e ->
          checkb "refusal names the fault" true (contains e.message "fault")
      | _ -> Alcotest.fail "simulator must refuse faulted-resource execution");
  (* and the same mapping still runs on the healthy array *)
  let io = Ocgra_sim.Machine.io_of_streams ~memory:k.memory (k.inputs 4) in
  match Ocgra_mappers.Constructive.map p (Rng.create 3) with
  | Some m, _, _ -> ignore (Ocgra_sim.Machine.run p m io ~iters:4)
  | None, _, _ -> ()

(* ---------- Mapper.run: clocks and guards ---------- *)

let test_elapsed_is_wall_clock () =
  (* a technique lying about its elapsed time is overruled by the
     harness's own clock *)
  let liar =
    Mapper.make ~name:"liar" ~citation:"-" ~scope:Taxonomy.Temporal_mapping
      ~approach:Taxonomy.Heuristic (fun _p _rng _dl _obs ->
        {
          Mapper.mapping = None;
          proven_optimal = false;
          attempts = 1;
          elapsed_s = 999.0;
          note = "";
          trail = [];
        })
  in
  let k = Kernels.dot_product () in
  let p = Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra:cgra44 () in
  let o = Mapper.run liar p in
  checkb "own clock" true (o.Mapper.elapsed_s < 100.0)

let test_unmappable_fails_cleanly () =
  (* every cell down: no capable PE for any op — a clean failure, not
     an exception *)
  let all_down = List.init 16 (fun pe -> Fault.Pe_down pe) in
  let dead = Cgra.with_faults cgra44 all_down in
  let k = Kernels.dot_product () in
  let p = Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra:dead () in
  let o = Mapper.run (Ocgra_mappers.Registry.find "modulo-greedy") p in
  checkb "no mapping" true (o.Mapper.mapping = None);
  checkb "note says unmappable" true (contains o.Mapper.note "unmappable")

(* ---------- the fallback harness ---------- *)

let failing_tier =
  Mapper.make ~name:"never" ~citation:"-" ~scope:Taxonomy.Temporal_mapping
    ~approach:Taxonomy.Heuristic (fun _p _rng _dl _obs ->
      {
        Mapper.mapping = None;
        proven_optimal = false;
        attempts = 1;
        elapsed_s = 0.0;
        note = "nope";
        trail = [];
      })

let test_harness_falls_back () =
  let k = Kernels.dot_product () in
  let p = Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra:cgra44 () in
  let chain = [ failing_tier; Ocgra_mappers.Registry.find "modulo-greedy" ] in
  let o = Mapper.Harness.run ~seed:7 ~deadline_s:10.0 chain p in
  checkb "fell through to tier 2" true (o.Mapper.mapping <> None);
  checkb "note names the answering tier" true (contains o.Mapper.note "tier 2/2");
  checkb "note carries the failure trail" true (contains o.Mapper.note "never")

let test_harness_total_failure () =
  let k = Kernels.dot_product () in
  let p = Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra:cgra44 () in
  let o = Mapper.Harness.run ~seed:7 ~deadline_s:5.0 [ failing_tier; failing_tier ] p in
  checkb "no mapping" true (o.Mapper.mapping = None);
  checkb "failure trail present" true (contains o.Mapper.note "no tier answered")

let test_harness_empty_chain () =
  let k = Kernels.dot_product () in
  let p = Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra:cgra44 () in
  Alcotest.check_raises "empty chain"
    (Invalid_argument "Mapper.Harness.run: empty fallback chain") (fun () ->
      ignore (Mapper.Harness.run [] p))

(* An already-expired budget still grants each tier its first try (with
   the 0.05s floor) but suppresses retries — the harness must answer,
   not spin. *)
let test_harness_expired_budget () =
  let k = Kernels.dot_product () in
  let p = Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra:cgra44 () in
  let chain = [ failing_tier; Ocgra_mappers.Registry.find "modulo-greedy" ] in
  let o = Mapper.Harness.run ~seed:7 ~deadline_s:0.0 chain p in
  checkb "still answers on an expired budget" true (o.Mapper.mapping <> None);
  checkb "answering tier named" true (contains o.Mapper.note "tier 2/2");
  checkb "tier 1 got its first try" true (contains o.Mapper.note "never[try 1]");
  checkb "but no retries" false (contains o.Mapper.note "never[try 2]")

(* Total failure must leave a complete trail: every tier, every try,
   each failure's own note, and the attempt count summed across all. *)
let test_harness_failure_trail () =
  let k = Kernels.dot_product () in
  let p = Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra:cgra44 () in
  let o = Mapper.Harness.run ~seed:7 [ failing_tier; failing_tier ] p in
  checkb "no mapping" true (o.Mapper.mapping = None);
  checkb "headline" true (contains o.Mapper.note "no tier answered");
  checkb "try 1 recorded with verdict" true (contains o.Mapper.note "never[try 1]: failed");
  checkb "try 2 recorded with verdict" true (contains o.Mapper.note "never[try 2]: failed");
  checkb "tier's own note carried" true (contains o.Mapper.note "— nope");
  checki "attempts summed over tiers and tries" 4 o.Mapper.attempts

(* Retries must not replay the same search: each try re-seeds the
   technique differently, yet the whole sequence is a deterministic
   function of the harness seed. *)
let test_harness_retry_seeds () =
  let k = Kernels.dot_product () in
  let p = Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra:cgra44 () in
  let record () =
    let draws = ref [] in
    let spy =
      Mapper.make ~name:"spy" ~citation:"-" ~scope:Taxonomy.Temporal_mapping
        ~approach:Taxonomy.Heuristic (fun _p rng _dl _obs ->
          draws := Rng.bits rng :: !draws;
          {
            Mapper.mapping = None;
            proven_optimal = false;
            attempts = 1;
            elapsed_s = 0.0;
            note = "";
            trail = [];
          })
    in
    let o = Mapper.Harness.run ~seed:5 ~retries:3 [ spy ] p in
    checkb "no mapping" true (o.Mapper.mapping = None);
    List.rev !draws
  in
  let a = record () in
  let b = record () in
  checki "three tries, three rng states" 3 (List.length a);
  checkb "every retry drew from a fresh seed" true
    (List.sort_uniq compare a = List.sort compare a);
  checkb "identical across same-seed runs" true (a = b)

let test_chain_of_spec () =
  let chain = Ocgra_mappers.Registry.chain_of_spec "sat, modulo-greedy,constructive" in
  Alcotest.(check (list string))
    "parsed in order"
    [ "sat"; "modulo-greedy"; "constructive" ]
    (List.map (fun (m : Mapper.t) -> m.Mapper.name) chain)

(* ---------- registry-wide sweep ---------- *)

(* Every registered mapper, two small kernels, healthy and one-fault
   arrays, under a deadline: successes must validate (checked directly,
   not just via Mapper.run's demotion), and nothing may raise. *)
let test_registry_sweep_with_faults () =
  let kernels = [ Kernels.dot_product (); Kernels.horner () ] in
  let arrays = [ ("healthy", []); ("degraded", [ Fault.Pe_down 5 ]) ] in
  List.iter
    (fun (mapper : Mapper.t) ->
      List.iter
        (fun (k : Kernels.t) ->
          List.iter
            (fun (tag, faults) ->
              let base = if mapper.scope = Taxonomy.Spatial_mapping then cgra_diag else cgra44 in
              let cgra = Cgra.with_faults base faults in
              let p =
                if mapper.scope = Taxonomy.Spatial_mapping then
                  Problem.spatial ~init:k.init ~dfg:k.dfg ~cgra ()
                else Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra ~max_ii:12 ()
              in
              let o = Mapper.run mapper ~seed:7 ~deadline_s:5.0 p in
              match o.Mapper.mapping with
              | None -> () (* failing (or timing out) is allowed; lying is not *)
              | Some m ->
                  Alcotest.(check (list string))
                    (Printf.sprintf "%s on %s (%s) is valid" mapper.name k.name tag)
                    [] (Check.validate p m))
            arrays)
        kernels)
    (Ocgra_mappers.Registry.all @ Ocgra_mappers.Registry.extras)

let () =
  Alcotest.run "fault"
    [
      ( "model",
        [
          Alcotest.test_case "fault semantics" `Quick test_fault_model;
          Alcotest.test_case "dedup" `Quick test_fault_dedup;
          Alcotest.test_case "seeded injection" `Quick test_injection_deterministic;
        ] );
      ( "enforcement",
        [
          QCheck_alcotest.to_alcotest qcheck_fault_on_used_resource_rejects;
          Alcotest.test_case "simulator refuses" `Quick test_sim_refuses_faulted_execution;
        ] );
      ( "harness",
        [
          Alcotest.test_case "elapsed is wall clock" `Quick test_elapsed_is_wall_clock;
          Alcotest.test_case "unmappable fails cleanly" `Quick test_unmappable_fails_cleanly;
          Alcotest.test_case "falls back" `Quick test_harness_falls_back;
          Alcotest.test_case "total failure" `Quick test_harness_total_failure;
          Alcotest.test_case "empty chain" `Quick test_harness_empty_chain;
          Alcotest.test_case "expired budget" `Quick test_harness_expired_budget;
          Alcotest.test_case "failure trail" `Quick test_harness_failure_trail;
          Alcotest.test_case "retry seeds" `Quick test_harness_retry_seeds;
          Alcotest.test_case "chain parsing" `Quick test_chain_of_spec;
        ] );
      ( "sweep",
        [ Alcotest.test_case "registry sweep with faults" `Slow test_registry_sweep_with_faults ] );
    ]

(* Benchmark harness: regenerates every table and figure of the paper
   (Table I bibliographic + empirical companion, Figs. 1-4) and the
   ablation tables called out in DESIGN.md, then times the artifact
   generators with bechamel (one Test.make per artifact).

     dune exec bench/main.exe            everything
     dune exec bench/main.exe -- quick   skip the slow exact mappers
     dune exec bench/main.exe -- t1b-only [journal=FILE] [resume]
                                         just the empirical sweep, with
                                         optional crash-safe checkpointing
     dune exec bench/main.exe -- repair-only     just the repair-ladder walk
     dune exec bench/main.exe -- sat-sweep-only  just the incremental-vs-cold
                                                 SAT II-sweep comparison *)

module Table = Ocgra_util.Table
module Kernels = Ocgra_workloads.Kernels

let args = List.tl (Array.to_list Sys.argv)
let quick = List.mem "quick" args
let t1b_only = List.mem "t1b-only" args
let repair_only = List.mem "repair-only" args
let sat_sweep_only = List.mem "sat-sweep-only" args
let serve_only = List.mem "serve-only" args
let bench_resume = List.mem "resume" args

let bench_journal =
  List.find_map
    (fun a ->
      if String.length a > 8 && String.sub a 0 8 = "journal=" then
        Some (String.sub a 8 (String.length a - 8))
      else None)
    args

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* Every BENCH_*.json snapshot opens with the same stamp: a schema
   version plus the bench name, which is what lets `ocgra report` /
   `bench diff` refuse to compare snapshots of different shape or
   vintage.  Bump the version whenever a writer changes shape. *)
let bench_schema = 1

let bench_stamp oc name =
  output_string oc (Printf.sprintf "{\n\"schema\": %d,\n\"bench\": \"%s\",\n" bench_schema name)

(* ------------------------------------------------------------------ *)
(* T1a: Table I, bibliographic (generated from the corpus)            *)
(* ------------------------------------------------------------------ *)

let t1a () =
  section "Table I (bibliographic): binding and scheduling techniques, from the corpus";
  print_string (Ocgra_biblio.Table1.render ())

(* ------------------------------------------------------------------ *)
(* T1b: Table I, empirical companion                                   *)
(* ------------------------------------------------------------------ *)

let slow_mappers = [ "ilp-temporal"; "cp"; "sat"; "ilp-spatial" ]

(* The kernels x mappers sweep is embarrassingly parallel: every cell
   is an independent [Mapper.run] with its own seed-derived RNG, on
   read-only shared problem inputs.  Cells are flattened into one task
   array and sharded across a domain pool (OCGRA_JOBS or all cores);
   results land at their cell index, so the printed table is identical
   to the sequential one.  Each cell's time is measured on the
   monotonic clock *inside* its task — never [Sys.time], which is CPU
   time and sums across workers — and a mapper's "time" column is the
   sum of its cells' mapping times (comparable across mappers
   regardless of interleaving). *)
(* Minimal JSON string escaping for the BENCH_PR6.json emitter: cell
   names are plain identifiers, but stay safe anyway. *)
let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Machine-readable companion of the t1b sweep: one record per
   (mapper, kernel) cell with the II, mapping time and the engine
   counters that cell's private metrics sink accumulated. *)
let write_bench_json path records =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      bench_stamp oc "table1-empirical";
      output_string oc "\"cells\": [\n";
      List.iteri
        (fun i (mapper, kernel, ii, proven, dt, counters) ->
          if i > 0 then output_string oc ",\n";
          output_string oc
            (Printf.sprintf "{\"mapper\": \"%s\", \"kernel\": \"%s\", \"ii\": %s, "
               (json_escape mapper) (json_escape kernel)
               (match ii with Some ii -> string_of_int ii | None -> "null"));
          output_string oc
            (Printf.sprintf "\"proven_optimal\": %b, \"map_time_s\": %.6f, \"counters\": {"
               proven dt);
          List.iteri
            (fun j (name, v) ->
              if j > 0 then output_string oc ", ";
              output_string oc (Printf.sprintf "\"%s\": %d" (json_escape name) v))
            counters;
          output_string oc "}}")
        records;
      output_string oc "\n]\n}\n")

(* ----- crash-safe sweep checkpointing (same discipline as
   Reliability.run_campaign): one JSON line per finished cell,
   appended from whichever worker domain ran it, fsync'd in batches;
   resume replays the journal, skips finished cells and recomputes
   only the rest.  Cell identity is "mapper/kernel", so a resumed
   sweep must be configured identically — the header line pins the
   quick flag. ----- *)

let bench_header () = Printf.sprintf "{\"bench\": {\"suite\": \"t1b\", \"quick\": %b}}" quick

let counters_to_kv cs = String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ string_of_int v) cs)

let counters_of_kv s =
  if s = "" then []
  else
    String.split_on_char ' ' s
    |> List.filter_map (fun kv ->
           match String.index_opt kv '=' with
           | None -> None
           | Some i -> (
               let name = String.sub kv 0 i in
               match int_of_string_opt (String.sub kv (i + 1) (String.length kv - i - 1)) with
               | Some v -> Some (name, v)
               | None -> None))

let cell_line name (_, dt, ii, proven, counters) =
  Printf.sprintf "{\"cell\": %S, \"ii\": %d, \"proven\": %B, \"time\": %.6f, \"counters\": %S}"
    name
    (match ii with Some ii -> ii | None -> -1)
    proven dt (counters_to_kv counters)

let shown_of ~ii ~proven =
  match ii with
  | Some ii -> Printf.sprintf "II=%d%s" ii (if proven then "*" else "")
  | None -> "-"

let parse_cell_line line =
  match
    Scanf.sscanf line "{\"cell\": %S, \"ii\": %d, \"proven\": %B, \"time\": %f, \"counters\": %S}"
      (fun n ii pr t c -> (n, ii, pr, t, c))
  with
  | exception _ -> None (* torn tail of a killed sweep: the cell reruns *)
  | n, ii, pr, t, c ->
      let ii = if ii < 0 then None else Some ii in
      Some (n, (shown_of ~ii ~proven:pr, t, ii, pr, counters_of_kv c))

let t1b () =
  section "Table I (empirical): one implemented representative per cell, common suite";
  let cgra = Ocgra_arch.Cgra.uniform ~rows:4 ~cols:4 () in
  let cgra_spatial =
    Ocgra_arch.Cgra.uniform ~topology:Ocgra_arch.Topology.Diagonal ~rows:4 ~cols:4 ()
  in
  let suite = Kernels.small_suite () in
  let nk = List.length suite in
  let headers =
    Array.of_list
      (("mapper" :: "cell" :: List.map (fun (k : Kernels.t) -> k.name) suite) @ [ "time" ])
  in
  let mappers =
    List.filter
      (fun (m : Ocgra_core.Mapper.t) -> not (quick && List.mem m.name slow_mappers))
      Ocgra_mappers.Registry.all
  in
  let cell (mapper : Ocgra_core.Mapper.t) (k : Kernels.t) () =
    let t0 = Ocgra_core.Deadline.now () in
    let p =
      if mapper.scope = Ocgra_core.Taxonomy.Spatial_mapping then
        Ocgra_core.Problem.spatial ~init:k.init ~dfg:k.dfg ~cgra:cgra_spatial ()
      else Ocgra_core.Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra ~max_ii:12 ()
    in
    (* a private metrics sink per cell: counter deltas attribute to
       exactly this (mapper, kernel) pair even across worker domains *)
    let obs = Ocgra_obs.Ctx.v ~trace:Ocgra_obs.Trace.off ~metrics:(Ocgra_obs.Metrics.create ()) () in
    let o = Ocgra_core.Mapper.run mapper ~seed:7 ~obs p in
    let dt = Ocgra_core.Deadline.now () -. t0 in
    let shown =
      match o.mapping with
      | Some m ->
          Printf.sprintf "II=%d%s" m.Ocgra_core.Mapping.ii
            (if o.proven_optimal then "*" else "")
      | None -> "-"
    in
    let ii = Option.map (fun m -> m.Ocgra_core.Mapping.ii) o.mapping in
    (shown, dt, ii, o.proven_optimal, Ocgra_obs.Metrics.dump (Ocgra_obs.Ctx.metrics obs))
  in
  let pairs =
    Array.of_list (List.concat_map (fun m -> List.map (fun k -> (m, k)) suite) mappers)
  in
  let n = Array.length pairs in
  let name_of i =
    let (m : Ocgra_core.Mapper.t), (k : Kernels.t) = pairs.(i) in
    m.name ^ "/" ^ k.name
  in
  (* journal replay: completed cells keyed by "mapper/kernel" *)
  let completed = Hashtbl.create 64 in
  (match bench_journal with
  | Some path when bench_resume -> (
      match Ocgra_par.Journal.read_lines path with
      | [] -> ()
      | header :: rest ->
          if header <> bench_header () then
            invalid_arg
              (Printf.sprintf "bench: journal %s was written by a differently-configured sweep"
                 path);
          List.iter
            (fun line ->
              match parse_cell_line line with
              | Some (name, c) -> Hashtbl.replace completed name c
              | None -> ())
            rest)
  | _ -> ());
  let resumed = Hashtbl.length completed in
  let journal =
    Option.map
      (fun path ->
        let fresh = resumed = 0 in
        let j = Ocgra_par.Journal.open_append ~fresh path in
        if fresh then Ocgra_par.Journal.append j (bench_header ());
        j)
      bench_journal
  in
  (* quarantined cells degrade to an ERR entry instead of killing the
     sweep; every other cell still prints *)
  let cells = Array.make n ("ERR", 0.0, None, false, []) in
  let pending =
    List.filter
      (fun i ->
        match Hashtbl.find_opt completed (name_of i) with
        | Some c ->
            cells.(i) <- c;
            false
        | None -> true)
      (List.init n Fun.id)
  in
  let tasks =
    Array.of_list
      (List.map
         (fun i ->
           let m, k = pairs.(i) in
           fun (_stop : unit -> bool) ->
             let r = cell m k () in
             (match journal with
             | Some j -> Ocgra_par.Journal.append j (cell_line (name_of i) r)
             | None -> ());
             (i, r))
         pending)
  in
  let summary = Ocgra_par.Supervise.run tasks in
  (match journal with Some j -> Ocgra_par.Journal.close j | None -> ());
  Array.iter
    (function Ocgra_par.Supervise.Ok (i, r) -> cells.(i) <- r | _ -> ())
    summary.outcomes;
  let records =
    List.concat
      (List.mapi
         (fun mi (mapper : Ocgra_core.Mapper.t) ->
           List.mapi
             (fun ki (k : Kernels.t) ->
               let _, dt, ii, proven, counters = cells.((mi * nk) + ki) in
               (mapper.name, k.name, ii, proven, dt, counters))
             suite)
         mappers)
  in
  write_bench_json "BENCH_PR6.json" records;
  let rows =
    List.mapi
      (fun mi (mapper : Ocgra_core.Mapper.t) ->
        let row = Array.sub cells (mi * nk) nk in
        let dt = Array.fold_left (fun acc (_, d, _, _, _) -> acc +. d) 0.0 row in
        let scope_tag =
          match mapper.scope with
          | Ocgra_core.Taxonomy.Spatial_mapping -> "S"
          | Ocgra_core.Taxonomy.Temporal_mapping -> "T"
          | Ocgra_core.Taxonomy.Binding_only -> "B"
          | Ocgra_core.Taxonomy.Scheduling_only -> "Sc"
        in
        let col =
          Ocgra_core.Taxonomy.column_to_string
            (Ocgra_core.Taxonomy.column_of_approach mapper.approach)
        in
        Array.of_list
          ((mapper.name :: Printf.sprintf "%s/%s" scope_tag col
            :: List.map (fun (shown, _, _, _, _) -> shown) (Array.to_list row))
          @ [ Printf.sprintf "%.1fs" dt ]))
      mappers
  in
  Table.print ~headers rows;
  print_endline "  *  = II proven optimal (success at the MII lower bound)";
  print_endline "  S(patial) rows run at II=1 on a diagonal-topology array; '-' = mapping failed";
  Printf.printf "  cells mapped on %d worker domain(s); time = summed per-cell mapping time\n"
    (Ocgra_par.Pool.default_workers ());
  if resumed > 0 then
    Printf.printf "  resumed: %d cell(s) replayed from the journal, %d recomputed\n" resumed
      (List.length pending);
  (match summary.quarantined with
  | [] -> ()
  | q -> Printf.printf "  quarantined: %d cell(s) kept failing and print as ERR\n" (List.length q));
  print_endline "  machine-readable sweep written to BENCH_PR6.json"

(* ------------------------------------------------------------------ *)
(* PR7: repair ladder vs cold remap under escalating faults            *)
(* ------------------------------------------------------------------ *)

(* One survivor walk per kernel: escalating seeded permanent faults,
   each step salvaged by the certified repair ladder *and* cold-solved
   from scratch on the same mask, so every step prices the incremental
   path against the full remap it replaces.  The machine-readable
   snapshot (BENCH_PR7.json) carries per-step rung/II/time records and
   two medians: over all surviving steps, and over the incremental
   rungs only (untouched excluded — those are free by construction). *)

let median_of floats =
  match List.sort compare floats with
  | [] -> None
  | sorted ->
      let n = List.length sorted in
      Some ((List.nth sorted ((n - 1) / 2) +. List.nth sorted (n / 2)) /. 2.0)

let write_repair_json path ~seed ~steps_per_kernel results =
  let step_records =
    List.concat_map
      (fun (kernel, rep) ->
        List.map
          (fun (s : Ocgra_sim.Reliability.survivor_step) -> (kernel, s))
          rep.Ocgra_sim.Reliability.steps)
      results
  in
  let ratios pred =
    List.filter_map
      (fun ((_, s) : string * Ocgra_sim.Reliability.survivor_step) ->
        match (s.rung, s.scratch_s) with
        | Some r, Some sc when pred r && s.repair_s > 0.0 -> Some (sc /. s.repair_s)
        | _ -> None)
      step_records
  in
  let med_all = median_of (ratios (fun _ -> true)) in
  let med_incr =
    median_of
      (ratios (function
        | Ocgra_core.Mapper.Route_only | Ocgra_core.Mapper.Local_replace -> true
        | _ -> false))
  in
  let certified =
    List.length (List.filter (fun (_, (s : Ocgra_sim.Reliability.survivor_step)) -> s.rung <> None) step_records)
  in
  let fnum = function None -> "null" | Some x -> Printf.sprintf "%.2f" x in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      bench_stamp oc "repair-ladder";
      output_string oc
        (Printf.sprintf "\"seed\": %d,\n\"steps_per_kernel\": %d,\n\"steps\": [\n" seed
           steps_per_kernel);
      List.iteri
        (fun i (kernel, (s : Ocgra_sim.Reliability.survivor_step)) ->
          if i > 0 then output_string oc ",\n";
          output_string oc
            (Printf.sprintf
               "{\"kernel\": \"%s\", \"step\": %d, \"rung\": %s, \"ii\": %s, \"replayed\": %b, \
                \"repair_s\": %.6f, \"scratch_s\": %s, \"speedup\": %s}"
               (json_escape kernel) s.step
               (match s.rung with
               | Some r -> Printf.sprintf "\"%s\"" (Ocgra_core.Mapper.rung_to_string r)
               | None -> "null")
               (match s.ii with Some ii -> string_of_int ii | None -> "null")
               s.replayed s.repair_s
               (match s.scratch_s with Some sc -> Printf.sprintf "%.6f" sc | None -> "null")
               (match (s.rung, s.scratch_s) with
               | Some _, Some sc when s.repair_s > 0.0 -> Printf.sprintf "%.2f" (sc /. s.repair_s)
               | _ -> "null")))
        step_records;
      output_string oc
        (Printf.sprintf
           "\n],\n\"summary\": {\"kernels\": %d, \"steps\": %d, \"certified\": %d, \
            \"median_speedup_all\": %s, \"median_speedup_incremental\": %s}\n}\n"
           (List.length results) (List.length step_records) certified (fnum med_all)
           (fnum med_incr)));
  (med_all, med_incr)

let repair_bench () =
  section "Repair ladder: incremental salvage vs cold remap under escalating faults";
  let kernels =
    [
      Kernels.dot_product (); Kernels.saxpy (); Kernels.fir4 (); Kernels.sobel_row ();
      Kernels.absdiff ();
    ]
  in
  let chain = [ Ocgra_mappers.Registry.find "modulo-greedy" ] in
  let iters = 8 and steps = 10 and seed = 1 in
  let cgra = Ocgra_arch.Cgra.uniform ~rows:4 ~cols:4 () in
  let results =
    List.filter_map
      (fun (k : Kernels.t) ->
        let p = Ocgra_core.Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra ~max_ii:12 () in
        let o = Ocgra_core.Mapper.run (List.hd chain) ~seed:7 p in
        match o.mapping with
        | None -> None
        | Some m ->
            let mk_io () = Ocgra_sim.Machine.io_of_streams ~memory:k.memory (k.inputs iters) in
            let reference = Kernels.eval_reference k ~iters in
            let expected =
              List.map
                (fun name -> (name, Ocgra_dfg.Eval.output_stream reference name))
                k.outputs
            in
            let rep =
              Ocgra_sim.Reliability.run_survivor ~workers:1 ~chain p m ~mk_io ~iters ~expected
                ~steps ~seed
            in
            Some (k.name, rep))
      kernels
  in
  let rows =
    List.map
      (fun (name, (rep : Ocgra_sim.Reliability.survivor_report)) ->
        [|
          name;
          string_of_int rep.survived;
          (match rep.certified_failure with Some k -> string_of_int k | None -> "-");
          (match (rep.ii_curve, List.rev rep.ii_curve) with
          | (_, ii0) :: _, (_, iin) :: _ -> Printf.sprintf "%d -> %d" ii0 iin
          | _ -> "-");
          (match rep.repair_vs_scratch with Some x -> Printf.sprintf "%.1fx" x | None -> "-");
        |])
      results
  in
  Table.print
    ~headers:[| "kernel"; "survived"; "failure at"; "II curve"; "repair vs scratch" |]
    rows;
  let med_all, med_incr = write_repair_json "BENCH_PR7.json" ~seed ~steps_per_kernel:steps results in
  Printf.printf "  median speedup, all surviving steps: %s\n"
    (match med_all with Some x -> Printf.sprintf "%.1fx" x | None -> "-");
  Printf.printf "  median speedup, incremental rungs (route-only/re-place): %s\n"
    (match med_incr with Some x -> Printf.sprintf "%.1fx" x | None -> "-");
  print_endline "  machine-readable walk written to BENCH_PR7.json"

(* ------------------------------------------------------------------ *)
(* PR8: incremental assumption-based II sweep vs cold-per-II           *)
(* ------------------------------------------------------------------ *)

(* Kernels x grids whose optimal II exceeds MII, so the sweep visits
   more than one candidate and the shared solver instance actually
   carries learnt clauses, activities and phases across candidates.
   Both modes must reach the same final II; the incremental sweep is
   expected to spend strictly fewer conflicts (conflict counts are
   deterministic; wall times vary with machine load). *)
let sat_sweep_cases =
  [ ("running-max", 2); ("absdiff", 2); ("mix-round", 2); ("matvec2", 3) ]

let sat_sweep_seed = 11
let sat_sweep_max_ii = 8

type sat_sweep_run = {
  ss_ii : int option;
  ss_attempts : int;
  ss_conflicts : int;
  ss_decisions : int;
  ss_propagations : int;
  ss_time_s : float;
}

let sat_sweep_run ~incremental (k : Kernels.t) grid =
  let cgra = Ocgra_arch.Cgra.uniform ~rows:grid ~cols:grid () in
  let p =
    Ocgra_core.Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra ~max_ii:sat_sweep_max_ii ()
  in
  let obs = Ocgra_obs.Ctx.create () in
  let rng = Ocgra_util.Rng.create sat_sweep_seed in
  let t0 = Ocgra_core.Deadline.now () in
  let m, attempts, _, _ = Ocgra_mappers.Sat_temporal.map ~incremental ~obs p rng in
  let dt = Ocgra_core.Deadline.now () -. t0 in
  (match m with
  | Some m when Ocgra_core.Check.validate p m <> [] ->
      invalid_arg (Printf.sprintf "sat sweep: invalid mapping on %s" k.name)
  | _ -> ());
  let mt = Ocgra_obs.Ctx.metrics obs in
  let get = Ocgra_obs.Metrics.get mt in
  {
    ss_ii = Option.map (fun (m : Ocgra_core.Mapping.t) -> m.ii) m;
    ss_attempts = attempts;
    ss_conflicts = get "sat.conflicts";
    ss_decisions = get "sat.decisions";
    ss_propagations = get "sat.propagations";
    ss_time_s = dt;
  }

let sat_sweep_json_run r =
  Printf.sprintf
    "{\"ii\": %s, \"attempts\": %d, \"conflicts\": %d, \"decisions\": %d, \
     \"propagations\": %d, \"time_s\": %.6f}"
    (match r.ss_ii with Some ii -> string_of_int ii | None -> "null")
    r.ss_attempts r.ss_conflicts r.ss_decisions r.ss_propagations r.ss_time_s

let write_sat_sweep_json path rows (tc : sat_sweep_run) (ti : sat_sweep_run) =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      bench_stamp oc "sat-incremental-sweep";
      output_string oc
        (Printf.sprintf "\"seed\": %d,\n\"max_ii\": %d,\n\"kernels\": [\n" sat_sweep_seed
           sat_sweep_max_ii);
      List.iteri
        (fun i (kernel, grid, mii, cold, inc) ->
          if i > 0 then output_string oc ",\n";
          output_string oc
            (Printf.sprintf
               "{\"kernel\": \"%s\", \"grid\": \"%dx%d\", \"mii\": %d,\n\
               \  \"cold\": %s,\n  \"incremental\": %s,\n\
               \  \"same_ii\": %b, \"conflicts_reduced\": %b, \"time_reduced\": %b}"
               (json_escape kernel) grid grid mii (sat_sweep_json_run cold)
               (sat_sweep_json_run inc)
               (cold.ss_ii = inc.ss_ii)
               (inc.ss_conflicts < cold.ss_conflicts)
               (inc.ss_time_s < cold.ss_time_s)))
        rows;
      output_string oc
        (Printf.sprintf
           "\n],\n\"totals\": {\"cold\": %s,\n\"incremental\": %s,\n\
            \"conflicts_reduced\": %b, \"time_reduced\": %b}\n}\n"
           (sat_sweep_json_run tc) (sat_sweep_json_run ti)
           (ti.ss_conflicts < tc.ss_conflicts)
           (ti.ss_time_s < tc.ss_time_s)))

let sat_sweep_bench () =
  section "Incremental SAT II sweep: one shared solver vs cold per candidate II";
  let rows =
    List.map
      (fun (name, grid) ->
        let k = Kernels.find name in
        let cgra = Ocgra_arch.Cgra.uniform ~rows:grid ~cols:grid () in
        let mii = Ocgra_core.Mii.mii k.dfg cgra in
        let cold = sat_sweep_run ~incremental:false k grid in
        let inc = sat_sweep_run ~incremental:true k grid in
        (name, grid, mii, cold, inc))
      sat_sweep_cases
  in
  let total runs =
    List.fold_left
      (fun acc r ->
        {
          acc with
          ss_conflicts = acc.ss_conflicts + r.ss_conflicts;
          ss_decisions = acc.ss_decisions + r.ss_decisions;
          ss_propagations = acc.ss_propagations + r.ss_propagations;
          ss_time_s = acc.ss_time_s +. r.ss_time_s;
          ss_attempts = acc.ss_attempts + r.ss_attempts;
        })
      { ss_ii = None; ss_attempts = 0; ss_conflicts = 0; ss_decisions = 0;
        ss_propagations = 0; ss_time_s = 0.0 }
      runs
  in
  let tc = total (List.map (fun (_, _, _, c, _) -> c) rows) in
  let ti = total (List.map (fun (_, _, _, _, i) -> i) rows) in
  Table.print
    ~headers:
      [| "kernel"; "grid"; "mii"; "II"; "sweeps"; "cold confl"; "incr confl"; "cold s"; "incr s" |]
    (List.map
       (fun (name, grid, mii, (c : sat_sweep_run), (i : sat_sweep_run)) ->
         [|
           name;
           Printf.sprintf "%dx%d" grid grid;
           string_of_int mii;
           (match i.ss_ii with Some ii -> string_of_int ii | None -> "-");
           string_of_int i.ss_attempts;
           string_of_int c.ss_conflicts;
           string_of_int i.ss_conflicts;
           Printf.sprintf "%.3f" c.ss_time_s;
           Printf.sprintf "%.3f" i.ss_time_s;
         |])
       rows);
  Printf.printf "  totals: conflicts %d -> %d, wall %.3fs -> %.3fs\n" tc.ss_conflicts
    ti.ss_conflicts tc.ss_time_s ti.ss_time_s;
  write_sat_sweep_json "BENCH_PR8.json" rows tc ti;
  print_endline "  machine-readable sweep written to BENCH_PR8.json"

(* ------------------------------------------------------------------ *)
(* F1: architecture-class comparison                                   *)
(* ------------------------------------------------------------------ *)

let f1 () =
  section "Fig. 1 (reproduction): architecture classes on the same kernels";
  let classes =
    [
      ("CPU-like (1 PE, temporal)", Ocgra_arch.Cgra.single_pe (), false);
      ("CGRA 4x4 (temporal)", Ocgra_arch.Cgra.uniform ~rows:4 ~cols:4 (), false);
      ( "FPGA-like 8x8 (spatial)",
        Ocgra_arch.Cgra.uniform ~topology:Ocgra_arch.Topology.Diagonal ~rows:8 ~cols:8 (),
        true );
    ]
  in
  let suite = Kernels.full_suite () in
  let iters = 16 in
  let rows =
    List.map
      (fun (label, cgra, spatial) ->
        let npe = Ocgra_arch.Cgra.pe_count cgra in
        let mapped = ref 0 and cycles = ref 0 and energy = ref 0.0 in
        List.iter
          (fun (k : Kernels.t) ->
            let p =
              if spatial then Ocgra_core.Problem.spatial ~init:k.init ~dfg:k.dfg ~cgra ()
              else Ocgra_core.Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra ~max_ii:40 ()
            in
            let rng = Ocgra_util.Rng.create 23 in
            match Ocgra_mappers.Constructive.map ~restarts:12 p rng with
            | Some m, _, _ ->
                incr mapped;
                let io = Ocgra_sim.Machine.io_of_streams ~memory:k.memory (k.inputs iters) in
                let result = Ocgra_sim.Machine.run p m io ~iters in
                cycles := !cycles + result.Ocgra_sim.Machine.stats.cycles;
                energy :=
                  !energy
                  +. Ocgra_sim.Energy.of_mapping_run k.dfg ~npe ~iters
                       result.Ocgra_sim.Machine.stats
            | None, _, _ -> ())
          suite;
        let flexibility = Printf.sprintf "%d/%d kernels" !mapped (List.length suite) in
        let performance =
          if !mapped = 0 then "-"
          else
            Printf.sprintf "%.3f iter/cycle"
              (float_of_int (!mapped * iters) /. float_of_int !cycles)
        in
        let efficiency =
          if !mapped = 0 then "-"
          else Printf.sprintf "%.4f iter/energy" (float_of_int (!mapped * iters) /. !energy)
        in
        [| label; flexibility; performance; efficiency |])
      classes
  in
  Table.print
    ~headers:[| "architecture"; "flexibility"; "performance"; "energy efficiency" |]
    rows;
  print_endline
    "  expected shape (Fig. 1): the CGRA sits between the sequential processor\n\
    \  (maps everything, lowest throughput) and the spatial fabric (fast where it\n\
    \  maps at all, maps the fewest kernels)"

(* ------------------------------------------------------------------ *)
(* F2: the CGRA anatomy and its configuration register                 *)
(* ------------------------------------------------------------------ *)

let f2 () =
  section "Fig. 2 (reproduction): a simple CGRA and one configuration register";
  let cgra = Ocgra_arch.Cgra.adres_like ~rows:4 ~cols:4 () in
  print_string (Ocgra_arch.Cgra.describe cgra);
  let k = Kernels.dot_product () in
  let p = Ocgra_core.Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra () in
  let rng = Ocgra_util.Rng.create 42 in
  match Ocgra_mappers.Constructive.map p rng with
  | Some m, _, _ ->
      let build = Ocgra_core.Contexts.of_mapping p m in
      print_string (Ocgra_core.Contexts.to_string p build);
      let words = Ocgra_core.Contexts.encode build in
      Printf.printf "context memory: %d contexts x %d PEs x 53-bit words; word[0][0] = 0x%Lx\n"
        (Array.length words)
        (Array.length words.(0))
        words.(0).(0)
  | None, _, _ -> print_endline "mapping failed"

(* ------------------------------------------------------------------ *)
(* F3: the compilation flow on the dot product                         *)
(* ------------------------------------------------------------------ *)

let f3 () =
  section "Fig. 3 (reproduction): compilation flow, dot product";
  let module P = Ocgra_dfg.Prog_ast in
  let program =
    [
      P.Assign ("sum", P.Int 0);
      P.For
        ( "i",
          P.Int 0,
          P.Var "size",
          [
            P.Assign
              ( "sum",
                P.Bin
                  ( Ocgra_dfg.Op.Add,
                    P.Var "sum",
                    P.Bin (Ocgra_dfg.Op.Mul, P.Read ("A", P.Var "i"), P.Read ("B", P.Var "i")) ) );
          ] );
      P.Emit ("sum", P.Var "sum");
    ]
  in
  let cdfg = Ocgra_dfg.Prog.to_cdfg program in
  print_string (Ocgra_dfg.Cdfg.to_string cdfg);
  let kernel = Kernels.dot_product () in
  let cgra = Ocgra_arch.Cgra.uniform ~rows:4 ~cols:4 () in
  let p = Ocgra_core.Problem.temporal ~init:kernel.init ~dfg:kernel.dfg ~cgra () in
  let rng = Ocgra_util.Rng.create 42 in
  match Ocgra_mappers.Constructive.map p rng with
  | Some m, _, _ ->
      Printf.printf "\nmodulo schedule of the loop body (II = %d):\n" m.Ocgra_core.Mapping.ii;
      print_string (Ocgra_core.Mapping.to_grid m kernel.dfg cgra)
  | None, _, _ -> print_endline "mapping failed"

(* ------------------------------------------------------------------ *)
(* F4: the timeline                                                    *)
(* ------------------------------------------------------------------ *)

let f4 () =
  section "Fig. 4 (reproduction): two decades of CGRA mapping";
  print_string (Ocgra_biblio.Timeline.render ())

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ab_ii_vs_size () =
  section "Ablation: achieved II vs array size (scalability, Section IV.B)";
  let kernels = [ Kernels.fir4 (); Kernels.butterfly (); Kernels.sobel_row () ] in
  let sizes = [ (2, 2); (3, 3); (4, 4); (5, 5); (6, 6) ] in
  let rows =
    List.map
      (fun (k : Kernels.t) ->
        Array.of_list
          (k.name
          :: List.map
               (fun (r, c) ->
                 let cgra = Ocgra_arch.Cgra.uniform ~rows:r ~cols:c () in
                 let p = Ocgra_core.Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra ~max_ii:24 () in
                 let rng = Ocgra_util.Rng.create 3 in
                 match Ocgra_mappers.Constructive.map ~restarts:12 p rng with
                 | Some m, _, _ ->
                     Printf.sprintf "II=%d (MII %d)" m.Ocgra_core.Mapping.ii
                       (Ocgra_core.Mii.mii k.dfg cgra)
                 | None, _, _ -> "-")
               sizes))
      kernels
  in
  let headers =
    Array.of_list ("kernel" :: List.map (fun (r, c) -> Printf.sprintf "%dx%d" r c) sizes)
  in
  Table.print ~headers rows

let ab_topology () =
  section "Ablation: interconnect topology (routing pressure)";
  let kernels = [ Kernels.fir4 (); Kernels.butterfly (); Kernels.absdiff () ] in
  let rows =
    List.map
      (fun (k : Kernels.t) ->
        Array.of_list
          (k.name
          :: List.map
               (fun topo ->
                 let cgra = Ocgra_arch.Cgra.uniform ~topology:topo ~rows:4 ~cols:4 () in
                 let p = Ocgra_core.Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra ~max_ii:16 () in
                 let rng = Ocgra_util.Rng.create 3 in
                 match Ocgra_mappers.Constructive.map ~restarts:10 p rng with
                 | Some m, _, _ -> Printf.sprintf "II=%d" m.Ocgra_core.Mapping.ii
                 | None, _, _ -> "-")
               Ocgra_arch.Topology.all))
      kernels
  in
  let headers =
    Array.of_list ("kernel" :: List.map Ocgra_arch.Topology.to_string Ocgra_arch.Topology.all)
  in
  Table.print ~headers rows

let ab_predication () =
  section "Ablation: if-then-else mapping schemes (Section III.B.1)";
  let module P = Ocgra_dfg.Prog_ast in
  let ites =
    [
      ( "clip",
        {
          Ocgra_cf.Predication.cond = P.Bin (Ocgra_dfg.Op.Lt, P.Int 127, P.Var "x");
          then_branch = [ ("y", P.Int 127) ];
          else_branch =
            [ ("y", P.Bin (Ocgra_dfg.Op.Add, P.Bin (Ocgra_dfg.Op.Mul, P.Var "x", P.Int 3), P.Int 1)) ];
        } );
      ( "abs-sign",
        {
          Ocgra_cf.Predication.cond = P.Bin (Ocgra_dfg.Op.Lt, P.Var "x", P.Int 0);
          then_branch = [ ("y", P.Neg (P.Var "x")); ("s", P.Int (-1)) ];
          else_branch = [ ("y", P.Var "x"); ("s", P.Int 1) ];
        } );
    ]
  in
  let cgra = Ocgra_arch.Cgra.uniform ~rows:4 ~cols:4 () in
  List.iter
    (fun (name, ite) ->
      Printf.printf "\nkernel %s:\n" name;
      let rows =
        List.map
          (fun (scheme, dfg, ops, depth) ->
            let p = Ocgra_core.Problem.temporal ~dfg ~cgra () in
            let rng = Ocgra_util.Rng.create 5 in
            let mapped =
              match Ocgra_mappers.Constructive.map p rng with
              | Some m, _, _ -> Printf.sprintf "II=%d" m.Ocgra_core.Mapping.ii
              | None, _, _ -> "-"
            in
            [|
              Ocgra_cf.Predication.scheme_to_string scheme; string_of_int ops;
              string_of_int depth; mapped;
            |])
          (Ocgra_cf.Predication.compare_schemes ite)
      in
      Table.print ~headers:[| "scheme"; "ops"; "critical path"; "mapped" |] rows)
    ites

let ab_banks () =
  section "Ablation: memory banks vs stall cycles (Section III.C)";
  let accesses =
    [
      (0, { Ocgra_mem.Bank.array_base = 0; stride = 1; offset = 0 });
      (0, { Ocgra_mem.Bank.array_base = 64; stride = 1; offset = 0 });
      (0, { Ocgra_mem.Bank.array_base = 0; stride = 1; offset = 1 });
      (1, { Ocgra_mem.Bank.array_base = 128; stride = 1; offset = 0 });
      (1, { Ocgra_mem.Bank.array_base = 64; stride = 2; offset = 0 });
    ]
  in
  let rows =
    List.map
      (fun (banks, conflicts) -> [| string_of_int banks; string_of_int conflicts |])
      (Ocgra_mem.Bank.conflicts_by_banks ~bank_counts:[ 1; 2; 4; 8; 16 ] ~ii:2 ~iters:64 accesses)
  in
  Table.print ~headers:[| "banks"; "stall cycles / 64 iters" |] rows

let ab_exact_scaling () =
  section "Ablation: exact-method runtime vs kernel size (the compilation-time challenge)";
  if quick then print_endline "(skipped in quick mode)"
  else begin
    let cgra = Ocgra_arch.Cgra.uniform ~rows:3 ~cols:3 () in
    let sizes = [ 4; 6; 8; 10 ] in
    let rng0 = Ocgra_util.Rng.create 99 in
    let dfgs =
      List.map
        (fun n ->
          let params =
            { Ocgra_workloads.Random_dfg.default with nodes = n; layers = max 2 (n / 3) }
          in
          (n, fst (Ocgra_workloads.Random_dfg.generate ~params rng0)))
        sizes
    in
    (* budgeted versions of the exact mappers: within the budget they
       answer exactly; past it they give up, which is the honest shape
       of the compilation-time story *)
    let mappers =
      [
        ( "sat (40k conflicts/II)",
          fun p rng ->
            let m, _, _, _ = Ocgra_mappers.Sat_temporal.map ~max_conflicts:40_000 p rng in
            m );
        ( "cp (8k failures/II)",
          fun p rng ->
            let m, _, _ = Ocgra_mappers.Cp_temporal.map ~max_failures:8_000 ~routing_retries:3 p rng in
            m );
        ( "branch-and-bound",
          fun p rng ->
            let m, _, _ = Ocgra_mappers.Bb_temporal.map p rng in
            m );
        ( "modulo-greedy",
          fun p rng ->
            let m, _, _ = Ocgra_mappers.Constructive.map p rng in
            m );
      ]
    in
    let rows =
      List.map
        (fun (name, map) ->
          Array.of_list
            (name
            :: List.map
                 (fun (_, dfg) ->
                   let p = Ocgra_core.Problem.temporal ~dfg ~cgra ~max_ii:8 () in
                   (* monotonic elapsed, not [Sys.time] CPU time: a
                      paging/blocked solver must show its real cost *)
                   let t0 = Ocgra_core.Deadline.now () in
                   let m = map p (Ocgra_util.Rng.create 3) in
                   let dt = Ocgra_core.Deadline.now () -. t0 in
                   match m with
                   | Some m -> Printf.sprintf "II=%d %.2fs" m.Ocgra_core.Mapping.ii dt
                   | None -> Printf.sprintf "- %.2fs" dt)
                 dfgs))
        mappers
    in
    let headers =
      Array.of_list ("mapper" :: List.map (fun (n, _) -> Printf.sprintf "%d nodes" n) dfgs)
    in
    Table.print ~headers rows;
    print_endline "  expected shape: exact methods blow up with size; the heuristic stays flat"
  end

let ab_hwloop () =
  section "Ablation: hardware loops vs host-managed control (Section III.B.2)";
  let model = Ocgra_cf.Hw_loop.default_overhead in
  let rows =
    List.concat_map
      (fun (ii, len) ->
        List.map
          (fun iters ->
            let host = Ocgra_cf.Hw_loop.host_managed_cycles model ~schedule_length:len ~iters in
            let hw = Ocgra_cf.Hw_loop.hw_loop_cycles model ~ii ~schedule_length:len ~iters in
            [|
              Printf.sprintf "II=%d len=%d" ii len;
              string_of_int iters;
              string_of_int host;
              string_of_int hw;
              Printf.sprintf "%.1fx" (float_of_int host /. float_of_int hw);
            |])
          [ 4; 16; 64; 256 ])
      [ (1, 4); (2, 6); (4, 10) ]
  in
  Table.print ~headers:[| "kernel"; "iters"; "host-managed"; "hw loop"; "speedup" |] rows

let ab_unroll () =
  section "Ablation: loop unrolling for throughput (the Fig. 4 'loop unrolling' era)";
  (* unrolling multiplies the work per initiation: effective throughput
     is u / II, until resource pressure raises the II *)
  let kernels = [ Kernels.dot_product (); Kernels.saxpy () ] in
  let factors = [ 1; 2; 4 ] in
  let rows =
    List.map
      (fun (k : Kernels.t) ->
        Array.of_list
          (k.name
          :: List.map
               (fun u ->
                 let dfg = Ocgra_dfg.Transform.unroll k.dfg u in
                 let cgra = Ocgra_arch.Cgra.uniform ~rows:4 ~cols:4 () in
                 let p = Ocgra_core.Problem.temporal ~dfg ~cgra ~max_ii:24 () in
                 let rng = Ocgra_util.Rng.create 13 in
                 match Ocgra_mappers.Constructive.map ~restarts:10 p rng with
                 | Some m, _, _ ->
                     Printf.sprintf "II=%d -> %.2f iters/cycle" m.Ocgra_core.Mapping.ii
                       (float_of_int u /. float_of_int m.Ocgra_core.Mapping.ii)
                 | None, _, _ -> "-")
               factors))
      kernels
  in
  let headers = Array.of_list ("kernel" :: List.map (fun u -> Printf.sprintf "unroll x%d" u) factors) in
  Table.print ~headers rows

let ab_nest () =
  section "Ablation: affine nest transformation before pipelining ([45])";
  let module Nest = Ocgra_cf.Nest in
  let nests =
    [
      ( "stencil {(1,0),(0,1)} lat 2",
        [ { Nest.d_outer = 1; d_inner = 0; latency = 2 }; { Nest.d_outer = 0; d_inner = 1; latency = 2 } ] );
      ("anti-diagonal {(1,-1)} lat 3", [ { Nest.d_outer = 1; d_inner = -1; latency = 3 } ]);
      ("inner recurrence {(0,2)} lat 4", [ { Nest.d_outer = 0; d_inner = 2; latency = 4 } ]);
      ( "coupled {(0,1),(1,-2)} lat 2",
        [ { Nest.d_outer = 0; d_inner = 1; latency = 2 }; { Nest.d_outer = 1; d_inner = -2; latency = 2 } ] );
    ]
  in
  let rows =
    List.map
      (fun (name, deps) ->
        let identity =
          if Nest.legal Nest.Identity deps then string_of_int (Nest.inner_rec_mii Nest.Identity deps)
          else "illegal"
        in
        match Nest.best deps with
        | Some (mii, t) ->
            [| name; identity; Nest.transform_to_string t; string_of_int mii |]
        | None -> [| name; identity; "-"; "-" |])
      nests
  in
  Table.print
    ~headers:[| "nest dependences"; "inner RecMII (identity)"; "best transform"; "inner RecMII (best)" |]
    rows

let ab_regalloc () =
  section "Ablation: rotating vs unified register file need ([29] vs [25])";
  let cgra = Ocgra_arch.Cgra.uniform ~rows:4 ~cols:4 ~rf_size:8 () in
  let rows =
    List.filter_map
      (fun (k : Kernels.t) ->
        let p = Ocgra_core.Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra ~max_ii:16 () in
        let rng = Ocgra_util.Rng.create 7 in
        match Ocgra_mappers.Constructive.map p rng with
        | Some m, _, _ ->
            let s = Ocgra_mem.Regalloc.summarize m ~npe:16 in
            Some
              [|
                k.name;
                string_of_int m.Ocgra_core.Mapping.ii;
                string_of_int s.total_holds;
                string_of_int s.max_rotating;
                string_of_int s.max_unified;
              |]
        | None, _, _ -> None)
      (Kernels.full_suite ())
  in
  Table.print
    ~headers:
      [| "kernel"; "II"; "values in RFs"; "rotating regs (max/PE)"; "unified regs (max/PE)" |]
    rows

(* ------------------------------------------------------------------ *)
(* bechamel: one Test.make per artifact generator                      *)
(* ------------------------------------------------------------------ *)

let bechamel_suite () =
  section "bechamel micro-benchmarks (one test per artifact generator)";
  let open Bechamel in
  let cgra = Ocgra_arch.Cgra.uniform ~rows:4 ~cols:4 () in
  let kernel = Kernels.dot_product () in
  let map_once () =
    let p = Ocgra_core.Problem.temporal ~init:kernel.init ~dfg:kernel.dfg ~cgra () in
    let rng = Ocgra_util.Rng.create 42 in
    ignore (Ocgra_mappers.Constructive.map p rng)
  in
  let sim_once =
    let p = Ocgra_core.Problem.temporal ~init:kernel.init ~dfg:kernel.dfg ~cgra () in
    let rng = Ocgra_util.Rng.create 42 in
    match Ocgra_mappers.Constructive.map p rng with
    | Some m, _, _ ->
        fun () ->
          let io = Ocgra_sim.Machine.io_of_streams ~memory:kernel.memory (kernel.inputs 8) in
          ignore (Ocgra_sim.Machine.run p m io ~iters:8)
    | None, _, _ -> fun () -> ()
  in
  let tests =
    [
      Test.make ~name:"table1-bibliographic"
        (Staged.stage (fun () -> ignore (Ocgra_biblio.Table1.render ())));
      Test.make ~name:"fig4-timeline"
        (Staged.stage (fun () -> ignore (Ocgra_biblio.Timeline.render ())));
      Test.make ~name:"table1-empirical-cell(map dot-product)" (Staged.stage map_once);
      Test.make ~name:"fig1-point(simulate 8 iters)" (Staged.stage sim_once);
      Test.make ~name:"fig2-contexts"
        (Staged.stage (fun () ->
             let p = Ocgra_core.Problem.temporal ~init:kernel.init ~dfg:kernel.dfg ~cgra () in
             let rng = Ocgra_util.Rng.create 42 in
             match Ocgra_mappers.Constructive.map p rng with
             | Some m, _, _ -> ignore (Ocgra_core.Contexts.of_mapping p m)
             | None, _, _ -> ()));
      Test.make ~name:"fig3-frontend"
        (Staged.stage (fun () ->
             let module P = Ocgra_dfg.Prog_ast in
             ignore
               (Ocgra_dfg.Prog.to_cdfg
                  [
                    P.For
                      ( "i",
                        P.Int 0,
                        P.Int 8,
                        [ P.Assign ("s", P.Bin (Ocgra_dfg.Op.Add, P.Var "s", P.Var "i")) ] );
                  ])));
    ]
  in
  List.iter
    (fun test ->
      let results =
        Benchmark.all
          (Benchmark.cfg ~quota:(Time.second 0.25) ~kde:None ())
          Toolkit.Instance.[ monotonic_clock ]
          test
      in
      let stats =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          Toolkit.Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "  %-44s %14.1f ns/run\n" name est
          | Some _ | None -> Printf.printf "  %-44s (no estimate)\n" name)
        stats)
    tests

(* ------------------------------------------------------------------ *)
(* Serve: mapping-as-a-service, canonical-form cache                   *)
(* ------------------------------------------------------------------ *)

(* The request stream is generated (seed-deterministically), committed
   as SERVE_STREAM.jsonl, and replayed through the same wire codec the
   daemon uses.  Mix: one cold request per kernel, exact duplicates,
   isomorphic renamings (random node permutations via [Canon.permute]),
   three kernels whose fault mask grows in nested seeded steps (repair
   territory), and one off-architecture request (a genuinely new cache
   class).  Well over 30% of the stream is duplicate-or-isomorphic, so
   the cache-hit path dominates and its latency separates cleanly from
   the cold maps. *)

let serve_seed = 5
let serve_chunk = 8
let serve_kernels = [ "dot-product"; "saxpy"; "fir4"; "absdiff"; "running-max"; "horner" ]
let serve_grow_kernels = [ "saxpy"; "fir4"; "absdiff" ]

let serve_stream () =
  let module W = Ocgra_svc.Wire in
  let rng = Ocgra_util.Rng.create serve_seed in
  let base name = { W.default_req with W.payload = W.Kernel name } in
  let colds = List.map (fun k -> { (base k) with W.id = "cold-" ^ k }) serve_kernels in
  (* two nested-mask growth families on disjoint kernel sets (one
     entry per class — mixing mask shapes on one kernel would make the
     steps incomparable and force cold maps): a seeded family whose
     mask grows by re-drawing more faults from the same stream, and an
     explicit family that knocks out named PEs/links, covering both
     mask forms of the wire codec *)
  let grow kernels step faults n =
    List.map
      (fun k ->
        {
          (base k) with
          W.id = Printf.sprintf "%s-%s" step k;
          faults;
          n_faults = n;
          fault_seed = 3;
        })
      kernels
  in
  let seeded n = grow serve_grow_kernels (Printf.sprintf "seed%d" n) [] n in
  let expl = grow [ "dot-product"; "running-max"; "horner" ] in
  let m1 = [ Ocgra_arch.Fault.Pe_down 1 ] in
  let m2 = Ocgra_arch.Fault.Pe_down 2 :: m1 in
  let m3 = Ocgra_arch.Fault.Link_down (9, 10) :: m2 in
  let arch = [ { (base "dot-product") with W.id = "arch-5x5"; rows = 5; cols = 5 } ] in
  (* duplicates and renamings, two of each per kernel, interleaved *)
  let warm =
    List.concat_map
      (fun k ->
        let dfg = (Ocgra_workloads.Kernels.find k).Ocgra_workloads.Kernels.dfg in
        List.concat_map
          (fun i ->
            let perm =
              Ocgra_util.Rng.shuffle rng (Array.init (Ocgra_dfg.Dfg.node_count dfg) Fun.id)
            in
            [
              { (base k) with W.id = Printf.sprintf "dup-%s-%d" k i };
              {
                W.default_req with
                W.id = Printf.sprintf "iso-%s-%d" k i;
                payload = W.Inline (Ocgra_svc.Canon.permute dfg perm);
              };
            ])
          [ 1; 2 ])
      serve_kernels
  in
  colds @ seeded 2 @ expl "mask1" m1 0 @ arch @ warm @ seeded 4 @ expl "mask2" m2 0
  @ seeded 6 @ expl "mask3" m3 0

let serve_bench () =
  section "Serve: canonical-form mapping cache + fault-driven incremental remap";
  let module W = Ocgra_svc.Wire in
  let module Svc = Ocgra_svc.Svc in
  let stream = serve_stream () in
  let oc = open_out "SERVE_STREAM.jsonl" in
  List.iter (fun r -> output_string oc (W.req_to_json r ^ "\n")) stream;
  close_out oc;
  (* replay through the wire codec — the daemon's exact input path *)
  let lookup name =
    match Ocgra_workloads.Kernels.find name with
    | k -> Ok k.Ocgra_workloads.Kernels.dfg
    | exception Invalid_argument m -> Error m
  in
  let reqs =
    List.map
      (fun line ->
        match W.parse_req line with
        | Ok r -> (
            match W.to_request ~lookup r with
            | Ok req -> req
            | Error m -> failwith ("serve bench: " ^ m))
        | Error m -> failwith ("serve bench: " ^ m))
      (Ocgra_par.Journal.read_lines "SERVE_STREAM.jsonl")
  in
  let svc =
    Svc.create
      {
        Svc.default_config with
        Svc.capacity = 64;
        chain = [ Ocgra_mappers.Registry.find "modulo-greedy" ];
        workers = Ocgra_par.Pool.default_workers ();
        seed = 7;
      }
  in
  let t0 = Ocgra_core.Deadline.now () in
  let rec drain acc = function
    | [] -> List.rev acc
    | rest ->
        let chunk = List.filteri (fun i _ -> i < serve_chunk) rest in
        let rest = List.filteri (fun i _ -> i >= serve_chunk) rest in
        drain (List.rev_append (Svc.submit_batch svc chunk) acc) rest
  in
  let responses = drain [] reqs in
  let wall = Ocgra_core.Deadline.now () -. t0 in
  let lat pred = List.filter_map (fun (r : Svc.response) -> if pred r.Svc.served then Some r.Svc.elapsed_s else None) responses in
  let hits = lat (function Svc.Hit | Svc.Iso_hit -> true | _ -> false) in
  let isos = lat (function Svc.Iso_hit -> true | _ -> false) in
  let repairs = lat (function Svc.Repair_hit _ -> true | _ -> false) in
  let colds = lat (function Svc.Miss -> true | _ -> false) in
  let med l = Option.value (median_of l) ~default:0.0 in
  let p90 l =
    match List.sort compare l with
    | [] -> 0.0
    | s -> List.nth s (min (List.length s - 1) (List.length s * 9 / 10))
  in
  let rungs =
    List.filter_map
      (fun (r : Svc.response) ->
        match r.Svc.served with
        | Svc.Repair_hit rung -> Some (Ocgra_core.Mapper.rung_to_string rung)
        | _ -> None)
      responses
  in
  let s = Svc.stats svc in
  let speedup = if med hits > 0.0 then med colds /. med hits else 0.0 in
  Printf.printf "  %-28s %8s %14s %14s\n" "path" "count" "median" "p90";
  let row name l =
    Printf.printf "  %-28s %8d %11.1f us %11.1f us\n" name (List.length l)
      (med l *. 1e6) (p90 l *. 1e6)
  in
  row "hit (exact + isomorphic)" hits;
  row "  of which isomorphic" isos;
  row "repair-hit (mask grew)" repairs;
  row "cold map (miss)" colds;
  Printf.printf "  hit vs cold speedup: %.0fx%s\n" speedup
    (if speedup >= 100.0 then "  (>= 100x)" else "  (BELOW 100x)");
  Printf.printf
    "  totals: %d requests, %d hits + %d iso + %d repair / %d cold, %d rejected, %d coalesced, \
     %d demotions, cache %d entries\n"
    s.Svc.requests s.Svc.hits s.Svc.iso_hits s.Svc.repair_hits s.Svc.misses s.Svc.rejections
    s.Svc.coalesced s.Svc.demotions s.Svc.entries;
  let oc = open_out "BENCH_PR10.json" in
  bench_stamp oc "serve";
  output_string oc
    (Printf.sprintf "\"seed\": %d,\n\"chunk\": %d,\n\"requests\": %d,\n" serve_seed serve_chunk
       s.Svc.requests);
  output_string oc
    (Printf.sprintf
       "\"counts\": {\"hits\": %d, \"iso_hits\": %d, \"repair_hits\": %d, \"misses\": %d, \
        \"rejections\": %d, \"coalesced\": %d, \"demotions\": %d, \"entries\": %d, \
        \"evictions\": %d},\n"
       s.Svc.hits s.Svc.iso_hits s.Svc.repair_hits s.Svc.misses s.Svc.rejections s.Svc.coalesced
       s.Svc.demotions s.Svc.entries s.Svc.evictions);
  output_string oc
    (Printf.sprintf "\"rungs\": {%s},\n"
       (String.concat ", "
          (List.map
             (fun r ->
               Printf.sprintf "\"%s\": %d" (json_escape r)
                 (List.length (List.filter (( = ) r) rungs)))
             (List.sort_uniq compare rungs))));
  output_string oc
    (Printf.sprintf
       "\"latency\": {\"hit_median_s\": %.9f, \"hit_p90_s\": %.9f, \"iso_hit_median_s\": %.9f, \
        \"repair_median_s\": %.9f, \"cold_median_s\": %.9f, \"wall_s\": %.6f},\n"
       (med hits) (p90 hits) (med isos) (med repairs) (med colds) wall);
  output_string oc
    (Printf.sprintf "\"speedup_hit_vs_cold\": %.1f,\n\"speedup_ge_100x\": %b\n}\n" speedup
       (speedup >= 100.0));
  close_out oc;
  print_endline "  wrote SERVE_STREAM.jsonl + BENCH_PR10.json"

let run_everything () =
  t1a ();
  f4 ();
  f2 ();
  f3 ();
  ab_hwloop ();
  ab_banks ();
  ab_predication ();
  ab_nest ();
  ab_unroll ();
  ab_regalloc ();
  ab_topology ();
  ab_ii_vs_size ();
  f1 ();
  t1b ();
  repair_bench ();
  sat_sweep_bench ();
  serve_bench ();
  ab_exact_scaling ();
  bechamel_suite ();
  print_endline "\nAll artifacts regenerated."

(* `bench diff BASELINE CANDIDATE` — the same snapshot-diff engine as
   `ocgra report`, exposed where the snapshots are produced.  Exit 1
   on regression, 2 on unreadable/mismatched snapshots. *)
let bench_diff paths =
  let module D = Ocgra_obs.Bench_diff in
  match paths with
  | [ base_path; cand_path ] -> (
      let load path =
        match D.load path with
        | Ok s -> s
        | Error e ->
            Printf.eprintf "bench diff: %s\n" e;
            exit 2
      in
      let baseline = load base_path and candidate = load cand_path in
      match D.diff ~baseline ~candidate () with
      | Error e ->
          Printf.eprintf "bench diff: %s\n" e;
          exit 2
      | Ok r ->
          print_string (D.render_human r);
          if r.D.structural <> [] then exit 2 else if r.D.regressions <> [] then exit 1)
  | _ ->
      prerr_endline "usage: bench/main.exe -- diff BASELINE.json CANDIDATE.json";
      exit 2

let () =
  if List.mem "diff" args then
    bench_diff (List.filter (fun a -> a <> "diff") args)
  else if t1b_only then begin
    t1b ();
    print_endline "\nEmpirical sweep regenerated."
  end
  else if repair_only then begin
    repair_bench ();
    print_endline "\nRepair-ladder walk regenerated."
  end
  else if sat_sweep_only then begin
    sat_sweep_bench ();
    print_endline "\nSAT incremental-sweep comparison regenerated."
  end
  else if serve_only then begin
    serve_bench ();
    print_endline "\nServe-cache stream replay regenerated."
  end
  else run_everything ()

(** Finite-domain constraint solver: bitset domains over non-negative
    ints, a propagation queue with constraint-specific filtering, and
    depth-first search with smallest-domain-first ordering,
    backtracking by domain snapshots, and branch & bound minimization.
    The CP mapper's engine. *)

type var = int
type t

val create : unit -> t
val n_vars : t -> int

(** Domain given as an explicit non-negative value list. *)
val new_var : ?name:string -> t -> int list -> var

val range_var : ?name:string -> t -> int -> int -> var
val domain : t -> var -> Ocgra_util.Bitset.t
val domain_values : t -> var -> int list
val domain_size : t -> var -> int
val is_assigned : t -> var -> bool

(** Raises unless the domain is a singleton. *)
val value_exn : t -> var -> int

val min_value : t -> var -> int
val max_value : t -> var -> int

(** Constraints (posting enqueues initial propagation). *)

val not_equal : t -> var -> var -> unit

(** [eq_offset t x y c] posts x = y + c (arc-consistent). *)
val eq_offset : t -> var -> var -> int -> unit

(** Assigned-value elimination plus a union-of-domains pigeonhole
    argument. *)
val all_different : t -> var list -> unit

(** Bounds-consistent [sum c_i x_i <= k]. *)
val linear_le : t -> (int * var) list -> int -> unit

val linear_eq : t -> (int * var) list -> int -> unit

(** Positive table constraint with GAC support scanning. *)
val table : t -> var list -> int array list -> unit

(** First solution (values per variable), or [None]. [value_order]
    reorders each variable's candidate values; [should_stop] (polled at
    amortised checkpoints) aborts the search, e.g. on a wall-clock
    deadline. *)
val solve :
  ?max_failures:int ->
  ?should_stop:(unit -> bool) ->
  ?value_order:(var -> int list -> int list) ->
  t ->
  int array option

val count_solutions : ?limit:int -> t -> int

(** Iterated branch & bound: best (objective value, solution). *)
val minimize :
  ?max_failures:int -> ?should_stop:(unit -> bool) -> t -> var -> (int * int array) option

(** (failures, decisions, propagations) since creation — a
    propagation is one constraint popped off the queue and filtered. *)
val stats : t -> int * int * int

(** 64 cells: decisions by search depth (exact, tail bucket at 63) —
    the node-depth distribution the mapper wrappers flush into
    observability histograms. *)
val dist_depth : t -> int array

val describe_constraints : t -> string list

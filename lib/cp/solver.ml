(* Finite-domain constraint solver.

   The CP-based mapper ([43] in the survey) poses binding+scheduling as
   a constraint satisfaction problem; this engine provides bitset
   domains over non-negative integers, a propagation queue with
   constraint-specific filtering (not-equal, all-different with a
   counting argument, linear bounds, positive table constraints with
   GAC support scanning, offset equalities), and depth-first search
   with smallest-domain-first variable ordering, chronological
   backtracking by domain snapshots, and branch-and-bound
   minimization. *)

module Bitset = Ocgra_util.Bitset

(* Propagation queue: ints with a membership flag (no duplicates). *)
module Q = struct
  type t = { mutable items : int list; mutable mem : bool array }

  let create () = { items = []; mem = Array.make 16 false }

  let ensure q n =
    if n > Array.length q.mem then begin
      let bigger = Array.make (max n (2 * Array.length q.mem)) false in
      Array.blit q.mem 0 bigger 0 (Array.length q.mem);
      q.mem <- bigger
    end

  let push q i =
    ensure q (i + 1);
    if not q.mem.(i) then begin
      q.mem.(i) <- true;
      q.items <- i :: q.items
    end

  let pop q =
    match q.items with
    | [] -> None
    | i :: rest ->
        q.items <- rest;
        q.mem.(i) <- false;
        Some i

  let clear q =
    List.iter (fun i -> q.mem.(i) <- false) q.items;
    q.items <- []
end

type var = int

type t = {
  mutable domains : Bitset.t array;
  mutable names : string array;
  mutable nvars : int;
  mutable constraints : constr array;
  mutable n_constraints : int;
  mutable watchers : int list array; (* var -> constraint ids *)
  queue : Q.t;
  mutable failures : int;
  mutable decisions : int;
  mutable propagations : int;
  depth_counts : int array; (* decisions by search depth (exact, tail at 63);
                               flushed into Obs histograms by the mapper wrappers *)
}

and constr = {
  vars : var array; (* scope *)
  propagate : t -> bool; (* false = domain wipe-out / failure *)
  describe : string;
}

let create () =
  {
    domains = Array.make 8 (Bitset.create 1);
    names = Array.make 8 "";
    nvars = 0;
    constraints = Array.make 8 { vars = [||]; propagate = (fun _ -> true); describe = "" };
    n_constraints = 0;
    watchers = Array.make 8 [];
    queue = Q.create ();
    failures = 0;
    decisions = 0;
    propagations = 0;
    depth_counts = Array.make 64 0;
  }

let n_vars t = t.nvars

let new_var ?(name = "") t values =
  if values = [] then invalid_arg "Cp.new_var: empty domain";
  let maxv = List.fold_left max 0 values in
  if List.exists (fun v -> v < 0) values then invalid_arg "Cp.new_var: negative value";
  let dom = Bitset.of_list (maxv + 1) values in
  let v = t.nvars in
  if v = Array.length t.domains then begin
    let n = 2 * v in
    let d = Array.make n (Bitset.create 1) and nm = Array.make n "" and w = Array.make n [] in
    Array.blit t.domains 0 d 0 v;
    Array.blit t.names 0 nm 0 v;
    Array.blit t.watchers 0 w 0 v;
    t.domains <- d;
    t.names <- nm;
    t.watchers <- w
  end;
  t.domains.(v) <- dom;
  t.names.(v) <- (if name = "" then Printf.sprintf "v%d" v else name);
  t.watchers.(v) <- [];
  t.nvars <- v + 1;
  v

let range_var ?name t lo hi =
  if hi < lo then invalid_arg "Cp.range_var: empty range";
  new_var ?name t (List.init (hi - lo + 1) (fun i -> lo + i))

let domain t v = t.domains.(v)
let domain_values t v = Bitset.elements t.domains.(v)
let domain_size t v = Bitset.cardinal t.domains.(v)
let is_assigned t v = domain_size t v = 1

let value_exn t v =
  match Bitset.min_elt t.domains.(v) with
  | Some x when is_assigned t v -> x
  | _ -> invalid_arg "Cp.value_exn: variable not assigned"

let min_value t v =
  match Bitset.min_elt t.domains.(v) with
  | Some x -> x
  | None -> invalid_arg "Cp.min_value: empty domain"

let max_value t v = Bitset.fold (fun x _ -> x) t.domains.(v) 0

(* Remove a value; enqueue watchers on change. Returns false on wipe-out. *)
let remove_value t v x =
  if x >= 0 && x < Bitset.capacity t.domains.(v) && Bitset.mem t.domains.(v) x then begin
    Bitset.remove t.domains.(v) x;
    if Bitset.is_empty t.domains.(v) then false
    else begin
      List.iter (fun c -> Q.push t.queue c) t.watchers.(v);
      true
    end
  end
  else true

let assign t v x =
  if x < 0 || x >= Bitset.capacity t.domains.(v) || not (Bitset.mem t.domains.(v) x) then false
  else begin
    if domain_size t v > 1 then begin
      let d = Bitset.create (Bitset.capacity t.domains.(v)) in
      Bitset.add d x;
      t.domains.(v) <- d;
      List.iter (fun c -> Q.push t.queue c) t.watchers.(v)
    end;
    true
  end

let add_constraint t vars propagate describe =
  let id = t.n_constraints in
  let c = { vars; propagate; describe } in
  if id = Array.length t.constraints then begin
    let bigger = Array.make (2 * id) c in
    Array.blit t.constraints 0 bigger 0 id;
    t.constraints <- bigger
  end;
  t.constraints.(id) <- c;
  t.n_constraints <- id + 1;
  Array.iter (fun v -> t.watchers.(v) <- id :: t.watchers.(v)) vars;
  Q.push t.queue id

(* ---------- constraints ---------- *)

let not_equal t a b =
  let propagate t =
    let ok = ref true in
    if is_assigned t a then ok := remove_value t b (value_exn t a);
    if !ok && is_assigned t b then ok := remove_value t a (value_exn t b);
    !ok
  in
  add_constraint t [| a; b |] propagate (Printf.sprintf "%s != %s" t.names.(a) t.names.(b))

(* x = y + c *)
let eq_offset t x y c =
  let propagate t =
    let ok = ref true in
    Bitset.iter
      (fun xv ->
        if !ok then begin
          let yv = xv - c in
          if yv < 0 || yv >= Bitset.capacity t.domains.(y) || not (Bitset.mem t.domains.(y) yv)
          then ok := remove_value t x xv
        end)
      (Bitset.copy t.domains.(x));
    if !ok then
      Bitset.iter
        (fun yv ->
          if !ok then begin
            let xv = yv + c in
            if xv < 0 || xv >= Bitset.capacity t.domains.(x) || not (Bitset.mem t.domains.(x) xv)
            then ok := remove_value t y yv
          end)
        (Bitset.copy t.domains.(y));
    !ok
  in
  add_constraint t [| x; y |] propagate (Printf.sprintf "%s = %s + %d" t.names.(x) t.names.(y) c)

(* all_different: assigned-value elimination plus pigeonhole counting
   over the union of domains. *)
let all_different t vars =
  let vars = Array.of_list vars in
  let propagate t =
    let ok = ref true in
    Array.iter
      (fun v ->
        if !ok && is_assigned t v then begin
          let x = value_exn t v in
          Array.iter (fun w -> if !ok && w <> v then ok := remove_value t w x) vars
        end)
      vars;
    if !ok then begin
      let cap = Array.fold_left (fun acc v -> max acc (Bitset.capacity t.domains.(v))) 1 vars in
      let union = Bitset.create cap in
      Array.iter (fun v -> Bitset.iter (fun x -> Bitset.add union x) t.domains.(v)) vars;
      if Bitset.cardinal union < Array.length vars then ok := false
    end;
    !ok
  in
  add_constraint t vars propagate "all_different"

(* sum c_i * x_i <= k, bounds consistency *)
let linear_le t terms k =
  let terms = Array.of_list terms in
  let vars = Array.map snd terms in
  let propagate t =
    let min_sum =
      Array.fold_left
        (fun acc (c, v) -> acc + if c >= 0 then c * min_value t v else c * max_value t v)
        0 terms
    in
    if min_sum > k then false
    else begin
      let ok = ref true in
      Array.iter
        (fun (c, v) ->
          if !ok && c <> 0 then begin
            let contribution_min = if c >= 0 then c * min_value t v else c * max_value t v in
            let rest = min_sum - contribution_min in
            let slack = k - rest in
            Bitset.iter
              (fun x -> if !ok && c * x > slack then ok := remove_value t v x)
              (Bitset.copy t.domains.(v))
          end)
        terms;
      !ok
    end
  in
  add_constraint t vars propagate "linear_le"

let linear_eq t terms k =
  linear_le t terms k;
  linear_le t (List.map (fun (c, v) -> (-c, v)) terms) (-k)

(* positive table constraint with GAC by support scanning *)
let table t vars tuples =
  let vars = Array.of_list vars in
  let n = Array.length vars in
  List.iter
    (fun tup -> if Array.length tup <> n then invalid_arg "Cp.table: tuple arity mismatch")
    tuples;
  let tuples = Array.of_list tuples in
  let propagate t =
    let alive tup =
      let rec check i =
        i >= n
        || (tup.(i) >= 0
           && tup.(i) < Bitset.capacity t.domains.(vars.(i))
           && Bitset.mem t.domains.(vars.(i)) tup.(i)
           && check (i + 1))
      in
      check 0
    in
    let supported = Array.map (fun v -> Bitset.create (Bitset.capacity t.domains.(v))) vars in
    Array.iter
      (fun tup -> if alive tup then Array.iteri (fun i x -> Bitset.add supported.(i) x) tup)
      tuples;
    let ok = ref true in
    Array.iteri
      (fun i v ->
        if !ok then
          Bitset.iter
            (fun x -> if !ok && not (Bitset.mem supported.(i) x) then ok := remove_value t v x)
            (Bitset.copy t.domains.(v)))
      vars;
    !ok
  in
  add_constraint t vars propagate "table"

(* ---------- propagation and search ---------- *)

let propagate_all t =
  let rec drain () =
    match Q.pop t.queue with
    | None -> true
    | Some ci ->
        t.propagations <- t.propagations + 1;
        if t.constraints.(ci).propagate t then drain ()
        else begin
          Q.clear t.queue;
          false
        end
  in
  drain ()

let snapshot t = Array.init t.nvars (fun v -> Bitset.copy t.domains.(v))

let restore t snap =
  Array.iteri (fun v d -> t.domains.(v) <- Bitset.copy d) snap;
  Q.clear t.queue

(* Re-enqueue everything: needed after a restore before re-solving. *)
let requeue_all t =
  for ci = 0 to t.n_constraints - 1 do
    Q.push t.queue ci
  done

(* Smallest-domain-first; None when all assigned. *)
let pick_var t =
  let best = ref (-1) and best_size = ref max_int in
  for v = 0 to t.nvars - 1 do
    let s = domain_size t v in
    if s > 1 && s < !best_size then begin
      best := v;
      best_size := s
    end
  done;
  if !best < 0 then None else Some !best

exception Solution_found

let solve ?(max_failures = max_int) ?(should_stop = fun () -> false)
    ?(value_order = fun (_ : var) (xs : int list) -> xs) t =
  let solution = ref None in
  (* amortised deadline polling: latch the stop and consult the hook
     only every few hundred search nodes *)
  let polls = ref 0 in
  let stop_requested = ref false in
  let poll_stop () =
    if not !stop_requested then begin
      incr polls;
      if !polls land 255 = 0 && should_stop () then stop_requested := true
    end;
    !stop_requested
  in
  let rec search depth =
    if t.failures > max_failures || poll_stop () then ()
    else if not (propagate_all t) then t.failures <- t.failures + 1
    else begin
      match pick_var t with
      | None ->
          solution := Some (Array.init t.nvars (fun v -> value_exn t v));
          raise Solution_found
      | Some v ->
          let values = value_order v (Bitset.elements t.domains.(v)) in
          List.iter
            (fun x ->
              if t.failures <= max_failures && !solution = None && not !stop_requested then begin
                let snap = snapshot t in
                t.decisions <- t.decisions + 1;
                let di = min depth 63 in
                t.depth_counts.(di) <- t.depth_counts.(di) + 1;
                if assign t v x then search (depth + 1) else t.failures <- t.failures + 1;
                restore t snap
              end)
            values
    end
  in
  requeue_all t;
  (try search 0 with Solution_found -> ());
  !solution

(* Count all solutions (for tests on small instances). *)
let count_solutions ?(limit = max_int) t =
  let count = ref 0 in
  let rec search () =
    if !count >= limit then ()
    else if not (propagate_all t) then ()
    else begin
      match pick_var t with
      | None -> incr count
      | Some v ->
          List.iter
            (fun x ->
              if !count < limit then begin
                let snap = snapshot t in
                if assign t v x then search ();
                restore t snap
              end)
            (Bitset.elements t.domains.(v))
    end
  in
  requeue_all t;
  search ();
  !count

(* Branch-and-bound minimization of a variable: repeatedly solve with a
   tightening upper bound on [obj]. *)
let minimize ?(max_failures = max_int) ?(should_stop = fun () -> false) t obj =
  let best = ref None in
  let continue_ = ref true in
  while !continue_ do
    let snap = snapshot t in
    (match !best with
    | Some (bound, _) ->
        Bitset.iter
          (fun x -> if x >= bound then ignore (remove_value t obj x))
          (Bitset.copy t.domains.(obj))
    | None -> ());
    if Bitset.is_empty t.domains.(obj) || should_stop () then begin
      restore t snap;
      continue_ := false
    end
    else begin
      match solve ~max_failures ~should_stop t with
      | Some sol ->
          best := Some (sol.(obj), sol);
          restore t snap
      | None ->
          restore t snap;
          continue_ := false
    end
  done;
  !best

let stats t = (t.failures, t.decisions, t.propagations)
let dist_depth t = Array.copy t.depth_counts

let describe_constraints t =
  List.init t.n_constraints (fun i -> t.constraints.(i).describe)

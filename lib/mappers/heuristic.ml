(* The named heuristic mappers built on the constructive engine:

   - [modulo_mapper]: iterative modulo scheduling with integrated
     greedy placement and routing (temporal x heuristics cell; the
     lineage of [12], [36], [61] and the deterministic core of DRESC).
   - [greedy_spatial_mapper]: the same engine pinned at II = 1
     (spatial x heuristics; straight-forward mapping).
   - [constructive_mapper]: the bare engine accepting either problem
     kind, with a deep restart budget — the last-resort tier of a
     fallback chain (not part of the Table I registry). *)

open Ocgra_core

let modulo_mapper =
  Mapper.make ~name:"modulo-greedy"
    ~citation:"Bondalapati & Prasanna [12]; Mei et al. [61]; Zhao et al. [36]"
    ~scope:Taxonomy.Temporal_mapping ~approach:Taxonomy.Heuristic
    (fun p rng dl obs ->
      match p.kind with
      | Problem.Spatial ->
          Mapper.no_mapping ~note:"temporal mapper on spatial problem" ~attempts:0 ~elapsed_s:0.0 ()
      | Problem.Temporal _ ->
          let m, attempts, proven =
            Constructive.map ~restarts:16 ~deadline:dl ~obs p rng
          in
          {
            Mapper.mapping = m;
            proven_optimal = proven && m <> None;
            attempts;
            elapsed_s = 0.0;
            note = "iterative modulo scheduling + greedy place-and-route";
            trail = [];
          })

let greedy_spatial_mapper =
  Mapper.make ~name:"greedy-spatial" ~citation:"Yoon et al. [23] (baseline); ChordMap [31]"
    ~scope:Taxonomy.Spatial_mapping ~approach:Taxonomy.Heuristic
    (fun p rng dl obs ->
      let m, attempts, _ =
        Constructive.map ~restarts:24 ~deadline:dl ~obs p rng
      in
      {
        Mapper.mapping = m;
        proven_optimal = false;
        attempts;
        elapsed_s = 0.0;
        note = "topological greedy placement + strict routing at II = 1";
        trail = [];
      })

let constructive_mapper =
  Mapper.make ~name:"constructive" ~citation:"iterative modulo scheduling lineage [12]"
    ~scope:Taxonomy.Temporal_mapping ~approach:Taxonomy.Heuristic
    (fun p rng dl obs ->
      let m, attempts, proven =
        Constructive.map ~restarts:32 ~time_slack:8 ~deadline:dl ~obs p rng
      in
      {
        Mapper.mapping = m;
        proven_optimal = proven && m <> None;
        attempts;
        elapsed_s = 0.0;
        note = "constructive greedy place-and-route (fallback tier)";
        trail = [];
      })

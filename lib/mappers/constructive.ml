(* Constructive modulo scheduling with greedy placement and routing —
   the workhorse heuristic in the lineage of iterative modulo
   scheduling and DRESC-style CGRA compilation: nodes are placed in
   priority order at the earliest feasible (PE, cycle), dependences are
   routed immediately, and the whole attempt restarts with a different
   random tie-breaking when it dead-ends.  The II loop starts at the
   MII lower bound, so a success at MII is provably optimal. *)

open Ocgra_dfg
open Ocgra_core
module Rng = Ocgra_util.Rng

(* Priority: longest path to a sink over dist-0 edges (operation height),
   the classic list-scheduling priority. *)
let heights dfg = Ocgra_graph.Topo.longest_to_sinks (Dfg.to_digraph dfg)

let topo_order_by_height rng dfg =
  let order =
    match Ocgra_graph.Topo.sort (Dfg.to_digraph dfg) with
    | Some o -> o
    | None -> invalid_arg "Constructive: intra-iteration dependence cycle"
  in
  let h = heights dfg in
  (* stable-sort a topological order by decreasing height while keeping
     it topological: process by levels *)
  let jitter = Array.init (Dfg.node_count dfg) (fun _ -> Rng.int rng 1000) in
  (* levels by ASAP; inside a level, height descending, random ties *)
  let asap = Dfg.asap dfg in
  List.stable_sort
    (fun a b ->
      match compare asap.(a) asap.(b) with
      | 0 -> (
          match compare h.(b) h.(a) with 0 -> compare jitter.(a) jitter.(b) | c -> c)
      | c -> c)
    order

(* Sum of hop distances from [pe] to every placed neighbour of [v]; a
   centre-distance bias when nothing is placed yet, so early nodes
   cluster and later routes stay short. *)
let proximity (state : Place_route.t) hop_table v pe =
  let dfg = state.problem.dfg in
  let total = ref 0 and neighbours = ref 0 in
  List.iter
    (fun (e : Dfg.edge) ->
      let other = if e.src = v then e.dst else e.src in
      if other <> v && Place_route.is_placed state other then begin
        let po, _ = Place_route.binding_of state other in
        let h = if e.src = v then hop_table.(pe).(po) else hop_table.(po).(pe) in
        if h < Ocgra_graph.Paths.unreachable then begin
          total := !total + h;
          incr neighbours
        end
      end)
    (Dfg.in_edges dfg v @ Dfg.out_edges dfg v);
  if !neighbours > 0 then Some !total else None

(* One placement attempt at a fixed II. *)
let attempt (p : Problem.t) rng ~ii ~time_slack =
  let state = Place_route.create p ~ii in
  let cgra = p.cgra in
  let hop_table = Ocgra_arch.Cgra.hop_table cgra in
  let order = topo_order_by_height rng p.dfg in
  let npe = Ocgra_arch.Cgra.pe_count cgra in
  let ok =
    List.for_all
      (fun v ->
        let op = Dfg.op p.dfg v in
        let capable =
          List.filter (fun pe -> Ocgra_arch.Cgra.supports cgra pe op) (List.init npe Fun.id)
        in
        (* candidate (pe, t) pairs ordered by time, then proximity to the
           placed neighbours, then a random jitter to diversify restarts;
           nodes with no placed neighbour yet (inputs, constants) are
           placed at random so restarts explore different geometries *)
        let candidates =
          List.concat_map
            (fun pe ->
              let est, lst = Place_route.time_window state hop_table v pe in
              if est > lst then []
              else begin
                let prox =
                  match proximity state hop_table v pe with
                  | Some p -> (2 * p) + Rng.int rng 2
                  | None -> Rng.int rng 64
                in
                let upper = min lst (est + time_slack) in
                List.init (upper - est + 1) (fun i -> (est + i, prox, Rng.int rng 16, pe))
              end)
            capable
        in
        let candidates = List.sort compare candidates in
        List.exists (fun (t, _, _, pe) -> Place_route.place state v ~pe ~time:t) candidates)
      order
  in
  if ok then Place_route.to_mapping state else None

(* Map at the smallest feasible II with random restarts.  The deadline
   is polled between attempts (each attempt is short), so an expired
   budget surfaces as a clean failure. *)
let map ?(restarts = 8) ?(time_slack = 6) ?deadline_s ?(deadline = Deadline.none)
    ?(obs = Ocgra_obs.Ctx.off) (p : Problem.t) rng =
  let dl = Deadline.sooner deadline (Deadline.of_seconds deadline_s) in
  let attempts = ref 0 in
  let result =
    match p.kind with
  | Problem.Spatial ->
      let rec go r =
        if r >= restarts || Deadline.expired dl then None
        else begin
          incr attempts;
          match attempt p rng ~ii:1 ~time_slack with
          | Some m -> Some m
          | None -> go (r + 1)
        end
      in
      (go 0, !attempts, true)
  | Problem.Temporal { max_ii; _ } ->
      let mii = Mii.mii p.dfg p.cgra in
      let rec over_ii ii =
        if ii > max_ii || Deadline.expired dl then (None, false)
        else begin
          let rec go r =
            if r >= restarts || Deadline.expired dl then None
            else begin
              incr attempts;
              match attempt p rng ~ii ~time_slack with
              | Some m -> Some m
              | None -> go (r + 1)
            end
          in
          match go 0 with
          | Some m -> (Some m, ii = mii)
          | None -> over_ii (ii + 1)
        end
      in
      let m, at_mii = over_ii (max 1 mii) in
      (m, !attempts, at_mii)
  in
  Ocgra_obs.Ctx.add obs "constructive.attempts" !attempts;
  result

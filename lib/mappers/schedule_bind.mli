(** Decoupled mappers: modulo list scheduling first, then binding by
    three different techniques (the Binding and Scheduling rows of
    Table I). *)

(** Greedy proximity binding of a fixed schedule. *)
val greedy_bind :
  Ocgra_core.Problem.t ->
  Ocgra_util.Rng.t ->
  ii:int ->
  int array ->
  Ocgra_core.Mapping.t option

(** Compatibility-graph maximum-clique binding (RAMP [38],
    REGIMap [46]). *)
val clique_bind :
  ?obs:Ocgra_obs.Ctx.t ->
  Ocgra_core.Problem.t ->
  ii:int ->
  int array ->
  Ocgra_core.Mapping.t option

(** Scheduling x heuristics: list schedule + greedy binding. *)
val list_scheduling : Ocgra_core.Mapper.t

(** Binding x heuristics: list schedule + max-clique binding. *)
val clique_binding : Ocgra_core.Mapper.t

(** Binding x QEA ([48]): list schedule + quantum-inspired binding. *)
val qea_binding : Ocgra_core.Mapper.t

(* DRESC-style temporal mapping by simulated annealing ([22] Mei et
   al., the most influential CGRA compiler; also the SA modulo
   scheduler of [30]).

   For a candidate II, the state is a full binding node -> (pe, cycle);
   the cost prices FU slot collisions between operations and, for every
   dependence, the congestion-priced routing cost (overuse allowed
   while annealing).  When the annealer reaches a collision-free state,
   the binding is strict-routed into a real mapping; the II loop starts
   at MII. *)

open Ocgra_dfg
open Ocgra_core
module Rng = Ocgra_util.Rng

type state = { binding : (int * int) array }

(* Annealing cost (cheap, O(nodes + edges)): FU slot overuse between
   operations, timing infeasibility of each dependence against the
   hop-distance lower bound, and wirelength — the classic SA placement
   cost, with the real router only consulted at extraction time. *)
let cost (p : Problem.t) hop_table ~ii (s : state) =
  let npe = Ocgra_arch.Cgra.pe_count p.cgra in
  let fu = Array.make (npe * ii) 0 in
  Array.iter
    (fun (pe, time) ->
      let i = (pe * ii) + (((time mod ii) + ii) mod ii) in
      fu.(i) <- fu.(i) + 1)
    s.binding;
  let collisions = Array.fold_left (fun acc c -> acc + max 0 (c - 1)) 0 fu in
  let timing = ref 0 and wire = ref 0 in
  List.iter
    (fun (e : Dfg.edge) ->
      let pu, tu = s.binding.(e.src) and pv, tv = s.binding.(e.dst) in
      let lat = Op.latency (Dfg.op p.dfg e.src) in
      let slack = tv + (e.dist * ii) - tu - lat in
      let needed = max 0 (hop_table.(pu).(pv) - 1) in
      if slack < needed then timing := !timing + (needed - slack)
      else begin
        wire := !wire + needed;
        (* waiting cycles must be absorbed by holds or detours: cheap
           but not free *)
        wire := !wire + ((slack - needed) / 2)
      end)
    (Dfg.edges p.dfg);
  float_of_int ((1000 * collisions) + (300 * !timing) + !wire)

let random_binding (p : Problem.t) rng ~ii ~horizon =
  let cgra = p.cgra in
  let npe = Ocgra_arch.Cgra.pe_count cgra in
  let asap = Dfg.asap p.dfg in
  Array.init (Dfg.node_count p.dfg) (fun v ->
      let op = Dfg.op p.dfg v in
      let capable = List.filter (fun pe -> Ocgra_arch.Cgra.supports cgra pe op) (List.init npe Fun.id) in
      let pe = Rng.choose_list rng capable in
      let time = min (horizon - 1) (asap.(v) + Rng.int rng (max 1 ii)) in
      (pe, time))

let neighbour (p : Problem.t) ~ii ~horizon rng (s : state) =
  let binding = Array.copy s.binding in
  let v = Rng.int rng (Array.length binding) in
  let op = Dfg.op p.dfg v in
  let cgra = p.cgra in
  let npe = Ocgra_arch.Cgra.pe_count cgra in
  let capable = List.filter (fun pe -> Ocgra_arch.Cgra.supports cgra pe op) (List.init npe Fun.id) in
  let pe, time = binding.(v) in
  (if Rng.bool rng then begin
     (* move in space *)
     binding.(v) <- (Rng.choose_list rng capable, time)
   end
   else begin
     (* move in time *)
     let dt = Rng.int_in rng (-ii) ii in
     let time' = max 0 (min (horizon - 1) (time + dt)) in
     binding.(v) <- (pe, time')
   end);
  { binding }

let try_ii (p : Problem.t) rng ~ii ~config ~obs =
  let horizon = Problem.max_time p in
  let hop_table = Ocgra_arch.Cgra.hop_table p.cgra in
  let init = { binding = random_binding p rng ~ii ~horizon } in
  let best, _best_cost, (stats : Ocgra_meta.Sa.stats) =
    Ocgra_meta.Sa.run ~config rng ~init
      ~neighbour:(neighbour p ~ii ~horizon)
      ~cost:(cost p hop_table ~ii)
  in
  Ocgra_obs.Ctx.add obs "sa.steps" stats.steps;
  Ocgra_obs.Ctx.add obs "sa.accepted" stats.accepted;
  (* strict extraction; also try a few perturbed variants in case the
     annealed optimum is slightly over-subscribed for the real router *)
  let rec attempt_extract k state =
    if k <= 0 then None
    else
      match Finalize.of_binding ~obs p ~ii state.binding with
      | Some m -> Some m
      | None -> attempt_extract (k - 1) (neighbour p ~ii ~horizon rng state)
  in
  attempt_extract 8 best

let map ?(config = Ocgra_meta.Sa.default_config) ?deadline_s ?(deadline = Deadline.none)
    ?(obs = Ocgra_obs.Ctx.off) (p : Problem.t) rng =
  let dl = Deadline.sooner deadline (Deadline.of_seconds deadline_s) in
  match p.kind with
  | Problem.Spatial -> invalid_arg "Sa_temporal.map: use Sa_spatial for spatial problems"
  | Problem.Temporal { max_ii; _ } ->
      let mii = Mii.mii p.dfg p.cgra in
      let attempts = ref 0 in
      let rec over_ii ii =
        if ii > max_ii || Deadline.expired dl then (None, !attempts, false)
        else begin
          let rec restarts k =
            if k <= 0 || Deadline.expired dl then None
            else begin
              incr attempts;
              match
                Ocgra_obs.Ctx.span obs ~cat:"sa" (Printf.sprintf "sa:ii=%d" ii) (fun () ->
                    try_ii p rng ~ii ~config ~obs)
              with
              | Some m -> Some m
              | None -> restarts (k - 1)
            end
          in
          match restarts 3 with
          | Some m -> (Some m, !attempts, ii = mii)
          | None -> over_ii (ii + 1)
        end
      in
      over_ii (max 1 mii)

let mapper =
  Mapper.make ~name:"dresc-sa" ~citation:"Mei et al. [22]; Hatanaka & Bagherzadeh [30]"
    ~scope:Taxonomy.Temporal_mapping ~approach:(Taxonomy.Meta_local "SA")
    (fun p rng dl obs ->
      let m, attempts, proven = map ~deadline:dl ~obs p rng in
      {
        Mapper.mapping = m;
        proven_optimal = proven && m <> None;
        attempts;
        elapsed_s = 0.0;
        note = "simulated annealing over bindings, congestion-priced routing";
        trail = [];
      })

(** Constraint-programming temporal mapping ([43]): places and times as
    finite-domain variables, FU exclusivity via all-different over
    channelled (PE, slot) variables, dependence timing against
    hop-distance tables; routing is lazy (strict route + randomised
    re-solve on failure). *)

(** (mapping, attempts, proven optimal at MII).  [deadline_s] bounds
    the run in wall-clock seconds (threaded into the CP search).
    [deadline] additionally threads an externally built deadline --
    including any attached cancellation hook -- into the same stop
    signal.  [obs] records one span per candidate II and flushes the
    solver's failure/decision/propagation tallies ([cp.failures], ...). *)
val map :
  ?max_failures:int ->
  ?routing_retries:int ->
  ?deadline_s:float ->
  ?deadline:Ocgra_core.Deadline.t ->
  ?obs:Ocgra_obs.Ctx.t ->
  Ocgra_core.Problem.t ->
  Ocgra_util.Rng.t ->
  Ocgra_core.Mapping.t option * int * bool

val mapper : Ocgra_core.Mapper.t

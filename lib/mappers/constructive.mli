(** Constructive modulo scheduling with integrated greedy placement and
    routing — the workhorse heuristic (iterative modulo scheduling /
    deterministic DRESC lineage).  The II loop starts at the MII lower
    bound, so success at MII is provably optimal. *)

(** Operation heights (longest dist-0 path to a sink). *)
val heights : Ocgra_dfg.Dfg.t -> int array

(** A topological order sorted by ASAP level then height, with random
    tie-breaking (the restart diversification). *)
val topo_order_by_height : Ocgra_util.Rng.t -> Ocgra_dfg.Dfg.t -> int list

(** Hop-distance sum from [pe] to the already-placed neighbours of a
    node; [None] when nothing relevant is placed yet. *)
val proximity : Place_route.t -> int array array -> int -> int -> int option

(** One placement attempt at a fixed II ([time_slack] widens the time
    window tried per candidate PE). *)
val attempt :
  Ocgra_core.Problem.t -> Ocgra_util.Rng.t -> ii:int -> time_slack:int -> Ocgra_core.Mapping.t option

(** Map at the smallest feasible II with random restarts; returns
    (mapping, attempts, achieved the MII bound).  [deadline_s] bounds
    the run in wall-clock seconds (polled between attempts).
    [deadline] additionally threads an externally built deadline --
    including any attached cancellation hook -- into the same stop
    signal.  [obs] receives the total placement-attempt count
    ([constructive.attempts]). *)
val map :
  ?restarts:int ->
  ?time_slack:int ->
  ?deadline_s:float ->
  ?deadline:Ocgra_core.Deadline.t ->
  ?obs:Ocgra_obs.Ctx.t ->
  Ocgra_core.Problem.t ->
  Ocgra_util.Rng.t ->
  Ocgra_core.Mapping.t option * int * bool

(* Graph-based binding via subgraph isomorphism on the modulo
   time-extended CGRA (the EPIMap [28] / Peyret et al. [47] / graph
   minor [27] school: transform the DFG until it embeds in the
   time-space graph).

   The schedule comes from modulo list scheduling; every dependence is
   then materialised as a chain of Route nodes so each pattern edge
   spans exactly one cycle, and the resulting pattern is matched into
   the modulo TEC graph ((PE, slot) nodes, one-cycle reachability
   edges, self-edges included) with VF2-style search.  Injectivity on
   (PE, slot) is exactly FU exclusivity. *)

open Ocgra_dfg
open Ocgra_core
module Rng = Ocgra_util.Rng

type pattern_node = P_op of int | P_route of int * int (* edge index, hop number *)

let bind (p : Problem.t) ~ii times =
  let dfg = p.dfg and cgra = p.cgra in
  let n = Dfg.node_count dfg in
  let npe = Ocgra_arch.Cgra.pe_count cgra in
  let edges = Array.of_list (Dfg.edges dfg) in
  (* pattern graph: ops + route chains, every node with a fixed time *)
  let pat = Ocgra_graph.Digraph.create () in
  let pat_nodes = ref [] in
  let pat_time = ref [] in
  let add_pat node time =
    let id = Ocgra_graph.Digraph.add_node pat in
    pat_nodes := (id, node) :: !pat_nodes;
    pat_time := (id, time) :: !pat_time;
    id
  in
  let op_id = Array.init n (fun v -> add_pat (P_op v) times.(v)) in
  let route_chains = Array.make (Array.length edges) [] in
  let feasible = ref true in
  Array.iteri
    (fun e (edge : Dfg.edge) ->
      let lat = Op.latency (Dfg.op dfg edge.src) in
      let k = times.(edge.dst) + (edge.dist * ii) - times.(edge.src) - lat in
      if k < 0 then feasible := false
      else begin
        let prev = ref op_id.(edge.src) in
        let chain = ref [] in
        for i = 1 to k do
          let t = times.(edge.src) + lat + i - 1 in
          let r = add_pat (P_route (e, i)) t in
          chain := (r, t) :: !chain;
          Ocgra_graph.Digraph.add_edge pat !prev r;
          prev := r
        done;
        route_chains.(e) <- List.rev !chain;
        Ocgra_graph.Digraph.add_edge pat !prev op_id.(edge.dst)
      end)
    edges;
  if not !feasible then None
  else begin
    let times_of = Hashtbl.create 32 in
    List.iter (fun (id, t) -> Hashtbl.replace times_of id t) !pat_time;
    let kind_of = Hashtbl.create 32 in
    List.iter (fun (id, nd) -> Hashtbl.replace kind_of id nd) !pat_nodes;
    (* host: modulo TEC on (pe, slot) *)
    let host = Ocgra_graph.Digraph.create () in
    ignore (Ocgra_graph.Digraph.add_nodes host (npe * ii));
    for pe = 0 to npe - 1 do
      for s = 0 to ii - 1 do
        List.iter
          (fun q -> Ocgra_graph.Digraph.add_edge host ((pe * ii) + s) ((q * ii) + ((s + 1) mod ii)))
          (Ocgra_arch.Cgra.reachable_in_one cgra pe)
      done
    done;
    let compatible pid hid =
      let pe = hid / ii and slot = hid mod ii in
      let t = Hashtbl.find times_of pid in
      t mod ii = slot
      && Ocgra_arch.Cgra.pe_ok cgra pe
      && Ocgra_arch.Cgra.slot_ok cgra ~pe ~ii ~time:slot
      &&
      match Hashtbl.find kind_of pid with
      | P_op v -> Ocgra_arch.Cgra.supports cgra pe (Dfg.op dfg v)
      | P_route _ -> true
    in
    match Ocgra_graph.Iso.find ~max_steps:400_000 ~compatible pat host with
    | None -> None
    | Some mapping ->
        let binding = Array.init n (fun v -> (mapping.(op_id.(v)) / ii, times.(v))) in
        let routes =
          Array.mapi
            (fun e _ ->
              List.map
                (fun (rid, t) -> Mapping.Hop { pe = mapping.(rid) / ii; time = t })
                route_chains.(e))
            edges
        in
        Some { Mapping.ii; binding; routes }
  end

let map ?deadline_s ?(deadline = Deadline.none) ?(obs = Ocgra_obs.Ctx.off) (p : Problem.t) rng =
  let dl = Deadline.sooner deadline (Deadline.of_seconds deadline_s) in
  match p.kind with
  | Problem.Spatial -> (None, 0, false)
  | Problem.Temporal { max_ii; _ } ->
      let mii = Mii.mii p.dfg p.cgra in
      let attempts = ref 0 in
      let rec over_ii ii =
        if ii > max_ii || Deadline.expired dl then (None, false)
        else begin
          let rec go r =
            if r >= 4 || Deadline.expired dl then None
            else begin
              incr attempts;
              Ocgra_obs.Ctx.incr obs "iso.matches";
              match Sched.modulo_list_schedule p rng ~ii with
              | None -> None
              | Some times -> (
                  match
                    Ocgra_obs.Ctx.span obs ~cat:"iso" (Printf.sprintf "iso:ii=%d" ii) (fun () ->
                        bind p ~ii times)
                  with
                  | Some m -> Some m
                  | None -> go (r + 1))
            end
          in
          match go 0 with Some m -> (Some m, ii = mii) | None -> over_ii (ii + 1)
        end
      in
      let m, proven = over_ii (max 1 mii) in
      (m, !attempts, proven)

let mapper =
  Mapper.make ~name:"iso-binding" ~citation:"Hamzeh et al. EPIMap [28]; Chen & Mitra [27]; Peyret et al. [47]"
    ~scope:Taxonomy.Binding_only ~approach:Taxonomy.Heuristic
    (fun p rng dl obs ->
      let m, attempts, proven = map ~deadline:dl ~obs p rng in
      {
        Mapper.mapping = m;
        proven_optimal = proven && m <> None;
        attempts;
        elapsed_s = 0.0;
        note = "route-node insertion + subgraph isomorphism into the modulo TEC";
        trail = [];
      })

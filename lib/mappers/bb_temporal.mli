(** Branch-and-bound temporal mapping ([42]; stochastic pruning per
    [24]): depth-first over (PE, cycle) candidates with immediate
    routing, a per-node beam, and a global node budget. *)

(** One bounded search at a fixed II; returns (mapping, nodes expanded,
    search was exhaustive). *)
val attempt :
  Ocgra_core.Problem.t ->
  Ocgra_util.Rng.t ->
  ii:int ->
  beam:int ->
  max_nodes:int ->
  dl:Ocgra_core.Deadline.t ->
  Ocgra_core.Mapping.t option * int * bool

(** (mapping, total nodes expanded, proven optimal at MII).
    [deadline_s] bounds the run in wall-clock seconds (checked per
    expanded search node).
    [deadline] additionally threads an externally built deadline --
    including any attached cancellation hook -- into the same stop
    signal.  [obs] records one span per candidate II and the total
    expanded-node tally ([bb.expanded]). *)
val map :
  ?beam:int ->
  ?max_nodes:int ->
  ?deadline_s:float ->
  ?deadline:Ocgra_core.Deadline.t ->
  ?obs:Ocgra_obs.Ctx.t ->
  Ocgra_core.Problem.t ->
  Ocgra_util.Rng.t ->
  Ocgra_core.Mapping.t option * int * bool

val mapper : Ocgra_core.Mapper.t

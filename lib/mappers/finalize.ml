(* Turn a bare binding (every node already assigned a (PE, cycle)) into
   a full mapping by strict-routing every dependence.  The solver-based
   mappers (SA, GA, SAT, CP, ILP, SMT) decide bindings; this is their
   common routing back-end.  Nodes are placed in topological order so
   each edge is routed as soon as both endpoints exist. *)

open Ocgra_core

(* Node placement legality alone (capability + FU slot exclusivity),
   without routing. *)
let binding_legal (p : Problem.t) ~ii (binding : (int * int) array) =
  let slots = Hashtbl.create 32 in
  let ok = ref true in
  Array.iteri
    (fun v (pe, time) ->
      if
        pe < 0
        || pe >= Ocgra_arch.Cgra.pe_count p.cgra
        || time < 0
        || not (Ocgra_arch.Cgra.supports p.cgra pe (Ocgra_dfg.Dfg.op p.dfg v))
      then ok := false
      else begin
        let key = (pe, ((time mod ii) + ii) mod ii) in
        if Hashtbl.mem slots key then ok := false else Hashtbl.replace slots key ()
      end)
    binding;
  !ok

let of_binding ?(negotiate = true) ?obs (p : Problem.t) ~ii (binding : (int * int) array) =
  let state = Place_route.create p ~ii in
  let order =
    match Ocgra_graph.Topo.sort (Ocgra_dfg.Dfg.to_digraph p.dfg) with
    | Some o -> o
    | None -> invalid_arg "Finalize.of_binding: cyclic dist-0 subgraph"
  in
  let ok =
    List.for_all
      (fun v ->
        let pe, time = binding.(v) in
        Place_route.place state v ~pe ~time)
      order
  in
  match Place_route.to_mapping state with
  | Some m when ok -> Some m
  | _ ->
      (* sequential strict routing failed: negotiate all routes at once *)
      if negotiate && binding_legal p ~ii binding then
        Pathfinder.route_all ?obs p ~ii binding ~max_iters:12
      else None

(** Edge-centric modulo scheduling (EMS, Park et al. [37]): the router
    drives placement — each consumer lands on the cheapest (PE, cycle)
    reachable from its primary producer's routing cost field. *)

val attempt :
  Ocgra_core.Problem.t -> Ocgra_util.Rng.t -> ii:int -> Ocgra_core.Mapping.t option

(** (mapping, attempts, proven optimal at MII).  [deadline_s] bounds
    the run in wall-clock seconds (checked between restarts).
    [deadline] additionally threads an externally built deadline --
    including any attached cancellation hook -- into the same stop
    signal.  [obs] records one span per candidate-II attempt and the
    total attempt tally ([ems.attempts]). *)
val map :
  ?restarts:int ->
  ?deadline_s:float ->
  ?deadline:Ocgra_core.Deadline.t ->
  ?obs:Ocgra_obs.Ctx.t ->
  Ocgra_core.Problem.t ->
  Ocgra_util.Rng.t ->
  Ocgra_core.Mapping.t option * int * bool

val mapper : Ocgra_core.Mapper.t

(* Constraint-programming temporal mapping ([43] Raffin et al., who
   modelled scheduling+binding+routing as a CSP solved by constraint
   propagation).

   Model, per candidate II:
     place_v : capable PEs        time_v : [0, T)
     pe_slot_v = place_v * II + (time_v mod II), channelled through a
     ternary table constraint, with all_different(pe_slot) for FU
     exclusivity; each dependence gets a distance variable channelled
     from (place_u, place_v) by a table over the hop matrix, plus the
     linear timing constraint t_v + dist*II >= t_u + lat + (hops - 1).

   Routing resources beyond the distance bound are not in the CSP (the
   engine has no cumulative constraint); the solution is strict-routed
   and, on failure, the search re-runs with a randomised value order —
   the lazy-routing loop. *)

open Ocgra_dfg
open Ocgra_core
module Cp = Ocgra_cp.Solver
module Rng = Ocgra_util.Rng

(* Flush the solver's native tallies after each search; the
   propagation queue itself stays instrumentation-free. *)
let flush_stats obs cp =
  let failures, decisions, propagations = Cp.stats cp in
  Ocgra_obs.Ctx.add obs "cp.failures" failures;
  Ocgra_obs.Ctx.add obs "cp.decisions" decisions;
  Ocgra_obs.Ctx.add obs "cp.propagations" propagations;
  Array.iteri (fun d k -> Ocgra_obs.Ctx.observe_n obs "cp.node_depth" d k) (Cp.dist_depth cp)

let try_ii (p : Problem.t) rng ~ii ~max_failures ~routing_retries ~should_stop ~obs =
  let dfg = p.dfg and cgra = p.cgra in
  let npe = Ocgra_arch.Cgra.pe_count cgra in
  let n = Dfg.node_count dfg in
  let horizon = min (Problem.max_time p) (Dfg.critical_path dfg + (2 * ii) + 6) in
  let hop_table = Ocgra_arch.Cgra.hop_table cgra in
  let build () =
    let cp = Cp.create () in
    let place =
      Array.init n (fun v ->
          let capable =
            List.filter (fun pe -> Ocgra_arch.Cgra.supports cgra pe (Dfg.op dfg v))
              (List.init npe Fun.id)
          in
          Cp.new_var ~name:(Printf.sprintf "place_%d" v) cp capable)
    in
    let time =
      Array.init n (fun v -> Cp.range_var ~name:(Printf.sprintf "time_%d" v) cp 0 (horizon - 1))
    in
    let slot =
      Array.init n (fun v -> Cp.range_var ~name:(Printf.sprintf "slot_%d" v) cp 0 (ii - 1))
    in
    (* channel slot_v = time_v mod ii *)
    Array.iteri
      (fun v tv ->
        let tuples =
          List.concat_map
            (fun t -> [ [| t; t mod ii |] ])
            (List.init horizon Fun.id)
        in
        Cp.table cp [ tv; slot.(v) ] tuples)
      time;
    (* channel pe_slot_v = place_v * ii + slot_v, then all_different *)
    let pe_slot =
      Array.init n (fun v ->
          Cp.range_var ~name:(Printf.sprintf "peslot_%d" v) cp 0 ((npe * ii) - 1))
    in
    Array.iteri
      (fun v _ ->
        (* dead FU slots are simply absent from the channel table, so
           fault constraints hold by construction *)
        let tuples = ref [] in
        for pe = 0 to npe - 1 do
          for s = 0 to ii - 1 do
            if Ocgra_arch.Cgra.slot_ok cgra ~pe ~ii ~time:s then
              tuples := [| pe; s; (pe * ii) + s |] :: !tuples
          done
        done;
        Cp.table cp [ place.(v); slot.(v); pe_slot.(v) ] !tuples)
      pe_slot;
    Cp.all_different cp (Array.to_list pe_slot);
    (* dependence timing with hop-distance lower bounds *)
    List.iter
      (fun (e : Dfg.edge) ->
        if e.src <> e.dst then begin
          let lat = Op.latency (Dfg.op dfg e.src) in
          let maxhop = npe in
          let duv = Cp.range_var cp 0 maxhop in
          let tuples = ref [] in
          for pu = 0 to npe - 1 do
            for pv = 0 to npe - 1 do
              let h = hop_table.(pu).(pv) in
              if h < Ocgra_graph.Paths.unreachable then
                tuples := [| pu; pv; max 0 (h - 1) |] :: !tuples
            done
          done;
          Cp.table cp [ place.(e.src); place.(e.dst); duv ] !tuples;
          (* time_u + lat + duv - time_v <= dist * ii *)
          Cp.linear_le cp
            [ (1, time.(e.src)); (1, duv); (-1, time.(e.dst)) ]
            ((e.dist * ii) - lat)
        end
        else begin
          (* self edge: lat <= dist * ii *)
          let lat = Op.latency (Dfg.op dfg e.src) in
          if lat > e.dist * ii then Cp.linear_le cp [ (1, time.(e.src)) ] (-1)
        end)
      (Dfg.edges dfg);
    (cp, place, time)
  in
  let rec retry k =
    if k <= 0 then None
    else begin
      let cp, place, time = build () in
      let salt = Rng.int rng 1_000_000 in
      let value_order v (values : int list) =
        (* randomised but deterministic per retry *)
        let scored = List.map (fun x -> (((x + v) * 2654435761) lxor salt) land 0xFFFF, x) values in
        List.map snd (List.sort compare scored)
      in
      let sol = Cp.solve ~max_failures ~should_stop ~value_order cp in
      flush_stats obs cp;
      match sol with
      | None -> None (* propagation-complete failure: infeasible at this II/horizon *)
      | Some sol ->
          let binding = Array.init n (fun v -> (sol.(place.(v)), sol.(time.(v)))) in
          (match Finalize.of_binding ~obs p ~ii binding with
          | Some m -> Some m
          | None -> retry (k - 1))
    end
  in
  retry routing_retries

let map ?(max_failures = 15_000) ?(routing_retries = 5) ?deadline_s ?(deadline = Deadline.none)
    ?(obs = Ocgra_obs.Ctx.off) (p : Problem.t) rng =
  let dl = Deadline.sooner deadline (Deadline.of_seconds deadline_s) in
  let should_stop = Deadline.should_stop dl in
  match p.kind with
  | Problem.Spatial -> (None, 0, false)
  | Problem.Temporal { max_ii; _ } ->
      let mii = Mii.mii p.dfg p.cgra in
      let attempts = ref 0 in
      let rec over_ii ii =
        if ii > max_ii || Deadline.expired dl then (None, false)
        else begin
          incr attempts;
          match
            Ocgra_obs.Ctx.span obs ~cat:"cp" (Printf.sprintf "cp:ii=%d" ii) (fun () ->
                try_ii p rng ~ii ~max_failures ~routing_retries ~should_stop ~obs)
          with
          | Some m -> (Some m, ii = mii)
          | None -> over_ii (ii + 1)
        end
      in
      let m, proven = over_ii (max 1 mii) in
      (m, !attempts, proven)

let mapper =
  Mapper.make ~name:"cp" ~citation:"Raffin et al. [43]"
    ~scope:Taxonomy.Temporal_mapping ~approach:Taxonomy.Exact_cp
    (fun p rng dl obs ->
      let m, attempts, proven = map ~deadline:dl ~obs p rng in
      {
        Mapper.mapping = m;
        proven_optimal = proven && m <> None;
        attempts;
        elapsed_s = 0.0;
        note = "CSP binding+scheduling, lazy strict routing";
        trail = [];
      })

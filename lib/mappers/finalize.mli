(** Routing back-end of the solver-based mappers (SA, GA, SAT, CP, ILP,
    SMT): turn a bare binding into a full mapping. *)

(** Capability + FU-slot exclusivity of a binding, without routing. *)
val binding_legal : Ocgra_core.Problem.t -> ii:int -> (int * int) array -> bool

(** Strict sequential routing in topological order; on failure (and
    when [negotiate], the default) falls back to PathFinder-style
    negotiated routing of all edges at once. The result, when any,
    passes the independent checker. *)
val of_binding :
  ?negotiate:bool ->
  ?obs:Ocgra_obs.Ctx.t ->
  Ocgra_core.Problem.t ->
  ii:int ->
  (int * int) array ->
  Ocgra_core.Mapping.t option

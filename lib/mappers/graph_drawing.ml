(* Graph-drawing-based spatial mapping (Yoon et al. [23]): draw the
   DFG with a spring layout in the continuous plane, snap nodes to the
   nearest free capable cell, then pipeline and route strictly.  The
   drawing step globally minimizes edge lengths before any discrete
   commitment, which is the paper's argument against purely greedy
   placement. *)

open Ocgra_dfg
open Ocgra_core
module Rng = Ocgra_util.Rng

let layout (p : Problem.t) rng ~iterations =
  let n = Dfg.node_count p.dfg in
  let rows = p.cgra.Ocgra_arch.Cgra.rows and cols = p.cgra.Ocgra_arch.Cgra.cols in
  let x = Array.init n (fun _ -> Rng.float rng (float_of_int cols)) in
  let y = Array.init n (fun _ -> Rng.float rng (float_of_int rows)) in
  let edges = Dfg.edges p.dfg in
  for _ = 1 to iterations do
    let fx = Array.make n 0.0 and fy = Array.make n 0.0 in
    (* spring attraction along dependences *)
    List.iter
      (fun (e : Dfg.edge) ->
        if e.src <> e.dst then begin
          let dx = x.(e.dst) -. x.(e.src) and dy = y.(e.dst) -. y.(e.src) in
          let d = sqrt ((dx *. dx) +. (dy *. dy)) +. 1e-6 in
          let pull = 0.08 *. (d -. 1.0) in
          fx.(e.src) <- fx.(e.src) +. (pull *. dx /. d);
          fy.(e.src) <- fy.(e.src) +. (pull *. dy /. d);
          fx.(e.dst) <- fx.(e.dst) -. (pull *. dx /. d);
          fy.(e.dst) <- fy.(e.dst) -. (pull *. dy /. d)
        end)
      edges;
    (* pairwise repulsion *)
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let dx = x.(j) -. x.(i) and dy = y.(j) -. y.(i) in
        let d2 = (dx *. dx) +. (dy *. dy) +. 1e-3 in
        let push = 0.15 /. d2 in
        fx.(i) <- fx.(i) -. (push *. dx);
        fy.(i) <- fy.(i) -. (push *. dy);
        fx.(j) <- fx.(j) +. (push *. dx);
        fy.(j) <- fy.(j) +. (push *. dy)
      done
    done;
    for i = 0 to n - 1 do
      x.(i) <- Float.max 0.0 (Float.min (float_of_int cols -. 1e-3) (x.(i) +. fx.(i)));
      y.(i) <- Float.max 0.0 (Float.min (float_of_int rows -. 1e-3) (y.(i) +. fy.(i)))
    done
  done;
  (x, y)

(* Snap nodes (in topological order) to the nearest free capable cell. *)
let snap (p : Problem.t) (x, y) =
  let npe = Ocgra_arch.Cgra.pe_count p.cgra in
  let taken = Array.make npe false in
  let genome = Array.make (Dfg.node_count p.dfg) (-1) in
  let order =
    match Ocgra_graph.Topo.sort (Dfg.to_digraph p.dfg) with
    | Some o -> o
    | None -> invalid_arg "Graph_drawing: cyclic dist-0 subgraph"
  in
  let ok =
    List.for_all
      (fun v ->
        let best = ref (-1) and best_d = ref infinity in
        for pe = 0 to npe - 1 do
          if (not taken.(pe)) && Ocgra_arch.Cgra.supports p.cgra pe (Dfg.op p.dfg v) then begin
            let r, c = Ocgra_arch.Cgra.coords p.cgra pe in
            let dx = x.(v) -. float_of_int c and dy = y.(v) -. float_of_int r in
            let d = (dx *. dx) +. (dy *. dy) in
            if d < !best_d then begin
              best_d := d;
              best := pe
            end
          end
        done;
        if !best >= 0 then begin
          taken.(!best) <- true;
          genome.(v) <- !best;
          true
        end
        else false)
      order
  in
  if ok then Some genome else None

let map ?(restarts = 10) ?deadline_s ?(deadline = Deadline.none) ?(obs = Ocgra_obs.Ctx.off)
    (p : Problem.t) rng =
  let dl = Deadline.sooner deadline (Deadline.of_seconds deadline_s) in
  let attempts = ref 0 in
  let rec go r =
    if r >= restarts || Deadline.expired dl then None
    else begin
      incr attempts;
      Ocgra_obs.Ctx.incr obs "graph_drawing.restarts";
      let pos = Ocgra_obs.Ctx.span obs ~cat:"draw" "graph-drawing:layout" (fun () ->
          layout p rng ~iterations:60)
      in
      match snap p pos with
      | None -> go (r + 1)
      | Some genome -> (
          match Spatial_common.extract p genome with Some m -> Some m | None -> go (r + 1))
    end
  in
  (go 0, !attempts)

let mapper =
  Mapper.make ~name:"graph-drawing" ~citation:"Yoon et al. [23]"
    ~scope:Taxonomy.Spatial_mapping ~approach:Taxonomy.Heuristic
    (fun p rng dl obs ->
      let m, attempts = map ~deadline:dl ~obs p rng in
      {
        Mapper.mapping = m;
        proven_optimal = false;
        attempts;
        elapsed_s = 0.0;
        note = "spring layout, nearest-cell legalisation, strict routing";
        trail = [];
      })

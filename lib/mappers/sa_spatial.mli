(** Spatial mapping by simulated annealing over placements (the
    SPR/SNAFU/DSAGEN school [49], [33], [32]). *)

(** (mapping, attempts).  [deadline_s] bounds the run in wall-clock
    seconds (checked between extractions).
    [deadline] additionally threads an externally built deadline --
    including any attached cancellation hook -- into the same stop
    signal.  [obs] records one span per annealing run and flushes the
    annealer's tallies ([sa.steps], [sa.accepted]). *)
val map :
  ?config:Ocgra_meta.Sa.config ->
  ?extractions:int ->
  ?deadline_s:float ->
  ?deadline:Ocgra_core.Deadline.t ->
  ?obs:Ocgra_obs.Ctx.t ->
  Ocgra_core.Problem.t ->
  Ocgra_util.Rng.t ->
  Ocgra_core.Mapping.t option * int

val mapper : Ocgra_core.Mapper.t

(* Resource-constrained modulo list scheduling (no placement): the
   classic decoupled first phase of the "Scheduling" row of Table I.
   Resources are counted per functional class and per modulo slot;
   operations are scheduled in priority (height) order at their
   earliest feasible cycle. *)

open Ocgra_dfg
open Ocgra_core
module Rng = Ocgra_util.Rng

(* Returns times per node, or None. *)
let modulo_list_schedule ?(horizon_slack = 8) (p : Problem.t) rng ~ii =
  let dfg = p.dfg and cgra = p.cgra in
  let n = Dfg.node_count dfg in
  let horizon = Dfg.critical_path dfg + (2 * ii) + horizon_slack in
  (* capacity per functional class per slot *)
  let classes = [ Op.F_alu; Op.F_mul; Op.F_mem; Op.F_io ] in
  let capacity cls =
    List.length
      (List.filter
         (fun pe ->
           Ocgra_arch.Cgra.pe_ok cgra pe
           && Ocgra_arch.Pe.has_class (Ocgra_arch.Cgra.pe cgra pe) cls)
         (List.init (Ocgra_arch.Cgra.pe_count cgra) Fun.id))
  in
  let cap = List.map (fun c -> (c, capacity c)) classes in
  let used = Hashtbl.create 32 in
  (* (class, slot) -> count *)
  let order = Constructive.topo_order_by_height rng dfg in
  let times = Array.make n (-1) in
  let edges = Dfg.edges dfg in
  let ok =
    List.for_all
      (fun v ->
        let cls = Op.func_class (Dfg.op dfg v) in
        let class_cap = try List.assoc cls cap with Not_found -> 0 in
        if class_cap = 0 then false
        else begin
          let est =
            List.fold_left
              (fun acc (e : Dfg.edge) ->
                if e.dst = v && e.src <> v && times.(e.src) >= 0 then
                  max acc (times.(e.src) + Op.latency (Dfg.op dfg e.src) - (e.dist * ii))
                else acc)
              0 edges
          in
          let rec find t =
            if t >= horizon then None
            else begin
              let slot = t mod ii in
              let u = Option.value ~default:0 (Hashtbl.find_opt used (cls, slot)) in
              if u < class_cap then Some t else find (t + 1)
            end
          in
          match find (max 0 est) with
          | Some t ->
              times.(v) <- t;
              let slot = t mod ii in
              Hashtbl.replace used (cls, slot)
                (1 + Option.value ~default:0 (Hashtbl.find_opt used (cls, slot)));
              true
          | None -> false
        end)
      order
  in
  (* self-edges: check recurrence feasibility *)
  let self_ok =
    List.for_all
      (fun (e : Dfg.edge) ->
        e.src <> e.dst || Op.latency (Dfg.op dfg e.src) <= e.dist * ii)
      edges
  in
  if ok && self_ok then Some times else None

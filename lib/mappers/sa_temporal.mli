(** DRESC-style temporal mapping by simulated annealing ([22], [30]):
    anneal a full node->(PE, cycle) binding under an FU-collision +
    timing-feasibility + wirelength cost, then strict-route (with
    negotiated fallback) at extraction. *)

type state = { binding : (int * int) array }

(** The annealing cost (cheap, O(nodes + edges)). *)
val cost : Ocgra_core.Problem.t -> int array array -> ii:int -> state -> float

(** One annealing run + extraction at a fixed II.  Flushes the
    annealer's tallies to [obs] ([sa.steps], [sa.accepted]). *)
val try_ii :
  Ocgra_core.Problem.t ->
  Ocgra_util.Rng.t ->
  ii:int ->
  config:Ocgra_meta.Sa.config ->
  obs:Ocgra_obs.Ctx.t ->
  Ocgra_core.Mapping.t option

(** (mapping, attempts, proven optimal at MII).  [deadline_s] bounds
    the run in wall-clock seconds (checked between restarts).
    [deadline] additionally threads an externally built deadline --
    including any attached cancellation hook -- into the same stop
    signal.  [obs] records one span per annealing restart. *)
val map :
  ?config:Ocgra_meta.Sa.config ->
  ?deadline_s:float ->
  ?deadline:Ocgra_core.Deadline.t ->
  ?obs:Ocgra_obs.Ctx.t ->
  Ocgra_core.Problem.t ->
  Ocgra_util.Rng.t ->
  Ocgra_core.Mapping.t option * int * bool

val mapper : Ocgra_core.Mapper.t

(** GenMap-style spatial mapping by genetic algorithm ([19]). *)

(** (mapping, attempts).  [deadline_s] bounds the run in wall-clock
    seconds (checked between extractions).
    [deadline] additionally threads an externally built deadline --
    including any attached cancellation hook -- into the same stop
    signal.  [obs] records one span per evolution run and flushes the
    GA core's tally ([ga.evaluations]). *)
val map :
  ?config:Ocgra_meta.Ga.config ->
  ?extractions:int ->
  ?deadline_s:float ->
  ?deadline:Ocgra_core.Deadline.t ->
  ?obs:Ocgra_obs.Ctx.t ->
  Ocgra_core.Problem.t ->
  Ocgra_util.Rng.t ->
  Ocgra_core.Mapping.t option * int

val mapper : Ocgra_core.Mapper.t

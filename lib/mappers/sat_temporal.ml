(* SAT-based temporal mapping ([17] Miyasaka et al.): binding,
   scheduling AND routing encoded propositionally and solved with the
   CDCL solver, per candidate II starting at MII — so a SAT answer at
   MII is a certified optimal II, and UNSAT at an II is a certificate
   that no mapping exists within the schedule window.

   Variables, shared across the whole II sweep:
     x[v][p][t]  operation v executes on PE p at cycle t
     y[e][p][t]  the value of edge e is readable on p's output at t
     h[e][p][t]  a route op for e occupies p's FU at cycle t
   These propositions do not mention the II, so ONE solver instance
   per kernel serves the whole sweep.  The clauses split in two:

   - II-independent routing fabric, added unguarded exactly once per
     variable as it is created on demand: y justified by production or
     by a hop one cycle earlier, hops justified by an adjacent
     readable value, production implies readability.  Conflict clauses
     learnt from this fabric carry no activation literal and stay
     valid for every later II.
   - Per-II structure, guarded by an activation literal g_ii (each
     clause weakened to not-g_ii \/ C): exactly-one execution slot per
     node over the II's schedule window, FU exclusivity per (pe, t mod
     ii) slot, consumption at t + dist*ii, and framing that pins
     shared variables outside the II's window (or on fault-aliased
     slots) to false.  Candidate II is solved as [solve
     ~assumptions:[g_ii]]; a refuted II is retired with a unit
     not-g_ii, which the solver's root simplification uses to reclaim
     the group.

   Learnt clauses, VSIDS activity and saved phases therefore carry
   from one II to the next instead of restarting cold — the difference
   the committed BENCH_PR8.json quantifies.  The cold-per-II baseline
   (fresh solver per candidate, the pre-incremental behaviour) is kept
   as [mapper_cold] / [map ~incremental:false].

   Simplifications vs the full framework (documented in DESIGN.md):
   routes use FU hops only (no register-file holds), and each edge
   routes separately (no fan-out sharing); both only shrink the
   feasible set, so validity of produced mappings is unaffected. *)

open Ocgra_dfg
open Ocgra_core
module Sat = Ocgra_sat.Solver
module Enc = Ocgra_sat.Encodings

type instance = {
  sat : Sat.t;
  x : (int * int * int, Sat.lit) Hashtbl.t; (* node, pe, t *)
  y : (int * int * int, Sat.lit) Hashtbl.t; (* edge, pe, t *)
  h : (int * int * int, Sat.lit) Hashtbl.t;
  edges : Dfg.edge array;
  out_edges : (int * Dfg.edge) list array; (* node -> (edge index, edge) *)
}

let create_instance (p : Problem.t) =
  let edges = Array.of_list (Dfg.edges p.dfg) in
  let out_edges = Array.make (Dfg.node_count p.dfg) [] in
  Array.iteri
    (fun e (edge : Dfg.edge) -> out_edges.(edge.src) <- (e, edge) :: out_edges.(edge.src))
    edges;
  (* reverse so fabric emission walks out-edges in index order *)
  Array.iteri (fun v l -> out_edges.(v) <- List.rev l) out_edges;
  {
    sat = Sat.create ();
    x = Hashtbl.create 256;
    y = Hashtbl.create 256;
    h = Hashtbl.create 256;
    edges;
    out_edges;
  }

(* ---- on-demand shared variables + their unguarded fabric ----

   Each getter interns the variable *before* emitting its fabric
   clause, so the mutual recursion (y at t needs h at t-1 needs y at
   t-1 ...; x at t implies y at t+lat whose justification is x at t)
   grounds on the table instead of looping.  Recursion strictly
   decreases t along y/h chains and terminates at t = 0. *)

let rec get_x inst (p : Problem.t) v pe t =
  if t < 0 || not (Ocgra_arch.Cgra.supports p.cgra pe (Dfg.op p.dfg v)) then None
  else
    match Hashtbl.find_opt inst.x (v, pe, t) with
    | Some l -> Some l
    | None ->
        let l = Sat.pos (Sat.new_var inst.sat) in
        Hashtbl.add inst.x (v, pe, t) l;
        (* production implies readability, per out-edge *)
        let lat = Op.latency (Dfg.op p.dfg v) in
        List.iter
          (fun (e, (_ : Dfg.edge)) ->
            let yl = get_y inst p e pe (t + lat) in
            Sat.add_clause inst.sat [ Sat.negate l; yl ])
          inst.out_edges.(v);
        Some l

and get_y inst (p : Problem.t) e pe t =
  match Hashtbl.find_opt inst.y (e, pe, t) with
  | Some l -> l
  | None ->
      let l = Sat.pos (Sat.new_var inst.sat) in
      Hashtbl.add inst.y (e, pe, t) l;
      (* justification: production here, or a hop here one cycle
         earlier; no justification forces y false (e.g. any t on a
         downed PE, or t too early for the producer) *)
      let edge = inst.edges.(e) in
      let lat = Op.latency (Dfg.op p.dfg edge.src) in
      let just = ref [] in
      (match get_x inst p edge.src pe (t - lat) with
      | Some xl -> just := xl :: !just
      | None -> ());
      (match get_h inst p e pe (t - 1) with
      | Some hl -> just := hl :: !just
      | None -> ());
      Sat.add_clause inst.sat (Sat.negate l :: !just);
      l

and get_h inst (p : Problem.t) e pe t =
  if t < 0 || not (Ocgra_arch.Cgra.pe_ok p.cgra pe) then None
  else
    match Hashtbl.find_opt inst.h (e, pe, t) with
    | Some l -> Some l
    | None ->
        let l = Sat.pos (Sat.new_var inst.sat) in
        Hashtbl.add inst.h (e, pe, t) l;
        (* hop justification: an adjacent readable value the same cycle *)
        let sources = pe :: Ocgra_arch.Cgra.neighbours p.cgra pe in
        let feeds = List.map (fun q -> get_y inst p e q t) sources in
        Sat.add_clause inst.sat (Sat.negate l :: feeds);
        Some l

(* ---- the guarded per-II constraint group ---- *)

(* Is this x entry live at this II — inside the node's schedule window
   and on a slot the fault mask allows?  Entries that are not live are
   framed false under the II's guard. *)
let x_live (p : Problem.t) asap ~ii ~slack v t pe =
  let lo = asap.(v) and hi = asap.(v) + ii + slack in
  t >= lo && t <= hi && Ocgra_arch.Cgra.slot_ok p.cgra ~pe ~ii ~time:t

(* Adds the candidate II's clause group to the shared instance and
   returns its activation literal.  Assume it to solve this II. *)
let add_ii inst (p : Problem.t) ~ii ~slack =
  let dfg = p.dfg and cgra = p.cgra in
  let npe = Ocgra_arch.Cgra.pe_count cgra in
  let n = Dfg.node_count dfg in
  let asap = Dfg.asap dfg in
  let sat = inst.sat in
  let g = Sat.pos (Sat.new_var sat) in
  (* 0. interning pass: every in-window executable slot exists (shared
     with smaller IIs whose windows are prefixes of this one) *)
  for v = 0 to n - 1 do
    for pe = 0 to npe - 1 do
      for t = asap.(v) to asap.(v) + ii + slack do
        if Ocgra_arch.Cgra.slot_ok cgra ~pe ~ii ~time:t then ignore (get_x inst p v pe t)
      done
    done
  done;
  (* 1. consumption (guarded): the consumer reads an adjacent readable
     value at its consumption cycle.  Creates this II's y/h fabric on
     demand — and with it any out-of-window x vars it references,
     which pass 4 then frames false.  Iterate a snapshot: get_y's
     recursion interns those x vars into the table mid-pass, and
     mutating a Hashtbl under Hashtbl.iter is undefined.  (No live
     entry is ever created here — live slots all exist after pass 0 —
     so the snapshot misses no consumption clause.) *)
  let x_snapshot = Hashtbl.fold (fun k l acc -> (k, l) :: acc) inst.x [] in
  Array.iteri
    (fun e (edge : Dfg.edge) ->
      List.iter
        (fun ((v, pe, t), xl) ->
          if v = edge.dst && x_live p asap ~ii ~slack v t pe then begin
            let ct = t + (edge.dist * ii) in
            let sources = pe :: Ocgra_arch.Cgra.neighbours cgra pe in
            let feeds = List.map (fun q -> get_y inst p e q ct) sources in
            Enc.implies ~guard:g sat xl feeds
          end)
        x_snapshot)
    inst.edges;
  (* 2. each node executes exactly once, within this II's window *)
  for v = 0 to n - 1 do
    let lits = ref [] in
    Hashtbl.iter
      (fun (v', pe, t) l -> if v' = v && x_live p asap ~ii ~slack v t pe then lits := l :: !lits)
      inst.x;
    (* no live slot: the II is infeasible — at_least_one over [] is the
       guarded empty clause, i.e. a unit against g *)
    Enc.exactly_one ~guard:g sat !lits
  done;
  (* 3. FU exclusivity per (pe, slot): ops and hops together *)
  for pe = 0 to npe - 1 do
    for slot = 0 to ii - 1 do
      let users = ref [] in
      Hashtbl.iter
        (fun (v, p', t) l ->
          if p' = pe && t mod ii = slot && x_live p asap ~ii ~slack v t p' then
            users := l :: !users)
        inst.x;
      Hashtbl.iter
        (fun (_, p', t) l ->
          if p' = pe && t mod ii = slot && Ocgra_arch.Cgra.slot_ok cgra ~pe:p' ~ii ~time:t then
            users := l :: !users)
        inst.h;
      Enc.at_most_one ~guard:g sat !users
    done
  done;
  (* 4. framing: shared vars that this II cannot use are pinned false
     under its guard — x outside the window or on a fault-aliased
     slot, h on a fault-aliased slot *)
  Hashtbl.iter
    (fun (v, pe, t) l ->
      if not (x_live p asap ~ii ~slack v t pe) then
        Sat.add_clause sat [ Sat.negate g; Sat.negate l ])
    inst.x;
  Hashtbl.iter
    (fun (_, pe, t) l ->
      if not (Ocgra_arch.Cgra.slot_ok cgra ~pe ~ii ~time:t) then
        Sat.add_clause sat [ Sat.negate g; Sat.negate l ])
    inst.h;
  g

let lit_true sat l =
  let v = Sat.var_of l in
  if Sat.is_pos l then Sat.value sat v else not (Sat.value sat v)

(* Extract the binding and explicit hop routes from a model. *)
let extract (p : Problem.t) inst ~ii =
  let dfg = p.dfg and cgra = p.cgra in
  let n = Dfg.node_count dfg in
  let binding = Array.make n (-1, -1) in
  Hashtbl.iter
    (fun (v, pe, t) l -> if lit_true inst.sat l then binding.(v) <- (pe, t))
    inst.x;
  let y_true e pe t =
    match Hashtbl.find_opt inst.y (e, pe, t) with Some l -> lit_true inst.sat l | None -> false
  in
  let h_true e pe t =
    match Hashtbl.find_opt inst.h (e, pe, t) with Some l -> lit_true inst.sat l | None -> false
  in
  let routes =
    Array.mapi
      (fun e (edge : Dfg.edge) ->
        let pv, tv = binding.(edge.dst) in
        let lat = Op.latency (Dfg.op dfg edge.src) in
        let avail0 = snd binding.(edge.src) + lat in
        let ct = tv + (edge.dist * ii) in
        (* backward walk tracking the value's location: at (pe, t) the
           value is readable; it got there by a hop on pe at t-1 from an
           adjacent readable location, or by production at (pu, avail0) *)
        let rec walk pe t acc =
          if t = avail0 then acc (* grounded at production on pu *)
          else if h_true e pe (t - 1) then begin
            let sources = pe :: Ocgra_arch.Cgra.neighbours cgra pe in
            match List.find_opt (fun q -> y_true e q (t - 1)) sources with
            | Some q -> walk q (t - 1) (Mapping.Hop { pe; time = t - 1 } :: acc)
            | None -> acc (* model inconsistency; caught by the checker *)
          end
          else acc
        in
        (* the consumer reads from an adjacent readable location *)
        if ct = avail0 then []
        else begin
          let sources = pv :: Ocgra_arch.Cgra.neighbours cgra pv in
          match List.find_opt (fun q -> y_true e q ct) sources with
          | Some q0 -> walk q0 ct []
          | None -> []
        end)
      inst.edges
  in
  { Mapping.ii; binding; routes }

(* Flush the solver tally *deltas* of one candidate II into the
   metrics sink; with a shared incremental solver the native counters
   and distribution arrays are cumulative across the sweep, so per-II
   attribution subtracts the previous flush.  The CDCL hot loop
   itself stays instrumentation-free: it tallies into plain int
   arrays, and this wrapper is where those become Obs histograms
   (LBD exact, trail depth and propagations-per-decision re-expanded
   from their log2 buckets) plus a per-II convergence event. *)
type marks = {
  mk_conflicts : int;
  mk_decisions : int;
  mk_propagations : int;
  mk_restarts : int;
  mk_reduces : int;
  mk_lbd : int array;
  mk_trail : int array;
  mk_ppd : int array;
}

let zero_marks =
  {
    mk_conflicts = 0;
    mk_decisions = 0;
    mk_propagations = 0;
    mk_restarts = 0;
    mk_reduces = 0;
    mk_lbd = Array.make 64 0;
    mk_trail = Array.make 64 0;
    mk_ppd = Array.make 64 0;
  }

let verdict_to_string = function
  | Sat.Sat -> "sat"
  | Sat.Unsat -> "unsat"
  | Sat.Unknown -> "unknown"

let flush_stats obs sat ~ii ~verdict marks =
  let conflicts, decisions, propagations = Sat.stats sat in
  let restarts = Sat.n_restarts sat and reduces = Sat.n_reduces sat in
  Ocgra_obs.Ctx.add obs "sat.conflicts" (conflicts - marks.mk_conflicts);
  Ocgra_obs.Ctx.add obs "sat.decisions" (decisions - marks.mk_decisions);
  Ocgra_obs.Ctx.add obs "sat.propagations" (propagations - marks.mk_propagations);
  Ocgra_obs.Ctx.add obs "sat.restarts" (restarts - marks.mk_restarts);
  Ocgra_obs.Ctx.add obs "sat.reduces" (reduces - marks.mk_reduces);
  let lbd = Sat.dist_lbd sat and trail = Sat.dist_trail sat and ppd = Sat.dist_ppd sat in
  for i = 0 to 63 do
    Ocgra_obs.Ctx.observe_n obs "sat.lbd" i (lbd.(i) - marks.mk_lbd.(i));
    Ocgra_obs.Ctx.observe_n obs "sat.trail_depth" (1 lsl i) (trail.(i) - marks.mk_trail.(i));
    Ocgra_obs.Ctx.observe_n obs "sat.props_per_decision" (1 lsl i) (ppd.(i) - marks.mk_ppd.(i))
  done;
  Ocgra_obs.Ctx.event obs ~cat:"sat" "sat.ii"
    [
      ("ii", Ocgra_obs.Events.Int ii);
      ("verdict", Ocgra_obs.Events.Str (verdict_to_string verdict));
      ("conflicts", Ocgra_obs.Events.Int (conflicts - marks.mk_conflicts));
      ("decisions", Ocgra_obs.Events.Int (decisions - marks.mk_decisions));
      ("restarts", Ocgra_obs.Events.Int (restarts - marks.mk_restarts));
      ("reduces", Ocgra_obs.Events.Int (reduces - marks.mk_reduces));
      ("learnts", Ocgra_obs.Events.Int (Sat.n_learnts sat));
    ];
  {
    mk_conflicts = conflicts;
    mk_decisions = decisions;
    mk_propagations = propagations;
    mk_restarts = restarts;
    mk_reduces = reduces;
    mk_lbd = lbd;
    mk_trail = trail;
    mk_ppd = ppd;
  }

let map ?(slack = 3) ?(max_conflicts = 300_000) ?deadline_s ?(deadline = Deadline.none)
    ?(obs = Ocgra_obs.Ctx.off) ?(incremental = true) (p : Problem.t) rng =
  ignore rng;
  let dl = Deadline.sooner deadline (Deadline.of_seconds deadline_s) in
  let should_stop = Deadline.should_stop dl in
  match p.kind with
  | Problem.Spatial -> (None, 0, false, "spatial problems use the ILP/heuristic spatial mappers")
  | Problem.Temporal { max_ii; _ } ->
      let mii = Mii.mii p.dfg p.cgra in
      let attempts = ref 0 in
      (* one shared instance drives the whole sweep; the cold baseline
         rebuilds a fresh one per candidate II instead *)
      let shared = if incremental then Some (create_instance p) else None in
      let rec over_ii ii budget_hit last_stats =
        if ii > max_ii then (None, !attempts, false, if budget_hit then "budget" else "unsat up to max II")
        else if Deadline.expired dl then (None, !attempts, false, "deadline")
        else begin
          incr attempts;
          let solve () =
            let inst =
              match shared with Some inst -> inst | None -> create_instance p
            in
            let g = add_ii inst p ~ii ~slack in
            let verdict = Sat.solve ~max_conflicts ~should_stop ~assumptions:[ g ] inst.sat in
            let stats' = flush_stats obs inst.sat ~ii ~verdict last_stats in
            (* retire a refuted or abandoned candidate: the unit
               not-g lets root simplification reclaim its group *)
            if verdict <> Sat.Sat then begin
              Sat.add_clause inst.sat [ Sat.negate g ];
              if incremental then
                Ocgra_obs.Ctx.event obs ~cat:"sat" "sat.retire"
                  [ ("ii", Ocgra_obs.Events.Int ii) ]
            end;
            (inst, verdict, stats')
          in
          match
            Ocgra_obs.Ctx.span obs ~cat:"sat" (Printf.sprintf "sat:ii=%d" ii) solve
          with
          | inst, Sat.Sat, _ ->
              let m = extract p inst ~ii in
              (* proven optimal when every smaller II was refuted
                 without hitting the conflict budget *)
              (Some m, !attempts, ii = mii || not budget_hit, "")
          | inst, Sat.Unsat, stats' ->
              if not (Sat.is_ok inst.sat) && incremental then
                (* the unguarded fabric itself is contradictory: no II
                   can ever be satisfiable on this shared instance *)
                (None, !attempts, false, "unsat up to max II")
              else
                (* a cold per-II instance reset the stat baseline *)
                over_ii (ii + 1) budget_hit (if incremental then stats' else zero_marks)
          | _, Sat.Unknown, stats' ->
              over_ii (ii + 1) true (if incremental then stats' else zero_marks)
        end
      in
      over_ii (max 1 mii) false zero_marks

let make_mapper ~name ~incremental =
  Mapper.make ~name ~citation:"Miyasaka et al. [17]"
    ~scope:Taxonomy.Temporal_mapping ~approach:Taxonomy.Exact_sat
    (fun p rng dl obs ->
      let t0 = Deadline.now () in
      let m, attempts, proven, note = map ~deadline:dl ~obs ~incremental p rng in
      {
        Mapper.mapping = m;
        proven_optimal = proven && m <> None;
        attempts;
        elapsed_s = Deadline.now () -. t0;
        note;
        trail = [];
      })

let mapper = make_mapper ~name:"sat" ~incremental:true

(* The pre-incremental baseline — a fresh solver per candidate II —
   kept registered (as "sat-cold") so the bench can price the learnt
   clause/VSIDS/phase carry-over of the shared instance against it. *)
let mapper_cold = make_mapper ~name:"sat-cold" ~incremental:false

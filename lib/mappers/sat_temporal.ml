(* SAT-based temporal mapping ([17] Miyasaka et al.): binding,
   scheduling AND routing encoded propositionally and solved with the
   CDCL solver, per candidate II starting at MII — so a SAT answer at
   MII is a certified optimal II, and UNSAT at an II is a certificate
   that no mapping exists within the schedule window.

   Variables, per candidate II with schedule window T:
     x[v][p][t]  operation v executes on PE p at cycle t
     y[e][p][t]  the value of edge e is readable on p's output at t
     h[e][p][t]  a route op for e occupies p's FU at cycle t
   Clauses: exactly-one x per node; at-most-one user per FU modulo
   slot (x and h together); y justified by production or by a hop;
   hops justified by an adjacent readable value; consumers read an
   adjacent readable value at their consumption cycle.

   Simplifications vs the full framework (documented in DESIGN.md):
   routes use FU hops only (no register-file holds), and each edge
   routes separately (no fan-out sharing); both only shrink the
   feasible set, so validity of produced mappings is unaffected. *)

open Ocgra_dfg
open Ocgra_core
module Sat = Ocgra_sat.Solver
module Enc = Ocgra_sat.Encodings

type instance = {
  sat : Sat.t;
  x : (int * int * int, Sat.lit) Hashtbl.t; (* node, pe, t *)
  y : (int * int * int, Sat.lit) Hashtbl.t; (* edge, pe, t *)
  h : (int * int * int, Sat.lit) Hashtbl.t;
}

let build (p : Problem.t) ~ii ~slack =
  let dfg = p.dfg and cgra = p.cgra in
  let npe = Ocgra_arch.Cgra.pe_count cgra in
  let n = Dfg.node_count dfg in
  let edges = Array.of_list (Dfg.edges dfg) in
  let asap = Dfg.asap dfg in
  let window v = (asap.(v), asap.(v) + ii + slack) in
  let t_max = Array.fold_left (fun acc v -> max acc (snd (window v))) 0 (Array.init n Fun.id) in
  let max_dist = Array.fold_left (fun acc (e : Dfg.edge) -> max acc e.dist) 0 edges in
  let ty = t_max + (max_dist * ii) + 2 in
  let sat = Sat.create () in
  let x = Hashtbl.create 256 and y = Hashtbl.create 256 and h = Hashtbl.create 256 in
  let getvar tbl key =
    match Hashtbl.find_opt tbl key with
    | Some l -> l
    | None ->
        let l = Sat.pos (Sat.new_var sat) in
        Hashtbl.add tbl key l;
        l
  in
  (* x vars on capable cells within the window, skipping dead FU slots
     so fault constraints are honoured by construction *)
  for v = 0 to n - 1 do
    let lo, hi = window v in
    for pe = 0 to npe - 1 do
      if Ocgra_arch.Cgra.supports cgra pe (Dfg.op dfg v) then
        for t = lo to hi do
          if Ocgra_arch.Cgra.slot_ok cgra ~pe ~ii ~time:t then ignore (getvar x (v, pe, t))
        done
    done
  done;
  (* y/h vars for every edge, every pe, every cycle up to ty.  No h var
     on a faulted resource: a downed PE cannot hop, a readable value
     there is never justified (its y is forced false below). *)
  Array.iteri
    (fun e (_ : Dfg.edge) ->
      for pe = 0 to npe - 1 do
        let alive = Ocgra_arch.Cgra.pe_ok cgra pe in
        for t = 0 to ty - 1 do
          ignore (getvar y (e, pe, t));
          if alive && Ocgra_arch.Cgra.slot_ok cgra ~pe ~ii ~time:t then
            ignore (getvar h (e, pe, t))
        done
      done)
    edges;
  let xg v pe t = Hashtbl.find_opt x (v, pe, t) in
  let yg e pe t = Hashtbl.find_opt y (e, pe, t) in
  let hg e pe t = Hashtbl.find_opt h (e, pe, t) in
  (* 1. each node executes exactly once *)
  for v = 0 to n - 1 do
    let lits = Hashtbl.fold (fun (v', _, _) l acc -> if v' = v then l :: acc else acc) x [] in
    if lits = [] then Sat.add_clause sat [] (* unmappable node *)
    else Enc.exactly_one sat lits
  done;
  (* 2. FU exclusivity per (pe, slot) *)
  for pe = 0 to npe - 1 do
    for slot = 0 to ii - 1 do
      let users = ref [] in
      Hashtbl.iter (fun (_, p', t) l -> if p' = pe && t mod ii = slot then users := l :: !users) x;
      Hashtbl.iter (fun (_, p', t) l -> if p' = pe && t mod ii = slot then users := l :: !users) h;
      Enc.at_most_one sat !users
    done
  done;
  (* 3. y justification: production or a hop one cycle earlier *)
  Array.iteri
    (fun e (edge : Dfg.edge) ->
      let lat = Op.latency (Dfg.op dfg edge.src) in
      for pe = 0 to npe - 1 do
        for t = 0 to ty - 1 do
          match yg e pe t with
          | None -> ()
          | Some yl ->
              let just = ref [] in
              (match if t - lat >= 0 then xg edge.src pe (t - lat) else None with
              | Some xl -> just := xl :: !just
              | None -> ());
              (match if t - 1 >= 0 then hg e pe (t - 1) else None with
              | Some hl -> just := hl :: !just
              | None -> ());
              Sat.add_clause sat (Sat.negate yl :: !just)
        done
      done)
    edges;
  (* 4. hop justification: an adjacent readable value the same cycle *)
  Array.iteri
    (fun e (_ : Dfg.edge) ->
      for pe = 0 to npe - 1 do
        let sources = pe :: Ocgra_arch.Cgra.neighbours cgra pe in
        for t = 0 to ty - 1 do
          match hg e pe t with
          | None -> ()
          | Some hl ->
              let feeds = List.filter_map (fun q -> yg e q t) sources in
              Sat.add_clause sat (Sat.negate hl :: feeds)
        done
      done)
    edges;
  (* 5. production implies readability *)
  Array.iteri
    (fun e (edge : Dfg.edge) ->
      let lat = Op.latency (Dfg.op dfg edge.src) in
      Hashtbl.iter
        (fun (v, pe, t) xl ->
          if v = edge.src then
            match yg e pe (t + lat) with
            | Some yl -> Sat.add_clause sat [ Sat.negate xl; yl ]
            | None -> Sat.add_clause sat [ Sat.negate xl ])
        x)
    edges;
  (* 6. consumption: the consumer reads an adjacent readable value *)
  Array.iteri
    (fun e (edge : Dfg.edge) ->
      Hashtbl.iter
        (fun (v, pe, t) xl ->
          if v = edge.dst then begin
            let ct = t + (edge.dist * ii) in
            if ct >= ty then Sat.add_clause sat [ Sat.negate xl ]
            else begin
              let sources = pe :: Ocgra_arch.Cgra.neighbours cgra pe in
              let feeds = List.filter_map (fun q -> yg e q ct) sources in
              Sat.add_clause sat (Sat.negate xl :: feeds)
            end
          end)
        x)
    edges;
  { sat; x; y; h }

let lit_true sat l =
  let v = Sat.var_of l in
  if Sat.is_pos l then Sat.value sat v else not (Sat.value sat v)

(* Extract the binding and explicit hop routes from a model. *)
let extract (p : Problem.t) inst ~ii =
  let dfg = p.dfg and cgra = p.cgra in
  let n = Dfg.node_count dfg in
  let edges = Array.of_list (Dfg.edges dfg) in
  let binding = Array.make n (-1, -1) in
  Hashtbl.iter
    (fun (v, pe, t) l -> if lit_true inst.sat l then binding.(v) <- (pe, t))
    inst.x;
  let y_true e pe t =
    match Hashtbl.find_opt inst.y (e, pe, t) with Some l -> lit_true inst.sat l | None -> false
  in
  let h_true e pe t =
    match Hashtbl.find_opt inst.h (e, pe, t) with Some l -> lit_true inst.sat l | None -> false
  in
  let routes =
    Array.mapi
      (fun e (edge : Dfg.edge) ->
        let pv, tv = binding.(edge.dst) in
        let lat = Op.latency (Dfg.op dfg edge.src) in
        let avail0 = snd binding.(edge.src) + lat in
        let ct = tv + (edge.dist * ii) in
        (* backward walk tracking the value's location: at (pe, t) the
           value is readable; it got there by a hop on pe at t-1 from an
           adjacent readable location, or by production at (pu, avail0) *)
        let rec walk pe t acc =
          if t = avail0 then acc (* grounded at production on pu *)
          else if h_true e pe (t - 1) then begin
            let sources = pe :: Ocgra_arch.Cgra.neighbours cgra pe in
            match List.find_opt (fun q -> y_true e q (t - 1)) sources with
            | Some q -> walk q (t - 1) (Mapping.Hop { pe; time = t - 1 } :: acc)
            | None -> acc (* model inconsistency; caught by the checker *)
          end
          else acc
        in
        (* the consumer reads from an adjacent readable location *)
        if ct = avail0 then []
        else begin
          let sources = pv :: Ocgra_arch.Cgra.neighbours cgra pv in
          match List.find_opt (fun q -> y_true e q ct) sources with
          | Some q0 -> walk q0 ct []
          | None -> []
        end)
      edges
  in
  { Mapping.ii; binding; routes }

(* Flush the solver's native tallies into the metrics sink after a
   solve; the CDCL hot loop itself stays instrumentation-free. *)
let flush_stats obs sat =
  let conflicts, decisions, propagations = Sat.stats sat in
  Ocgra_obs.Ctx.add obs "sat.conflicts" conflicts;
  Ocgra_obs.Ctx.add obs "sat.decisions" decisions;
  Ocgra_obs.Ctx.add obs "sat.propagations" propagations

let map ?(slack = 3) ?(max_conflicts = 300_000) ?deadline_s ?(deadline = Deadline.none)
    ?(obs = Ocgra_obs.Ctx.off) (p : Problem.t) rng =
  ignore rng;
  let dl = Deadline.sooner deadline (Deadline.of_seconds deadline_s) in
  let should_stop = Deadline.should_stop dl in
  match p.kind with
  | Problem.Spatial -> (None, 0, false, "spatial problems use the ILP/heuristic spatial mappers")
  | Problem.Temporal { max_ii; _ } ->
      let mii = Mii.mii p.dfg p.cgra in
      let attempts = ref 0 in
      let rec over_ii ii budget_hit =
        if ii > max_ii then (None, !attempts, false, if budget_hit then "budget" else "unsat up to max II")
        else if Deadline.expired dl then (None, !attempts, false, "deadline")
        else begin
          incr attempts;
          let solve () =
            let inst = build p ~ii ~slack in
            let verdict = Sat.solve ~max_conflicts ~should_stop inst.sat in
            flush_stats obs inst.sat;
            (inst, verdict)
          in
          match
            Ocgra_obs.Ctx.span obs ~cat:"sat" (Printf.sprintf "sat:ii=%d" ii) solve
          with
          | inst, Sat.Sat ->
              let m = extract p inst ~ii in
              (* proven optimal when every smaller II was refuted without
                 hitting the conflict budget *)
              (Some m, !attempts, (ii = mii || not budget_hit) && true, "")
          | _, Sat.Unsat -> over_ii (ii + 1) budget_hit
          | _, Sat.Unknown -> over_ii (ii + 1) true
        end
      in
      over_ii (max 1 mii) false

let mapper =
  Mapper.make ~name:"sat" ~citation:"Miyasaka et al. [17]"
    ~scope:Taxonomy.Temporal_mapping ~approach:Taxonomy.Exact_sat
    (fun p rng dl obs ->
      let m, attempts, proven, note = map ~deadline:dl ~obs p rng in
      {
        Mapper.mapping = m;
        proven_optimal = proven && m <> None;
        attempts;
        elapsed_s = 0.0;
        note;
        trail = [];
      })

(* Spatial mapping by simulated annealing over placements — the
   SPR/SNAFU/DSAGEN school ([49], [33], [32]): anneal a node->PE vector
   on collision + wirelength cost, then pipeline and route strictly. *)

open Ocgra_core

let map ?(config = { Ocgra_meta.Sa.default_config with max_steps = 20_000 }) ?(extractions = 10)
    ?deadline_s ?(deadline = Deadline.none) ?(obs = Ocgra_obs.Ctx.off) (p : Problem.t) rng =
  let dl = Deadline.sooner deadline (Deadline.of_seconds deadline_s) in
  let hop_table = Ocgra_arch.Cgra.hop_table p.cgra in
  let attempts = ref 0 in
  let rec go k =
    if k <= 0 || Deadline.expired dl then None
    else begin
      incr attempts;
      let init = Spatial_common.random_genome p rng in
      let best, _cost, (stats : Ocgra_meta.Sa.stats) =
        Ocgra_obs.Ctx.span obs ~cat:"sa" "sa-spatial:anneal" (fun () ->
            Ocgra_meta.Sa.run ~config rng ~init
              ~neighbour:(fun rng g -> Spatial_common.mutate p rng g)
              ~cost:(fun g -> float_of_int (Spatial_common.genome_cost p hop_table g)))
      in
      Ocgra_obs.Ctx.add obs "sa.steps" stats.steps;
      Ocgra_obs.Ctx.add obs "sa.accepted" stats.accepted;
      match Spatial_common.extract p best with
      | Some m -> Some m
      | None -> go (k - 1)
    end
  in
  (go extractions, !attempts)

let mapper =
  Mapper.make ~name:"sa-spatial" ~citation:"Friedman et al. SPR [49]; SNAFU [33]; DSAGEN [32]"
    ~scope:Taxonomy.Spatial_mapping ~approach:(Taxonomy.Meta_local "SA")
    (fun p rng dl obs ->
      let m, attempts = map ~deadline:dl ~obs p rng in
      {
        Mapper.mapping = m;
        proven_optimal = false;
        attempts;
        elapsed_s = 0.0;
        note = "annealed placement + strict pipeline routing";
        trail = [];
      })

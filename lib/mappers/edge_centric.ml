(* Edge-centric modulo scheduling (EMS, Park et al. [37]).

   Instead of picking a slot for an operation and then routing its
   operands, the router drives placement: for each unplaced consumer,
   the cost field of a routing search from its (already placed) primary
   producer is explored, and the consumer lands on the cheapest
   reachable (PE, cycle) — routing failures are discovered before
   commitment rather than after. *)

open Ocgra_dfg
open Ocgra_core
module Rng = Ocgra_util.Rng

let attempt (p : Problem.t) rng ~ii =
  let state = Place_route.create p ~ii in
  let cgra = p.cgra in
  let npe = Ocgra_arch.Cgra.pe_count cgra in
  let hop_table = Ocgra_arch.Cgra.hop_table cgra in
  let order = Constructive.topo_order_by_height rng p.dfg in
  let horizon = Problem.max_time p in
  let edges = Array.of_list (Dfg.edges p.dfg) in
  let ok =
    List.for_all
      (fun v ->
        let op = Dfg.op p.dfg v in
        (* primary producer: the placed predecessor with the latest
           ready time *)
        let preds =
          List.filter_map
            (fun i ->
              let e = edges.(i) in
              if e.dst = v && e.src <> v && Place_route.is_placed state e.src then Some e else None)
            (List.init (Array.length edges) Fun.id)
        in
        let primary =
          List.fold_left
            (fun acc (e : Dfg.edge) ->
              let _, tu = Place_route.binding_of state e.src in
              match acc with
              | None -> Some (e, tu)
              | Some (_, best) -> if tu > best then Some (e, tu) else acc)
            None preds
        in
        match primary with
        | None ->
            (* source node: greedy placement *)
            let capable =
              List.filter (fun pe -> Ocgra_arch.Cgra.supports cgra pe op) (List.init npe Fun.id)
            in
            let shuffled = Array.to_list (Rng.shuffle rng (Array.of_list capable)) in
            List.exists
              (fun pe ->
                let est, lst = Place_route.time_window state hop_table v pe in
                let rec try_time t =
                  t <= min lst (est + (2 * ii)) && (Place_route.place state v ~pe ~time:t || try_time (t + 1))
                in
                est <= lst && try_time est)
              shuffled
        | Some (e, tu) ->
            let pu, _ = Place_route.binding_of state e.src in
            let lat = Op.latency (Dfg.op p.dfg e.src) in
            let avail = tu + lat in
            let max_layers = min (3 * ii + 4) (horizon - avail - 1) in
            if max_layers < 0 then false
            else begin
              let cm = Route.strict cgra state.occ in
              let field = Route.explore ~ii cgra cm ~src_pe:pu ~avail ~layers:max_layers in
              (* candidate slots ordered by routing cost from the primary
                 producer, then by time *)
              let candidates = ref [] in
              for layer = 0 to max_layers do
                let t = avail + layer - (e.dist * ii) in
                if t >= 0 && t < horizon then
                  for pe = 0 to npe - 1 do
                    if Ocgra_arch.Cgra.supports cgra pe op then begin
                      match Route.goal_state field ~dst_pe:pe ~layer with
                      | Some (_, c) -> candidates := (c, layer, Rng.int rng 8, pe, t) :: !candidates
                      | None -> ()
                    end
                  done
              done;
              let candidates = List.sort compare !candidates in
              List.exists
                (fun (_, _, _, pe, t) -> Place_route.place state v ~pe ~time:t)
                candidates
            end)
      order
  in
  if ok then Place_route.to_mapping state else None

let map ?(restarts = 8) ?deadline_s ?(deadline = Deadline.none) ?(obs = Ocgra_obs.Ctx.off)
    (p : Problem.t) rng =
  let dl = Deadline.sooner deadline (Deadline.of_seconds deadline_s) in
  let attempts = ref 0 in
  let result =
    match p.kind with
    | Problem.Spatial ->
        let rec go r =
          if r >= restarts || Deadline.expired dl then None
          else begin
            incr attempts;
            match attempt p rng ~ii:1 with Some m -> Some m | None -> go (r + 1)
          end
        in
        (go 0, !attempts, false)
    | Problem.Temporal { max_ii; _ } ->
        let mii = Mii.mii p.dfg p.cgra in
        let rec over_ii ii =
          if ii > max_ii || Deadline.expired dl then (None, false)
          else begin
            let rec go r =
              if r >= restarts || Deadline.expired dl then None
              else begin
                incr attempts;
                match
                  Ocgra_obs.Ctx.span obs ~cat:"ems" (Printf.sprintf "ems:ii=%d" ii) (fun () ->
                      attempt p rng ~ii)
                with
                | Some m -> Some m
                | None -> go (r + 1)
              end
            in
            match go 0 with Some m -> (Some m, ii = mii) | None -> over_ii (ii + 1)
          end
        in
        let m, proven = over_ii (max 1 mii) in
        (m, !attempts, proven)
  in
  let _, attempts_n, _ = result in
  Ocgra_obs.Ctx.add obs "ems.attempts" attempts_n;
  result

let mapper =
  Mapper.make ~name:"edge-centric" ~citation:"Park et al. EMS [37]"
    ~scope:Taxonomy.Temporal_mapping ~approach:Taxonomy.Heuristic
    (fun p rng dl obs ->
      let m, attempts, proven = map ~deadline:dl ~obs p rng in
      {
        Mapper.mapping = m;
        proven_optimal = proven && m <> None;
        attempts;
        elapsed_s = 0.0;
        note = "routing-driven slot selection (edge-centric)";
        trail = [];
      })

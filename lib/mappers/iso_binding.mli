(** Graph-based binding via subgraph isomorphism on the modulo
    time-extended CGRA (the EPIMap [28] / graph-minor [27] / backward
    simultaneous [47] school): list-schedule, materialise every
    dependence as a chain of Route nodes so each pattern edge spans one
    cycle, then embed the pattern into the (PE, slot) graph with VF2.
    Injectivity on (PE, slot) is exactly FU exclusivity. *)

(** Bind a scheduled DFG; [None] when the embedding search fails. *)
val bind : Ocgra_core.Problem.t -> ii:int -> int array -> Ocgra_core.Mapping.t option

(** (mapping, attempts, proven optimal at MII).  [deadline_s] bounds
    the run in wall-clock seconds (checked between attempts).
    [deadline] additionally threads an externally built deadline --
    including any attached cancellation hook -- into the same stop
    signal.  [obs] records one span per embedding attempt and counts
    attempts ([iso.matches]). *)
val map :
  ?deadline_s:float ->
  ?deadline:Ocgra_core.Deadline.t ->
  ?obs:Ocgra_obs.Ctx.t ->
  Ocgra_core.Problem.t ->
  Ocgra_util.Rng.t ->
  Ocgra_core.Mapping.t option * int * bool

val mapper : Ocgra_core.Mapper.t

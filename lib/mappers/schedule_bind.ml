(* Decoupled mappers: modulo list scheduling first, then binding by
   three different techniques — the "Binding" and "Scheduling" rows of
   Table I.

   - [list_scheduling]: schedule, then greedy binding (the classic
     scheduling-driven flow of [24], [36], [46], [51]).
   - [clique_binding]: schedule, then binding as a maximum clique of
     the compatibility graph (RAMP [38]; REGIMap's compatibility graph
     [46]).
   - [qea_binding]: schedule, then binding evolved by the
     quantum-inspired evolutionary algorithm ([48] Lee et al.). *)

open Ocgra_dfg
open Ocgra_core
module Rng = Ocgra_util.Rng

(* Given scheduled times, bind greedily: process nodes by time, pick
   the capable PE (slot free) closest to the placed producers; route
   immediately through Place_route. *)
let greedy_bind (p : Problem.t) rng ~ii times =
  let state = Place_route.create p ~ii in
  let cgra = p.cgra in
  let npe = Ocgra_arch.Cgra.pe_count cgra in
  let hop_table = Ocgra_arch.Cgra.hop_table cgra in
  let order =
    List.sort
      (fun a b -> compare (times.(a), a) (times.(b), b))
      (List.init (Dfg.node_count p.dfg) Fun.id)
  in
  let ok =
    List.for_all
      (fun v ->
        let op = Dfg.op p.dfg v in
        let candidates =
          List.filter_map
            (fun pe ->
              if Ocgra_arch.Cgra.supports cgra pe op then begin
                let est, lst = Place_route.time_window state hop_table v pe in
                if times.(v) < est || times.(v) > lst then None
                else begin
                  let prox =
                    Option.value ~default:0 (Constructive.proximity state hop_table v pe)
                  in
                  Some (prox, Rng.int rng 16, pe)
                end
              end
              else None)
            (List.init npe Fun.id)
        in
        let candidates = List.sort compare candidates in
        List.exists (fun (_, _, pe) -> Place_route.place state v ~pe ~time:times.(v)) candidates)
      order
  in
  if ok then Place_route.to_mapping state else None

let with_schedule ?(obs = Ocgra_obs.Ctx.off) ?(tag = "sched-bind") (p : Problem.t) rng ~restarts
    ~dl bind =
  match p.kind with
  | Problem.Spatial -> (None, 0, false)
  | Problem.Temporal { max_ii; _ } ->
      let mii = Mii.mii p.dfg p.cgra in
      let attempts = ref 0 in
      let rec over_ii ii =
        if ii > max_ii || Deadline.expired dl then (None, false)
        else begin
          let rec go r =
            if r >= restarts || Deadline.expired dl then None
            else begin
              incr attempts;
              Ocgra_obs.Ctx.incr obs "sched.attempts";
              match Sched.modulo_list_schedule p rng ~ii with
              | None -> None (* schedule infeasible at this II *)
              | Some times -> (
                  match
                    Ocgra_obs.Ctx.span obs ~cat:"sched" (Printf.sprintf "%s:ii=%d" tag ii)
                      (fun () -> bind ~ii times)
                  with
                  | Some m -> Some m
                  | None -> go (r + 1))
            end
          in
          match go 0 with Some m -> (Some m, ii = mii) | None -> over_ii (ii + 1)
        end
      in
      let m, proven = over_ii (max 1 mii) in
      (m, !attempts, proven)

let list_scheduling =
  Mapper.make ~name:"list-scheduling" ~citation:"Zhao et al. [36]; Das et al. [24]; Bansal et al. [51]"
    ~scope:Taxonomy.Scheduling_only ~approach:Taxonomy.Heuristic
    (fun p rng dl obs ->
      let m, attempts, proven =
        with_schedule ~obs ~tag:"list-sched" p rng ~restarts:10 ~dl (greedy_bind p rng)
      in
      {
        Mapper.mapping = m;
        proven_optimal = proven && m <> None;
        attempts;
        elapsed_s = 0.0;
        note = "modulo list scheduling + greedy binding";
        trail = [];
      })

(* ---------- clique-based binding ---------- *)

let clique_bind ?(obs = Ocgra_obs.Ctx.off) (p : Problem.t) ~ii times =
  let dfg = p.dfg and cgra = p.cgra in
  let n = Dfg.node_count dfg in
  let npe = Ocgra_arch.Cgra.pe_count cgra in
  let hop_table = Ocgra_arch.Cgra.hop_table cgra in
  (* vertices: compatible (node, pe) pairs *)
  let pairs = ref [] in
  for v = n - 1 downto 0 do
    for pe = npe - 1 downto 0 do
      if Ocgra_arch.Cgra.supports cgra pe (Dfg.op dfg v) then pairs := (v, pe) :: !pairs
    done
  done;
  let pairs = Array.of_list !pairs in
  let np = Array.length pairs in
  let cg = Ocgra_graph.Clique.create np in
  let edges = Dfg.edges dfg in
  let compatible (u, pu) (v, pv) =
    u <> v
    && (pu <> pv || times.(u) mod ii <> times.(v) mod ii)
    && List.for_all
         (fun (e : Dfg.edge) ->
           let relevant = (e.src = u && e.dst = v) || (e.src = v && e.dst = u) in
           if not relevant then true
           else begin
             let src_pe = if e.src = u then pu else pv in
             let dst_pe = if e.dst = u then pu else pv in
             let lat = Op.latency (Dfg.op dfg e.src) in
             let slack = times.(e.dst) + (e.dist * ii) - times.(e.src) - lat in
             slack >= max 0 (hop_table.(src_pe).(dst_pe) - 1)
           end)
         edges
  in
  for i = 0 to np - 1 do
    for j = i + 1 to np - 1 do
      if compatible pairs.(i) pairs.(j) then Ocgra_graph.Clique.add_edge cg i j
    done
  done;
  let clique, _proven = Ocgra_graph.Clique.maximum ~max_steps:200_000 cg in
  if List.length clique < n then None
  else begin
    let binding = Array.make n (-1, -1) in
    List.iter
      (fun i ->
        let v, pe = pairs.(i) in
        if fst binding.(v) < 0 then binding.(v) <- (pe, times.(v)))
      clique;
    if Array.exists (fun (pe, _) -> pe < 0) binding then None
    else Finalize.of_binding ~obs p ~ii binding
  end

let clique_binding =
  Mapper.make ~name:"clique-binding" ~citation:"Dave et al. RAMP [38]; Hamzeh et al. REGIMap [46]"
    ~scope:Taxonomy.Binding_only ~approach:Taxonomy.Heuristic
    (fun p rng dl obs ->
      let m, attempts, proven =
        with_schedule ~obs ~tag:"clique" p rng ~restarts:4 ~dl (clique_bind ~obs p)
      in
      {
        Mapper.mapping = m;
        proven_optimal = proven && m <> None;
        attempts;
        elapsed_s = 0.0;
        note = "compatibility-graph maximum clique binding";
        trail = [];
      })

(* ---------- QEA binding ---------- *)

let qea_bind ?(obs = Ocgra_obs.Ctx.off) (p : Problem.t) rng ~ii times =
  let dfg = p.dfg in
  let n = Dfg.node_count dfg in
  let hop_table = Ocgra_arch.Cgra.hop_table p.cgra in
  let capable = Array.init n (fun v -> Array.of_list (Spatial_common.capable_pes p v)) in
  (* bits per node to index its capable list *)
  let bits_for v =
    let k = Array.length capable.(v) in
    let rec go b = if 1 lsl b >= k then b else go (b + 1) in
    max 1 (go 0)
  in
  let bit_offsets = Array.make n 0 in
  let total_bits = ref 0 in
  for v = 0 to n - 1 do
    bit_offsets.(v) <- !total_bits;
    total_bits := !total_bits + bits_for v
  done;
  let decode genome =
    Array.init n (fun v ->
        let k = Array.length capable.(v) in
        let b = bits_for v in
        let idx = ref 0 in
        for i = 0 to b - 1 do
          if genome.(bit_offsets.(v) + i) then idx := !idx lor (1 lsl i)
        done;
        capable.(v).(!idx mod k))
  in
  let fitness genome =
    let pes = decode genome in
    let npe = Ocgra_arch.Cgra.pe_count p.cgra in
    let usage = Hashtbl.create 32 in
    let collisions = ref 0 in
    Array.iteri
      (fun v pe ->
        let key = (pe, times.(v) mod ii) in
        if Hashtbl.mem usage key then incr collisions else Hashtbl.replace usage key ())
      pes;
    ignore npe;
    let timing = ref 0 in
    List.iter
      (fun (e : Dfg.edge) ->
        let lat = Op.latency (Dfg.op dfg e.src) in
        let slack = times.(e.dst) + (e.dist * ii) - times.(e.src) - lat in
        let needed = max 0 (hop_table.(pes.(e.src)).(pes.(e.dst)) - 1) in
        if slack < needed then timing := !timing + (needed - slack))
      (Dfg.edges dfg);
    -.float_of_int ((100 * !collisions) + (10 * !timing))
  in
  let genome, fit, evals =
    Ocgra_meta.Qea.run rng ~n_bits:!total_bits ~fitness ~stop_at:(-0.5)
  in
  Ocgra_obs.Ctx.add obs "qea.evaluations" evals;
  if fit < -0.5 then None
  else begin
    let pes = decode genome in
    let binding = Array.init n (fun v -> (pes.(v), times.(v))) in
    Finalize.of_binding ~obs p ~ii binding
  end

let qea_binding =
  Mapper.make ~name:"qea-binding" ~citation:"Lee et al. [48]"
    ~scope:Taxonomy.Binding_only ~approach:(Taxonomy.Meta_population "QEA")
    (fun p rng dl obs ->
      let m, attempts, proven =
        with_schedule ~obs ~tag:"qea" p rng ~restarts:6 ~dl (qea_bind ~obs p rng)
      in
      {
        Mapper.mapping = m;
        proven_optimal = proven && m <> None;
        attempts;
        elapsed_s = 0.0;
        note = "quantum-inspired evolutionary binding on a fixed schedule";
        trail = [];
      })

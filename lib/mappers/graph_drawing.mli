(** Graph-drawing-based spatial mapping (Yoon et al. [23]): spring
    layout of the DFG in the plane, nearest-free-cell legalisation,
    then pipeline stages and strict routing. *)

(** Force-directed coordinates (x, y per node). *)
val layout :
  Ocgra_core.Problem.t -> Ocgra_util.Rng.t -> iterations:int -> float array * float array

(** Snap to the nearest free capable cells; [None] when a node finds no
    cell. *)
val snap : Ocgra_core.Problem.t -> float array * float array -> int array option

(** (mapping, attempts).  [deadline_s] bounds the run in wall-clock
    seconds (checked between restarts).
    [deadline] additionally threads an externally built deadline --
    including any attached cancellation hook -- into the same stop
    signal.  [obs] records one span per layout and counts restarts
    ([graph_drawing.restarts]). *)
val map :
  ?restarts:int ->
  ?deadline_s:float ->
  ?deadline:Ocgra_core.Deadline.t ->
  ?obs:Ocgra_obs.Ctx.t ->
  Ocgra_core.Problem.t ->
  Ocgra_util.Rng.t ->
  Ocgra_core.Mapping.t option * int

val mapper : Ocgra_core.Mapper.t

(* ILP-based mappers, solved by the in-tree simplex + branch & bound.

   Three formulations matching the three ILP cells of Table I:

   - [spatial]: architecture-agnostic spatial binding in the spirit of
     Chin & Anderson [34]: assignment binaries w[v][p] with pairwise
     distance caps on dependent operations; pipeline stages and routes
     are then derived by the strict router (lazy routing).
   - [temporal]: joint binding+scheduling in the spirit of [41]:
     time-indexed x[v][p][t] with FU-slot capacity rows and
     nearest-neighbour placement of dependent ops, as the early optimal
     formulations assumed; lazy strict routing on top.
   - [schedule]: scheduling-only in the spirit of [15], [53]: the
     binding comes from a heuristic; the ILP re-times all operations
     (time-indexed, modulo resource rows), then routes strictly. *)

open Ocgra_dfg
open Ocgra_core
module Model = Ocgra_ilp.Model
module Lp = Ocgra_ilp.Lp
module Rng = Ocgra_util.Rng

(* Per-LP-solve time budget on the monotonic clock, composed with the
   caller's deadline/cancellation signal (the ILP core keeps no clock
   of its own).  Built at the call site so each solve gets a fresh
   window. *)
let bounded ~seconds should_stop =
  let dl = Deadline.after ~seconds in
  fun () -> should_stop () || Deadline.expired dl

(* Flush the B&B core's tallies after each solve; the node loop itself
   stays instrumentation-free. *)
let flush_stats obs (s : Ocgra_ilp.Ilp.stats) =
  Ocgra_obs.Ctx.add obs "ilp.nodes" s.nodes;
  Ocgra_obs.Ctx.add obs "ilp.lp_solves" s.lp_solves;
  Ocgra_obs.Ctx.add obs "ilp.pruned" s.pruned;
  Ocgra_obs.Ctx.add obs "ilp.improved" s.improved;
  Ocgra_obs.Ctx.set_max obs "ilp.max_depth" s.max_depth;
  Array.iteri (fun d k -> Ocgra_obs.Ctx.observe_n obs "ilp.node_depth" d k) s.depth_counts

let capable (p : Problem.t) v =
  let npe = Ocgra_arch.Cgra.pe_count p.cgra in
  List.filter (fun pe -> Ocgra_arch.Cgra.supports p.cgra pe (Dfg.op p.dfg v)) (List.init npe Fun.id)

(* ---------- spatial ---------- *)

let spatial_solve (p : Problem.t) rng ~distance_cap ~jitter ~should_stop ~obs =
  let n = Dfg.node_count p.dfg in
  let hop_table = Ocgra_arch.Cgra.hop_table p.cgra in
  let m = Model.create ~maximize:false () in
  (* at II = 1 a dead slot 0 removes the whole cell *)
  let usable v =
    List.filter
      (fun pe -> Ocgra_arch.Cgra.slot_ok p.cgra ~pe ~ii:1 ~time:0)
      (capable p v)
  in
  let w = Array.init n (fun v -> List.map (fun pe -> (pe, Model.binary m (Printf.sprintf "w_%d_%d" v pe))) (usable v)) in
  (* each op exactly one PE *)
  Array.iter (fun ws -> Model.add_constraint m (List.map (fun (_, x) -> (1.0, x)) ws) Lp.Eq 1.0) w;
  (* each PE at most one op *)
  let npe = Ocgra_arch.Cgra.pe_count p.cgra in
  for pe = 0 to npe - 1 do
    let users =
      Array.to_list w |> List.concat_map (fun ws -> List.filter (fun (q, _) -> q = pe) ws)
    in
    if List.length users > 1 then
      Model.add_constraint m (List.map (fun (_, x) -> (1.0, x)) users) Lp.Le 1.0
  done;
  (* dependent ops must sit within the distance cap *)
  List.iter
    (fun (e : Dfg.edge) ->
      if e.src <> e.dst then
        List.iter
          (fun (pu, xu) ->
            List.iter
              (fun (pv, xv) ->
                if hop_table.(pu).(pv) > distance_cap then
                  Model.add_constraint m [ (1.0, xu); (1.0, xv) ] Lp.Le 1.0)
              w.(e.dst))
          w.(e.src))
    (Dfg.edges p.dfg);
  (* random objective jitter to diversify lazy-routing retries *)
  let obj =
    Array.to_list w
    |> List.concat_map (fun ws ->
           List.map (fun (_, x) -> (float_of_int (Rng.int rng jitter) /. 100.0, x)) ws)
  in
  Model.set_objective m obj;
  let outcome, values, stats =
    Model.solve ~max_nodes:500 ~should_stop:(bounded ~seconds:1.5 should_stop) m
  in
  flush_stats obs stats;
  match (outcome, values) with
  | (Model.Optimal _ | Model.Feasible _), Some values ->
      let genome = Array.make n (-1) in
      Array.iteri
        (fun v ws -> List.iter (fun (pe, x) -> if values.(x) = 1 then genome.(v) <- pe) ws)
        w;
      if Array.for_all (fun pe -> pe >= 0) genome then Some genome else None
  | _ -> None

let spatial_map ?(retries = 3) ?deadline_s ?(deadline = Deadline.none)
    ?(obs = Ocgra_obs.Ctx.off) (p : Problem.t) rng =
  let dl = Deadline.sooner deadline (Deadline.of_seconds deadline_s) in
  let should_stop = Deadline.should_stop dl in
  let attempts = ref 0 in
  let rec caps cap =
    if cap > 3 || Deadline.expired dl then None
    else begin
      let rec go k =
        if k <= 0 || Deadline.expired dl then None
        else begin
          incr attempts;
          match
            Ocgra_obs.Ctx.span obs ~cat:"ilp" (Printf.sprintf "ilp-spatial:cap=%d" cap)
              (fun () ->
                spatial_solve p rng ~distance_cap:cap
                  ~jitter:(if k = retries then 1 else 50)
                  ~should_stop ~obs)
          with
          | None -> None (* infeasible at this cap: escalate *)
          | Some genome -> (
              match Spatial_common.extract p genome with
              | Some m -> Some m
              | None -> go (k - 1))
        end
      in
      match go retries with Some m -> Some m | None -> caps (cap + 1)
    end
  in
  (caps 1, !attempts)

let spatial =
  Mapper.make ~name:"ilp-spatial" ~citation:"Chin & Anderson [34]; Yoon et al. [23]; Nowatzki et al. [35]"
    ~scope:Taxonomy.Spatial_mapping ~approach:Taxonomy.Exact_ilp
    (fun p rng dl obs ->
      let m, attempts = spatial_map ~deadline:dl ~obs p rng in
      {
        Mapper.mapping = m;
        proven_optimal = false;
        attempts;
        elapsed_s = 0.0;
        note = "assignment ILP with distance caps, lazy routing";
        trail = [];
      })

(* ---------- joint temporal (small arrays) ---------- *)

let temporal_solve (p : Problem.t) rng ~ii ~win ~jitter ~should_stop ~obs =
  let dfg = p.dfg in
  let n = Dfg.node_count dfg in
  let hop_table = Ocgra_arch.Cgra.hop_table p.cgra in
  let asap = Dfg.asap dfg in
  let m = Model.create ~maximize:false () in
  (* x[v][(pe,t)] *)
  let cands =
    Array.init n (fun v ->
        List.concat_map
          (fun pe ->
            List.init win (fun k -> asap.(v) + k)
            |> List.filter (fun t -> Ocgra_arch.Cgra.slot_ok p.cgra ~pe ~ii ~time:t)
            |> List.map (fun t ->
                   (pe, t, Model.binary m (Printf.sprintf "x_%d_%d_%d" v pe t))))
          (capable p v))
  in
  Array.iter
    (fun cs -> Model.add_constraint m (List.map (fun (_, _, x) -> (1.0, x)) cs) Lp.Eq 1.0)
    cands;
  (* FU slot capacity *)
  let npe = Ocgra_arch.Cgra.pe_count p.cgra in
  for pe = 0 to npe - 1 do
    for slot = 0 to ii - 1 do
      let users =
        Array.to_list cands
        |> List.concat_map (List.filter (fun (q, t, _) -> q = pe && t mod ii = slot))
      in
      if List.length users > 1 then
        Model.add_constraint m (List.map (fun (_, _, x) -> (1.0, x)) users) Lp.Le 1.0
    done
  done;
  (* placement aggregates for adjacency *)
  let w =
    Array.init n (fun v ->
        List.map
          (fun pe ->
            let wx = Model.binary m (Printf.sprintf "wagg_%d_%d" v pe) in
            let terms = List.filter_map (fun (q, _, x) -> if q = pe then Some (1.0, x) else None) cands.(v) in
            Model.add_constraint m ((-1.0, wx) :: terms) Lp.Eq 0.0;
            (pe, wx))
          (capable p v))
  in
  (* dependent ops nearest-neighbour; timing via time aggregates *)
  let time_of =
    Array.init n (fun v ->
        List.map (fun (_, t, x) -> (float_of_int t, x)) cands.(v))
  in
  List.iter
    (fun (e : Dfg.edge) ->
      let lat = Op.latency (Dfg.op dfg e.src) in
      if e.src <> e.dst then begin
        List.iter
          (fun (pu, xu) ->
            List.iter
              (fun (pv, xv) ->
                if hop_table.(pu).(pv) > 1 then
                  Model.add_constraint m [ (1.0, xu); (1.0, xv) ] Lp.Le 1.0)
              w.(e.dst))
          w.(e.src)
      end;
      (* T_v + dist*ii - T_u - lat >= 0 *)
      Model.add_constraint m
        (time_of.(e.dst) @ List.map (fun (c, x) -> (-.c, x)) time_of.(e.src))
        Lp.Ge
        (float_of_int (lat - (e.dist * ii))))
    (Dfg.edges dfg);
  (* objective: compact schedule + jitter *)
  let obj =
    Array.to_list time_of |> List.concat
    |> List.map (fun (c, x) -> (c +. (float_of_int (Rng.int rng jitter) /. 100.0), x))
  in
  Model.set_objective m obj;
  let outcome, values, stats =
    Model.solve ~max_nodes:600 ~should_stop:(bounded ~seconds:2.0 should_stop) m
  in
  flush_stats obs stats;
  match (outcome, values) with
  | (Model.Optimal _ | Model.Feasible _), Some values ->
      let binding = Array.make n (-1, -1) in
      Array.iteri
        (fun v cs -> List.iter (fun (pe, t, x) -> if values.(x) = 1 then binding.(v) <- (pe, t)) cs)
        cands;
      if Array.for_all (fun (pe, _) -> pe >= 0) binding then Some binding else None
  | _ -> None

let temporal_map ?(retries = 2) ?(win_slack = 3) ?(deadline_s = 12.0) ?(deadline = Deadline.none)
    ?(obs = Ocgra_obs.Ctx.off) (p : Problem.t) rng =
  match p.kind with
  | Problem.Spatial -> (None, 0, false)
  | Problem.Temporal { max_ii; _ } ->
      let mii = Mii.mii p.dfg p.cgra in
      let attempts = ref 0 in
      let dl = Deadline.sooner deadline (Deadline.after ~seconds:deadline_s) in
      let should_stop = Deadline.should_stop dl in
      let rec over_ii ii =
        if ii > max_ii || Deadline.expired dl then (None, false)
        else begin
          let win = ii + win_slack in
          let rec go k =
            if k <= 0 || Deadline.expired dl then None
            else begin
              incr attempts;
              match
                Ocgra_obs.Ctx.span obs ~cat:"ilp" (Printf.sprintf "ilp-temporal:ii=%d" ii)
                  (fun () ->
                    temporal_solve p rng ~ii ~win
                      ~jitter:(if k = retries then 1 else 80)
                      ~should_stop ~obs)
              with
              | None -> None
              | Some binding -> (
                  match Finalize.of_binding ~obs p ~ii binding with
                  | Some m -> Some m
                  | None -> go (k - 1))
            end
          in
          match go retries with Some m -> (Some m, ii = mii) | None -> over_ii (ii + 1)
        end
      in
      let m, proven = over_ii (max 1 mii) in
      (m, !attempts, proven)

let temporal =
  Mapper.make ~name:"ilp-temporal" ~citation:"Brenner et al. [41]; Guo et al. [15]"
    ~scope:Taxonomy.Temporal_mapping ~approach:Taxonomy.Exact_ilp
    (fun p rng dl obs ->
      let m, attempts, proven =
        temporal_map ~deadline:dl ~obs p rng
      in
      {
        Mapper.mapping = m;
        proven_optimal = proven && m <> None;
        attempts;
        elapsed_s = 0.0;
        note = "time-indexed ILP, nearest-neighbour placement, lazy routing";
        trail = [];
      })

(* ---------- scheduling-only ---------- *)

(* Re-time a fixed binding with a time-indexed ILP, then route. *)
let schedule_solve (p : Problem.t) ~ii ~win ~should_stop ~obs (pes : int array) =
  let dfg = p.dfg in
  let n = Dfg.node_count dfg in
  let hop_table = Ocgra_arch.Cgra.hop_table p.cgra in
  let asap = Dfg.asap dfg in
  let m = Model.create ~maximize:false () in
  let cands =
    Array.init n (fun v ->
        List.init win (fun k -> asap.(v) + k)
        |> List.filter (fun t -> Ocgra_arch.Cgra.slot_ok p.cgra ~pe:pes.(v) ~ii ~time:t)
        |> List.map (fun t -> (t, Model.binary m (Printf.sprintf "s_%d_%d" v t))))
  in
  Array.iter (fun cs -> Model.add_constraint m (List.map (fun (_, x) -> (1.0, x)) cs) Lp.Eq 1.0) cands;
  (* FU slot capacity per (pe, slot) among nodes sharing the PE *)
  let groups = Hashtbl.create 16 in
  Array.iteri
    (fun v pe ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt groups pe) in
      Hashtbl.replace groups pe (v :: cur))
    pes;
  Hashtbl.iter
    (fun _pe vs ->
      if List.length vs > 1 then
        for slot = 0 to ii - 1 do
          let users =
            List.concat_map (fun v -> List.filter (fun (t, _) -> t mod ii = slot) cands.(v)) vs
          in
          if List.length users > 1 then
            Model.add_constraint m (List.map (fun (_, x) -> (1.0, x)) users) Lp.Le 1.0
        done)
    groups;
  (* timing with the true hop distances of the fixed binding *)
  List.iter
    (fun (e : Dfg.edge) ->
      let lat = Op.latency (Dfg.op dfg e.src) in
      let needed = max 0 (hop_table.(pes.(e.src)).(pes.(e.dst)) - 1) in
      let tu = List.map (fun (t, x) -> (float_of_int t, x)) cands.(e.src) in
      let tv = List.map (fun (t, x) -> (float_of_int t, x)) cands.(e.dst) in
      Model.add_constraint m
        (tv @ List.map (fun (c, x) -> (-.c, x)) tu)
        Lp.Ge
        (float_of_int (lat + needed - (e.dist * ii))))
    (Dfg.edges dfg);
  Model.set_objective m (Array.to_list cands |> List.concat |> List.map (fun (t, x) -> (float_of_int t, x)));
  let outcome, values, stats =
    Model.solve ~max_nodes:800 ~should_stop:(bounded ~seconds:2.0 should_stop) m
  in
  flush_stats obs stats;
  match (outcome, values) with
  | (Model.Optimal _ | Model.Feasible _), Some values ->
      let times = Array.make n (-1) in
      Array.iteri (fun v cs -> List.iter (fun (t, x) -> if values.(x) = 1 then times.(v) <- t) cs) cands;
      if Array.for_all (fun t -> t >= 0) times then Some times else None
  | _ -> None

let schedule_map ?deadline_s ?(deadline = Deadline.none) ?(obs = Ocgra_obs.Ctx.off)
    (p : Problem.t) rng =
  let dl = Deadline.sooner deadline (Deadline.of_seconds deadline_s) in
  let should_stop = Deadline.should_stop dl in
  match p.kind with
  | Problem.Spatial -> (None, 0)
  | Problem.Temporal _ ->
      (* binding skeleton from the constructive heuristic *)
      let attempts = ref 0 in
      (match Constructive.map ~restarts:8 ~deadline:dl ~obs p rng with
      | None, a, _ ->
          attempts := a;
          (None, !attempts)
      | Some base, a, _ ->
          attempts := a;
          let ii = base.Mapping.ii in
          let pes = Array.map fst base.Mapping.binding in
          incr attempts;
          (match
             Ocgra_obs.Ctx.span obs ~cat:"ilp"
               (Printf.sprintf "ilp-schedule:ii=%d" ii)
               (fun () -> schedule_solve p ~ii ~win:(ii + 4) ~should_stop ~obs pes)
           with
          | None -> (Some base, !attempts) (* keep the heuristic schedule *)
          | Some times ->
              let binding = Array.mapi (fun v t -> (pes.(v), t)) times in
              (match Finalize.of_binding ~obs p ~ii binding with
              | Some m -> (Some m, !attempts)
              | None -> (Some base, !attempts))))

let schedule =
  Mapper.make ~name:"ilp-schedule" ~citation:"Guo et al. [15]; Mu et al. [53]"
    ~scope:Taxonomy.Scheduling_only ~approach:Taxonomy.Exact_ilp
    (fun p rng dl obs ->
      let m, attempts = schedule_map ~deadline:dl ~obs p rng in
      {
        Mapper.mapping = m;
        proven_optimal = false;
        attempts;
        elapsed_s = 0.0;
        note = "heuristic binding + time-indexed ILP re-scheduling";
        trail = [];
      })

(** ILP-based mappers on the in-tree simplex + branch & bound, matching
    the three ILP cells of Table I.  All three restrict the formulation
    (distance caps / nearest-neighbour placement) and rely on lazy
    strict routing; see DESIGN.md §4b. *)

(** Spatial binding ILP ([34], [23], [35]): assignment binaries with
    pairwise distance caps, escalating the cap on infeasibility. *)
val spatial : Ocgra_core.Mapper.t

(** Joint time-indexed binding+scheduling ILP ([41], [15]); intended
    for small arrays and kernels. *)
val temporal : Ocgra_core.Mapper.t

(** Scheduling-only ILP ([15], [53]): re-time a heuristic binding. *)
val schedule : Ocgra_core.Mapper.t

(** The underlying map functions, exposed for budget-controlled use by
    the bench.  [obs] records one span per solve and flushes the B&B
    core's tallies ([ilp.nodes], [ilp.lp_solves], [ilp.pruned],
    [ilp.improved]). *)

val spatial_map :
  ?retries:int ->
  ?deadline_s:float ->
  ?deadline:Ocgra_core.Deadline.t ->
  ?obs:Ocgra_obs.Ctx.t ->
  Ocgra_core.Problem.t ->
  Ocgra_util.Rng.t ->
  Ocgra_core.Mapping.t option * int

val temporal_map :
  ?retries:int ->
  ?win_slack:int ->
  ?deadline_s:float ->
  ?deadline:Ocgra_core.Deadline.t ->
  ?obs:Ocgra_obs.Ctx.t ->
  Ocgra_core.Problem.t ->
  Ocgra_util.Rng.t ->
  Ocgra_core.Mapping.t option * int * bool

val schedule_map :
  ?deadline_s:float ->
  ?deadline:Ocgra_core.Deadline.t ->
  ?obs:Ocgra_obs.Ctx.t ->
  Ocgra_core.Problem.t ->
  Ocgra_util.Rng.t ->
  Ocgra_core.Mapping.t option * int

(* Branch-and-bound temporal mapping ([42] dnestmap uses B&B; [24] Das
   et al. prune partial solutions stochastically to keep the frontier
   tractable).

   Depth-first search over nodes in priority order; each node branches
   over its feasible (PE, cycle) candidates, placed and routed
   immediately so infeasible branches die at the first unroutable
   dependence.  Two pruning knobs: [beam] keeps only that many
   candidates per node (stochastically sampled, as in [24]), and
   [max_nodes] bounds the search tree. *)

open Ocgra_dfg
open Ocgra_core
module Rng = Ocgra_util.Rng

exception Found of Mapping.t

let attempt (p : Problem.t) rng ~ii ~beam ~max_nodes ~dl =
  let state = Place_route.create p ~ii in
  let hop_table = Ocgra_arch.Cgra.hop_table p.cgra in
  let order = Array.of_list (Constructive.topo_order_by_height rng p.dfg) in
  let npe = Ocgra_arch.Cgra.pe_count p.cgra in
  let expanded = ref 0 in
  let complete = ref true in
  let rec go i =
    if i = Array.length order then begin
      match Place_route.to_mapping state with Some m -> raise (Found m) | None -> ()
    end
    else begin
      let v = order.(i) in
      let op = Dfg.op p.dfg v in
      let candidates =
        List.concat_map
          (fun pe ->
            if Ocgra_arch.Cgra.supports p.cgra pe op then begin
              let est, lst = Place_route.time_window state hop_table v pe in
              let upper = min lst (est + ii + 2) in
              if est > upper then []
              else List.init (upper - est + 1) (fun k -> (est + k, pe))
            end
            else [])
          (List.init npe Fun.id)
      in
      let candidates = List.sort compare candidates in
      (* stochastic pruning: keep at most [beam] candidates *)
      let candidates =
        if List.length candidates <= beam then candidates
        else begin
          complete := false;
          let arr = Array.of_list candidates in
          (* always keep the earliest few, sample the rest *)
          let keep_head = max 1 (beam / 2) in
          let head = Array.to_list (Array.sub arr 0 keep_head) in
          let tail = Array.sub arr keep_head (Array.length arr - keep_head) in
          Rng.shuffle_in_place rng tail;
          head @ Array.to_list (Array.sub tail 0 (beam - keep_head))
        end
      in
      List.iter
        (fun (t, pe) ->
          if !expanded < max_nodes && not (Deadline.expired dl) then begin
            incr expanded;
            if Place_route.place state v ~pe ~time:t then begin
              go (i + 1);
              Place_route.unplace state v
            end
          end
          else complete := false)
        candidates
    end
  in
  match go 0 with
  | () -> (None, !expanded, !complete)
  | exception Found m -> (Some m, !expanded, !complete)

let map ?(beam = 10) ?(max_nodes = 40_000) ?deadline_s ?(deadline = Deadline.none)
    ?(obs = Ocgra_obs.Ctx.off) (p : Problem.t) rng =
  let dl = Deadline.sooner deadline (Deadline.of_seconds deadline_s) in
  let result =
    match p.kind with
    | Problem.Spatial ->
        let m, expanded, _ = attempt p rng ~ii:1 ~beam ~max_nodes ~dl in
        (m, expanded, false)
    | Problem.Temporal { max_ii; _ } ->
        let mii = Mii.mii p.dfg p.cgra in
        let total = ref 0 in
        let rec over_ii ii =
          if ii > max_ii || Deadline.expired dl then (None, false)
          else begin
            let m, expanded, complete =
              Ocgra_obs.Ctx.span obs ~cat:"bb" (Printf.sprintf "bb:ii=%d" ii) (fun () ->
                  attempt p rng ~ii ~beam ~max_nodes ~dl)
            in
            total := !total + expanded;
            match m with
            | Some m -> (Some m, ii = mii && complete)
            | None -> over_ii (ii + 1)
          end
        in
        let m, proven = over_ii (max 1 mii) in
        (m, !total, proven)
  in
  let _, expanded, _ = result in
  Ocgra_obs.Ctx.add obs "bb.expanded" expanded;
  result

let mapper =
  Mapper.make ~name:"branch-and-bound" ~citation:"Karunaratne et al. [42]; Das et al. [24]"
    ~scope:Taxonomy.Temporal_mapping ~approach:Taxonomy.Exact_bb
    (fun p rng dl obs ->
      let m, attempts, proven = map ~deadline:dl ~obs p rng in
      {
        Mapper.mapping = m;
        proven_optimal = proven && m <> None;
        attempts;
        elapsed_s = 0.0;
        note = "DFS over (PE,cycle) with immediate routing and stochastic pruning";
        trail = [];
      })

(* SMT-based mapping ([44] Donovick et al., who target CGRAs with
   restricted routing networks).

   The placement structure is propositional (one PE per op, at most one
   op per PE — the restricted-routing regime) while the schedule lives
   in integer difference logic: for every dependence and every
   placement pair, a conditional atom t_v - t_u >= lat + hops(p,q) - 1
   - dist*II.  The lazy IDL solver finds a placement+schedule; routing
   is then strict, with placement blocking clauses on failure. *)

open Ocgra_dfg
open Ocgra_core
module Smt = Ocgra_smt.Smt
module Sat = Ocgra_sat.Solver
module Enc = Ocgra_sat.Encodings

let flush_stats obs smt =
  let sat = Smt.sat_solver smt in
  let conflicts, decisions, propagations = Sat.stats sat in
  Ocgra_obs.Ctx.add obs "sat.conflicts" conflicts;
  Ocgra_obs.Ctx.add obs "sat.decisions" decisions;
  Ocgra_obs.Ctx.add obs "sat.propagations" propagations;
  Ocgra_obs.Ctx.add obs "sat.restarts" (Sat.n_restarts sat);
  Array.iteri (fun lbd k -> Ocgra_obs.Ctx.observe_n obs "sat.lbd" lbd k) (Sat.dist_lbd sat);
  Ocgra_obs.Ctx.add obs "smt.rounds" (Smt.rounds smt)

let try_ii (p : Problem.t) ~ii ~routing_retries ~should_stop ~obs =
  let dfg = p.dfg and cgra = p.cgra in
  let npe = Ocgra_arch.Cgra.pe_count cgra in
  let n = Dfg.node_count dfg in
  let hop_table = Ocgra_arch.Cgra.hop_table cgra in
  let horizon = min (Problem.max_time p) (Dfg.critical_path dfg + (2 * ii) + 6) in
  let smt = Smt.create () in
  let sat = Smt.sat_solver smt in
  (* placement booleans *)
  let b =
    Array.init n (fun v ->
        List.filter_map
          (fun pe ->
            if Ocgra_arch.Cgra.supports cgra pe (Dfg.op dfg v) then Some (pe, Smt.new_bool smt)
            else None)
          (List.init npe Fun.id))
  in
  Array.iter (fun bs -> Enc.exactly_one sat (List.map snd bs)) b;
  (* restricted routing: at most one op per PE *)
  for pe = 0 to npe - 1 do
    let users = Array.to_list b |> List.concat_map (List.filter (fun (q, _) -> q = pe)) in
    Enc.at_most_one sat (List.map snd users)
  done;
  (* integer times with a zero reference *)
  let zero = Smt.new_int smt "zero" in
  let time = Array.init n (fun v -> Smt.new_int smt (Printf.sprintf "t%d" v)) in
  Array.iter
    (fun tv ->
      Sat.add_clause sat [ Smt.atom_ge smt tv zero 0 ];
      Sat.add_clause sat [ Smt.atom_le smt tv zero (horizon - 1) ])
    time;
  (* conditional timing atoms *)
  List.iter
    (fun (e : Dfg.edge) ->
      let lat = Op.latency (Dfg.op dfg e.src) in
      if e.src = e.dst then begin
        (* recurrence on one op: lat <= dist * ii must hold *)
        if lat > e.dist * ii then Sat.add_clause sat []
      end
      else
        List.iter
          (fun (pu, bu) ->
            List.iter
              (fun (pv, bv) ->
                let h = hop_table.(pu).(pv) in
                if h >= Ocgra_graph.Paths.unreachable then
                  Sat.add_clause sat [ Sat.negate bu; Sat.negate bv ]
                else begin
                  let bound = lat + max 0 (h - 1) - (e.dist * ii) in
                  let atom = Smt.atom_ge smt time.(e.dst) time.(e.src) bound in
                  Sat.add_clause sat [ Sat.negate bu; Sat.negate bv; atom ]
                end)
              b.(e.dst))
          b.(e.src))
    (Dfg.edges dfg);
  let rec extract_loop k =
    if k <= 0 then None
    else begin
      match Smt.solve ~max_rounds:400 ~max_conflicts:200_000 ~should_stop smt with
      | Smt.Unsat_ | Smt.Unknown_ -> None
      | Smt.Sat_ ->
          let z = Smt.int_value smt zero in
          let binding =
            Array.init n (fun v ->
                let pe =
                  List.fold_left (fun acc (pe, l) -> if Smt.bool_value smt l then pe else acc) (-1) b.(v)
                in
                (pe, Smt.int_value smt time.(v) - z))
          in
          (* clamp times into [0, horizon): the IDL model is shift-invariant *)
          let tmin = Array.fold_left (fun acc (_, t) -> min acc t) max_int binding in
          let binding = Array.map (fun (pe, t) -> (pe, t - min tmin 0)) binding in
          (match Finalize.of_binding ~obs p ~ii binding with
          | Some m -> Some m
          | None ->
              (* block this exact placement and try again *)
              let blocking =
                Array.to_list b
                |> List.concat_map (fun bs ->
                       List.filter_map
                         (fun (_, l) -> if Smt.bool_value smt l then Some (Sat.negate l) else None)
                         bs)
              in
              Sat.add_clause sat blocking;
              extract_loop (k - 1))
    end
  in
  let result = extract_loop routing_retries in
  flush_stats obs smt;
  result

let map ?(routing_retries = 6) ?deadline_s ?(deadline = Deadline.none) ?(obs = Ocgra_obs.Ctx.off)
    (p : Problem.t) rng =
  ignore rng;
  let dl = Deadline.sooner deadline (Deadline.of_seconds deadline_s) in
  let should_stop = Deadline.should_stop dl in
  match p.kind with
  | Problem.Spatial -> (None, 0, false)
  | Problem.Temporal { max_ii; _ } ->
      (* restricted routing caps the op count at the PE count *)
      if Dfg.node_count p.dfg > Ocgra_arch.Cgra.pe_count p.cgra then (None, 0, false)
      else begin
        let mii = Mii.mii p.dfg p.cgra in
        let attempts = ref 0 in
        let rec over_ii ii =
          if ii > max_ii || Deadline.expired dl then (None, false)
          else begin
            incr attempts;
            match
              Ocgra_obs.Ctx.span obs ~cat:"smt" (Printf.sprintf "smt:ii=%d" ii) (fun () ->
                  try_ii p ~ii ~routing_retries ~should_stop ~obs)
            with
            | Some m -> (Some m, ii = mii)
            | None -> over_ii (ii + 1)
          end
        in
        let m, proven = over_ii (max 1 mii) in
        (m, !attempts, proven)
      end

let mapper =
  Mapper.make ~name:"smt" ~citation:"Donovick et al. [44]"
    ~scope:Taxonomy.Temporal_mapping ~approach:Taxonomy.Exact_smt
    (fun p rng dl obs ->
      let m, attempts, proven = map ~deadline:dl ~obs p rng in
      {
        Mapper.mapping = m;
        proven_optimal = proven && m <> None;
        attempts;
        elapsed_s = 0.0;
        note = "difference-logic schedule + propositional placement (restricted routing)";
        trail = [];
      })

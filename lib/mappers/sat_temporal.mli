(** SAT-based temporal mapping ([17]): binding, scheduling and routing
    encoded propositionally per candidate II, starting at MII — SAT at
    MII certifies the optimal II; UNSAT certifies infeasibility within
    the schedule window.  Routes use FU hops only (no RF holds) and
    fan-out edges route separately; see DESIGN.md. *)

(** (mapping, attempts, proven optimal, note).  [deadline_s] bounds the
    run in wall-clock seconds (threaded into the CDCL search as a
    [should_stop] hook).
    [deadline] additionally threads an externally built deadline --
    including any attached cancellation hook -- into the same stop
    signal.  [obs] records one span per candidate II and flushes the
    solver's conflict/decision/propagation tallies
    ([sat.conflicts], ...). *)
val map :
  ?slack:int ->
  ?max_conflicts:int ->
  ?deadline_s:float ->
  ?deadline:Ocgra_core.Deadline.t ->
  ?obs:Ocgra_obs.Ctx.t ->
  Ocgra_core.Problem.t ->
  Ocgra_util.Rng.t ->
  Ocgra_core.Mapping.t option * int * bool * string

val mapper : Ocgra_core.Mapper.t

(** SAT-based temporal mapping ([17]): binding, scheduling and routing
    encoded propositionally per candidate II, starting at MII — SAT at
    MII certifies the optimal II; UNSAT certifies infeasibility within
    the schedule window.  Routes use FU hops only (no RF holds) and
    fan-out edges route separately; see DESIGN.md.

    The sweep is incremental by default: the x/y/h propositions are
    II-independent, so one solver instance serves every candidate II —
    per-II constraints join under an activation literal, each II is
    solved under that assumption, and refuted candidates are retired
    with a unit against their guard.  Learnt clauses, VSIDS activity
    and saved phases carry across the sweep (DESIGN.md §4i). *)

(** (mapping, attempts, proven optimal, note).  [deadline_s] bounds the
    run in wall-clock seconds (threaded into the CDCL search as a
    [should_stop] hook).
    [deadline] additionally threads an externally built deadline --
    including any attached cancellation hook -- into the same stop
    signal.  [obs] records one span per candidate II and flushes the
    solver's conflict/decision/propagation tallies as per-II deltas
    ([sat.conflicts], ...).  [incremental:false] restores the
    cold-per-II baseline (a fresh solver per candidate II); cold and
    incremental sweeps reach the same verdict and the same final II,
    though not necessarily the same model. *)
val map :
  ?slack:int ->
  ?max_conflicts:int ->
  ?deadline_s:float ->
  ?deadline:Ocgra_core.Deadline.t ->
  ?obs:Ocgra_obs.Ctx.t ->
  ?incremental:bool ->
  Ocgra_core.Problem.t ->
  Ocgra_util.Rng.t ->
  Ocgra_core.Mapping.t option * int * bool * string

val mapper : Ocgra_core.Mapper.t

(** The cold-per-II baseline as a registered mapper ("sat-cold"), kept
    so benches can price the incremental sweep against it. *)
val mapper_cold : Ocgra_core.Mapper.t

(* The mapper registry: one implemented representative per cell of the
   survey's Table I.  The bench iterates this list to regenerate the
   empirical companion of the table. *)

open Ocgra_core

let all : Mapper.t list =
  [
    (* spatial *)
    Heuristic.greedy_spatial_mapper;
    Graph_drawing.mapper;
    Sa_spatial.mapper;
    Ga_spatial.mapper;
    Ilp_mappers.spatial;
    (* temporal *)
    Heuristic.modulo_mapper;
    Edge_centric.mapper;
    Sa_temporal.mapper;
    Ilp_mappers.temporal;
    Bb_temporal.mapper;
    Cp_temporal.mapper;
    Sat_temporal.mapper;
    Smt_temporal.mapper;
    (* binding-only (on a list schedule) *)
    Iso_binding.mapper;
    Schedule_bind.clique_binding;
    Schedule_bind.qea_binding;
    (* scheduling-only *)
    Schedule_bind.list_scheduling;
    Ilp_mappers.schedule;
  ]

(* Extra mappers that are findable by name but not part of the Table I
   bench set — the plain constructive fallback tier used by the
   Harness, and the cold-per-II SAT baseline the incremental-sweep
   bench compares against. *)
let extras : Mapper.t list = [ Heuristic.constructive_mapper; Sat_temporal.mapper_cold ]

let find name =
  match List.find_opt (fun (m : Mapper.t) -> m.name = name) (all @ extras) with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Registry.find: unknown mapper %s" name)

let names () = List.map (fun (m : Mapper.t) -> m.Mapper.name) all

(* Parse a comma-separated fallback chain spec, e.g.
   "sat,modulo-greedy,constructive". *)
let chain_of_spec spec =
  String.split_on_char ',' spec
  |> List.map String.trim
  |> List.filter (fun s -> s <> "")
  |> List.map find

let spatial_mappers =
  List.filter (fun (m : Mapper.t) -> m.scope = Taxonomy.Spatial_mapping) all

let temporal_mappers =
  List.filter
    (fun (m : Mapper.t) ->
      match m.scope with
      | Taxonomy.Temporal_mapping | Taxonomy.Binding_only | Taxonomy.Scheduling_only -> true
      | Taxonomy.Spatial_mapping -> false)
    all

(* The implemented Table I: scope rows x technique columns. *)
let table_rows () =
  List.map
    (fun scope ->
      let cells =
        List.map
          (fun col ->
            all
            |> List.filter (fun (m : Mapper.t) ->
                   m.scope = scope && Taxonomy.column_of_approach m.approach = col)
            |> List.map (fun (m : Mapper.t) ->
                   Printf.sprintf "%s (%s)" m.name (Taxonomy.approach_to_string m.approach)))
          Taxonomy.all_columns
      in
      (scope, cells))
    Taxonomy.all_scopes

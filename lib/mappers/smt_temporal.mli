(** SMT-based mapping ([44], restricted routing networks): placement is
    propositional (one op per PE), the schedule lives in integer
    difference logic with placement-conditional atoms; routing is lazy
    with placement blocking clauses. *)

(** (mapping, attempts, proven optimal at MII).  [deadline_s] bounds
    the run in wall-clock seconds (threaded into the lazy SMT loop and
    the inner SAT search).
    [deadline] additionally threads an externally built deadline --
    including any attached cancellation hook -- into the same stop
    signal.  [obs] records one span per candidate II and flushes the
    lazy-SMT tallies ([sat.conflicts], [sat.decisions],
    [sat.propagations], [smt.rounds]). *)
val map :
  ?routing_retries:int ->
  ?deadline_s:float ->
  ?deadline:Ocgra_core.Deadline.t ->
  ?obs:Ocgra_obs.Ctx.t ->
  Ocgra_core.Problem.t ->
  Ocgra_util.Rng.t ->
  Ocgra_core.Mapping.t option * int * bool

val mapper : Ocgra_core.Mapper.t

(** The mapper registry: one implemented representative per cell of the
    survey's Table I; the bench iterates this list to regenerate the
    empirical companion of the table. *)

(** All 18 mappers, in Table I order (spatial, temporal, binding-only,
    scheduling-only). *)
val all : Ocgra_core.Mapper.t list

(** Mappers findable by name but outside the Table I bench set (the
    plain constructive fallback tier). *)
val extras : Ocgra_core.Mapper.t list

(** Raises [Invalid_argument] on unknown names; see [names].  Searches
    [all] then [extras]. *)
val find : string -> Ocgra_core.Mapper.t

val names : unit -> string list

(** Parse a comma-separated fallback chain spec
    (e.g. ["sat,modulo-greedy,constructive"]) into mappers; raises
    [Invalid_argument] on unknown names. *)
val chain_of_spec : string -> Ocgra_core.Mapper.t list
val spatial_mappers : Ocgra_core.Mapper.t list
val temporal_mappers : Ocgra_core.Mapper.t list

(** The implemented Table I: per scope row, the four technique-column
    cells as mapper descriptions. *)
val table_rows : unit -> (Ocgra_core.Taxonomy.scope * string list list) list

(* GenMap-style spatial mapping by genetic algorithm ([19] Kojima et
   al.): placement genomes evolve under collision + wirelength fitness,
   elitist generational replacement, then strict extraction. *)

open Ocgra_core

let map ?(config = Ocgra_meta.Ga.default_config) ?(extractions = 10) ?deadline_s ?(deadline = Deadline.none)
    ?(obs = Ocgra_obs.Ctx.off) (p : Problem.t) rng =
  let dl = Deadline.sooner deadline (Deadline.of_seconds deadline_s) in
  let hop_table = Ocgra_arch.Cgra.hop_table p.cgra in
  let attempts = ref 0 in
  let rec go k =
    if k <= 0 || Deadline.expired dl then None
    else begin
      incr attempts;
      let best, _fit, (stats : Ocgra_meta.Ga.stats) =
        Ocgra_obs.Ctx.span obs ~cat:"ga" "genmap:evolve" (fun () ->
            Ocgra_meta.Ga.run ~config rng
              ~init:(fun rng -> Spatial_common.random_genome p rng)
              ~crossover:Spatial_common.crossover
              ~mutate:(fun rng g -> Spatial_common.mutate p rng g)
              ~fitness:(fun g -> -.float_of_int (Spatial_common.genome_cost p hop_table g)))
      in
      Ocgra_obs.Ctx.add obs "ga.evaluations" stats.evaluations;
      match Spatial_common.extract p best with
      | Some m -> Some m
      | None -> go (k - 1)
    end
  in
  (go extractions, !attempts)

let mapper =
  Mapper.make ~name:"genmap-ga" ~citation:"Kojima et al. GenMap [19]"
    ~scope:Taxonomy.Spatial_mapping ~approach:(Taxonomy.Meta_population "GA")
    (fun p rng dl obs ->
      let m, attempts = map ~deadline:dl ~obs p rng in
      {
        Mapper.mapping = m;
        proven_optimal = false;
        attempts;
        elapsed_s = 0.0;
        note = "evolved placement + strict pipeline routing";
        trail = [];
      })

(* Lazy SMT for integer difference logic (IDL) on top of the CDCL SAT
   solver.

   The SMT-based mapper in the survey ([44], Donovick et al.) mixes a
   boolean placement structure with integer scheduling constraints of
   the form x - y <= c.  This solver implements the standard lazy
   scheme: atoms are boolean proxies; after each propositionally
   satisfying assignment the active difference constraints are checked
   with Bellman-Ford; a negative cycle yields a blocking clause over
   exactly the atoms on the cycle, and the loop repeats. *)

module Sat = Ocgra_sat.Solver

type ivar = int

type edge = {
  src : ivar;
  dst : ivar; (* constraint: value(dst) - value(src) <= weight *)
  weight : int;
  lit : Sat.lit; (* edge is active when this literal is true *)
}

type t = {
  sat : Sat.t;
  mutable n_ints : int;
  mutable int_names : string list; (* reversed *)
  mutable edges : edge list;
  atoms : (int * int * int, Sat.lit) Hashtbl.t; (* (x, y, c) -> lit for x - y <= c *)
  mutable model : int array; (* integer model after Sat *)
  mutable rounds : int;
}

type result = Sat_ | Unsat_ | Unknown_

let create () =
  {
    sat = Sat.create ();
    n_ints = 0;
    int_names = [];
    edges = [];
    atoms = Hashtbl.create 64;
    model = [||];
    rounds = 0;
  }

let new_int t name =
  let v = t.n_ints in
  t.n_ints <- v + 1;
  t.int_names <- name :: t.int_names;
  v

let new_bool t = Sat.pos (Sat.new_var t.sat)

(* Literal for the atom x - y <= c (interned). *)
let atom_le t x y c =
  match Hashtbl.find_opt t.atoms (x, y, c) with
  | Some l -> l
  | None ->
      let l = Sat.pos (Sat.new_var t.sat) in
      Hashtbl.add t.atoms (x, y, c) l;
      (* when true:  x - y <= c      : edge y -> x, weight c
         when false: y - x <= -c - 1 : edge x -> y, weight -c-1 *)
      t.edges <- { src = y; dst = x; weight = c; lit = l } :: t.edges;
      t.edges <- { src = x; dst = y; weight = -c - 1; lit = Sat.negate l } :: t.edges;
      l

(* Convenience atoms *)
let atom_ge t x y c = (* x - y >= c  <=>  y - x <= -c *) atom_le t y x (-c)
let atom_eq_clauses t x y c =
  (* x - y = c as the conjunction of two atoms; returns both literals *)
  let le = atom_le t x y c and ge = atom_ge t x y c in
  Sat.add_clause t.sat [ le ];
  Sat.add_clause t.sat [ ge ]

let add_clause t lits = Sat.add_clause t.sat lits

(* Bellman-Ford over the active edges; returns None when consistent
   (with the distance array), or the list of edges on a negative
   cycle. *)
let check_theory t active_edges =
  let n = t.n_ints in
  let dist = Array.make n 0 in
  let parent_edge = Array.make n None in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds <= n do
    changed := false;
    incr rounds;
    List.iter
      (fun e ->
        if dist.(e.src) + e.weight < dist.(e.dst) then begin
          dist.(e.dst) <- dist.(e.src) + e.weight;
          parent_edge.(e.dst) <- Some e;
          changed := true
        end)
      active_edges
  done;
  if not !changed then None
  else begin
    (* find a node on the cycle: start from any recently-relaxed node
       and walk parents n times *)
    let start = ref (-1) in
    List.iter
      (fun e -> if !start < 0 && dist.(e.src) + e.weight < dist.(e.dst) then start := e.dst)
      active_edges;
    let v = ref !start in
    for _ = 1 to n do
      match parent_edge.(!v) with Some e -> v := e.src | None -> ()
    done;
    (* collect the cycle through parent edges *)
    let cycle = ref [] in
    let u = ref !v in
    let continue_ = ref true in
    while !continue_ do
      match parent_edge.(!u) with
      | Some e ->
          cycle := e :: !cycle;
          u := e.src;
          if !u = !v then continue_ := false
      | None -> continue_ := false (* defensive; should not happen *)
    done;
    Some !cycle
  end

let solve ?(max_rounds = 10_000) ?(max_conflicts = max_int) ?(should_stop = fun () -> false)
    ?(assumptions = []) t =
  let rec loop round =
    if round >= max_rounds || should_stop () then Unknown_
    else begin
      t.rounds <- round + 1;
      match Sat.solve ~max_conflicts ~should_stop ~assumptions t.sat with
      | Sat.Unsat -> Unsat_
      | Sat.Unknown -> Unknown_
      | Sat.Sat ->
          let lit_true l =
            let v = Sat.var_of l in
            if Sat.is_pos l then Sat.value t.sat v else not (Sat.value t.sat v)
          in
          let active = List.filter (fun e -> lit_true e.lit) t.edges in
          (match check_theory t active with
          | None ->
              (* build the integer model from shortest distances *)
              let n = t.n_ints in
              let dist = Array.make n 0 in
              let stable = ref false in
              while not !stable do
                stable := true;
                List.iter
                  (fun e ->
                    if dist.(e.src) + e.weight < dist.(e.dst) then begin
                      dist.(e.dst) <- dist.(e.src) + e.weight;
                      stable := false
                    end)
                  active
              done;
              (* shift so the minimum is 0 *)
              let m = Array.fold_left min 0 dist in
              t.model <- Array.map (fun d -> d - m) dist;
              Sat_
          | Some cycle ->
              (* block this combination of theory literals *)
              let clause = List.map (fun e -> Sat.negate e.lit) cycle in
              Sat.add_clause t.sat clause;
              loop (round + 1))
    end
  in
  loop 0

let int_value t v =
  if Array.length t.model = 0 then invalid_arg "Smt.int_value: no model";
  t.model.(v)

let bool_value t l =
  let v = Sat.var_of l in
  if Sat.is_pos l then Sat.value t.sat v else not (Sat.value t.sat v)

let conflict_assumptions t = Sat.conflict_assumptions t.sat
let rounds t = t.rounds
let sat_solver t = t.sat

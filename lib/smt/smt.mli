(** Lazy SMT for integer difference logic on the CDCL solver: atoms
    [x - y <= c] are boolean proxies; each propositionally satisfying
    assignment is checked with Bellman-Ford, and a negative cycle adds
    a blocking clause over exactly the atoms on the cycle. *)

type t
type ivar = int

type result = Sat_ | Unsat_ | Unknown_

val create : unit -> t

(** Fresh integer (theory) variable. *)
val new_int : t -> string -> ivar

(** Fresh propositional literal. *)
val new_bool : t -> Ocgra_sat.Solver.lit

(** Interned literal for the atom [x - y <= c]. *)
val atom_le : t -> ivar -> ivar -> int -> Ocgra_sat.Solver.lit

(** Literal for [x - y >= c]. *)
val atom_ge : t -> ivar -> ivar -> int -> Ocgra_sat.Solver.lit

(** Assert [x - y = c] (two unit clauses). *)
val atom_eq_clauses : t -> ivar -> ivar -> int -> unit

val add_clause : t -> Ocgra_sat.Solver.lit list -> unit

(** [Unknown_] when the round or conflict budget runs out, or when
    [should_stop] (also threaded into the inner SAT search) fires.
    [assumptions] are passed to every inner SAT call, making the solve
    retractable: [Unsat_] under assumptions leaves the instance usable
    and records a failed-assumption core ({!conflict_assumptions}). *)
val solve :
  ?max_rounds:int ->
  ?max_conflicts:int ->
  ?should_stop:(unit -> bool) ->
  ?assumptions:Ocgra_sat.Solver.lit list ->
  t ->
  result

(** Integer model (shifted so the minimum is 0); only after [Sat_]. *)
val int_value : t -> ivar -> int

val bool_value : t -> Ocgra_sat.Solver.lit -> bool

(** Failed-assumption core of the last [Unsat_] answer under
    assumptions (see {!Ocgra_sat.Solver.conflict_assumptions}); empty
    when the instance itself is unsatisfiable. *)
val conflict_assumptions : t -> Ocgra_sat.Solver.lit list

(** Lazy refinement rounds used by the last solve. *)
val rounds : t -> int

(** The underlying SAT instance, for adding structure directly. *)
val sat_solver : t -> Ocgra_sat.Solver.t

(** Seeded chaos injection: synthetic task failures and delays for
    exercising the {!Supervise} layer.

    The fault pattern is a pure function of (configuration, task
    index, try number) — never of scheduling or worker count — so a
    test can assert exact invariants: a seeded 10% failure rate plus
    bounded retries must reproduce the chaos-free result, a timeout
    storm must quarantine rather than abort, and the whole thing must
    be bit-identical from 1 to N domains. *)

type t

(** A try the injector decided to kill (task, try_no). *)
exception Injected_failure of int * int

(** An injected delay that the stop hook (watchdog or cancellation)
    cut short — the anatomy of a synthetic timeout (task, try_no). *)
exception Injected_delay of int * int

(** No injection; {!perturb} is a single branch. *)
val none : t

(** [make ~seed ()] draws, per (task, try): an [Injected_failure] with
    probability [fail_rate] (default 0), preceded by a cooperative
    sleep of [delay_s] seconds (default 2 ms) with probability
    [delay_rate] (default 0).  Raises [Invalid_argument] on rates
    outside [0, 1] or a negative delay. *)
val make : ?fail_rate:float -> ?delay_rate:float -> ?delay_s:float -> seed:int -> unit -> t

val enabled : t -> bool

(** [perturb t ~stop ~task ~try_no] runs the injections drawn for this
    (task, try): may sleep, may raise.  [stop] aborts an in-flight
    delay (raising {!Injected_delay}).  A live [obs] tallies
    [chaos.delays] / [chaos.failures]. *)
val perturb :
  ?obs:Ocgra_obs.Ctx.t -> t -> stop:(unit -> bool) -> task:int -> try_no:int -> unit

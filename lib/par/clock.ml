(* The same CLOCK_MONOTONIC source Ocgra_core.Deadline reads, exposed
   here because the supervision layer sits *below* lib/core in the
   dependency order (core depends on par) and still needs watchdog and
   backoff timing that survives NTP steps and suspend/resume. *)

let now () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

(* Cooperative sleep: naps in small slices so an [until] hook (a
   cancellation flag, a watchdog) is observed within ~a millisecond
   instead of after the whole duration.  Returns [true] when the sleep
   ran its full course, [false] when [until] cut it short. *)
let sleep_unless ~until seconds =
  let t0 = now () in
  let rec nap () =
    if until () then false
    else
      let left = seconds -. (now () -. t0) in
      if left <= 0.0 then true
      else begin
        Unix.sleepf (Float.min 0.0005 left);
        nap ()
      end
  in
  nap ()

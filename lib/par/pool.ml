(* Domain pool over a shared atomic task counter.

   Each worker claims the next unclaimed task index with
   [Atomic.fetch_and_add]; every slot of [results] is written by
   exactly one domain and read only after the joins, so the only
   synchronisation needed is the counter itself and the happens-before
   edge of [Domain.join].  Exceptions are captured per task and the
   lowest-index one is re-raised once the pool has drained — a failing
   task never leaves sibling domains unjoined. *)

let default_workers () =
  match Sys.getenv_opt "OCGRA_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let resolve workers n =
  let w = match workers with Some w -> max 1 w | None -> default_workers () in
  min w (max 1 n)

(* Shared worker loop: claim, run, record.  [on_done] lets Race hook
   winner election onto task completion without a second pool. *)
let drain ~workers ~on_done (tasks : (unit -> 'a) array) =
  let n = Array.length tasks in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let r =
          try Ok (tasks.(i) ())
          with e -> Error (e, Printexc.get_raw_backtrace ())
        in
        results.(i) <- Some r;
        (match r with Ok v -> on_done i v | Error _ -> ());
        loop ()
      end
    in
    loop ()
  in
  if workers <= 1 || n <= 1 then worker ()
  else begin
    let domains = Array.init (workers - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains
  end;
  (* surface the lowest-index failure, then unwrap in task order *)
  Array.iter
    (function
      | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
      | Some (Ok _) | None -> ())
    results;
  Array.map
    (function
      | Some (Ok v) -> v
      | Some (Error _) | None ->
          assert false (* every index < n is claimed exactly once *))
    results

let run ?workers tasks =
  drain ~workers:(resolve workers (Array.length tasks)) ~on_done:(fun _ _ -> ()) tasks

let map_list ?workers f xs =
  Array.to_list (run ?workers (Array.map (fun x () -> f x) (Array.of_list xs)))

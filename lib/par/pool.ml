(* Domain pool over a shared atomic task counter.

   Each worker claims the next unclaimed task index with
   [Atomic.fetch_and_add]; every slot of [results] is written by
   exactly one domain and read only after the joins, so the only
   synchronisation needed is the counter itself and the happens-before
   edge of [Domain.join].  Exceptions are captured per task and the
   lowest-index one is re-raised once the pool has drained — a failing
   task never leaves sibling domains unjoined.

   Observability: when a live [?obs] is passed, each task runs inside
   a span on its worker's domain lane and every claim bumps a
   per-worker counter ([pool.tasks.w<k>] — worker 0 is the calling
   domain).  Both sinks are lock-free (see Ocgra_obs), so tracing
   never serialises the pool; with the default [Ctx.off] the loop is
   the bare claim-run-record it always was. *)

let default_workers () =
  match Sys.getenv_opt "OCGRA_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let resolve workers n =
  let w = match workers with Some w -> max 1 w | None -> default_workers () in
  min w (max 1 n)

(* Shared worker loop: claim, run, record.  [on_done] lets Race hook
   winner election onto task completion without a second pool. *)
let drain ?(obs = Ocgra_obs.Ctx.off) ~workers ~on_done (tasks : (unit -> 'a) array) =
  let n = Array.length tasks in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let traced = Ocgra_obs.Ctx.enabled obs in
  let worker w () =
    let counter = if traced then Printf.sprintf "pool.tasks.w%d" w else "" in
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        if traced then Ocgra_obs.Ctx.incr obs counter;
        let body () =
          try Ok (tasks.(i) ())
          with e -> Error (e, Printexc.get_raw_backtrace ())
        in
        let r =
          if traced then
            Ocgra_obs.Ctx.span obs ~cat:"pool" (Printf.sprintf "pool:task-%d" i) body
          else body ()
        in
        results.(i) <- Some r;
        (match r with Ok v -> on_done i v | Error _ -> ());
        loop ()
      end
    in
    loop ()
  in
  if workers <= 1 || n <= 1 then worker 0 ()
  else begin
    let domains = Array.init (workers - 1) (fun k -> Domain.spawn (worker (k + 1))) in
    worker 0 ();
    Array.iter Domain.join domains
  end;
  (* surface the lowest-index failure, then unwrap in task order *)
  Array.iter
    (function
      | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
      | Some (Ok _) | None -> ())
    results;
  Array.map
    (function
      | Some (Ok v) -> v
      | Some (Error _) | None ->
          assert false (* every index < n is claimed exactly once *))
    results

let run ?workers ?obs tasks =
  drain ?obs ~workers:(resolve workers (Array.length tasks)) ~on_done:(fun _ _ -> ()) tasks

let map_list ?workers ?obs f xs =
  Array.to_list (run ?workers ?obs (Array.map (fun x () -> f x) (Array.of_list xs)))

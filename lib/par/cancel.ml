(* One-way cancellation flag: a single [Atomic.t bool] that only ever
   goes from false to true.  Engines poll it through [hook], which has
   the exact shape of the [should_stop] closures already threaded into
   every solver, so cancellation rides the same checkpoints wall-clock
   deadlines do. *)

type t = bool Atomic.t

let create () = Atomic.make false
let set t = Atomic.set t true
let is_set t = Atomic.get t
let hook t () = Atomic.get t

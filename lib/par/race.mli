(** Portfolio racing: run competing thunks concurrently, elect the
    first acceptable result, and cancel the rest.

    The race never kills a domain: losers observe [cancel] through
    their own [should_stop]-style polling (compose it into the stop
    signal you hand each competitor) and return their best partial
    answer, so [run] always yields one result per thunk — the loser
    trail a caller needs for diagnostics.  The winner is the first
    competitor *by completion time* whose result satisfies [accept];
    when competitors finish near-simultaneously the election is decided
    by a single compare-and-set, so exactly one wins. *)

(** [run ?workers ~cancel ~accept thunks] evaluates every thunk (at
    most [workers] concurrently), sets [cancel] as soon as some result
    satisfies [accept], and returns all results in thunk order plus
    the winner's index, if any.  With one worker the thunks run
    sequentially in order — [cancel] is still set by the first
    acceptable result, so later thunks see it and return quickly.
    If a thunk raises, the lowest-index exception is re-raised after
    the pool drains. *)
val run :
  ?workers:int ->
  ?obs:Ocgra_obs.Ctx.t ->
  cancel:Cancel.t ->
  accept:('a -> bool) ->
  (unit -> 'a) array ->
  'a array * int option

(** Monotonic time for the supervision layer.  [Ocgra_core.Deadline]
    reads the same clock; this copy exists because lib/core depends on
    lib/par, not the other way around. *)

(** Seconds on CLOCK_MONOTONIC (arbitrary epoch; only differences are
    meaningful). *)
val now : unit -> float

(** [sleep_unless ~until s] sleeps [s] seconds in sub-millisecond
    slices, returning early (with [false]) as soon as [until ()] is
    true; [true] means the full duration elapsed. *)
val sleep_unless : until:(unit -> bool) -> float -> bool

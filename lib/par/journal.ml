(* Append-only, crash-safe result journal.

   One line per completed unit of work (the caller chooses the
   format — campaigns and the bench sweep both write single-line JSON
   records).  Appends are mutex-serialised because they arrive from
   worker domains, and the file is fsync'd every [fsync_every] lines
   plus once on close, so a SIGKILL loses at most the last unsynced
   batch and at most one *torn* line — which is why [read_lines]
   surfaces raw lines and leaves "ignore what does not parse" to the
   caller: the torn tail of a crashed run must read as absent work,
   not as an error. *)

type t = {
  fd : Unix.file_descr;
  oc : out_channel;
  mutex : Mutex.t;
  fsync_every : int;
  mutable unsynced : int;
  mutable appended : int;
}

let open_append ?(fresh = false) ?(fsync_every = 16) path =
  if fsync_every < 1 then invalid_arg "Journal.open_append: fsync_every < 1";
  let flags =
    Unix.O_WRONLY :: Unix.O_CREAT :: (if fresh then [ Unix.O_TRUNC ] else [ Unix.O_APPEND ])
  in
  let fd = Unix.openfile path flags 0o644 in
  {
    fd;
    oc = Unix.out_channel_of_descr fd;
    mutex = Mutex.create ();
    fsync_every;
    unsynced = 0;
    appended = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let sync_locked t =
  flush t.oc;
  Unix.fsync t.fd;
  t.unsynced <- 0

let append t line =
  locked t (fun () ->
      output_string t.oc line;
      output_char t.oc '\n';
      t.appended <- t.appended + 1;
      t.unsynced <- t.unsynced + 1;
      if t.unsynced >= t.fsync_every then sync_locked t)

let appended t = locked t (fun () -> t.appended)
let sync t = locked t (fun () -> sync_locked t)

let close t =
  locked t (fun () ->
      sync_locked t;
      close_out t.oc (* closes the underlying fd too *))

let read_lines path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let len = in_channel_length ic in
        let body = really_input_string ic len in
        (* a crash can leave a final line without its newline; keep it —
           the caller's parser decides whether it is whole *)
        String.split_on_char '\n' body |> List.filter (fun l -> l <> ""))
  end

(** Append-only, crash-safe result journal: one caller-formatted line
    per completed unit of work, appended from any domain (appends are
    mutex-serialised), fsync'd every [fsync_every] lines and on close.
    A SIGKILL therefore loses at most the last unsynced batch and at
    most one torn line; {!read_lines} returns raw lines and the
    caller's parser skips what does not parse, so a crashed run's
    journal replays as "that work is absent", never as corruption. *)

type t

(** [open_append path] opens (creating if needed) for appending;
    [~fresh:true] truncates first — starting a new run over an old
    journal.  [fsync_every] defaults to 16; raises [Invalid_argument]
    below 1. *)
val open_append : ?fresh:bool -> ?fsync_every:int -> string -> t

(** Append one line (the newline is added here).  Domain-safe. *)
val append : t -> string -> unit

(** Lines appended through this handle (not lines already on disk). *)
val appended : t -> int

(** Force the pending batch to disk now. *)
val sync : t -> unit

(** Sync and close. *)
val close : t -> unit

(** All non-empty lines of [path]; [[]] when the file does not exist.
    The final line may be torn (crash mid-write) — callers must treat
    an unparsable line as absent work. *)
val read_lines : string -> string list

(** Fault-tolerant execution over the Domain pool: per-task outcomes
    instead of raise-through, bounded seeded retries with exponential
    backoff + jitter, per-try watchdogs, and a quarantine list so a
    deterministically-poisonous task degrades the result set instead
    of killing the run.

    {!Pool.run} keeps its strict policy (one raising task re-raises
    after the drain) for callers whose result is meaningless without
    every task; campaigns and sweeps that want partial results run
    here instead.  Thunks handed to the pool by this layer never
    raise, so the two policies compose without surprises.

    Determinism: with deterministic tasks and a seeded {!Chaos.t}, the
    outcome array, try counts and quarantine list are pure functions
    of the inputs — worker count and scheduling never show through. *)

type 'a outcome =
  | Ok of 'a
  | Failed of exn  (** exhausted retries; carries the last exception *)
  | Timed_out  (** last try raised after its watchdog expired *)
  | Cancelled  (** the shared cancel flag fired first *)

val outcome_to_string : _ outcome -> string

type policy = {
  retries : int;  (** extra tries after the first (>= 0) *)
  backoff_s : float;  (** sleep before retry k is [backoff_s * factor^k] ... *)
  backoff_factor : float;
  jitter : float;  (** ... spread by ±[jitter] from a per-task seeded stream *)
  timeout_s : float option;  (** per-try watchdog, observed via the task's stop hook *)
  seed : int;  (** keys the jitter streams *)
}

(** 2 retries, 2 ms base backoff doubling per try, ±25% jitter, no
    watchdog. *)
val default_policy : policy

type 'a summary = {
  outcomes : 'a outcome array;  (** one per task, in task order *)
  tries : int array;  (** tries actually started per task (0 if cancelled first) *)
  retried : int;  (** total extra tries across all tasks *)
  quarantined : int list;  (** ascending indices that exhausted every try *)
}

(** The [Ok] payloads in task order — the degraded result set. *)
val ok_results : 'a summary -> 'a list

(** [run tasks] evaluates each [task] as [task stop] on the pool
    (worker semantics as {!Pool.run}).  [stop] turns true when the
    per-try watchdog ([policy.timeout_s]) runs out or [cancel] fires;
    tasks should poll it at their checkpoints, exactly like a
    [Deadline.should_stop].  A raising try is retried after a
    cancellation-aware backoff sleep; a try that raises after its
    watchdog expired is classified [Timed_out] (the stop signal gets
    the blame, as in the mapper harness).  [chaos] injects seeded
    failures/delays per (task, try) — see {!Chaos}.  A live [obs]
    tallies [supervise.retries], [supervise.ok], [supervise.failed],
    [supervise.timed_out], [supervise.cancelled] and
    [supervise.quarantined], and records a [supervise:retry-<i>#<k>]
    span per retry.  Raises [Invalid_argument] on a negative retry
    count. *)
val run :
  ?workers:int ->
  ?obs:Ocgra_obs.Ctx.t ->
  ?policy:policy ->
  ?cancel:Cancel.t ->
  ?chaos:Chaos.t ->
  ((unit -> bool) -> 'a) array ->
  'a summary

(** A cancellation flag shared between domains.

    One writer (whoever decides the work is moot — a race winner, a
    shutting-down server) sets it; any number of engines poll it
    through the [hook] closure, which has the same [unit -> bool] shape
    as [Ocgra_core.Deadline.should_stop] so the two compose into one
    stop signal.  Setting is idempotent and the flag never resets:
    cancellation only ever travels from [false] to [true]. *)

type t

val create : unit -> t

(** Request cancellation (idempotent, safe from any domain). *)
val set : t -> unit

val is_set : t -> bool

(** [hook t] is a poll closure for engines: [hook t () = is_set t]. *)
val hook : t -> unit -> bool

(* First-acceptable-result election on top of the pool's worker loop.

   The winner slot is an atomic index; the first domain whose result
   passes [accept] claims it with compare-and-set and trips the shared
   cancellation flag.  Everything else — task claiming, result
   placement, exception policy — is [Pool.drain]. *)

let run ?workers ?obs ~cancel ~accept (thunks : (unit -> 'a) array) =
  let n = Array.length thunks in
  let winner = Atomic.make (-1) in
  let on_done i v =
    if accept v && Atomic.compare_and_set winner (-1) i then Cancel.set cancel
  in
  let results =
    Pool.drain ?obs ~workers:(Pool.resolve workers n) ~on_done thunks
  in
  let w = Atomic.get winner in
  (results, if w < 0 then None else Some w)

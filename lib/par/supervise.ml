(* Fault-tolerant execution over the Domain pool.

   [Pool.run] is deliberately strict: one raising task re-raises after
   the drain, which is right for callers whose result is meaningless
   without every task.  Long campaigns are the opposite — hours of
   Monte-Carlo or bench work must not die because one trial hit a bug,
   a transient allocation failure, or an injected chaos fault.  This
   layer gives every task a per-outcome verdict instead of
   raise-through:

   - a raising try is retried up to [policy.retries] extra times, with
     seeded exponential backoff + jitter between tries (the jitter
     stream is keyed on (policy.seed, task), so it never depends on
     scheduling);
   - each try runs under an optional watchdog: the task's [stop] hook
     turns true when the per-try budget [policy.timeout_s] runs out or
     the shared [cancel] flag fires, and a try that *raises* after its
     watchdog expired is classified [Timed_out] (blame the stop signal
     that was up — the same attribution rule the mapper harness uses);
   - a task that exhausts every try lands on the quarantine list and
     degrades the result set ([Failed]/[Timed_out] in its slot) instead
     of aborting the run;
   - a fired [cancel] stops everything promptly — including mid-backoff
     — and the not-yet-finished tasks report [Cancelled].

   Determinism: given deterministic tasks and a seeded [chaos], the
   outcome array, per-task try counts and quarantine list are all pure
   functions of the inputs — worker count and interleaving never show
   through, which CI asserts the same way it does for campaign
   reports.  Thunks handed to the pool never raise (every exception is
   caught and classified here), so the strict pool policy below is
   never triggered. *)

type 'a outcome =
  | Ok of 'a
  | Failed of exn (* exhausted retries; the last exception *)
  | Timed_out (* last try raised after its watchdog expired *)
  | Cancelled (* the shared cancel flag fired first *)

let outcome_to_string = function
  | Ok _ -> "ok"
  | Failed e -> "failed: " ^ Printexc.to_string e
  | Timed_out -> "timed out"
  | Cancelled -> "cancelled"

type policy = {
  retries : int;
  backoff_s : float;
  backoff_factor : float;
  jitter : float;
  timeout_s : float option;
  seed : int;
}

let default_policy =
  {
    retries = 2;
    backoff_s = 0.002;
    backoff_factor = 2.0;
    jitter = 0.25;
    timeout_s = None;
    seed = 0x5AFE;
  }

type 'a summary = {
  outcomes : 'a outcome array;
  tries : int array;
  retried : int;
  quarantined : int list;
}

let ok_results s =
  Array.to_list s.outcomes
  |> List.filter_map (function Ok v -> Some v | Failed _ | Timed_out | Cancelled -> None)

(* Backoff before retry [try_no + 1]: exponential in the try index,
   jittered by a per-task stream so a storm of simultaneous failures
   does not retry in lockstep. *)
let backoff_duration policy jrng try_no =
  let base = policy.backoff_s *. (policy.backoff_factor ** float_of_int try_no) in
  let spread = 1.0 +. (policy.jitter *. ((2.0 *. Ocgra_util.Rng.float jrng 1.0) -. 1.0)) in
  Float.max 0.0 (base *. spread)

let run ?workers ?(obs = Ocgra_obs.Ctx.off) ?(policy = default_policy) ?cancel
    ?(chaos = Chaos.none) (tasks : ((unit -> bool) -> 'a) array) =
  if policy.retries < 0 then invalid_arg "Supervise.run: negative retry count";
  let n = Array.length tasks in
  let cancelled () = match cancel with None -> false | Some c -> Cancel.is_set c in
  let max_tries = 1 + policy.retries in
  let tries = Array.make n 0 in
  let traced = Ocgra_obs.Ctx.enabled obs in
  let thunk i () =
    let task = tasks.(i) in
    let jrng = Ocgra_util.Rng.create (policy.seed lxor (i * 0x9E3779B9) lxor 0x5C13) in
    let rec go try_no =
      if cancelled () then Cancelled
      else begin
        tries.(i) <- try_no + 1;
        let watchdog =
          match policy.timeout_s with None -> None | Some s -> Some (Clock.now () +. s)
        in
        let stop () =
          cancelled ()
          || (match watchdog with None -> false | Some w -> Clock.now () > w)
        in
        let attempt () =
          try
            Chaos.perturb ~obs chaos ~stop ~task:i ~try_no;
            `Returned (task stop)
          with e -> `Raised e
        in
        let result =
          if traced && try_no > 0 then
            Ocgra_obs.Ctx.span obs ~cat:"supervise"
              (Printf.sprintf "supervise:retry-%d#%d" i try_no)
              attempt
          else attempt ()
        in
        match result with
        | `Returned v -> Ok v
        | `Raised e ->
            let timed_out =
              match watchdog with None -> false | Some w -> Clock.now () > w
            in
            if cancelled () then Cancelled
            else if try_no + 1 < max_tries then begin
              Ocgra_obs.Ctx.incr obs "supervise.retries";
              let d = backoff_duration policy jrng try_no in
              (* the duration is a pure function of (seed, task, try),
                 so the histogram stays deterministic across worker
                 counts even though it is recorded mid-flight *)
              Ocgra_obs.Ctx.observe obs "supervise.backoff_us" (int_of_float (d *. 1e6));
              if Clock.sleep_unless ~until:cancelled d
              then go (try_no + 1)
              else Cancelled (* cancellation interrupted the backoff sleep *)
            end
            else if timed_out then Timed_out
            else Failed e
      end
    in
    go 0
  in
  let outcomes = Pool.run ?workers ~obs (Array.init n thunk) in
  let retried =
    Array.fold_left (fun acc t -> acc + max 0 (t - 1)) 0 tries
  in
  let quarantined =
    List.rev
      (Array.to_list outcomes
      |> List.mapi (fun i o -> (i, o))
      |> List.fold_left
           (fun acc (i, o) ->
             match o with Failed _ | Timed_out -> i :: acc | Ok _ | Cancelled -> acc)
           [])
  in
  (* anomalies only, emitted post-hoc in task-index order from the
     outcome array — never from inside the racing domains — so the
     event log is independent of worker count and interleaving *)
  Array.iteri
    (fun i o ->
      if tries.(i) > 1 || (match o with Ok _ -> false | _ -> true) then
        Ocgra_obs.Ctx.event obs ~cat:"supervise" "supervise.task"
          [
            ("task", Ocgra_obs.Events.Int i);
            ("tries", Ocgra_obs.Events.Int tries.(i));
            ("outcome", Ocgra_obs.Events.Str (outcome_to_string o));
          ])
    outcomes;
  let tally f = Array.fold_left (fun acc o -> if f o then acc + 1 else acc) 0 outcomes in
  Ocgra_obs.Ctx.add obs "supervise.ok" (tally (function Ok _ -> true | _ -> false));
  Ocgra_obs.Ctx.add obs "supervise.failed" (tally (function Failed _ -> true | _ -> false));
  Ocgra_obs.Ctx.add obs "supervise.timed_out" (tally (function Timed_out -> true | _ -> false));
  Ocgra_obs.Ctx.add obs "supervise.cancelled" (tally (function Cancelled -> true | _ -> false));
  Ocgra_obs.Ctx.add obs "supervise.quarantined" (List.length quarantined);
  { outcomes; tries; retried; quarantined }

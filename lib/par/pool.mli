(** A work-stealing-free domain pool: parallel evaluation of an array
    of independent thunks on stdlib [Domain]s (OCaml 5, no domainslib).

    Tasks are claimed from a shared atomic counter, so the pool load
    balances uneven tasks; results land at the index of their thunk, so
    the output order never depends on scheduling.  With one worker (or
    one task) no domain is spawned and evaluation is today's sequential
    loop — callers degrade gracefully on a 1-core host.

    Thread-safety contract for thunks: they run concurrently on
    separate domains, so they must not share mutable state (in
    particular, never a shared [Ocgra_util.Rng.t] — split it, or
    pre-draw seeds, before the fan-out; see rng.mli). *)

(** Worker count used when [?workers] is omitted: the [OCGRA_JOBS]
    environment variable if set to a positive integer, else
    [Domain.recommended_domain_count ()]. *)
val default_workers : unit -> int

(** [run ?workers tasks] evaluates every thunk and returns their
    results in task order.  If any task raises, the first (lowest
    index) exception is re-raised after all workers have drained —
    the strict policy, for callers whose result is meaningless
    without every task.  Callers that want partial results under
    failure (campaigns, bench sweeps) run through {!Supervise}
    instead, which retries, quarantines and never re-raises.
    [workers] is clamped to at least 1 and never exceeds the task
    count.  A live [?obs] records one span per task (on the claiming
    worker's domain lane) and a [pool.tasks.w<k>] claim counter per
    worker; the default {!Ocgra_obs.Ctx.off} costs one branch. *)
val run : ?workers:int -> ?obs:Ocgra_obs.Ctx.t -> (unit -> 'a) array -> 'a array

(** [map_list ?workers f xs] is [List.map f xs] with the applications
    sharded across the pool (order preserved). *)
val map_list : ?workers:int -> ?obs:Ocgra_obs.Ctx.t -> ('a -> 'b) -> 'a list -> 'b list

(**/**)

(** Internal: resolve an optional worker request against the default
    and a task count. *)
val resolve : int option -> int -> int

(** Internal plumbing shared with {!Race}: [workers] must already be
    resolved; [on_done i v] runs on the worker domain right after task
    [i] returns [v] (not called for raising tasks). *)
val drain :
  ?obs:Ocgra_obs.Ctx.t ->
  workers:int ->
  on_done:(int -> 'a -> unit) ->
  (unit -> 'a) array ->
  'a array

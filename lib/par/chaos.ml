(* Seeded chaos injection for the supervised execution layer.

   A [t] describes a synthetic fault load: with probability
   [fail_rate] a try raises [Injected_failure] instead of running,
   and with probability [delay_rate] it first sleeps [delay_s]
   (cooperatively — a delay aborted by the stop hook raises
   [Injected_delay], which is how a "timeout storm" trips per-try
   watchdogs).  Every draw is keyed on (seed, task, try_no) through
   its own splitmix stream, so the injected fault pattern is a pure
   function of the configuration — independent of worker count,
   scheduling, or how many other tasks run — which is what lets tests
   assert that a chaos-laden campaign produces the *same* report as a
   chaos-free one once retries mask the injections. *)

type t = {
  seed : int;
  fail_rate : float;
  delay_rate : float;
  delay_s : float;
}

exception Injected_failure of int * int (* task, try_no *)
exception Injected_delay of int * int (* task, try_no: delay cut short by the stop hook *)

let none = { seed = 0; fail_rate = 0.0; delay_rate = 0.0; delay_s = 0.0 }

let make ?(fail_rate = 0.0) ?(delay_rate = 0.0) ?(delay_s = 0.002) ~seed () =
  if fail_rate < 0.0 || fail_rate > 1.0 then invalid_arg "Chaos.make: fail_rate outside [0, 1]";
  if delay_rate < 0.0 || delay_rate > 1.0 then invalid_arg "Chaos.make: delay_rate outside [0, 1]";
  if delay_s < 0.0 then invalid_arg "Chaos.make: negative delay_s";
  { seed; fail_rate; delay_rate; delay_s }

let enabled t = t.fail_rate > 0.0 || t.delay_rate > 0.0

(* One private stream per (task, try): draws never cross domains and
   never depend on the order other tasks run in. *)
let stream t ~task ~try_no =
  Ocgra_util.Rng.create (t.seed lxor (task * 0x9E3779B9) lxor (try_no * 0x85EB_CA6B) lxor 0xC4A05)

let perturb ?(obs = Ocgra_obs.Ctx.off) t ~stop ~task ~try_no =
  if enabled t then begin
    let r = stream t ~task ~try_no in
    (* fixed draw order — delay then failure — so adding one kind of
       chaos never reshuffles the other kind's pattern *)
    let delayed = Ocgra_util.Rng.float r 1.0 < t.delay_rate in
    let failed = Ocgra_util.Rng.float r 1.0 < t.fail_rate in
    if delayed then begin
      Ocgra_obs.Ctx.incr obs "chaos.delays";
      if not (Clock.sleep_unless ~until:stop t.delay_s) then
        raise (Injected_delay (task, try_no))
    end;
    if failed then begin
      Ocgra_obs.Ctx.incr obs "chaos.failures";
      raise (Injected_failure (task, try_no))
    end
  end

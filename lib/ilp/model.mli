(** Modeling layer over the LP/MILP solvers: named variables, sparse
    linear terms, upper bounds; the ILP mappers write their
    formulations against this. *)

type var = int
type t

val create : ?maximize:bool -> unit -> t

(** Fresh non-negative variable ([ub] adds a bound row). *)
val add_var : ?kind:Ilp.var_kind -> ?ub:float -> t -> string -> var

(** Integer in \[0, 1\]. *)
val binary : t -> string -> var

val integer : ?ub:float -> t -> string -> var

(** [add_constraint t terms rel rhs] posts [sum c_i x_i rel rhs]. *)
val add_constraint : t -> (float * var) list -> Lp.relation -> float -> unit

val set_objective : t -> (float * var) list -> unit
val var_name : t -> var -> string

type outcome =
  | Optimal of float
  | Feasible of float
  | Infeasible
  | Unbounded
  | Limit

(** Returns the outcome, the rounded integer solution when one exists,
    and the branch & bound statistics. *)
val solve :
  ?max_nodes:int ->
  ?should_stop:(unit -> bool) ->
  t ->
  outcome * int array option * Ilp.stats

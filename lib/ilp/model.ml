(* Modeling layer: named variables, linear expressions, and constraint
   building on top of the raw LP/ILP solvers.  The ILP mappers write
   their formulations against this interface. *)

type var = int

type t = {
  mutable names : string list; (* reversed *)
  mutable n : int;
  mutable kinds : Ilp.var_kind list; (* reversed *)
  mutable ubs : (var * float) list;
  mutable rows : ((float * var) list * Lp.relation * float) list;
  mutable objective : (float * var) list;
  mutable maximize : bool;
}

let create ?(maximize = false) () =
  { names = []; n = 0; kinds = []; ubs = []; rows = []; objective = []; maximize }

let add_var ?(kind = Ilp.Continuous) ?ub t name =
  let v = t.n in
  t.n <- v + 1;
  t.names <- name :: t.names;
  t.kinds <- kind :: t.kinds;
  (match ub with Some u -> t.ubs <- (v, u) :: t.ubs | None -> ());
  v

let binary t name =
  add_var ~kind:Ilp.Integer ~ub:1.0 t name

let integer ?ub t name = add_var ~kind:Ilp.Integer ?ub t name

let add_constraint t terms rel rhs = t.rows <- (terms, rel, rhs) :: t.rows

let set_objective t terms = t.objective <- terms

let var_name t v = List.nth (List.rev t.names) v

let densify t terms =
  let coeffs = Array.make t.n 0.0 in
  List.iter
    (fun (c, v) ->
      if v < 0 || v >= t.n then invalid_arg "Model: unknown variable";
      coeffs.(v) <- coeffs.(v) +. c)
    terms;
  coeffs

type outcome =
  | Optimal of float
  | Feasible of float
  | Infeasible
  | Unbounded
  | Limit

let solve ?max_nodes ?should_stop t =
  let rows =
    List.rev_map (fun (terms, rel, rhs) -> (densify t terms, rel, rhs)) t.rows
    @ List.map
        (fun (v, u) ->
          let coeffs = Array.make t.n 0.0 in
          coeffs.(v) <- 1.0;
          (coeffs, Lp.Le, u))
        t.ubs
  in
  let lp =
    { Lp.n = t.n; maximize = t.maximize; objective = densify t t.objective; rows }
  in
  let kinds = Array.of_list (List.rev t.kinds) in
  let outcome, stats = Ilp.solve ?max_nodes ?should_stop { lp; kinds } in
  let wrap value solution =
    let value_of v = solution.(v) in
    let int_value_of v = int_of_float (Float.round solution.(v)) in
    (value_of, int_value_of, value)
  in
  match outcome with
  | Ilp.Optimal { value; solution } ->
      let _, int_value_of, _ = wrap value solution in
      (Optimal value, Some (Array.init t.n (fun v -> int_value_of v)), stats)
  | Ilp.Feasible { value; solution } ->
      let _, int_value_of, _ = wrap value solution in
      (Feasible value, Some (Array.init t.n (fun v -> int_value_of v)), stats)
  | Ilp.Infeasible -> (Infeasible, None, stats)
  | Ilp.Unbounded -> (Unbounded, None, stats)
  | Ilp.Limit -> (Limit, None, stats)

(** Mixed-integer programming by branch & bound on the LP relaxation:
    most-fractional branching, depth-first with incumbent pruning, a
    node budget and a caller-supplied stop signal so the exact mappers
    degrade gracefully.  The solver keeps no clock of its own: time
    budgets arrive through [should_stop], built from a monotonic
    [Ocgra_core.Deadline] (the old private [Sys.time] deadline measured
    CPU time, which a sleeping solver never spends and parallel worker
    domains spend many times too fast). *)

type var_kind = Continuous | Integer

type problem = {
  lp : Lp.problem;
  kinds : var_kind array;  (** length [lp.n] *)
}

type outcome =
  | Optimal of { value : float; solution : float array }
  | Feasible of { value : float; solution : float array }
      (** budget hit with an incumbent in hand *)
  | Infeasible
  | Unbounded
  | Limit  (** budget hit, no incumbent *)

type stats = {
  mutable nodes : int;
  mutable lp_solves : int;
  mutable pruned : int;  (** nodes dominated by the incumbent's bound *)
  mutable improved : int;  (** incumbent replacements (bound improvements) *)
  mutable max_depth : int;
  depth_counts : int array;
      (** 64 cells: nodes by branch depth (exact, tail bucket at 63) —
          the node-depth distribution the mapper wrappers flush into
          observability histograms *)
}

(** [should_stop] is polled once per branch-and-bound node (each node
    already pays an LP solve, so the hook is off the hot path). *)
val solve : ?max_nodes:int -> ?should_stop:(unit -> bool) -> problem -> outcome * stats

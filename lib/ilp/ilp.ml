(* Mixed 0/1-integer linear programming by branch & bound on the LP
   relaxation: most-fractional branching, depth-first with best-bound
   pruning, node and wall-clock budgets so the exact mappers degrade
   gracefully instead of hanging on big kernels. *)

(* There is deliberately no clock in here: the solver once kept a
   private [Sys.time ()] deadline, but that is CPU time — a solver
   that sleeps or pages was unbounded, and once worker domains run in
   parallel CPU time sums across cores, expiring budgets early.  Time
   budgets now arrive exclusively through [should_stop], built by the
   caller from a monotonic [Ocgra_core.Deadline]. *)

type var_kind = Continuous | Integer

type problem = {
  lp : Lp.problem;
  kinds : var_kind array; (* length lp.n *)
}

type outcome =
  | Optimal of { value : float; solution : float array }
  | Feasible of { value : float; solution : float array } (* budget hit with incumbent *)
  | Infeasible
  | Unbounded
  | Limit (* budget hit, no incumbent *)

type stats = {
  mutable nodes : int;
  mutable lp_solves : int;
  mutable pruned : int; (* nodes whose relaxation was dominated by the incumbent *)
  mutable improved : int; (* incumbent replacements (bound improvements) *)
  mutable max_depth : int;
  depth_counts : int array; (* nodes by branch depth (exact, tail bucket at 63);
                               flushed into Obs histograms by the mapper wrappers *)
}

let int_tol = 1e-6

let is_integral x = Float.abs (x -. Float.round x) < int_tol

let solve ?(max_nodes = 200_000) ?(should_stop = fun () -> false) (p : problem) =
  if Array.length p.kinds <> p.lp.n then invalid_arg "Ilp.solve: kinds length mismatch";
  let stats =
    { nodes = 0; lp_solves = 0; pruned = 0; improved = 0; max_depth = 0;
      depth_counts = Array.make 64 0 }
  in
  let incumbent = ref None in
  let budget_hit = ref false in
  let better value =
    match !incumbent with
    | None -> true
    | Some (best, _) -> if p.lp.maximize then value > best +. int_tol else value < best -. int_tol
  in
  (* Extra bound rows accumulated along the branch-and-bound path. *)
  let rec branch depth extra_rows =
    if stats.nodes >= max_nodes || should_stop () then budget_hit := true
    else begin
      stats.nodes <- stats.nodes + 1;
      stats.lp_solves <- stats.lp_solves + 1;
      let di = min depth 63 in
      stats.depth_counts.(di) <- stats.depth_counts.(di) + 1;
      if depth > stats.max_depth then stats.max_depth <- depth;
      let lp = { p.lp with rows = p.lp.rows @ extra_rows } in
      match Lp.solve lp with
      | Lp.Infeasible -> ()
      | Lp.Unbounded ->
          (* With binary/integer bound rows present this means the
             continuous part is unbounded; treat as a hard failure. *)
          raise Exit
      | Lp.Optimal { value; solution } ->
          let dominated =
            match !incumbent with
            | None -> false
            | Some (best, _) ->
                if p.lp.maximize then value <= best +. int_tol else value >= best -. int_tol
          in
          if dominated then stats.pruned <- stats.pruned + 1
          else begin
            (* find most fractional integer variable *)
            let frac_var = ref (-1) and frac_dist = ref 0.0 in
            Array.iteri
              (fun j kind ->
                if kind = Integer && not (is_integral solution.(j)) then begin
                  let f = solution.(j) -. Float.of_int (int_of_float (Float.floor solution.(j))) in
                  let d = Float.abs (f -. 0.5) in
                  if !frac_var < 0 || d < !frac_dist then begin
                    frac_var := j;
                    frac_dist := d
                  end
                end)
              p.kinds;
            if !frac_var < 0 then begin
              (* integral: new incumbent *)
              if better value then begin
                stats.improved <- stats.improved + 1;
                incumbent := Some (value, Array.copy solution)
              end
            end
            else begin
              let j = !frac_var in
              let x = solution.(j) in
              let fl = Float.floor x and ce = Float.ceil x in
              let row v rel =
                let coeffs = Array.make p.lp.n 0.0 in
                coeffs.(j) <- 1.0;
                (coeffs, rel, v)
              in
              (* explore the side closer to the LP value first *)
              if x -. fl < ce -. x then begin
                branch (depth + 1) (row fl Lp.Le :: extra_rows);
                branch (depth + 1) (row ce Lp.Ge :: extra_rows)
              end
              else begin
                branch (depth + 1) (row ce Lp.Ge :: extra_rows);
                branch (depth + 1) (row fl Lp.Le :: extra_rows)
              end
            end
          end
    end
  in
  match branch 0 [] with
  | () -> (
      match (!incumbent, !budget_hit) with
      | Some (value, solution), false -> (Optimal { value; solution }, stats)
      | Some (value, solution), true -> (Feasible { value; solution }, stats)
      | None, true -> (Limit, stats)
      | None, false -> (Infeasible, stats))
  | exception Exit -> (Unbounded, stats)

(** Monte-Carlo reliability campaign: N seeded fault-injection trials
    of one mapping, each classified against the reference outputs.
    The reliability axis of the repo's mapper comparisons — hardened
    and unhardened mappings of any technique are judged under the same
    injected fault load, next to the II/energy overhead hardening
    costs. *)

type trial_class =
  | Correct  (** outputs matched; no voter saw a disagreement *)
  | Masked  (** outputs matched because a TMR voter outvoted a replica *)
  | Detected  (** a comparator or the tag check caught the corruption *)
  | Sdc  (** completed with a wrong output: silent data corruption *)
  | Crash  (** the machine stopped (RF miss, bad state, ...) *)

val trial_class_to_string : trial_class -> string

(** Inverse of {!trial_class_to_string}; [None] on unknown names. *)
val trial_class_of_string : string -> trial_class option

type report = {
  trials : int;
  correct : int;
  masked : int;
  detected : int;
  sdc : int;
  crash : int;
  injected : int;  (** events drawn across all trials *)
  applied : int;  (** events that struck live state (completed trials) *)
  quarantined : int;
      (** trials whose task kept raising through every supervised
          retry — degraded coverage, not campaign death *)
}

val sdc_rate : report -> float
val masked_rate : report -> float
val detected_rate : report -> float
val crash_rate : report -> float
val to_string : report -> string

(** First cycle strictly after the last instruction of the run; the
    window transient events are drawn over. *)
val horizon : Ocgra_core.Mapping.t -> iters:int -> int

(** Classify a single trial under the given bombardment.  The stats
    are available only for completed (non-raising) runs. *)
val classify :
  Ocgra_core.Problem.t ->
  Ocgra_core.Mapping.t ->
  io:Machine.io ->
  iters:int ->
  expected:(string * int list) list ->
  transients:Ocgra_arch.Fault.transient list ->
  trial_class * Machine.transient_stats option

(** Crash-safe checkpointing for {!run_campaign}: journal every
    completed trial to [path] (one JSON line, fsync'd in batches) and,
    with [resume], replay an existing journal first — its header must
    match the campaign exactly and every journaled seed must equal the
    pre-drawn seed of its trial (exactly-once-per-seed), or
    [Invalid_argument] is raised.  Replayed trials are skipped, never
    re-simulated or re-journaled, so a SIGKILL'd campaign resumed from
    its journal produces a byte-identical report. *)
type checkpoint = { path : string; resume : bool }

(** [run_campaign p m ~mk_io ~iters ~expected ~trials ~rate ~seed]
    executes [trials] independent seeded trials at per-(PE, cycle)
    event probability [rate], sharded across [workers] domains
    (default {!Ocgra_par.Pool.default_workers}).  All per-trial seeds
    are pre-drawn from the campaign RNG before the fan-out and the
    per-trial results are folded in trial order, so the report is
    bit-identical for every worker count — deterministic in [seed]
    alone.  [mk_io] must build a fresh io per trial (Store ops mutate
    memory) and is called from worker domains, so it must not close
    over unsynchronised mutable state.  Raises [Invalid_argument] on a
    negative trial count.

    Trials run under {!Ocgra_par.Supervise}: a raising trial is
    retried up to [retries] times (seeded backoff) and a
    deterministically-poisonous one lands in [report.quarantined]
    instead of aborting the campaign.  [chaos] injects seeded
    synthetic failures/delays per (trial, try) — a trial's record is a
    pure function of its pre-drawn seed, so retries that mask every
    injection reproduce the chaos-free report exactly.  [checkpoint]
    journals and resumes; see {!checkpoint}.

    [obs] records one span over the fan-out, the campaign tallies
    ([campaign.trials], [campaign.correct], [campaign.masked],
    [campaign.detected], [campaign.sdc], [campaign.crash],
    [campaign.injected], [campaign.applied], [campaign.resumed],
    [campaign.quarantined], [checkpoint.journaled]) and the
    supervision counters ([supervise.retries], [supervise.ok], ...).  *)
val run_campaign :
  ?workers:int ->
  ?obs:Ocgra_obs.Ctx.t ->
  ?retries:int ->
  ?chaos:Ocgra_par.Chaos.t ->
  ?checkpoint:checkpoint ->
  Ocgra_core.Problem.t ->
  Ocgra_core.Mapping.t ->
  mk_io:(unit -> Machine.io) ->
  iters:int ->
  expected:(string * int list) list ->
  trials:int ->
  rate:float ->
  seed:int ->
  report

(** {2 Survivor campaign} — graceful degradation under an escalating
    permanent-fault sequence, mapped through {!Ocgra_core.Repair}. *)

type survivor_step = {
  step : int;  (** permanent faults injected at this step *)
  rung : Ocgra_core.Mapper.rung option;
      (** certifying ladder rung; [None] = this step failed *)
  ii : int option;  (** survivor's II, when certified *)
  repair_s : float;  (** wall clock of the ladder *)
  scratch_s : float option;  (** wall clock of the cold remap, when measured *)
  scratch_ok : bool;  (** the cold remap also found a mapping *)
  replayed : bool;  (** survivor replayed correctly on the simulator *)
  note : string;
}

type survivor_report = {
  steps : survivor_step list;  (** in walk order; ends at the failure step *)
  survived : int;  (** highest fault count with a certified, replayed survivor *)
  certified_failure : int option;
      (** first fault count no rung could certify; [None] = walked out *)
  ii_curve : (int * int) list;  (** (fault count, II) per surviving step *)
  repair_vs_scratch : float option;
      (** median of scratch-time / repair-time over surviving steps *)
}

val survivor_step_to_string : survivor_step -> string
val survivor_to_string : survivor_report -> string

(** [run_survivor ~chain p m0 ~mk_io ~iters ~expected ~steps ~seed]
    walks an escalating seeded permanent-fault sequence on [p]'s (clean)
    array: step [k] re-masks the fabric with
    [Cgra.inject_faults ~seed ~n:k] — sequential draws, so each mask
    strictly contains the previous one — and salvages the previous
    step's mapping through {!Ocgra_core.Repair.repair} with [chain] as
    the fallback race, then replays the survivor on the cycle-accurate
    simulator against [expected].  The walk stops at the first step
    with no certified, correctly-replaying mapping (the certified
    failure point) or after [steps] steps.

    Unless [~scratch:false], every step also cold-remaps with
    {!Ocgra_core.Mapper.Harness.race} on the same mask to price the
    repair against a from-scratch solve.  [?step_deadline_s] budgets
    each step's ladder (and each cold remap) separately.  Deterministic
    in [seed] for a single-tier [chain]; with racing fallbacks the
    failure point is stable but which tier wins is timing-dependent.

    [obs] records one [survivor:step] span per step plus
    [survivor.steps] / [survivor.survived] and everything {!repair}
    itself attributes.  Raises [Invalid_argument] on a negative step
    count. *)
val run_survivor :
  ?workers:int ->
  ?obs:Ocgra_obs.Ctx.t ->
  ?scratch:bool ->
  ?step_deadline_s:float ->
  ?max_ii_bumps:int ->
  chain:Ocgra_core.Mapper.t list ->
  Ocgra_core.Problem.t ->
  Ocgra_core.Mapping.t ->
  mk_io:(unit -> Machine.io) ->
  iters:int ->
  expected:(string * int list) list ->
  steps:int ->
  seed:int ->
  survivor_report

(** {2 Hardening overhead} — measured on clean runs of both mappings. *)

type overhead = {
  ii_base : int;
  ii_hard : int;
  ops_base : int;
  ops_hard : int;
  energy_base : float;
  energy_hard : float;
}

(** Relative overheads: hardened / baseline - 1. *)
val ii_overhead : overhead -> float

val ops_overhead : overhead -> float
val energy_overhead : overhead -> float
val overhead_to_string : overhead -> string

(** Energy of one clean run via {!Energy.of_mapping_run}. *)
val measure_energy :
  Ocgra_core.Problem.t -> Ocgra_core.Mapping.t -> mk_io:(unit -> Machine.io) -> iters:int -> float

val overhead :
  baseline:Ocgra_core.Problem.t * Ocgra_core.Mapping.t ->
  hardened:Ocgra_core.Problem.t * Ocgra_core.Mapping.t ->
  mk_io:(unit -> Machine.io) ->
  iters:int ->
  overhead

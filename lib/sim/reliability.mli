(** Monte-Carlo reliability campaign: N seeded fault-injection trials
    of one mapping, each classified against the reference outputs.
    The reliability axis of the repo's mapper comparisons — hardened
    and unhardened mappings of any technique are judged under the same
    injected fault load, next to the II/energy overhead hardening
    costs. *)

type trial_class =
  | Correct  (** outputs matched; no voter saw a disagreement *)
  | Masked  (** outputs matched because a TMR voter outvoted a replica *)
  | Detected  (** a comparator or the tag check caught the corruption *)
  | Sdc  (** completed with a wrong output: silent data corruption *)
  | Crash  (** the machine stopped (RF miss, bad state, ...) *)

val trial_class_to_string : trial_class -> string

(** Inverse of {!trial_class_to_string}; [None] on unknown names. *)
val trial_class_of_string : string -> trial_class option

type report = {
  trials : int;
  correct : int;
  masked : int;
  detected : int;
  sdc : int;
  crash : int;
  injected : int;  (** events drawn across all trials *)
  applied : int;  (** events that struck live state (completed trials) *)
  quarantined : int;
      (** trials whose task kept raising through every supervised
          retry — degraded coverage, not campaign death *)
}

val sdc_rate : report -> float
val masked_rate : report -> float
val detected_rate : report -> float
val crash_rate : report -> float
val to_string : report -> string

(** First cycle strictly after the last instruction of the run; the
    window transient events are drawn over. *)
val horizon : Ocgra_core.Mapping.t -> iters:int -> int

(** Classify a single trial under the given bombardment.  The stats
    are available only for completed (non-raising) runs. *)
val classify :
  Ocgra_core.Problem.t ->
  Ocgra_core.Mapping.t ->
  io:Machine.io ->
  iters:int ->
  expected:(string * int list) list ->
  transients:Ocgra_arch.Fault.transient list ->
  trial_class * Machine.transient_stats option

(** Crash-safe checkpointing for {!run_campaign}: journal every
    completed trial to [path] (one JSON line, fsync'd in batches) and,
    with [resume], replay an existing journal first — its header must
    match the campaign exactly and every journaled seed must equal the
    pre-drawn seed of its trial (exactly-once-per-seed), or
    [Invalid_argument] is raised.  Replayed trials are skipped, never
    re-simulated or re-journaled, so a SIGKILL'd campaign resumed from
    its journal produces a byte-identical report. *)
type checkpoint = { path : string; resume : bool }

(** [run_campaign p m ~mk_io ~iters ~expected ~trials ~rate ~seed]
    executes [trials] independent seeded trials at per-(PE, cycle)
    event probability [rate], sharded across [workers] domains
    (default {!Ocgra_par.Pool.default_workers}).  All per-trial seeds
    are pre-drawn from the campaign RNG before the fan-out and the
    per-trial results are folded in trial order, so the report is
    bit-identical for every worker count — deterministic in [seed]
    alone.  [mk_io] must build a fresh io per trial (Store ops mutate
    memory) and is called from worker domains, so it must not close
    over unsynchronised mutable state.  Raises [Invalid_argument] on a
    negative trial count.

    Trials run under {!Ocgra_par.Supervise}: a raising trial is
    retried up to [retries] times (seeded backoff) and a
    deterministically-poisonous one lands in [report.quarantined]
    instead of aborting the campaign.  [chaos] injects seeded
    synthetic failures/delays per (trial, try) — a trial's record is a
    pure function of its pre-drawn seed, so retries that mask every
    injection reproduce the chaos-free report exactly.  [checkpoint]
    journals and resumes; see {!checkpoint}.

    [obs] records one span over the fan-out, the campaign tallies
    ([campaign.trials], [campaign.correct], [campaign.masked],
    [campaign.detected], [campaign.sdc], [campaign.crash],
    [campaign.injected], [campaign.applied], [campaign.resumed],
    [campaign.quarantined], [checkpoint.journaled]) and the
    supervision counters ([supervise.retries], [supervise.ok], ...).  *)
val run_campaign :
  ?workers:int ->
  ?obs:Ocgra_obs.Ctx.t ->
  ?retries:int ->
  ?chaos:Ocgra_par.Chaos.t ->
  ?checkpoint:checkpoint ->
  Ocgra_core.Problem.t ->
  Ocgra_core.Mapping.t ->
  mk_io:(unit -> Machine.io) ->
  iters:int ->
  expected:(string * int list) list ->
  trials:int ->
  rate:float ->
  seed:int ->
  report

(** {2 Hardening overhead} — measured on clean runs of both mappings. *)

type overhead = {
  ii_base : int;
  ii_hard : int;
  ops_base : int;
  ops_hard : int;
  energy_base : float;
  energy_hard : float;
}

(** Relative overheads: hardened / baseline - 1. *)
val ii_overhead : overhead -> float

val ops_overhead : overhead -> float
val energy_overhead : overhead -> float
val overhead_to_string : overhead -> string

(** Energy of one clean run via {!Energy.of_mapping_run}. *)
val measure_energy :
  Ocgra_core.Problem.t -> Ocgra_core.Mapping.t -> mk_io:(unit -> Machine.io) -> iters:int -> float

val overhead :
  baseline:Ocgra_core.Problem.t * Ocgra_core.Mapping.t ->
  hardened:Ocgra_core.Problem.t * Ocgra_core.Mapping.t ->
  mk_io:(unit -> Machine.io) ->
  iters:int ->
  overhead

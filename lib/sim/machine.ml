(* Cycle-accurate, tag-checked execution of a mapping.

   The machine advances one cycle at a time: every FU either executes
   its scheduled operation instance or one of its route hops, reading
   operands through the same mux structure the configuration words
   encode (neighbour output register, own output register, own RF) and
   writing its output register at the end of the cycle.  Every value
   carries a (producer node, iteration) tag and every read asserts the
   tag it expects, so any routing or scheduling bug the static checker
   somehow missed turns into a simulation error instead of a silently
   wrong number.

   Loop-carried reads of iterations before the first are served from
   the kernel's initial values (standing in for the prologue that a
   peeled or predicated kernel would execute); everything else flows
   through the datapath. *)

open Ocgra_dfg
open Ocgra_core

type error = { cycle : int; pe : int; message : string }

exception Simulation_error of error

(* Raised only in the fault-injecting mode: a hardware detection
   mechanism (a DMR comparator, or the tag check standing in for a
   control-flow checker) caught corrupted state before it reached an
   output.  Distinct from [Simulation_error], which in that mode means
   the machine crashed outright. *)
exception Fault_detected of error

(* Bookkeeping of one fault-injected run. *)
type transient_stats = {
  injected : int; (* events in the campaign's list for this trial *)
  applied : int; (* events that actually struck live state *)
  corrections : int; (* voter inputs that disagreed (TMR masking at work) *)
  detections : int; (* comparator mismatches (counted before the raise) *)
}

type io = {
  input : string -> int -> int; (* stream name -> iteration -> value *)
  memory : (string, int array) Hashtbl.t;
}

let io_of_streams ?(memory = []) streams =
  let env = Eval.env_of_streams ~memory streams in
  { input = env.Eval.input; memory = env.Eval.memory }

type stats = {
  cycles : int;
  op_instances : int;
  route_instances : int;
  rf_reads : int;
  rf_writes : int;
  pe_active_cycles : int;
}

type result = {
  outputs : (string, (int * int) list) Hashtbl.t; (* name -> (iteration, value) list *)
  stats : stats;
}

let output_stream result name =
  match Hashtbl.find_opt result.outputs name with
  | None -> []
  | Some l -> List.map snd (List.sort compare l)

(* Where a read finds its value (base-iteration coordinates). *)
type source =
  | From_out of int (* output register of this PE *)
  | From_rf of int * int (* (edge index, hold from_): own register file *)

(* What a PE does at one base cycle. *)
type instr =
  | I_node of int (* DFG node *)
  | I_hop of int * source (* edge index, where the hop reads from *)

(* The machine refuses to execute on faulted resources: even if a
   mapping somehow passed (or bypassed) the static checker, a faulted
   PE, link or FU slot has no working silicon behind it.  This is an
   independent second check, deliberately not shared with Check. *)
let refuse_faults (p : Problem.t) (m : Mapping.t) =
  let cgra = p.cgra in
  if Ocgra_arch.Cgra.faults cgra <> [] then begin
    let refuse ~cycle ~pe fmt =
      Printf.ksprintf (fun message -> raise (Simulation_error { cycle; pe; message })) fmt
    in
    Array.iteri
      (fun v (pe, time) ->
        if not (Ocgra_arch.Cgra.pe_ok cgra pe) then
          refuse ~cycle:time ~pe "refusing to execute node %d on faulted PE %d (pe-down)" v pe;
        if not (Ocgra_arch.Cgra.slot_ok cgra ~pe ~ii:m.Mapping.ii ~time) then
          refuse ~cycle:time ~pe "refusing to execute node %d in dead FU slot (pe %d, slot %d)" v
            pe (((time mod m.Mapping.ii) + m.Mapping.ii) mod m.Mapping.ii))
      m.Mapping.binding;
    let dfg_edges = Array.of_list (Dfg.edges p.dfg) in
    Array.iteri
      (fun e route ->
        let cur = ref (fst m.Mapping.binding.(dfg_edges.(e).Dfg.src)) in
        List.iter
          (function
            | Mapping.Hop { pe; time } ->
                if not (Ocgra_arch.Cgra.pe_ok cgra pe) then
                  refuse ~cycle:time ~pe "refusing edge %d hop on faulted PE %d (pe-down)" e pe;
                if not (Ocgra_arch.Cgra.slot_ok cgra ~pe ~ii:m.Mapping.ii ~time) then
                  refuse ~cycle:time ~pe "refusing edge %d hop in dead FU slot on PE %d" e pe;
                if !cur <> pe && not (Ocgra_arch.Cgra.link_ok cgra !cur pe) then
                  refuse ~cycle:time ~pe "refusing edge %d hop over faulted link %d->%d" e !cur pe;
                cur := pe
            | Mapping.Hold { pe; from_; _ } ->
                if not (Ocgra_arch.Cgra.pe_ok cgra pe) then
                  refuse ~cycle:from_ ~pe "refusing edge %d hold on faulted PE %d (pe-down)" e pe)
          route)
      m.Mapping.routes
  end

let run_internal (p : Problem.t) (m : Mapping.t) (io : io) ~iters
    ~(transients : Ocgra_arch.Fault.transient list) =
  refuse_faults p m;
  let dfg = p.dfg in
  let npe = Ocgra_arch.Cgra.pe_count p.cgra in
  (* transient-event lookup tables; all empty (and free) when the list
     is, so the clean path pays one boolean test per read/write *)
  let faulty = transients <> [] in
  let flips : (int * int, int list) Hashtbl.t = Hashtbl.create 16 in
  let drops : (int * int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  (* (pe, slot) -> (first upset cycle, flipped bit): config memory
     holds state, so the earliest hit owns the slot for the rest *)
  let upsets : (int * int, int * int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      match (ev : Ocgra_arch.Fault.transient) with
      | Ocgra_arch.Fault.Bit_flip { pe; cycle; bit } ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt flips (pe, cycle)) in
          Hashtbl.replace flips (pe, cycle) (bit :: cur)
      | Ocgra_arch.Fault.Link_drop { src; dst; cycle } -> Hashtbl.replace drops (src, dst, cycle) ()
      | Ocgra_arch.Fault.Config_upset { pe; cycle; bit } -> (
          let key = (pe, ((cycle mod m.Mapping.ii) + m.Mapping.ii) mod m.Mapping.ii) in
          match Hashtbl.find_opt upsets key with
          | Some (c0, _) when c0 <= cycle -> ()
          | _ -> Hashtbl.replace upsets key (cycle, bit)))
    transients;
  let applied = ref 0 and corrections = ref 0 and detections = ref 0 in
  let edges = Array.of_list (Dfg.edges dfg) in
  (* location of edge e's value just before base cycle [upto_time] *)
  let route_state e upto_time =
    let edge = edges.(e) in
    let src_pe, _ = m.binding.(edge.src) in
    let cur = ref src_pe and in_rf = ref false and hold_from = ref 0 in
    List.iter
      (fun step ->
        match step with
        | Mapping.Hop { pe; time } ->
            if time < upto_time then begin
              cur := pe;
              in_rf := false
            end
        | Mapping.Hold { pe; from_; until } ->
            if from_ < upto_time && until >= upto_time then begin
              cur := pe;
              in_rf := true;
              hold_from := from_
            end)
      m.routes.(e);
    if !in_rf then From_rf (e, !hold_from) else From_out !cur
  in
  (* instruction table: (pe, base cycle) with slot exclusivity already
     guaranteed by the checker *)
  let instrs : (int * int, instr) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri (fun v (pe, time) -> Hashtbl.replace instrs (pe, time) (I_node v)) m.binding;
  Array.iteri
    (fun e route ->
      List.iter
        (function
          | Mapping.Hop { pe; time } ->
              Hashtbl.replace instrs (pe, time) (I_hop (e, route_state e time))
          | Mapping.Hold _ -> ())
        route)
    m.routes;
  (* holds started by the instruction producing at base cycle from_ *)
  let holds_from : (int * int, (int * int) list) Hashtbl.t = Hashtbl.create 32 in
  Array.iteri
    (fun e route ->
      List.iter
        (function
          | Mapping.Hold { pe; from_; _ } ->
              let cur = Option.value ~default:[] (Hashtbl.find_opt holds_from (pe, from_)) in
              Hashtbl.replace holds_from (pe, from_) ((e, from_) :: cur)
          | Mapping.Hop _ -> ())
        route)
    m.routes;
  (* per-node operand edge indices sorted by port *)
  let operand_edges = Array.make (Dfg.node_count dfg) [] in
  Array.iteri (fun e (edge : Dfg.edge) -> operand_edges.(edge.dst) <- e :: operand_edges.(edge.dst)) edges;
  let operand_edges =
    Array.map
      (fun es -> List.sort (fun e1 e2 -> compare edges.(e1).Dfg.port edges.(e2).Dfg.port) es)
      operand_edges
  in
  (* machine state *)
  let out_value = Array.make npe 0 in
  let out_tag : (int * int) option array = Array.make npe None in
  let rf : (int * int * int * int, int) Hashtbl.t = Hashtbl.create 64 in
  (* key: (pe, edge, hold from_, iteration) *)
  let outputs = Hashtbl.create 8 in
  let op_instances = ref 0 and route_instances = ref 0 in
  let rf_reads = ref 0 and rf_writes = ref 0 and active = ref 0 in
  let fail cycle pe fmt =
    Printf.ksprintf (fun message -> raise (Simulation_error { cycle; pe; message })) fmt
  in
  (* In the fault-injecting mode the tag check plays the role of the
     hardware's control/dataflow checker: a corrupted configuration
     that reads the wrong register is a *detected* fault, not a
     simulator bug.  Clean runs keep the hard [Simulation_error]. *)
  let detect cycle pe fmt =
    Printf.ksprintf
      (fun message ->
        if faulty then begin
          incr detections;
          raise (Fault_detected { cycle; pe; message })
        end
        else raise (Simulation_error { cycle; pe; message }))
      fmt
  in
  let t_end =
    Hashtbl.fold (fun (_, base) _ acc -> max acc (base + ((iters - 1) * m.ii))) instrs 0
  in
  (* slot table: FU exclusivity means at most one instruction per
     (pe, slot) *)
  let slot_table : (int * instr) option array = Array.make (npe * m.ii) None in
  Hashtbl.iter
    (fun (pe, base) instr -> slot_table.((pe * m.ii) + (base mod m.ii)) <- Some (base, instr))
    instrs;
  for t = 0 to t_end do
    let slot = t mod m.ii in
    let out_writes = ref [] in
    let rf_inserts = ref [] in
    for pe = 0 to npe - 1 do
      let found =
        match slot_table.((pe * m.ii) + slot) with
        | Some (base, instr) when t >= base && (t - base) / m.ii < iters -> Some (base, instr)
        | _ -> None
      in
      match found with
      | None -> ()
      | Some (base, instr) ->
          let iter = (t - base) / m.ii in
          (* a config upset owns this (pe, slot) from its first hit on *)
          let upset =
            if faulty then
              match Hashtbl.find_opt upsets (pe, slot) with
              | Some (c0, bit) when t >= c0 -> Some bit
              | _ -> None
            else None
          in
          let reads = ref 0 in
          let read_from ~origin ~src_iter src =
            incr reads;
            let src =
              (* the upset slot decodes a wrong operand mux: the read
                 lands on an arbitrary register, and the tag check
                 (below) catches the impostor value *)
              match upset with
              | Some bit ->
                  incr applied;
                  From_out ((pe + 1 + (bit mod max 1 (npe - 1))) mod npe)
              | None -> src
            in
            match src with
            | From_rf (e, hold_from) -> (
                incr rf_reads;
                match Hashtbl.find_opt rf (pe, e, hold_from, src_iter) with
                | Some v -> v
                | None -> fail t pe "RF miss: edge %d hold@%d iteration %d" e hold_from src_iter)
            | From_out q ->
                if faulty && q <> pe && Hashtbl.mem drops (q, pe, t) then begin
                  (* the wire glitched: garbage is latched in place of
                     the value; no tag check — hardware sees no tags *)
                  incr applied;
                  0
                end
                else (
                  match out_tag.(q) with
                  | Some (u, i) when u = origin && i = src_iter -> out_value.(q)
                  | Some (u, i) ->
                      detect t pe
                        "tag mismatch on PE %d: expected node %d iter %d, found node %d iter %d" q
                        origin src_iter u i
                  | None -> detect t pe "read of empty output register on PE %d" q)
          in
          let execute () =
            match instr with
            | I_hop (e, src) ->
                incr route_instances;
                let origin = edges.(e).Dfg.src in
                let v = read_from ~origin ~src_iter:iter src in
                (v, (origin, iter))
            | I_node v ->
                incr op_instances;
                let args =
                  List.map
                    (fun e ->
                      let edge = edges.(e) in
                      let src_iter = iter - edge.dist in
                      if src_iter < 0 then p.init edge.src
                      else begin
                        let consume_base = snd m.binding.(v) + (edge.dist * m.ii) in
                        read_from ~origin:edge.src ~src_iter (route_state e consume_base)
                      end)
                    operand_edges.(v)
                in
                let value =
                  match (Dfg.op dfg v, args) with
                  | Op.Const c, [] -> c
                  | Op.Input s, [] -> io.input s iter
                  | Op.Output s, [ x ] ->
                      let cur = Option.value ~default:[] (Hashtbl.find_opt outputs s) in
                      Hashtbl.replace outputs s ((iter, x) :: cur);
                      x
                  | Op.Binop b, [ x; y ] -> Op.eval_binop b x y
                  | Op.Not, [ x ] -> lnot x
                  | Op.Neg, [ x ] -> -x
                  | Op.Select, [ c; a; b ] -> if c <> 0 then a else b
                  | Op.Load arr, [ idx ] -> (
                      match Hashtbl.find_opt io.memory arr with
                      | None -> fail t pe "no memory array %s" arr
                      | Some a -> a.(((idx mod Array.length a) + Array.length a) mod Array.length a))
                  | Op.Store arr, [ idx; x ] -> (
                      match Hashtbl.find_opt io.memory arr with
                      | None -> fail t pe "no memory array %s" arr
                      | Some a ->
                          a.(((idx mod Array.length a) + Array.length a) mod Array.length a) <- x;
                          x)
                  | Op.Route, [ x ] -> x
                  | Op.Vote, [ a; b; c ] ->
                      if faulty && not (a = b && b = c) then incr corrections;
                      Op.eval_vote a b c
                  | Op.Cmp, [ x; y ] ->
                      if faulty && x <> y then
                        detect t pe "DMR comparator mismatch on node %d (%d <> %d)" v x y
                      else x
                  | Op.Nop, [] -> 0
                  | op, _ -> fail t pe "bad arity executing %s" (Op.to_string op)
                in
                (value, (v, iter))
          in
          let value, tag = execute () in
          (* datapath upsets strike the produced value itself: bit
             flips on the output register written this cycle, and
             config upsets of operand-less slots (a corrupted
             immediate/opcode has no read for the tag check to catch) *)
          let value =
            if faulty then begin
              let value =
                match Hashtbl.find_opt flips (pe, t) with
                | Some bits ->
                    List.fold_left
                      (fun v bit ->
                        incr applied;
                        v lxor (1 lsl bit))
                      value bits
                | None -> value
              in
              match upset with
              | Some bit when !reads = 0 ->
                  incr applied;
                  value lxor (1 lsl (bit mod 24))
              | _ -> value
            end
            else value
          in
          incr active;
          out_writes := (pe, value, tag) :: !out_writes;
          (* start any holds whose write cycle is this instruction's
             production cycle (base + latency - 1) *)
          let lat = match instr with I_node v -> Op.latency (Dfg.op dfg v) | I_hop _ -> 1 in
          List.iter
            (fun (e, from_) ->
              rf_inserts := ((pe, e, from_, iter), value) :: !rf_inserts;
              incr rf_writes)
            (Option.value ~default:[] (Hashtbl.find_opt holds_from (pe, base + lat - 1)))
    done;
    List.iter
      (fun (pe, value, tag) ->
        out_value.(pe) <- value;
        out_tag.(pe) <- Some tag)
      !out_writes;
    List.iter (fun (key, value) -> Hashtbl.replace rf key value) !rf_inserts
  done;
  ( {
      outputs;
      stats =
        {
          cycles = t_end + 1;
          op_instances = !op_instances;
          route_instances = !route_instances;
          rf_reads = !rf_reads;
          rf_writes = !rf_writes;
          pe_active_cycles = !active;
        };
    },
    {
      injected = List.length transients;
      applied = !applied;
      corrections = !corrections;
      detections = !detections;
    } )

let flush_stats obs (s : stats) =
  Ocgra_obs.Ctx.add obs "sim.cycles" s.cycles;
  Ocgra_obs.Ctx.add obs "sim.op_instances" s.op_instances;
  Ocgra_obs.Ctx.add obs "sim.route_instances" s.route_instances;
  Ocgra_obs.Ctx.add obs "sim.rf_reads" s.rf_reads;
  Ocgra_obs.Ctx.add obs "sim.rf_writes" s.rf_writes;
  Ocgra_obs.Ctx.add obs "sim.pe_active_cycles" s.pe_active_cycles

let run ?(obs = Ocgra_obs.Ctx.off) p m io ~iters =
  let result =
    Ocgra_obs.Ctx.span obs ~cat:"sim" "sim:run" (fun () ->
        fst (run_internal p m io ~iters ~transients:[]))
  in
  flush_stats obs result.stats;
  result
let run_transient p m io ~iters ~transients = run_internal p m io ~iters ~transients

(* End-to-end verification: run the mapping and compare every output
   stream with the reference interpreter. *)
let verify (p : Problem.t) (m : Mapping.t) ~io ~iters ~outputs_expected =
  let result = run p m io ~iters in
  List.for_all
    (fun (name, expected) ->
      let got = output_stream result name in
      got = expected)
    outputs_expected

(* Monte-Carlo reliability campaign.

   One campaign = N independent seeded trials of the same mapping under
   the same transient-event rate.  Every trial draws its own
   bombardment (deterministically from the campaign seed), executes the
   mapping in the simulator's fault-injecting mode and is classified
   against the reference output streams:

   - [Correct]   the run completed and every output matched, with no
                 voter ever seeing a disagreement — the faults missed;
   - [Masked]    outputs matched but at least one TMR voter outvoted a
                 corrupted replica — the hardening earned its keep;
   - [Detected]  a DMR comparator (or the tag check, standing in for
                 the hardware's control checker) caught the corruption
                 before an output was produced;
   - [Sdc]       the run completed with a wrong output — silent data
                 corruption, the failure mode hardening exists to kill;
   - [Crash]     the machine stopped (RF miss, bad state, ...).

   The campaign is the reliability axis of the repo's mapper
   comparisons: hardened and unhardened mappings of any technique are
   judged under the same injected fault load, alongside the II and
   energy overhead the hardening costs. *)

open Ocgra_core

type trial_class = Correct | Masked | Detected | Sdc | Crash

let trial_class_to_string = function
  | Correct -> "correct"
  | Masked -> "masked"
  | Detected -> "detected"
  | Sdc -> "sdc"
  | Crash -> "crash"

let trial_class_of_string = function
  | "correct" -> Some Correct
  | "masked" -> Some Masked
  | "detected" -> Some Detected
  | "sdc" -> Some Sdc
  | "crash" -> Some Crash
  | _ -> None

type report = {
  trials : int;
  correct : int;
  masked : int;
  detected : int;
  sdc : int;
  crash : int;
  injected : int; (* events drawn across all trials *)
  applied : int; (* events that struck live state (completed trials) *)
  quarantined : int; (* trials whose task exhausted every supervised retry *)
}

let rate_of count r = if r.trials = 0 then 0.0 else float_of_int count /. float_of_int r.trials
let sdc_rate r = rate_of r.sdc r
let masked_rate r = rate_of r.masked r
let detected_rate r = rate_of r.detected r
let crash_rate r = rate_of r.crash r

(* The rendering is part of the crash-safe contract: a resumed
   campaign must print a byte-identical line, so the quarantine suffix
   only appears when it is nonzero (a healthy run reads exactly as it
   did before the supervision layer existed). *)
let to_string r =
  Printf.sprintf
    "%d trials: %d correct, %d masked, %d detected, %d SDC (%.1f%%), %d crash; %d events injected, %d applied%s"
    r.trials r.correct r.masked r.detected r.sdc
    (100.0 *. sdc_rate r)
    r.crash r.injected r.applied
    (if r.quarantined = 0 then ""
     else Printf.sprintf "; %d quarantined" r.quarantined)

(* Last cycle any instruction of the run can fire, so every drawn event
   lands inside the run's lifetime. *)
let horizon (m : Mapping.t) ~iters = Mapping.schedule_length m + ((iters - 1) * m.Mapping.ii) + 1

let classify (p : Problem.t) (m : Mapping.t) ~io ~iters ~expected ~transients =
  match Machine.run_transient p m io ~iters ~transients with
  | exception Machine.Fault_detected _ -> (Detected, None)
  | exception Machine.Simulation_error _ -> (Crash, None)
  | result, ts ->
      let ok =
        List.for_all
          (fun (name, want) -> Machine.output_stream result name = want)
          expected
      in
      if not ok then (Sdc, Some ts)
      else if ts.Machine.corrections > 0 then (Masked, Some ts)
      else (Correct, Some ts)

(* ---------- checkpoint journal ---------- *)

type checkpoint = { path : string; resume : bool }

(* One header line pins the campaign identity; one line per completed
   trial carries everything the fold needs.  Both are single-line JSON
   emitted with fixed field order, so resume can demand *exact* header
   equality and parse trial lines with one Scanf format — no JSON
   dependency, no ambiguity about what an old journal "roughly"
   matches.  %h prints floats in hex notation: lossless, so a rate
   never changes identity across write/read. *)
let journal_header ~trials ~rate ~seed ~iters =
  Printf.sprintf "{\"campaign\": {\"trials\": %d, \"rate\": \"%h\", \"seed\": %d, \"iters\": %d}}"
    trials rate seed iters

let journal_trial_line ~trial ~tseed (cls, injected, applied) =
  Printf.sprintf "{\"trial\": %d, \"seed\": %d, \"class\": \"%s\", \"injected\": %d, \"applied\": %d}"
    trial tseed (trial_class_to_string cls) injected applied

let parse_trial_line line =
  match
    Scanf.sscanf line
      "{\"trial\": %d, \"seed\": %d, \"class\": \"%[a-z]\", \"injected\": %d, \"applied\": %d}"
      (fun t s c i a -> (t, s, c, i, a))
  with
  | exception _ -> None (* torn tail of a crashed run: absent work, not an error *)
  | t, s, c, i, a -> (
      match trial_class_of_string c with None -> None | Some cls -> Some (t, s, (cls, i, a)))

(* [mk_io] must build a *fresh* io per trial: Store ops mutate the
   memory arrays, and a corrupted trial must not leak state into the
   next one.  (It is also called concurrently from worker domains, so
   it must not close over unsynchronised mutable state — the kernel
   library's stream/memory builders allocate fresh arrays.)

   Trials are embarrassingly parallel, and the report must not depend
   on how they interleave: every per-trial seed is drawn from the
   campaign RNG *before* the fan-out, in trial order — exactly the
   stream the old sequential loop drew — and the per-trial
   classifications land in a trial-indexed array that is folded
   sequentially.  The report is therefore bit-identical for any
   [workers], including 1; [Rng.t] itself is domain-unsafe and never
   crosses the fan-out (see rng.mli).

   Failure tolerance: trials run under [Ocgra_par.Supervise], so a
   raising trial (a bug, an injected [chaos] fault) is retried with
   seeded backoff and, only if deterministically poisonous, counted as
   [quarantined] in the report instead of aborting the campaign — the
   strict [Pool.run] raise-through policy no longer applies here.
   Because a trial's record is a pure function of its pre-drawn seed,
   a retry recomputes the identical record, which is why a chaos-laden
   campaign whose retries mask every injection reports *exactly* the
   chaos-free totals.

   Checkpointing: with [checkpoint = Some { path; resume }] every
   completed trial is journaled (one line, fsync'd in batches) the
   moment it finishes, from whichever domain ran it.  With
   [resume = true] an existing journal is replayed first: its header
   must match this campaign exactly, every journaled seed must equal
   the pre-drawn seed of its trial (the exactly-once-per-seed
   guarantee), and replayed trials are skipped — never re-simulated,
   never re-journaled — so kill -9 followed by resume folds the same
   per-trial records in the same order and prints a byte-identical
   report. *)
let run_campaign ?workers ?(obs = Ocgra_obs.Ctx.off) ?(retries = 2)
    ?(chaos = Ocgra_par.Chaos.none) ?checkpoint (p : Problem.t) (m : Mapping.t) ~mk_io ~iters
    ~expected ~trials ~rate ~seed =
  if trials < 0 then invalid_arg "Reliability.run_campaign: negative trial count";
  let rng = Ocgra_util.Rng.create (0xCA4A1 lxor seed) in
  let hz = horizon m ~iters in
  let seeds = Array.make trials 0 in
  for t = 0 to trials - 1 do
    seeds.(t) <- Ocgra_util.Rng.bits rng
  done;
  let header = journal_header ~trials ~rate ~seed ~iters in
  (* trial-indexed record slots; resume pre-fills them from the journal *)
  let completed = Array.make trials None in
  (match checkpoint with
  | Some { path; resume = true } -> (
      match Ocgra_par.Journal.read_lines path with
      | [] -> ()
      | hd :: rest ->
          if hd <> header then
            invalid_arg
              "Reliability.run_campaign: checkpoint journal does not match this campaign \
               (different trials/rate/seed/iters?)";
          List.iter
            (fun line ->
              match parse_trial_line line with
              | None -> () (* torn line from the crash: the trial reruns *)
              | Some (t, s, record) ->
                  if t < 0 || t >= trials then
                    invalid_arg "Reliability.run_campaign: journaled trial index out of range";
                  if s <> seeds.(t) then
                    invalid_arg
                      "Reliability.run_campaign: journaled seed mismatch — journal belongs to \
                       a different campaign";
                  completed.(t) <- Some record)
            rest)
  | Some { resume = false; _ } | None -> ());
  let resumed = Array.fold_left (fun n c -> if c <> None then n + 1 else n) 0 completed in
  let journal =
    match checkpoint with
    | None -> None
    | Some { path; resume } ->
        let j = Ocgra_par.Journal.open_append ~fresh:(not resume || resumed = 0) path in
        if resumed = 0 then Ocgra_par.Journal.append j header;
        Some j
  in
  let trial t _stop =
    let tseed = seeds.(t) in
    let transients = Ocgra_arch.Cgra.inject_transients p.cgra ~seed:tseed ~horizon:hz ~rate in
    let t0 = Deadline.now () in
    let cls, ts = classify p m ~io:(mk_io ()) ~iters ~expected ~transients in
    (* wall-clock latency goes to the histogram only, never into the
       event log — the log must stay byte-identical across runs *)
    Ocgra_obs.Ctx.observe obs "campaign.trial_us"
      (int_of_float ((Deadline.now () -. t0) *. 1e6));
    let applied = match ts with Some ts -> ts.Machine.applied | None -> 0 in
    let record = (cls, List.length transients, applied) in
    Option.iter
      (fun j -> Ocgra_par.Journal.append j (journal_trial_line ~trial:t ~tseed record))
      journal;
    record
  in
  (* only the not-yet-journaled trials fan out; chaos draws are keyed
     on the position in this pending array, which is itself a pure
     function of (journal contents, campaign params) *)
  let pending =
    Array.of_list
      (List.filter (fun t -> completed.(t) = None) (List.init trials (fun t -> t)))
  in
  let summary =
    Ocgra_obs.Ctx.span obs ~cat:"reliability" "campaign:trials" (fun () ->
        Ocgra_par.Supervise.run ?workers ~obs
          ~policy:{ Ocgra_par.Supervise.default_policy with retries; seed = 0x5AFE lxor seed }
          ~chaos
          (Array.map (fun t -> trial t) pending))
  in
  let journaled =
    match journal with
    | None -> 0
    | Some j ->
        let n = Ocgra_par.Journal.appended j - if resumed = 0 then 1 else 0 in
        Ocgra_par.Journal.close j;
        n
  in
  Array.iteri
    (fun k t ->
      match summary.Ocgra_par.Supervise.outcomes.(k) with
      | Ocgra_par.Supervise.Ok record -> completed.(t) <- Some record
      | Failed _ | Timed_out | Cancelled -> () (* stays None: quarantined below *))
    pending;
  let report =
    Array.fold_left
      (fun r slot ->
        match slot with
        | None -> { r with quarantined = r.quarantined + 1 }
        | Some (cls, injected, applied) -> (
            let r = { r with injected = r.injected + injected; applied = r.applied + applied } in
            match cls with
            | Correct -> { r with correct = r.correct + 1 }
            | Masked -> { r with masked = r.masked + 1 }
            | Detected -> { r with detected = r.detected + 1 }
            | Sdc -> { r with sdc = r.sdc + 1 }
            | Crash -> { r with crash = r.crash + 1 }))
      {
        trials;
        correct = 0;
        masked = 0;
        detected = 0;
        sdc = 0;
        crash = 0;
        injected = 0;
        applied = 0;
        quarantined = 0;
      }
      completed
  in
  (* trial outcomes enter the event log post-hoc, in trial-index order,
     from the same [completed] array the report folds — the log is a
     pure function of the campaign inputs, whatever the worker count.
     Only anomalies get a per-trial record; the closing summary always
     lands. *)
  Array.iteri
    (fun t slot ->
      match slot with
      | Some (Correct, _, _) -> ()
      | Some (cls, injected, applied) ->
          Ocgra_obs.Ctx.event obs ~cat:"campaign" "campaign.trial"
            [
              ("trial", Ocgra_obs.Events.Int t);
              ("class", Ocgra_obs.Events.Str (trial_class_to_string cls));
              ("injected", Ocgra_obs.Events.Int injected);
              ("applied", Ocgra_obs.Events.Int applied);
            ]
      | None ->
          Ocgra_obs.Ctx.event obs ~cat:"campaign" "campaign.trial"
            [
              ("trial", Ocgra_obs.Events.Int t);
              ("class", Ocgra_obs.Events.Str "quarantined");
            ])
    completed;
  Ocgra_obs.Ctx.event obs ~cat:"campaign" "campaign.done"
    [
      ("trials", Ocgra_obs.Events.Int report.trials);
      ("correct", Ocgra_obs.Events.Int report.correct);
      ("masked", Ocgra_obs.Events.Int report.masked);
      ("detected", Ocgra_obs.Events.Int report.detected);
      ("sdc", Ocgra_obs.Events.Int report.sdc);
      ("crash", Ocgra_obs.Events.Int report.crash);
      ("quarantined", Ocgra_obs.Events.Int report.quarantined);
    ];
  Ocgra_obs.Ctx.add obs "campaign.resumed" resumed;
  Ocgra_obs.Ctx.add obs "campaign.quarantined" report.quarantined;
  if checkpoint <> None then Ocgra_obs.Ctx.add obs "checkpoint.journaled" journaled;
  Ocgra_obs.Ctx.add obs "campaign.trials" report.trials;
  Ocgra_obs.Ctx.add obs "campaign.correct" report.correct;
  Ocgra_obs.Ctx.add obs "campaign.masked" report.masked;
  Ocgra_obs.Ctx.add obs "campaign.detected" report.detected;
  Ocgra_obs.Ctx.add obs "campaign.sdc" report.sdc;
  Ocgra_obs.Ctx.add obs "campaign.crash" report.crash;
  Ocgra_obs.Ctx.add obs "campaign.injected" report.injected;
  Ocgra_obs.Ctx.add obs "campaign.applied" report.applied;
  report

(* ---------- survivor campaign ---------- *)

(* How long does a mapping stay alive as the array rots under it?
   One survivor campaign walks an escalating seeded *permanent*-fault
   sequence — [Cgra.inject_faults] draws sequentially, so the mask at
   step k+1 strictly contains the mask at step k — and at every step
   salvages the previous step's mapping through [Repair]'s certified
   ladder, replaying the survivor on the cycle-accurate simulator.
   The walk yields the II-degradation curve, the repair-vs-scratch
   time ratio (each step also cold-remaps for comparison unless
   [~scratch:false]) and the certified-failure point: the first fault
   count at which no rung — fallback included — can certify a mapping. *)

type survivor_step = {
  step : int; (* faults injected at this step *)
  rung : Mapper.rung option;
  ii : int option;
  repair_s : float;
  scratch_s : float option;
  scratch_ok : bool;
  replayed : bool;
  note : string;
}

type survivor_report = {
  steps : survivor_step list;
  survived : int;
  certified_failure : int option;
  ii_curve : (int * int) list;
  repair_vs_scratch : float option;
}

let survivor_step_to_string s =
  Printf.sprintf "step %d: %s%s repair %.3fs%s%s" s.step
    (match s.rung with
    | Some r -> Printf.sprintf "repaired (%s) II %s," (Mapper.rung_to_string r)
                  (match s.ii with Some ii -> string_of_int ii | None -> "?")
    | None -> "FAILED,")
    (if s.replayed then " replayed," else if s.rung = None then "" else " REPLAY MISMATCH,")
    s.repair_s
    (match s.scratch_s with
    | Some sc -> Printf.sprintf ", scratch %.3fs%s" sc (if s.scratch_ok then "" else " (failed)")
    | None -> "")
    (if s.note = "" then "" else " — " ^ s.note)

let survivor_to_string r =
  Printf.sprintf "survived %d fault(s)%s%s%s" r.survived
    (match r.certified_failure with
    | Some k -> Printf.sprintf ", certified failure at %d" k
    | None -> ", no certified failure within the walk")
    (match (r.ii_curve, List.rev r.ii_curve) with
    | (_, ii0) :: _, (_, iin) :: _ -> Printf.sprintf "; II %d -> %d" ii0 iin
    | _ -> "")
    (match r.repair_vs_scratch with
    | Some x -> Printf.sprintf "; repair %.1fx faster than scratch (median)" x
    | None -> "")

let median l =
  match List.sort compare l with
  | [] -> None
  | sorted ->
      let n = List.length sorted in
      let a = List.nth sorted ((n - 1) / 2) and b = List.nth sorted (n / 2) in
      Some ((a +. b) /. 2.0)

let run_survivor ?workers ?(obs = Ocgra_obs.Ctx.off) ?(scratch = true) ?step_deadline_s
    ?(max_ii_bumps = 2) ~chain (p : Problem.t) (m0 : Mapping.t) ~mk_io ~iters ~expected ~steps
    ~seed =
  if steps < 0 then invalid_arg "Reliability.run_survivor: negative step count";
  let base = p.Problem.cgra in
  let replay_ok pk m =
    match Machine.run pk m (mk_io ()) ~iters with
    | exception _ -> false
    | result ->
        List.for_all (fun (name, want) -> Machine.output_stream result name = want) expected
  in
  (* the walk is sequential, so emitting as each step closes is already
     deterministic; timings stay out of the payload *)
  let step_event s =
    Ocgra_obs.Ctx.event obs ~cat:"reliability" "survivor.step"
      [
        ("step", Ocgra_obs.Events.Int s.step);
        ( "rung",
          Ocgra_obs.Events.Str
            (match s.rung with Some r -> Mapper.rung_to_string r | None -> "none") );
        ( "ii",
          match s.ii with
          | Some ii -> Ocgra_obs.Events.Int ii
          | None -> Ocgra_obs.Events.Str "none" );
        ("replayed", Ocgra_obs.Events.Int (if s.replayed then 1 else 0));
      ]
  in
  let rec walk k m_prev acc =
    if k > steps then (List.rev acc, None)
    else begin
      (* the walk's mask strictly grows (sequential draws), layered on
         top of whatever faults the array already carried *)
      let mask =
        Ocgra_arch.Fault.canonical
          (Ocgra_arch.Cgra.faults base @ Ocgra_arch.Cgra.inject_faults base ~seed ~n:k)
      in
      let pk = { p with Problem.cgra = Ocgra_arch.Cgra.with_faults base mask } in
      let t0 = Deadline.now () in
      let o =
        Ocgra_obs.Ctx.span obs ~cat:"reliability" "survivor:step" (fun () ->
            Repair.repair ~seed ~deadline:(Deadline.of_seconds step_deadline_s) ~obs
              ~fallback:chain ?workers ~max_ii_bumps pk m_prev)
      in
      let repair_s = Deadline.now () -. t0 in
      let scratch_s, scratch_ok =
        if not scratch then (None, false)
        else begin
          let t1 = Deadline.now () in
          let c = Mapper.Harness.race ~seed ?deadline_s:step_deadline_s ?workers ~obs chain pk in
          (Some (Deadline.now () -. t1), c.Mapper.mapping <> None)
        end
      in
      match o.Repair.mapping with
      | Some m when replay_ok pk m ->
          let s =
            {
              step = k;
              rung = o.Repair.rung;
              ii = Some m.Mapping.ii;
              repair_s;
              scratch_s;
              scratch_ok;
              replayed = true;
              note = o.Repair.note;
            }
          in
          step_event s;
          walk (k + 1) m (s :: acc)
      | res ->
          (* no certified mapping — or one the simulator contradicts,
             which the certification contract treats as failure too *)
          let s =
            {
              step = k;
              rung = (match res with Some _ -> o.Repair.rung | None -> None);
              ii = None;
              repair_s;
              scratch_s;
              scratch_ok;
              replayed = false;
              note = o.Repair.note;
            }
          in
          step_event s;
          (List.rev (s :: acc), Some k)
    end
  in
  let steps_done, certified_failure = walk 1 m0 [] in
  let ii_curve =
    List.filter_map (fun s -> match s.ii with Some ii -> Some (s.step, ii) | None -> None)
      steps_done
  in
  let ratios =
    List.filter_map
      (fun s ->
        match (s.rung, s.scratch_s) with
        | Some _, Some sc when s.repair_s > 0.0 -> Some (sc /. s.repair_s)
        | _ -> None)
      steps_done
  in
  let survived = match certified_failure with Some k -> k - 1 | None -> steps in
  Ocgra_obs.Ctx.add obs "survivor.steps" (List.length steps_done);
  Ocgra_obs.Ctx.add obs "survivor.survived" survived;
  { steps = steps_done; survived; certified_failure; ii_curve; repair_vs_scratch = median ratios }

(* ---------- hardening overhead ---------- *)

(* What the redundancy costs, measured on clean (fault-free) runs of
   the two mappings: the hardened kernel carries more ops, usually a
   higher II (the replicas compete for FU slots) and strictly more
   energy. *)
type overhead = {
  ii_base : int;
  ii_hard : int;
  ops_base : int;
  ops_hard : int;
  energy_base : float;
  energy_hard : float;
}

let ii_overhead o = (float_of_int o.ii_hard /. float_of_int o.ii_base) -. 1.0
let ops_overhead o = (float_of_int o.ops_hard /. float_of_int o.ops_base) -. 1.0
let energy_overhead o = (o.energy_hard /. o.energy_base) -. 1.0

let overhead_to_string o =
  Printf.sprintf "II %d -> %d (+%.0f%%), ops %d -> %d (+%.0f%%), energy %.1f -> %.1f (+%.0f%%)"
    o.ii_base o.ii_hard
    (100.0 *. ii_overhead o)
    o.ops_base o.ops_hard
    (100.0 *. ops_overhead o)
    o.energy_base o.energy_hard
    (100.0 *. energy_overhead o)

let measure_energy (p : Problem.t) (m : Mapping.t) ~mk_io ~iters =
  let result = Machine.run p m (mk_io ()) ~iters in
  Energy.of_mapping_run p.Problem.dfg
    ~npe:(Ocgra_arch.Cgra.pe_count p.Problem.cgra)
    ~iters result.Machine.stats

let overhead ~baseline:(p0, m0) ~hardened:(p1, m1) ~mk_io ~iters =
  {
    ii_base = m0.Mapping.ii;
    ii_hard = m1.Mapping.ii;
    ops_base = Ocgra_dfg.Dfg.node_count p0.Problem.dfg;
    ops_hard = Ocgra_dfg.Dfg.node_count p1.Problem.dfg;
    energy_base = measure_energy p0 m0 ~mk_io ~iters;
    energy_hard = measure_energy p1 m1 ~mk_io ~iters;
  }

(** Cycle-accurate, tag-checked execution of a mapping.

    Every value carries a (producer node, iteration) tag and every read
    asserts the tag it expects, so routing or scheduling bugs the
    static checker missed become {!Simulation_error}s rather than wrong
    numbers.  Loop-carried reads of iterations before the first are
    served from the kernel's initial values (standing in for the
    prologue a peeled/predicated kernel would run). *)

type error = { cycle : int; pe : int; message : string }

exception Simulation_error of error

(** Raised only by {!run_transient}: a hardware detection mechanism (a
    DMR {!Ocgra_dfg.Op.t.Cmp} comparator, or the tag check standing in
    for a control-flow checker) caught corrupted state.  Distinct from
    {!Simulation_error}, which in that mode means an outright crash. *)
exception Fault_detected of error

(** Bookkeeping of one fault-injected run: events handed in, events
    that struck live state, voter-input disagreements (TMR masking at
    work) and comparator/tag detections. *)
type transient_stats = {
  injected : int;
  applied : int;
  corrections : int;
  detections : int;
}

type io = {
  input : string -> int -> int;  (** stream name -> iteration -> value *)
  memory : (string, int array) Hashtbl.t;
}

val io_of_streams : ?memory:(string * int array) list -> (string * int array) list -> io

type stats = {
  cycles : int;
  op_instances : int;
  route_instances : int;
  rf_reads : int;
  rf_writes : int;
  pe_active_cycles : int;
}

type result = {
  outputs : (string, (int * int) list) Hashtbl.t;  (** name -> (iteration, value) *)
  stats : stats;
}

(** Output values in iteration order. *)
val output_stream : result -> string -> int list

(** Raises {!Simulation_error} when the mapping uses a faulted PE,
    link or FU slot — an independent second check in front of {!run},
    deliberately not shared with the static checker. *)
val refuse_faults : Ocgra_core.Problem.t -> Ocgra_core.Mapping.t -> unit

(** Execute [iters] iterations of the mapped kernel.  Refuses (with
    {!Simulation_error}) mappings that use faulted resources.  [obs]
    records one [sim:run] span and flushes the run's tallies
    ([sim.cycles], [sim.op_instances], [sim.route_instances],
    [sim.rf_reads], [sim.rf_writes], [sim.pe_active_cycles]). *)
val run :
  ?obs:Ocgra_obs.Ctx.t ->
  Ocgra_core.Problem.t ->
  Ocgra_core.Mapping.t ->
  io ->
  iters:int ->
  result

(** Like {!run}, but applies the given transient events mid-run: bit
    flips corrupt the struck output register, link drops replace the
    crossing value with garbage, config upsets persistently rewire the
    struck slot's operand mux (caught by the tag check) or corrupt its
    immediate.  May raise {!Fault_detected} (corruption caught by a
    comparator or the tag check) or {!Simulation_error} (crash);
    otherwise the run completes — possibly with silently corrupted
    outputs, which is exactly what a reliability campaign measures. *)
val run_transient :
  Ocgra_core.Problem.t ->
  Ocgra_core.Mapping.t ->
  io ->
  iters:int ->
  transients:Ocgra_arch.Fault.transient list ->
  result * transient_stats

(** Convenience: run and compare each named output stream. *)
val verify :
  Ocgra_core.Problem.t ->
  Ocgra_core.Mapping.t ->
  io:io ->
  iters:int ->
  outputs_expected:(string * int list) list ->
  bool

(** Subgraph isomorphism (VF2-style backtracking with degree pruning):
    an injective, edge-preserving embedding of the pattern into the
    host.  The graph-based binding mappers embed transformed DFGs into
    the time-extended CGRA with this. *)

(** [find ~compatible pattern host] returns the node mapping, or [None]
    when no embedding exists or the step budget ran out. *)
val find :
  ?max_steps:int -> compatible:(int -> int -> bool) -> Digraph.t -> Digraph.t -> int array option

(** [find_iso ~compatible a b] returns a full {e isomorphism} witness
    [w] ([w.(i)] = the [b]-node matched to [a]-node [i]), or [None]
    when the graphs are not isomorphic or the step budget ran out.

    Unlike {!find}, this demands an exact structural bijection: equal
    node and edge counts, exactly matching in/out degrees per matched
    pair, and — the labelled-multigraph refinement the mapping cache
    relies on — for every matched node pair the {e weight multiset} of
    the parallel edges between them must coincide (edge weights are how
    callers encode edge labels such as (port, dist)).  Deterministic:
    the search order is a pure function of the two graphs, so the same
    inputs always return the same witness. *)
val find_iso :
  ?max_steps:int -> compatible:(int -> int -> bool) -> Digraph.t -> Digraph.t -> int array option

(* Subgraph isomorphism: find an injective mapping of the pattern graph
   into the host graph preserving directed edges, VF2-style backtracking
   with degree pruning.

   The graph-minor flavoured mappers test whether a transformed DFG
   embeds into the time-extended CGRA directly. *)

let find ?(max_steps = 1_000_000) ~compatible pattern host =
  let np = Digraph.node_count pattern and nh = Digraph.node_count host in
  if np > nh then None
  else begin
    let mapping = Array.make np (-1) in
    let used = Array.make nh false in
    let steps = ref 0 in
    (* Order pattern nodes by connectivity to already-ordered nodes so the
       search binds constrained nodes early. *)
    let order =
      let chosen = Array.make np false in
      let out = ref [] in
      for _ = 0 to np - 1 do
        let best = ref (-1) and best_score = ref (-1) in
        for v = 0 to np - 1 do
          if not chosen.(v) then begin
            let connected =
              List.length (List.filter (fun u -> chosen.(u)) (Digraph.succ pattern v))
              + List.length (List.filter (fun u -> chosen.(u)) (Digraph.pred pattern v))
            in
            let score = (connected * 1000) + Digraph.out_degree pattern v + Digraph.in_degree pattern v in
            if score > !best_score then begin
              best_score := score;
              best := v
            end
          end
        done;
        chosen.(!best) <- true;
        out := !best :: !out
      done;
      Array.of_list (List.rev !out)
    in
    let consistent v h =
      (* every already-mapped neighbour relation must hold in the host *)
      List.for_all
        (fun u -> mapping.(u) < 0 || Digraph.mem_edge host h mapping.(u))
        (Digraph.succ pattern v)
      && List.for_all
           (fun u -> mapping.(u) < 0 || Digraph.mem_edge host mapping.(u) h)
           (Digraph.pred pattern v)
    in
    let exception Found in
    let rec go i =
      incr steps;
      if !steps > max_steps then ()
      else if i = np then raise Found
      else begin
        let v = order.(i) in
        for h = 0 to nh - 1 do
          if
            (not used.(h))
            && compatible v h
            && Digraph.out_degree host h >= Digraph.out_degree pattern v
            && Digraph.in_degree host h >= Digraph.in_degree pattern v
            && consistent v h
          then begin
            mapping.(v) <- h;
            used.(h) <- true;
            go (i + 1);
            used.(h) <- false;
            mapping.(v) <- -1
          end
        done
      end
    in
    try
      go 0;
      None
    with Found -> Some (Array.copy mapping)
  end

(* Full graph isomorphism over labelled multigraphs: the mapping-cache
   refinement of [find].  A witness must be a bijection (equal node
   counts, injectivity gives surjectivity), degrees must match exactly,
   and for every matched pair of nodes the sorted weight list of the
   parallel edges between them must coincide — weights are how callers
   encode edge labels, so a weight mismatch is a label mismatch. *)
let find_iso ?(max_steps = 1_000_000) ~compatible a b =
  let na = Digraph.node_count a and nb = Digraph.node_count b in
  if na <> nb || Digraph.edge_count a <> Digraph.edge_count b then None
  else begin
    let mapping = Array.make na (-1) in
    let used = Array.make nb false in
    let steps = ref 0 in
    (* weights of the parallel edges u -> v, sorted: the edge-label
       multiset between one ordered node pair *)
    let weights g u v =
      List.sort compare
        (List.filter_map
           (fun (e : Digraph.edge) -> if e.dst = v then Some e.weight else None)
           (Digraph.succ_edges g u))
    in
    (* bind constrained nodes early, exactly like [find] *)
    let order =
      let chosen = Array.make na false in
      let out = ref [] in
      for _ = 0 to na - 1 do
        let best = ref (-1) and best_score = ref (-1) in
        for v = 0 to na - 1 do
          if not chosen.(v) then begin
            let connected =
              List.length (List.filter (fun u -> chosen.(u)) (Digraph.succ a v))
              + List.length (List.filter (fun u -> chosen.(u)) (Digraph.pred a v))
            in
            let score = (connected * 1000) + Digraph.out_degree a v + Digraph.in_degree a v in
            if score > !best_score then begin
              best_score := score;
              best := v
            end
          end
        done;
        chosen.(!best) <- true;
        out := !best :: !out
      done;
      Array.of_list (List.rev !out)
    in
    let consistent v h =
      (* every edge bundle between v and an already-mapped neighbour
         must exist in b with the identical weight multiset — checked
         in both directions, so the bijection preserves non-edges too
         (equal edge counts then close the argument) *)
      List.for_all
        (fun u -> mapping.(u) < 0 || weights a v u = weights b h mapping.(u))
        (Digraph.succ a v)
      && List.for_all
           (fun u -> mapping.(u) < 0 || weights a u v = weights b mapping.(u) h)
           (Digraph.pred a v)
    in
    let exception Found in
    let rec go i =
      incr steps;
      if !steps > max_steps then ()
      else if i = na then raise Found
      else begin
        let v = order.(i) in
        for h = 0 to nb - 1 do
          if
            (not used.(h))
            && compatible v h
            && Digraph.out_degree b h = Digraph.out_degree a v
            && Digraph.in_degree b h = Digraph.in_degree a v
            && consistent v h
          then begin
            mapping.(v) <- h;
            used.(h) <- true;
            go (i + 1);
            used.(h) <- false;
            mapping.(v) <- -1
          end
        done
      end
    in
    try
      go 0;
      None
    with Found -> Some (Array.copy mapping)
  end

(** A CGRA instance: a rows x cols array of PEs joined by a topology.
    Capability queries, neighbour sets and hop tables are the whole
    interface the mappers use, so any array describable here is
    mappable by all of them. *)

type t = {
  rows : int;
  cols : int;
  topology : Topology.t;
  pes : Pe.t array;  (** row-major, length rows * cols *)
  name : string;
  faults : Fault.t list;  (** resources out of service; [[]] = healthy *)
}

(** Raises [Invalid_argument] when the PE array has the wrong length. *)
val make :
  ?name:string -> ?faults:Fault.t list -> rows:int -> cols:int -> topology:Topology.t -> Pe.t array -> t

val pe_count : t -> int
val pe : t -> int -> Pe.t
val coords : t -> int -> int * int
val index : t -> row:int -> col:int -> int

(** {2 Faults}

    [neighbours], [reachable_in_one], [supports] and [capable_pes] are
    all fault-masked: a downed PE supports nothing and has no links, a
    downed link disappears from the adjacency.  Mappers that only go
    through these queries avoid faulted resources with no changes. *)

val faults : t -> Fault.t list

(** Same array with a (deduplicated) replacement fault set. *)
val with_faults : t -> Fault.t list -> t

(** False when the cell itself is [Pe_down]. *)
val pe_ok : t -> int -> bool

(** False when the directed link i -> j is [Link_down] (endpoint health
    is not considered — combine with [pe_ok]). *)
val link_ok : t -> int -> int -> bool

(** False when config slot [time mod ii] of [pe] is [Fu_slot_dead]. *)
val slot_ok : t -> pe:int -> ii:int -> time:int -> bool

(** Dead config-memory slot indices of [pe]. *)
val dead_slots : t -> pe:int -> int list

(** Register-file capacity after [Rf_reduced] faults (0 for a downed
    PE), clamped at 0. *)
val effective_rf_size : t -> int -> int

(** Physical topology adjacency, ignoring faults. *)
val raw_neighbours : t -> int -> int list

(** Draw up to [n] distinct random faults (fewer only if the array runs
    out of distinct resources); deterministic in [seed]. *)
val inject_faults : t -> seed:int -> n:int -> Fault.t list

(** All directed physical wires (faults ignored), row-major source
    order. *)
val raw_links : t -> (int * int) list

(** Seeded Monte-Carlo transient bombardment of this array over cycles
    [0, horizon) at per-(PE, cycle) event probability [rate];
    deterministic in [seed].  See {!Fault.monte_carlo}. *)
val inject_transients :
  t -> seed:int -> horizon:int -> rate:float -> Fault.transient list

val neighbours : t -> int -> int list

(** Including staying put. *)
val reachable_in_one : t -> int -> int list

val supports : t -> int -> Ocgra_dfg.Op.t -> bool
val capable_pes : t -> Ocgra_dfg.Op.t -> int list
val connectivity_graph : t -> Ocgra_graph.Digraph.t

(** [.(i).(j)] = minimum cycles to move a value from PE i to PE j. *)
val hop_table : t -> int array array

(** Homogeneous full-featured mesh: the "simple CGRA" of Fig. 2. *)
val uniform : ?topology:Topology.t -> ?rf_size:int -> rows:int -> cols:int -> unit -> t

(** ADRES-flavoured heterogeneity: memory and I/O in column 0,
    multipliers on even cells. *)
val adres_like : ?topology:Topology.t -> ?rf_size:int -> rows:int -> cols:int -> unit -> t

(** The CPU-like end of the Fig. 1 spectrum: one full PE. *)
val single_pe : ?rf_size:int -> unit -> t

val describe : t -> string

(* Configuration word model (Fig. 2c of the paper).

   A context holds, for every PE, the raw values of all the signals
   that drive the datapath muxes during one cycle: the opcode, the
   operand sources, the immediate, and the register-file write port.
   The paper stresses that this format is "the contract between the
   hardware and the software"; encode/decode below is that contract,
   and the bench prints the fields the way Fig. 2c tabulates them. *)

open Ocgra_dfg

type source =
  | Src_none
  | Src_dir of int (* index into the PE's neighbour list (the input muxes) *)
  | Src_self (* own output register *)
  | Src_rf of int (* register file entry *)
  | Src_const (* immediate field *)

type slot = {
  opcode : int;
  srcs : source array; (* length 3: operand ports *)
  const : int; (* immediate / stream id / array id *)
  rf_we : bool;
  rf_waddr : int;
}

let nop_slot =
  { opcode = 0; srcs = [| Src_none; Src_none; Src_none |]; const = 0; rf_we = false; rf_waddr = 0 }

(* One context = one configuration of the whole array. *)
type t = slot array

(* ---------- opcode table ---------- *)

let binops =
  [| Op.Add; Op.Sub; Op.Mul; Op.Div; Op.Rem; Op.And; Op.Or; Op.Xor; Op.Shl; Op.Shr;
     Op.Min; Op.Max; Op.Lt; Op.Le; Op.Eq; Op.Ne |]

let opcode_of_op = function
  | Op.Nop -> 0
  | Op.Const _ -> 1
  | Op.Input _ -> 2
  | Op.Output _ -> 3
  | Op.Not -> 4
  | Op.Neg -> 5
  | Op.Select -> 6
  | Op.Load _ -> 7
  | Op.Store _ -> 8
  | Op.Route -> 9
  | Op.Binop b ->
      let rec idx i = if binops.(i) = b then i else idx (i + 1) in
      10 + idx 0
  | Op.Vote -> 10 + Array.length binops
  | Op.Cmp -> 11 + Array.length binops

let opcode_name = function
  | 0 -> "nop"
  | 1 -> "const"
  | 2 -> "input"
  | 3 -> "output"
  | 4 -> "not"
  | 5 -> "neg"
  | 6 -> "select"
  | 7 -> "load"
  | 8 -> "store"
  | 9 -> "route"
  | n when n >= 10 && n < 10 + Array.length binops -> Op.binop_to_string binops.(n - 10)
  | n when n = 10 + Array.length binops -> "vote"
  | n when n = 11 + Array.length binops -> "cmp"
  | n -> Printf.sprintf "op%d" n

(* ---------- string interning for stream / array names ---------- *)

module Dict = struct
  type t = { mutable names : string array; mutable n : int }

  let create () = { names = Array.make 8 ""; n = 0 }

  let intern t s =
    let rec find i = if i >= t.n then -1 else if t.names.(i) = s then i else find (i + 1) in
    let i = find 0 in
    if i >= 0 then i
    else begin
      if t.n = Array.length t.names then begin
        let bigger = Array.make (2 * t.n) "" in
        Array.blit t.names 0 bigger 0 t.n;
        t.names <- bigger
      end;
      t.names.(t.n) <- s;
      t.n <- t.n + 1;
      t.n - 1
    end

  let name t i = if i < 0 || i >= t.n then invalid_arg "Dict.name" else t.names.(i)
end

(* Build the slot for an operation: opcode + payload in the const field. *)
let slot_of_op dict op srcs =
  let const =
    match op with
    | Op.Const c -> c
    | Op.Input s | Op.Output s -> Dict.intern dict s
    | Op.Load a | Op.Store a -> Dict.intern dict a
    | _ -> 0
  in
  { opcode = opcode_of_op op; srcs; const; rf_we = false; rf_waddr = 0 }

(* ---------- bit-level encoding ----------

   field     bits   position
   opcode    6      0..5
   src0      6      6..11
   src1      6      12..17
   src2      6      18..23
   rf_we     1      24
   rf_waddr  4      25..28
   const     24     29..52  (two's complement)                       *)

let encode_source = function
  | Src_none -> 0
  | Src_self -> 1
  | Src_const -> 2
  | Src_dir d ->
      if d < 0 || d > 11 then invalid_arg "Context: direction index too large";
      3 + d
  | Src_rf r ->
      if r < 0 || r > 15 then invalid_arg "Context: rf index too large";
      15 + r

let decode_source = function
  | 0 -> Src_none
  | 1 -> Src_self
  | 2 -> Src_const
  | n when n >= 3 && n < 15 -> Src_dir (n - 3)
  | n when n >= 15 && n < 31 -> Src_rf (n - 15)
  | n -> invalid_arg (Printf.sprintf "Context.decode_source: %d" n)

let encode_slot s =
  let ( ||| ) = Int64.logor in
  let field v shift = Int64.shift_left (Int64.of_int v) shift in
  let const_bits = s.const land 0xFFFFFF in
  field s.opcode 0
  ||| field (encode_source s.srcs.(0)) 6
  ||| field (encode_source s.srcs.(1)) 12
  ||| field (encode_source s.srcs.(2)) 18
  ||| field (if s.rf_we then 1 else 0) 24
  ||| field s.rf_waddr 25
  ||| field const_bits 29

let decode_slot w =
  let bits shift width = Int64.to_int (Int64.logand (Int64.shift_right_logical w shift) (Int64.sub (Int64.shift_left 1L width) 1L)) in
  let const = bits 29 24 in
  let const = if const land 0x800000 <> 0 then const - 0x1000000 else const in
  {
    opcode = bits 0 6;
    srcs = [| decode_source (bits 6 6); decode_source (bits 12 6); decode_source (bits 18 6) |];
    const;
    rf_we = bits 24 1 = 1;
    rf_waddr = bits 25 4;
  }

let source_to_string = function
  | Src_none -> "-"
  | Src_self -> "SELF"
  | Src_const -> "CONST"
  | Src_dir d -> Printf.sprintf "IN%d" d
  | Src_rf r -> Printf.sprintf "RF[%d]" r

let pp_slot s =
  Printf.sprintf "op=%-6s srcA=%-6s srcB=%-6s srcC=%-6s rf_we=%d waddr=%d const=%d"
    (opcode_name s.opcode)
    (source_to_string s.srcs.(0))
    (source_to_string s.srcs.(1))
    (source_to_string s.srcs.(2))
    (if s.rf_we then 1 else 0)
    s.rf_waddr s.const

(* The context memory of the whole array for a modulo schedule of the
   given II: context.(cycle).(pe). *)
let pp_contexts (contexts : t array) cgra =
  let buf = Buffer.create 512 in
  Array.iteri
    (fun cycle ctx ->
      Buffer.add_string buf (Printf.sprintf "context %d:\n" cycle);
      Array.iteri
        (fun pe slot ->
          if slot.opcode <> 0 || slot.rf_we then begin
            let r, c = Cgra.coords cgra pe in
            Buffer.add_string buf (Printf.sprintf "  PE(%d,%d): %s\n" r c (pp_slot slot))
          end)
        ctx)
    contexts;
  Buffer.contents buf

(** Resource fault model for degraded arrays.

    A fault names one physical resource taken out of service.  The
    fault set is carried by the [Cgra.t] (see {!Cgra.with_faults}), so
    mappers, the validator and the simulator all see the same
    degradation. *)

type t =
  | Pe_down of int  (** the whole cell is unusable *)
  | Link_down of int * int  (** the directed link src -> dst is unusable *)
  | Fu_slot_dead of int * int
      (** (pe, slot): config-memory slot [slot] is dead — nothing may
          execute or pass through the PE at cycles [t] with
          [t mod ii = slot] (only binds for mappings with [ii > slot]). *)
  | Rf_reduced of int * int
      (** (pe, lost): the PE's register file loses [lost] entries. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val to_string : t -> string

(** Canonical form of a fault mask: deduplicated and sorted (constructor
    then coordinates).  Identical masks are structurally equal, render
    identically and hash identically regardless of injection order;
    {!Cgra.with_faults} and {!list_to_string} both apply it. *)
val canonical : t list -> t list

(** Comma-separated rendering of the {!canonical} form; ["none"] for the
    empty list. *)
val list_to_string : t list -> string

(** [subset a b]: does every fault of [a] appear in [b]?  Both sides
    are taken to their {!canonical} form first, so injection order and
    duplicates never matter.  This is the mask half of the mapping
    cache's hit/repair/miss decision: a request mask that is a subset
    of the cached one is a pure hit (fewer constraints), a superset is
    a repair, anything else is a miss. *)
val subset : t list -> t list -> bool

(** {2 Transient events}

    Soft errors that strike {e during} a run, as opposed to the
    permanent resource faults above.  They are not carried on the
    [Cgra.t]; they are handed to the simulator's fault-injecting mode
    (see [Ocgra_sim.Machine.run_transient]).  Both models coexist. *)

type transient =
  | Bit_flip of { pe : int; cycle : int; bit : int }
      (** [bit] of [pe]'s output register written at the end of
          [cycle] is inverted (silent data corruption) *)
  | Link_drop of { src : int; dst : int; cycle : int }
      (** the value crossing src -> dst during [cycle] is lost; the
          consumer latches 0 *)
  | Config_upset of { pe : int; cycle : int; bit : int }
      (** from [cycle] on, the config slot firing at [cycle] decodes
          wrongly — persistent until the end of the run *)

val transient_compare : transient -> transient -> int
val transient_equal : transient -> transient -> bool
val transient_to_string : transient -> string

(** Comma-separated rendering; ["none"] for the empty list. *)
val transients_to_string : transient list -> string

val transient_cycle : transient -> int

(** [monte_carlo ~pe_count ~links ~horizon ~rate ~seed] draws one
    Bernoulli trial at probability [rate] per (pe, cycle) pair over
    cycles [0, horizon); struck pairs become bit flips (mostly), link
    glitches on a random wire from [links], or config upsets.
    Deterministic in [seed].  Raises [Invalid_argument] on a negative
    [pe_count] or a rate outside [0, 1]. *)
val monte_carlo :
  pe_count:int ->
  links:(int * int) list ->
  horizon:int ->
  rate:float ->
  seed:int ->
  transient list

(* The CGRA instance: a rows x cols array of PEs joined by a topology.

   This is the "CGRA model" every mapper takes as input (Section II.B
   of the paper): capability queries, neighbour sets and hop-distance
   tables are the only interface the mapping algorithms use, so any
   array describable here is mappable by all of them. *)

open Ocgra_dfg

type t = {
  rows : int;
  cols : int;
  topology : Topology.t;
  pes : Pe.t array; (* length rows * cols, row-major *)
  name : string;
  faults : Fault.t list; (* resources out of service; [] = healthy *)
}

let make ?(name = "cgra") ?(faults = []) ~rows ~cols ~topology pes =
  if Array.length pes <> rows * cols then invalid_arg "Cgra.make: wrong PE count";
  { rows; cols; topology; pes; name; faults = Fault.canonical faults }

let pe_count t = t.rows * t.cols
let pe t i = t.pes.(i)
let coords t i = (i / t.cols, i mod t.cols)
let index t ~row ~col = (row * t.cols) + col

(* ---------- Fault queries ---------- *)

let faults t = t.faults
let with_faults t faults = { t with faults = Fault.canonical faults }

let pe_ok t i =
  not (List.exists (function Fault.Pe_down j -> j = i | _ -> false) t.faults)

let link_ok t i j =
  not (List.exists (function Fault.Link_down (a, b) -> a = i && b = j | _ -> false) t.faults)

(* Slot [s] of the modulo config memory: dead slots only bite mappings
   whose II exceeds the slot index. *)
let slot_ok t ~pe ~ii ~time =
  let s = ((time mod ii) + ii) mod ii in
  not (List.exists (function Fault.Fu_slot_dead (q, d) -> q = pe && d = s | _ -> false) t.faults)

let dead_slots t ~pe =
  List.filter_map
    (function Fault.Fu_slot_dead (q, s) when q = pe -> Some s | _ -> None)
    t.faults

let effective_rf_size t i =
  if not (pe_ok t i) then 0
  else begin
    let lost =
      List.fold_left
        (fun acc f -> match f with Fault.Rf_reduced (j, k) when j = i -> acc + k | _ -> acc)
        0 t.faults
    in
    max 0 (t.pes.(i).Pe.rf_size - lost)
  end

(* Topology adjacency before fault masking: the physical wires. *)
let raw_neighbours t i = Topology.neighbours t.topology ~rows:t.rows ~cols:t.cols i

(* Fault-masked adjacency: the wires a mapping may actually use.  A
   downed endpoint removes all its links, so hop tables, routing and
   validation all avoid faulted resources natively. *)
let neighbours t i =
  match t.faults with
  | [] -> raw_neighbours t i
  | _ ->
      if not (pe_ok t i) then []
      else List.filter (fun j -> pe_ok t j && link_ok t i j) (raw_neighbours t i)

(* PEs a value on [i] can reach in one cycle, including staying put. *)
let reachable_in_one t i = if pe_ok t i then i :: neighbours t i else []

let supports t i op = pe_ok t i && Pe.supports t.pes.(i) op

(* Seeded random fault generator: draws up to [n] distinct faults
   (fewer only when the array runs out of distinct resources).  Pure in
   [seed], so degraded-array experiments are reproducible. *)
let inject_faults t ~seed ~n =
  let rng = Ocgra_util.Rng.create (0x0FA17 lxor seed) in
  let npe = pe_count t in
  let picked = ref [] in
  let attempts = ref 0 in
  let max_attempts = (32 * max 1 n) + 64 in
  while List.length !picked < n && !attempts < max_attempts do
    incr attempts;
    let pe = Ocgra_util.Rng.int rng npe in
    let candidate =
      match Ocgra_util.Rng.int rng 4 with
      | 0 -> Some (Fault.Pe_down pe)
      | 1 -> (
          match raw_neighbours t pe with
          | [] -> None
          | ns -> Some (Fault.Link_down (pe, Ocgra_util.Rng.choose_list rng ns)))
      | 2 -> Some (Fault.Fu_slot_dead (pe, Ocgra_util.Rng.int rng 4))
      | _ ->
          let rf = t.pes.(pe).Pe.rf_size in
          if rf <= 0 then None
          else Some (Fault.Rf_reduced (pe, 1 + Ocgra_util.Rng.int rng rf))
    in
    match candidate with
    | Some f when not (List.exists (Fault.equal f) !picked) -> picked := f :: !picked
    | _ -> ()
  done;
  List.rev !picked

(* All directed physical wires, for the transient-event generator. *)
let raw_links t =
  List.concat_map
    (fun i -> List.map (fun j -> (i, j)) (raw_neighbours t i))
    (List.init (pe_count t) Fun.id)

(* Seeded Monte-Carlo transient bombardment over [horizon] cycles of
   this array; the arch-level convenience over [Fault.monte_carlo]. *)
let inject_transients t ~seed ~horizon ~rate =
  Fault.monte_carlo ~pe_count:(pe_count t) ~links:(raw_links t) ~horizon ~rate
    ~seed:(0x7A4E lxor seed)

let capable_pes t op =
  List.filter (fun i -> supports t i op) (List.init (pe_count t) Fun.id)

let connectivity_graph t =
  let g = Ocgra_graph.Digraph.create ~capacity:(pe_count t) () in
  ignore (Ocgra_graph.Digraph.add_nodes g (pe_count t));
  for i = 0 to pe_count t - 1 do
    List.iter (fun j -> Ocgra_graph.Digraph.add_edge g i j) (neighbours t i)
  done;
  g

(* hops.(i).(j) = minimum number of cycles to move a value from PE i to
   PE j (0 on the diagonal). *)
let hop_table t = Ocgra_graph.Paths.all_pairs_hops (connectivity_graph t)

(* ---------- Standard instances ---------- *)

(* Homogeneous mesh where every cell does everything: the "simple CGRA"
   of Fig. 2. *)
let uniform ?(topology = Topology.Mesh) ?(rf_size = 4) ~rows ~cols () =
  let pe = Pe.make ~rf_size [ Op.F_alu; Op.F_mul; Op.F_mem; Op.F_io ] in
  make
    ~name:(Printf.sprintf "uniform-%dx%d-%s" rows cols (Topology.to_string topology))
    ~rows ~cols ~topology
    (Array.make (rows * cols) pe)

(* ADRES-flavoured heterogeneous array: memory and I/O restricted to the
   first column, multipliers on even cells only. *)
let adres_like ?(topology = Topology.Mesh) ?(rf_size = 8) ~rows ~cols () =
  let pes =
    Array.init (rows * cols) (fun i ->
        let col = i mod cols in
        let base = [ Op.F_alu ] in
        let base = if i mod 2 = 0 then Op.F_mul :: base else base in
        let base = if col = 0 then Op.F_mem :: Op.F_io :: base else base in
        Pe.make ~rf_size base)
  in
  make
    ~name:(Printf.sprintf "adres-%dx%d-%s" rows cols (Topology.to_string topology))
    ~rows ~cols ~topology pes

(* Single full-featured PE: the "CPU-like" end of the Fig. 1 spectrum
   (pure temporal computation). *)
let single_pe ?(rf_size = 16) () =
  make ~name:"single-pe" ~rows:1 ~cols:1 ~topology:Topology.Mesh
    (Array.make 1 (Pe.make ~rf_size [ Op.F_alu; Op.F_mul; Op.F_mem; Op.F_io ]))

let describe t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%s: %dx%d %s\n" t.name t.rows t.cols (Topology.to_string t.topology));
  if t.faults <> [] then
    Buffer.add_string buf (Printf.sprintf "  faults: %s\n" (Fault.list_to_string t.faults));
  for r = 0 to t.rows - 1 do
    for c = 0 to t.cols - 1 do
      let i = index t ~row:r ~col:c in
      Buffer.add_string buf (Printf.sprintf "  PE(%d,%d) %s\n" r c (Pe.to_string t.pes.(i)))
    done
  done;
  Buffer.contents buf

(* Resource fault model for degraded arrays.

   A fault names one physical resource of the CGRA that manufacturing
   defects, ageing, or soft-error screening has taken out of service.
   Mapping onto the degraded array means no binding or route may touch
   a faulted resource; the fault set travels with the [Cgra.t] so every
   mapper, the validator and the simulator see the same degradation. *)

type t =
  | Pe_down of int  (** the whole cell is unusable *)
  | Link_down of int * int  (** the directed link src -> dst is unusable *)
  | Fu_slot_dead of int * int
      (** (pe, slot): config-memory slot [slot] of the PE is dead — the
          FU may not fire (and no value may hop through it) at any cycle
          [t] with [t mod ii = slot], for mappings with [ii > slot]. *)
  | Rf_reduced of int * int
      (** (pe, lost): [lost] registers of the PE's local file are dead;
          the effective capacity is reduced accordingly (clamped at 0). *)

let compare = Stdlib.compare
let equal a b = compare a b = 0

let to_string = function
  | Pe_down pe -> Printf.sprintf "pe-down %d" pe
  | Link_down (src, dst) -> Printf.sprintf "link-down %d->%d" src dst
  | Fu_slot_dead (pe, slot) -> Printf.sprintf "fu-slot-dead pe %d slot %d" pe slot
  | Rf_reduced (pe, lost) -> Printf.sprintf "rf-reduced pe %d by %d" pe lost

(* The canonical form of a fault mask: duplicates dropped, constructor
   then coordinate order.  Every mask that reaches a [Cgra.t] (and every
   rendering) goes through this, so two masks built from differently
   ordered or repeated injections are structurally equal, render the
   same text, and hash the same — a cache or journal keyed on the mask
   never sees two names for one degradation. *)
let canonical faults = List.sort_uniq compare faults

let list_to_string faults =
  match canonical faults with
  | [] -> "none"
  | faults -> String.concat ", " (List.map to_string faults)

(* Mask inclusion over canonical forms — one merge-style walk, so the
   mapping cache's hit/repair/miss decision never depends on the order
   faults were injected in. *)
let subset a b =
  let rec go a b =
    match (a, b) with
    | [], _ -> true
    | _, [] -> false
    | x :: a', y :: b' ->
        let c = compare x y in
        if c = 0 then go a' b' else if c > 0 then go a b' else false
  in
  go (canonical a) (canonical b)

(* ---------- transient events ----------

   Where the permanent faults above describe silicon that is *gone*,
   a transient names one soft-error event that strikes *during* a run:
   a particle flips a datapath bit, a wire glitches for one cycle, or
   the configuration memory itself is upset.  Transients are not
   carried on the [Cgra.t] (the array is physically healthy); they are
   handed to the simulator's fault-injecting mode, which applies them
   mid-run.  Both models coexist: a degraded array can additionally be
   bombarded with transients. *)

type transient =
  | Bit_flip of { pe : int; cycle : int; bit : int }
      (** the output register of [pe], written at the end of [cycle],
          has [bit] inverted — pure data corruption, no control or
          timing effect, hence silent unless a comparator, a voter or
          the output check sees the difference *)
  | Link_drop of { src : int; dst : int; cycle : int }
      (** the value crossing the directed wire src -> dst during
          [cycle] is lost; the consumer latches garbage (modelled as 0)
          in its place *)
  | Config_upset of { pe : int; cycle : int; bit : int }
      (** from [cycle] on, [bit] of the configuration word in the slot
          that fires at [cycle] is inverted.  Config memory holds
          state, so unlike the other two the upset *persists* for the
          rest of the run: the slot decodes a wrong operand mux, which
          the simulator's tag checking then catches (or, for
          operand-less ops, a wrong immediate, which is silent). *)

let transient_compare = Stdlib.compare
let transient_equal a b = transient_compare a b = 0

let transient_to_string = function
  | Bit_flip { pe; cycle; bit } -> Printf.sprintf "bit-flip pe %d cycle %d bit %d" pe cycle bit
  | Link_drop { src; dst; cycle } -> Printf.sprintf "link-drop %d->%d cycle %d" src dst cycle
  | Config_upset { pe; cycle; bit } ->
      Printf.sprintf "config-upset pe %d cycle %d bit %d" pe cycle bit

let transients_to_string = function
  | [] -> "none"
  | l -> String.concat ", " (List.map transient_to_string l)

let transient_cycle = function
  | Bit_flip { cycle; _ } | Link_drop { cycle; _ } | Config_upset { cycle; _ } -> cycle

(* Seeded Monte-Carlo event generator.  Each (pe, cycle) pair is an
   independent Bernoulli trial at probability [rate] — the classic
   per-bit-per-cycle SEU model collapsed to one draw per register.  A
   struck pair then draws the event kind: mostly datapath flips, some
   wire glitches, occasionally a config upset (the relative weights
   follow the usual SEU folklore that logic/datapath upsets outnumber
   config-array hits per bit of exposed state).  [links] is the
   physical directed adjacency; with no wires, glitches fall back to
   bit flips.  Deterministic in [seed]: same seed, same bombardment. *)
let monte_carlo ~pe_count ~links ~horizon ~rate ~seed =
  if pe_count <= 0 then invalid_arg "Fault.monte_carlo: pe_count";
  if rate < 0.0 || rate > 1.0 then invalid_arg "Fault.monte_carlo: rate not in [0,1]";
  let rng = Ocgra_util.Rng.create seed in
  let links = Array.of_list links in
  let events = ref [] in
  for cycle = 0 to horizon - 1 do
    for pe = 0 to pe_count - 1 do
      if Ocgra_util.Rng.float rng 1.0 < rate then begin
        let kind = Ocgra_util.Rng.int rng 100 in
        let ev =
          if kind < 55 || (kind < 85 && Array.length links = 0) then
            Bit_flip { pe; cycle; bit = Ocgra_util.Rng.int rng 24 }
          else if kind < 85 then begin
            let src, dst = Ocgra_util.Rng.choose rng links in
            Link_drop { src; dst; cycle }
          end
          else Config_upset { pe; cycle; bit = Ocgra_util.Rng.int rng 24 }
        in
        events := ev :: !events
      end
    done
  done;
  List.rev !events

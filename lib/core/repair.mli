(** Incremental mapping repair under a new fault mask: salvage a
    previously checker-valid mapping on a further-degraded array
    through a certified escalation ladder instead of remapping cold.

    The ladder, cheapest rung first ({!Mapper.rung}):

    + {e untouched} — the new mask does not touch the mapping; certify
      and return it as is.
    + {e route-only} — every binding survives; freeze all healthy
      placements and routes as pre-claimed occupancy and rip-up/
      re-route only the invalidated edges by PathFinder negotiation.
    + {e re-place} — ops sitting on dead resources are displaced to
      nearby healthy PEs (deterministic spiral candidate order, same
      cycle), then their fan-in/fan-out is re-routed.
    + {e ii-bump} — retry at II+1 (then +2, ...) reusing the surviving
      schedule as the seed: bindings keep their cycles, colliding or
      newly-illegal ops are displaced, all edges re-routed.
    + {e fallback} — hand the problem to {!Mapper.Harness.race} over
      the caller's chain: the cold-solve safety net.

    Every rung's candidate is re-certified by {!Check.validate} under
    the new mask before it is returned — an uncertified mapping can
    never escape, whatever the rung.  Rungs 1–4 are sequential and
    deterministic in their inputs (same problem, mapping and seed give
    byte-identical outcomes for any worker count) and never lower the
    II; only the fallback race is timing-dependent (and only when the
    chain has two or more tiers and [workers > 1]). *)

type diagnosis = {
  dead_nodes : int list;
      (** ids whose binding the new mask invalidates (downed PE, dead
          FU slot, lost capability), ascending *)
  broken_edges : int list;
      (** edge indices whose route the new mask invalidates (dead
          hop/hold resource, downed link, RF capacity loss, or a dead
          endpoint), ascending *)
}

(** What the new fault mask breaks, recomputed from the fault-masked
    arch queries (never by string-matching validator output).  The
    mapping is assumed checker-valid under the {e previous} mask, so
    only fault-dependent constraints are re-examined.  RF-capacity
    losses ([Rf_reduced]) are attributed greedily in edge order: the
    first routes to fit the shrunken file keep it, later ones are
    broken.  Deterministic. *)
val diagnose : Problem.t -> Mapping.t -> diagnosis

val diagnosis_to_string : diagnosis -> string

(** No rung above {!outcome.rung}'s winner is consulted; a failed rung
    escalates to the next.  One record per attempted rung, in ladder
    order, with the winner's verdict [Repaired rung]. *)
type outcome = {
  mapping : Mapping.t option;  (** certified under the new mask, or [None] *)
  rung : Mapper.rung option;  (** the certifying rung; [None] = all failed *)
  diagnosis : diagnosis;
  elapsed_s : float;
  note : string;
  trail : Mapper.tier_report list;
}

(** [repair p m] salvages [m] — checker-valid under the array's
    previous fault mask — for [p], whose [cgra] carries the new mask on
    the same fabric (same dimensions and PE kinds; a different-shaped
    array fails cleanly).  The ladder runs under the one [?deadline]
    budget: an expired clock stops escalation and fails the repair
    rather than emitting an uncertified mapping.

    [?fallback] is the {!Mapper.Harness.race} chain of the last rung
    (default [[]]: the rung is skipped); [?workers] its domain count.
    [?max_iters] bounds each PathFinder negotiation; [?max_ii_bumps]
    how far past the original II the ii-bump rung may climb (within
    the problem's own bound).

    [?obs] attribution: counters [repair.diagnosed] (invalidated
    bindings + routes), [repair.ripped] / [repair.rerouted] (edges
    ripped up / successfully re-routed), [repair.displaced] (ops
    moved), [repair.escalations] (rungs that failed over to the next),
    and one [repair:<rung>] span per attempted rung. *)
val repair :
  ?seed:int ->
  ?deadline:Deadline.t ->
  ?obs:Ocgra_obs.Ctx.t ->
  ?fallback:Mapper.t list ->
  ?workers:int ->
  ?max_iters:int ->
  ?max_ii_bumps:int ->
  Problem.t ->
  Mapping.t ->
  outcome

(* Minimum initiation interval bounds.

   ResMII: for each functional class, the ops needing it divided by the
   PEs providing it.  RecMII: the recurrence bound from the DFG's
   dependence cycles.  MII = max of the two; no modulo schedule can beat
   it, which gives the exact methods their optimality reference. *)

open Ocgra_dfg
open Ocgra_arch

let res_mii (dfg : Dfg.t) (cgra : Cgra.t) =
  let classes = [ Op.F_alu; Op.F_mul; Op.F_mem; Op.F_io ] in
  (* only healthy cells provide capacity on a degraded array *)
  let alive = List.filter (Cgra.pe_ok cgra) (List.init (Cgra.pe_count cgra) Fun.id) in
  let bound_for cls =
    let need =
      Dfg.fold_nodes
        (fun nd acc -> if Op.func_class nd.Dfg.op = cls then acc + 1 else acc)
        dfg 0
    in
    if need = 0 then 1
    else begin
      let have = List.length (List.filter (fun pe -> Pe.has_class (Cgra.pe cgra pe) cls) alive) in
      if have = 0 then max_int (* unmappable on this array *)
      else (need + have - 1) / have
    end
  in
  (* total-op pressure across all live PEs is also a bound *)
  let total =
    match List.length alive with
    | 0 -> max_int
    | n -> (Dfg.node_count dfg + n - 1) / n
  in
  List.fold_left (fun acc cls -> max acc (bound_for cls)) (max 1 total) classes

let rec_mii (dfg : Dfg.t) = Dfg.rec_mii dfg

let mii dfg cgra = max (res_mii dfg cgra) (rec_mii dfg)

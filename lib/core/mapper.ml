(* The common mapper interface.

   Every technique in the framework — one per cell of Table I — is a
   value of [t]: a named, classified function from problem to (maybe)
   mapping.  [run] wraps the raw algorithm with the independent
   validator so an invalid mapping is reported as a failure, never as a
   success.  [Harness] adds the production wrapper: wall-clock
   deadlines, retries and an ordered fallback chain for degraded-array
   or budget-limited service.

   Techniques receive an [Ocgra_obs.Ctx.t] alongside the deadline:
   they record spans around their phases and flush their engine
   counters (SAT conflicts, B&B nodes, CP propagations, ...) into it.
   The default is [Ctx.off], whose every operation is one branch, so
   an untraced run does the same work it always did. *)

module Rng = Ocgra_util.Rng
module Obs = Ocgra_obs.Ctx

(* What happened to one tier try, machine-readable.  [Failed] covers
   both "technique gave up" and "produced an invalid mapping" (the
   latter is flagged by the INVALID prefix in [detail]); [Retried]
   is a failure the harness is about to retry with a varied seed
   (only final tries stay [Failed]); [Cancelled] means the tier was
   told to stop because a sibling already won; [Expired] that its
   wall-clock share ran out first. *)
(* The rungs of [Repair]'s escalation ladder, cheapest first.  They
   live here (not in [Repair]) so a [verdict] can carry which rung
   certified a salvaged mapping — [Repair] itself depends on this
   module for its harness fallback. *)
type rung = Untouched | Route_only | Local_replace | Ii_bump | Full_fallback

let rung_to_string = function
  | Untouched -> "untouched"
  | Route_only -> "route-only"
  | Local_replace -> "re-place"
  | Ii_bump -> "ii-bump"
  | Full_fallback -> "fallback"

let rung_of_string = function
  | "untouched" -> Some Untouched
  | "route-only" -> Some Route_only
  | "re-place" -> Some Local_replace
  | "ii-bump" -> Some Ii_bump
  | "fallback" -> Some Full_fallback
  | _ -> None

type verdict = Won | Mapped_lost | Failed | Retried | Cancelled | Expired | Repaired of rung

let verdict_to_string = function
  | Won -> "won"
  | Mapped_lost -> "mapped but lost the race"
  | Failed -> "failed"
  | Retried -> "failed (retrying)"
  | Cancelled -> "cancelled"
  | Expired -> "deadline expired"
  | Repaired rung -> Printf.sprintf "repaired (%s)" (rung_to_string rung)

type tier_report = {
  tier : string; (* mapper name *)
  try_no : int; (* 0-based retry index *)
  verdict : verdict;
  took_s : float; (* wall clock this try consumed *)
  detail : string; (* the tier's own outcome note *)
  counters : (string * int) list; (* tier-attributed metrics (racing only) *)
}

let report_to_string r =
  Printf.sprintf "%s[try %d]: %s in %.2fs%s" r.tier (r.try_no + 1)
    (verdict_to_string r.verdict) r.took_s
    (if r.detail = "" then "" else " — " ^ r.detail)

type outcome = {
  mapping : Mapping.t option;
  proven_optimal : bool; (* exact method proved II optimal within budget *)
  attempts : int; (* IIs tried, restarts, ... (method-specific) *)
  elapsed_s : float;
  note : string;
  trail : tier_report list; (* per-tier-try records ([] outside the harness) *)
}

type t = {
  name : string;
  citation : string; (* representative papers from the survey *)
  scope : Taxonomy.scope;
  approach : Taxonomy.approach;
  map : Problem.t -> Rng.t -> Deadline.t -> Obs.t -> outcome;
}

let make ~name ~citation ~scope ~approach map = { name; citation; scope; approach; map }

let no_mapping ?(note = "") ~attempts ~elapsed_s () =
  { mapping = None; proven_optimal = false; attempts; elapsed_s; note; trail = [] }

let is_invalid_note note = String.length note >= 7 && String.sub note 0 7 = "INVALID"

(* Run a mapper and validate its output; invalid results are demoted to
   failures with the violations in [note].  [elapsed_s] is measured
   here on the wall clock — the technique's self-reported value is
   never trusted.  An unmappable problem (some op with no capable,
   non-faulted PE) fails fast without entering the technique, since
   several meta-heuristics assume non-empty candidate sets. *)
let run_d (mapper : t) ?(seed = 42) ?(obs = Obs.off) ~deadline:dl (p : Problem.t) =
  let rng = Rng.create seed in
  let t0 = Deadline.now () in
  let finish outcome = { outcome with elapsed_s = Deadline.now () -. t0 } in
  if not (Problem.mappable p) then
    finish
      (no_mapping ~attempts:0 ~elapsed_s:0.0
         ~note:"unmappable: some operation has no capable, non-faulted PE" ())
  else
    Obs.span obs ~cat:"mapper" ("map:" ^ mapper.name) (fun () ->
        Obs.incr obs "mapper.runs";
        let outcome = mapper.map p rng dl obs in
        match outcome.mapping with
        | None -> finish outcome
        | Some m -> (
            match Obs.span obs ~cat:"mapper" "validate" (fun () -> Check.validate p m) with
            | [] -> finish outcome
            | violations ->
                Obs.incr obs "mapper.invalid";
                finish
                  {
                    mapping = None;
                    proven_optimal = false;
                    attempts = outcome.attempts;
                    elapsed_s = 0.0;
                    note =
                      Printf.sprintf "INVALID mapping produced by %s: %s" mapper.name
                        (String.concat " | " violations);
                    trail = [];
                  }))

let run (mapper : t) ?seed ?deadline_s ?obs (p : Problem.t) =
  run_d mapper ?seed ?obs ~deadline:(Deadline.of_seconds deadline_s) p

(* Deadline-bounded, retrying, fallback-chained mapping: the harness a
   mapping service runs instead of a bare [run].  Tier i of an n-tier
   chain receives an equal share of the remaining wall clock
   (remaining / tiers-left), so an exact front tier cannot starve the
   heuristic safety net; each tier is retried with varied seeds; the
   note records which tier answered and why earlier tiers did not, and
   [trail] carries the same story as structured per-try records. *)
module Harness = struct
  (* Classify a non-winning try.  Validation failures keep their
     INVALID marker; otherwise blame the stop signal that was up when
     the tier returned empty-handed, defaulting to a plain failure. *)
  let losing_verdict ~deadline:dl (o : outcome) =
    match o.mapping with
    | Some _ -> Mapped_lost
    | None ->
        if is_invalid_note o.note then Failed
        else if Deadline.cancelled dl then Cancelled
        else if Deadline.expired dl then Expired
        else Failed

  let run ?(seed = 42) ?deadline_s ?(retries = 2) ?(obs = Obs.off) (chain : t list)
      (p : Problem.t) =
    if chain = [] then invalid_arg "Mapper.Harness.run: empty fallback chain";
    let dl = Deadline.of_seconds deadline_s in
    let t0 = Deadline.now () in
    let n = List.length chain in
    let total_attempts = ref 0 in
    let reports = ref [] in
    let record r =
      reports := r :: !reports;
      Obs.event obs ~cat:"harness" "harness.tier"
        [
          ("tier", Ocgra_obs.Events.Str r.tier);
          ("try", Ocgra_obs.Events.Int r.try_no);
          ("verdict", Ocgra_obs.Events.Str (verdict_to_string r.verdict));
        ]
    in
    let trail () = List.rev !reports in
    let failures () =
      String.concat "; "
        (List.filter_map
           (fun r -> if r.verdict = Won then None else Some (report_to_string r))
           (trail ()))
    in
    let rec tiers idx = function
      | [] ->
          {
            mapping = None;
            proven_optimal = false;
            attempts = !total_attempts;
            elapsed_s = Deadline.now () -. t0;
            note = Printf.sprintf "no tier answered: %s" (failures ());
            trail = trail ();
          }
      | m :: rest ->
          let tiers_left = n - idx in
          let rec attempt try_no =
            if try_no >= max 1 retries then None
            else if Deadline.expired dl && try_no > 0 then None
            else begin
              (* equal share of what is left, re-measured per try.  The
                 0.05 s floor deliberately outlives an already-expired
                 parent clock (each tier gets one graced first try), so
                 only the parent's *cancellation hook* is carried over,
                 not its expiry. *)
              let sub =
                match Deadline.remaining_s dl with
                | None -> dl
                | Some r ->
                    Deadline.with_cancel
                      (Deadline.after ~seconds:(max 0.05 (r /. float_of_int tiers_left)))
                      (fun () -> Deadline.cancelled dl)
              in
              let t1 = Deadline.now () in
              let o =
                Obs.span obs ~cat:"harness"
                  (Printf.sprintf "tier:%s#%d" m.name (try_no + 1))
                  (fun () -> run_d m ~seed:(seed + (try_no * 7919)) ~obs ~deadline:sub p)
              in
              let took_s = Deadline.now () -. t1 in
              total_attempts := !total_attempts + max 1 o.attempts;
              match o.mapping with
              | Some _ ->
                  record
                    {
                      tier = m.name;
                      try_no;
                      verdict = Won;
                      took_s;
                      detail = o.note;
                      counters = [];
                    };
                  Some o
              | None ->
                  (* a try the loop is about to rerun is [Retried], so
                     the trail distinguishes "gave up" from "kept
                     going"; the retry condition mirrors the guards at
                     the top of [attempt] *)
                  let will_retry =
                    try_no + 1 < max 1 retries && not (Deadline.expired dl)
                  in
                  let verdict =
                    if will_retry then begin
                      Obs.incr obs "harness.retries";
                      Retried
                    end
                    else losing_verdict ~deadline:sub o
                  in
                  record
                    { tier = m.name; try_no; verdict; took_s; detail = o.note; counters = [] };
                  attempt (try_no + 1)
            end
          in
          (match attempt 0 with
          | Some o ->
              let earlier = failures () in
              {
                o with
                attempts = !total_attempts;
                elapsed_s = Deadline.now () -. t0;
                note =
                  Printf.sprintf "answered by tier %d/%d (%s)%s%s" (idx + 1) n m.name
                    (if o.note = "" then "" else ": " ^ o.note)
                    (if earlier = "" then "" else " | earlier tiers: " ^ earlier);
                trail = trail ();
              }
          | None -> tiers (idx + 1) rest)
    in
    tiers 0 chain

  (* Portfolio racing: every tier starts at once with the *whole*
     budget instead of a 1/tiers-left share, and the first validated
     success cancels the rest.  The cancellation flag is composed into
     the shared deadline with [Deadline.with_cancel], so it reaches
     every engine through the [should_stop] checkpoints they already
     poll — losers return their best partial answer rather than being
     killed, which is what lets the outcome carry a full loser trail.
     Each tier maps into a forked metrics sink, so its counters are
     attributed in its [tier_report] and then folded back into the
     caller's.  Exact and heuristic mappers have wildly different
     latency profiles per kernel (Walter et al.), so the race's answer
     time is min over tiers, never worse than the sequential chain up
     to one poll interval.  On one worker (or a single tier) this
     degrades to the sequential chain with one try per tier. *)
  let race ?(seed = 42) ?deadline_s ?workers ?(obs = Obs.off) (chain : t list) (p : Problem.t)
      =
    if chain = [] then invalid_arg "Mapper.Harness.race: empty fallback chain";
    let n = List.length chain in
    let w = Ocgra_par.Pool.resolve workers n in
    if w <= 1 || n = 1 then run ~seed ?deadline_s ~retries:1 ~obs chain p
    else begin
      let t0 = Deadline.now () in
      let cancel = Ocgra_par.Cancel.create () in
      let dl =
        Deadline.with_cancel (Deadline.of_seconds deadline_s) (Ocgra_par.Cancel.hook cancel)
      in
      let tiers = Array.of_list chain in
      let forks = Array.map (fun _ -> Obs.fork obs) tiers in
      let thunks =
        Array.mapi
          (fun i m () ->
            let t1 = Deadline.now () in
            let o =
              Obs.span forks.(i) ~cat:"harness"
                (Printf.sprintf "tier:%s#1" m.name)
                (fun () -> run_d m ~seed ~obs:forks.(i) ~deadline:dl p)
            in
            (o, Deadline.now () -. t1))
          tiers
      in
      let results, winner =
        Ocgra_par.Race.run ~workers:w ~obs ~cancel
          ~accept:(fun (o, _) -> o.mapping <> None)
          thunks
      in
      Array.iter (fun f -> Obs.absorb ~into:obs f) forks;
      let outcomes = Array.map fst results in
      let attempts = Array.fold_left (fun acc o -> acc + max 1 o.attempts) 0 outcomes in
      let elapsed_s = Deadline.now () -. t0 in
      let report i =
        let o, took_s = results.(i) in
        {
          tier = tiers.(i).name;
          try_no = 0;
          verdict = (if winner = Some i then Won else losing_verdict ~deadline:dl o);
          took_s;
          detail = o.note;
          counters = Ocgra_obs.Metrics.dump (Obs.metrics forks.(i));
        }
      in
      let trail = List.init n report in
      (* emitted post-hoc in tier order, not from inside the racing
         domains, so the combined event log stays deterministic *)
      List.iter
        (fun r ->
          Obs.event obs ~cat:"harness" "harness.tier"
            [
              ("tier", Ocgra_obs.Events.Str r.tier);
              ("try", Ocgra_obs.Events.Int r.try_no);
              ("verdict", Ocgra_obs.Events.Str (verdict_to_string r.verdict));
            ])
        trail;
      let losers i =
        String.concat "; "
          (List.map report_to_string (List.filteri (fun j _ -> j <> i) trail))
      in
      match winner with
      | Some i ->
          let o = outcomes.(i) in
          {
            o with
            attempts;
            elapsed_s;
            note =
              Printf.sprintf "race won by tier %d/%d (%s)%s | %s" (i + 1) n tiers.(i).name
                (if o.note = "" then "" else ": " ^ o.note)
                (losers i);
            trail;
          }
      | None ->
          {
            mapping = None;
            proven_optimal = false;
            attempts;
            elapsed_s;
            note =
              Printf.sprintf "no tier won the race: %s"
                (String.concat "; " (List.map report_to_string trail));
            trail;
          }
    end
end

(* The common mapper interface.

   Every technique in the framework — one per cell of Table I — is a
   value of [t]: a named, classified function from problem to (maybe)
   mapping.  [run] wraps the raw algorithm with the independent
   validator so an invalid mapping is reported as a failure, never as a
   success.  [Harness] adds the production wrapper: wall-clock
   deadlines, retries and an ordered fallback chain for degraded-array
   or budget-limited service. *)

module Rng = Ocgra_util.Rng

type outcome = {
  mapping : Mapping.t option;
  proven_optimal : bool; (* exact method proved II optimal within budget *)
  attempts : int; (* IIs tried, restarts, ... (method-specific) *)
  elapsed_s : float;
  note : string;
}

type t = {
  name : string;
  citation : string; (* representative papers from the survey *)
  scope : Taxonomy.scope;
  approach : Taxonomy.approach;
  map : Problem.t -> Rng.t -> Deadline.t -> outcome;
}

let make ~name ~citation ~scope ~approach map = { name; citation; scope; approach; map }

let no_mapping ?(note = "") ~attempts ~elapsed_s () =
  { mapping = None; proven_optimal = false; attempts; elapsed_s; note }

(* Run a mapper and validate its output; invalid results are demoted to
   failures with the violations in [note].  [elapsed_s] is measured
   here on the wall clock — the technique's self-reported value is
   never trusted.  An unmappable problem (some op with no capable,
   non-faulted PE) fails fast without entering the technique, since
   several meta-heuristics assume non-empty candidate sets. *)
let run_d (mapper : t) ?(seed = 42) ~deadline:dl (p : Problem.t) =
  let rng = Rng.create seed in
  let t0 = Deadline.now () in
  let finish outcome = { outcome with elapsed_s = Deadline.now () -. t0 } in
  if not (Problem.mappable p) then
    finish
      (no_mapping ~attempts:0 ~elapsed_s:0.0
         ~note:"unmappable: some operation has no capable, non-faulted PE" ())
  else begin
    let outcome = mapper.map p rng dl in
    match outcome.mapping with
    | None -> finish outcome
    | Some m -> (
        match Check.validate p m with
        | [] -> finish outcome
        | violations ->
            finish
              {
                mapping = None;
                proven_optimal = false;
                attempts = outcome.attempts;
                elapsed_s = 0.0;
                note =
                  Printf.sprintf "INVALID mapping produced by %s: %s" mapper.name
                    (String.concat " | " violations);
              })
  end

let run (mapper : t) ?seed ?deadline_s (p : Problem.t) =
  run_d mapper ?seed ~deadline:(Deadline.of_seconds deadline_s) p

(* Deadline-bounded, retrying, fallback-chained mapping: the harness a
   mapping service runs instead of a bare [run].  Tier i of an n-tier
   chain receives an equal share of the remaining wall clock
   (remaining / tiers-left), so an exact front tier cannot starve the
   heuristic safety net; each tier is retried with varied seeds; the
   note records which tier answered and why earlier tiers did not. *)
module Harness = struct
  let run ?(seed = 42) ?deadline_s ?(retries = 2) (chain : t list) (p : Problem.t) =
    if chain = [] then invalid_arg "Mapper.Harness.run: empty fallback chain";
    let dl = Deadline.of_seconds deadline_s in
    let t0 = Deadline.now () in
    let n = List.length chain in
    let total_attempts = ref 0 in
    let trail = Buffer.create 64 in
    let record_failure (m : t) ~try_no note =
      Buffer.add_string trail
        (Printf.sprintf "%s[try %d]: %s; " m.name (try_no + 1)
           (if note = "" then "no mapping" else note))
    in
    let rec tiers idx = function
      | [] ->
          {
            mapping = None;
            proven_optimal = false;
            attempts = !total_attempts;
            elapsed_s = Deadline.now () -. t0;
            note = Printf.sprintf "no tier answered: %s" (Buffer.contents trail);
          }
      | m :: rest ->
          let tiers_left = n - idx in
          let rec attempt try_no =
            if try_no >= max 1 retries then None
            else if Deadline.expired dl && try_no > 0 then None
            else begin
              (* equal share of what is left, re-measured per try.  The
                 0.05 s floor deliberately outlives an already-expired
                 parent clock (each tier gets one graced first try), so
                 only the parent's *cancellation hook* is carried over,
                 not its expiry. *)
              let sub =
                match Deadline.remaining_s dl with
                | None -> dl
                | Some r ->
                    Deadline.with_cancel
                      (Deadline.after ~seconds:(max 0.05 (r /. float_of_int tiers_left)))
                      (fun () -> Deadline.cancelled dl)
              in
              let o = run_d m ~seed:(seed + (try_no * 7919)) ~deadline:sub p in
              total_attempts := !total_attempts + max 1 o.attempts;
              match o.mapping with
              | Some _ -> Some o
              | None ->
                  record_failure m ~try_no o.note;
                  attempt (try_no + 1)
            end
          in
          (match attempt 0 with
          | Some o ->
              {
                o with
                attempts = !total_attempts;
                elapsed_s = Deadline.now () -. t0;
                note =
                  Printf.sprintf "answered by tier %d/%d (%s)%s%s" (idx + 1) n m.name
                    (if o.note = "" then "" else ": " ^ o.note)
                    (if Buffer.length trail = 0 then ""
                     else " | earlier tiers: " ^ Buffer.contents trail);
              }
          | None -> tiers (idx + 1) rest)
    in
    tiers 0 chain

  (* Portfolio racing: every tier starts at once with the *whole*
     budget instead of a 1/tiers-left share, and the first validated
     success cancels the rest.  The cancellation flag is composed into
     the shared deadline with [Deadline.with_cancel], so it reaches
     every engine through the [should_stop] checkpoints they already
     poll — losers return their best partial answer rather than being
     killed, which is what lets the outcome note carry the loser
     trail.  Exact and heuristic mappers have wildly different latency
     profiles per kernel (Walter et al.), so the race's answer time is
     min over tiers, never worse than the sequential chain up to one
     poll interval.  On one worker (or a single tier) this degrades to
     the sequential chain with one try per tier. *)
  let race ?(seed = 42) ?deadline_s ?workers (chain : t list) (p : Problem.t) =
    if chain = [] then invalid_arg "Mapper.Harness.race: empty fallback chain";
    let n = List.length chain in
    let w = Ocgra_par.Pool.resolve workers n in
    if w <= 1 || n = 1 then run ~seed ?deadline_s ~retries:1 chain p
    else begin
      let t0 = Deadline.now () in
      let cancel = Ocgra_par.Cancel.create () in
      let dl =
        Deadline.with_cancel (Deadline.of_seconds deadline_s) (Ocgra_par.Cancel.hook cancel)
      in
      let tiers = Array.of_list chain in
      let thunks = Array.map (fun m () -> run_d m ~seed ~deadline:dl p) tiers in
      let outcomes, winner =
        Ocgra_par.Race.run ~workers:w ~cancel
          ~accept:(fun o -> o.mapping <> None)
          thunks
      in
      let attempts = Array.fold_left (fun acc o -> acc + max 1 o.attempts) 0 outcomes in
      let elapsed_s = Deadline.now () -. t0 in
      let trail_of i =
        let o = outcomes.(i) in
        Printf.sprintf "%s: %s" tiers.(i).name
          (match o.mapping with
          | Some _ -> "also mapped (lost the race)"
          | None -> if o.note = "" then "no mapping" else o.note)
      in
      let others i = List.filter (fun j -> j <> i) (List.init n Fun.id) in
      match winner with
      | Some i ->
          let o = outcomes.(i) in
          {
            o with
            attempts;
            elapsed_s;
            note =
              Printf.sprintf "race won by tier %d/%d (%s)%s | %s" (i + 1) n tiers.(i).name
                (if o.note = "" then "" else ": " ^ o.note)
                (String.concat "; " (List.map trail_of (others i)));
          }
      | None ->
          {
            mapping = None;
            proven_optimal = false;
            attempts;
            elapsed_s;
            note =
              Printf.sprintf "no tier won the race: %s"
                (String.concat "; " (List.map trail_of (List.init n Fun.id)));
          }
    end
end

(* Monotonic-clock budgets for mapping runs.

   A deadline is an absolute expiry instant (or none).  Engines receive
   it as a cheap [should_stop : unit -> bool] polling hook; mappers
   check it between restarts / II iterations.  The clock is
   CLOCK_MONOTONIC (via bechamel's stub), not wall time: an NTP step or
   a suspend/resume must neither silently expire a budget nor extend
   it.  Monotonic elapsed time, not CPU time, so a stuck solver is
   bounded even when it sleeps or pages. *)

type t = No_deadline | Expires_at of float

(* Seconds on the monotonic clock.  The epoch is arbitrary (boot time
   on Linux); only differences are meaningful, which is all a deadline
   or an elapsed-time measurement needs. *)
let now () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

let none = No_deadline
let after ~seconds = Expires_at (now () +. seconds)
let of_seconds = function None -> No_deadline | Some s -> after ~seconds:s

let expired = function
  | No_deadline -> false
  | Expires_at e -> now () > e

let remaining_s = function
  | No_deadline -> None
  | Expires_at e -> Some (max 0.0 (e -. now ()))

let should_stop t () = expired t

(* Monotonic-clock budgets and composable stop signals for mapping
   runs.

   A deadline is an absolute expiry instant (or none) plus an optional
   external cancellation hook (e.g. an [Ocgra_par.Cancel] flag set by
   the winner of a portfolio race).  Engines receive the whole thing as
   a cheap [should_stop : unit -> bool] polling hook; mappers check it
   between restarts / II iterations, so one composed signal bounds and
   cancels every tier of the stack without per-engine plumbing.  The
   clock is CLOCK_MONOTONIC (via bechamel's stub), not wall time: an
   NTP step or a suspend/resume must neither silently expire a budget
   nor extend it.  Monotonic elapsed time, not CPU time, so a stuck
   solver is bounded even when it sleeps or pages — and so budgets
   still mean "seconds of service latency" when worker domains run in
   parallel (CPU time sums across cores). *)

type t = {
  expires_at : float option; (* monotonic instant *)
  cancelled : (unit -> bool) option; (* external stop signal, ORed in *)
}

(* Seconds on the monotonic clock.  The epoch is arbitrary (boot time
   on Linux); only differences are meaningful, which is all a deadline
   or an elapsed-time measurement needs. *)
let now () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

let none = { expires_at = None; cancelled = None }
let after ~seconds = { none with expires_at = Some (now () +. seconds) }
let of_seconds = function None -> none | Some s -> after ~seconds:s

let with_cancel t hook =
  {
    t with
    cancelled =
      (match t.cancelled with
      | None -> Some hook
      | Some g -> Some (fun () -> g () || hook ()));
  }

let sooner a b =
  {
    expires_at =
      (match (a.expires_at, b.expires_at) with
      | None, e | e, None -> e
      | Some x, Some y -> Some (min x y));
    cancelled =
      (match (a.cancelled, b.cancelled) with
      | None, c | c, None -> c
      | Some f, Some g -> Some (fun () -> f () || g ()));
  }

let cancelled t = match t.cancelled with None -> false | Some f -> f ()

let expired t =
  cancelled t || (match t.expires_at with None -> false | Some e -> now () > e)

let remaining_s t = Option.map (fun e -> max 0.0 (e -. now ())) t.expires_at
let should_stop t () = expired t

(* Router over the time-expanded modulo routing resource graph (MRRG).

   A route moves a value from its producer (pu, tu) to a consumer
   (pv, tv + dist * II) through one-cycle hops (Route ops occupying FU
   slots) and register-file holds (occupying RF entries).  Because
   every transition advances time by exactly one cycle (RF entry is the
   only zero-time move), the search is a layered dynamic program over
   states (pe, in_rf) per cycle — Dijkstra specialised to a DAG.

   Costs are supplied by the caller: [fu_cost pe time] and
   [rf_cost pe time] return [None] to forbid a resource (strict
   routing) or [Some c] to price it (negotiated congestion). *)

open Ocgra_arch

type cost_model = {
  fu_cost : int -> int -> int option; (* pe -> absolute time -> cost *)
  rf_cost : int -> int -> int option;
}

(* Strict cost model against an occupancy: occupied FU slots and full
   RFs are forbidden; free resources have unit-ish costs that prefer
   short paths and cheap holds. *)
let strict (cgra : Cgra.t) (occ : Occupancy.t) =
  {
    fu_cost = (fun pe time -> if Occupancy.fu_free occ ~pe ~time then Some 4 else None);
    rf_cost =
      (fun pe time ->
        let size = Cgra.effective_rf_size cgra pe in
        if Occupancy.rf_count occ ~pe ~time < size then Some 1 else None);
  }

(* Congestion pricing for negotiated (PathFinder-style) routing: overuse
   is allowed but increasingly expensive.  Faulted slots stay hard
   obstacles — congestion may not negotiate with dead silicon. *)
let congestion ?(alpha = 40) (cgra : Cgra.t) (occ : Occupancy.t) =
  {
    fu_cost =
      (fun pe time ->
        match Occupancy.fu_user occ ~pe ~time with
        | Some Occupancy.U_fault -> None
        | Some _ -> Some (4 + alpha)
        | None -> Some 4);
    rf_cost =
      (fun pe time ->
        let size = Cgra.effective_rf_size cgra pe in
        if size = 0 then None
        else begin
          let over = Occupancy.rf_count occ ~pe ~time - size + 1 in
          Some (1 + (alpha * max 0 over))
        end);
  }

let inf = max_int / 4

(* The cost field of a routing search: costs and parents per layer
   (cycle offset from [avail]) and state (pe, in_rf).  The edge-centric
   mapper reads the whole field to choose consumer slots; [find]
   extracts one goal. *)
type field = {
  cgra : Cgra.t;
  avail : int;
  src_pe : int;
  layers : int;
  cost : int array array; (* layer -> state -> cost *)
  parent : int array array; (* layer -> state -> layer * nstates + state *)
}

let state_cost field ~layer ~pe ~in_rf =
  field.cost.(layer).((2 * pe) + if in_rf then 1 else 0)

(* Build the cost field up to [layers] cycles after [avail].

   [ii] teaches the search which transitions are structurally illegal
   at II = 1: a self-hop re-uses the same FU slot its producer (or the
   previous hop) already holds, and an RF hold needs two FU uses of the
   holding PE (the write-through instruction and the reader), so both
   are dropped — II = 1 routing is exact-length disjoint paths, the
   systolic regime.  Residual modulo self-conflicts of long routes at
   II >= 2 are caught at claim time by the callers. *)
let explore ?(ii = max_int) (cgra : Cgra.t) (cm : cost_model) ~src_pe ~avail ~layers =
  let npe = Cgra.pe_count cgra in
  let rf_usable = ii > 1 in
  let hop_targets =
    Array.init npe (fun pe -> if ii > 1 then Cgra.reachable_in_one cgra pe else Cgra.neighbours cgra pe)
  in
  let nstates = npe * 2 in
  let idx pe in_rf = (2 * pe) + if in_rf then 1 else 0 in
  let cost = Array.init (layers + 1) (fun _ -> Array.make nstates inf) in
  let parent = Array.init (layers + 1) (fun _ -> Array.make nstates (-1)) in
  let time_of_layer l = avail + l in
  cost.(0).(idx src_pe false) <- 0;
    (* entering the RF is a zero-time move within a layer: the RF write
       happens at the end of the value's production cycle *)
    let intra_layer l =
      if rf_usable then begin
        let t = time_of_layer l in
        for pe = 0 to npe - 1 do
          let cf = cost.(l).(idx pe false) in
          if cf < inf then begin
            match cm.rf_cost pe t with
            | Some c when cf + c < cost.(l).(idx pe true) ->
                cost.(l).(idx pe true) <- cf + c;
                parent.(l).(idx pe true) <- (l * nstates) + idx pe false
            | _ -> ()
          end
        done
      end
    in
    intra_layer 0;
    for l = 0 to layers - 1 do
      let t = time_of_layer l in
      for pe = 0 to npe - 1 do
        let cf = cost.(l).(idx pe false) in
        if cf < inf then
          (* hop: Route op on q at cycle t reads pe's output register *)
          List.iter
            (fun q ->
              match cm.fu_cost q t with
              | Some c when cf + c < cost.(l + 1).(idx q false) ->
                  cost.(l + 1).(idx q false) <- cf + c;
                  parent.(l + 1).(idx q false) <- (l * nstates) + idx pe false
              | _ -> ())
            hop_targets.(pe);
        let cr = cost.(l).(idx pe true) in
        if cr < inf then begin
          (* keep holding *)
          (match cm.rf_cost pe (t + 1) with
          | Some c when cr + c < cost.(l + 1).(idx pe true) ->
              cost.(l + 1).(idx pe true) <- cr + c;
              parent.(l + 1).(idx pe true) <- (l * nstates) + idx pe true
          | _ -> ());
          (* re-emit: Route op on pe at cycle t reads own RF *)
          match cm.fu_cost pe t with
          | Some c when cr + c < cost.(l + 1).(idx pe false) ->
              cost.(l + 1).(idx pe false) <- cr + c;
              parent.(l + 1).(idx pe false) <- (l * nstates) + idx pe true
          | _ -> ()
        end
      done;
      intra_layer (l + 1)
    done;
  { cgra; avail; src_pe; layers; cost; parent }

(* Best final state for a consumer on [dst_pe] reading at layer [l]:
   a neighbour's (or own) output register, or its own RF. *)
let goal_state (field : field) ~dst_pe ~layer =
  let cgra = field.cgra in
  let npe = Cgra.pe_count cgra in
  let idx pe in_rf = (2 * pe) + if in_rf then 1 else 0 in
  let best = ref inf and best_state = ref (-1) in
  for pe = 0 to npe - 1 do
    if pe = dst_pe || List.mem dst_pe (Cgra.neighbours cgra pe) then begin
      let c = field.cost.(layer).(idx pe false) in
      if c < !best then begin
        best := c;
        best_state := idx pe false
      end
    end
  done;
  let c_rf = field.cost.(layer).(idx dst_pe true) in
  if c_rf < !best then begin
    best := c_rf;
    best_state := idx dst_pe true
  end;
  if !best >= inf then None else Some (!best_state, !best)

(* Extract the steps reaching [dst_pe] at [consume_at] from a field. *)
let extract (field : field) ~dst_pe ~consume_at =
  let layers = consume_at - field.avail in
  if layers < 0 || layers > field.layers then None
  else begin
    let npe = Cgra.pe_count field.cgra in
    let nstates = npe * 2 in
    let time_of_layer l = field.avail + l in
    match goal_state field ~dst_pe ~layer:layers with
    | None -> None
    | Some (goal, best) ->
        (* walk parents to recover the (layer, state) sequence *)
        let seq = ref [] in
        let l = ref layers and s = ref goal in
        let continue_ = ref true in
        while !continue_ do
          seq := (!l, !s) :: !seq;
          let p = field.parent.(!l).(!s) in
          if p < 0 then continue_ := false
          else begin
            l := p / nstates;
            s := p mod nstates
          end
        done;
        (* forward pass: convert state transitions into steps *)
        let steps = ref [] in
        let rf_entry_time = ref None in
        let rec walk = function
          | (l1, s1) :: ((l2, s2) :: _ as rest) ->
              let t1 = time_of_layer l1 in
              let pe1 = s1 / 2 and rf1 = s1 land 1 = 1 in
              let pe2 = s2 / 2 and rf2 = s2 land 1 = 1 in
              (if l1 = l2 then begin
                 (* rf entry at time t1 *)
                 assert ((not rf1) && rf2 && pe1 = pe2);
                 rf_entry_time := Some t1
               end
               else if rf1 && rf2 then () (* hold extension *)
               else if rf1 && not rf2 then begin
                 (* re-emit: Hold then Hop on pe1 at t1 *)
                 match !rf_entry_time with
                 | Some te ->
                     steps :=
                       Mapping.Hop { pe = pe1; time = t1 }
                       :: Mapping.Hold { pe = pe1; from_ = te - 1; until = t1 }
                       :: !steps;
                     rf_entry_time := None
                 | None -> steps := Mapping.Hop { pe = pe1; time = t1 } :: !steps
               end
               else (* plain hop onto pe2 *)
                 steps := Mapping.Hop { pe = pe2; time = t1 } :: !steps);
              walk rest
          | [ (_, s_last) ] ->
              if s_last land 1 = 1 then begin
                match !rf_entry_time with
                | Some te ->
                    steps :=
                      Mapping.Hold { pe = s_last / 2; from_ = te - 1; until = consume_at }
                      :: !steps
                | None -> ()
              end
          | [] -> ()
        in
        walk !seq;
        Some (List.rev !steps, best)
  end

(* Find a cheapest route for a value produced on [src_pe] readable from
   cycle [avail] to a consumer op on [dst_pe] executing at cycle
   [consume_at].  Returns (steps, cost). *)
let find ?ii (cgra : Cgra.t) (cm : cost_model) ~src_pe ~avail ~dst_pe ~consume_at =
  if consume_at < avail then None
  else begin
    let field = explore ?ii cgra cm ~src_pe ~avail ~layers:(consume_at - avail) in
    extract field ~dst_pe ~consume_at
  end

(* Convenience: route a DFG edge of a partially-built mapping.  [lat]
   is the producer latency; [ii] the initiation interval (the consumer
   of a distance-d edge reads d iterations later). *)
let route_edge cgra cm ~ii ~src:(src_pe, src_time) ~dst:(dst_pe, dst_time) ~lat ~dist =
  find ~ii cgra cm ~src_pe ~avail:(src_time + lat) ~dst_pe
    ~consume_at:(dst_time + (dist * ii))

(** Monotonic-clock budgets for mapping runs.

    Built on CLOCK_MONOTONIC (no signals/threads; immune to NTP steps
    and suspend/resume, which on a wall clock silently expire or extend
    budgets): the engines poll [should_stop] at checkpoints, so expiry
    surfaces as a graceful "no mapping / unknown" rather than an
    interrupt. *)

type t

(** Never expires. *)
val none : t

(** Expires [seconds] of wall clock from now. *)
val after : seconds:float -> t

(** [None] -> {!none}, [Some s] -> {!after} [s]. *)
val of_seconds : float option -> t

val expired : t -> bool

(** Seconds left (clamped at 0), or [None] for {!none}. *)
val remaining_s : t -> float option

(** Polling hook to hand to an engine. *)
val should_stop : t -> unit -> bool

(** Current monotonic time in seconds (arbitrary epoch — only
    differences are meaningful), for elapsed measurements. *)
val now : unit -> float

(** Monotonic-clock budgets and composable stop signals for mapping
    runs.

    Built on CLOCK_MONOTONIC (no signals/threads; immune to NTP steps
    and suspend/resume, which on a wall clock silently expire or extend
    budgets): the engines poll [should_stop] at checkpoints, so expiry
    surfaces as a graceful "no mapping / unknown" rather than an
    interrupt.  A deadline can also carry an external cancellation hook
    ({!with_cancel}) — e.g. the winner of a {!Mapper.Harness.race}
    cancelling the losing tiers — which the same [should_stop] polling
    observes, so engines need no extra plumbing to become cancellable. *)

type t

(** Never expires. *)
val none : t

(** Expires [seconds] of wall clock from now. *)
val after : seconds:float -> t

(** [None] -> {!none}, [Some s] -> {!after} [s]. *)
val of_seconds : float option -> t

(** [with_cancel t hook] also stops when [hook ()] is true (ORed with
    the expiry and any previously attached hook).  [hook] is polled
    from whatever domain runs the engine, so it must be domain-safe —
    an [Atomic.t]-backed flag such as [Ocgra_par.Cancel.hook], not a
    closure over unsynchronised mutable state. *)
val with_cancel : t -> (unit -> bool) -> t

(** [sooner a b] expires when the earlier of the two does, and is
    cancelled when either is. *)
val sooner : t -> t -> t

(** True when the attached cancellation hook (if any) has fired,
    regardless of the clock. *)
val cancelled : t -> bool

(** Expiry or cancellation. *)
val expired : t -> bool

(** Seconds left on the clock (clamped at 0), or [None] for {!none};
    ignores cancellation hooks. *)
val remaining_s : t -> float option

(** Polling hook to hand to an engine. *)
val should_stop : t -> unit -> bool

(** Current monotonic time in seconds (arbitrary epoch — only
    differences are meaningful), for elapsed measurements. *)
val now : unit -> float

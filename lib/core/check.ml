(* Independent mapping validator.

   Every mapper's output is validated here before it is reported: the
   checker recomputes all resource usage and dependence timing from
   scratch, sharing no state with the router, so that a bug in a mapper
   or in the router surfaces as a violation rather than as a silently
   wrong "valid mapping".  This is the framework's ground truth for
   what Section II.C calls "a valid mapping, i.e. a binding (and
   scheduling) of operations of the application on the hardware
   resources while guaranteeing the dependencies". *)

open Ocgra_dfg
open Ocgra_arch

type violation = string

let validate (p : Problem.t) (m : Mapping.t) : violation list =
  let problems = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let dfg = p.dfg and cgra = p.cgra in
  let npe = Cgra.pe_count cgra in
  let n = Dfg.node_count dfg in
  (* 0. shape *)
  if m.ii < 1 then fail "II = %d < 1" m.ii;
  (match p.kind with
  | Problem.Spatial -> if m.ii <> 1 then fail "spatial mapping must have II = 1 (got %d)" m.ii
  | Problem.Temporal { max_ii; _ } ->
      if m.ii > max_ii then fail "II = %d exceeds the problem bound %d" m.ii max_ii);
  if Array.length m.binding <> n then
    fail "binding covers %d nodes, DFG has %d" (Array.length m.binding) n;
  if Array.length m.routes <> Dfg.edge_count dfg then
    fail "routes cover %d edges, DFG has %d" (Array.length m.routes) (Dfg.edge_count dfg);
  if !problems <> [] then List.rev !problems
  else begin
    let horizon = Problem.max_time p in
    (* 1. binding legality (fault checks first, so a violation names the
       faulted resource rather than a derived capability failure) *)
    Array.iteri
      (fun v (pe, time) ->
        if pe < 0 || pe >= npe then fail "node %d bound to nonexistent PE %d" v pe
        else begin
          if time < 0 || time >= horizon then fail "node %d scheduled at cycle %d (horizon %d)" v time horizon;
          if not (Cgra.pe_ok cgra pe) then fail "node %d bound to faulted PE %d (pe-down)" v pe
          else begin
            if not (Cgra.slot_ok cgra ~pe ~ii:m.ii ~time) then
              fail "node %d scheduled in dead FU slot (pe %d, slot %d)" v pe
                (((time mod m.ii) + m.ii) mod m.ii);
            let op = Dfg.op dfg v in
            if not (Cgra.supports cgra pe op) then
              fail "node %d (%s) bound to PE %d which does not support it" v (Op.to_string op) pe
          end
        end)
      m.binding;
    if !problems <> [] then List.rev !problems
    else begin
      (* 2. FU exclusivity (modulo II) and RF capacity *)
      let fu = Array.make (npe * m.ii) [] in
      let slot pe time = (pe * m.ii) + (((time mod m.ii) + m.ii) mod m.ii) in
      Array.iteri
        (fun v (pe, time) -> fu.(slot pe time) <- Printf.sprintf "op %d" v :: fu.(slot pe time))
        m.binding;
      Array.iteri
        (fun e route ->
          List.iter
            (function
              | Mapping.Hop { pe; time } ->
                  if pe < 0 || pe >= npe then fail "edge %d hop on nonexistent PE %d" e pe
                  else if time < 0 then fail "edge %d hop at negative cycle %d" e time
                  else begin
                    if not (Cgra.pe_ok cgra pe) then fail "edge %d: hop on faulted PE %d (pe-down)" e pe
                    else if not (Cgra.slot_ok cgra ~pe ~ii:m.ii ~time) then
                      fail "edge %d: hop in dead FU slot (pe %d, slot %d)" e pe
                        (((time mod m.ii) + m.ii) mod m.ii);
                    fu.(slot pe time) <- Printf.sprintf "route %d" e :: fu.(slot pe time)
                  end
              | Mapping.Hold { pe; _ } ->
                  if pe >= 0 && pe < npe && not (Cgra.pe_ok cgra pe) then
                    fail "edge %d: hold on faulted PE %d (pe-down)" e pe)
            route)
        m.routes;
      Array.iteri
        (fun i users ->
          if List.length users > 1 then
            fail "FU slot (pe %d, slot %d) oversubscribed: %s" (i / m.ii) (i mod m.ii)
              (String.concat ", " users))
        fu;
      let rf = Array.make (npe * m.ii) 0 in
      Array.iteri
        (fun e route ->
          List.iter
            (function
              | Mapping.Hold { pe; from_; until } ->
                  if pe < 0 || pe >= npe then fail "edge %d hold on nonexistent PE %d" e pe
                  else if until <= from_ then fail "edge %d hold with empty span %d..%d" e from_ until
                  else
                    for cy = from_ + 1 to until do
                      rf.(slot pe cy) <- rf.(slot pe cy) + 1
                    done
              | Mapping.Hop _ -> ())
            route)
        m.routes;
      Array.iteri
        (fun i count ->
          let pe = i / m.ii in
          let size = Cgra.effective_rf_size cgra pe in
          if count > size then
            fail "RF of PE %d oversubscribed at slot %d: %d live values, %d registers%s" pe
              (i mod m.ii) count size
              (if size < (Cgra.pe cgra pe).Pe.rf_size then " (reduced by fault)" else ""))
        rf;
      (* 3. every dependence is routed with consistent timing *)
      List.iteri
        (fun e (edge : Dfg.edge) ->
          let src_pe, src_time = m.binding.(edge.src) in
          let dst_pe, dst_time = m.binding.(edge.dst) in
          let lat = Op.latency (Dfg.op dfg edge.src) in
          let consume_at = dst_time + (edge.dist * m.ii) in
          let avail = ref (src_time + lat) in
          let cur = ref src_pe in
          let in_rf = ref false in
          let ok = ref true in
          List.iter
            (fun step ->
              if !ok then
                match step with
                | Mapping.Hop { pe; time } ->
                    if time <> !avail then begin
                      fail "edge %d (%d->%d): hop at cycle %d but value readable at %d" e edge.src
                        edge.dst time !avail;
                      ok := false
                    end
                    else if !in_rf && pe <> !cur then begin
                      fail "edge %d: hop off-PE %d while value is in RF of PE %d" e pe !cur;
                      ok := false
                    end
                    else if
                      (not !in_rf) && pe <> !cur && not (List.mem pe (Cgra.neighbours cgra !cur))
                    then begin
                      if List.mem pe (Cgra.raw_neighbours cgra !cur) then
                        fail "edge %d: hop from PE %d to PE %d over a faulted link or endpoint" e
                          !cur pe
                      else fail "edge %d: hop from PE %d to non-neighbour PE %d" e !cur pe;
                      ok := false
                    end
                    else begin
                      avail := time + 1;
                      cur := pe;
                      in_rf := false
                    end
                | Mapping.Hold { pe; from_; until } ->
                    if !in_rf then begin
                      fail "edge %d: consecutive holds" e;
                      ok := false
                    end
                    else if pe <> !cur then begin
                      fail "edge %d: hold on PE %d but value lives on PE %d" e pe !cur;
                      ok := false
                    end
                    else if from_ <> !avail - 1 then begin
                      fail "edge %d: hold written at end of %d but value produced at end of %d" e
                        from_ (!avail - 1);
                      ok := false
                    end
                    else if until < !avail then begin
                      fail "edge %d: hold read at %d before the value exists (%d)" e until !avail;
                      ok := false
                    end
                    else begin
                      avail := until;
                      in_rf := true
                    end)
            m.routes.(e);
          if !ok then begin
            if !avail <> consume_at then
              fail "edge %d (%d->%d): value arrives at cycle %d, consumer reads at %d" e edge.src
                edge.dst !avail consume_at;
            if !in_rf then begin
              if !cur <> dst_pe then
                fail "edge %d: value held in RF of PE %d but consumer is on PE %d" e !cur dst_pe
            end
            else if !cur <> dst_pe && not (List.mem dst_pe (Cgra.neighbours cgra !cur)) then
              if List.mem dst_pe (Cgra.raw_neighbours cgra !cur) then
                fail "edge %d: consumer PE %d reads PE %d over a faulted link or endpoint" e dst_pe
                  !cur
              else
                fail "edge %d: consumer PE %d cannot read output of non-neighbour PE %d" e dst_pe
                  !cur
          end)
        (Dfg.edges dfg);
      List.rev !problems
    end
  end

let is_valid p m = validate p m = []

(** The common mapper interface: every technique in the framework —
    one per Table I cell — is a value of {!t}. *)

type outcome = {
  mapping : Mapping.t option;
  proven_optimal : bool;  (** the II was certified minimal within budget *)
  attempts : int;  (** IIs tried, restarts, ... (method-specific) *)
  elapsed_s : float;
  note : string;
}

type t = {
  name : string;
  citation : string;  (** representative papers from the survey *)
  scope : Taxonomy.scope;
  approach : Taxonomy.approach;
  map : Problem.t -> Ocgra_util.Rng.t -> Deadline.t -> outcome;
      (** techniques poll the {!Deadline.t} at their checkpoints and
          return their best partial answer when it expires *)
}

val make :
  name:string ->
  citation:string ->
  scope:Taxonomy.scope ->
  approach:Taxonomy.approach ->
  (Problem.t -> Ocgra_util.Rng.t -> Deadline.t -> outcome) ->
  t

val no_mapping : ?note:string -> attempts:int -> elapsed_s:float -> unit -> outcome

(** Run a mapper and validate its output with {!Check.validate}:
    invalid mappings are demoted to failures with the violations in
    [note], so a mapper can never report a wrong mapping as success —
    including on a degraded array, whose fault constraints the
    validator enforces.  [elapsed_s] is measured here on the wall
    clock; the technique's self-reported value is ignored.
    [?deadline_s] bounds the run in wall-clock seconds. *)
val run : t -> ?seed:int -> ?deadline_s:float -> Problem.t -> outcome

(** Like {!run}, but with a caller-built {!Deadline.t} — the hook for
    composed stop signals (a shared budget plus a race-cancellation
    flag attached with {!Deadline.with_cancel}). *)
val run_d : t -> ?seed:int -> deadline:Deadline.t -> Problem.t -> outcome

(** Deadline-bounded, retrying, fallback-chained mapping. *)
module Harness : sig
  (** [run chain p] tries each tier of [chain] in order (each via
      {!Mapper.run}, so every answer is validated), giving tier i an
      equal share of the remaining wall clock and up to [retries]
      seed-varied tries, and returns the first success.  The outcome
      [note] records which tier answered and why earlier tiers failed;
      when no tier answers, the failure note carries the whole trail.
      Raises [Invalid_argument] on an empty chain. *)
  val run : ?seed:int -> ?deadline_s:float -> ?retries:int -> t list -> Problem.t -> outcome

  (** [race chain p] runs every tier of [chain] concurrently on up to
      [workers] domains (default {!Ocgra_par.Pool.default_workers}),
      each with the whole [deadline_s] budget; the first *validated*
      success wins and cancels the rest through the stop signal every
      engine already polls, so the answer arrives in min-over-tiers
      time instead of the chain's sum.  Losers are never killed: they
      observe cancellation, return, and their failure notes form the
      loser trail in the outcome [note].  With one worker or a single
      tier this degrades to the sequential {!run} with [retries = 1].
      Which tier wins a close race is timing-dependent, but the result
      is always a validated mapping (or a failure carrying the whole
      trail).  Raises [Invalid_argument] on an empty chain. *)
  val race : ?seed:int -> ?deadline_s:float -> ?workers:int -> t list -> Problem.t -> outcome
end

(** The common mapper interface: every technique in the framework —
    one per Table I cell — is a value of {!t}. *)

(** The rungs of {!Repair}'s certified escalation ladder, cheapest
    first; defined here so a {!verdict} can carry the certifying rung. *)
type rung = Untouched | Route_only | Local_replace | Ii_bump | Full_fallback

val rung_to_string : rung -> string

(** Inverse of {!rung_to_string}; [None] on unknown names. *)
val rung_of_string : string -> rung option

(** What happened to one harness tier try.  [Failed] covers both
    "technique gave up" and "produced an invalid mapping" (the latter
    carries the validator's INVALID note in [detail]); [Retried] is a
    failed try the harness immediately reran with a varied seed (only
    a tier's final failing try stays [Failed]); [Cancelled] means a
    sibling won the race first; [Expired] that the tier's wall-clock
    share ran out; [Repaired r] that {!Repair}'s ladder certified the
    mapping at rung [r]. *)
type verdict = Won | Mapped_lost | Failed | Retried | Cancelled | Expired | Repaired of rung

val verdict_to_string : verdict -> string

type tier_report = {
  tier : string;  (** mapper name *)
  try_no : int;  (** 0-based retry index *)
  verdict : verdict;
  took_s : float;  (** wall clock this try consumed *)
  detail : string;  (** the tier's own outcome note *)
  counters : (string * int) list;
      (** engine counters attributed to this tier (racing only; [[]]
          elsewhere, and for races run without a live metrics sink) *)
}

val report_to_string : tier_report -> string

type outcome = {
  mapping : Mapping.t option;
  proven_optimal : bool;  (** the II was certified minimal within budget *)
  attempts : int;  (** IIs tried, restarts, ... (method-specific) *)
  elapsed_s : float;
  note : string;
  trail : tier_report list;
      (** one record per tier try, in execution (chain) order — [[]]
          outside the harness *)
}

type t = {
  name : string;
  citation : string;  (** representative papers from the survey *)
  scope : Taxonomy.scope;
  approach : Taxonomy.approach;
  map : Problem.t -> Ocgra_util.Rng.t -> Deadline.t -> Ocgra_obs.Ctx.t -> outcome;
      (** techniques poll the {!Deadline.t} at their checkpoints and
          return their best partial answer when it expires; they record
          spans and flush engine counters into the context (which
          defaults to the one-branch no-op [Ctx.off]) *)
}

val make :
  name:string ->
  citation:string ->
  scope:Taxonomy.scope ->
  approach:Taxonomy.approach ->
  (Problem.t -> Ocgra_util.Rng.t -> Deadline.t -> Ocgra_obs.Ctx.t -> outcome) ->
  t

val no_mapping : ?note:string -> attempts:int -> elapsed_s:float -> unit -> outcome

(** Run a mapper and validate its output with {!Check.validate}:
    invalid mappings are demoted to failures with the violations in
    [note], so a mapper can never report a wrong mapping as success —
    including on a degraded array, whose fault constraints the
    validator enforces.  [elapsed_s] is measured here on the wall
    clock; the technique's self-reported value is ignored.
    [?deadline_s] bounds the run in wall-clock seconds; [?obs] (default
    off) receives a [map:<name>] span, a [validate] sub-span and the
    technique's own spans and counters. *)
val run : t -> ?seed:int -> ?deadline_s:float -> ?obs:Ocgra_obs.Ctx.t -> Problem.t -> outcome

(** Like {!run}, but with a caller-built {!Deadline.t} — the hook for
    composed stop signals (a shared budget plus a race-cancellation
    flag attached with {!Deadline.with_cancel}). *)
val run_d :
  t -> ?seed:int -> ?obs:Ocgra_obs.Ctx.t -> deadline:Deadline.t -> Problem.t -> outcome

(** Deadline-bounded, retrying, fallback-chained mapping. *)
module Harness : sig
  (** [run chain p] tries each tier of [chain] in order (each via
      {!Mapper.run}, so every answer is validated), giving tier i an
      equal share of the remaining wall clock and up to [retries]
      seed-varied tries, and returns the first success.  The outcome
      [trail] carries one {!tier_report} per try; [note] renders the
      same story as text.  Raises [Invalid_argument] on an empty
      chain. *)
  val run :
    ?seed:int ->
    ?deadline_s:float ->
    ?retries:int ->
    ?obs:Ocgra_obs.Ctx.t ->
    t list ->
    Problem.t ->
    outcome

  (** [race chain p] runs every tier of [chain] concurrently on up to
      [workers] domains (default {!Ocgra_par.Pool.default_workers}),
      each with the whole [deadline_s] budget; the first *validated*
      success wins and cancels the rest through the stop signal every
      engine already polls, so the answer arrives in min-over-tiers
      time instead of the chain's sum.  Losers are never killed: they
      observe cancellation, return, and land in the outcome [trail]
      with their verdict ({!Mapped_lost}, {!Cancelled}, {!Expired} or
      {!Failed}), elapsed time, and — when a live metrics sink is
      passed — the engine counters attributed to that tier (each tier
      maps into an {!Ocgra_obs.Ctx.fork}, folded back afterwards).
      With one worker or a single tier this degrades to the sequential
      {!run} with [retries = 1].  Which tier wins a close race is
      timing-dependent, but the result is always a validated mapping
      (or a failure carrying the whole trail).  Raises
      [Invalid_argument] on an empty chain. *)
  val race :
    ?seed:int ->
    ?deadline_s:float ->
    ?workers:int ->
    ?obs:Ocgra_obs.Ctx.t ->
    t list ->
    Problem.t ->
    outcome
end

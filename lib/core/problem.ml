(* The unified mapping problem formulation (Section II.C of the paper):

   "bind in place and schedule in time operations of the application on
   the CGRA while guaranteeing the dependencies and in a short time,
   such that the application executes as fast as possible."

   A spatial problem asks for a one-op-per-PE pipeline (II = 1, each PE
   used by at most one operation or routing hop).  A temporal problem
   asks for a modulo schedule: operations share PEs in time, and the
   schedule repeats every II cycles. *)

open Ocgra_dfg
open Ocgra_arch

type kind =
  | Spatial (* II = 1 pipeline; every FU used at most once *)
  | Temporal of { max_ii : int; max_time : int }

type t = {
  dfg : Dfg.t;
  cgra : Cgra.t;
  kind : kind;
  init : int -> int; (* initial (iteration -1) value of each node, for recurrences *)
}

let make ?(init = fun (_ : int) -> 0) ~dfg ~cgra kind = { dfg; cgra; kind; init }

let spatial ?init ~dfg ~cgra () = make ?init ~dfg ~cgra Spatial

let temporal ?init ?max_ii ?max_time ~dfg ~cgra () =
  let max_ii = match max_ii with Some i -> i | None -> max 1 (Dfg.node_count dfg) in
  let max_time =
    match max_time with Some t -> t | None -> (4 * Dfg.critical_path dfg) + 16
  in
  make ?init ~dfg ~cgra (Temporal { max_ii; max_time })

let is_spatial t = t.kind = Spatial

let max_ii t = match t.kind with Spatial -> 1 | Temporal { max_ii; _ } -> max_ii

let max_time t =
  match t.kind with
  | Spatial -> (2 * Dfg.node_count t.dfg) + Dfg.critical_path t.dfg + 4
  | Temporal { max_time; _ } -> max_time

(* Every op has at least one capable (non-faulted) PE.  Mappers whose
   candidate generation assumes non-empty capability sets are guarded
   by this in [Mapper.run], so a heavily degraded array fails cleanly
   instead of raising. *)
let mappable t =
  Dfg.fold_nodes
    (fun nd acc -> acc && Cgra.capable_pes t.cgra nd.Dfg.op <> [])
    t.dfg true

(* Everything about the problem that is NOT the DFG and NOT the fault
   mask: the fabric (dimensions, topology, per-PE capability classes,
   RF depth, immediate field) and the problem kind with its bounds.
   Two problems with equal signatures accept the same mappings up to
   the DFG and the degradation — which is exactly the split the
   mapping cache keys on: the DFG goes through canonicalization, and
   the fault mask is compared separately so a grown mask can take the
   repair path instead of forcing a cold miss. *)
let signature t =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "%dx%d:%s" t.cgra.Cgra.rows t.cgra.Cgra.cols
       (Topology.to_string t.cgra.Cgra.topology));
  Array.iter
    (fun (pe : Pe.t) ->
      Buffer.add_char b '|';
      List.iter
        (fun c -> Buffer.add_string b (Ocgra_dfg.Op.func_class_to_string c))
        pe.Pe.classes;
      Buffer.add_string b (Printf.sprintf ":%d%s" pe.Pe.rf_size (if pe.Pe.has_const then "c" else "")))
    t.cgra.Cgra.pes;
  Buffer.add_string b
    (match t.kind with
    | Spatial -> ";spatial"
    | Temporal { max_ii; max_time } -> Printf.sprintf ";temporal:%d:%d" max_ii max_time);
  Buffer.contents b

let describe t =
  Printf.sprintf "%s on %s (%s, %d ops, %d deps)"
    (match t.kind with
    | Spatial -> "spatial mapping"
    | Temporal { max_ii; _ } -> Printf.sprintf "temporal mapping (II <= %d)" max_ii)
    t.cgra.Cgra.name
    (if Dfg.is_acyclic t.dfg then "acyclic" else "with recurrences")
    (Dfg.node_count t.dfg) (Dfg.edge_count t.dfg)

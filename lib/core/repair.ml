(* Incremental mapping repair under fault masks.

   A production mapping service cannot afford to re-solve from scratch
   every time the array degrades: PEs, links, FU slots and RF entries
   fail one at a time, and the cached mapping is almost entirely still
   legal.  This module salvages a previously checker-valid mapping on a
   further-degraded array through a certified escalation ladder —
   diagnose exactly what the new mask breaks, freeze everything
   healthy, and repair the smallest thing that works:

     untouched -> route-only -> re-place -> ii-bump -> full fallback

   Certification contract: every rung's candidate passes
   [Check.validate] under the new mask before it is returned (the
   negotiated router validates internally, and the ladder driver
   re-validates once more), so an uncertified mapping can never escape,
   whatever the rung.  Rungs 1-4 are deterministic in their inputs;
   only the fallback race (2+ tiers, 2+ workers) is timing-dependent.

   Determinism notes: diagnosis walks nodes and edges in index order;
   RF-capacity loss is attributed greedily in edge order; displacement
   candidates are sorted by (Manhattan ring distance from the old cell,
   PE index) — a deterministic spiral; the ii-bump keep-or-displace
   pass processes nodes in id order.  No RNG is consulted before the
   fallback rung. *)

open Ocgra_dfg
open Ocgra_arch
module Obs = Ocgra_obs.Ctx

type diagnosis = { dead_nodes : int list; broken_edges : int list }

let diagnosis_to_string d =
  Printf.sprintf "%d dead binding(s) %s, %d broken route(s) %s"
    (List.length d.dead_nodes)
    ("[" ^ String.concat "," (List.map string_of_int d.dead_nodes) ^ "]")
    (List.length d.broken_edges)
    ("[" ^ String.concat "," (List.map string_of_int d.broken_edges) ^ "]")

(* What the new mask breaks, from the fault-masked arch queries alone.
   The mapping is assumed checker-valid under the previous mask, so
   timing and structural constraints hold; only fault-dependent
   legality is re-examined — the same conditions [Check.validate]
   enforces, without re-deriving the rest. *)
let diagnose (p : Problem.t) (m : Mapping.t) =
  let cgra = p.cgra and dfg = p.dfg in
  let ii = m.Mapping.ii in
  let dead_nodes =
    List.filter
      (fun v ->
        let pe, time = m.Mapping.binding.(v) in
        (not (Cgra.pe_ok cgra pe))
        || (not (Cgra.slot_ok cgra ~pe ~ii ~time))
        || not (Cgra.supports cgra pe (Dfg.op dfg v)))
      (List.init (Dfg.node_count dfg) Fun.id)
  in
  let dead v = List.mem v dead_nodes in
  let edges = Array.of_list (Dfg.edges dfg) in
  (* replay each route's walk, testing only the fault-masked conditions:
     dead hop/hold resources, masked adjacency, dead endpoints *)
  let fault_broken e =
    let edge = edges.(e) in
    dead edge.Dfg.src || dead edge.Dfg.dst
    ||
    let src_pe, _ = m.Mapping.binding.(edge.Dfg.src) in
    let dst_pe, _ = m.Mapping.binding.(edge.Dfg.dst) in
    let cur = ref src_pe and in_rf = ref false and bad = ref false in
    List.iter
      (fun step ->
        match step with
        | Mapping.Hop { pe; time } ->
            if (not (Cgra.pe_ok cgra pe)) || not (Cgra.slot_ok cgra ~pe ~ii ~time) then
              bad := true;
            if (not !in_rf) && pe <> !cur && not (List.mem pe (Cgra.neighbours cgra !cur)) then
              bad := true;
            cur := pe;
            in_rf := false
        | Mapping.Hold { pe; _ } ->
            if not (Cgra.pe_ok cgra pe) then bad := true;
            in_rf := true)
      m.Mapping.routes.(e);
    if (not !in_rf) && !cur <> dst_pe && not (List.mem dst_pe (Cgra.neighbours cgra !cur)) then
      bad := true;
    !bad
  in
  let broken = Array.init (Array.length edges) fault_broken in
  (* RF-capacity pass ([Rf_reduced]): surviving routes keep their holds
     greedily in edge order; one that no longer fits the shrunken file
     anywhere along its span is broken.  Per-cycle counting mirrors the
     checker's rotating-register accounting, multiplicities included. *)
  let npe = Cgra.pe_count cgra in
  let rf = Array.make (npe * ii) 0 in
  let slot pe cy = (pe * ii) + (((cy mod ii) + ii) mod ii) in
  Array.iteri
    (fun e route ->
      if not broken.(e) then begin
        let cells =
          List.concat_map
            (function
              | Mapping.Hold { pe; from_; until } ->
                  List.map (slot pe) (Occupancy.hold_span ~from_ ~until)
              | Mapping.Hop _ -> [])
            route
        in
        let added = ref [] in
        let fits =
          List.for_all
            (fun i ->
              rf.(i) < Cgra.effective_rf_size cgra (i / ii)
              && begin
                   rf.(i) <- rf.(i) + 1;
                   added := i :: !added;
                   true
                 end)
            cells
        in
        if not fits then begin
          List.iter (fun i -> rf.(i) <- rf.(i) - 1) !added;
          broken.(e) <- true
        end
      end)
    m.Mapping.routes;
  {
    dead_nodes;
    broken_edges = List.filter (fun e -> broken.(e)) (List.init (Array.length edges) Fun.id);
  }

type outcome = {
  mapping : Mapping.t option;
  rung : Mapper.rung option;
  diagnosis : diagnosis;
  elapsed_s : float;
  note : string;
  trail : Mapper.tier_report list;
}

let repair ?(seed = 42) ?(deadline = Deadline.none) ?(obs = Obs.off) ?(fallback = []) ?workers
    ?(max_iters = 24) ?(max_ii_bumps = 2) (p : Problem.t) (m0 : Mapping.t) =
  let t0 = Deadline.now () in
  let cgra = p.Problem.cgra in
  let npe = Cgra.pe_count cgra in
  let reports = ref [] in
  let mk_outcome ~diagnosis mapping rung note =
    { mapping; rung; diagnosis; elapsed_s = Deadline.now () -. t0; note; trail = List.rev !reports }
  in
  if
    Array.length m0.Mapping.binding <> Dfg.node_count p.Problem.dfg
    || Array.length m0.Mapping.routes <> Dfg.edge_count p.Problem.dfg
    || Array.exists (fun (pe, _) -> pe < 0 || pe >= npe) m0.Mapping.binding
  then
    mk_outcome
      ~diagnosis:{ dead_nodes = []; broken_edges = [] }
      None None "repair refused: mapping shape does not match the problem"
  else begin
    let d = Obs.span obs ~cat:"repair" "repair:diagnose" (fun () -> diagnose p m0) in
    Obs.add obs "repair.diagnosed" (List.length d.dead_nodes + List.length d.broken_edges);
    let mk_outcome = mk_outcome ~diagnosis:d in
    if not (Problem.mappable p) then
      mk_outcome None None
        (Printf.sprintf "unrepairable: some operation has no capable, non-faulted PE (%s)"
           (diagnosis_to_string d))
    else begin
      (* deterministic spiral: healthy capable PEs by Manhattan ring
         distance from the op's old cell, PE index breaking ties *)
      let spiral_candidates ~occ ~ii op ~from_pe ~time =
        let fr, fc = Cgra.coords cgra from_pe in
        let dist pe =
          let r, c = Cgra.coords cgra pe in
          abs (r - fr) + abs (c - fc)
        in
        Cgra.capable_pes cgra op
        |> List.filter (fun pe -> Cgra.slot_ok cgra ~pe ~ii ~time && Occupancy.fu_free occ ~pe ~time)
        |> List.sort (fun a b -> compare (dist a, a) (dist b, b))
      in
      (* ---- rung: untouched ---- *)
      let untouched () =
        match Check.validate p m0 with
        | [] -> (Some m0, "new mask does not touch the mapping")
        | v :: _ -> (None, "diagnosis clean but validator disagrees: " ^ v)
      in
      (* ---- rung: route-only ---- *)
      let route_only () =
        let broken = d.broken_edges in
        Obs.add obs "repair.ripped" (List.length broken);
        match
          try
            let occ = Occupancy.create ~cgra ~npe ~ii:m0.Mapping.ii () in
            Occupancy.claim_frozen occ
              ~keep_edge:(fun e -> not (List.mem e broken))
              ~binding:m0.Mapping.binding ~routes:m0.Mapping.routes ();
            Pathfinder.route_all ~obs ~frozen:occ ~only:broken ~init_routes:m0.Mapping.routes p
              ~ii:m0.Mapping.ii m0.Mapping.binding ~max_iters
          with Invalid_argument _ -> None
        with
        | Some m ->
            Obs.add obs "repair.rerouted" (List.length broken);
            ( Some m,
              Printf.sprintf "re-routed %d edge(s) around the mask, all else frozen"
                (List.length broken) )
        | None ->
            (None, Printf.sprintf "could not re-route %d broken edge(s)" (List.length broken))
      in
      (* ---- rung: local re-place ---- *)
      let local_replace () =
        (* diagnosis marks every edge touching a dead endpoint broken,
           so [d.broken_edges] is exactly the rip-up set *)
        let affected = d.broken_edges in
        let deadp v = List.mem v d.dead_nodes in
        try
          let occ = Occupancy.create ~cgra ~npe ~ii:m0.Mapping.ii () in
          Occupancy.claim_frozen occ ~skip_nodes:deadp
            ~keep_edge:(fun e -> not (List.mem e affected))
            ~binding:m0.Mapping.binding ~routes:m0.Mapping.routes ();
          let binding = Array.copy m0.Mapping.binding in
          let placed =
            List.for_all
              (fun v ->
                let pe0, time = m0.Mapping.binding.(v) in
                match
                  spiral_candidates ~occ ~ii:m0.Mapping.ii (Dfg.op p.Problem.dfg v) ~from_pe:pe0
                    ~time
                with
                | [] -> false
                | pe :: _ ->
                    Occupancy.claim_fu occ ~pe ~time (Occupancy.U_node v);
                    binding.(v) <- (pe, time);
                    Obs.incr obs "repair.displaced";
                    true)
              d.dead_nodes
          in
          if not placed then (None, "an op on dead silicon has no nearby healthy slot")
          else begin
            Obs.add obs "repair.ripped" (List.length affected);
            match
              Pathfinder.route_all ~obs ~frozen:occ ~only:affected ~init_routes:m0.Mapping.routes
                p ~ii:m0.Mapping.ii binding ~max_iters
            with
            | Some m ->
                Obs.add obs "repair.rerouted" (List.length affected);
                ( Some m,
                  Printf.sprintf "displaced %d op(s), re-routed %d edge(s)"
                    (List.length d.dead_nodes) (List.length affected) )
            | None -> (None, "displaced ops could not be re-routed")
          end
        with Invalid_argument _ -> (None, "frozen claims collide under the new mask")
      in
      (* ---- rung: ii bump ---- *)
      let ii_bump () =
        let top = min (Problem.max_ii p) (m0.Mapping.ii + max 1 max_ii_bumps) in
        let rec go ii =
          if ii > top then
            (None, Printf.sprintf "no II in (%d, %d] worked" m0.Mapping.ii top)
          else if ii > m0.Mapping.ii + 1 && Deadline.expired deadline then
            (None, "budget expired mid-bump")
          else begin
            (* seed the retry with the surviving schedule: every binding
               keeps its cycle; ops whose slot is dead or collides at
               the wider II are displaced, in id order *)
            let occ = Occupancy.create ~cgra ~npe ~ii () in
            let binding = Array.copy m0.Mapping.binding in
            let pending = ref [] in
            Array.iteri
              (fun v (pe, time) ->
                if
                  Cgra.supports cgra pe (Dfg.op p.Problem.dfg v)
                  && Cgra.slot_ok cgra ~pe ~ii ~time
                  && Occupancy.fu_free occ ~pe ~time
                then Occupancy.claim_fu occ ~pe ~time (Occupancy.U_node v)
                else pending := v :: !pending)
              binding;
            let displaced = ref 0 in
            let placed =
              List.for_all
                (fun v ->
                  let pe0, time = m0.Mapping.binding.(v) in
                  match
                    spiral_candidates ~occ ~ii (Dfg.op p.Problem.dfg v) ~from_pe:pe0 ~time
                  with
                  | [] -> false
                  | pe :: _ ->
                      Occupancy.claim_fu occ ~pe ~time (Occupancy.U_node v);
                      binding.(v) <- (pe, time);
                      incr displaced;
                      true)
                (List.rev !pending)
            in
            if not placed then go (ii + 1)
            else begin
              match Pathfinder.route_all ~obs p ~ii binding ~max_iters with
              | Some m ->
                  Obs.add obs "repair.displaced" !displaced;
                  ( Some m,
                    Printf.sprintf "II %d -> %d (%d op(s) displaced)" m0.Mapping.ii ii !displaced
                  )
              | None -> go (ii + 1)
            end
          end
        in
        if m0.Mapping.ii >= Problem.max_ii p then (None, "already at the II bound")
        else go (m0.Mapping.ii + 1)
      in
      (* ---- rung: full fallback ---- *)
      let full_fallback () =
        let o = Mapper.Harness.race ~seed ?deadline_s:(Deadline.remaining_s deadline) ?workers ~obs fallback p in
        match o.Mapper.mapping with
        | Some m -> (Some m, "cold remap: " ^ o.Mapper.note)
        | None -> (None, "cold remap failed: " ^ o.Mapper.note)
      in
      let rungs =
        (if d.dead_nodes = [] && d.broken_edges = [] then [ (Mapper.Untouched, untouched) ]
         else if d.dead_nodes = [] then [ (Mapper.Route_only, route_only) ]
         else [ (Mapper.Local_replace, local_replace) ])
        @ (if Problem.is_spatial p then [] else [ (Mapper.Ii_bump, ii_bump) ])
        @ if fallback = [] then [] else [ (Mapper.Full_fallback, full_fallback) ]
      in
      let rec climb first = function
        | [] ->
            let failures =
              String.concat "; " (List.rev_map Mapper.report_to_string !reports)
            in
            mk_outcome None None
              (Printf.sprintf "no rung certified a repair (%s): %s" (diagnosis_to_string d)
                 failures)
        | (rung, f) :: rest ->
            if (not first) && Deadline.expired deadline then begin
              let name = Mapper.rung_to_string rung in
              reports :=
                {
                  Mapper.tier = "repair:" ^ name;
                  try_no = 0;
                  verdict = Mapper.Expired;
                  took_s = 0.0;
                  detail = "budget expired before this rung";
                  counters = [];
                }
                :: !reports;
              climb false rest
            end
            else begin
              let name = Mapper.rung_to_string rung in
              let t1 = Deadline.now () in
              let cand, detail = Obs.span obs ~cat:"repair" ("repair:" ^ name) f in
              (* the certification contract, enforced once more at the
                 ladder driver whatever the rung did internally *)
              let cand, detail =
                match cand with
                | Some m when Check.validate p m <> [] ->
                    (None, "UNCERTIFIED candidate demoted: " ^ detail)
                | c -> (c, detail)
              in
              let took_s = Deadline.now () -. t1 in
              let verdict =
                match cand with
                | Some _ -> Mapper.Repaired rung
                | None -> if Deadline.expired deadline then Mapper.Expired else Mapper.Failed
              in
              (* per-rung elapsed distribution (microseconds — an
                 integer histogram) and the ladder transition as an
                 event; the event carries no timing so repair event
                 logs stay deterministic for a fixed scenario *)
              Obs.observe obs ("repair.rung_us." ^ name)
                (int_of_float (took_s *. 1e6));
              Obs.event obs ~cat:"repair" "repair.rung"
                [
                  ("rung", Ocgra_obs.Events.Str name);
                  ( "verdict",
                    Ocgra_obs.Events.Str
                      (match verdict with
                      | Mapper.Repaired _ -> "repaired"
                      | Mapper.Expired -> "expired"
                      | _ -> "failed") );
                ];
              reports :=
                { Mapper.tier = "repair:" ^ name; try_no = 0; verdict; took_s; detail; counters = [] }
                :: !reports;
              match cand with
              | Some m ->
                  mk_outcome (Some m) (Some rung)
                    (Printf.sprintf "repaired (%s): %s" name detail)
              | None ->
                  Obs.incr obs "repair.escalations";
                  climb false rest
            end
      in
      climb true rungs
    end
  end

(** Negotiated-congestion routing (PathFinder, as SPR ported it to
    CGRAs): route every edge of a fixed binding simultaneously under
    soft resource prices, raising history costs on over-subscribed
    resources until the routes untangle. *)

(** [route_all p ~ii binding ~max_iters] returns a checker-valid full
    mapping, or [None] when an edge is unroutable or negotiation does
    not converge within the budget.  Node placement legality is the
    caller's responsibility (see [Ocgra_mappers.Finalize]).  Each
    rip-up-and-reroute round bumps the [pathfinder.iterations] counter
    of [?obs].

    The incremental form used by [Repair]: [?frozen] pre-claimed
    resources (surviving bindings/routes plus [U_fault]) are hard
    obstacles whose RF load is baseline pressure; [?only] restricts
    negotiation to the given edge indices; [?init_routes] supplies the
    untouched routes of the rest, copied into the returned mapping.
    The final mapping is validated whole, so a frozen route that turned
    illegal still fails the call rather than slipping through. *)
val route_all :
  ?obs:Ocgra_obs.Ctx.t ->
  ?frozen:Occupancy.t ->
  ?only:int list ->
  ?init_routes:Mapping.route array ->
  Problem.t ->
  ii:int ->
  (int * int) array ->
  max_iters:int ->
  Mapping.t option

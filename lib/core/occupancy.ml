(* Modulo resource occupancy: who uses each FU slot (pe, cycle mod II)
   and how many values sit in each register file per slot.

   This is the bookkeeping side of the MRRG: constructive mappers claim
   resources as they bind and route, and ask the router for paths that
   avoid (or negotiate with) claimed resources.  RF pressure counts per
   slot model a rotating register file ([29]): a value alive L cycles
   costs one entry in each of the L successive slots (so ceil(L/II)
   physical registers), which makes per-slot counting exact. *)

type user = U_node of int | U_route of int | U_fault
(* DFG node id / DFG edge index / permanently dead resource *)

type t = {
  ii : int;
  npe : int;
  fu : user option array; (* (pe * ii + slot) -> user *)
  rf : int array; (* (pe * ii + slot) -> live value count *)
}

(* Pre-claim every dead FU slot with [U_fault]: the one claim mechanism
   shared by [create ?cgra] (constructive mappers), the negotiated
   router, and [Repair]'s frozen-occupancy rebuilds — dead silicon looks
   permanently busy to all of them.  Slots already claimed are left to
   their user (a caller may claim bindings first and mask afterwards). *)
let preclaim_faults t cgra =
  for pe = 0 to t.npe - 1 do
    if not (Ocgra_arch.Cgra.pe_ok cgra pe) then
      for s = 0 to t.ii - 1 do
        if t.fu.((pe * t.ii) + s) = None then t.fu.((pe * t.ii) + s) <- Some U_fault
      done
    else
      List.iter
        (fun s ->
          if s < t.ii && t.fu.((pe * t.ii) + s) = None then t.fu.((pe * t.ii) + s) <- Some U_fault)
        (Ocgra_arch.Cgra.dead_slots cgra ~pe)
  done

(* With [?cgra], faulted FU slots are pre-claimed by [U_fault] so every
   constructive mapper and router treats them as permanently busy. *)
let create ?cgra ~npe ~ii () =
  let t = { ii; npe; fu = Array.make (npe * ii) None; rf = Array.make (npe * ii) 0 } in
  Option.iter (preclaim_faults t) cgra;
  t

let slot_index t pe time = (pe * t.ii) + (((time mod t.ii) + t.ii) mod t.ii)

let fu_user t ~pe ~time = t.fu.(slot_index t pe time)
let fu_free t ~pe ~time = fu_user t ~pe ~time = None

let claim_fu t ~pe ~time user =
  let i = slot_index t pe time in
  match t.fu.(i) with
  | None -> t.fu.(i) <- Some user
  | Some _ -> invalid_arg "Occupancy.claim_fu: slot already in use"

let release_fu t ~pe ~time =
  let i = slot_index t pe time in
  t.fu.(i) <- None

let rf_count t ~pe ~time = t.rf.(slot_index t pe time)

(* A hold written at end of [from_] and read during [until] occupies
   one entry during every cycle in (from_, until]. *)
let hold_span ~from_ ~until = List.init (until - from_) (fun i -> from_ + 1 + i)

let claim_hold t ~pe ~from_ ~until =
  List.iter
    (fun cy ->
      let i = slot_index t pe cy in
      t.rf.(i) <- t.rf.(i) + 1)
    (hold_span ~from_ ~until)

let release_hold t ~pe ~from_ ~until =
  List.iter
    (fun cy ->
      let i = slot_index t pe cy in
      t.rf.(i) <- t.rf.(i) - 1)
    (hold_span ~from_ ~until)

let claim_route t edge_idx (route : Mapping.route) =
  List.iter
    (function
      | Mapping.Hop { pe; time } -> claim_fu t ~pe ~time (U_route edge_idx)
      | Mapping.Hold { pe; from_; until } -> claim_hold t ~pe ~from_ ~until)
    route

let release_route t (route : Mapping.route) =
  List.iter
    (function
      | Mapping.Hop { pe; time } -> release_fu t ~pe ~time
      | Mapping.Hold { pe; from_; until } -> release_hold t ~pe ~from_ ~until)
    route

(* Freeze the surviving pieces of an existing mapping: claim every
   binding except the [skip_nodes] ones and every route whose edge
   passes [keep_edge].  This is how an incremental caller (Repair, a
   remap cache) pins what it intends to keep before asking the router
   to negotiate only the rest; raises like [claim_fu] if the kept
   pieces overlap. *)
let claim_frozen t ?(skip_nodes = fun _ -> false) ?(keep_edge = fun _ -> true)
    ~binding ~(routes : Mapping.route array) () =
  Array.iteri
    (fun v (pe, time) -> if not (skip_nodes v) then claim_fu t ~pe ~time (U_node v))
    binding;
  Array.iteri (fun e route -> if keep_edge e then claim_route t e route) routes

(* Rebuild the full occupancy of a mapping; raises if overlapping. *)
let of_mapping ~npe (m : Mapping.t) =
  let t = create ~npe ~ii:m.ii () in
  claim_frozen t ~binding:m.binding ~routes:m.routes ();
  t

let fu_used_count t =
  Array.fold_left
    (fun acc u -> match u with Some U_fault | None -> acc | Some _ -> acc + 1)
    0 t.fu

(* Fraction of FU slots in use: the utilization number of the Fig. 1
   style comparisons. *)
let utilization t = float_of_int (fu_used_count t) /. float_of_int (Array.length t.fu)

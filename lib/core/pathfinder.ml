(* Negotiated-congestion routing (the PathFinder algorithm CGRA
   mappers inherit from the FPGA world; SPR [49] is its direct CGRA
   port).

   Given a fixed binding, all edges are routed simultaneously against
   soft resource prices: every iteration, each edge takes its cheapest
   route under current prices; resources used by more than their
   capacity raise their history price, and the loop repeats until no
   resource is over-subscribed or the iteration budget runs out.  This
   succeeds on bindings where one-edge-at-a-time strict routing paints
   itself into a corner. *)

open Ocgra_dfg
open Ocgra_arch

type prices = {
  fu_present : (int * int, int) Hashtbl.t; (* (pe, slot) -> users this round *)
  fu_history : (int * int, int) Hashtbl.t;
  rf_present : (int * int, int) Hashtbl.t;
  rf_history : (int * int, int) Hashtbl.t;
}

let get tbl key = Option.value ~default:0 (Hashtbl.find_opt tbl key)
let bump tbl key by = Hashtbl.replace tbl key (get tbl key + by)

(* [?frozen] carries pre-claimed resources the negotiation must treat
   as hard obstacles (an incremental caller's healthy bindings and
   routes, plus the [U_fault] claims) and whose RF pressure is baseline
   load; [?only] restricts the rip-up/re-route set to the given edge
   indices, with [?init_routes] supplying the untouched routes of the
   rest — the repair path of [Repair] negotiates a handful of broken
   edges against an otherwise frozen mapping this way.  With none of
   the three, the behaviour is the original whole-mapping negotiation. *)
let route_all ?(obs = Ocgra_obs.Ctx.off) ?frozen ?only ?init_routes (p : Problem.t) ~ii
    (binding : (int * int) array) ~max_iters =
  let cgra = p.cgra in
  let edges = Array.of_list (Dfg.edges p.dfg) in
  let slot time = ((time mod ii) + ii) mod ii in
  let negotiated =
    match only with
    | None -> Array.init (Array.length edges) Fun.id
    | Some l -> Array.of_list l
  in
  let frozen_fu pe time =
    match frozen with
    | None -> false
    | Some occ -> Occupancy.fu_user occ ~pe ~time <> None
  in
  let frozen_rf pe time =
    match frozen with None -> 0 | Some occ -> Occupancy.rf_count occ ~pe ~time
  in
  let prices =
    {
      fu_present = Hashtbl.create 64;
      fu_history = Hashtbl.create 64;
      rf_present = Hashtbl.create 64;
      rf_history = Hashtbl.create 64;
    }
  in
  (* FU slots taken by operations — or dead silicon — are never
     available to routes *)
  let node_slots = Hashtbl.create 64 in
  Array.iter (fun (pe, time) -> Hashtbl.replace node_slots (pe, slot time) ()) binding;
  for pe = 0 to Cgra.pe_count cgra - 1 do
    if not (Cgra.pe_ok cgra pe) then
      for s = 0 to ii - 1 do
        Hashtbl.replace node_slots (pe, s) ()
      done
    else
      List.iter
        (fun s -> if s < ii then Hashtbl.replace node_slots (pe, s) ())
        (Cgra.dead_slots cgra ~pe)
  done;
  let routes =
    match init_routes with
    | Some init -> Array.copy init
    | None -> Array.make (Array.length edges) []
  in
  (* only the negotiated set participates in pricing; kept routes are
     hard obstacles through [frozen], never re-priced or ripped up *)
  Array.iter (fun e -> routes.(e) <- []) negotiated;
  let apply_route_prices sign route =
    List.iter
      (fun step ->
        match step with
        | Mapping.Hop { pe; time } -> bump prices.fu_present (pe, slot time) sign
        | Mapping.Hold { pe; from_; until } ->
            List.iter
              (fun cy -> bump prices.rf_present (pe, slot cy) sign)
              (Occupancy.hold_span ~from_ ~until))
      route
  in
  let cost_model =
    {
      Route.fu_cost =
        (fun pe time ->
          let key = (pe, slot time) in
          if Hashtbl.mem node_slots key || frozen_fu pe time then
            None (* operations and frozen claims are hard obstacles *)
          else
            Some (4 + (30 * get prices.fu_present key) + (8 * get prices.fu_history key)));
      rf_cost =
        (fun pe time ->
          let key = (pe, slot time) in
          let size = Cgra.effective_rf_size cgra pe in
          if size = 0 then None
          else begin
            let over = max 0 (frozen_rf pe time + get prices.rf_present key - size + 1) in
            Some (1 + (30 * over) + (4 * get prices.rf_history key))
          end);
    }
  in
  let route_edge e =
    let edge = edges.(e) in
    let src = binding.(edge.src) and dst = binding.(edge.dst) in
    let lat = Op.latency (Dfg.op p.dfg edge.src) in
    Route.route_edge cgra cost_model ~ii ~src ~dst ~lat ~dist:edge.dist
  in
  let overused () =
    (* count over-capacity resources under current presence *)
    let over = ref 0 in
    (* node slots are hard obstacles in the cost model, so route presence
       only ever competes with other routes *)
    Hashtbl.iter (fun _key c -> over := !over + max 0 (c - 1)) prices.fu_present;
    Hashtbl.iter
      (fun (pe, s) c ->
        let size = Cgra.effective_rf_size cgra pe in
        let c = c + frozen_rf pe s in
        if c > size then over := !over + (c - size))
      prices.rf_present;
    !over
  in
  let rec negotiate iter =
    if iter >= max_iters then None
    else begin
      (* rip up and re-route every negotiated edge under current prices *)
      Ocgra_obs.Ctx.incr obs "pathfinder.iterations";
      (* distribution of rip-up sizes and of congestion at each
         iteration: full route_all runs rip everything, repair runs a
         handful of broken edges — the histogram shows which *)
      if Ocgra_obs.Hist.enabled (Ocgra_obs.Ctx.hists obs) then begin
        Ocgra_obs.Ctx.observe obs "pathfinder.ripup" (Array.length negotiated);
        Ocgra_obs.Ctx.observe obs "pathfinder.overuse" (overused ())
      end;
      let ok = ref true in
      Array.iter
        (fun e ->
          apply_route_prices (-1) routes.(e);
          routes.(e) <- [];
          match route_edge e with
          | Some (r, _) ->
              routes.(e) <- r;
              apply_route_prices 1 r
          | None -> ok := false)
        negotiated;
      if not !ok then None
      else if overused () = 0 then begin
        let m = { Mapping.ii; binding = Array.copy binding; routes = Array.copy routes } in
        match Check.validate p m with [] -> Some m | _ -> None
      end
      else begin
        (* raise history on every over-used resource *)
        Hashtbl.iter
          (fun key c -> if c > 1 then bump prices.fu_history key (c - 1))
          prices.fu_present;
        Hashtbl.iter
          (fun (pe, s) c ->
            let size = Cgra.effective_rf_size cgra pe in
            if c > size then bump prices.rf_history (pe, s) (c - size))
          prices.rf_present;
        negotiate (iter + 1)
      end
    end
  in
  negotiate 0

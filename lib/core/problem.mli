(** The unified mapping problem formulation (Section II.C of the
    paper): bind in place and schedule in time the operations of the
    application on the CGRA while guaranteeing the dependencies. *)

type kind =
  | Spatial  (** II = 1 pipeline; every FU slot used at most once *)
  | Temporal of { max_ii : int; max_time : int }

type t = {
  dfg : Ocgra_dfg.Dfg.t;
  cgra : Ocgra_arch.Cgra.t;
  kind : kind;
  init : int -> int;  (** iteration -1 value of each node, for recurrences *)
}

val make : ?init:(int -> int) -> dfg:Ocgra_dfg.Dfg.t -> cgra:Ocgra_arch.Cgra.t -> kind -> t

val spatial : ?init:(int -> int) -> dfg:Ocgra_dfg.Dfg.t -> cgra:Ocgra_arch.Cgra.t -> unit -> t

(** [max_ii] defaults to the node count, [max_time] to a multiple of
    the critical path. *)
val temporal :
  ?init:(int -> int) ->
  ?max_ii:int ->
  ?max_time:int ->
  dfg:Ocgra_dfg.Dfg.t ->
  cgra:Ocgra_arch.Cgra.t ->
  unit ->
  t

val is_spatial : t -> bool
val max_ii : t -> int

(** Schedule horizon: bindings must place every op before this cycle. *)
val max_time : t -> int

(** Every op has at least one capable, non-faulted PE.  False means no
    mapper can succeed on this (possibly degraded) array. *)
val mappable : t -> bool

(** The arch + kind half of a mapping-cache key: fabric dimensions,
    topology, per-PE capability/RF/immediate description, and the
    problem kind with its II/time bounds.  The DFG and the fault mask
    are deliberately {e excluded} — the cache canonicalizes the DFG up
    to isomorphism and compares fault masks separately (a grown mask is
    a repair, not a miss).  Equal signatures accept the same mappings
    modulo those two. *)
val signature : t -> string

val describe : t -> string

(** Modulo resource occupancy: which FU slot (pe, cycle mod II) is used
    by what, and how many values live in each register file per slot
    (rotating-register accounting, which makes per-slot counting
    exact). *)

type user =
  | U_node of int
  | U_route of int
  | U_fault  (** DFG node id / edge index / permanently dead resource *)

type t = {
  ii : int;
  npe : int;
  fu : user option array;
  rf : int array;
}

(** With [?cgra], faulted FU slots are pre-claimed by [U_fault], so
    constructive mappers and routers avoid them natively. *)
val create : ?cgra:Ocgra_arch.Cgra.t -> npe:int -> ii:int -> unit -> t

(** Claim every dead FU slot of [cgra] with [U_fault] (already-claimed
    slots are left alone) — the shared pre-claim mechanism behind
    [create ?cgra], the negotiated router's obstacle set and [Repair]'s
    frozen occupancies. *)
val preclaim_faults : t -> Ocgra_arch.Cgra.t -> unit

(** Freeze the surviving pieces of an existing mapping: claim every
    binding except those with [skip_nodes id] and every route with
    [keep_edge idx] (both default to keeping everything).  Raises
    [Invalid_argument] if the kept pieces overlap. *)
val claim_frozen :
  t ->
  ?skip_nodes:(int -> bool) ->
  ?keep_edge:(int -> bool) ->
  binding:(int * int) array ->
  routes:Mapping.route array ->
  unit ->
  unit
val slot_index : t -> int -> int -> int
val fu_user : t -> pe:int -> time:int -> user option
val fu_free : t -> pe:int -> time:int -> bool

(** Raises [Invalid_argument] when the slot is taken. *)
val claim_fu : t -> pe:int -> time:int -> user -> unit

val release_fu : t -> pe:int -> time:int -> unit
val rf_count : t -> pe:int -> time:int -> int

(** Cycles a hold occupies: (from_, until]. *)
val hold_span : from_:int -> until:int -> int list

val claim_hold : t -> pe:int -> from_:int -> until:int -> unit
val release_hold : t -> pe:int -> from_:int -> until:int -> unit
val claim_route : t -> int -> Mapping.route -> unit
val release_route : t -> Mapping.route -> unit

(** Rebuild a mapping's full occupancy; raises on internal conflicts. *)
val of_mapping : npe:int -> Mapping.t -> t

val fu_used_count : t -> int

(** Used FU slots / all FU slots. *)
val utilization : t -> float

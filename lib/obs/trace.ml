(* Lock-free span recorder on the monotonic clock.

   A span is a closed timed region; open spans are never shared — they
   live as stack frames of the domain that is recording them, and only
   the *completed* record is published, with a compare-and-set push
   onto one shared Treiber list.  That is the whole domain-safety
   story: no locks, no per-domain flush protocol, and a worker inside
   [Pool.run] or [Harness.race] can record at will because the only
   contended word is the list head, touched once per span *close* —
   never inside an engine's hot loop.

   Nesting is expressed the way the Chrome trace-event viewer wants
   it: complete ("ph":"X") events on the same thread lane nest by time
   containment, so a parent span that wraps [f] strictly contains every
   span [f] records on the same domain.  The lane id is the domain id.

   Cost contract: a disabled trace ([off]) does no clock read, no
   allocation and no atomic traffic — [span] is one branch around a
   direct call of [f]. *)

let now () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

type span = {
  name : string;
  cat : string;
  ts : float; (* absolute seconds on the monotonic clock *)
  dur : float; (* seconds *)
  tid : int; (* recording domain's id *)
  args : (string * string) list;
}

type t = {
  enabled : bool;
  epoch : float; (* ts origin; exporters emit ts relative to this *)
  spans : span list Atomic.t;
}

let off = { enabled = false; epoch = 0.0; spans = Atomic.make [] }
let create () = { enabled = true; epoch = now (); spans = Atomic.make [] }
let enabled t = t.enabled

let rec publish t s =
  let old = Atomic.get t.spans in
  if not (Atomic.compare_and_set t.spans old (s :: old)) then publish t s

let add t ?(cat = "") ?(args = []) ~ts ~dur name =
  if t.enabled then
    publish t { name; cat; ts; dur; tid = (Domain.self () :> int); args }

let span t ?cat ?args name f =
  if not t.enabled then f ()
  else begin
    let ts = now () in
    match f () with
    | v ->
        add t ?cat ?args ~ts ~dur:(now () -. ts) name;
        v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        add t ?cat ?args ~ts ~dur:(now () -. ts) name;
        Printexc.raise_with_backtrace e bt
  end

(* Publication order is whatever the CAS race produced; give callers
   (and the exporters) a stable view instead: by start time, ties
   broken longest-first so a parent sorts before the children it
   contains, then by name and lane. *)
let spans t =
  List.sort
    (fun a b ->
      let c = compare a.ts b.ts in
      if c <> 0 then c
      else
        let c = compare b.dur a.dur in
        if c <> 0 then c
        else
          let c = compare a.name b.name in
          if c <> 0 then c else compare a.tid b.tid)
    (Atomic.get t.spans)

let count t = List.length (Atomic.get t.spans)
let epoch t = t.epoch

(** Regression diffing over [BENCH_*.json] snapshots — the engine
    behind [ocgra report] and [bench diff].

    Snapshots must carry a top-level ["schema"] version and ["bench"]
    name; {!diff} refuses mismatched pairs.  Leaves are classified by
    key name: identity fields must match exactly, ["ii"] is exact
    quality (lower better), wall-clock fields compare lower-is-better
    under the generous [time_rel] tolerance (derived speedups and
    boolean time verdicts are skipped), and all other numbers —
    conflicts, decisions, counters — are deterministic work compared
    under [count_rel], which defaults to exact. *)

type snapshot = { path : string; schema : int; bench : string; root : Json.t }

val load : string -> (snapshot, string) result
(** Parse and validate the stamp; the error says what is missing. *)

type tol = { time_rel : float; count_rel : float }

val default_tol : tol
(** [{ time_rel = 0.25; count_rel = 0.0 }]. *)

type cls = Time | Count | Ii | Flag

type finding = {
  at : string;  (** JSONPath-ish location, e.g. [$.kernels[2].incremental.conflicts] *)
  cls : cls;
  base : float;
  cand : float;
  rel : float;  (** signed relative change; positive = worse *)
}

type report = {
  baseline : string;
  candidate : string;
  bench : string;
  schema : int;
  checked : int;
  regressions : finding list;
  improvements : finding list;
  structural : string list;
}

val diff : ?tol:tol -> baseline:snapshot -> candidate:snapshot -> unit -> (report, string) result
(** [Error] for bench/schema mismatches; structural drift inside a
    matching pair lands in [report.structural] (and fails {!ok}). *)

val ok : report -> bool
(** No regressions and no structural errors — the gate passes. *)

val render_human : report -> string
val render_json : report -> string

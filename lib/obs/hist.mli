(** Deterministic log-bucketed integer histograms.

    The bucket scheme is fixed: bucket 0 for values <= 0, exact
    buckets for 1..7, then four sub-buckets per octave (relative
    error <= 25%, 248 buckets covering the full 63-bit range).
    Bucket cells are atomics, so recording commutes across domains:
    the dump depends only on the recorded multiset of values, never
    on arrival order or worker count.  Quantiles are derived from
    bucket counts by integer arithmetic and report the bucket's lower
    bound. *)

type t

val off : t
(** The no-op sink: every operation is a single branch. *)

val create : unit -> t
val enabled : t -> bool

val observe : t -> string -> int -> unit
(** Record one occurrence of a value into the named histogram. *)

val observe_n : t -> string -> int -> int -> unit
(** [observe_n t name v n] records [n] occurrences of [v] — how
    engine-native distribution arrays are flushed in one pass. *)

type summary = { count : int; sum : int; p50 : int; p90 : int; p99 : int; max : int }

val dump : t -> (string * summary) list
(** Non-empty histograms, sorted by name — the deterministic export
    order.  [max] is exact; the percentiles are bucket lower bounds. *)

val buckets : t -> string -> (int * int) list
(** Non-empty buckets of one histogram as [(lower_bound, count)],
    ascending — the full distribution for tests and exporters. *)

val merge : into:t -> t -> unit
(** Bucket-wise addition (max of maxes); commutes and associates, so
    fork/absorb folds are order-insensitive. *)

val summary_kvs : t -> (string * int) list
(** Summaries flattened to [name.count/max/p50/p90/p99/sum] integer
    pairs for the metrics exporters. *)

(**/**)

val bucket_of_value : int -> int
val bucket_lo : int -> int
val n_buckets : int

(* Deterministic log-bucketed integer histograms.

   The bucket scheme is fixed forever (it is part of the dump format):
   bucket 0 holds all values <= 0, buckets 1..7 hold the exact small
   values 1..7, and every higher octave [2^m, 2^(m+1)) is split into 4
   sub-buckets of width 2^(m-2).  For v >= 8 with m = floor(log2 v):

     bucket(v) = 8 + 4*(m - 3) + ((v lsr (m - 2)) land 3)

   That is HdrHistogram-style: relative error <= 25% per bucket, a
   fixed 248-cell array covering the whole 63-bit int range, and — the
   property everything here is built around — the bucket index of a
   value is a pure function of the value.  Counts land in atomic
   cells, so recording from any number of domains in any order yields
   the same bucket array; quantiles are derived from bucket counts by
   integer arithmetic only.  A histogram dump is therefore
   byte-identical across worker counts whenever the recorded multiset
   of values is (timings recorded into a histogram forfeit that, and
   such histograms must stay out of determinism-checked scenarios).

   Like [Metrics], the registry is an association list behind one
   atomic head with compare-and-set insertion: a name maps to exactly
   one cell forever, without locking. *)

let n_buckets = 248

(* floor(log2 v) for v >= 1 *)
let msb v =
  let k = ref 0 and v = ref v in
  if !v lsr 32 <> 0 then (k := !k + 32; v := !v lsr 32);
  if !v lsr 16 <> 0 then (k := !k + 16; v := !v lsr 16);
  if !v lsr 8 <> 0 then (k := !k + 8; v := !v lsr 8);
  if !v lsr 4 <> 0 then (k := !k + 4; v := !v lsr 4);
  if !v lsr 2 <> 0 then (k := !k + 2; v := !v lsr 2);
  if !v lsr 1 <> 0 then incr k;
  !k

let bucket_of_value v =
  if v <= 0 then 0
  else if v < 8 then v
  else
    let m = msb v in
    8 + (4 * (m - 3)) + ((v lsr (m - 2)) land 3)

(* Smallest value that lands in bucket [b] — the deterministic
   representative used for quantiles and dumps. *)
let bucket_lo b =
  if b <= 7 then b
  else
    let m = 3 + ((b - 8) / 4) and sub = (b - 8) mod 4 in
    (1 lsl m) + (sub lsl (m - 2))

type cell = {
  buckets : int Atomic.t array;
  count : int Atomic.t;
  sum : int Atomic.t;
  vmax : int Atomic.t; (* min_int when empty *)
}

let cell_create () =
  {
    buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
    count = Atomic.make 0;
    sum = Atomic.make 0;
    vmax = Atomic.make min_int;
  }

let cell_record_n c v n =
  if n > 0 then begin
    ignore (Atomic.fetch_and_add c.buckets.(bucket_of_value v) n);
    ignore (Atomic.fetch_and_add c.count n);
    ignore (Atomic.fetch_and_add c.sum (v * n));
    let rec bump () =
      let cur = Atomic.get c.vmax in
      if v > cur && not (Atomic.compare_and_set c.vmax cur v) then bump ()
    in
    bump ()
  end

type summary = { count : int; sum : int; p50 : int; p90 : int; p99 : int; max : int }

(* Quantile by rank over bucket counts: the representative of the
   first bucket whose cumulative count reaches ceil(q% of n).  Pure
   integer arithmetic — no float rounding to drift across platforms. *)
let cell_summary c =
  let counts = Array.map Atomic.get c.buckets in
  let n = Atomic.get c.count in
  if n = 0 then { count = 0; sum = 0; p50 = 0; p90 = 0; p99 = 0; max = 0 }
  else begin
    let quantile pct =
      let target = ((n * pct) + 99) / 100 in
      let acc = ref 0 and res = ref 0 in
      (try
         Array.iteri
           (fun b k ->
             acc := !acc + k;
             if !acc >= target then begin
               res := bucket_lo b;
               raise Exit
             end)
           counts
       with Exit -> ());
      !res
    in
    {
      count = n;
      sum = Atomic.get c.sum;
      p50 = quantile 50;
      p90 = quantile 90;
      p99 = quantile 99;
      max = Atomic.get c.vmax;
    }
  end

let cell_buckets c =
  let out = ref [] in
  for b = n_buckets - 1 downto 0 do
    let k = Atomic.get c.buckets.(b) in
    if k > 0 then out := (bucket_lo b, k) :: !out
  done;
  !out

(* ---- named registry ---- *)

type t = {
  enabled : bool;
  cells : (string * cell) list Atomic.t;
}

let off = { enabled = false; cells = Atomic.make [] }
let create () = { enabled = true; cells = Atomic.make [] }
let enabled t = t.enabled

let rec cell t name =
  let cells = Atomic.get t.cells in
  match List.assoc_opt name cells with
  | Some c -> c
  | None ->
      let c = cell_create () in
      if Atomic.compare_and_set t.cells cells ((name, c) :: cells) then c
      else cell t name

let observe_n t name v n = if t.enabled && n > 0 then cell_record_n (cell t name) v n
let observe t name v = observe_n t name v 1

let merge ~into src =
  if into.enabled then
    List.iter
      (fun (name, c) ->
        let dst = cell into name in
        Array.iteri
          (fun b k ->
            let k = Atomic.get k in
            if k > 0 then ignore (Atomic.fetch_and_add dst.buckets.(b) k))
          c.buckets;
        let n = Atomic.get c.count in
        if n > 0 then begin
          ignore (Atomic.fetch_and_add dst.count n);
          ignore (Atomic.fetch_and_add dst.sum (Atomic.get c.sum));
          let v = Atomic.get c.vmax in
          let rec bump () =
            let cur = Atomic.get dst.vmax in
            if v > cur && not (Atomic.compare_and_set dst.vmax cur v) then bump ()
          in
          bump ()
        end)
      (Atomic.get src.cells)

let dump t =
  List.sort
    (fun (a, _) (b, _) -> compare a b)
    (List.filter_map
       (fun (name, c) ->
         let s = cell_summary c in
         if s.count = 0 then None else Some (name, s))
       (Atomic.get t.cells))

let buckets t name =
  match List.assoc_opt name (Atomic.get t.cells) with
  | Some c -> cell_buckets c
  | None -> []

(* Summaries flattened to name-sorted integer pairs, ready to ride the
   byte-deterministic metrics exporters. *)
let summary_kvs t =
  List.concat_map
    (fun (name, s) ->
      [
        (name ^ ".count", s.count);
        (name ^ ".max", s.max);
        (name ^ ".p50", s.p50);
        (name ^ ".p90", s.p90);
        (name ^ ".p99", s.p99);
        (name ^ ".sum", s.sum);
      ])
    (dump t)

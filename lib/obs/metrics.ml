(* Named atomic counters and gauges.

   The registry is an association list behind one atomic head; a cell,
   once inserted, is never moved, so [add] after the first hit is a
   single [Atomic.fetch_and_add] with no allocation.  Insertion races
   between domains are resolved by compare-and-set on the head: the
   loser rescans and finds the winner's cell, so a name maps to
   exactly one cell forever — which is what makes [dump] duplicate-free
   without locking.

   Everything is an [int] on purpose: integer counters summed in any
   order are deterministic, so a metrics dump at [--jobs 1] with a
   fixed seed is byte-identical across runs (timings live in the
   trace, never here). *)

type t = {
  enabled : bool;
  cells : (string * int Atomic.t) list Atomic.t;
}

let off = { enabled = false; cells = Atomic.make [] }
let create () = { enabled = true; cells = Atomic.make [] }
let enabled t = t.enabled

let rec cell t name =
  let cells = Atomic.get t.cells in
  match List.assoc_opt name cells with
  | Some c -> c
  | None ->
      let c = Atomic.make 0 in
      if Atomic.compare_and_set t.cells cells ((name, c) :: cells) then c
      else cell t name

let add t name n = if t.enabled && n <> 0 then ignore (Atomic.fetch_and_add (cell t name) n)
let incr t name = add t name 1

let set t name v = if t.enabled then Atomic.set (cell t name) v

let set_max t name v =
  if t.enabled then begin
    let c = cell t name in
    let rec go () =
      let cur = Atomic.get c in
      if v > cur && not (Atomic.compare_and_set c cur v) then go ()
    in
    go ()
  end

let get t name =
  match List.assoc_opt name (Atomic.get t.cells) with
  | Some c -> Atomic.get c
  | None -> 0

let dump t =
  List.sort
    (fun (a, _) (b, _) -> compare a b)
    (List.map (fun (name, c) -> (name, Atomic.get c)) (Atomic.get t.cells))

let merge ~into src = List.iter (fun (name, v) -> add into name v) (dump src)

(* Named atomic counters and gauges.

   The registry is an association list behind one atomic head; a cell,
   once inserted, is never moved, so [add] after the first hit is a
   single [Atomic.fetch_and_add] with no allocation.  Insertion races
   between domains are resolved by compare-and-set on the head: the
   loser rescans and finds the winner's cell, so a name maps to
   exactly one cell forever — which is what makes [dump] duplicate-free
   without locking.

   Each cell is tagged by the operation that created it: counters
   ([add]/[incr]) fold across forks by summation, while gauges keep
   last-write ([set]) or maximum ([set_max]) semantics — so [merge]
   after a race fork must not sum them back (a max folded with [+]
   double-counts).  The tag is fixed at creation; mixing operations on
   one name keeps the first tag.

   Everything is an [int] on purpose: integer counters summed in any
   order are deterministic, so a metrics dump at [--jobs 1] with a
   fixed seed is byte-identical across runs (timings live in the
   trace, never here). *)

type kind = Counter | Gauge_last | Gauge_max

type t = {
  enabled : bool;
  cells : (string * (kind * int Atomic.t)) list Atomic.t;
}

let off = { enabled = false; cells = Atomic.make [] }
let create () = { enabled = true; cells = Atomic.make [] }
let enabled t = t.enabled

let rec cell t kind name =
  let cells = Atomic.get t.cells in
  match List.assoc_opt name cells with
  | Some (_, c) -> c
  | None ->
      let c = Atomic.make 0 in
      if Atomic.compare_and_set t.cells cells ((name, (kind, c)) :: cells) then c
      else cell t kind name

let add t name n = if t.enabled && n <> 0 then ignore (Atomic.fetch_and_add (cell t Counter name) n)
let incr t name = add t name 1

let set t name v = if t.enabled then Atomic.set (cell t Gauge_last name) v

let max_into c v =
  let rec go () =
    let cur = Atomic.get c in
    if v > cur && not (Atomic.compare_and_set c cur v) then go ()
  in
  go ()

let set_max t name v = if t.enabled then max_into (cell t Gauge_max name) v

let get t name =
  match List.assoc_opt name (Atomic.get t.cells) with
  | Some (_, c) -> Atomic.get c
  | None -> 0

let dump t =
  List.sort
    (fun (a, _) (b, _) -> compare a b)
    (List.map (fun (name, (_, c)) -> (name, Atomic.get c)) (Atomic.get t.cells))

(* Kind-aware fold: counters sum, max-gauges max, last-write gauges
   take the source's value (the fork wrote later than the parent). *)
let merge ~into src =
  if into.enabled then
    List.iter
      (fun (name, (kind, c)) ->
        let v = Atomic.get c in
        match kind with
        | Counter -> if v <> 0 then ignore (Atomic.fetch_and_add (cell into Counter name) v)
        | Gauge_last -> Atomic.set (cell into Gauge_last name) v
        | Gauge_max -> max_into (cell into Gauge_max name) v)
      (Atomic.get src.cells)

(* Exporters.

   Chrome trace-event JSON: an object with a [traceEvents] array of
   complete ("ph":"X") events, timestamps in microseconds relative to
   the trace epoch, one lane per recording domain — load it at
   chrome://tracing or ui.perfetto.dev.  Events are emitted in the
   stable {!Trace.spans} order.

   Metrics: either a flat JSON object or [key=value] lines, both in
   sorted-name order with integer values only, so two runs that did
   the same work produce byte-identical dumps. *)

let buf_add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let chrome_trace (t : Trace.t) =
  let b = Buffer.create 4096 in
  let epoch = Trace.epoch t in
  let us s = (s *. 1e6 : float) in
  Buffer.add_string b "{\"traceEvents\":[";
  List.iteri
    (fun i (s : Trace.span) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n{\"name\":";
      buf_add_json_string b s.name;
      Buffer.add_string b ",\"cat\":";
      buf_add_json_string b (if s.cat = "" then "ocgra" else s.cat);
      Buffer.add_string b
        (Printf.sprintf ",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d"
           (us (s.ts -. epoch)) (us s.dur) s.tid);
      (match s.args with
      | [] -> ()
      | args ->
          Buffer.add_string b ",\"args\":{";
          List.iteri
            (fun j (k, v) ->
              if j > 0 then Buffer.add_char b ',';
              buf_add_json_string b k;
              Buffer.add_char b ':';
              buf_add_json_string b v)
            args;
          Buffer.add_char b '}');
      Buffer.add_char b '}')
    (Trace.spans t);
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

let metrics_json (m : Metrics.t) =
  let b = Buffer.create 1024 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n";
      buf_add_json_string b name;
      Buffer.add_string b (Printf.sprintf ": %d" v))
    (Metrics.dump m);
  Buffer.add_string b "\n}\n";
  Buffer.contents b

let metrics_kv (m : Metrics.t) =
  let b = Buffer.create 1024 in
  List.iter (fun (name, v) -> Buffer.add_string b (Printf.sprintf "%s=%d\n" name v)) (Metrics.dump m);
  Buffer.contents b

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let write_chrome_trace t path = write_file path (chrome_trace t)

(* [.json] gets the JSON object; anything else the key=value lines. *)
let write_metrics m path =
  write_file path
    (if Filename.check_suffix path ".json" then metrics_json m else metrics_kv m)

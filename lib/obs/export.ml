(* Exporters.

   Chrome trace-event JSON: an object with a [traceEvents] array of
   complete ("ph":"X") events, timestamps in microseconds relative to
   the trace epoch, one lane per recording domain — load it at
   chrome://tracing or ui.perfetto.dev.  Events are emitted in the
   stable {!Trace.spans} order.

   Metrics: either a flat JSON object or [key=value] lines, both in
   sorted-name order with integer values only, so two runs that did
   the same work produce byte-identical dumps. *)

let buf_add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let chrome_trace (t : Trace.t) =
  let b = Buffer.create 4096 in
  let epoch = Trace.epoch t in
  let us s = (s *. 1e6 : float) in
  Buffer.add_string b "{\"traceEvents\":[";
  List.iteri
    (fun i (s : Trace.span) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n{\"name\":";
      buf_add_json_string b s.name;
      Buffer.add_string b ",\"cat\":";
      buf_add_json_string b (if s.cat = "" then "ocgra" else s.cat);
      Buffer.add_string b
        (Printf.sprintf ",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d"
           (us (s.ts -. epoch)) (us s.dur) s.tid);
      (match s.args with
      | [] -> ()
      | args ->
          Buffer.add_string b ",\"args\":{";
          List.iteri
            (fun j (k, v) ->
              if j > 0 then Buffer.add_char b ',';
              buf_add_json_string b k;
              Buffer.add_char b ':';
              buf_add_json_string b v)
            args;
          Buffer.add_char b '}');
      Buffer.add_char b '}')
    (Trace.spans t);
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

(* Counters and histogram summaries share one name-sorted integer key
   space: histogram [h] contributes [h.count/.max/.p50/...], so the
   dump stays a flat deterministic object whatever mix is live. *)
let metrics_kvs ?(hists = Hist.off) m =
  List.sort (fun (a, _) (b, _) -> compare a b) (Metrics.dump m @ Hist.summary_kvs hists)

let metrics_json ?hists (m : Metrics.t) =
  let b = Buffer.create 1024 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n";
      buf_add_json_string b name;
      Buffer.add_string b (Printf.sprintf ": %d" v))
    (metrics_kvs ?hists m);
  Buffer.add_string b "\n}\n";
  Buffer.contents b

let metrics_kv ?hists (m : Metrics.t) =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, v) -> Buffer.add_string b (Printf.sprintf "%s=%d\n" name v))
    (metrics_kvs ?hists m);
  Buffer.contents b

(* One JSON object per line (JSONL), in sequence order; a trailing
   synthetic event reports drops past the bound, so truncation is
   visible in the log itself. *)
let events_jsonl (e : Events.t) =
  let b = Buffer.create 1024 in
  let add_event seq cat name args =
    Buffer.add_string b (Printf.sprintf "{\"seq\":%d,\"cat\":" seq);
    buf_add_json_string b cat;
    Buffer.add_string b ",\"ev\":";
    buf_add_json_string b name;
    List.iter
      (fun (k, v) ->
        Buffer.add_char b ',';
        buf_add_json_string b k;
        Buffer.add_char b ':';
        match (v : Events.value) with
        | Events.Int n -> Buffer.add_string b (string_of_int n)
        | Events.Str s -> buf_add_json_string b s)
      args;
    Buffer.add_string b "}\n"
  in
  List.iter (fun (ev : Events.event) -> add_event ev.seq ev.cat ev.name ev.args) (Events.events e);
  let dropped = Events.dropped e in
  if dropped > 0 then
    add_event (Events.count e) "obs" "events.dropped" [ ("dropped", Events.Int dropped) ];
  Buffer.contents b

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let write_chrome_trace t path = write_file path (chrome_trace t)

(* [.json] gets the JSON object; anything else the key=value lines. *)
let write_metrics ?hists m path =
  write_file path
    (if Filename.check_suffix path ".json" then metrics_json ?hists m else metrics_kv ?hists m)

let write_events e path = write_file path (events_jsonl e)

(** Minimal recursive-descent JSON (RFC 8259) reader — the matching
    half of the tree's hand-rolled JSON writers, used off the hot
    path to load [BENCH_*.json] snapshots for the regression gate.
    Object member order is preserved; numbers are floats. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Whole-input parse; the error names the byte offset. *)

val member : string -> t -> t option
val to_float : t -> float option
val to_string : t -> string option

val to_int : t -> int option
(** [Num] values that are exact integers only; [None] otherwise. *)

val to_bool : t -> bool option

val to_list : t -> t list option
(** [Arr] elements; [None] for any other kind. *)

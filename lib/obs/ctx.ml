(* The handle the rest of the system threads around: one trace sink,
   one metrics sink, one histogram sink, one event log — any of which
   may be the no-op.  [off] is the default everywhere an [?obs]
   parameter is omitted, and all its sinks are disabled, so code
   instrumented with [span]/[add]/[observe]/[event] pays one branch
   when nobody is watching. *)

type t = { trace : Trace.t; metrics : Metrics.t; hists : Hist.t; events : Events.t }

let off = { trace = Trace.off; metrics = Metrics.off; hists = Hist.off; events = Events.off }

(* Histograms ride the metrics sink's enablement: they are the
   distribution half of the same [--metrics] story, so callers that
   mix sinks by hand get them for free whenever metrics are live. *)
let v ?(events = Events.off) ~trace ~metrics () =
  {
    trace;
    metrics;
    hists = (if Metrics.enabled metrics then Hist.create () else Hist.off);
    events;
  }

let create () =
  {
    trace = Trace.create ();
    metrics = Metrics.create ();
    hists = Hist.create ();
    events = Events.create ();
  }

let enabled t =
  Trace.enabled t.trace || Metrics.enabled t.metrics || Events.enabled t.events

let trace t = t.trace
let metrics t = t.metrics
let hists t = t.hists
let events t = t.events

let span t ?cat ?args name f = Trace.span t.trace ?cat ?args name f
let add t name n = Metrics.add t.metrics name n
let incr t name = Metrics.incr t.metrics name
let set_max t name v = Metrics.set_max t.metrics name v
let observe t name v = Hist.observe t.hists name v
let observe_n t name v n = Hist.observe_n t.hists name v n
let event t ?cat name args = Events.emit t.events ?cat name args

(* A fork shares the trace (spans interleave on domain lanes anyway)
   but gets private metrics, histogram, and event sinks, so a caller
   can attribute deltas — e.g. per racing tier — and then fold them
   back in a deterministic order. *)
let fork t =
  {
    trace = t.trace;
    metrics = (if Metrics.enabled t.metrics then Metrics.create () else Metrics.off);
    hists = (if Hist.enabled t.hists then Hist.create () else Hist.off);
    events = (if Events.enabled t.events then Events.create () else Events.off);
  }

let absorb ~into src =
  Metrics.merge ~into:into.metrics src.metrics;
  Hist.merge ~into:into.hists src.hists;
  Events.absorb ~into:into.events src.events

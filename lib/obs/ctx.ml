(* The handle the rest of the system threads around: one trace sink
   plus one metrics sink, either of which may be the no-op.  [off] is
   the default everywhere an [?obs] parameter is omitted, and both its
   sinks are disabled, so code instrumented with [span]/[add] pays one
   branch when nobody is watching. *)

type t = { trace : Trace.t; metrics : Metrics.t }

let off = { trace = Trace.off; metrics = Metrics.off }
let v ~trace ~metrics = { trace; metrics }
let create () = { trace = Trace.create (); metrics = Metrics.create () }

let enabled t = Trace.enabled t.trace || Metrics.enabled t.metrics
let trace t = t.trace
let metrics t = t.metrics

let span t ?cat ?args name f = Trace.span t.trace ?cat ?args name f
let add t name n = Metrics.add t.metrics name n
let incr t name = Metrics.incr t.metrics name
let set_max t name v = Metrics.set_max t.metrics name v

(* A fork shares the trace (spans interleave on domain lanes anyway)
   but gets a private metrics sink, so a caller can attribute counter
   deltas — e.g. per racing tier — and then fold them back. *)
let fork t =
  {
    trace = t.trace;
    metrics = (if Metrics.enabled t.metrics then Metrics.create () else Metrics.off);
  }

let absorb ~into src = Metrics.merge ~into:into.metrics src.metrics

(* Minimal recursive-descent JSON (RFC 8259) reader.

   The tree keeps its own JSON writers hand-rolled (deterministic
   byte-level control, no dependency); this is the matching reader,
   needed only off the hot path — loading BENCH_*.json snapshots for
   the regression gate.  Object member order is preserved; numbers
   are floats (bench snapshots hold nothing outside the exact float
   range). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Fail of int * string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let utf8_add b cp =
    (* encode one scalar; lone surrogates pass through as-is, which is
       lossy but never raises — snapshots are ASCII in practice *)
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let string_body () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape";
         let e = s.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | '/' -> Buffer.add_char b '/'
         | 'b' -> Buffer.add_char b '\b'
         | 'f' -> Buffer.add_char b '\012'
         | 'n' -> Buffer.add_char b '\n'
         | 'r' -> Buffer.add_char b '\r'
         | 't' -> Buffer.add_char b '\t'
         | 'u' -> utf8_add b (hex4 ())
         | _ -> fail "bad escape");
        go ()
      end
      else if Char.code c < 0x20 then fail "raw control character in string"
      else begin
        Buffer.add_char b c;
        go ()
      end
    in
    go ()
  in
  let number () =
    let start = !pos in
    let digit () =
      match peek () with
      | Some ('0' .. '9') ->
          advance ();
          true
      | _ -> false
    in
    let digits1 () = if not (digit ()) then fail "expected digit" else while digit () do () done in
    (match peek () with Some '-' -> advance () | _ -> ());
    (match peek () with
    | Some '0' -> advance ()
    | _ -> digits1 ());
    (match peek () with
    | Some '.' ->
        advance ();
        digits1 ()
    | _ -> ());
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits1 ()
    | _ -> ());
    Num (float_of_string (String.sub s start (!pos - start)))
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = string_body () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or } in object"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elems acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ] in array"
          in
          elems []
        end
    | Some '"' -> Str (string_body ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) -> Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let to_float = function
  | Num f -> Some f
  | _ -> None

let to_string = function
  | Str s -> Some s
  | _ -> None

let to_int = function
  | Num f when Float.is_integer f && Float.abs f <= 2.0 ** 53.0 -> Some (int_of_float f)
  | _ -> None

let to_bool = function
  | Bool b -> Some b
  | _ -> None

let to_list = function
  | Arr xs -> Some xs
  | _ -> None

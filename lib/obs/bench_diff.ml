(* Regression diffing over BENCH_*.json snapshots.

   A snapshot must carry a top-level "schema" version and "bench"
   name; diffing refuses mismatched pairs outright (comparing a
   repair-ladder run against a SAT sweep is meaningless, and a schema
   bump means the shapes diverged on purpose).  Matching snapshots
   are walked structurally — objects by key, arrays index-aligned —
   and every leaf is classified by its key name:

   - identity leaves (kernel/mapper/grid names, rungs, seeds, MII,
     step counts) must match exactly; a mismatch is a structural
     error, not a tolerance question;
   - "ii" is quality: integer, lower is better, no tolerance (a
     nullable II — mapping failed — against a number is a regression
     or an improvement depending on direction);
   - wall-clock leaves (suffix "_s", or "time" in the key) are noisy:
     compared lower-is-better under the generous [time_rel]
     tolerance; "speedup" and boolean time verdicts are skipped
     entirely (derived from the times already compared);
   - boolean verdicts (proven_optimal, same_ii, conflicts_reduced,
     replayed) regress when true flips to false;
   - every other number (conflicts, decisions, propagations,
     attempts, per-engine counters) is deterministic work:
     lower-is-better under [count_rel], which defaults to exact.

   The verdict is machine-consumable: regressions non-empty (or any
   structural error) means the gate fails. *)

type snapshot = { path : string; schema : int; bench : string; root : Json.t }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path =
  match read_file path with
  | exception Sys_error msg -> Error msg
  | text -> (
      match Json.parse text with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok root -> (
          match (Json.member "schema" root, Json.member "bench" root) with
          | Some (Json.Num schema), Some (Json.Str bench)
            when Float.is_integer schema ->
              Ok { path; schema = int_of_float schema; bench; root }
          | _ ->
              Error
                (Printf.sprintf
                   "%s: not a stamped bench snapshot (top-level \"schema\" version and \
                    \"bench\" name required — re-run the bench to regenerate it)"
                   path)))

type tol = { time_rel : float; count_rel : float }

let default_tol = { time_rel = 0.25; count_rel = 0.0 }

type cls = Time | Count | Ii | Flag

type finding = {
  at : string;
  cls : cls;
  base : float;
  cand : float;
  rel : float; (* signed relative change, positive = worse *)
}

type report = {
  baseline : string;
  candidate : string;
  bench : string;
  schema : int;
  checked : int;
  regressions : finding list;
  improvements : finding list;
  structural : string list;
}

let ok r = r.regressions = [] && r.structural = []

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let structural_int_keys = [ "schema"; "seed"; "max_ii"; "steps_per_kernel"; "step"; "mii" ]

let classify key =
  if List.mem key structural_int_keys then `Structural
  else if contains key "speedup" then `Skip
  else if key = "ii" then `Ii
  else if Filename.check_suffix key "_s" || contains key "time" then `Time
  else `Count

let diff ?(tol = default_tol) ~(baseline : snapshot) ~(candidate : snapshot) () =
  if baseline.bench <> candidate.bench then
    Error
      (Printf.sprintf "bench mismatch: %s is %S but %s is %S — refusing to diff" baseline.path
         baseline.bench candidate.path candidate.bench)
  else if baseline.schema <> candidate.schema then
    Error
      (Printf.sprintf
         "schema mismatch: %s is schema %d but %s is schema %d — regenerate the older \
          snapshot before diffing"
         baseline.path baseline.schema candidate.path candidate.schema)
  else begin
    let checked = ref 0 in
    let regressions = ref [] and improvements = ref [] and structural = ref [] in
    let struct_err at msg = structural := Printf.sprintf "%s: %s" at msg :: !structural in
    let record at cls base cand rel tolerance =
      incr checked;
      let f = { at; cls; base; cand; rel } in
      if rel > tolerance then regressions := f :: !regressions
      else if rel < -.tolerance && rel < 0.0 then improvements := f :: !improvements
    in
    (* signed relative change for a lower-is-better quantity *)
    let rel_change base cand =
      if base = cand then 0.0
      else if base = 0.0 then if cand > 0.0 then infinity else neg_infinity
      else (cand -. base) /. Float.abs base
    in
    let leaf_num at key base cand =
      match classify key with
      | `Skip -> ()
      | `Structural ->
          incr checked;
          if base <> cand then
            struct_err at (Printf.sprintf "expected %g, candidate has %g" base cand)
      | `Ii -> record at Ii base cand (rel_change base cand) 0.0
      | `Time -> record at Time base cand (rel_change base cand) tol.time_rel
      | `Count -> record at Count base cand (rel_change base cand) tol.count_rel
    in
    let rec walk at key (base : Json.t) (cand : Json.t) =
      match (base, cand) with
      | Json.Obj bs, Json.Obj cs ->
          List.iter
            (fun (k, bv) ->
              match List.assoc_opt k cs with
              | None -> struct_err (at ^ "." ^ k) "key missing from candidate"
              | Some cv -> walk (at ^ "." ^ k) k bv cv)
            bs;
          List.iter
            (fun (k, _) ->
              if List.assoc_opt k bs = None then
                struct_err (at ^ "." ^ k) "key absent from baseline")
            cs
      | Json.Arr bs, Json.Arr cs ->
          if List.length bs <> List.length cs then
            struct_err at
              (Printf.sprintf "array length %d vs %d" (List.length bs) (List.length cs))
          else
            List.iteri
              (fun i (bv, cv) -> walk (Printf.sprintf "%s[%d]" at i) key bv cv)
              (List.combine bs cs)
      | Json.Num b, Json.Num c -> leaf_num at key b c
      | Json.Str b, Json.Str c ->
          incr checked;
          if b <> c then struct_err at (Printf.sprintf "expected %S, candidate has %S" b c)
      | Json.Bool b, Json.Bool c ->
          if contains key "time" || contains key "speedup" then ()
          else begin
            incr checked;
            if b <> c then begin
              let f =
                {
                  at;
                  cls = Flag;
                  base = (if b then 1.0 else 0.0);
                  cand = (if c then 1.0 else 0.0);
                  rel = (if b && not c then 1.0 else -1.0);
                }
              in
              if b then regressions := f :: !regressions else improvements := f :: !improvements
            end
          end
      | Json.Null, Json.Null -> incr checked
      | Json.Null, Json.Num c when key = "ii" ->
          (* baseline failed to map, candidate maps: strictly better *)
          record at Ii infinity c (-1.0) 0.0
      | Json.Num b, Json.Null when key = "ii" -> record at Ii b infinity 1.0 0.0
      | _ -> struct_err at "value kind differs between snapshots"
    in
    walk "$" "" baseline.root candidate.root;
    Ok
      {
        baseline = baseline.path;
        candidate = candidate.path;
        bench = baseline.bench;
        schema = baseline.schema;
        checked = !checked;
        regressions = List.rev !regressions;
        improvements = List.rev !improvements;
        structural = List.rev !structural;
      }
  end

let cls_name = function Time -> "time" | Count -> "count" | Ii -> "ii" | Flag -> "flag"

let fmt_value cls v =
  if v = infinity then "-"
  else
    match cls with
    | Time -> Printf.sprintf "%.6f" v
    | _ -> Printf.sprintf "%.0f" v

let fmt_rel rel =
  if rel = infinity then "+inf"
  else if rel = neg_infinity then "-inf"
  else Printf.sprintf "%+.1f%%" (100.0 *. rel)

let render_human r =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "bench diff: %s (schema %d)\n  baseline:  %s\n  candidate: %s\n" r.bench
       r.schema r.baseline r.candidate);
  Buffer.add_string b
    (Printf.sprintf "  %d leaves checked, %d regressions, %d improvements, %d structural errors\n"
       r.checked
       (List.length r.regressions)
       (List.length r.improvements)
       (List.length r.structural));
  List.iter (fun msg -> Buffer.add_string b (Printf.sprintf "  STRUCTURAL %s\n" msg)) r.structural;
  let row verdict f =
    Buffer.add_string b
      (Printf.sprintf "  %-10s %-7s %-50s %12s -> %-12s %s\n" verdict (cls_name f.cls) f.at
         (fmt_value f.cls f.base) (fmt_value f.cls f.cand) (fmt_rel f.rel))
  in
  List.iter (row "REGRESSED") r.regressions;
  List.iter (row "improved") r.improvements;
  Buffer.add_string b (if ok r then "verdict: OK\n" else "verdict: REGRESSION\n");
  Buffer.contents b

let render_json r =
  let b = Buffer.create 1024 in
  let str s = Export.buf_add_json_string b s in
  Buffer.add_string b "{\n\"bench\": ";
  str r.bench;
  Buffer.add_string b (Printf.sprintf ",\n\"schema\": %d,\n\"baseline\": " r.schema);
  str r.baseline;
  Buffer.add_string b ",\n\"candidate\": ";
  str r.candidate;
  Buffer.add_string b (Printf.sprintf ",\n\"checked\": %d,\n\"ok\": %b" r.checked (ok r));
  let findings name fs =
    Buffer.add_string b (Printf.sprintf ",\n\"%s\": [" name);
    List.iteri
      (fun i f ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b "\n{\"path\": ";
        str f.at;
        Buffer.add_string b ", \"class\": ";
        str (cls_name f.cls);
        let num v =
          if Float.is_finite v then Printf.sprintf "%g" v
          else if v > 0.0 then "\"inf\""
          else "\"-inf\""
        in
        Buffer.add_string b
          (Printf.sprintf ", \"base\": %s, \"candidate\": %s, \"rel\": %s}" (num f.base)
             (num f.cand) (num f.rel)))
      fs;
    Buffer.add_string b "]"
  in
  findings "regressions" r.regressions;
  findings "improvements" r.improvements;
  Buffer.add_string b ",\n\"structural\": [";
  List.iteri
    (fun i msg ->
      if i > 0 then Buffer.add_string b ", ";
      str msg)
    r.structural;
  Buffer.add_string b "]\n}\n";
  Buffer.contents b

(** The observability handle threaded through the mapping stack
    alongside [Deadline.t]: one {!Trace.t} plus one {!Metrics.t}.
    Every [?obs] parameter in the system defaults to {!off}, whose
    sinks are both disabled — instrumented code then pays one branch
    per site and nothing else. *)

type t

val off : t
(** Both sinks disabled; the universal default. *)

val create : unit -> t
(** Both sinks live. *)

val v : trace:Trace.t -> metrics:Metrics.t -> t
(** Mix live and dead sinks — e.g. [--metrics] without [--trace]. *)

val enabled : t -> bool
val trace : t -> Trace.t
val metrics : t -> Metrics.t

val span : t -> ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
val add : t -> string -> int -> unit
val incr : t -> string -> unit
val set_max : t -> string -> int -> unit

val fork : t -> t
(** Same trace, private metrics sink (dead if the parent's is dead) —
    for attributing counter deltas to one racing tier. *)

val absorb : into:t -> t -> unit
(** Fold a fork's metrics back into a parent. *)

(** The observability handle threaded through the mapping stack
    alongside [Deadline.t]: one {!Trace.t}, one {!Metrics.t}, one
    {!Hist.t}, and one {!Events.t}.  Every [?obs] parameter in the
    system defaults to {!off}, whose sinks are all disabled —
    instrumented code then pays one branch per site and nothing
    else. *)

type t

val off : t
(** All sinks disabled; the universal default. *)

val create : unit -> t
(** All sinks live. *)

val v : ?events:Events.t -> trace:Trace.t -> metrics:Metrics.t -> unit -> t
(** Mix live and dead sinks — e.g. [--metrics] without [--trace].
    The histogram sink follows the metrics sink's enablement; the
    event log defaults to dead. *)

val enabled : t -> bool
val trace : t -> Trace.t
val metrics : t -> Metrics.t
val hists : t -> Hist.t
val events : t -> Events.t

val span : t -> ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
val add : t -> string -> int -> unit
val incr : t -> string -> unit
val set_max : t -> string -> int -> unit

val observe : t -> string -> int -> unit
(** Record a value into a named histogram (see {!Hist}). *)

val observe_n : t -> string -> int -> int -> unit

val event : t -> ?cat:string -> string -> (string * Events.value) list -> unit
(** Append a structured event (see {!Events} for the determinism
    contract — no wall-clock payloads). *)

val fork : t -> t
(** Same trace; private metrics, histogram, and event sinks (dead if
    the parent's are dead) — for attributing deltas to one racing
    tier. *)

val absorb : into:t -> t -> unit
(** Fold a fork's metrics and histograms back into a parent and
    append its events (re-sequenced, preserving relative order).
    Absorbing forks in a fixed order keeps the combined log
    deterministic. *)

(** Named atomic integer counters and gauges.  Cells are registered
    on first use (compare-and-set on the registry head, so concurrent
    first uses of one name still share a single cell); after that a
    counter bump is one [Atomic.fetch_and_add].  Values are integers
    only: summed in any order they are deterministic, so a dump at
    [--jobs 1] with a fixed seed is byte-identical across runs. *)

type t

val off : t
(** The no-op sink: every operation is a single branch. *)

val create : unit -> t
val enabled : t -> bool

val add : t -> string -> int -> unit
val incr : t -> string -> unit

val set : t -> string -> int -> unit
(** Gauge: last write wins. *)

val set_max : t -> string -> int -> unit
(** Gauge: retains the maximum ever set. *)

val get : t -> string -> int
(** 0 for a name never touched. *)

val dump : t -> (string * int) list
(** Snapshot, sorted by name — the deterministic export order. *)

val merge : into:t -> t -> unit
(** [merge ~into src] folds every cell of [src] into [into] — how a
    per-tier fork's tallies are folded back after a race.  Cells are
    tagged by the operation that created them: counters sum, [set_max]
    gauges fold by maximum, and [set] gauges take the source's value
    (never summed — a gauge folded with [+] double-counts). *)

(** Exporters: Chrome trace-event JSON (loadable at chrome://tracing
    or ui.perfetto.dev), flat metrics dumps (JSON object or
    [key=value] lines, with histogram summaries folded into the same
    name-sorted integer key space), and JSONL event logs.  Metrics
    and event dumps are deterministic — two runs that did the same
    work are byte-identical. *)

val buf_add_json_string : Buffer.t -> string -> unit
(** Append one RFC 8259 string literal (quotes and escapes included) —
    shared by every JSON writer in the tree. *)

val chrome_trace : Trace.t -> string

val metrics_json : ?hists:Hist.t -> Metrics.t -> string
val metrics_kv : ?hists:Hist.t -> Metrics.t -> string
(** Counters plus, when [hists] is given, each histogram's
    [name.count/.max/.p50/.p90/.p99/.sum] summary keys, one sorted
    flat namespace. *)

val events_jsonl : Events.t -> string
(** One RFC 8259 JSON object per line, in sequence order; drops past
    the bound appear as a trailing [events.dropped] record. *)

val write_file : string -> string -> unit

val write_chrome_trace : Trace.t -> string -> unit

val write_metrics : ?hists:Hist.t -> Metrics.t -> string -> unit
(** Writes {!metrics_json} when the path ends in [.json], otherwise
    {!metrics_kv}. *)

val write_events : Events.t -> string -> unit

(** Exporters: Chrome trace-event JSON (loadable at chrome://tracing
    or ui.perfetto.dev) and flat metrics dumps (JSON object or
    [key=value] lines).  Metrics dumps are name-sorted with integer
    values only — two runs that did the same work are byte-identical. *)

val chrome_trace : Trace.t -> string
val metrics_json : Metrics.t -> string
val metrics_kv : Metrics.t -> string

val write_chrome_trace : Trace.t -> string -> unit

val write_metrics : Metrics.t -> string -> unit
(** Writes {!metrics_json} when the path ends in [.json], otherwise
    {!metrics_kv}. *)

(** Lock-free recorder of closed timed regions (spans) on the
    monotonic clock shared with [Deadline].  Open spans are plain
    stack state of the recording domain; completed spans are published
    with a compare-and-set push onto one shared list, so workers under
    [Pool.run] / [Harness.race] trace without locks.  Nesting is by
    time containment per domain lane, which is exactly how the Chrome
    trace-event viewer renders complete events. *)

type span = {
  name : string;
  cat : string;
  ts : float;  (** start, absolute seconds on the monotonic clock *)
  dur : float;  (** seconds *)
  tid : int;  (** id of the domain that recorded it *)
  args : (string * string) list;
}

type t

val off : t
(** The no-op sink: [enabled off = false]; {!span} costs one branch. *)

val create : unit -> t
(** A live trace whose epoch (ts origin for export) is [now ()]. *)

val enabled : t -> bool

val now : unit -> float
(** Monotonic seconds — the same clock as [Deadline.now]. *)

val span : t -> ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f] and records a closed span around it
    (also when [f] raises — the exception is re-raised). *)

val add : t -> ?cat:string -> ?args:(string * string) list -> ts:float -> dur:float -> string -> unit
(** Record an already-measured region (both in absolute seconds). *)

val spans : t -> span list
(** Stable view: sorted by start time, longest-first on ties (so a
    parent precedes the children it contains), then name and lane. *)

val count : t -> int
val epoch : t -> float

(* Bounded, mutex-free structured event log.

   An event is a typed record — category, name, and integer/string
   arguments — stamped with a sequence number from one atomic
   counter.  Publication is a compare-and-set push onto a list head
   (same discipline as [Trace]); [events] sorts by sequence number,
   so a single-domain emitter reads back exactly its program order.

   Determinism contract: sequence numbers are allocation order, so
   events emitted concurrently from several domains interleave
   nondeterministically.  Code that wants byte-identical event logs
   across worker counts must either (a) emit from one domain, (b)
   emit post-hoc from a deterministically-ordered result array after
   the parallel section (how campaign trial outcomes are logged), or
   (c) emit into forked sinks absorbed in a fixed order
   ([Ctx.absorb] re-sequences, which is why race tiers fold back
   deterministically).  Events carry no wall-clock payloads for the
   same reason; durations belong in the trace or in histograms.

   The log is bounded: past [cap] events the record is dropped and a
   drop counter bumped, so a runaway emitter degrades to a counter
   instead of unbounded memory. *)

type value = Int of int | Str of string

type event = {
  seq : int;
  cat : string;
  name : string;
  args : (string * value) list;
}

type t = {
  enabled : bool;
  cap : int;
  next : int Atomic.t;
  items : event list Atomic.t;
  dropped : int Atomic.t;
}

let off =
  { enabled = false; cap = 0; next = Atomic.make 0; items = Atomic.make []; dropped = Atomic.make 0 }

let default_cap = 65536

let create ?(cap = default_cap) () =
  { enabled = true; cap; next = Atomic.make 0; items = Atomic.make []; dropped = Atomic.make 0 }

let enabled t = t.enabled

let emit t ?(cat = "ocgra") name args =
  if t.enabled then begin
    let seq = Atomic.fetch_and_add t.next 1 in
    if seq >= t.cap then ignore (Atomic.fetch_and_add t.dropped 1)
    else begin
      let e = { seq; cat; name; args } in
      let rec push () =
        let items = Atomic.get t.items in
        if not (Atomic.compare_and_set t.items items (e :: items)) then push ()
      in
      push ()
    end
  end

let count t = min (Atomic.get t.next) t.cap
let dropped t = Atomic.get t.dropped

let events t = List.sort (fun a b -> compare a.seq b.seq) (Atomic.get t.items)

(* Re-sequence a fork's events onto the destination, preserving their
   relative order.  Absorbing forks in a fixed order therefore yields
   a deterministic combined log. *)
let absorb ~into src =
  if into.enabled then List.iter (fun e -> emit into ~cat:e.cat e.name e.args) (events src)

(** Bounded, mutex-free structured event log: typed records with a
    category, a name, and integer/string arguments, sequence-stamped
    from one atomic counter and published by compare-and-set.

    Determinism contract: [events] returns sequence order, which for
    a single emitting domain is program order.  Parallel sections
    that need byte-identical logs across worker counts must emit
    post-hoc from a deterministically-ordered result array, or into
    forked sinks absorbed in a fixed order ({!absorb} re-sequences).
    Events never carry wall-clock payloads — durations belong in the
    trace or in {!Hist}. *)

type value = Int of int | Str of string

type event = {
  seq : int;
  cat : string;
  name : string;
  args : (string * value) list;
}

type t

val off : t
(** The no-op sink: every operation is a single branch. *)

val default_cap : int

val create : ?cap:int -> unit -> t
(** Live sink holding at most [cap] (default {!default_cap}) events;
    further emissions only bump {!dropped}. *)

val enabled : t -> bool

val emit : t -> ?cat:string -> string -> (string * value) list -> unit

val events : t -> event list
(** All retained events in sequence order. *)

val count : t -> int
(** Events retained (emissions capped at the bound). *)

val dropped : t -> int
(** Emissions discarded past the bound. *)

val absorb : into:t -> t -> unit
(** Append [src]'s events onto [into] with fresh sequence numbers,
    preserving their relative order. *)

(* Data placement: assign arrays to banks/base addresses so that the
   accesses of one steady-state cycle never collide ([67], [68]
   conflict-free loop mapping with multi-bank memory).

   Greedy: sort arrays by access pressure, place each on the bank with
   the least same-slot traffic.  Exact: a small assignment ILP
   minimising same-slot same-bank pairs. *)

module Lp = Ocgra_ilp.Lp
module Model = Ocgra_ilp.Model

type array_info = {
  name : string;
  size : int;
  slots : int list; (* modulo slots in which this array is accessed *)
}

(* Conflict weight between two arrays: number of shared access slots. *)
let conflict_weight a b =
  List.length (List.filter (fun s -> List.mem s b.slots) a.slots)

let greedy ~banks arrays =
  let assignment = Hashtbl.create 8 in
  let ordered =
    List.sort (fun a b -> compare (List.length b.slots) (List.length a.slots)) arrays
  in
  List.iter
    (fun a ->
      (* pick the bank minimising added conflict *)
      let cost bank =
        List.fold_left
          (fun acc other ->
            match Hashtbl.find_opt assignment other.name with
            | Some b when b = bank -> acc + conflict_weight a other
            | _ -> acc)
          0 arrays
      in
      let best = ref 0 and best_cost = ref max_int in
      for b = 0 to banks - 1 do
        let c = cost b in
        if c < !best_cost then begin
          best_cost := c;
          best := b
        end
      done;
      Hashtbl.replace assignment a.name !best)
    ordered;
  List.map (fun a -> (a.name, Hashtbl.find assignment a.name)) arrays

(* Exact assignment by ILP: binaries x[a][b]; conflict variables
   y[a,a'] >= x[a][b] + x[a'][b] - 1 for each shared bank; minimise the
   weighted sum of y. *)
let ilp ~banks arrays =
  let m = Model.create ~maximize:false () in
  let x =
    List.map
      (fun a ->
        (a.name, List.init banks (fun b -> Model.binary m (Printf.sprintf "x_%s_%d" a.name b))))
      arrays
  in
  List.iter
    (fun (_, xs) -> Model.add_constraint m (List.map (fun v -> (1.0, v)) xs) Lp.Eq 1.0)
    x;
  let objective = ref [] in
  let rec pairs = function
    | [] -> ()
    | a :: rest ->
        List.iter
          (fun b ->
            let w = conflict_weight a b in
            if w > 0 then begin
              let y = Model.binary m (Printf.sprintf "y_%s_%s" a.name b.name) in
              objective := (float_of_int w, y) :: !objective;
              let xa = List.assoc a.name x and xb = List.assoc b.name x in
              List.iteri
                (fun bank va ->
                  let vb = List.nth xb bank in
                  (* y >= xa + xb - 1 *)
                  Model.add_constraint m [ (1.0, y); (-1.0, va); (-1.0, vb) ] Lp.Ge (-1.0))
                xa
            end)
          rest;
        pairs rest
  in
  pairs arrays;
  Model.set_objective m !objective;
  (* 5 s monotonic budget (the ILP core keeps no clock of its own) *)
  let stop = Ocgra_core.Deadline.(should_stop (after ~seconds:5.0)) in
  match Model.solve ~max_nodes:2000 ~should_stop:stop m with
  | (Model.Optimal _ | Model.Feasible _), Some values, _ ->
      Some
        (List.map
           (fun a ->
             let xs = List.assoc a.name x in
             let bank = ref 0 in
             List.iteri (fun b v -> if values.(v) = 1 then bank := b) xs;
             (a.name, !bank))
           arrays)
  | _ -> None

(* Conflicts of an assignment: weighted same-bank pairs. *)
let cost arrays assignment =
  let bank_of name = List.assoc name assignment in
  let rec go acc = function
    | [] -> acc
    | a :: rest ->
        let acc =
          List.fold_left
            (fun acc b -> if bank_of a.name = bank_of b.name then acc + conflict_weight a b else acc)
            acc rest
        in
        go acc rest
  in
  go 0 arrays

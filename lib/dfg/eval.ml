(* Reference interpreter for DFGs with loop-carried edges.

   This is the functional ground truth: the cycle-accurate simulator
   must produce exactly these output streams for any valid mapping of
   the same DFG, which is the end-to-end correctness test of every
   mapper.

   Within one iteration, nodes are evaluated in topological order of
   the dist = 0 edges; a dist = d operand reads the producer's value
   from iteration i - d (or its initial value when i < d).  Stores are
   applied as they are evaluated; kernels where intra-iteration memory
   order matters must express it with data dependences. *)

type env = {
  input : string -> int -> int; (* input name -> iteration -> value *)
  memory : (string, int array) Hashtbl.t;
}

let env_of_streams ?(memory = []) streams =
  let tbl = Hashtbl.create 8 in
  List.iter (fun (name, arr) -> Hashtbl.replace tbl name arr) streams;
  let mem = Hashtbl.create 8 in
  List.iter (fun (name, arr) -> Hashtbl.replace mem name (Array.copy arr)) memory;
  let input name i =
    match Hashtbl.find_opt tbl name with
    | None -> invalid_arg (Printf.sprintf "Eval: no input stream %s" name)
    | Some arr ->
        if Array.length arr = 0 then invalid_arg (Printf.sprintf "Eval: empty stream %s" name)
        else if i < Array.length arr then arr.(i)
        else arr.(Array.length arr - 1) (* loop-invariant tail *)
  in
  { input; memory = mem }

type result = {
  outputs : (string, int list) Hashtbl.t; (* per output name, values in iteration order *)
  values : int array array; (* values.(iter).(node) *)
}

let output_stream result name =
  match Hashtbl.find_opt result.outputs name with Some l -> List.rev l | None -> []

let run ?(init = fun (_ : int) -> 0) t env ~iters =
  (match Dfg.validate t with
  | [] -> ()
  | p :: _ -> invalid_arg ("Eval.run: invalid DFG: " ^ p));
  let order =
    match Ocgra_graph.Topo.sort (Dfg.to_digraph t) with
    | Some o -> o
    | None -> invalid_arg "Eval.run: intra-iteration cycle"
  in
  let n = Dfg.node_count t in
  let values = Array.init iters (fun _ -> Array.make n 0) in
  let outputs = Hashtbl.create 8 in
  (* Operand table: for each node, its in-edges sorted by port. *)
  let operands = Array.make n [] in
  Dfg.iter_edges (fun e -> operands.(e.dst) <- e :: operands.(e.dst)) t;
  let operands =
    Array.map (fun es -> List.sort (fun (a : Dfg.edge) b -> compare a.port b.port) es) operands
  in
  let read iter (e : Dfg.edge) =
    let src_iter = iter - e.dist in
    if src_iter < 0 then init e.src else values.(src_iter).(e.src)
  in
  for iter = 0 to iters - 1 do
    List.iter
      (fun v ->
        let args = List.map (read iter) operands.(v) in
        let value =
          match (Dfg.op t v, args) with
          | Op.Const c, [] -> c
          | Op.Input s, [] -> env.input s iter
          | Op.Output s, [ x ] ->
              let cur = Option.value ~default:[] (Hashtbl.find_opt outputs s) in
              Hashtbl.replace outputs s (x :: cur);
              x
          | Op.Binop b, [ x; y ] -> Op.eval_binop b x y
          | Op.Not, [ x ] -> lnot x
          | Op.Neg, [ x ] -> -x
          | Op.Select, [ c; a; b ] -> if c <> 0 then a else b
          | Op.Load arr, [ idx ] -> (
              match Hashtbl.find_opt env.memory arr with
              | None -> invalid_arg (Printf.sprintf "Eval: no memory array %s" arr)
              | Some a -> a.((idx mod Array.length a + Array.length a) mod Array.length a))
          | Op.Store arr, [ idx; x ] -> (
              match Hashtbl.find_opt env.memory arr with
              | None -> invalid_arg (Printf.sprintf "Eval: no memory array %s" arr)
              | Some a ->
                  a.((idx mod Array.length a + Array.length a) mod Array.length a) <- x;
                  x)
          | Op.Route, [ x ] -> x
          | Op.Vote, [ a; b; c ] -> Op.eval_vote a b c
          | Op.Cmp, [ x; _ ] -> x
          | Op.Nop, [] -> 0
          | op, args ->
              invalid_arg
                (Printf.sprintf "Eval: op %s applied to %d operands" (Op.to_string op)
                   (List.length args))
        in
        values.(iter).(v) <- value)
      order
  done;
  { outputs; values }

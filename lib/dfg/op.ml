(* The operation set of the intermediate representation.

   This is the operation vocabulary shared by the front-end, the
   mappers, the architecture model (PE capability sets name these
   classes) and the simulator (which gives each op its semantics). *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Min
  | Max
  | Lt
  | Le
  | Eq
  | Ne

type t =
  | Const of int (* immediate from the configuration word *)
  | Input of string (* live-in value / stream element, by name *)
  | Output of string (* live-out value / stream element, by name *)
  | Binop of binop
  | Not
  | Neg
  | Select (* inputs: condition, then-value, else-value *)
  | Load of string (* array load; input: index *)
  | Store of string (* array store; inputs: index, value *)
  | Route (* explicit routing node inserted by transformations *)
  | Vote (* majority voter over three redundant copies (TMR hardening) *)
  | Cmp (* duplicate comparator: passes operand 0, flags a mismatch (DMR) *)
  | Nop

(* Functional classes: the unit of heterogeneity in the architecture
   model.  A PE declares the classes it implements. *)
type func_class = F_alu | F_mul | F_mem | F_io | F_route

let func_class = function
  | Const _ | Binop (Add | Sub | And | Or | Xor | Shl | Shr | Min | Max | Lt | Le | Eq | Ne)
  | Not | Neg | Select | Vote | Cmp | Nop ->
      F_alu
  | Binop (Mul | Div | Rem) -> F_mul
  | Load _ | Store _ -> F_mem
  | Input _ | Output _ -> F_io
  | Route -> F_route

(* All PEs can forward a value, so F_route is implied by any class. *)
let all_classes = [ F_alu; F_mul; F_mem; F_io; F_route ]

(* Issue-to-result latency in cycles.  Single-cycle PEs are the norm in
   the surveyed architectures (ADRES, MorphoSys); the checker and
   schedulers nevertheless treat latency symbolically. *)
let latency = function
  | Const _ | Input _ | Output _ | Route | Nop -> 1
  | Binop _ | Not | Neg | Select | Vote | Cmp -> 1
  | Load _ | Store _ -> 1

let arity = function
  | Const _ | Input _ | Nop -> 0
  | Output _ | Not | Neg | Route -> 1
  | Load _ -> 1
  | Binop _ | Cmp -> 2
  | Store _ -> 2
  | Select | Vote -> 3

let commutative = function
  | Binop (Add | Mul | And | Or | Xor | Min | Max | Eq | Ne) -> true
  | Binop (Sub | Div | Rem | Shl | Shr | Lt | Le) -> false
  | Const _ | Input _ | Output _ | Not | Neg | Select | Load _ | Store _ | Route | Vote | Cmp
  | Nop ->
      false

(* Nodes whose effect must be preserved by dead-code elimination. *)
let has_side_effect = function
  | Output _ | Store _ -> true
  | Const _ | Input _ | Binop _ | Not | Neg | Select | Load _ | Route | Vote | Cmp | Nop -> false

let binop_to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Min -> "min"
  | Max -> "max"
  | Lt -> "lt"
  | Le -> "le"
  | Eq -> "eq"
  | Ne -> "ne"

let to_string = function
  | Const c -> Printf.sprintf "const %d" c
  | Input s -> Printf.sprintf "in %s" s
  | Output s -> Printf.sprintf "out %s" s
  | Binop b -> binop_to_string b
  | Not -> "not"
  | Neg -> "neg"
  | Select -> "select"
  | Load a -> Printf.sprintf "load %s" a
  | Store a -> Printf.sprintf "store %s" a
  | Route -> "route"
  | Vote -> "vote"
  | Cmp -> "cmp"
  | Nop -> "nop"

let func_class_to_string = function
  | F_alu -> "alu"
  | F_mul -> "mul"
  | F_mem -> "mem"
  | F_io -> "io"
  | F_route -> "route"

let eval_binop b x y =
  match b with
  | Add -> x + y
  | Sub -> x - y
  | Mul -> x * y
  | Div -> if y = 0 then 0 else x / y
  | Rem -> if y = 0 then 0 else x mod y
  | And -> x land y
  | Or -> x lor y
  | Xor -> x lxor y
  | Shl -> x lsl (y land 31)
  | Shr -> x asr (y land 31)
  | Min -> min x y
  | Max -> max x y
  | Lt -> if x < y then 1 else 0
  | Le -> if x <= y then 1 else 0
  | Eq -> if x = y then 1 else 0
  | Ne -> if x <> y then 1 else 0

(* Bitwise majority: each result bit is the majority of the three
   operand bits, which is exactly the TMR voter circuit — a single
   flipped bit in any one copy is outvoted per bit. *)
let eval_vote a b c = (a land b) lor (b land c) lor (a land c)

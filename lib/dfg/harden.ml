(* DMR/TMR hardening transforms.

   Hardening rewrites a kernel into a modular-redundant form *at the
   DFG level*, so the result is just another DFG: every existing
   mapper, the validator and the simulator handle it unchanged.  The
   compute sphere — everything except the side-effect sinks (Output,
   Store) — is replicated K times (K = 2 for DMR, 3 for TMR); each
   replica carries its own copy of every edge, including loop-carried
   recurrences, so replicas share no intermediate state and a fault in
   one cannot contaminate another.  Sinks stay single: at every edge
   into a sink, the replicas are fused by a guard node —

   - TMR: a [Vote] node (bitwise majority of the three replicas), which
     *masks* a corrupted replica;
   - DMR: a [Cmp] node (passes replica 0, flags a mismatch), which
     *detects* corruption without being able to correct it.

   Loop-carried distances stay on the replica -> guard edges; the guard
   feeds its sink at distance 0, so the guarded value is read at
   exactly the iteration the original edge named.

   Node identities change, so the transform also returns [origin]: a
   map from new node id to the original node it replicates (guards map
   to the value they guard).  Problem-level init functions are
   composed through it.

   Ordering caveat: replicas are structurally identical by design, so
   running [Transform.cse] *after* hardening would merge them and undo
   the redundancy.  Harden last. *)

type mode = No_harden | Dmr | Tmr

let mode_to_string = function No_harden -> "none" | Dmr -> "dmr" | Tmr -> "tmr"

let mode_of_string = function
  | "none" -> No_harden
  | "dmr" -> Dmr
  | "tmr" -> Tmr
  | s -> invalid_arg (Printf.sprintf "Harden.mode_of_string: %s (want none|dmr|tmr)" s)

let copies = function No_harden -> 1 | Dmr -> 2 | Tmr -> 3

(* Side-effect sinks stay single; everything else is replicated. *)
let is_sink op = match op with Op.Output _ | Op.Store _ -> true | _ -> false

let replicate mode t =
  let k = copies mode in
  let n = Dfg.node_count t in
  let out = Dfg.create () in
  (* copy_id.(orig).(c) = id of replica c (sinks: same id for all c) *)
  let copy_id = Array.make_matrix n k 0 in
  let origin_rev = ref [] in
  let add_tracked ~orig op name =
    let id = Dfg.add ~name out op in
    origin_rev := orig :: !origin_rev;
    id
  in
  Dfg.iter_nodes
    (fun nd ->
      if is_sink nd.Dfg.op then begin
        let id = add_tracked ~orig:nd.Dfg.id nd.Dfg.op nd.Dfg.name in
        for c = 0 to k - 1 do
          copy_id.(nd.Dfg.id).(c) <- id
        done
      end
      else
        for c = 0 to k - 1 do
          let name =
            if c = 0 then nd.Dfg.name else Printf.sprintf "%s#%d" nd.Dfg.name c
          in
          copy_id.(nd.Dfg.id).(c) <- add_tracked ~orig:nd.Dfg.id nd.Dfg.op name
        done)
    t;
  (* one guard per (source, distance) pair feeding any sink *)
  let guards : (int * int, int) Hashtbl.t = Hashtbl.create 8 in
  let guard_of src dist =
    match Hashtbl.find_opt guards (src, dist) with
    | Some g -> g
    | None ->
        let op = match mode with Tmr -> Op.Vote | _ -> Op.Cmp in
        let name = Printf.sprintf "%s%s" (Op.to_string op) (Dfg.name t src) in
        let g = add_tracked ~orig:src op name in
        for c = 0 to Op.arity op - 1 do
          Dfg.add_edge out ~src:copy_id.(src).(c) ~dst:g ~port:c ~dist
        done;
        Hashtbl.replace guards (src, dist) g;
        g
  in
  Dfg.iter_edges
    (fun e ->
      if is_sink (Dfg.op t e.Dfg.dst) then
        if is_sink (Dfg.op t e.Dfg.src) then
          (* sink-to-sink values are single on both ends: wire through *)
          Dfg.add_edge out ~src:copy_id.(e.Dfg.src).(0) ~dst:copy_id.(e.Dfg.dst).(0)
            ~port:e.Dfg.port ~dist:e.Dfg.dist
        else
          let g = guard_of e.Dfg.src e.Dfg.dist in
          Dfg.add_edge out ~src:g ~dst:copy_id.(e.Dfg.dst).(0) ~port:e.Dfg.port ~dist:0
      else
        for c = 0 to k - 1 do
          Dfg.add_edge out ~src:copy_id.(e.Dfg.src).(c) ~dst:copy_id.(e.Dfg.dst).(c)
            ~port:e.Dfg.port ~dist:e.Dfg.dist
        done)
    t;
  let origin = Array.of_list (List.rev !origin_rev) in
  (out, fun id -> origin.(id))

let apply mode t =
  match mode with
  | No_harden -> (t, fun id -> id)
  | Dmr | Tmr -> replicate mode t

let dmr t = replicate Dmr t
let tmr t = replicate Tmr t

(** DMR/TMR hardening transforms against transient faults.

    Hardening happens at the DFG level, so a hardened kernel is just
    another DFG: every mapper, the validator and the simulator handle
    it unchanged.  The compute sphere is replicated (2x for DMR, 3x
    for TMR) with per-replica loop recurrences; side-effect sinks
    (Output, Store) stay single and each of their operands is fused
    through a guard node — a {!Op.t.Vote} majority voter (TMR, masks
    corruption) or a {!Op.t.Cmp} duplicate comparator (DMR, detects
    it).

    Semantics are preserved: on a fault-free run the hardened DFG
    produces exactly the original output streams (property-tested).

    Do not run {!Transform.cse} after hardening — replicas are
    structurally identical and would be merged back into one.  Harden
    last. *)

type mode = No_harden | Dmr | Tmr

val mode_to_string : mode -> string

(** Parses ["none" | "dmr" | "tmr"]; raises [Invalid_argument]
    otherwise. *)
val mode_of_string : string -> mode

(** Replication factor: 1, 2, 3. *)
val copies : mode -> int

(** [apply mode t] returns the hardened DFG and [origin], mapping each
    new node id to the original node it replicates (guards map to the
    value they guard; the identity for [No_harden]).  Compose
    problem-level init functions through [origin]. *)
val apply : mode -> Dfg.t -> Dfg.t * (int -> int)

val dmr : Dfg.t -> Dfg.t * (int -> int)
val tmr : Dfg.t -> Dfg.t * (int -> int)

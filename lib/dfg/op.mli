(** The operation vocabulary shared by the front-end, the mappers, the
    architecture model and the simulator. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Min
  | Max
  | Lt
  | Le
  | Eq
  | Ne

type t =
  | Const of int  (** immediate from the configuration word *)
  | Input of string  (** live-in / stream element, by name *)
  | Output of string  (** live-out / stream element, by name *)
  | Binop of binop
  | Not
  | Neg
  | Select  (** operands: condition, then-value, else-value *)
  | Load of string  (** array load; operand: index *)
  | Store of string  (** array store; operands: index, value *)
  | Route  (** explicit routing node inserted by transformations *)
  | Vote  (** majority voter over three redundant copies (TMR hardening) *)
  | Cmp  (** duplicate comparator: passes operand 0, flags a mismatch (DMR) *)
  | Nop

(** Functional classes: the unit of heterogeneity in the architecture
    model (a PE declares which classes it implements). *)
type func_class = F_alu | F_mul | F_mem | F_io | F_route

val func_class : t -> func_class
val all_classes : func_class list

(** Issue-to-result latency in cycles (single-cycle PEs throughout, but
    the schedulers treat it symbolically). *)
val latency : t -> int

(** Number of operand ports. *)
val arity : t -> int

val commutative : t -> bool

(** Must be preserved by dead-code elimination. *)
val has_side_effect : t -> bool

val binop_to_string : binop -> string
val to_string : t -> string
val func_class_to_string : func_class -> string

(** Integer semantics used by both the interpreter and the simulator
    (division by zero yields 0; shifts mask their amount). *)
val eval_binop : binop -> int -> int -> int

(** Bitwise majority of three values — the TMR voter circuit.  Any two
    equal operands win; differing bits are resolved per bit. *)
val eval_vote : int -> int -> int -> int

(** Mapping as a service: a long-lived batch daemon over the mapping
    stack.

    The service accepts batches of requests (kernel + array + fault
    mask + problem kind), canonicalizes each DFG (see {!Canon}), and
    serves each request by the cheapest sufficient path:

    - {b hit}: the isomorphism class is cached and the cached mask
      covers the request — permute the cached mapping onto the request
      DFG, re-certify with [Check.validate], answer in microseconds;
    - {b repair hit}: the class is cached but the request mask has
      {e grown} (cached mask ⊂ request mask) — run the certified
      {!Ocgra_core.Repair} ladder from the cached mapping instead of
      mapping cold, and fold the repaired mapping back into the entry;
    - {b miss}: everything else — the request drains through a
      [Supervise]-wrapped pool of [Harness.race] cold maps, and the
      result is inserted (replacing a same-class entry if the masks
      were incomparable).

    Every returned mapping — hit, repair or miss — has passed
    [Check.validate] against the {e request's} problem; a permuted hit
    the validator rejects is demoted to a miss, never returned.

    {b Determinism contract}: with deterministic mapper chains,
    responses, cache contents, counters and the event log are pure
    functions of (config, request stream, batch boundaries) — the
    worker count never shows through.  Classification is sequential in
    request order; misses run with a private single-worker race each
    and a private [Ctx.fork] absorbed in miss order; events are
    emitted post-hoc in request order and carry no wall-clock
    payloads.  Latencies exist only as histogram observations and
    response fields, never in events. *)

type config = {
  capacity : int;  (** cache entries, LRU beyond this *)
  chain : Ocgra_core.Mapper.t list;  (** cold-map portfolio; non-empty *)
  workers : int;  (** pool width for draining a batch's misses *)
  deadline_s : float option;  (** per-miss / per-repair budget *)
  seed : int;
  retries : int;  (** supervised retries per miss task *)
  max_ii_bumps : int;  (** repair-ladder II headroom *)
}

(** capacity 256, workers 1, no deadline, seed 42, 1 retry, 2 bumps —
    and an empty chain the caller must replace. *)
val default_config : config

type request = {
  id : string;
  dfg : Ocgra_dfg.Dfg.t;
  cgra : Ocgra_arch.Cgra.t;  (** carries the fault mask *)
  spatial : bool;
  max_ii : int option;
}

type served =
  | Hit  (** exact duplicate (identity witness) *)
  | Iso_hit  (** isomorphic renaming, permuted back *)
  | Repair_hit of Ocgra_core.Mapper.rung  (** mask grew; ladder rung that certified *)
  | Miss  (** cold-mapped this request *)
  | Rejected  (** no mapping: invalid/unmappable request or all engines failed *)

val served_to_string : served -> string

type response = {
  id : string;
  served : served;
  mapping : Ocgra_core.Mapping.t option;  (** certified on the request DFG *)
  ii : int option;
  elapsed_s : float;  (** service time of this request inside the batch *)
  note : string;
}

type stats = {
  requests : int;
  hits : int;  (** exact duplicates *)
  iso_hits : int;
  repair_hits : int;
  misses : int;
  rejections : int;
  coalesced : int;  (** in-batch duplicates folded onto one cold map *)
  demotions : int;  (** cached mapping failed re-certification -> miss *)
  entries : int;
  evictions : int;
}

type t

(** Raises [Invalid_argument] on an empty chain or capacity < 1. *)
val create : ?obs:Ocgra_obs.Ctx.t -> config -> t

(** Serve one batch; responses in request order.  Not thread-safe —
    one submitter at a time (the daemon loop is that submitter). *)
val submit_batch : t -> request list -> response list

val stats : t -> stats

(** [permute_mapping ~src_dfg ~dst_dfg ~witness m] rewrites a mapping
    of [src_dfg] into the node numbering of [dst_dfg], where
    [witness.(i)] is the [dst_dfg] node matching [src_dfg] node [i]:
    bindings follow the witness, routes are re-associated by their
    (consumer, port) slot — resource coordinates inside each route are
    untouched.  Exposed for the property tests. *)
val permute_mapping :
  src_dfg:Ocgra_dfg.Dfg.t ->
  dst_dfg:Ocgra_dfg.Dfg.t ->
  witness:int array ->
  Ocgra_core.Mapping.t ->
  Ocgra_core.Mapping.t

(** Canonical form of a kernel for the mapping cache.

    Two requests whose DFGs differ only by node numbering (and by
    mapping-irrelevant decoration: node names, immediate values, array
    names) describe the same mapping problem, so they must land on the
    same cache entry.  The canonical form is a Weisfeiler–Leman colour
    refinement over the labelled dependence multigraph:

    - node labels capture exactly what PE capability checking sees —
      whether the op needs an immediate slot, its functional class, and
      its latency (see [Pe.supports]);
    - edge labels carry the (port, dist) pair, encoded as a digraph
      weight, because operand port and loop-carried distance both
      constrain routing.

    Isomorphic DFGs always refine to the same fingerprint (no false
    misses); a fingerprint match is then confirmed — and the actual node
    bijection recovered — by {!witness}, an exact labelled-multigraph
    isomorphism, so a hash collision can never hand back a mapping for
    the wrong kernel. *)

type t

(** Canonicalize; cheap enough for the request fast path. *)
val of_dfg : Ocgra_dfg.Dfg.t -> t

val dfg : t -> Ocgra_dfg.Dfg.t

(** Permutation-invariant 62-bit fingerprint.  Isomorphic DFGs agree;
    unequal fingerprints prove non-isomorphism. *)
val fingerprint : t -> int

(** [witness a b] is [Some w] iff the underlying DFGs are isomorphic as
    labelled multigraphs, with [w.(i)] the node of [b] matching node [i]
    of [a].  Structurally identical DFGs short-circuit to the identity
    witness without a search.  Deterministic. *)
val witness : t -> t -> int array option

(** [permute d p] renumbers: node [i] of [d] becomes node [p.(i)] of the
    result, edges follow.  [witness (of_dfg d) (of_dfg (permute d p))]
    is total by construction — the bench stream generator and the
    property tests build their isomorphic duplicates with this. *)
val permute : Ocgra_dfg.Dfg.t -> int array -> Ocgra_dfg.Dfg.t

(** JSONL wire format of the mapping service.

    One request per line.  Fields (defaults in brackets):

    {v
    {"id": "r1",                  -- required
     "kernel": "saxpy"            -- kernel by name, XOR
     "dfg": {"nodes": [{"op": "in a", "name": "a"}, ...],
             "edges": [[src, dst, port, dist], ...]},
     "rows": 4, "cols": 4,        -- [4, 4]
     "topology": "mesh",          -- [mesh] mesh|torus|diagonal|one-hop|full
     "hetero": false,             -- [false] adres-like checkerboard
     "rf": 8,                     -- [arch default]
     "faults": [["pe", 3], ["link", 1, 2], ["slot", 2, 1], ["rf", 4, 2]],
     "n_faults": 0, "fault_seed": 1,  -- extra mask injected by seed
     "spatial": false, "max_ii": 8}   -- [temporal, problem default]
    v}

    Responses mirror requests one line each, in input order:

    {v
    {"id": "r1", "status": "ok", "served": "hit|iso-hit|repair-hit|miss",
     "rung": "route-only",        -- repair hits only
     "ii": 2, "certified": true,
     "binding": [[pe, cycle], ...],  -- node id -> place/time
     "note": "..."}
    {"id": "r2", "status": "rejected", "note": "..."}   -- no mapping found
    {"id": "line-7", "status": "error", "error": "..."} -- malformed line
    v}

    Responses deliberately carry no latency fields: a response file is
    byte-identical across worker counts and replays (latencies live in
    the metrics histograms). *)

type payload = Kernel of string | Inline of Ocgra_dfg.Dfg.t

type req = {
  id : string;
  payload : payload;
  rows : int;
  cols : int;
  topology : string;
  hetero : bool;
  rf : int option;
  faults : Ocgra_arch.Fault.t list;
  n_faults : int;
  fault_seed : int;
  spatial : bool;
  max_ii : int option;
}

(** id "", kernel "", 4x4 mesh, homogeneous, no faults, temporal. *)
val default_req : req

(** Render one request line (no trailing newline). *)
val req_to_json : req -> string

(** Parse one request line.  [Error msg] on malformed JSON, unknown
    ops/topologies/fault kinds, missing payload, or non-permutation
    edges — the daemon turns it into an error response, never a
    crash. *)
val parse_req : string -> (req, string) result

(** Materialize: resolve the kernel name through [lookup] (so this
    library stays independent of the workload library), build the
    array, inject the seeded mask on top of the explicit one. *)
val to_request :
  lookup:(string -> (Ocgra_dfg.Dfg.t, string) result) ->
  req ->
  (Svc.request, string) result

(** Render one response line (no trailing newline, no latencies). *)
val response_to_json : Svc.response -> string

(** Error-response line for a malformed input line. *)
val error_to_json : id:string -> string -> string

(** Best-effort id recovery from a malformed line, for the error
    response; falls back to [line-<n>]. *)
val salvage_id : line:int -> string -> string

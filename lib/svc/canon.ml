(* Canonical form of a kernel: Weisfeiler-Leman colour refinement over
   the labelled dependence multigraph, refined on demand by an exact
   isomorphism search.

   The node label is deliberately *not* the full op.  [Check.validate]
   accepts a binding for op [o] on PE [p] iff [Pe.supports p o], and
   that predicate only looks at (a) whether [o] is a [Const] (immediate
   slot needed) and (b) the functional class otherwise; scheduling only
   adds the latency.  So two ops with equal (const?, class, latency)
   triples are interchangeable for mapping purposes — [mul] by any
   name, [load A] vs [load B], [const 3] vs [const 7] — and the cache
   gets strictly more hits by labelling with the triple instead of the
   op.  The returned mapping is still re-certified against the actual
   request DFG, so the weaker label can never produce a wrong answer,
   only a demotion to miss if the validator disagrees. *)

module Dfg = Ocgra_dfg.Dfg
module Op = Ocgra_dfg.Op
module Digraph = Ocgra_graph.Digraph
module Iso = Ocgra_graph.Iso

type t = {
  dfg : Dfg.t;
  graph : Digraph.t; (* edge weight = (dist lsl 3) lor port *)
  labels : int array; (* mapping-relevant op identity per node *)
  colors : int array; (* stable WL colours *)
  fp : int;
}

let dfg t = t.dfg
let fingerprint t = t.fp

(* FNV-ish mixer; constants kept below 2^62 so the literals parse on
   63-bit native ints.  Quality only has to be good enough that WL
   colour collisions are rare — the exact search behind [witness]
   absorbs the rest. *)
let mix h x =
  let h = (h lxor (x * 0x2545f4914f6cdd1)) * 0x100000001b3 in
  (h lxor (h lsr 29)) land max_int

let label op =
  let cls =
    match (op : Op.t) with
    | Op.Const _ -> 0 (* needs the immediate slot, not a class *)
    | _ -> (
        match Op.func_class op with
        | Op.F_alu -> 1
        | Op.F_mul -> 2
        | Op.F_mem -> 3
        | Op.F_io -> 4
        | Op.F_route -> 5)
  in
  (cls * 16) + Op.latency op

let edge_weight (e : Dfg.edge) = (e.Dfg.dist lsl 3) lor e.Dfg.port

let of_dfg dfg =
  let n = Dfg.node_count dfg in
  let graph = Digraph.create () in
  if n > 0 then ignore (Digraph.add_nodes graph n);
  List.iter
    (fun (e : Dfg.edge) ->
      Digraph.add_edge ~weight:(edge_weight e) graph e.Dfg.src e.Dfg.dst)
    (Dfg.edges dfg);
  let labels = Array.init n (fun i -> label (Dfg.op dfg i)) in
  let colors = Array.map (fun l -> mix 0x5eed l) labels in
  (* A handful of rounds separates everything a WL refinement can
     separate on kernel-sized graphs (it stabilizes within the graph's
     diameter); the round count is a function of the (iso-invariant)
     node count, so isomorphic graphs always run the same refinement.
     Kept small — this runs on the request fast path, and a coarser
     colouring only costs [witness] more search, never correctness. *)
  let rounds = min 5 (max 2 n) in
  for _ = 1 to rounds do
    let next = Array.make n 0 in
    for v = 0 to n - 1 do
      let ins =
        List.sort compare
          (List.map
             (fun (e : Digraph.edge) -> mix e.Digraph.weight colors.(e.Digraph.src))
             (Digraph.pred_edges graph v))
      in
      let outs =
        List.sort compare
          (List.map
             (fun (e : Digraph.edge) ->
               mix (e.Digraph.weight + 0x0f0f0f) colors.(e.Digraph.dst))
             (Digraph.succ_edges graph v))
      in
      let h = mix colors.(v) 0x517cc1 in
      let h = List.fold_left mix h ins in
      let h = List.fold_left (fun acc x -> mix acc (x lxor 0x2a)) h outs in
      next.(v) <- h
    done;
    Array.blit next 0 colors 0 n
  done;
  let fp =
    let sorted = Array.copy colors in
    Array.sort compare sorted;
    let h = mix (mix 0x0c9 n) (Dfg.edge_count dfg) in
    Array.fold_left mix h sorted
  in
  { dfg; graph; labels; colors; fp }

let edge_tuples d =
  List.sort compare
    (List.map
       (fun (e : Dfg.edge) -> (e.Dfg.src, e.Dfg.dst, e.Dfg.port, e.Dfg.dist))
       (Dfg.edges d))

let witness a b =
  let n = Array.length a.labels in
  if a.fp <> b.fp || n <> Array.length b.labels then None
  else if a.labels = b.labels && edge_tuples a.dfg = edge_tuples b.dfg then
    (* exact duplicate under the identity: the common case for resubmitted
       kernels, served without a search *)
    Some (Array.init n (fun i -> i))
  else
    (* WL colours prune the exact search: a true isomorphism maps every
       node onto one with the same stable colour.  Labels are re-checked
       explicitly in case two different labels collided into one colour. *)
    Iso.find_iso
      ~compatible:(fun i j -> a.labels.(i) = b.labels.(j) && a.colors.(i) = b.colors.(j))
      a.graph b.graph

let permute d p =
  let n = Dfg.node_count d in
  if Array.length p <> n then invalid_arg "Canon.permute: length mismatch";
  let inv = Array.make n (-1) in
  Array.iteri
    (fun i j ->
      if j < 0 || j >= n || inv.(j) >= 0 then invalid_arg "Canon.permute: not a permutation";
      inv.(j) <- i)
    p;
  let out = Dfg.create () in
  for j = 0 to n - 1 do
    ignore (Dfg.add ~name:(Dfg.name d inv.(j)) out (Dfg.op d inv.(j)))
  done;
  List.iter
    (fun (e : Dfg.edge) ->
      Dfg.add_edge ~dist:e.Dfg.dist ~port:e.Dfg.port out ~src:p.(e.Dfg.src) ~dst:p.(e.Dfg.dst))
    (Dfg.edges d);
  out

(* Canonical-form mapping cache: a small association of isomorphism
   classes to certified mappings.

   A linear scan is the right structure here: capacities are in the
   hundreds, the fingerprint comparison rejects non-members on one
   integer compare, and the arch-signature string compare short-circuits
   on length — so a lookup is microseconds against cold maps that cost
   milliseconds to seconds.  What we buy with the simplicity is easy
   determinism: eviction scans for the minimum of a monotone sequence
   counter, so there is no wall clock and no hash-order dependence
   anywhere in the replacement policy. *)

type entry = {
  key : string;
  mutable canon : Canon.t;
  mutable mapping : Ocgra_core.Mapping.t;
  mutable mask : Ocgra_arch.Fault.t list;
  mutable last_used : int;
  mutable hits : int;
}

type t = {
  cap : int;
  mutable entries : entry list;
  mutable seq : int; (* the LRU clock: bumped per cache touch *)
  mutable evicted : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Cache.create: capacity < 1";
  { cap = capacity; entries = []; seq = 0; evicted = 0 }

let capacity t = t.cap
let size t = List.length t.entries
let evictions t = t.evicted

let tick t =
  t.seq <- t.seq + 1;
  t.seq

(* Find the entry of [c]'s isomorphism class under arch [key], with the
   representative -> request witness. *)
let find_class t ~key c =
  let fp = Canon.fingerprint c in
  let rec go = function
    | [] -> None
    | e :: rest ->
        if Canon.fingerprint e.canon = fp && e.key = key then
          match Canon.witness e.canon c with
          | Some w -> Some (e, w)
          | None -> go rest (* fingerprint collision: keep scanning *)
        else go rest
  in
  go t.entries

let lookup t ~key c =
  match find_class t ~key c with
  | Some (e, w) ->
      e.last_used <- tick t;
      e.hits <- e.hits + 1;
      Some (e, w)
  | None -> None

let insert t ~key c mapping ~mask =
  let mask = Ocgra_arch.Fault.canonical mask in
  match find_class t ~key c with
  | Some (e, _) ->
      (* same class already cached (stale mask or demoted mapping):
         update in place, request becomes the new representative *)
      e.canon <- c;
      e.mapping <- mapping;
      e.mask <- mask;
      e.last_used <- tick t;
      (e, None)
  | None ->
      let victim =
        if List.length t.entries < t.cap then None
        else begin
          let v =
            List.fold_left
              (fun acc e ->
                match acc with
                | Some best when best.last_used <= e.last_used -> acc
                | _ -> Some e)
              None t.entries
          in
          (match v with
          | Some v ->
              t.entries <- List.filter (fun e -> e != v) t.entries;
              t.evicted <- t.evicted + 1
          | None -> ());
          v
        end
      in
      let e = { key; canon = c; mapping; mask; last_used = tick t; hits = 0 } in
      t.entries <- t.entries @ [ e ];
      (e, victim)

let iter f t = List.iter f t.entries

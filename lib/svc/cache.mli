(** The canonical-form mapping cache.

    One entry per (arch signature, kernel isomorphism class): a
    certified mapping in the coordinates of the {e representative} DFG
    (the one that paid for the cold map), plus the canonical fault mask
    it was certified under.  Lookup resolves the request's node
    bijection onto the representative, so a hit on an isomorphic
    renaming of a cached kernel can be permuted back and re-certified
    by the caller.

    Eviction is deterministic: size-bounded LRU ordered by a monotone
    request sequence number — never by wall clock — so a replayed
    request stream evicts exactly the same entries on every run and on
    every worker count. *)

type entry = {
  key : string;  (** [Problem.signature] of the representative *)
  mutable canon : Canon.t;  (** representative canonical form *)
  mutable mapping : Ocgra_core.Mapping.t;  (** in representative coordinates *)
  mutable mask : Ocgra_arch.Fault.t list;  (** canonical; certified under *)
  mutable last_used : int;  (** LRU clock value, not wall time *)
  mutable hits : int;
}

type t

(** Raises [Invalid_argument] on a capacity below 1. *)
val create : capacity:int -> t

val capacity : t -> int
val size : t -> int
val evictions : t -> int

(** [lookup t ~key c] finds the entry whose arch signature is [key] and
    whose representative is isomorphic to [c], returning it with the
    witness mapping representative nodes onto [c]'s nodes.  Bumps the
    LRU clock on a hit. *)
val lookup : t -> key:string -> Canon.t -> (entry * int array) option

(** Insert a freshly mapped kernel.  If an entry of the same
    isomorphism class already exists (stale mask, demoted mapping), it
    is updated in place and [c] becomes the new representative.
    Otherwise a fresh entry is added, evicting the least-recently-used
    entry when at capacity; the evicted entry is returned so the
    service can account for it. *)
val insert :
  t ->
  key:string ->
  Canon.t ->
  Ocgra_core.Mapping.t ->
  mask:Ocgra_arch.Fault.t list ->
  entry * entry option

val iter : (entry -> unit) -> t -> unit

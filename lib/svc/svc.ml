(* Mapping as a service: batch classification against the canonical-form
   cache, certified repair for grown fault masks, supervised parallel
   cold maps for the rest.

   The batch algorithm is three sequential-parallel-sequential phases,
   which is what makes the whole service deterministic in everything
   but wall-clock fields:

   phase 1 (sequential, request order): canonicalize, look up, and
     resolve hits and repair hits inline.  Misses are queued; a miss
     isomorphic to an earlier queued miss (same arch signature, same
     canonical mask) coalesces onto it instead of mapping twice.

   phase 2 (parallel): the distinct misses drain through one
     [Supervise.run] over the domain pool.  Each task is a
     single-worker [Harness.race] — sequential inside, so its outcome
     does not depend on scheduling — writing into a private [Ctx.fork].

   phase 3 (sequential, miss order then request order): fold the fork
     sinks back in miss order, insert results into the cache (evicting
     deterministically), resolve coalesced duplicates from the
     just-inserted entries, then emit one [svc.request] event per
     request in request order.  Events never carry latencies. *)

module Dfg = Ocgra_dfg.Dfg
module Fault = Ocgra_arch.Fault
module Cgra = Ocgra_arch.Cgra
module Problem = Ocgra_core.Problem
module Mapping = Ocgra_core.Mapping
module Mapper = Ocgra_core.Mapper
module Check = Ocgra_core.Check
module Repair = Ocgra_core.Repair
module Deadline = Ocgra_core.Deadline
module Ctx = Ocgra_obs.Ctx
module Events = Ocgra_obs.Events
module Supervise = Ocgra_par.Supervise

type config = {
  capacity : int;
  chain : Mapper.t list;
  workers : int;
  deadline_s : float option;
  seed : int;
  retries : int;
  max_ii_bumps : int;
}

let default_config =
  {
    capacity = 256;
    chain = [];
    workers = 1;
    deadline_s = None;
    seed = 42;
    retries = 1;
    max_ii_bumps = 2;
  }

type request = {
  id : string;
  dfg : Dfg.t;
  cgra : Cgra.t;
  spatial : bool;
  max_ii : int option;
}

type served =
  | Hit
  | Iso_hit
  | Repair_hit of Mapper.rung
  | Miss
  | Rejected

let served_to_string = function
  | Hit -> "hit"
  | Iso_hit -> "iso-hit"
  | Repair_hit _ -> "repair-hit"
  | Miss -> "miss"
  | Rejected -> "rejected"

type response = {
  id : string;
  served : served;
  mapping : Mapping.t option;
  ii : int option;
  elapsed_s : float;
  note : string;
}

type stats = {
  requests : int;
  hits : int;
  iso_hits : int;
  repair_hits : int;
  misses : int;
  rejections : int;
  coalesced : int;
  demotions : int;
  entries : int;
  evictions : int;
}

type t = {
  config : config;
  cache : Cache.t;
  obs : Ctx.t;
  mutable requests : int;
  mutable hits : int;
  mutable iso_hits : int;
  mutable repair_hits : int;
  mutable misses : int;
  mutable rejections : int;
  mutable coalesced : int;
  mutable demotions : int;
}

let create ?(obs = Ctx.off) config =
  if config.chain = [] then invalid_arg "Svc.create: empty mapper chain";
  {
    config;
    cache = Cache.create ~capacity:config.capacity;
    obs;
    requests = 0;
    hits = 0;
    iso_hits = 0;
    repair_hits = 0;
    misses = 0;
    rejections = 0;
    coalesced = 0;
    demotions = 0;
  }

let stats t =
  {
    requests = t.requests;
    hits = t.hits;
    iso_hits = t.iso_hits;
    repair_hits = t.repair_hits;
    misses = t.misses;
    rejections = t.rejections;
    coalesced = t.coalesced;
    demotions = t.demotions;
    entries = Cache.size t.cache;
    evictions = Cache.evictions t.cache;
  }

let is_identity w =
  let ok = ref true in
  Array.iteri (fun i j -> if i <> j then ok := false) w;
  !ok

let invert w =
  let inv = Array.make (Array.length w) 0 in
  Array.iteri (fun i j -> inv.(j) <- i) w;
  inv

(* Rewrite a mapping of [src_dfg] into [dst_dfg]'s numbering under the
   node bijection [witness].  Bindings permute directly.  Routes are
   keyed by their consumer slot: [Dfg.validate] guarantees one producer
   per (dst, port), so the pair identifies the matching source edge;
   the hops inside a route are PE/cycle coordinates and survive a node
   renaming unchanged. *)
let permute_mapping ~src_dfg ~dst_dfg ~witness (m : Mapping.t) =
  let n = Dfg.node_count src_dfg in
  let binding = Array.make n (0, 0) in
  Array.iteri (fun i j -> binding.(j) <- m.Mapping.binding.(i)) witness;
  let by_slot = Hashtbl.create (max 16 (Dfg.edge_count src_dfg)) in
  List.iteri
    (fun idx (e : Dfg.edge) -> Hashtbl.replace by_slot (e.Dfg.dst, e.Dfg.port) idx)
    (Dfg.edges src_dfg);
  let inv = invert witness in
  let routes =
    Array.of_list
      (List.map
         (fun (e : Dfg.edge) ->
           match Hashtbl.find_opt by_slot (inv.(e.Dfg.dst), e.Dfg.port) with
           | Some idx -> m.Mapping.routes.(idx)
           | None -> [] (* impossible under a true witness; validate rejects *))
         (Dfg.edges dst_dfg))
  in
  { m with Mapping.binding; routes }

let mk_problem req =
  if req.spatial then Problem.spatial ~dfg:req.dfg ~cgra:req.cgra ()
  else Problem.temporal ?max_ii:req.max_ii ~dfg:req.dfg ~cgra:req.cgra ()

(* One queued cold map: the first request of its (arch, mask, iso
   class) triple in this batch; later equivalents coalesce onto it. *)
type pending = {
  p_index : int; (* position in the miss queue *)
  p_req : request;
  p_req_index : int;
  p_key : string;
  p_canon : Canon.t;
  p_mask : Fault.t list;
  p_problem : Problem.t;
  p_obs : Ctx.t; (* private fork, absorbed in miss order *)
}

let submit_batch t reqs =
  let reqs = Array.of_list reqs in
  let n = Array.length reqs in
  let responses : response option array = Array.make n None in
  let pendings = ref [] in
  let n_pending = ref 0 in
  let dups = ref [] in
  (* ---- phase 1: sequential classification ---- *)
  Array.iteri
    (fun i (req : request) ->
      let t0 = Deadline.now () in
      let finish served mapping note =
        responses.(i) <-
          Some
            {
              id = req.id;
              served;
              mapping;
              ii = Option.map (fun (m : Mapping.t) -> m.Mapping.ii) mapping;
              elapsed_s = Deadline.now () -. t0;
              note;
            }
      in
      match Dfg.validate req.dfg with
      | _ :: _ as errs ->
          finish Rejected None ("invalid DFG: " ^ String.concat "; " errs)
      | [] ->
          let canon = Canon.of_dfg req.dfg in
          let problem = mk_problem req in
          let key = Problem.signature problem in
          let mask = Fault.canonical (Cgra.faults req.cgra) in
          let queue_miss () =
            if not (Problem.mappable problem) then
              finish Rejected None "unmappable: some op has no capable live PE"
            else
              match
                List.find_opt
                  (fun p ->
                    p.p_key = key && p.p_mask = mask
                    && Canon.witness p.p_canon canon <> None)
                  !pendings
              with
              | Some p -> dups := (p, i, canon, problem) :: !dups
              | None ->
                  let p =
                    {
                      p_index = !n_pending;
                      p_req = req;
                      p_req_index = i;
                      p_key = key;
                      p_canon = canon;
                      p_mask = mask;
                      p_problem = problem;
                      p_obs = Ctx.fork t.obs;
                    }
                  in
                  incr n_pending;
                  pendings := p :: !pendings
          in
          (match Cache.lookup t.cache ~key canon with
          | None -> queue_miss ()
          | Some (entry, w) ->
              if Fault.subset mask entry.Cache.mask then begin
                (* cached mapping avoids a superset of the request's dead
                   resources: permute and re-certify on the request *)
                let m =
                  permute_mapping ~src_dfg:(Canon.dfg entry.Cache.canon)
                    ~dst_dfg:req.dfg ~witness:w entry.Cache.mapping
                in
                match Check.validate problem m with
                | [] ->
                    finish (if is_identity w then Hit else Iso_hit) (Some m) "served from cache"
                | _ :: _ ->
                    (* stale bound or collision artefact: never return an
                       uncertified mapping — remap cold instead *)
                    t.demotions <- t.demotions + 1;
                    queue_miss ()
              end
              else if Fault.subset entry.Cache.mask mask then begin
                (* the mask grew: climb the certified repair ladder from
                   the cached mapping instead of mapping cold *)
                let m_prev =
                  permute_mapping ~src_dfg:(Canon.dfg entry.Cache.canon)
                    ~dst_dfg:req.dfg ~witness:w entry.Cache.mapping
                in
                let r =
                  Repair.repair ~seed:t.config.seed
                    ~deadline:(Deadline.of_seconds t.config.deadline_s)
                    ~obs:t.obs ~fallback:[] ~workers:1
                    ~max_ii_bumps:t.config.max_ii_bumps problem m_prev
                in
                match (r.Repair.mapping, r.Repair.rung) with
                | Some m, Some rung ->
                    (* fold the repaired mapping back into representative
                       coordinates so the next request at this mask hits *)
                    entry.Cache.mapping <-
                      permute_mapping ~src_dfg:req.dfg
                        ~dst_dfg:(Canon.dfg entry.Cache.canon)
                        ~witness:(invert w) m;
                    entry.Cache.mask <- mask;
                    finish (Repair_hit rung) (Some m) r.Repair.note
                | _ -> queue_miss ()
              end
              else
                (* incomparable masks: a repair could not certify and a
                   cached answer could be wrong — cold map and replace *)
                queue_miss ()))
    reqs;
  let pendings = Array.of_list (List.rev !pendings) in
  (* ---- phase 2: supervised parallel drain of the distinct misses ---- *)
  let results =
    if Array.length pendings = 0 then [||]
    else begin
      let tasks =
        Array.map
          (fun p (_stop : unit -> bool) ->
            let t0 = Deadline.now () in
            let o =
              Mapper.Harness.race ~seed:t.config.seed
                ?deadline_s:t.config.deadline_s ~workers:1 ~obs:p.p_obs
                t.config.chain p.p_problem
            in
            (o, Deadline.now () -. t0))
          pendings
      in
      let summary =
        Supervise.run ~workers:t.config.workers ~obs:t.obs
          ~policy:
            {
              Supervise.default_policy with
              Supervise.retries = t.config.retries;
              seed = t.config.seed;
            }
          tasks
      in
      Array.map
        (function Supervise.Ok r -> Some r | _ -> None)
        summary.Supervise.outcomes
    end
  in
  (* fork sinks fold back in miss order — a fixed order, so the merged
     event log is identical on every worker count *)
  Array.iter (fun p -> Ctx.absorb ~into:t.obs p.p_obs) pendings;
  (* ---- phase 3: sequential integration ---- *)
  let inserted : Cache.entry option array = Array.make (Array.length pendings) None in
  Array.iteri
    (fun j p ->
      let finish served mapping elapsed note =
        responses.(p.p_req_index) <-
          Some
            {
              id = p.p_req.id;
              served;
              mapping;
              ii = Option.map (fun (m : Mapping.t) -> m.Mapping.ii) mapping;
              elapsed_s = elapsed;
              note;
            }
      in
      match results.(j) with
      | Some (o, dt) -> (
          match o.Mapper.mapping with
          | Some m ->
              let entry, victim =
                Cache.insert t.cache ~key:p.p_key p.p_canon m ~mask:p.p_mask
              in
              inserted.(j) <- Some entry;
              (match victim with
              | Some v ->
                  Ctx.event t.obs ~cat:"svc" "svc.evict"
                    [
                      ("fp", Events.Str (Printf.sprintf "%x" (Canon.fingerprint v.Cache.canon)));
                      ("hits", Events.Int v.Cache.hits);
                    ]
              | None -> ());
              finish Miss (Some m) dt o.Mapper.note
          | None -> finish Rejected None dt o.Mapper.note)
      | None ->
          finish Rejected None 0.0 "cold map quarantined by the supervisor")
    pendings;
  (* coalesced duplicates: serve from the primary's fresh entry, in
     request order *)
  List.iter
    (fun (p, i, canon, problem) ->
      let t0 = Deadline.now () in
      let req = reqs.(i) in
      let finish served mapping note =
        t.coalesced <- t.coalesced + 1;
        responses.(i) <-
          Some
            {
              id = req.id;
              served;
              mapping;
              ii = Option.map (fun (m : Mapping.t) -> m.Mapping.ii) mapping;
              elapsed_s = Deadline.now () -. t0;
              note;
            }
      in
      match inserted.(p.p_index) with
      | None -> finish Rejected None "coalesced onto a failed cold map"
      | Some entry -> (
          match Canon.witness entry.Cache.canon canon with
          | None -> finish Rejected None "coalescing witness vanished"
          | Some w -> (
              let m =
                permute_mapping ~src_dfg:(Canon.dfg entry.Cache.canon)
                  ~dst_dfg:req.dfg ~witness:w entry.Cache.mapping
              in
              match Check.validate problem m with
              | [] ->
                  finish (if is_identity w then Hit else Iso_hit) (Some m)
                    "served from this batch's cold map"
              | _ :: _ ->
                  t.demotions <- t.demotions + 1;
                  finish Rejected None "coalesced mapping failed re-certification")))
    (List.rev !dups);
  (* ---- phase 4: accounting + post-hoc events, request order ---- *)
  let out =
    Array.mapi
      (fun i -> function
        | Some r -> r
        | None ->
            (* every request was resolved by one of the phases above *)
            {
              id = reqs.(i).id;
              served = Rejected;
              mapping = None;
              ii = None;
              elapsed_s = 0.0;
              note = "internal: request fell through";
            })
      responses
  in
  Array.iteri
    (fun i r ->
      t.requests <- t.requests + 1;
      let us = int_of_float (r.elapsed_s *. 1e6) in
      (match r.served with
      | Hit ->
          t.hits <- t.hits + 1;
          Ctx.incr t.obs "svc.hits";
          Ctx.observe t.obs "svc.hit_us" us
      | Iso_hit ->
          t.iso_hits <- t.iso_hits + 1;
          Ctx.incr t.obs "svc.iso_hits";
          Ctx.observe t.obs "svc.hit_us" us
      | Repair_hit _ ->
          t.repair_hits <- t.repair_hits + 1;
          Ctx.incr t.obs "svc.repair_hits";
          Ctx.observe t.obs "svc.repair_us" us
      | Miss ->
          t.misses <- t.misses + 1;
          Ctx.incr t.obs "svc.misses";
          Ctx.observe t.obs "svc.miss_us" us
      | Rejected ->
          t.rejections <- t.rejections + 1;
          Ctx.incr t.obs "svc.rejections");
      Ctx.incr t.obs "svc.requests";
      Ctx.event t.obs ~cat:"svc" "svc.request"
        [
          ("i", Events.Int i);
          ("id", Events.Str r.id);
          ("served", Events.Str (served_to_string r.served));
          ( "rung",
            Events.Str
              (match r.served with
              | Repair_hit rung -> Mapper.rung_to_string rung
              | _ -> "") );
          ("ii", Events.Int (match r.ii with Some ii -> ii | None -> -1));
        ])
    out;
  Ctx.incr t.obs "svc.batches";
  Ctx.event t.obs ~cat:"svc" "svc.batch"
    [
      ("requests", Events.Int n);
      ("cold", Events.Int (Array.length pendings));
      ("entries", Events.Int (Cache.size t.cache));
    ];
  Array.to_list out

(* JSONL wire codec for the mapping daemon.

   The reader rides on [Ocgra_obs.Json] (the same recursive-descent
   parser the bench regression gate uses); the writer is the tree's
   usual hand-rolled Buffer style via [Export.buf_add_json_string].
   Every parse failure is a value, not an exception: the daemon owes a
   per-line error *response* on malformed input, never a crash. *)

module Dfg = Ocgra_dfg.Dfg
module Op = Ocgra_dfg.Op
module Fault = Ocgra_arch.Fault
module Cgra = Ocgra_arch.Cgra
module Topology = Ocgra_arch.Topology
module Mapping = Ocgra_core.Mapping
module Mapper = Ocgra_core.Mapper
module Json = Ocgra_obs.Json
module Export = Ocgra_obs.Export

type payload = Kernel of string | Inline of Dfg.t

type req = {
  id : string;
  payload : payload;
  rows : int;
  cols : int;
  topology : string;
  hetero : bool;
  rf : int option;
  faults : Fault.t list;
  n_faults : int;
  fault_seed : int;
  spatial : bool;
  max_ii : int option;
}

let default_req =
  {
    id = "";
    payload = Kernel "";
    rows = 4;
    cols = 4;
    topology = "mesh";
    hetero = false;
    rf = None;
    faults = [];
    n_faults = 0;
    fault_seed = 1;
    spatial = false;
    max_ii = None;
  }

(* ---------- op codec: reuses [Op.to_string]'s vocabulary ---------- *)

let binops =
  [ Op.Add; Sub; Mul; Div; Rem; And; Or; Xor; Shl; Shr; Min; Max; Lt; Le; Eq; Ne ]

let op_of_code s =
  match String.index_opt s ' ' with
  | Some i -> (
      let head = String.sub s 0 i in
      let arg = String.sub s (i + 1) (String.length s - i - 1) in
      match head with
      | "const" -> (
          match int_of_string_opt arg with
          | Some c -> Ok (Op.Const c)
          | None -> Error (Printf.sprintf "bad const immediate %S" arg))
      | "in" -> Ok (Op.Input arg)
      | "out" -> Ok (Op.Output arg)
      | "load" -> Ok (Op.Load arg)
      | "store" -> Ok (Op.Store arg)
      | _ -> Error (Printf.sprintf "unknown op %S" s))
  | None -> (
      match s with
      | "not" -> Ok Op.Not
      | "neg" -> Ok Op.Neg
      | "select" -> Ok Op.Select
      | "route" -> Ok Op.Route
      | "vote" -> Ok Op.Vote
      | "cmp" -> Ok Op.Cmp
      | "nop" -> Ok Op.Nop
      | _ -> (
          match List.find_opt (fun b -> Op.binop_to_string b = s) binops with
          | Some b -> Ok (Op.Binop b)
          | None -> Error (Printf.sprintf "unknown op %S" s)))

(* ---------- writers ---------- *)

let buf_str = Export.buf_add_json_string

let buf_dfg b d =
  Buffer.add_string b "{\"nodes\":[";
  for i = 0 to Dfg.node_count d - 1 do
    if i > 0 then Buffer.add_char b ',';
    Buffer.add_string b "{\"op\":";
    buf_str b (Op.to_string (Dfg.op d i));
    let name = Dfg.name d i in
    if name <> "" then begin
      Buffer.add_string b ",\"name\":";
      buf_str b name
    end;
    Buffer.add_char b '}'
  done;
  Buffer.add_string b "],\"edges\":[";
  List.iteri
    (fun i (e : Dfg.edge) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "[%d,%d,%d,%d]" e.Dfg.src e.Dfg.dst e.Dfg.port e.Dfg.dist))
    (Dfg.edges d);
  Buffer.add_string b "]}"

let buf_fault b = function
  | Fault.Pe_down pe -> Buffer.add_string b (Printf.sprintf "[\"pe\",%d]" pe)
  | Fault.Link_down (s, d) -> Buffer.add_string b (Printf.sprintf "[\"link\",%d,%d]" s d)
  | Fault.Fu_slot_dead (pe, slot) ->
      Buffer.add_string b (Printf.sprintf "[\"slot\",%d,%d]" pe slot)
  | Fault.Rf_reduced (pe, lost) ->
      Buffer.add_string b (Printf.sprintf "[\"rf\",%d,%d]" pe lost)

let req_to_json r =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\"id\":";
  buf_str b r.id;
  (match r.payload with
  | Kernel name ->
      Buffer.add_string b ",\"kernel\":";
      buf_str b name
  | Inline d ->
      Buffer.add_string b ",\"dfg\":";
      buf_dfg b d);
  Buffer.add_string b (Printf.sprintf ",\"rows\":%d,\"cols\":%d" r.rows r.cols);
  if r.topology <> "mesh" then begin
    Buffer.add_string b ",\"topology\":";
    buf_str b r.topology
  end;
  if r.hetero then Buffer.add_string b ",\"hetero\":true";
  (match r.rf with
  | Some rf -> Buffer.add_string b (Printf.sprintf ",\"rf\":%d" rf)
  | None -> ());
  if r.faults <> [] then begin
    Buffer.add_string b ",\"faults\":[";
    List.iteri
      (fun i f ->
        if i > 0 then Buffer.add_char b ',';
        buf_fault b f)
      (Fault.canonical r.faults);
    Buffer.add_char b ']'
  end;
  if r.n_faults > 0 then
    Buffer.add_string b
      (Printf.sprintf ",\"n_faults\":%d,\"fault_seed\":%d" r.n_faults r.fault_seed);
  if r.spatial then Buffer.add_string b ",\"spatial\":true";
  (match r.max_ii with
  | Some ii -> Buffer.add_string b (Printf.sprintf ",\"max_ii\":%d" ii)
  | None -> ());
  Buffer.add_char b '}';
  Buffer.contents b

(* ---------- readers ---------- *)

let ( let* ) = Result.bind

let field_int obj name default =
  match Json.member name obj with
  | None -> Ok default
  | Some v -> (
      match Json.to_int v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "field %S: expected an integer" name))

let field_bool obj name default =
  match Json.member name obj with
  | None -> Ok default
  | Some v -> (
      match Json.to_bool v with
      | Some b -> Ok b
      | None -> Error (Printf.sprintf "field %S: expected a bool" name))

let field_str_opt obj name =
  match Json.member name obj with
  | None -> Ok None
  | Some v -> (
      match Json.to_string v with
      | Some s -> Ok (Some s)
      | None -> Error (Printf.sprintf "field %S: expected a string" name))

let int_list name v =
  match Json.to_list v with
  | None -> Error (Printf.sprintf "%s: expected an array" name)
  | Some xs ->
      List.fold_left
        (fun acc x ->
          let* acc = acc in
          match Json.to_int x with
          | Some i -> Ok (i :: acc)
          | None -> Error (Printf.sprintf "%s: expected integers" name))
        (Ok []) xs
      |> Result.map List.rev

let parse_fault v =
  match Json.to_list v with
  | Some (kind :: coords) -> (
      let* kind =
        match Json.to_string kind with
        | Some s -> Ok s
        | None -> Error "fault: kind must be a string"
      in
      let* coords = int_list "fault coordinates" (Json.Arr coords) in
      match (kind, coords) with
      | "pe", [ pe ] -> Ok (Fault.Pe_down pe)
      | "link", [ s; d ] -> Ok (Fault.Link_down (s, d))
      | "slot", [ pe; slot ] -> Ok (Fault.Fu_slot_dead (pe, slot))
      | "rf", [ pe; lost ] -> Ok (Fault.Rf_reduced (pe, lost))
      | k, _ -> Error (Printf.sprintf "fault: unknown kind/arity %S" k))
  | _ -> Error "fault: expected [\"kind\", coords...]"

let parse_dfg v =
  let d = Dfg.create () in
  let* nodes =
    match Json.member "nodes" v with
    | Some n -> (
        match Json.to_list n with
        | Some xs -> Ok xs
        | None -> Error "dfg.nodes: expected an array")
    | None -> Error "dfg: missing nodes"
  in
  let* () =
    List.fold_left
      (fun acc node ->
        let* () = acc in
        let* code =
          match Json.member "op" node with
          | Some (Json.Str s) -> Ok s
          | _ -> Error "dfg node: missing op"
        in
        let* op = op_of_code code in
        let name =
          match Json.member "name" node with Some (Json.Str s) -> s | _ -> ""
        in
        ignore (Dfg.add ~name d op);
        Ok ())
      (Ok ()) nodes
  in
  let* edges =
    match Json.member "edges" v with
    | Some e -> (
        match Json.to_list e with
        | Some xs -> Ok xs
        | None -> Error "dfg.edges: expected an array")
    | None -> Ok []
  in
  let n = Dfg.node_count d in
  let* () =
    List.fold_left
      (fun acc e ->
        let* () = acc in
        let* quad = int_list "dfg edge" e in
        match quad with
        | [ src; dst; port; dist ] ->
            if src < 0 || src >= n || dst < 0 || dst >= n then
              Error (Printf.sprintf "dfg edge %d->%d: node out of range" src dst)
            else begin
              Dfg.add_edge ~dist ~port d ~src ~dst;
              Ok ()
            end
        | _ -> Error "dfg edge: expected [src,dst,port,dist]")
      (Ok ()) edges
  in
  Ok d

let parse_req line =
  let* obj = Json.parse line in
  let* () = match obj with Json.Obj _ -> Ok () | _ -> Error "expected a JSON object" in
  let* id =
    match Json.member "id" obj with
    | Some (Json.Str s) -> Ok s
    | _ -> Error "missing string field \"id\""
  in
  let* payload =
    match (Json.member "kernel" obj, Json.member "dfg" obj) with
    | Some (Json.Str k), None -> Ok (Kernel k)
    | None, Some d ->
        let* d = parse_dfg d in
        Ok (Inline d)
    | Some _, Some _ -> Error "give either \"kernel\" or \"dfg\", not both"
    | _ -> Error "missing payload: \"kernel\" or \"dfg\""
  in
  let* rows = field_int obj "rows" default_req.rows in
  let* cols = field_int obj "cols" default_req.cols in
  let* topology = field_str_opt obj "topology" in
  let topology = Option.value topology ~default:default_req.topology in
  let* hetero = field_bool obj "hetero" default_req.hetero in
  let* rf =
    match Json.member "rf" obj with
    | None -> Ok None
    | Some v -> (
        match Json.to_int v with
        | Some i -> Ok (Some i)
        | None -> Error "field \"rf\": expected an integer")
  in
  let* faults =
    match Json.member "faults" obj with
    | None -> Ok []
    | Some v -> (
        match Json.to_list v with
        | None -> Error "field \"faults\": expected an array"
        | Some xs ->
            List.fold_left
              (fun acc f ->
                let* acc = acc in
                let* f = parse_fault f in
                Ok (f :: acc))
              (Ok []) xs
            |> Result.map List.rev)
  in
  let* n_faults = field_int obj "n_faults" 0 in
  let* fault_seed = field_int obj "fault_seed" default_req.fault_seed in
  let* spatial = field_bool obj "spatial" false in
  let* max_ii =
    match Json.member "max_ii" obj with
    | None -> Ok None
    | Some v -> (
        match Json.to_int v with
        | Some i -> Ok (Some i)
        | None -> Error "field \"max_ii\": expected an integer")
  in
  if rows < 1 || cols < 1 then Error "rows/cols must be >= 1"
  else
    Ok
      {
        id;
        payload;
        rows;
        cols;
        topology;
        hetero;
        rf;
        faults;
        n_faults;
        fault_seed;
        spatial;
        max_ii;
      }

let to_request ~lookup r =
  let* dfg =
    match r.payload with
    | Inline d -> Ok d
    | Kernel name -> lookup name
  in
  let* topology =
    match Topology.of_string r.topology with
    | t -> Ok t
    | exception Invalid_argument m -> Error m
  in
  let cgra =
    if r.hetero then Cgra.adres_like ?rf_size:r.rf ~topology ~rows:r.rows ~cols:r.cols ()
    else Cgra.uniform ?rf_size:r.rf ~topology ~rows:r.rows ~cols:r.cols ()
  in
  let mask =
    r.faults
    @ (if r.n_faults > 0 then Cgra.inject_faults cgra ~seed:r.fault_seed ~n:r.n_faults
       else [])
  in
  let cgra = if mask = [] then cgra else Cgra.with_faults cgra mask in
  Ok { Svc.id = r.id; dfg; cgra; spatial = r.spatial; max_ii = r.max_ii }

(* ---------- responses ---------- *)

let response_to_json (r : Svc.response) =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\"id\":";
  buf_str b r.Svc.id;
  (match r.Svc.served with
  | Svc.Rejected ->
      Buffer.add_string b ",\"status\":\"rejected\"";
      Buffer.add_string b ",\"note\":";
      buf_str b r.Svc.note
  | served ->
      Buffer.add_string b ",\"status\":\"ok\",\"served\":";
      buf_str b (Svc.served_to_string served);
      (match served with
      | Svc.Repair_hit rung ->
          Buffer.add_string b ",\"rung\":";
          buf_str b (Mapper.rung_to_string rung)
      | _ -> ());
      (match r.Svc.mapping with
      | Some m ->
          Buffer.add_string b (Printf.sprintf ",\"ii\":%d" m.Mapping.ii);
          Buffer.add_string b ",\"certified\":true,\"binding\":[";
          Array.iteri
            (fun i (pe, cyc) ->
              if i > 0 then Buffer.add_char b ',';
              Buffer.add_string b (Printf.sprintf "[%d,%d]" pe cyc))
            m.Mapping.binding;
          Buffer.add_char b ']'
      | None -> ());
      Buffer.add_string b ",\"note\":";
      buf_str b r.Svc.note);
  Buffer.add_char b '}';
  Buffer.contents b

let error_to_json ~id msg =
  let b = Buffer.create 128 in
  Buffer.add_string b "{\"id\":";
  buf_str b id;
  Buffer.add_string b ",\"status\":\"error\",\"error\":";
  buf_str b msg;
  Buffer.add_char b '}';
  Buffer.contents b

let salvage_id ~line s =
  let fallback = Printf.sprintf "line-%d" line in
  match Json.parse s with
  | Ok obj -> (
      match Json.member "id" obj with Some (Json.Str id) -> id | _ -> fallback)
  | Error _ -> fallback

(** Deterministic, splittable pseudo-random number generator (splitmix64).

    Every stochastic component of the framework draws from this
    generator, so each experiment is reproducible from one integer
    seed.

    {b Thread-safety contract:} a [t] is a single mutable cell with no
    synchronisation — it is {e not} domain-safe.  Sharing one across
    domains is a data race, and even a benign-looking concurrent draw
    destroys reproducibility: the stream then depends on scheduler
    interleaving.  The discipline for parallel code (enforced by
    [Ocgra_par] consumers, see DESIGN.md):

    - never hand the same [t] to two domains;
    - {e before} the fan-out, either pre-draw whatever the parallel
      section needs (per-trial seeds, drawn in task order), or give
      each domain its own generator via {!split};
    - the parent's stream advances the same number of steps regardless
      of worker count, so results stay bit-identical from 1 to N
      domains. *)

type t

(** [create seed] builds an independent generator. *)
val create : int -> t

(** [split t] advances [t] and returns a statistically independent
    child generator. *)
val split : t -> t

(** [copy t] snapshots the state (both copies then produce the same
    stream). *)
val copy : t -> t

(** Raw 64-bit draw; advances the state. *)
val next64 : t -> int64

(** Non-negative int from the top bits. *)
val bits : t -> int

(** [int t bound] is uniform in \[0, bound). Raises [Invalid_argument]
    on non-positive bounds. *)
val int : t -> int -> int

(** [int_in t lo hi] is uniform in \[lo, hi\] inclusive. *)
val int_in : t -> int -> int -> int

(** [float t bound] is uniform in \[0, bound). *)
val float : t -> float -> float

val bool : t -> bool

(** Uniform element of a non-empty array / list. *)
val choose : t -> 'a array -> 'a

val choose_list : t -> 'a list -> 'a

(** Fisher-Yates; [shuffle] copies, [shuffle_in_place] mutates. *)
val shuffle_in_place : t -> 'a array -> unit

val shuffle : t -> 'a array -> 'a array

(** [sample_indices t n k] draws [k] distinct indices from \[0, n). *)
val sample_indices : t -> int -> int -> int array

(** Standard normal via Box-Muller. *)
val gaussian : t -> float

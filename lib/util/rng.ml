(* Deterministic, splittable pseudo-random number generator.

   All stochastic components of the framework (meta-heuristics, random
   workload generation, randomized restarts) draw from this generator so
   that every experiment is reproducible from a single integer seed.
   The core is splitmix64, which has a trivially splittable state.

   The state is one unsynchronised mutable cell: a [t] must never be
   shared across domains (see the contract in rng.mli) — pre-draw
   seeds or [split] per domain before any fan-out. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

(* splitmix64 step: returns a new 64-bit value and advances the state. *)
let next64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let s = next64 t in
  { state = s }

let copy t = { state = t.state }

(* Non-negative int drawn from the top 62 bits. *)
let bits t = Int64.to_int (Int64.shift_right_logical (next64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits t mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  bound *. x /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (next64 t) 1L = 1L

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let choose_list t l =
  match l with
  | [] -> invalid_arg "Rng.choose_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle_in_place t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let shuffle t arr =
  let a = Array.copy arr in
  shuffle_in_place t a;
  a

(* Sample [k] distinct indices from [0, n). *)
let sample_indices t n k =
  if k > n then invalid_arg "Rng.sample_indices: k > n";
  let a = Array.init n (fun i -> i) in
  shuffle_in_place t a;
  Array.sub a 0 k

let gaussian t =
  (* Box-Muller; rejects the degenerate u1 = 0 draw. *)
  let rec draw () =
    let u1 = float t 1.0 in
    if u1 <= 1e-300 then draw () else u1
  in
  let u1 = draw () and u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

(* Cardinality encodings over solver literals.

   The SAT mapper needs exactly-one (each DFG node gets one slot) and
   at-most-one / at-most-k (each slot runs at most one op; register
   files hold at most rf_size values), encoded with the pairwise and
   sequential-counter schemes.

   Every helper takes an optional activation [?guard] literal: each
   emitted clause is weakened to (not guard) \/ clause, so the whole
   constraint group only binds while [guard] is assumed true.  The
   incremental II sweep uses this to keep the per-II constraints of
   every candidate II in one solver instance, activating exactly one
   group per solve and retiring refuted groups with a unit
   [not guard]. *)

(* Guarded clause emission: the single choke point every encoding goes
   through, so a guard covers auxiliary-variable clauses too. *)
let add ?guard s lits =
  match guard with
  | None -> Solver.add_clause s lits
  | Some g -> Solver.add_clause s (Solver.negate g :: lits)

(* Pairwise at-most-one: quadratic, best for small groups. *)
let at_most_one_pairwise ?guard s lits =
  let arr = Array.of_list lits in
  let n = Array.length arr in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      add ?guard s [ Solver.negate arr.(i); Solver.negate arr.(j) ]
    done
  done

(* Sequential at-most-one (Sinz): linear, auxiliary variables. *)
let at_most_one_sequential ?guard s lits =
  match lits with
  | [] | [ _ ] -> ()
  | _ ->
      let arr = Array.of_list lits in
      let n = Array.length arr in
      let aux = Array.init (n - 1) (fun _ -> Solver.new_var s) in
      (* s_i means "one of arr.(0..i) is true" *)
      add ?guard s [ Solver.negate arr.(0); Solver.pos aux.(0) ];
      for i = 1 to n - 2 do
        add ?guard s [ Solver.negate arr.(i); Solver.pos aux.(i) ];
        add ?guard s [ Solver.neg aux.(i - 1); Solver.pos aux.(i) ];
        add ?guard s [ Solver.negate arr.(i); Solver.neg aux.(i - 1) ]
      done;
      add ?guard s [ Solver.negate arr.(n - 1); Solver.neg aux.(n - 2) ]

let at_most_one ?(threshold = 6) ?guard s lits =
  if List.length lits <= threshold then at_most_one_pairwise ?guard s lits
  else at_most_one_sequential ?guard s lits

let at_least_one ?guard s lits = add ?guard s lits

let exactly_one ?threshold ?guard s lits =
  at_least_one ?guard s lits;
  at_most_one ?threshold ?guard s lits

(* Sequential-counter at-most-k. *)
let at_most_k ?guard s lits k =
  let arr = Array.of_list lits in
  let n = Array.length arr in
  if k < 0 then
    (* "at most -1 true" has no model even over zero literals: the
       constraint itself is contradictory, so emit the empty clause
       (guarded: a unit against the guard) rather than merely forcing
       every listed literal false as k = 0 would *)
    add ?guard s []
  else if k = 0 then List.iter (fun l -> add ?guard s [ Solver.negate l ]) lits
  else if n > k then begin
    (* r.(i).(j): at least j+1 of arr.(0..i) are true *)
    let r = Array.init n (fun _ -> Array.init k (fun _ -> Solver.new_var s)) in
    add ?guard s [ Solver.negate arr.(0); Solver.pos r.(0).(0) ];
    for j = 1 to k - 1 do
      add ?guard s [ Solver.neg r.(0).(j) ]
    done;
    for i = 1 to n - 1 do
      add ?guard s [ Solver.negate arr.(i); Solver.pos r.(i).(0) ];
      add ?guard s [ Solver.neg r.(i - 1).(0); Solver.pos r.(i).(0) ];
      for j = 1 to k - 1 do
        add ?guard s
          [ Solver.negate arr.(i); Solver.neg r.(i - 1).(j - 1); Solver.pos r.(i).(j) ];
        add ?guard s [ Solver.neg r.(i - 1).(j); Solver.pos r.(i).(j) ]
      done;
      add ?guard s [ Solver.negate arr.(i); Solver.neg r.(i - 1).(k - 1) ]
    done
  end

(* Implication helper: a -> (b1 or b2 or ...) *)
let implies ?guard s a bs = add ?guard s (Solver.negate a :: bs)

(** CDCL SAT solver in the MiniSat lineage: two-watched-literal
    propagation, VSIDS decision heap, first-UIP learning with
    backjumping, phase saving, Luby restarts — plus the incremental
    machinery the modulo-scheduling II sweep leans on: solving under
    assumption literals with a failed-assumption core, LBD-guided
    learnt-DB reduction and root-level simplification, so one solver
    instance can be reused across many related queries while keeping
    its learnt clauses, variable activities and saved phases.

    Literals: variable [v] (1-based) gives literals [pos v] and
    [neg v]; [negate] flips polarity. *)

type t
type lit = int

val pos : int -> lit
val neg : int -> lit
val negate : lit -> lit
val var_of : lit -> int
val is_pos : lit -> bool
val lit_to_string : lit -> string

type result = Sat | Unsat | Unknown

(** [reduce_base] is the initial learnt-clause budget before the first
    [reduce_db] pass (default 4000; the budget then grows by half at
    every reduction).  Tests use a tiny budget to exercise reduction
    cheaply. *)
val create : ?reduce_base:int -> unit -> t

val n_vars : t -> int

(** Fresh variable (1-based index). *)
val new_var : t -> int

val new_vars : t -> int -> int list

(** Adding a clause backtracks to the root level first; empty or
    immediately-contradicted clauses make the instance permanently
    UNSAT. Raises [Invalid_argument] on unknown variables. *)
val add_clause : t -> lit list -> unit

(** [solve ?max_conflicts ?should_stop ?assumptions t]: [Unknown] when
    the conflict budget runs out or [should_stop] (polled at amortised
    checkpoints, e.g. a wall-clock deadline) returns true.

    Assumptions are established one per decision level before any free
    decision (the decision level is the assumption cursor, so the
    prefix costs O(1) per decision).  UNSAT under assumptions leaves
    the instance usable and records a failed-assumption core
    ({!conflict_assumptions}); UNSAT with an empty core means the
    instance itself is unsatisfiable ({!is_ok} turns false).  After
    [Sat], read the model with {!value}. *)
val solve :
  ?max_conflicts:int -> ?should_stop:(unit -> bool) -> ?assumptions:lit list -> t -> result

(** After an [Unsat] answer under assumptions: a subset of the
    assumption literals whose conjunction is already inconsistent with
    the instance (re-solving under exactly this core is again
    [Unsat]).  Empty when the last [Unsat] was instance-level, and
    after [Sat]/[Unknown]. *)
val conflict_assumptions : t -> lit list

(** False once the instance is unsatisfiable outright (empty clause,
    root-level conflict) — as opposed to UNSAT under assumptions,
    which keeps the instance usable. *)
val is_ok : t -> bool

(** Model value of a variable (meaningful after [Sat]). *)
val value : t -> int -> bool

(** (conflicts, decisions, propagations) since creation. *)
val stats : t -> int * int * int

(** Learnt clauses currently stored (after any reduction). *)
val n_learnts : t -> int

(** [reduce_db] passes run so far. *)
val n_reduces : t -> int

(** Luby restarts taken so far. *)
val n_restarts : t -> int

(** Convergence distributions, tallied once per conflict as plain
    64-cell count arrays (the solver carries no observability
    dependency; mapper wrappers flush deltas into histograms).
    [dist_lbd] is indexed by the learnt clause's exact LBD (tail
    bucket at 63); [dist_trail] and [dist_ppd] by [floor(log2 v)] of
    the trail depth at conflict and of propagations-per-decision
    since the previous conflict. *)
val dist_lbd : t -> int array

val dist_trail : t -> int array
val dist_ppd : t -> int array

(** Internal-consistency audit for tests: reason indices must point at
    live clauses asserting their variable, and every stored clause
    must be watched by its first two literals.  Returns human-readable
    violations; [[]] means healthy. *)
val self_check : t -> string list

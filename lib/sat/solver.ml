(* CDCL SAT solver.

   A conflict-driven clause-learning solver in the MiniSat lineage:
   two-watched-literal propagation, VSIDS decision heap, first-UIP
   conflict analysis with backjumping, phase saving and Luby restarts.
   The SAT-based mapper ([17] in the survey) and the difference-logic
   SMT layer are built on this solver.

   The solver is *incremental*: clauses can be added between [solve]
   calls, and [solve ~assumptions] answers relative to a conjunction of
   assumption literals without damaging the instance.  Assumptions are
   decided first, one per decision level, so the decision level itself
   is the assumption cursor — establishing them costs O(1) per decision
   instead of a scan of the assumption list.  When an assumption is
   contradicted, [analyze_final] walks the implication graph back to
   the assumption decisions and records a *failed-assumption core*
   (retrievable with [conflict_assumptions]): a subset of the
   assumptions that is already inconsistent with the instance.  An
   empty core after Unsat means the instance itself is unsatisfiable.

   Learnt-clause management: every learnt clause carries its LBD
   ("literal blocks distance" — the number of distinct decision levels
   among its literals at analysis time).  At restart boundaries the
   solver periodically runs [reduce_db], dropping high-LBD, low-activity
   learnt clauses while always keeping glue clauses (LBD <= 2) and
   locked clauses (those acting as the reason of an assigned literal),
   and [simplify], which deletes root-satisfied clauses — including
   clauses retired by a fixed activation literal — and strips
   root-falsified literals from the rest.  Both rebuild the watch lists
   over a compacted clause store, so retired incremental clause groups
   actually release their memory.

   Literal encoding: variable v (1-based) gives literals 2v (positive)
   and 2v+1 (negative); [negate l = l lxor 1]. *)

type lit = int

let pos v = 2 * v
let neg v = (2 * v) + 1
let negate l = l lxor 1
let var_of l = l lsr 1
let is_pos l = l land 1 = 0

let lit_to_string l = Printf.sprintf "%s%d" (if is_pos l then "" else "-") (var_of l)

type result = Sat | Unsat | Unknown

(* Values: 0 = unassigned, 1 = true, 2 = false (for the variable). *)
let v_undef = 0
let v_true = 1
let v_false = 2

type clause = {
  mutable lits : int array;
  mutable activity : float;
  mutable lbd : int; (* distinct decision levels at analysis time; 0 for problem clauses *)
  learnt : bool;
}

type t = {
  mutable nvars : int;
  mutable clauses : clause array; (* growable store *)
  mutable n_clauses : int;
  mutable n_learnts : int; (* learnt clauses currently in the store *)
  mutable watches : int list array; (* literal -> clause indices watching it *)
  mutable assign : int array; (* var -> v_undef / v_true / v_false *)
  mutable level : int array; (* var -> decision level *)
  mutable reason : int array; (* var -> clause index or -1 *)
  mutable activity : float array; (* var -> VSIDS score *)
  mutable phase : bool array; (* var -> saved phase *)
  mutable trail : int array; (* assigned literals in order *)
  mutable trail_size : int;
  mutable trail_lim : int array; (* decision level -> trail position *)
  mutable n_levels : int;
  mutable qhead : int;
  (* decision heap (max-heap on activity) *)
  mutable heap : int array;
  mutable heap_size : int;
  mutable heap_pos : int array; (* var -> position in heap, -1 if absent *)
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable ok : bool; (* false once trivially UNSAT *)
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  (* persistent first-UIP scratch: cleared via [to_clear] after each
     analysis instead of reallocating an O(nvars) array per conflict *)
  mutable seen : bool array;
  mutable conflict_assumps : lit list; (* failed-assumption core of the last Unsat *)
  (* learnt-DB reduction schedule *)
  mutable max_learnts : int;
  mutable reduces : int;
  mutable simp_assigns : int; (* root trail size at the last simplify *)
  (* convergence introspection, tallied per conflict; the solver keeps
     plain int arrays (no observability dependency down here) and the
     mapper wrappers flush deltas into Obs histograms *)
  mutable restarts : int;
  lbd_counts : int array; (* index = learnt-clause LBD, tail bucket at 63 *)
  trail_counts : int array; (* index = floor(log2 trail_size) at conflict *)
  ppd_counts : int array; (* index = floor(log2 propagations-per-decision) *)
  mutable ppd_props : int; (* propagation/decision marks of the last conflict *)
  mutable ppd_decs : int;
}

let create ?(reduce_base = 4000) () =
  {
    nvars = 0;
    clauses = Array.make 16 { lits = [||]; activity = 0.0; lbd = 0; learnt = false };
    n_clauses = 0;
    n_learnts = 0;
    watches = Array.make 16 [];
    assign = Array.make 16 v_undef;
    level = Array.make 16 0;
    reason = Array.make 16 (-1);
    activity = Array.make 16 0.0;
    phase = Array.make 16 false;
    trail = Array.make 16 0;
    trail_size = 0;
    trail_lim = Array.make 16 0;
    n_levels = 0;
    qhead = 0;
    heap = Array.make 16 0;
    heap_size = 0;
    heap_pos = Array.make 16 (-1);
    var_inc = 1.0;
    cla_inc = 1.0;
    ok = true;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    seen = Array.make 16 false;
    conflict_assumps = [];
    max_learnts = max 16 reduce_base;
    reduces = 0;
    simp_assigns = -1;
    restarts = 0;
    lbd_counts = Array.make 64 0;
    trail_counts = Array.make 64 0;
    ppd_counts = Array.make 64 0;
    ppd_props = 0;
    ppd_decs = 0;
  }

let n_vars t = t.nvars
let is_ok t = t.ok
let conflict_assumptions t = t.conflict_assumps

(* ---------- dynamic arrays ---------- *)

let grow_int_array a n default =
  let a' = Array.make n default in
  Array.blit a 0 a' 0 (Array.length a);
  a'

let grow_float_array a n =
  let a' = Array.make n 0.0 in
  Array.blit a 0 a' 0 (Array.length a);
  a'

let grow_bool_array a n =
  let a' = Array.make n false in
  Array.blit a 0 a' 0 (Array.length a);
  a'

(* ---------- decision heap (max-heap on var activity) ---------- *)

let heap_less t a b = t.activity.(a) > t.activity.(b)

let heap_swap t i j =
  let a = t.heap.(i) and b = t.heap.(j) in
  t.heap.(i) <- b;
  t.heap.(j) <- a;
  t.heap_pos.(b) <- i;
  t.heap_pos.(a) <- j

let rec heap_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if heap_less t t.heap.(i) t.heap.(p) then begin
      heap_swap t i p;
      heap_up t p
    end
  end

let rec heap_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < t.heap_size && heap_less t t.heap.(l) t.heap.(!best) then best := l;
  if r < t.heap_size && heap_less t t.heap.(r) t.heap.(!best) then best := r;
  if !best <> i then begin
    heap_swap t i !best;
    heap_down t !best
  end

let heap_insert t v =
  if t.heap_pos.(v) < 0 then begin
    if t.heap_size = Array.length t.heap then t.heap <- grow_int_array t.heap (2 * t.heap_size) 0;
    t.heap.(t.heap_size) <- v;
    t.heap_pos.(v) <- t.heap_size;
    t.heap_size <- t.heap_size + 1;
    heap_up t (t.heap_size - 1)
  end

let heap_pop t =
  if t.heap_size = 0 then -1
  else begin
    let v = t.heap.(0) in
    t.heap_size <- t.heap_size - 1;
    t.heap_pos.(v) <- -1;
    if t.heap_size > 0 then begin
      t.heap.(0) <- t.heap.(t.heap_size);
      t.heap_pos.(t.heap.(0)) <- 0;
      heap_down t 0
    end;
    v
  end

let heap_update t v = if t.heap_pos.(v) >= 0 then heap_up t t.heap_pos.(v)

(* ---------- variables ---------- *)

let new_var t =
  let v = t.nvars + 1 in
  t.nvars <- v;
  let needed_vars = v + 1 in
  if needed_vars > Array.length t.assign then begin
    let n = max (2 * Array.length t.assign) needed_vars in
    t.assign <- grow_int_array t.assign n v_undef;
    t.level <- grow_int_array t.level n 0;
    t.reason <- grow_int_array t.reason n (-1);
    t.activity <- grow_float_array t.activity n;
    t.phase <- grow_bool_array t.phase n;
    t.heap_pos <- grow_int_array t.heap_pos n (-1);
    t.trail <- grow_int_array t.trail n 0;
    t.seen <- grow_bool_array t.seen n
  end;
  let needed_lits = (2 * v) + 2 in
  if needed_lits > Array.length t.watches then begin
    let n = max (2 * Array.length t.watches) needed_lits in
    let w = Array.make n [] in
    Array.blit t.watches 0 w 0 (Array.length t.watches);
    t.watches <- w
  end;
  t.assign.(v) <- v_undef;
  t.heap_pos.(v) <- -1;
  heap_insert t v;
  v

let new_vars t k = List.init k (fun _ -> new_var t)

(* literal value: v_true/v_false/v_undef *)
let lit_value t l =
  let a = t.assign.(var_of l) in
  if a = v_undef then v_undef else if is_pos l then a else 3 - a

let value t v =
  if v <= 0 || v > t.nvars then invalid_arg "Sat.value: bad variable";
  t.assign.(v) = v_true

(* ---------- clause store ---------- *)

let push_clause t c =
  if t.n_clauses = Array.length t.clauses then begin
    let bigger = Array.make (2 * t.n_clauses) c in
    Array.blit t.clauses 0 bigger 0 t.n_clauses;
    t.clauses <- bigger
  end;
  t.clauses.(t.n_clauses) <- c;
  t.n_clauses <- t.n_clauses + 1;
  if c.learnt then t.n_learnts <- t.n_learnts + 1;
  t.n_clauses - 1

let watch t l ci = t.watches.(l) <- ci :: t.watches.(l)

(* ---------- assignment / trail ---------- *)

let decision_level t = t.n_levels

let enqueue t l reason =
  let v = var_of l in
  t.assign.(v) <- (if is_pos l then v_true else v_false);
  t.level.(v) <- decision_level t;
  t.reason.(v) <- reason;
  t.phase.(v) <- is_pos l;
  t.trail.(t.trail_size) <- l;
  t.trail_size <- t.trail_size + 1

let new_decision_level t =
  if t.n_levels = Array.length t.trail_lim then
    t.trail_lim <- grow_int_array t.trail_lim (2 * t.n_levels) 0;
  t.trail_lim.(t.n_levels) <- t.trail_size;
  t.n_levels <- t.n_levels + 1

let cancel_until t lvl =
  if decision_level t > lvl then begin
    let bound = t.trail_lim.(lvl) in
    for i = t.trail_size - 1 downto bound do
      let v = var_of t.trail.(i) in
      t.assign.(v) <- v_undef;
      t.reason.(v) <- -1;
      heap_insert t v
    done;
    t.trail_size <- bound;
    t.qhead <- bound;
    t.n_levels <- lvl
  end

(* ---------- propagation ---------- *)

(* Returns conflicting clause index, or -1. *)
let propagate t =
  let conflict = ref (-1) in
  while !conflict < 0 && t.qhead < t.trail_size do
    let p = t.trail.(t.qhead) in
    t.qhead <- t.qhead + 1;
    t.propagations <- t.propagations + 1;
    let falsified = negate p in
    let ws = t.watches.(falsified) in
    t.watches.(falsified) <- [];
    let rec process = function
      | [] -> ()
      | ci :: rest ->
          if !conflict >= 0 then
            (* conflict found: keep remaining watches untouched *)
            t.watches.(falsified) <- ci :: rest @ t.watches.(falsified)
          else begin
            let c = t.clauses.(ci) in
            let lits = c.lits in
            (* ensure falsified literal is at position 1 *)
            if lits.(0) = falsified then begin
              lits.(0) <- lits.(1);
              lits.(1) <- falsified
            end;
            if lit_value t lits.(0) = v_true then begin
              (* clause already satisfied: keep watching *)
              t.watches.(falsified) <- ci :: t.watches.(falsified);
              process rest
            end
            else begin
              (* find a new literal to watch *)
              let n = Array.length lits in
              let rec find i = if i >= n then -1 else if lit_value t lits.(i) <> v_false then i else find (i + 1) in
              let k = find 2 in
              if k >= 0 then begin
                lits.(1) <- lits.(k);
                lits.(k) <- falsified;
                watch t lits.(1) ci;
                process rest
              end
              else if lit_value t lits.(0) = v_undef then begin
                (* unit clause *)
                t.watches.(falsified) <- ci :: t.watches.(falsified);
                enqueue t lits.(0) ci;
                process rest
              end
              else begin
                (* conflict *)
                t.watches.(falsified) <- ci :: t.watches.(falsified);
                conflict := ci;
                process rest
              end
            end
          end
    in
    process ws
  done;
  !conflict

(* ---------- activity ---------- *)

let var_decay = 0.95
let cla_decay = 0.999

let bump_var t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then begin
    for i = 1 to t.nvars do
      t.activity.(i) <- t.activity.(i) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end;
  heap_update t v

(* Clause activities need the same rescale guard as variables:
   [cla_inc] grows by 1/cla_decay every conflict, so an unguarded sum
   reaches infinity (then NaN on further arithmetic) on long solves,
   which would scramble the activity tie-break of [reduce_db]. *)
let bump_clause t (c : clause) =
  c.activity <- c.activity +. t.cla_inc;
  if c.activity > 1e20 then begin
    for i = 0 to t.n_clauses - 1 do
      let c = t.clauses.(i) in
      if c.learnt then c.activity <- c.activity *. 1e-20
    done;
    t.cla_inc <- t.cla_inc *. 1e-20
  end

let decay_activities t =
  t.var_inc <- t.var_inc /. var_decay;
  t.cla_inc <- t.cla_inc /. cla_decay

(* ---------- conflict analysis (first UIP) ---------- *)

(* Returns (learnt clause, backjump level, lbd).  The [seen] scratch is
   persistent; every var marked here is unmarked before returning. *)
let analyze t confl =
  let learnt = ref [] in
  let seen = t.seen in
  let to_clear = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  let confl = ref confl in
  let index = ref (t.trail_size - 1) in
  let backtrack_level = ref 0 in
  let continue_loop = ref true in
  while !continue_loop do
    let c = t.clauses.(!confl) in
    if c.learnt then bump_clause t c;
    let start = if !p = -1 then 0 else 1 in
    for i = start to Array.length c.lits - 1 do
      let q = c.lits.(i) in
      let v = var_of q in
      if (not seen.(v)) && t.level.(v) > 0 then begin
        seen.(v) <- true;
        to_clear := v :: !to_clear;
        bump_var t v;
        if t.level.(v) >= decision_level t then incr counter
        else begin
          learnt := q :: !learnt;
          backtrack_level := max !backtrack_level t.level.(v)
        end
      end
    done;
    (* pick next literal to look at from the trail *)
    let rec skip i = if seen.(var_of t.trail.(i)) then i else skip (i - 1) in
    index := skip !index;
    let pl = t.trail.(!index) in
    p := pl;
    decr index;
    decr counter;
    seen.(var_of pl) <- false;
    if !counter > 0 then begin
      let r = t.reason.(var_of pl) in
      (* a seen literal above level 0 on the trail inside the current
         level always has a reason unless it is the decision; the
         decision is reached exactly when counter = 0 *)
      confl := r
    end
    else continue_loop := false
  done;
  let learnt_lits = Array.of_list (negate !p :: !learnt) in
  (* LBD: distinct decision levels among the learnt literals.  The
     asserting literal sits at the (current) conflict level; the rest
     keep their levels across the backjump. *)
  let lbd =
    List.length
      (List.sort_uniq compare
         (decision_level t :: List.map (fun q -> t.level.(var_of q)) !learnt))
  in
  List.iter (fun v -> seen.(v) <- false) !to_clear;
  (learnt_lits, !backtrack_level, lbd)

(* Failed-assumption core: called when assumption [a] is found false
   under the current (all-assumption) decision prefix.  Walks the
   implication graph from ~a back through reasons; every assumption
   decision reached joins the core.  The resulting set of assumption
   literals is inconsistent with the instance on its own. *)
let analyze_final t a =
  if decision_level t = 0 then [ a ]
  else begin
    let seen = t.seen in
    let core = ref [ a ] in
    let to_clear = ref [ var_of a ] in
    seen.(var_of a) <- true;
    let bottom = t.trail_lim.(0) in
    for i = t.trail_size - 1 downto bottom do
      let l = t.trail.(i) in
      let v = var_of l in
      if seen.(v) then
        if t.reason.(v) < 0 then begin
          (* a decision: inside the assumption prefix every decision is
             an assumption literal, enqueued verbatim *)
          if t.level.(v) > 0 && l <> a then core := l :: !core
        end
        else begin
          let c = t.clauses.(t.reason.(v)) in
          Array.iter
            (fun q ->
              let vq = var_of q in
              if vq <> v && (not seen.(vq)) && t.level.(vq) > 0 then begin
                seen.(vq) <- true;
                to_clear := vq :: !to_clear
              end)
            c.lits
        end
    done;
    List.iter (fun v -> seen.(v) <- false) !to_clear;
    !core
  end

(* ---------- clause addition ---------- *)

let add_clause t lits =
  if t.ok then begin
    (* clauses are added at the root level; drop any leftover
       assignment trail from a previous solve call *)
    cancel_until t 0;
    (* simplify: drop duplicates and false lits at level 0; detect taut *)
    let lits = List.sort_uniq compare lits in
    let taut = List.exists (fun l -> List.mem (negate l) lits) lits in
    if not taut then begin
      let lits =
        List.filter
          (fun l ->
            List.iter (fun l -> if var_of l > t.nvars || var_of l < 1 then invalid_arg "Sat.add_clause: unknown variable") [ l ];
            not (lit_value t l = v_false && t.level.(var_of l) = 0))
          lits
      in
      let sat_already =
        List.exists (fun l -> lit_value t l = v_true && t.level.(var_of l) = 0) lits
      in
      if not sat_already then
        match lits with
        | [] -> t.ok <- false
        | [ l ] ->
            if lit_value t l = v_undef then begin
              enqueue t l (-1);
              if propagate t >= 0 then t.ok <- false
            end
            else if lit_value t l = v_false then t.ok <- false
        | _ ->
            let arr = Array.of_list lits in
            let ci = push_clause t { lits = arr; activity = 0.0; lbd = 0; learnt = false } in
            watch t arr.(0) ci;
            watch t arr.(1) ci
    end
  end

let add_learnt t lits lbd =
  match Array.length lits with
  | 1 ->
      enqueue t lits.(0) (-1)
  | _ ->
      (* position a literal of the backtrack level at index 1 *)
      let max_i = ref 1 in
      for i = 2 to Array.length lits - 1 do
        if t.level.(var_of lits.(i)) > t.level.(var_of lits.(!max_i)) then max_i := i
      done;
      let tmp = lits.(1) in
      lits.(1) <- lits.(!max_i);
      lits.(!max_i) <- tmp;
      let ci = push_clause t { lits; activity = t.cla_inc; lbd; learnt = true } in
      watch t lits.(0) ci;
      watch t lits.(1) ci;
      enqueue t lits.(0) ci

(* ---------- clause-DB maintenance (root level only) ---------- *)

(* Both entry points require decision level 0 with propagation
   complete; both compact the clause store and rebuild the watch
   lists, remapping reason indices through the compaction map. *)

let compact t keep =
  let map = Array.make (max 1 t.n_clauses) (-1) in
  let j = ref 0 in
  let learnts = ref 0 in
  for i = 0 to t.n_clauses - 1 do
    if keep.(i) then begin
      map.(i) <- !j;
      t.clauses.(!j) <- t.clauses.(i);
      if t.clauses.(!j).learnt then incr learnts;
      incr j
    end
  done;
  t.n_clauses <- !j;
  t.n_learnts <- !learnts;
  for v = 1 to t.nvars do
    let r = t.reason.(v) in
    if r >= 0 then t.reason.(v) <- map.(r)
  done;
  Array.fill t.watches 0 (Array.length t.watches) [];
  for ci = 0 to t.n_clauses - 1 do
    let lits = t.clauses.(ci).lits in
    watch t lits.(0) ci;
    watch t lits.(1) ci
  done

(* A clause is locked while it is the reason of its asserted first
   literal: reduction must never drop it or analysis would chase a
   dangling reason. *)
let locked t ci =
  let c = t.clauses.(ci) in
  Array.length c.lits > 0
  &&
  let v = var_of c.lits.(0) in
  t.assign.(v) <> v_undef && t.reason.(v) = ci

let root_true t l = lit_value t l = v_true && t.level.(var_of l) = 0
let root_false t l = lit_value t l = v_false && t.level.(var_of l) = 0

(* Root-level simplification: delete clauses satisfied at level 0 —
   the mechanism that reclaims clause groups retired by a fixed
   activation literal — and strip root-false literals elsewhere.
   Reasons of root-assigned variables are detached first (conflict
   analysis never crosses level 0), so a root-satisfied reason clause
   can be deleted too. *)
let simplify t =
  if t.ok && decision_level t = 0 && t.qhead = t.trail_size then begin
    for i = 0 to t.trail_size - 1 do
      t.reason.(var_of t.trail.(i)) <- -1
    done;
    let keep = Array.make (max 1 t.n_clauses) true in
    for ci = 0 to t.n_clauses - 1 do
      let c = t.clauses.(ci) in
      if Array.exists (fun l -> root_true t l) c.lits then keep.(ci) <- false
      else if Array.exists (fun l -> root_false t l) c.lits then begin
        let lits = Array.of_list (List.filter (fun l -> not (root_false t l)) (Array.to_list c.lits)) in
        (* propagation being complete at the root rules out 0- and
           1-literal leftovers (they would have conflicted or
           propagated); stay defensive anyway *)
        if Array.length lits >= 2 then c.lits <- lits
        else if Array.length lits = 1 then begin
          keep.(ci) <- false;
          if lit_value t lits.(0) = v_undef then enqueue t lits.(0) (-1)
        end
        else begin
          keep.(ci) <- false;
          t.ok <- false
        end
      end
    done;
    compact t keep;
    if propagate t >= 0 then t.ok <- false;
    t.simp_assigns <- t.trail_size
  end

(* Learnt-DB reduction: drop roughly half of the reducible learnt
   clauses — worst (highest LBD, then lowest activity) first — keeping
   every glue clause (LBD <= 2) and every locked clause. *)
let reduce_db t =
  if t.ok && decision_level t = 0 && t.qhead = t.trail_size then begin
    t.reduces <- t.reduces + 1;
    let reducible = ref [] in
    for ci = 0 to t.n_clauses - 1 do
      let c = t.clauses.(ci) in
      if c.learnt && c.lbd > 2 && not (locked t ci) then reducible := ci :: !reducible
    done;
    let order =
      List.sort
        (fun a b ->
          let ca = t.clauses.(a) and cb = t.clauses.(b) in
          if ca.lbd <> cb.lbd then compare cb.lbd ca.lbd (* higher LBD first *)
          else if ca.activity <> cb.activity then compare ca.activity cb.activity
          else compare a b)
        !reducible
    in
    let n_drop = List.length order / 2 in
    let keep = Array.make (max 1 t.n_clauses) true in
    List.iteri (fun i ci -> if i < n_drop then keep.(ci) <- false) order;
    compact t keep;
    t.max_learnts <- t.max_learnts + (t.max_learnts / 2)
  end

(* Internal-consistency audit for the test suite: every reason index
   must point at a live clause whose first literal is the implied one,
   and every stored clause must be watched by exactly its first two
   literals. *)
let self_check t =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  for v = 1 to t.nvars do
    let r = t.reason.(v) in
    if r >= 0 then
      if r >= t.n_clauses then err "var %d: reason %d out of range" v r
      else begin
        let c = t.clauses.(r) in
        if Array.length c.lits = 0 || var_of c.lits.(0) <> v then
          err "var %d: reason clause %d does not assert it" v r;
        if t.assign.(v) = v_undef then err "var %d: unassigned but has a reason" v
      end
  done;
  for ci = 0 to t.n_clauses - 1 do
    let c = t.clauses.(ci) in
    if Array.length c.lits < 2 then err "clause %d: fewer than 2 literals" ci
    else begin
      let watched_by l = List.mem ci t.watches.(l) in
      if not (watched_by c.lits.(0)) then err "clause %d: lit 0 not watching" ci;
      if not (watched_by c.lits.(1)) then err "clause %d: lit 1 not watching" ci
    end;
    (* the rescale guards must keep every activity finite — inf/nan
       here would poison the reduce_db sort ordering *)
    if not (Float.is_finite c.activity) then err "clause %d: non-finite activity" ci
  done;
  for v = 1 to t.nvars do
    if not (Float.is_finite t.activity.(v)) then err "var %d: non-finite activity" v
  done;
  Array.iteri
    (fun l ws ->
      List.iter
        (fun ci ->
          if ci < 0 || ci >= t.n_clauses then err "watch list %d: clause %d out of range" l ci)
        ws)
    t.watches;
  List.rev !errs

(* ---------- Luby restarts ---------- *)

let luby x =
  (* Luby sequence 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
  let rec find_size size seq = if size < x + 1 then find_size ((2 * size) + 1) (seq + 1) else (size, seq) in
  let rec down x size seq =
    if size - 1 = x then 1 lsl seq
    else begin
      let size = (size - 1) / 2 in
      down (x mod size) size (seq - 1)
    end
  in
  let size, seq = find_size 1 0 in
  down x size seq

(* ---------- convergence tallies ---------- *)

let ilog2 v =
  let k = ref 0 and v = ref v in
  while !v > 1 do
    incr k;
    v := !v lsr 1
  done;
  !k

(* Per-conflict distribution bookkeeping: learnt-clause LBD (exact,
   tail at 63), trail depth and propagations-per-decision since the
   previous conflict (both log2-bucketed).  A handful of array bumps
   per conflict — noise next to the analysis that precedes them. *)
let tally_conflict t lbd =
  let li = if lbd < 63 then lbd else 63 in
  t.lbd_counts.(li) <- t.lbd_counts.(li) + 1;
  let ti = min 63 (ilog2 (max 1 t.trail_size)) in
  t.trail_counts.(ti) <- t.trail_counts.(ti) + 1;
  let dp = t.propagations - t.ppd_props and dd = t.decisions - t.ppd_decs in
  let pi = min 63 (ilog2 (max 1 (dp / max 1 dd))) in
  t.ppd_counts.(pi) <- t.ppd_counts.(pi) + 1;
  t.ppd_props <- t.propagations;
  t.ppd_decs <- t.decisions

(* ---------- main search ---------- *)

let solve ?(max_conflicts = max_int) ?(should_stop = fun () -> false) ?(assumptions = []) t =
  t.conflict_assumps <- [];
  if not t.ok then Unsat
  else begin
    cancel_until t 0;
    if propagate t >= 0 then begin
      t.ok <- false;
      Unsat
    end
    else begin
      let assumps = Array.of_list assumptions in
      Array.iter
        (fun a ->
          if var_of a < 1 || var_of a > t.nvars then
            invalid_arg "Sat.solve: unknown assumption variable")
        assumps;
      if t.trail_size > t.simp_assigns then simplify t;
      if not t.ok then Unsat
      else begin
        let start_conflicts = t.conflicts in
        let result = ref Unknown in
        let finished = ref false in
        let restart_count = ref 0 in
        (* wall-clock polling, amortised: consult [should_stop] every few
           hundred loop iterations so the hook stays off the hot path *)
        let polls = ref 0 in
        let stop_requested = ref false in
        let poll_stop () =
          if not !stop_requested then begin
            incr polls;
            if !polls land 255 = 0 && should_stop () then stop_requested := true
          end;
          !stop_requested
        in
        while not !finished do
          let budget = 100 * luby !restart_count in
          incr restart_count;
          let local_conflicts = ref 0 in
          let restart_now = ref false in
          while not (!finished || !restart_now) do
            let confl = propagate t in
            if confl >= 0 then begin
              t.conflicts <- t.conflicts + 1;
              incr local_conflicts;
              if decision_level t = 0 then begin
                t.ok <- false;
                result := Unsat;
                finished := true
              end
              else begin
                let learnt, back_level, lbd = analyze t confl in
                tally_conflict t lbd;
                cancel_until t back_level;
                add_learnt t learnt lbd;
                decay_activities t
              end
            end
            else if t.conflicts - start_conflicts >= max_conflicts || poll_stop () then begin
              result := Unknown;
              finished := true
            end
            else if !local_conflicts >= budget then restart_now := true
            else begin
              (* assumption cursor: the decision level doubles as the
                 index of the next assumption to establish, so the
                 prefix is maintained in O(1) per decision — no scan of
                 the assumption list *)
              let dl = decision_level t in
              if dl < Array.length assumps then begin
                let a = assumps.(dl) in
                let v = lit_value t a in
                if v = v_true then
                  (* already implied: dedicate an empty level so the
                     cursor stays aligned with the decision level *)
                  new_decision_level t
                else if v = v_false then begin
                  t.conflict_assumps <- analyze_final t a;
                  result := Unsat;
                  finished := true
                end
                else begin
                  new_decision_level t;
                  enqueue t a (-1)
                end
              end
              else begin
                let rec pick () =
                  let v = heap_pop t in
                  if v = -1 then -1 else if t.assign.(v) = v_undef then v else pick ()
                in
                let v = pick () in
                if v = -1 then begin
                  result := Sat;
                  finished := true
                end
                else begin
                  t.decisions <- t.decisions + 1;
                  new_decision_level t;
                  enqueue t (if t.phase.(v) then pos v else neg v) (-1)
                end
              end
            end
          done;
          if !restart_now then begin
            t.restarts <- t.restarts + 1;
            cancel_until t 0;
            if propagate t >= 0 then begin
              t.ok <- false;
              result := Unsat;
              finished := true
            end
            else begin
              if t.trail_size > t.simp_assigns then simplify t;
              if t.n_learnts > t.max_learnts then reduce_db t;
              if not t.ok then begin
                result := Unsat;
                finished := true
              end
            end
          end
        done;
        !result
      end
    end
  end

let stats t = (t.conflicts, t.decisions, t.propagations)
let n_learnts t = t.n_learnts
let n_reduces t = t.reduces
let n_restarts t = t.restarts
let dist_lbd t = Array.copy t.lbd_counts
let dist_trail t = Array.copy t.trail_counts
let dist_ppd t = Array.copy t.ppd_counts

(** Cardinality encodings over solver literals: the SAT mapper's
    exactly-one (each op gets one slot) and at-most-k (RF capacity)
    constraints.

    Every helper accepts an activation [?guard] literal: each emitted
    clause (auxiliary-variable clauses included) is weakened to
    [(not guard) \/ clause], so the constraint group only binds while
    [guard] is assumed true — the retractable per-II clause groups of
    the incremental II sweep. *)

val at_most_one_pairwise : ?guard:Solver.lit -> Solver.t -> Solver.lit list -> unit

(** Sinz sequential encoding (linear, auxiliary variables). *)
val at_most_one_sequential : ?guard:Solver.lit -> Solver.t -> Solver.lit list -> unit

(** Pairwise below [threshold] (default 6), sequential above. *)
val at_most_one : ?threshold:int -> ?guard:Solver.lit -> Solver.t -> Solver.lit list -> unit

val at_least_one : ?guard:Solver.lit -> Solver.t -> Solver.lit list -> unit
val exactly_one : ?threshold:int -> ?guard:Solver.lit -> Solver.t -> Solver.lit list -> unit

(** Sequential-counter encoding.  [k < 0] is unsatisfiable by itself
    (no assignment puts a negative count of literals at true), so it
    adds the empty clause — guarded, a unit against the guard. *)
val at_most_k : ?guard:Solver.lit -> Solver.t -> Solver.lit list -> int -> unit

(** [implies s a bs] adds a -> (b1 or b2 or ...). *)
val implies : ?guard:Solver.lit -> Solver.t -> Solver.lit -> Solver.lit list -> unit

(* Graph algorithm tests: topological sort, SCC, shortest paths,
   matching, cliques, common subgraphs, subgraph isomorphism — each
   checked against brute force on random small graphs. *)

module G = Ocgra_graph.Digraph
module Topo = Ocgra_graph.Topo
module Scc = Ocgra_graph.Scc
module Paths = Ocgra_graph.Paths
module Matching = Ocgra_graph.Matching
module Clique = Ocgra_graph.Clique
module Mcs = Ocgra_graph.Mcs
module Iso = Ocgra_graph.Iso
module Rng = Ocgra_util.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let random_digraph rng ~n ~p =
  let g = G.create () in
  ignore (G.add_nodes g n);
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && Rng.float rng 1.0 < p then G.add_edge g i j
    done
  done;
  g

let random_dag rng ~n ~p =
  let g = G.create () in
  ignore (G.add_nodes g n);
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Rng.float rng 1.0 < p then G.add_edge g i j
    done
  done;
  g

(* ---------- Topo ---------- *)

let qcheck_topo_order_valid =
  QCheck.Test.make ~name:"topological order respects every edge" ~count:200
    QCheck.(pair small_int (int_range 1 20))
    (fun (seed, n) ->
      let g = random_dag (Rng.create seed) ~n ~p:0.3 in
      match Topo.sort g with
      | None -> false
      | Some order ->
          let pos = Array.make n 0 in
          List.iteri (fun i v -> pos.(v) <- i) order;
          List.length order = n
          && G.fold_edges (fun e acc -> acc && pos.(e.G.src) < pos.(e.G.dst)) g true)

let test_topo_detects_cycle () =
  let g = G.create () in
  ignore (G.add_nodes g 3);
  G.add_edge g 0 1;
  G.add_edge g 1 2;
  G.add_edge g 2 0;
  checkb "cycle detected" true (Topo.sort g = None);
  checkb "not a dag" false (Topo.is_dag g)

let test_longest_path () =
  (* diamond with a long arm: 0->1->2->4, 0->3->4 with weights *)
  let g = G.create () in
  ignore (G.add_nodes g 5);
  G.add_edge ~weight:2 g 0 1;
  G.add_edge ~weight:2 g 1 2;
  G.add_edge ~weight:2 g 2 4;
  G.add_edge ~weight:1 g 0 3;
  G.add_edge ~weight:1 g 3 4;
  checki "critical path" 6 (Topo.critical_path g);
  let from_src = Topo.longest_from_sources g in
  checki "node 4 depth" 6 from_src.(4);
  let to_sink = Topo.longest_to_sinks g in
  checki "node 0 height" 6 to_sink.(0)

(* ---------- Scc ---------- *)

let test_scc_known () =
  (* two cycles joined by a bridge plus an isolated node *)
  let g = G.create () in
  ignore (G.add_nodes g 6);
  G.add_edge g 0 1;
  G.add_edge g 1 0;
  G.add_edge g 1 2;
  G.add_edge g 2 3;
  G.add_edge g 3 4;
  G.add_edge g 4 2;
  let comps = Scc.compute g in
  checki "component count" 3 (List.length comps);
  let nontrivial = Scc.nontrivial g in
  checki "nontrivial" 2 (List.length nontrivial)

let qcheck_scc_condensation_is_dag =
  QCheck.Test.make ~name:"SCC condensation is acyclic" ~count:100
    QCheck.(pair small_int (int_range 1 15))
    (fun (seed, n) ->
      let g = random_digraph (Rng.create seed) ~n ~p:0.2 in
      let comps = Scc.compute g in
      let comp_of = Array.make n 0 in
      List.iteri (fun i comp -> List.iter (fun v -> comp_of.(v) <- i) comp) comps;
      let c = G.create () in
      ignore (G.add_nodes c (List.length comps));
      G.iter_edges
        (fun e -> if comp_of.(e.G.src) <> comp_of.(e.G.dst) then G.add_edge c comp_of.(e.G.src) comp_of.(e.G.dst))
        g;
      Topo.is_dag c)

(* ---------- Paths ---------- *)

let floyd_warshall g =
  let n = G.node_count g in
  let d = Array.make_matrix n n Paths.unreachable in
  for i = 0 to n - 1 do
    d.(i).(i) <- 0
  done;
  G.iter_edges (fun e -> if e.G.weight < d.(e.G.src).(e.G.dst) then d.(e.G.src).(e.G.dst) <- e.G.weight) g;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if d.(i).(k) < Paths.unreachable && d.(k).(j) < Paths.unreachable && d.(i).(k) + d.(k).(j) < d.(i).(j)
        then d.(i).(j) <- d.(i).(k) + d.(k).(j)
      done
    done
  done;
  d

let qcheck_dijkstra_vs_floyd =
  QCheck.Test.make ~name:"dijkstra agrees with floyd-warshall" ~count:100
    QCheck.(pair small_int (int_range 1 12))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let g = G.create () in
      ignore (G.add_nodes g n);
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if i <> j && Rng.float rng 1.0 < 0.3 then G.add_edge ~weight:(Rng.int rng 9) g i j
        done
      done;
      let fw = floyd_warshall g in
      List.for_all
        (fun src ->
          let d, _ = Paths.dijkstra g src in
          Array.to_list d = Array.to_list fw.(src))
        (List.init n Fun.id))

let test_dijkstra_path_extraction () =
  let g = G.create () in
  ignore (G.add_nodes g 4);
  G.add_edge ~weight:1 g 0 1;
  G.add_edge ~weight:1 g 1 2;
  G.add_edge ~weight:5 g 0 2;
  G.add_edge ~weight:1 g 2 3;
  let _, prev = Paths.dijkstra g 0 in
  Alcotest.(check (option (list int))) "path" (Some [ 0; 1; 2; 3 ])
    (Paths.extract_path prev ~src:0 ~dst:3)

(* ---------- Matching ---------- *)

let brute_matching n_left n_right pairs =
  (* maximum matching by DFS over subsets (small sizes) *)
  let best = ref 0 in
  let used = Array.make n_right false in
  let rec go l count =
    best := max !best count;
    if l < n_left then begin
      go (l + 1) count;
      List.iter
        (fun (l', r) ->
          if l' = l && not used.(r) then begin
            used.(r) <- true;
            go (l + 1) (count + 1);
            used.(r) <- false
          end)
        pairs
    end
  in
  go 0 0;
  !best

let qcheck_matching_vs_brute =
  QCheck.Test.make ~name:"hopcroft-karp matches brute force" ~count:150
    QCheck.(pair small_int (pair (int_range 1 7) (int_range 1 7)))
    (fun (seed, (nl, nr)) ->
      let rng = Rng.create seed in
      let m = Matching.create ~n_left:nl ~n_right:nr in
      let pairs = ref [] in
      for l = 0 to nl - 1 do
        for r = 0 to nr - 1 do
          if Rng.float rng 1.0 < 0.4 then begin
            Matching.add_pair m l r;
            pairs := (l, r) :: !pairs
          end
        done
      done;
      Matching.max_matching_size m = brute_matching nl nr !pairs)

(* ---------- Clique ---------- *)

let brute_max_clique n edges =
  let adj = Array.make_matrix n n false in
  List.iter
    (fun (i, j) ->
      adj.(i).(j) <- true;
      adj.(j).(i) <- true)
    edges;
  let best = ref 0 in
  for mask = 0 to (1 lsl n) - 1 do
    let members = List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init n Fun.id) in
    let is_clique =
      List.for_all (fun i -> List.for_all (fun j -> i = j || adj.(i).(j)) members) members
    in
    if is_clique then best := max !best (List.length members)
  done;
  !best

let qcheck_clique_vs_brute =
  QCheck.Test.make ~name:"bron-kerbosch matches brute force" ~count:100
    QCheck.(pair small_int (int_range 1 10))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let c = Clique.create n in
      let edges = ref [] in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if Rng.float rng 1.0 < 0.5 then begin
            Clique.add_edge c i j;
            edges := (i, j) :: !edges
          end
        done
      done;
      let clique, proven = Clique.maximum c in
      proven && List.length clique = brute_max_clique n !edges)

(* ---------- Mcs / Iso ---------- *)

let path_graph n =
  let g = G.create () in
  ignore (G.add_nodes g n);
  for i = 0 to n - 2 do
    G.add_edge g i (i + 1)
  done;
  g

let test_mcs_paths () =
  (* common subgraph of a 3-path and a 5-path is the 3-path *)
  let a = path_graph 3 and b = path_graph 5 in
  let pairs, proven = Mcs.solve ~compatible:(fun _ _ -> true) a b in
  checkb "proven" true proven;
  checki "size" 3 (List.length pairs)

let test_iso_path_in_grid () =
  (* a 4-path embeds in a 2x2 grid graph (with both edge directions) *)
  let host = G.create () in
  ignore (G.add_nodes host 4);
  List.iter
    (fun (a, b) ->
      G.add_edge host a b;
      G.add_edge host b a)
    [ (0, 1); (0, 2); (1, 3); (2, 3) ];
  let pattern = path_graph 4 in
  (match Iso.find ~compatible:(fun _ _ -> true) pattern host with
  | Some mapping ->
      checkb "distinct targets" true
        (List.length (List.sort_uniq compare (Array.to_list mapping)) = 4);
      (* every pattern edge realized *)
      G.iter_edges
        (fun e -> checkb "edge held" true (G.mem_edge host mapping.(e.G.src) mapping.(e.G.dst)))
        pattern
  | None -> Alcotest.fail "expected embedding");
  (* a 5-path cannot embed in 4 nodes *)
  checkb "too big" true (Iso.find ~compatible:(fun _ _ -> true) (path_graph 5) host = None)

let test_iso_respects_compatibility () =
  let host = path_graph 3 and pattern = path_graph 3 in
  (* forbid node 0 of the pattern everywhere: no embedding *)
  checkb "blocked" true (Iso.find ~compatible:(fun p _ -> p <> 0) pattern host = None)

(* ---------- Digraph basics ---------- *)

let test_digraph_basics () =
  let g = G.create () in
  let a = G.add_node g and b = G.add_node g in
  G.add_edge g a b;
  G.add_edge g a b;
  checki "parallel edges" 2 (G.edge_count g);
  checki "out degree" 2 (G.out_degree g a);
  Alcotest.(check (list int)) "succ" [ b; b ] (G.succ g a);
  let r = G.reverse g in
  checki "reversed" 2 (G.in_degree r a);
  let sub, _map = G.induced g [ a ] in
  checki "induced nodes" 1 (G.node_count sub);
  checki "induced edges" 0 (G.edge_count sub);
  checkb "dot output" true (String.length (G.to_dot g) > 0)

let () =
  Alcotest.run "graph"
    [
      ( "topo",
        [
          QCheck_alcotest.to_alcotest qcheck_topo_order_valid;
          Alcotest.test_case "cycle detection" `Quick test_topo_detects_cycle;
          Alcotest.test_case "longest paths" `Quick test_longest_path;
        ] );
      ( "scc",
        [
          Alcotest.test_case "known graph" `Quick test_scc_known;
          QCheck_alcotest.to_alcotest qcheck_scc_condensation_is_dag;
        ] );
      ( "paths",
        [
          QCheck_alcotest.to_alcotest qcheck_dijkstra_vs_floyd;
          Alcotest.test_case "path extraction" `Quick test_dijkstra_path_extraction;
        ] );
      ("matching", [ QCheck_alcotest.to_alcotest qcheck_matching_vs_brute ]);
      ("clique", [ QCheck_alcotest.to_alcotest qcheck_clique_vs_brute ]);
      ( "subgraphs",
        [
          Alcotest.test_case "mcs of paths" `Quick test_mcs_paths;
          Alcotest.test_case "iso path in grid" `Quick test_iso_path_in_grid;
          Alcotest.test_case "iso compatibility" `Quick test_iso_respects_compatibility;
        ] );
      ("digraph", [ Alcotest.test_case "basics" `Quick test_digraph_basics ]);
    ]

(* DFG / front-end / middle-end tests: structure validation, schedule
   bounds, the interpreter, the mini-language lowering, and semantic
   preservation of the transformation passes. *)

open Ocgra_dfg
module Rng = Ocgra_util.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ---------- structure ---------- *)

let test_validate_good () =
  let g = Dfg.create () in
  let a = Dfg.input g "a" in
  let b = Dfg.const g 3 in
  let s = Dfg.binop g Op.Add a b in
  ignore (Dfg.output g "out" s);
  Alcotest.(check (list string)) "valid" [] (Dfg.validate g)

let test_validate_missing_operand () =
  let g = Dfg.create () in
  let _ = Dfg.add g (Op.Binop Op.Add) in
  checkb "invalid" false (Dfg.is_valid g)

let test_validate_duplicate_producer () =
  let g = Dfg.create () in
  let a = Dfg.const g 1 and b = Dfg.const g 2 in
  let n = Dfg.add g Op.Not in
  Dfg.add_edge g ~src:a ~dst:n ~port:0;
  Dfg.add_edge g ~src:b ~dst:n ~port:0;
  checkb "invalid" false (Dfg.is_valid g)

let test_validate_bad_port () =
  let g = Dfg.create () in
  let a = Dfg.const g 1 in
  let n = Dfg.unop g Op.Not a in
  Dfg.add_edge g ~src:a ~dst:n ~port:5;
  checkb "invalid" false (Dfg.is_valid g)

(* ---------- schedule bounds ---------- *)

let test_asap_alap () =
  let g = Dfg.create () in
  let a = Dfg.input g "a" in
  let b = Dfg.input g "b" in
  let c = Dfg.input g "c" in
  let m = Dfg.binop g Op.Mul a b in
  let s = Dfg.binop g Op.Add m c in
  ignore (Dfg.output g "o" s);
  let asap = Dfg.asap g in
  checki "a" 0 asap.(a);
  checki "m" 1 asap.(m);
  checki "s" 2 asap.(s);
  checki "critical path" 3 (Dfg.critical_path g);
  let mob = Dfg.mobility g in
  checki "critical node mobility" 0 mob.(m);
  checki "b critical too" 0 mob.(b);
  checki "c has slack" 1 mob.(c)

let test_rec_mii_kernels () =
  checki "dot product" 1 (Dfg.rec_mii (Ocgra_workloads.Kernels.dot_product ()).dfg);
  checki "horner" 2 (Dfg.rec_mii (Ocgra_workloads.Kernels.horner ()).dfg);
  checki "iir2" 3 (Dfg.rec_mii (Ocgra_workloads.Kernels.iir2 ()).dfg);
  checki "saxpy (dag)" 1 (Dfg.rec_mii (Ocgra_workloads.Kernels.saxpy ()).dfg)

(* ---------- interpreter ---------- *)

let test_eval_dot_product () =
  let k = Ocgra_workloads.Kernels.dot_product () in
  let r = Ocgra_workloads.Kernels.eval_reference k ~iters:4 in
  (* a = 1,2,3,4; b = -3,-1,1,3 -> partial sums: -3, -5, -2, 10 *)
  Alcotest.(check (list int)) "sums" [ -3; -5; -2; 10 ] (Eval.output_stream r "sum")

let test_eval_select_and_init () =
  let k = Ocgra_workloads.Kernels.running_max () in
  let r = Ocgra_workloads.Kernels.eval_reference k ~iters:6 in
  let stream = Eval.output_stream r "max" in
  (* the stream is the running maximum: non-decreasing *)
  let rec nondecreasing = function
    | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
    | _ -> true
  in
  checkb "monotone" true (nondecreasing stream)

let test_eval_memory () =
  let k = Ocgra_workloads.Kernels.prefix_sum () in
  let r = Ocgra_workloads.Kernels.eval_reference k ~iters:5 in
  let acc = Eval.output_stream r "acc" in
  checki "length" 5 (List.length acc)

(* ---------- mini-language lowering ---------- *)

let test_cdfg_structure () =
  let module P = Prog_ast in
  let prog =
    [
      P.Assign ("s", P.Int 0);
      P.For ("i", P.Int 0, P.Int 4, [ P.Assign ("s", P.Bin (Op.Add, P.Var "s", P.Var "i")) ]);
      P.Emit ("s", P.Var "s");
    ]
  in
  let cdfg = Prog.to_cdfg prog in
  (* entry, header, body, exit *)
  checki "blocks" 4 (Cdfg.block_count cdfg);
  let header = Cdfg.block cdfg 1 in
  (match header.term with
  | Cdfg.Branch _ -> ()
  | _ -> Alcotest.fail "header should branch");
  checkb "cfg digraph built" true
    (Ocgra_graph.Digraph.edge_count (Cdfg.to_digraph cdfg) >= 4)

let test_loop_body_dfg_semantics () =
  let module P = Prog_ast in
  (* sum += i*i with ivar i, 5 iterations: 0+1+4+9+16 = 30 *)
  let kernel =
    Prog.loop_body_dfg ~init:[ ("sum", 0) ] ~ivar:"i" ~lo:0
      [
        P.Assign ("sum", P.Bin (Op.Add, P.Var "sum", P.Bin (Op.Mul, P.Var "i", P.Var "i")));
        P.Emit ("sum", P.Var "sum");
      ]
  in
  Alcotest.(check (list string)) "valid" [] (Dfg.validate kernel.Prog.dfg);
  let env = Eval.env_of_streams [] in
  let r = Eval.run ~init:kernel.Prog.init kernel.Prog.dfg env ~iters:5 in
  Alcotest.(check (list int)) "partial sums" [ 0; 1; 5; 14; 30 ] (Eval.output_stream r "sum")

let test_loop_body_if_conversion () =
  let module P = Prog_ast in
  (* y = (i < 3) ? i : 10 emitted each iteration *)
  let kernel =
    Prog.loop_body_dfg ~ivar:"i" ~lo:0
      [
        P.If (P.Bin (Op.Lt, P.Var "i", P.Int 3), [ P.Assign ("y", P.Var "i") ], [ P.Assign ("y", P.Int 10) ]);
        P.Emit ("y", P.Var "y");
      ]
  in
  let env = Eval.env_of_streams [] in
  let r = Eval.run ~init:kernel.Prog.init kernel.Prog.dfg env ~iters:5 in
  Alcotest.(check (list int)) "selected" [ 0; 1; 2; 10; 10 ] (Eval.output_stream r "y")

let test_block_dfg () =
  let module P = Prog_ast in
  let cdfg = Prog.to_cdfg [ P.Assign ("x", P.Bin (Op.Add, P.Var "a", P.Int 1)); P.Emit ("o", P.Var "x") ] in
  let b0 = Cdfg.block cdfg 0 in
  let dfg = Prog.block_dfg b0 in
  Alcotest.(check (list string)) "valid" [] (Dfg.validate dfg);
  (* has Input a and Outputs for x *)
  let has_input =
    Dfg.fold_nodes (fun nd acc -> acc || nd.Dfg.op = Op.Input "a") dfg false
  in
  checkb "live-in a" true has_input

(* ---------- transformation passes preserve semantics ---------- *)

let eval_outputs dfg ~init streams iters =
  let env = Eval.env_of_streams streams in
  let r = Eval.run ~init dfg env ~iters in
  List.sort compare
    (Hashtbl.fold (fun name _ acc -> (name, Eval.output_stream r name) :: acc) r.Eval.outputs [])

let qcheck_passes_preserve_semantics =
  QCheck.Test.make ~name:"cse/dce/constfold preserve interpreter semantics" ~count:60
    QCheck.(pair small_int (int_range 6 20))
    (fun (seed, n) ->
      let rng = Rng.create (seed + 1) in
      let params = { Ocgra_workloads.Random_dfg.default with nodes = n } in
      let dfg, streams = Ocgra_workloads.Random_dfg.generate ~params rng in
      let iters = 5 in
      let before = eval_outputs dfg ~init:(fun _ -> 0) (streams iters) iters in
      let passes = [ Transform.cse; Transform.dce; Transform.constant_fold ] in
      List.for_all
        (fun pass ->
          let dfg' = pass dfg in
          Dfg.validate dfg' = []
          && eval_outputs dfg' ~init:(fun _ -> 0) (streams iters) iters = before)
        passes)

let test_dce_removes_dead () =
  let g = Dfg.create () in
  let a = Dfg.input g "a" in
  let _dead = Dfg.binop g Op.Add a a in
  let live = Dfg.unop g Op.Neg a in
  ignore (Dfg.output g "o" live);
  let g' = Transform.dce g in
  checki "dead removed" 3 (Dfg.node_count g')

let test_constant_fold () =
  let g = Dfg.create () in
  let a = Dfg.const g 3 and b = Dfg.const g 4 in
  let s = Dfg.binop g Op.Mul a b in
  ignore (Dfg.output g "o" s);
  let g' = Transform.constant_fold g in
  (* mul of two consts becomes a const 12 feeding the output *)
  let has12 = Dfg.fold_nodes (fun nd acc -> acc || nd.Dfg.op = Op.Const 12) g' false in
  checkb "folded" true has12;
  checki "only const + output" 2 (Dfg.node_count g')

let test_cse_merges () =
  let g = Dfg.create () in
  let a = Dfg.input g "a" in
  let x = Dfg.binop g Op.Add a a in
  let y = Dfg.binop g Op.Add a a in
  ignore (Dfg.output g "o1" x);
  ignore (Dfg.output g "o2" y);
  let g' = Transform.cse g in
  (* one input, one add, two outputs *)
  checki "merged" 4 (Dfg.node_count g')

let qcheck_unroll_structure =
  QCheck.Test.make ~name:"unroll multiplies nodes and preserves validity" ~count:50
    QCheck.(pair small_int (int_range 2 4))
    (fun (seed, u) ->
      let rng = Rng.create (seed + 7) in
      let params = { Ocgra_workloads.Random_dfg.default with nodes = 10 } in
      let dfg, _ = Ocgra_workloads.Random_dfg.generate ~params rng in
      let unrolled = Transform.unroll dfg u in
      Dfg.validate unrolled = []
      && Dfg.node_count unrolled = u * Dfg.node_count dfg
      && Dfg.edge_count unrolled = u * Dfg.edge_count dfg
      && Dfg.is_acyclic unrolled)

let test_unroll_semantics () =
  let k = Ocgra_workloads.Kernels.dot_product () in
  let u = Transform.unroll k.dfg 2 in
  Alcotest.(check (list string)) "valid" [] (Dfg.validate u);
  (* evaluating the unrolled body for 2 macro-iterations covers 4
     original iterations; the even-indexed outputs of the original are
     sum.0, odd are sum.1 *)
  let orig = Ocgra_workloads.Kernels.eval_reference k ~iters:4 in
  let orig_sums = Eval.output_stream orig "sum" in
  let streams =
    [ ("a.0", [| 1; 3 |]); ("a.1", [| 2; 4 |]); ("b.0", [| -3; 1 |]); ("b.1", [| -1; 3 |]) ]
  in
  let env = Eval.env_of_streams streams in
  let r = Eval.run u env ~iters:2 in
  let got =
    List.concat
      (List.map2
         (fun a b -> [ a; b ])
         (Eval.output_stream r "sum.0")
         (Eval.output_stream r "sum.1"))
  in
  Alcotest.(check (list int)) "interleaved sums" orig_sums got

let () =
  Alcotest.run "dfg"
    [
      ( "structure",
        [
          Alcotest.test_case "valid graph" `Quick test_validate_good;
          Alcotest.test_case "missing operand" `Quick test_validate_missing_operand;
          Alcotest.test_case "duplicate producer" `Quick test_validate_duplicate_producer;
          Alcotest.test_case "bad port" `Quick test_validate_bad_port;
        ] );
      ( "schedule bounds",
        [
          Alcotest.test_case "asap/alap/mobility" `Quick test_asap_alap;
          Alcotest.test_case "recmii kernels" `Quick test_rec_mii_kernels;
        ] );
      ( "interpreter",
        [
          Alcotest.test_case "dot product" `Quick test_eval_dot_product;
          Alcotest.test_case "select + init" `Quick test_eval_select_and_init;
          Alcotest.test_case "memory ops" `Quick test_eval_memory;
        ] );
      ( "front-end",
        [
          Alcotest.test_case "cdfg structure" `Quick test_cdfg_structure;
          Alcotest.test_case "loop-body semantics" `Quick test_loop_body_dfg_semantics;
          Alcotest.test_case "if-conversion" `Quick test_loop_body_if_conversion;
          Alcotest.test_case "block dfg" `Quick test_block_dfg;
        ] );
      ( "middle-end",
        [
          QCheck_alcotest.to_alcotest qcheck_passes_preserve_semantics;
          Alcotest.test_case "dce" `Quick test_dce_removes_dead;
          Alcotest.test_case "constant folding" `Quick test_constant_fold;
          Alcotest.test_case "cse" `Quick test_cse_merges;
          Alcotest.test_case "unroll semantics" `Quick test_unroll_semantics;
          QCheck_alcotest.to_alcotest qcheck_unroll_structure;
        ] );
    ]

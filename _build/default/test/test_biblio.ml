(* Corpus tests: the generated Table I must reproduce the paper's
   cells exactly, and the Fig. 4 timeline properties the paper states
   must hold in the data. *)

open Ocgra_biblio
module D = Dataset

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let check_refs = Alcotest.(check (list int))

(* The paper's Table I, transcribed cell by cell. *)
let test_table1_spatial () =
  check_refs "spatial heuristics" [ 23; 30; 31 ] (D.in_cell D.S_spatial D.T_heuristic);
  check_refs "spatial GA" [ 19 ] (D.in_cell D.S_spatial D.T_ga);
  check_refs "spatial SA" [ 32; 33 ] (D.in_cell D.S_spatial D.T_sa);
  check_refs "spatial ILP" [ 23; 34; 35 ] (D.in_cell D.S_spatial D.T_ilp)

let test_table1_temporal () =
  check_refs "temporal heuristics" [ 12; 16; 26; 36; 37; 38; 39; 40 ]
    (D.in_cell D.S_temporal D.T_heuristic);
  check_refs "temporal SA" [ 22 ] (D.in_cell D.S_temporal D.T_sa);
  check_refs "temporal ILP" [ 41 ] (D.in_cell D.S_temporal D.T_ilp);
  check_refs "temporal B&B" [ 42 ] (D.in_cell D.S_temporal D.T_bb);
  check_refs "temporal CP" [ 43 ] (D.in_cell D.S_temporal D.T_cp);
  check_refs "temporal SAT" [ 17 ] (D.in_cell D.S_temporal D.T_sat);
  check_refs "temporal SMT" [ 44 ] (D.in_cell D.S_temporal D.T_smt)

let test_table1_binding () =
  check_refs "binding heuristics" [ 14; 24; 28; 45; 46; 47 ]
    (D.in_cell D.S_binding D.T_heuristic);
  check_refs "binding QEA" [ 48 ] (D.in_cell D.S_binding D.T_qea);
  check_refs "binding SA" [ 30; 49; 50 ] (D.in_cell D.S_binding D.T_sa);
  check_refs "binding ILP" [ 15; 48 ] (D.in_cell D.S_binding D.T_ilp)

let test_table1_scheduling () =
  check_refs "scheduling heuristics" [ 24; 28; 36; 46; 48; 50; 51; 52 ]
    (D.in_cell D.S_scheduling D.T_heuristic);
  check_refs "scheduling ILP" [ 15; 53 ] (D.in_cell D.S_scheduling D.T_ilp)

let test_table_renders () =
  let s = Table1.render () in
  checkb "mentions DRESC cell" true
    (String.length s > 0
    &&
    let contains sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    contains "[22]" && contains "SAT [17]" && contains "QEA [48]")

(* Fig. 4 properties the paper states *)

let test_timeline_2021_spike () =
  let counts = Timeline.counts () in
  let of_year y = List.assoc y counts in
  (* "a clear increase in 2021": 2021 is the maximum *)
  List.iter (fun (y, c) -> if y <> 2021 then checkb "2021 is max" true (c <= of_year 2021)) counts;
  checkb "2021 has many" true (of_year 2021 >= 8)

let test_timeline_total () =
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 (Timeline.counts ()) in
  checki "every entry counted" (List.length D.entries) total

let test_technique_eras () =
  let firsts = Timeline.technique_first_years () in
  let year_of t = List.assoc t firsts in
  (* "modulo scheduling was considered since the beginning" *)
  checki "modulo scheduling from the start" 1998 (year_of D.Modulo_scheduling);
  (* "supporting branches started in the early 2000s" *)
  checki "full predication early 2000s" 2002 (year_of D.Full_predication);
  (* "memory-aware methods gained interest around 2010" *)
  checkb "memory aware around 2010" true (abs (year_of D.Memory_aware - 2010) <= 2);
  checkb "hardware loops late 2010s" true (year_of D.Hardware_loops >= 2015)

let test_corpus_integrity () =
  (* distinct reference numbers, sane years *)
  let refs = List.map (fun e -> e.D.ref_no) D.entries in
  checki "unique refs" (List.length refs) (List.length (List.sort_uniq compare refs));
  List.iter
    (fun e -> checkb "year in range" true (e.D.year >= 1998 && e.D.year <= 2021))
    D.entries;
  checkb "by_ref works" true ((D.by_ref 22).D.year = 2002);
  Alcotest.check_raises "missing ref"
    (Invalid_argument "Dataset.by_ref: [999] not in the corpus") (fun () ->
      ignore (D.by_ref 999))

let () =
  Alcotest.run "biblio"
    [
      ( "table1 matches the paper",
        [
          Alcotest.test_case "spatial row" `Quick test_table1_spatial;
          Alcotest.test_case "temporal row" `Quick test_table1_temporal;
          Alcotest.test_case "binding row" `Quick test_table1_binding;
          Alcotest.test_case "scheduling row" `Quick test_table1_scheduling;
          Alcotest.test_case "renders" `Quick test_table_renders;
        ] );
      ( "fig4 timeline",
        [
          Alcotest.test_case "2021 spike" `Quick test_timeline_2021_spike;
          Alcotest.test_case "totals" `Quick test_timeline_total;
          Alcotest.test_case "technique eras" `Quick test_technique_eras;
        ] );
      ("corpus", [ Alcotest.test_case "integrity" `Quick test_corpus_integrity ]);
    ]

(* Control-flow mapping tests: the four predication schemes are
   semantically equivalent, their cost ordering matches the literature,
   hardware-loop arithmetic, and host-managed CDFG execution. *)

module Pred = Ocgra_cf.Predication
module Hw = Ocgra_cf.Hw_loop
module Host = Ocgra_cf.Host_exec
module P = Ocgra_dfg.Prog_ast
module Op = Ocgra_dfg.Op
module Eval = Ocgra_dfg.Eval

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let clip_ite =
  {
    Pred.cond = P.Bin (Op.Lt, P.Int 127, P.Var "x");
    then_branch = [ ("y", P.Int 127) ];
    else_branch = [ ("y", P.Bin (Op.Add, P.Bin (Op.Mul, P.Var "x", P.Int 3), P.Int 1)) ];
  }

let two_var_ite =
  {
    Pred.cond = P.Bin (Op.Lt, P.Var "x", P.Int 0);
    then_branch = [ ("y", P.Neg (P.Var "x")); ("s", P.Int (-1)) ];
    else_branch = [ ("y", P.Var "x"); ("s", P.Int 1) ];
  }

let eval_scheme scheme ite xs =
  let dfg = Pred.to_dfg scheme ite in
  Alcotest.(check (list string)) "valid dfg" [] (Ocgra_dfg.Dfg.validate dfg);
  let env = Eval.env_of_streams [ ("x", xs) ] in
  let r = Eval.run dfg env ~iters:(Array.length xs) in
  List.map
    (fun v -> (v, Eval.output_stream r v))
    (Pred.merged_vars ite)

let test_schemes_agree () =
  let xs = [| 0; 100; 127; 128; 500; -3 |] in
  List.iter
    (fun ite ->
      let reference = eval_scheme Pred.Full_predication ite xs in
      List.iter
        (fun scheme ->
          Alcotest.(check (list (pair string (list int))))
            (Pred.scheme_to_string scheme ^ " agrees")
            reference (eval_scheme scheme ite xs))
        Pred.all_schemes)
    [ clip_ite; two_var_ite ]

let test_clip_semantics () =
  let outputs = eval_scheme Pred.Dual_issue clip_ite [| 0; 200 |] in
  Alcotest.(check (list int)) "clip values" [ 1; 127 ] (List.assoc "y" outputs)

let test_scheme_cost_ordering () =
  (* dual-issue never uses more ops than full predication; partial
     predication (CSE across branches) never more than full *)
  List.iter
    (fun ite ->
      let count scheme = Pred.op_count (Pred.to_dfg scheme ite) in
      checkb "dual <= full" true (count Pred.Dual_issue <= count Pred.Full_predication);
      checkb "partial <= full" true
        (count Pred.Partial_predication <= count Pred.Full_predication);
      checkb "direct >= full" true (count Pred.Direct_cdfg >= count Pred.Full_predication))
    [ clip_ite; two_var_ite ]

let test_merged_vars () =
  Alcotest.(check (list string)) "merged" [ "s"; "y" ] (Pred.merged_vars two_var_ite)

(* ---------- hardware loops ---------- *)

let test_hw_loop_cycles () =
  let m = Hw.default_overhead in
  (* one iteration: hw pays fill only once *)
  let host1 = Hw.host_managed_cycles m ~schedule_length:5 ~iters:1 in
  let hw1 = Hw.hw_loop_cycles m ~ii:2 ~schedule_length:5 ~iters:1 in
  checkb "single iteration cheaper in hw" true (hw1 <= host1);
  (* speedup grows with the trip count *)
  let s16 = Hw.speedup m ~ii:2 ~schedule_length:5 ~iters:16 in
  let s256 = Hw.speedup m ~ii:2 ~schedule_length:5 ~iters:256 in
  checkb "speedup grows" true (s256 > s16);
  (* asymptote: host per-iter cost / ii *)
  checkb "bounded by per-iter ratio" true
    (s256 < float_of_int (m.Hw.host_issue_cycles + m.Hw.config_fetch_cycles + 5 + m.Hw.host_control_cycles) /. 2.0 +. 1.0)

let test_break_even () =
  match Hw.break_even Hw.default_overhead ~ii:2 ~schedule_length:6 with
  | Some n -> checkb "immediate win" true (n = 1)
  | None -> Alcotest.fail "break-even exists"

let test_nested_loops () =
  let m = Hw.default_overhead in
  let nested = Hw.nested_hw_cycles m ~ii:2 ~schedule_length:6 ~inner:10 ~outer:10 in
  let inner_only = Hw.inner_only_cycles m ~ii:2 ~schedule_length:6 ~inner:10 ~outer:10 in
  checkb "two-level support wins" true (nested < inner_only)

(* ---------- host-managed execution ---------- *)

let test_host_exec_trace () =
  let prog =
    [
      P.Assign ("s", P.Int 0);
      P.For ("i", P.Int 0, P.Int 3, [ P.Assign ("s", P.Bin (Op.Add, P.Var "s", P.Var "i")) ]);
      P.Emit ("out", P.Var "s");
    ]
  in
  let cdfg = Ocgra_dfg.Prog.to_cdfg prog in
  let trace, outputs, vars = Host.interpret cdfg ~memory:[] in
  (* entry + (header+body)*3 + header + exit = 9 blocks *)
  checki "trace length" 9 (List.length trace);
  checki "s = 0+1+2" 3 (Hashtbl.find vars "s");
  Alcotest.(check (list int)) "emitted" [ 3 ] (Hashtbl.find outputs "out");
  let plan = Host.make_plan cdfg in
  checkb "trace cost positive" true (Host.trace_cost plan trace > 0)

let test_host_exec_branches () =
  let prog =
    [
      P.Assign ("x", P.Int 10);
      P.If
        ( P.Bin (Op.Lt, P.Var "x", P.Int 5),
          [ P.Assign ("y", P.Int 1) ],
          [ P.Assign ("y", P.Int 2) ] );
      P.Emit ("y", P.Var "y");
    ]
  in
  let cdfg = Ocgra_dfg.Prog.to_cdfg prog in
  let _, outputs, _ = Host.interpret cdfg ~memory:[] in
  Alcotest.(check (list int)) "else branch taken" [ 2 ] (Hashtbl.find outputs "y")

let test_host_exec_memory () =
  let prog =
    [
      P.For ("i", P.Int 0, P.Int 4, [ P.Write ("dst", P.Var "i", P.Bin (Op.Mul, P.Var "i", P.Var "i")) ]);
    ]
  in
  let cdfg = Ocgra_dfg.Prog.to_cdfg prog in
  let memory = [ ("dst", Array.make 4 0) ] in
  (* interpret copies memory; re-run with a shared reference to check writes *)
  let _, _, _ = Host.interpret cdfg ~memory in
  (* the interpreter copies arrays, so we verify through a fresh run's trace *)
  let trace, _, vars = Host.interpret cdfg ~memory in
  checkb "loop ran" true (List.length trace > 4);
  checki "i ended at 4" 4 (Hashtbl.find vars "i")

let () =
  Alcotest.run "cf"
    [
      ( "predication",
        [
          Alcotest.test_case "schemes agree semantically" `Quick test_schemes_agree;
          Alcotest.test_case "clip semantics" `Quick test_clip_semantics;
          Alcotest.test_case "cost ordering" `Quick test_scheme_cost_ordering;
          Alcotest.test_case "merged vars" `Quick test_merged_vars;
        ] );
      ( "hardware loops",
        [
          Alcotest.test_case "cycle model" `Quick test_hw_loop_cycles;
          Alcotest.test_case "break even" `Quick test_break_even;
          Alcotest.test_case "nested" `Quick test_nested_loops;
        ] );
      ( "host execution",
        [
          Alcotest.test_case "loop trace" `Quick test_host_exec_trace;
          Alcotest.test_case "branch" `Quick test_host_exec_branches;
          Alcotest.test_case "memory loop" `Quick test_host_exec_memory;
        ] );
    ]

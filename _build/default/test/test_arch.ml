(* Architecture model tests: topologies, capability queries, hop
   tables, and the configuration-word encoding. *)

open Ocgra_arch
module Op = Ocgra_dfg.Op
module Rng = Ocgra_util.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ---------- topologies ---------- *)

let test_mesh_neighbours () =
  (* 3x3 mesh: corner 2 neighbours, edge 3, centre 4 *)
  let n pe = List.length (Topology.neighbours Topology.Mesh ~rows:3 ~cols:3 pe) in
  checki "corner" 2 (n 0);
  checki "edge" 3 (n 1);
  checki "centre" 4 (n 4)

let test_torus_regular () =
  for pe = 0 to 15 do
    checki "torus degree 4" 4 (List.length (Topology.neighbours Topology.Torus ~rows:4 ~cols:4 pe))
  done

let test_diagonal_centre () =
  checki "8 neighbours" 8 (List.length (Topology.neighbours Topology.Diagonal ~rows:3 ~cols:3 4))

let test_full_topology () =
  checki "all others" 15 (List.length (Topology.neighbours Topology.Full ~rows:4 ~cols:4 3))

let qcheck_topology_symmetric =
  QCheck.Test.make ~name:"all topologies are symmetric" ~count:100
    QCheck.(pair (int_range 1 5) (int_range 1 5))
    (fun (rows, cols) ->
      List.for_all
        (fun topo ->
          let npe = rows * cols in
          List.for_all
            (fun p ->
              List.for_all
                (fun q -> List.mem p (Topology.neighbours topo ~rows ~cols q))
                (Topology.neighbours topo ~rows ~cols p))
            (List.init npe Fun.id))
        Topology.all)

let test_topology_string_roundtrip () =
  List.iter
    (fun t ->
      checkb "roundtrip" true (Topology.of_string (Topology.to_string t) = t))
    Topology.all

(* ---------- cgra ---------- *)

let test_hop_table_is_manhattan_on_mesh () =
  let cgra = Cgra.uniform ~rows:4 ~cols:4 () in
  let hop = Cgra.hop_table cgra in
  for i = 0 to 15 do
    for j = 0 to 15 do
      let r1, c1 = Cgra.coords cgra i and r2, c2 = Cgra.coords cgra j in
      checki "manhattan" (abs (r1 - r2) + abs (c1 - c2)) hop.(i).(j)
    done
  done

let test_heterogeneous_capabilities () =
  let cgra = Cgra.adres_like ~rows:4 ~cols:4 () in
  (* loads only in column 0 *)
  checkb "col0 mem" true (Cgra.supports cgra 0 (Op.Load "a"));
  checkb "col1 no mem" false (Cgra.supports cgra 1 (Op.Load "a"));
  (* muls on even cells *)
  checkb "even mul" true (Cgra.supports cgra 2 (Op.Binop Op.Mul));
  checkb "odd no mul" false (Cgra.supports cgra 1 (Op.Binop Op.Mul));
  (* everyone does alu and routing *)
  checkb "alu" true (Cgra.supports cgra 7 (Op.Binop Op.Add));
  checkb "route" true (Cgra.supports cgra 7 Op.Route);
  checki "mem PEs" 4 (List.length (Cgra.capable_pes cgra (Op.Load "x")))

let qcheck_hop_table_metric =
  QCheck.Test.make ~name:"hop table is a metric (triangle inequality)" ~count:60
    QCheck.(pair (int_range 2 4) (int_range 0 4))
    (fun (n, topo_idx) ->
      let topo = List.nth Topology.all topo_idx in
      let cgra = Cgra.uniform ~topology:topo ~rows:n ~cols:n () in
      let hop = Cgra.hop_table cgra in
      let npe = n * n in
      let ok = ref true in
      for i = 0 to npe - 1 do
        if hop.(i).(i) <> 0 then ok := false;
        for j = 0 to npe - 1 do
          if hop.(i).(j) <> hop.(j).(i) then ok := false;
          for k = 0 to npe - 1 do
            if hop.(i).(j) > hop.(i).(k) + hop.(k).(j) then ok := false
          done
        done
      done;
      !ok)

let test_coords_index_roundtrip () =
  let cgra = Cgra.uniform ~rows:3 ~cols:5 () in
  for pe = 0 to 14 do
    let r, c = Cgra.coords cgra pe in
    checki "roundtrip" pe (Cgra.index cgra ~row:r ~col:c)
  done

(* ---------- context words ---------- *)

let random_slot rng =
  let srcs =
    Array.init 3 (fun _ ->
        match Rng.int rng 5 with
        | 0 -> Context.Src_none
        | 1 -> Context.Src_self
        | 2 -> Context.Src_const
        | 3 -> Context.Src_dir (Rng.int rng 12)
        | _ -> Context.Src_rf (Rng.int rng 16))
  in
  {
    Context.opcode = Rng.int rng 26;
    srcs;
    const = Rng.int_in rng (-8_000_000) 8_000_000;
    rf_we = Rng.bool rng;
    rf_waddr = Rng.int rng 16;
  }

let qcheck_context_roundtrip =
  QCheck.Test.make ~name:"configuration word encode/decode roundtrip" ~count:500
    QCheck.small_int
    (fun seed ->
      let rng = Rng.create (seed + 17) in
      let s = random_slot rng in
      let s' = Context.decode_slot (Context.encode_slot s) in
      s' = s)

let test_opcode_coverage () =
  (* every op kind has a distinct opcode and a printable name *)
  let ops =
    [
      Op.Nop; Op.Const 3; Op.Input "x"; Op.Output "y"; Op.Not; Op.Neg; Op.Select;
      Op.Load "a"; Op.Store "a"; Op.Route; Op.Binop Op.Add; Op.Binop Op.Mul; Op.Binop Op.Ne;
    ]
  in
  let codes = List.map Context.opcode_of_op ops in
  checki "distinct" (List.length codes) (List.length (List.sort_uniq compare codes));
  List.iter (fun c -> checkb "named" true (String.length (Context.opcode_name c) > 0)) codes

let test_dict_interning () =
  let d = Context.Dict.create () in
  let a = Context.Dict.intern d "alpha" in
  let b = Context.Dict.intern d "beta" in
  let a' = Context.Dict.intern d "alpha" in
  checki "stable" a a';
  checkb "distinct" true (a <> b);
  Alcotest.(check string) "name" "beta" (Context.Dict.name d b)

(* ---------- pe ---------- *)

let test_pe_capabilities () =
  let pe = Pe.alu_only in
  checkb "alu" true (Pe.supports pe (Op.Binop Op.Add));
  checkb "no mul" false (Pe.supports pe (Op.Binop Op.Mul));
  checkb "no const without field" false (Pe.supports (Pe.make ~has_const:false [ Op.F_alu ]) (Op.Const 1));
  checkb "route always" true (Pe.supports pe Op.Route)

let () =
  Alcotest.run "arch"
    [
      ( "topology",
        [
          Alcotest.test_case "mesh degrees" `Quick test_mesh_neighbours;
          Alcotest.test_case "torus regular" `Quick test_torus_regular;
          Alcotest.test_case "diagonal centre" `Quick test_diagonal_centre;
          Alcotest.test_case "full" `Quick test_full_topology;
          QCheck_alcotest.to_alcotest qcheck_topology_symmetric;
          Alcotest.test_case "string roundtrip" `Quick test_topology_string_roundtrip;
        ] );
      ( "cgra",
        [
          Alcotest.test_case "mesh hop table" `Quick test_hop_table_is_manhattan_on_mesh;
          Alcotest.test_case "heterogeneous" `Quick test_heterogeneous_capabilities;
          Alcotest.test_case "coords roundtrip" `Quick test_coords_index_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_hop_table_metric;
        ] );
      ( "context",
        [
          QCheck_alcotest.to_alcotest qcheck_context_roundtrip;
          Alcotest.test_case "opcodes" `Quick test_opcode_coverage;
          Alcotest.test_case "dict" `Quick test_dict_interning;
        ] );
      ("pe", [ Alcotest.test_case "capabilities" `Quick test_pe_capabilities ]);
    ]

(* SAT solver tests: hand instances, brute-force agreement on random
   CNF, pigeonhole unsatisfiability, cardinality encodings. *)

module Solver = Ocgra_sat.Solver
module Enc = Ocgra_sat.Encodings
module Rng = Ocgra_util.Rng

let check = Alcotest.check Alcotest.bool

(* brute-force satisfiability of a CNF over vars 1..n *)
let brute_force n clauses =
  let rec go assignment v =
    if v > n then
      List.for_all
        (fun clause ->
          List.exists
            (fun l ->
              let var = Solver.var_of l in
              if Solver.is_pos l then assignment.(var) else not assignment.(var))
            clause)
        clauses
    else begin
      assignment.(v) <- true;
      go assignment (v + 1)
      ||
      (assignment.(v) <- false;
       go assignment (v + 1))
    end
  in
  go (Array.make (n + 1) false) 1

let solve_clauses n clauses =
  let s = Solver.create () in
  let _vars = Solver.new_vars s n in
  List.iter (Solver.add_clause s) clauses;
  (s, Solver.solve s)

let model_satisfies s clauses =
  List.for_all
    (fun clause ->
      List.exists
        (fun l ->
          let v = Solver.value s (Solver.var_of l) in
          if Solver.is_pos l then v else not v)
        clause)
    clauses

let test_trivial () =
  let s = Solver.create () in
  let v = Solver.new_var s in
  Solver.add_clause s [ Solver.pos v ];
  check "sat" true (Solver.solve s = Solver.Sat);
  check "value" true (Solver.value s v)

let test_unsat_pair () =
  let s = Solver.create () in
  let v = Solver.new_var s in
  Solver.add_clause s [ Solver.pos v ];
  Solver.add_clause s [ Solver.neg v ];
  check "unsat" true (Solver.solve s = Solver.Unsat)

let test_empty_clause () =
  let s = Solver.create () in
  let _ = Solver.new_var s in
  Solver.add_clause s [];
  check "unsat" true (Solver.solve s = Solver.Unsat)

let test_implication_chain () =
  let s = Solver.create () in
  let n = 50 in
  let vars = Array.of_list (Solver.new_vars s n) in
  for i = 0 to n - 2 do
    Solver.add_clause s [ Solver.neg vars.(i); Solver.pos vars.(i + 1) ]
  done;
  Solver.add_clause s [ Solver.pos vars.(0) ];
  check "sat" true (Solver.solve s = Solver.Sat);
  for i = 0 to n - 1 do
    check "chain forced" true (Solver.value s vars.(i))
  done

(* Pigeonhole: n+1 pigeons, n holes -> UNSAT; stresses learning. *)
let test_pigeonhole () =
  let n = 5 in
  let s = Solver.create () in
  let x = Array.init (n + 1) (fun _ -> Array.of_list (Solver.new_vars s n)) in
  for p = 0 to n do
    Solver.add_clause s (List.init n (fun h -> Solver.pos x.(p).(h)))
  done;
  for h = 0 to n - 1 do
    for p1 = 0 to n do
      for p2 = p1 + 1 to n do
        Solver.add_clause s [ Solver.neg x.(p1).(h); Solver.neg x.(p2).(h) ]
      done
    done
  done;
  check "php unsat" true (Solver.solve s = Solver.Unsat)

let test_assumptions () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  Solver.add_clause s [ Solver.neg a; Solver.pos b ];
  check "sat under a" true (Solver.solve ~assumptions:[ Solver.pos a ] s = Solver.Sat);
  check "b forced" true (Solver.value s b);
  Solver.add_clause s [ Solver.neg b ];
  check "unsat under a" true (Solver.solve ~assumptions:[ Solver.pos a ] s = Solver.Unsat);
  (* instance still satisfiable without the assumption *)
  check "sat without" true (Solver.solve s = Solver.Sat)

let random_cnf rng ~nvars ~nclauses ~width =
  List.init nclauses (fun _ ->
      List.init (1 + Rng.int rng width) (fun _ ->
          let v = 1 + Rng.int rng nvars in
          if Rng.bool rng then Solver.pos v else Solver.neg v))

let qcheck_agree_with_brute_force =
  QCheck.Test.make ~name:"random CNF agrees with brute force" ~count:300
    QCheck.(pair (int_bound 1_000_000) (int_range 1 10))
    (fun (seed, nvars) ->
      let rng = Rng.create (seed * 7919) in
      let nclauses = 2 + Rng.int rng (4 * nvars) in
      let clauses = random_cnf rng ~nvars ~nclauses ~width:3 in
      let s, result = solve_clauses nvars clauses in
      let expected = brute_force nvars clauses in
      match result with
      | Solver.Sat -> expected && model_satisfies s clauses
      | Solver.Unsat -> not expected
      | Solver.Unknown -> false)

let qcheck_at_most_k =
  QCheck.Test.make ~name:"at_most_k counts correctly" ~count:100
    QCheck.(pair (int_bound 1_000_000) (pair (int_range 1 8) (int_range 0 8)))
    (fun (seed, (n, k)) ->
      let rng = Rng.create (seed + 13) in
      let s = Solver.create () in
      let vars = Array.of_list (Solver.new_vars s n) in
      Enc.at_most_k s (Array.to_list (Array.map Solver.pos vars)) k;
      (* force a random subset of size m *)
      let m = Rng.int rng (n + 1) in
      let idx = Rng.sample_indices rng n m in
      Array.iter (fun i -> Solver.add_clause s [ Solver.pos vars.(i) ]) idx;
      let result = Solver.solve s in
      if m <= k then result = Solver.Sat else result = Solver.Unsat)

let qcheck_exactly_one =
  QCheck.Test.make ~name:"exactly_one has exactly one true" ~count:100
    QCheck.(pair (int_bound 1_000_000) (int_range 1 15))
    (fun (_seed, n) ->
      let s = Solver.create () in
      let vars = Array.of_list (Solver.new_vars s n) in
      Enc.exactly_one s (Array.to_list (Array.map Solver.pos vars));
      match Solver.solve s with
      | Solver.Sat ->
          let count = Array.fold_left (fun acc v -> if Solver.value s v then acc + 1 else acc) 0 vars in
          count = 1
      | _ -> false)

let () =
  Alcotest.run "sat"
    [
      ( "unit",
        [
          Alcotest.test_case "trivial" `Quick test_trivial;
          Alcotest.test_case "unsat pair" `Quick test_unsat_pair;
          Alcotest.test_case "empty clause" `Quick test_empty_clause;
          Alcotest.test_case "implication chain" `Quick test_implication_chain;
          Alcotest.test_case "pigeonhole" `Quick test_pigeonhole;
          Alcotest.test_case "assumptions" `Quick test_assumptions;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest qcheck_agree_with_brute_force;
          QCheck_alcotest.to_alcotest qcheck_at_most_k;
          QCheck_alcotest.to_alcotest qcheck_exactly_one;
        ] );
    ]

test/test_sat.ml: Alcotest Array List Ocgra_sat Ocgra_util QCheck QCheck_alcotest

test/test_util.ml: Alcotest Array Float Hashtbl List Ocgra_util QCheck QCheck_alcotest String

test/test_integration.ml: Alcotest Array Hashtbl List Ocgra_arch Ocgra_cf Ocgra_core Ocgra_dfg Ocgra_mappers Ocgra_sim Ocgra_util Ocgra_workloads

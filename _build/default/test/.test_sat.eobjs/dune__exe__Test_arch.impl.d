test/test_arch.ml: Alcotest Array Cgra Context Fun List Ocgra_arch Ocgra_dfg Ocgra_util Pe QCheck QCheck_alcotest String Topology

test/test_dfg.ml: Alcotest Array Cdfg Dfg Eval Hashtbl List Ocgra_dfg Ocgra_graph Ocgra_util Ocgra_workloads Op Prog Prog_ast QCheck QCheck_alcotest Transform

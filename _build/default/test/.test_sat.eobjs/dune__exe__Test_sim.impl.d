test/test_sim.ml: Alcotest Array List Mapping Ocgra_arch Ocgra_core Ocgra_dfg Ocgra_mappers Ocgra_sim Ocgra_util Ocgra_workloads Printf Problem

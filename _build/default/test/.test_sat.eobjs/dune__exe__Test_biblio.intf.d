test/test_biblio.mli:

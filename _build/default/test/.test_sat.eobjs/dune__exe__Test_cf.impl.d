test/test_cf.ml: Alcotest Array Hashtbl List Ocgra_cf Ocgra_dfg

test/test_cf.mli:

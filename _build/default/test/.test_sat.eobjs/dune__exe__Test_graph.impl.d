test/test_graph.ml: Alcotest Array Fun List Ocgra_graph Ocgra_util QCheck QCheck_alcotest String

test/test_mappers.ml: Alcotest Array Check Deadline Hashtbl List Mapper Mapping Mii Ocgra_arch Ocgra_core Ocgra_dfg Ocgra_mappers Ocgra_util Ocgra_workloads Option Printf Problem Taxonomy

test/test_extensions.ml: Alcotest Array Check List Mapping Ocgra_arch Ocgra_cf Ocgra_core Ocgra_dfg Ocgra_mappers Ocgra_sim Ocgra_util Ocgra_workloads Pathfinder Problem

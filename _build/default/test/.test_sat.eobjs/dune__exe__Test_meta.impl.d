test/test_meta.ml: Alcotest Array Ocgra_meta Ocgra_util

test/test_smt.ml: Alcotest Array List Ocgra_sat Ocgra_smt Ocgra_util Printf QCheck QCheck_alcotest

test/test_ilp.ml: Alcotest Array Float List Ocgra_ilp Ocgra_util Printf QCheck QCheck_alcotest

test/test_fault.ml: Alcotest Array Check List Mapper Mapping Ocgra_arch Ocgra_core Ocgra_dfg Ocgra_mappers Ocgra_sim Ocgra_util Ocgra_workloads Printf Problem QCheck QCheck_alcotest String Taxonomy

test/test_biblio.ml: Alcotest Dataset List Ocgra_biblio String Table1 Timeline

test/test_cp.ml: Alcotest Array Fun List Ocgra_cp Ocgra_util Printf QCheck QCheck_alcotest

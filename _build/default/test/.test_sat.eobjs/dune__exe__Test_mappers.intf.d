test/test_mappers.mli:

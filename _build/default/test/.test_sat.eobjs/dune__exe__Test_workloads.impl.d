test/test_workloads.ml: Alcotest Array Hashtbl List Ocgra_dfg Ocgra_util Ocgra_workloads Printf QCheck QCheck_alcotest

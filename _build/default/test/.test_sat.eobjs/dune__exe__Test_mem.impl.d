test/test_mem.ml: Alcotest Array List Ocgra_arch Ocgra_core Ocgra_mappers Ocgra_mem Ocgra_util Ocgra_workloads Printf QCheck QCheck_alcotest

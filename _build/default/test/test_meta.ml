(* Meta-heuristic engine tests: convergence on easy landscapes and
   interface contracts. *)

module Sa = Ocgra_meta.Sa
module Ga = Ocgra_meta.Ga
module Qea = Ocgra_meta.Qea
module Rng = Ocgra_util.Rng

let checkb = Alcotest.check Alcotest.bool

(* onemax-like target: minimize the Hamming distance to a hidden
   pattern over int arrays *)
let hidden = Array.init 24 (fun i -> i mod 2)

let distance genome =
  let d = ref 0 in
  Array.iteri (fun i g -> if g <> hidden.(i) then incr d) genome;
  !d

let test_sa_converges () =
  let rng = Rng.create 1 in
  let init = Array.make 24 0 in
  let neighbour rng g =
    let g' = Array.copy g in
    let i = Rng.int rng 24 in
    g'.(i) <- 1 - g'.(i);
    g'
  in
  let best, cost, stats =
    Sa.run rng ~init ~neighbour ~cost:(fun g -> float_of_int (distance g))
  in
  checkb "found optimum" true (cost = 0.0 && distance best = 0);
  checkb "steps counted" true (stats.Sa.steps > 0)

let test_sa_respects_max_steps () =
  let rng = Rng.create 2 in
  let config = { Sa.default_config with max_steps = 50 } in
  let _, _, stats =
    Sa.run ~config rng ~init:0 ~neighbour:(fun rng x -> x + Rng.int_in rng (-1) 1)
      ~cost:(fun x -> float_of_int (abs (x - 1000) + 1))
  in
  checkb "bounded" true (stats.Sa.steps <= 50)

let test_ga_converges () =
  let rng = Rng.create 3 in
  let init rng = Array.init 24 (fun _ -> Rng.int rng 2) in
  let crossover rng a b =
    let cut = Rng.int rng 24 in
    Array.init 24 (fun i -> if i < cut then a.(i) else b.(i))
  in
  let mutate rng g =
    let g' = Array.copy g in
    let i = Rng.int rng 24 in
    g'.(i) <- 1 - g'.(i);
    g'
  in
  let config = { Ga.default_config with generations = 120; population = 40 } in
  let best, fit, _stats =
    Ga.run ~config ~stop_at:0.0 rng ~init ~crossover ~mutate
      ~fitness:(fun g -> -.float_of_int (distance g))
  in
  checkb "near optimum" true (fit >= -2.0);
  checkb "genome close" true (distance best <= 2)

let test_ga_elitism_monotone () =
  (* with elitism the best fitness never decreases across generations;
     we approximate by checking the final best beats a random start *)
  let rng = Rng.create 4 in
  let init rng = Array.init 24 (fun _ -> Rng.int rng 2) in
  let baseline = distance (init rng) in
  let _, fit, _ =
    Ga.run rng ~init
      ~crossover:(fun _ a _ -> a)
      ~mutate:(fun rng g ->
        let g' = Array.copy g in
        let i = Rng.int rng 24 in
        g'.(i) <- 1 - g'.(i);
        g')
      ~fitness:(fun g -> -.float_of_int (distance g))
  in
  checkb "improved over random" true (-.fit <= float_of_int baseline)

let test_qea_converges () =
  let rng = Rng.create 5 in
  let target = Array.init 20 (fun i -> i mod 3 = 0) in
  let fitness genome =
    let score = ref 0 in
    Array.iteri (fun i b -> if b = target.(i) then incr score) genome;
    float_of_int !score
  in
  let config = { Qea.default_config with generations = 150 } in
  let best, fit, evals = Qea.run ~config ~stop_at:20.0 rng ~n_bits:20 ~fitness in
  checkb "high fitness" true (fit >= 18.0);
  checkb "evaluations counted" true (evals > 0);
  checkb "genome length" true (Array.length best = 20)

let () =
  Alcotest.run "meta"
    [
      ( "sa",
        [
          Alcotest.test_case "converges on onemax" `Quick test_sa_converges;
          Alcotest.test_case "max steps respected" `Quick test_sa_respects_max_steps;
        ] );
      ( "ga",
        [
          Alcotest.test_case "converges on onemax" `Quick test_ga_converges;
          Alcotest.test_case "improves over random" `Quick test_ga_elitism_monotone;
        ] );
      ("qea", [ Alcotest.test_case "converges" `Quick test_qea_converges ]);
    ]

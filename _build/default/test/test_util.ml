(* Utility substrate tests: RNG, priority queue, bitset, union-find,
   table rendering, statistics. *)

module Rng = Ocgra_util.Rng
module Pqueue = Ocgra_util.Pqueue
module Bitset = Ocgra_util.Bitset
module Uf = Ocgra_util.Union_find
module Stats = Ocgra_util.Stats
module Table = Ocgra_util.Table

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* ---------- Rng ---------- *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    checki "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let rng = Rng.create 1 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 17 in
    checkb "in range" true (x >= 0 && x < 17);
    let y = Rng.int_in rng (-5) 5 in
    checkb "int_in range" true (y >= -5 && y <= 5);
    let f = Rng.float rng 2.5 in
    checkb "float range" true (f >= 0.0 && f < 2.5)
  done

let test_rng_split_independent () =
  let a = Rng.create 3 in
  let b = Rng.split a in
  (* both streams remain usable and differ *)
  let xs = List.init 20 (fun _ -> Rng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1_000_000) in
  checkb "streams differ" true (xs <> ys)

let qcheck_shuffle_is_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair small_int (int_range 0 50))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let arr = Array.init n (fun i -> i) in
      let shuffled = Rng.shuffle rng arr in
      List.sort compare (Array.to_list shuffled) = List.init n (fun i -> i))

let test_rng_gaussian_moments () =
  let rng = Rng.create 11 in
  let n = 20000 in
  let xs = Array.init n (fun _ -> Rng.gaussian rng) in
  let m = Stats.mean xs and sd = Stats.stddev xs in
  checkb "mean near 0" true (Float.abs m < 0.05);
  checkb "stddev near 1" true (Float.abs (sd -. 1.0) < 0.05)

(* ---------- Pqueue ---------- *)

let qcheck_pqueue_sorted =
  QCheck.Test.make ~name:"pqueue pops in priority order" ~count:300
    QCheck.(list small_int)
    (fun prios ->
      let q = Pqueue.create (-1) in
      List.iteri (fun i p -> Pqueue.push q p i) prios;
      let rec drain acc =
        match Pqueue.pop q with None -> List.rev acc | Some (p, _) -> drain (p :: acc)
      in
      drain [] = List.sort compare prios)

let test_pqueue_fifo_ties () =
  let q = Pqueue.create "" in
  Pqueue.push q 1 "a";
  Pqueue.push q 1 "b";
  Pqueue.push q 1 "c";
  let order = List.init 3 (fun _ -> snd (Pqueue.pop_exn q)) in
  Alcotest.(check (list string)) "insertion order on ties" [ "a"; "b"; "c" ] order

let test_pqueue_peek_and_clear () =
  let q = Pqueue.create 0 in
  checkb "empty" true (Pqueue.is_empty q);
  Pqueue.push q 5 50;
  Pqueue.push q 2 20;
  (match Pqueue.peek q with
  | Some (2, 20) -> ()
  | _ -> Alcotest.fail "peek should see the minimum");
  Pqueue.clear q;
  checkb "cleared" true (Pqueue.is_empty q)

(* ---------- Bitset ---------- *)

let qcheck_bitset_model =
  QCheck.Test.make ~name:"bitset behaves like a set of ints" ~count:300
    QCheck.(pair (int_range 1 200) (list (int_range 0 199)))
    (fun (cap, ops) ->
      let b = Bitset.create cap in
      let model = Hashtbl.create 16 in
      List.iter
        (fun x ->
          let x = x mod cap in
          if x land 1 = 0 then begin
            Bitset.add b x;
            Hashtbl.replace model x ()
          end
          else begin
            Bitset.remove b x;
            Hashtbl.remove model x
          end)
        ops;
      Bitset.cardinal b = Hashtbl.length model
      && List.for_all (fun x -> Hashtbl.mem model x) (Bitset.elements b))

let test_bitset_set_ops () =
  let a = Bitset.of_list 10 [ 1; 3; 5 ] and b = Bitset.of_list 10 [ 3; 5; 7 ] in
  let i = Bitset.copy a in
  Bitset.inter_into ~src:b ~dst:i;
  Alcotest.(check (list int)) "inter" [ 3; 5 ] (Bitset.elements i);
  let u = Bitset.copy a in
  Bitset.union_into ~src:b ~dst:u;
  Alcotest.(check (list int)) "union" [ 1; 3; 5; 7 ] (Bitset.elements u);
  let d = Bitset.copy a in
  Bitset.diff_into ~src:b ~dst:d;
  Alcotest.(check (list int)) "diff" [ 1 ] (Bitset.elements d);
  Alcotest.(check (option int)) "min_elt" (Some 1) (Bitset.min_elt a)

(* ---------- Union_find ---------- *)

let test_union_find () =
  let uf = Uf.create 6 in
  checki "initial components" 6 (Uf.components uf);
  Uf.union uf 0 1;
  Uf.union uf 2 3;
  Uf.union uf 0 3;
  checkb "joined" true (Uf.same uf 1 2);
  checkb "separate" false (Uf.same uf 0 5);
  checki "components" 3 (Uf.components uf)

(* ---------- Stats ---------- *)

let test_stats_known () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  checkf "mean" 5.0 (Stats.mean xs);
  checkf "median" 4.5 (Stats.median xs);
  checkf "p0 = min" 2.0 (Stats.percentile xs 0.0);
  checkf "p100 = max" 9.0 (Stats.percentile xs 100.0);
  checkf "stddev" (sqrt (32.0 /. 7.0)) (Stats.stddev xs);
  checkf "min" 2.0 (Stats.minimum xs);
  checkf "max" 9.0 (Stats.maximum xs)

let test_hbar_chart () =
  let s = Stats.hbar_chart ~width:10 [ ("a", 10.0); ("bb", 5.0); ("c", 0.0) ] in
  checkb "has full bar" true
    (String.split_on_char '\n' s |> List.exists (fun l -> String.length l > 0 && String.contains l '#'));
  checkb "labels aligned" true (String.length s > 10)

(* ---------- Table ---------- *)

let test_table_render () =
  let s =
    Table.render ~headers:[| "x"; "value" |] [ [| "a"; "1" |]; [| "long-label"; "22" |] ]
  in
  let lines = String.split_on_char '\n' s in
  checkb "has separator rows" true (List.length lines >= 6);
  (* all non-empty lines have equal width *)
  let widths =
    List.filter_map (fun l -> if l = "" then None else Some (String.length l)) lines
  in
  checkb "rectangular" true (List.for_all (fun w -> w = List.hd widths) widths)

let test_table_ragged_rejected () =
  Alcotest.check_raises "ragged row" (Invalid_argument "Table: ragged row") (fun () ->
      ignore (Table.render ~headers:[| "a"; "b" |] [ [| "only-one" |] ]))

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          QCheck_alcotest.to_alcotest qcheck_shuffle_is_permutation;
        ] );
      ( "pqueue",
        [
          QCheck_alcotest.to_alcotest qcheck_pqueue_sorted;
          Alcotest.test_case "fifo ties" `Quick test_pqueue_fifo_ties;
          Alcotest.test_case "peek/clear" `Quick test_pqueue_peek_and_clear;
        ] );
      ( "bitset",
        [
          QCheck_alcotest.to_alcotest qcheck_bitset_model;
          Alcotest.test_case "set operations" `Quick test_bitset_set_ops;
        ] );
      ("union-find", [ Alcotest.test_case "components" `Quick test_union_find ]);
      ( "stats",
        [
          Alcotest.test_case "known values" `Quick test_stats_known;
          Alcotest.test_case "hbar chart" `Quick test_hbar_chart;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "ragged rejected" `Quick test_table_ragged_rejected;
        ] );
    ]

(* Workload tests: every kernel is structurally sound and evaluable;
   the random generator produces valid, mappable-shaped DFGs. *)

module Kernels = Ocgra_workloads.Kernels
module Random_dfg = Ocgra_workloads.Random_dfg
module Dfg = Ocgra_dfg.Dfg
module Rng = Ocgra_util.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let test_all_kernels_valid () =
  List.iter
    (fun (k : Kernels.t) ->
      Alcotest.(check (list string)) (k.name ^ " valid") [] (Dfg.validate k.dfg);
      checkb (k.name ^ " dist-0 acyclic") true (Dfg.is_acyclic k.dfg))
    (Kernels.full_suite ())

let test_all_kernels_evaluate () =
  List.iter
    (fun (k : Kernels.t) ->
      let r = Kernels.eval_reference k ~iters:8 in
      List.iter
        (fun name ->
          checki
            (Printf.sprintf "%s emits %s every iteration" k.name name)
            8
            (List.length (Ocgra_dfg.Eval.output_stream r name)))
        k.outputs)
    (Kernels.full_suite ())

let test_kernel_lookup () =
  checkb "find works" true ((Kernels.find "fir4").name = "fir4");
  Alcotest.check_raises "unknown kernel"
    (Invalid_argument "Kernels.find: unknown kernel nope") (fun () ->
      ignore (Kernels.find "nope"))

let test_suites_subset () =
  let all = List.map (fun (k : Kernels.t) -> k.name) (Kernels.full_suite ()) in
  List.iter
    (fun (k : Kernels.t) -> checkb "small in full" true (List.mem k.name all))
    (Kernels.small_suite ())

let test_branch_flags () =
  checkb "running-max has branch" true (Kernels.find "running-max").Kernels.has_branch;
  checkb "fir4 has no branch" false (Kernels.find "fir4").Kernels.has_branch

let qcheck_random_dfg_valid =
  QCheck.Test.make ~name:"random DFGs are valid, acyclic and evaluable" ~count:100
    QCheck.(pair small_int (int_range 4 30))
    (fun (seed, n) ->
      let rng = Rng.create (seed * 3) in
      let params = { Random_dfg.default with nodes = n; memory_ops = false } in
      let dfg, streams = Random_dfg.generate ~params rng in
      Dfg.validate dfg = []
      && Dfg.is_acyclic dfg
      &&
      let env = Ocgra_dfg.Eval.env_of_streams (streams 4) in
      let r = Ocgra_dfg.Eval.run dfg env ~iters:4 in
      Hashtbl.length r.Ocgra_dfg.Eval.outputs > 0)

let qcheck_random_dfg_recurrences =
  QCheck.Test.make ~name:"carried probability produces recurrences" ~count:50
    QCheck.small_int
    (fun seed ->
      let rng = Rng.create (seed + 11) in
      let params = { Random_dfg.default with nodes = 16; carried_probability = 1.0 } in
      let dfg, _ = Random_dfg.generate ~params rng in
      Dfg.rec_mii dfg >= 1
      && List.exists (fun (e : Dfg.edge) -> e.dist > 0) (Dfg.edges dfg))

let test_kernel_init_values () =
  (* running-max starts from a very small init so the first element wins *)
  let k = Kernels.find "running-max" in
  let r = Kernels.eval_reference k ~iters:1 in
  match Ocgra_dfg.Eval.output_stream r "max" with
  | [ first ] ->
      let inputs = k.Kernels.inputs 1 in
      let x0 = (List.assoc "x" inputs).(0) in
      checki "first input wins" x0 first
  | _ -> Alcotest.fail "one output expected"

let () =
  Alcotest.run "workloads"
    [
      ( "kernels",
        [
          Alcotest.test_case "all valid" `Quick test_all_kernels_valid;
          Alcotest.test_case "all evaluate" `Quick test_all_kernels_evaluate;
          Alcotest.test_case "lookup" `Quick test_kernel_lookup;
          Alcotest.test_case "suites" `Quick test_suites_subset;
          Alcotest.test_case "branch flags" `Quick test_branch_flags;
          Alcotest.test_case "init values" `Quick test_kernel_init_values;
        ] );
      ( "random",
        [
          QCheck_alcotest.to_alcotest qcheck_random_dfg_valid;
          QCheck_alcotest.to_alcotest qcheck_random_dfg_recurrences;
        ] );
    ]

(* Data-mapping tests: bank model, conflict-aware placement, register
   allocation. *)

module Bank = Ocgra_mem.Bank
module Placement = Ocgra_mem.Placement
module Regalloc = Ocgra_mem.Regalloc
module Kernels = Ocgra_workloads.Kernels
module Rng = Ocgra_util.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ---------- banks ---------- *)

let test_bank_of () =
  let t = Bank.make 4 in
  checki "addr 0" 0 (Bank.bank_of t 0);
  checki "addr 5" 1 (Bank.bank_of t 5);
  let blocked = Bank.make ~interleave:16 2 in
  checki "block low" 0 (Bank.bank_of blocked 7);
  checki "block high" 1 (Bank.bank_of blocked 17)

let test_cycle_conflicts () =
  let t = Bank.make 2 in
  checki "no accesses" 0 (Bank.cycle_conflicts t []);
  checki "distinct banks" 0 (Bank.cycle_conflicts t [ 0; 1 ]);
  checki "same bank pair" 1 (Bank.cycle_conflicts t [ 0; 2 ]);
  checki "three on one bank" 2 (Bank.cycle_conflicts t [ 0; 2; 4 ])

let test_conflicts_monotone_in_banks () =
  let accesses =
    [
      (0, { Bank.array_base = 0; stride = 1; offset = 0 });
      (0, { Bank.array_base = 64; stride = 1; offset = 0 });
      (0, { Bank.array_base = 128; stride = 2; offset = 1 });
    ]
  in
  let results = Bank.conflicts_by_banks ~bank_counts:[ 1; 2; 4; 8 ] ~ii:1 ~iters:32 accesses in
  let values = List.map snd results in
  let rec nonincreasing = function
    | a :: (b :: _ as rest) -> a >= b && nonincreasing rest
    | _ -> true
  in
  checkb "more banks never hurt" true (nonincreasing values);
  checki "single bank worst" (2 * 32) (List.hd values)

(* ---------- placement ---------- *)

let arrays =
  [
    { Placement.name = "a"; size = 8; slots = [ 0 ] };
    { Placement.name = "b"; size = 8; slots = [ 0 ] };
    { Placement.name = "c"; size = 8; slots = [ 1 ] };
    { Placement.name = "d"; size = 8; slots = [ 0; 1 ] };
  ]

let test_greedy_placement_avoids_conflicts () =
  let assignment = Placement.greedy ~banks:2 arrays in
  (* a and b share slot 0: they must not share a bank when 2 banks exist *)
  checkb "a,b split" true (List.assoc "a" assignment <> List.assoc "b" assignment)

let test_ilp_at_least_as_good_as_greedy () =
  let greedy = Placement.greedy ~banks:2 arrays in
  match Placement.ilp ~banks:2 arrays with
  | Some exact ->
      checkb "ilp <= greedy" true (Placement.cost arrays exact <= Placement.cost arrays greedy)
  | None -> Alcotest.fail "small ILP should solve"

let test_single_bank_cost () =
  let all_one = List.map (fun a -> (a.Placement.name, 0)) arrays in
  (* conflicts: (a,b):1, (a,d):1, (b,d):1, (c,d):1 -> 4 *)
  checki "forced conflicts" 4 (Placement.cost arrays all_one)

let qcheck_ilp_beats_greedy =
  QCheck.Test.make ~name:"ILP placement never worse than greedy" ~count:30
    QCheck.(pair small_int (int_range 2 5))
    (fun (seed, n) ->
      let rng = Rng.create (seed + 3) in
      let arrays =
        List.init n (fun i ->
            {
              Placement.name = Printf.sprintf "arr%d" i;
              size = 8;
              slots = List.filter (fun _ -> Rng.bool rng) [ 0; 1; 2 ];
            })
      in
      let greedy = Placement.greedy ~banks:2 arrays in
      match Placement.ilp ~banks:2 arrays with
      | Some exact -> Placement.cost arrays exact <= Placement.cost arrays greedy
      | None -> QCheck.assume_fail ())

(* ---------- register allocation ---------- *)

let test_regalloc_on_mapped_kernel () =
  let k = Kernels.fir4 () in
  let cgra = Ocgra_arch.Cgra.uniform ~rows:4 ~cols:4 ~rf_size:8 () in
  let p = Ocgra_core.Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra ~max_ii:16 () in
  match Ocgra_mappers.Constructive.map p (Rng.create 7) with
  | None, _, _ -> Alcotest.fail "fir4 maps"
  | Some m, _, _ ->
      let npe = 16 in
      let rot = Regalloc.rotating_need ~ii:m.Ocgra_core.Mapping.ii m ~npe in
      let uni = Regalloc.unified_need ~ii:m.Ocgra_core.Mapping.ii m ~npe in
      (* the rotating need is what the checker already enforced *)
      Array.iter (fun need -> checkb "within rf" true (need <= 8)) rot;
      (* unified need >= rotating need per PE (colouring >= max overlap) *)
      Array.iteri (fun pe u -> checkb "unified >= rotating" true (u >= rot.(pe))) uni;
      let s = Regalloc.summarize m ~npe in
      checkb "summary consistent" true
        (s.Regalloc.max_rotating = Array.fold_left max 0 rot
        && s.Regalloc.max_unified = Array.fold_left max 0 uni)

let test_regalloc_no_holds () =
  (* a mapping with empty routes has zero register need *)
  let m = { Ocgra_core.Mapping.ii = 2; binding = [| (0, 0) |]; routes = [||] } in
  let s = Regalloc.summarize m ~npe:4 in
  checki "no holds" 0 s.Regalloc.total_holds;
  checki "no regs" 0 s.Regalloc.max_unified

let () =
  Alcotest.run "mem"
    [
      ( "banks",
        [
          Alcotest.test_case "bank_of" `Quick test_bank_of;
          Alcotest.test_case "cycle conflicts" `Quick test_cycle_conflicts;
          Alcotest.test_case "monotone in banks" `Quick test_conflicts_monotone_in_banks;
        ] );
      ( "placement",
        [
          Alcotest.test_case "greedy splits hot arrays" `Quick test_greedy_placement_avoids_conflicts;
          Alcotest.test_case "ilp vs greedy" `Quick test_ilp_at_least_as_good_as_greedy;
          Alcotest.test_case "single bank cost" `Quick test_single_bank_cost;
          QCheck_alcotest.to_alcotest qcheck_ilp_beats_greedy;
        ] );
      ( "regalloc",
        [
          Alcotest.test_case "mapped kernel" `Quick test_regalloc_on_mapped_kernel;
          Alcotest.test_case "no holds" `Quick test_regalloc_no_holds;
        ] );
    ]

(* Difference-logic SMT tests: hand cases, agreement with a
   Bellman-Ford ground truth on random systems, and boolean/theory
   interaction. *)

module Smt = Ocgra_smt.Smt
module Sat = Ocgra_sat.Solver
module Rng = Ocgra_util.Rng

let checkb = Alcotest.check Alcotest.bool

let test_feasible_chain () =
  let s = Smt.create () in
  let x = Smt.new_int s "x" and y = Smt.new_int s "y" and z = Smt.new_int s "z" in
  (* y - x >= 2, z - y >= 3, z - x <= 10 *)
  Sat.add_clause (Smt.sat_solver s) [ Smt.atom_ge s y x 2 ];
  Sat.add_clause (Smt.sat_solver s) [ Smt.atom_ge s z y 3 ];
  Sat.add_clause (Smt.sat_solver s) [ Smt.atom_le s z x 10 ];
  checkb "sat" true (Smt.solve s = Smt.Sat_);
  let vx = Smt.int_value s x and vy = Smt.int_value s y and vz = Smt.int_value s z in
  checkb "y-x>=2" true (vy - vx >= 2);
  checkb "z-y>=3" true (vz - vy >= 3);
  checkb "z-x<=10" true (vz - vx <= 10)

let test_infeasible_cycle () =
  let s = Smt.create () in
  let x = Smt.new_int s "x" and y = Smt.new_int s "y" in
  (* y - x >= 5 and x - y >= 5: negative cycle *)
  Sat.add_clause (Smt.sat_solver s) [ Smt.atom_ge s y x 5 ];
  Sat.add_clause (Smt.sat_solver s) [ Smt.atom_ge s x y 5 ];
  checkb "unsat" true (Smt.solve s = Smt.Unsat_)

let test_theory_guides_boolean () =
  let s = Smt.create () in
  let x = Smt.new_int s "x" and y = Smt.new_int s "y" in
  (* b -> (y - x >= 3);  always: x - y >= -1 (i.e. y - x <= 1);  b or c *)
  let b = Smt.new_bool s and c = Smt.new_bool s in
  let atom = Smt.atom_ge s y x 3 in
  Sat.add_clause (Smt.sat_solver s) [ Sat.negate b; atom ];
  Sat.add_clause (Smt.sat_solver s) [ Smt.atom_le s y x 1 ];
  Sat.add_clause (Smt.sat_solver s) [ b; c ];
  checkb "sat" true (Smt.solve s = Smt.Sat_);
  (* b cannot hold, so c must *)
  checkb "b false" false (Smt.bool_value s b);
  checkb "c true" true (Smt.bool_value s c)

let test_eq_constraint () =
  let s = Smt.create () in
  let x = Smt.new_int s "x" and y = Smt.new_int s "y" in
  Smt.atom_eq_clauses s x y 4;
  checkb "sat" true (Smt.solve s = Smt.Sat_);
  checkb "x = y + 4" true (Smt.int_value s x - Smt.int_value s y = 4)

(* ground truth: Bellman-Ford feasibility of a difference system *)
let feasible_ground_truth n constraints =
  (* constraints: (x, y, c) meaning value(x) - value(y) <= c *)
  let dist = Array.make n 0 in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds <= n + 1 do
    changed := false;
    incr rounds;
    List.iter
      (fun (x, y, c) ->
        if dist.(y) + c < dist.(x) then begin
          dist.(x) <- dist.(y) + c;
          changed := true
        end)
      constraints
  done;
  not !changed

let qcheck_idl_vs_bellman_ford =
  QCheck.Test.make ~name:"IDL agrees with Bellman-Ford on conjunctions" ~count:200
    QCheck.(pair small_int (int_range 2 8))
    (fun (seed, n) ->
      let rng = Rng.create (seed * 13) in
      let m = 1 + Rng.int rng (3 * n) in
      let constraints =
        List.init m (fun _ ->
            let x = Rng.int rng n and y = Rng.int rng n in
            if x = y then (x, (y + 1) mod n, Rng.int_in rng (-4) 6)
            else (x, y, Rng.int_in rng (-4) 6))
      in
      let s = Smt.create () in
      let vars = Array.init n (fun i -> Smt.new_int s (Printf.sprintf "v%d" i)) in
      List.iter
        (fun (x, y, c) ->
          Sat.add_clause (Smt.sat_solver s) [ Smt.atom_le s vars.(x) vars.(y) c ])
        constraints;
      let expected = feasible_ground_truth n constraints in
      match Smt.solve s with
      | Smt.Sat_ ->
          expected
          && List.for_all
               (fun (x, y, c) -> Smt.int_value s vars.(x) - Smt.int_value s vars.(y) <= c)
               constraints
      | Smt.Unsat_ -> not expected
      | Smt.Unknown_ -> false)

let qcheck_idl_disjunctions =
  QCheck.Test.make ~name:"IDL with disjunction picks a consistent branch" ~count:100
    QCheck.(pair small_int (int_range 2 6))
    (fun (seed, n) ->
      let rng = Rng.create (seed + 5) in
      let s = Smt.create () in
      let vars = Array.init n (fun i -> Smt.new_int s (Printf.sprintf "v%d" i)) in
      (* random chains plus one disjunctive clause of two atoms *)
      for _ = 1 to n do
        let x = Rng.int rng n and y = Rng.int rng n in
        if x <> y then
          Sat.add_clause (Smt.sat_solver s) [ Smt.atom_le s vars.(x) vars.(y) (Rng.int_in rng 0 5) ]
      done;
      let a1 = Smt.atom_le s vars.(0) vars.(n - 1) (-2) in
      let a2 = Smt.atom_ge s vars.(0) vars.(n - 1) 2 in
      Sat.add_clause (Smt.sat_solver s) [ a1; a2 ];
      match Smt.solve s with
      | Smt.Sat_ ->
          let d = Smt.int_value s vars.(0) - Smt.int_value s vars.(n - 1) in
          d <= -2 || d >= 2
      | Smt.Unsat_ -> true (* nothing to check, but must not be Unknown *)
      | Smt.Unknown_ -> false)

let () =
  Alcotest.run "smt"
    [
      ( "unit",
        [
          Alcotest.test_case "feasible chain" `Quick test_feasible_chain;
          Alcotest.test_case "negative cycle" `Quick test_infeasible_cycle;
          Alcotest.test_case "theory guides boolean" `Quick test_theory_guides_boolean;
          Alcotest.test_case "equality" `Quick test_eq_constraint;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest qcheck_idl_vs_bellman_ford;
          QCheck_alcotest.to_alcotest qcheck_idl_disjunctions;
        ] );
    ]

(* Simulator tests: end-to-end functional equivalence with the
   reference interpreter on every kernel, tag checking, and the energy
   model. *)

open Ocgra_core
module Kernels = Ocgra_workloads.Kernels
module Machine = Ocgra_sim.Machine
module Energy = Ocgra_sim.Energy
module Rng = Ocgra_util.Rng

let checkb = Alcotest.check Alcotest.bool
let cgra44 = Ocgra_arch.Cgra.uniform ~rows:4 ~cols:4 ()

let map_kernel ?(seed = 42) (k : Kernels.t) =
  let p = Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra:cgra44 ~max_ii:16 () in
  match Ocgra_mappers.Constructive.map p (Rng.create seed) with
  | Some m, _, _ -> (p, m)
  | None, _, _ -> Alcotest.fail ("cannot map " ^ k.name)

let test_all_kernels_simulate_correctly () =
  List.iter
    (fun (k : Kernels.t) ->
      let p, m = map_kernel k in
      let iters = 11 in
      let io = Machine.io_of_streams ~memory:k.memory (k.inputs iters) in
      let result = Machine.run p m io ~iters in
      let reference = Kernels.eval_reference k ~iters in
      List.iter
        (fun name ->
          Alcotest.(check (list int))
            (Printf.sprintf "%s output %s" k.name name)
            (Ocgra_dfg.Eval.output_stream reference name)
            (Machine.output_stream result name))
        k.outputs)
    (Kernels.full_suite ())

let test_simulation_across_seeds () =
  (* different mappings of the same kernel produce identical streams *)
  let k = Kernels.fir4 () in
  let run seed =
    let p, m = map_kernel ~seed k in
    let io = Machine.io_of_streams ~memory:k.memory (k.inputs 9) in
    Machine.output_stream (Machine.run p m io ~iters:9) "y"
  in
  Alcotest.(check (list int)) "seed 1 = seed 2" (run 1) (run 2);
  Alcotest.(check (list int)) "seed 2 = seed 3" (run 2) (run 3)

let test_tag_check_catches_corruption () =
  let k = Kernels.fir4 () in
  let p, m = map_kernel k in
  (* shift one route hop in space: the read tag no longer matches *)
  let corrupted = { m with Mapping.routes = Array.copy m.Mapping.routes } in
  let idx = ref (-1) in
  Array.iteri
    (fun i r ->
      if !idx < 0 && List.exists (function Mapping.Hop _ -> true | _ -> false) r then idx := i)
    corrupted.Mapping.routes;
  if !idx >= 0 then begin
    corrupted.Mapping.routes.(!idx) <-
      List.map
        (function
          | Mapping.Hop { pe; time } -> Mapping.Hop { pe = (pe + 5) mod 16; time }
          | s -> s)
        corrupted.Mapping.routes.(!idx);
    let io = Machine.io_of_streams ~memory:k.memory (k.inputs 6) in
    let raised =
      try
        ignore (Machine.run p corrupted io ~iters:6);
        false
      with Machine.Simulation_error _ -> true
    in
    checkb "simulation error raised" true raised
  end

let test_stats_sanity () =
  let k = Kernels.dot_product () in
  let p, m = map_kernel k in
  let iters = 10 in
  let io = Machine.io_of_streams ~memory:k.memory (k.inputs iters) in
  let r = Machine.run p m io ~iters in
  let s = r.Machine.stats in
  Alcotest.(check int) "op instances = ops * iters"
    (Ocgra_dfg.Dfg.node_count k.dfg * iters)
    s.Machine.op_instances;
  checkb "cycles >= iters * ii" true (s.Machine.cycles >= iters * m.Mapping.ii);
  checkb "active <= cycles * npe" true (s.Machine.pe_active_cycles <= s.Machine.cycles * 16)

let test_energy_model_properties () =
  let k = Kernels.fir4 () in
  let p, m = map_kernel k in
  let io = Machine.io_of_streams ~memory:k.memory (k.inputs 8) in
  let r = Machine.run p m io ~iters:8 in
  let e16 = Energy.of_mapping_run k.dfg ~npe:16 ~iters:8 r.Machine.stats in
  let e64 = Energy.of_mapping_run k.dfg ~npe:64 ~iters:8 r.Machine.stats in
  checkb "positive" true (e16 > 0.0);
  checkb "more PEs leak more" true (e64 > e16);
  checkb "mul costs more than alu" true
    (Energy.op_energy Energy.default (Ocgra_dfg.Op.Binop Ocgra_dfg.Op.Mul)
    > Energy.op_energy Energy.default (Ocgra_dfg.Op.Binop Ocgra_dfg.Op.Add))

let test_single_pe_simulation () =
  (* everything serialises onto one PE and still computes correctly *)
  let k = Kernels.matvec2 () in
  let cgra = Ocgra_arch.Cgra.single_pe () in
  let p = Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra ~max_ii:40 () in
  match Ocgra_mappers.Constructive.map ~restarts:12 p (Rng.create 2) with
  | None, _, _ -> Alcotest.fail "single PE should map matvec2"
  | Some m, _, _ ->
      let iters = 7 in
      let io = Machine.io_of_streams ~memory:k.memory (k.inputs iters) in
      let r = Machine.run p m io ~iters in
      let reference = Kernels.eval_reference k ~iters in
      Alcotest.(check (list int)) "acc stream"
        (Ocgra_dfg.Eval.output_stream reference "acc")
        (Machine.output_stream r "acc")

let () =
  Alcotest.run "sim"
    [
      ( "functional",
        [
          Alcotest.test_case "all kernels match the interpreter" `Quick
            test_all_kernels_simulate_correctly;
          Alcotest.test_case "mapping-independent results" `Quick test_simulation_across_seeds;
          Alcotest.test_case "single PE" `Quick test_single_pe_simulation;
        ] );
      ( "machine",
        [
          Alcotest.test_case "tag checking" `Quick test_tag_check_catches_corruption;
          Alcotest.test_case "stats sanity" `Quick test_stats_sanity;
        ] );
      ("energy", [ Alcotest.test_case "model properties" `Quick test_energy_model_properties ]);
    ]

(* End-to-end integration: mini-language source -> middle-end passes ->
   mapping -> configuration contexts -> cycle-accurate simulation, all
   checked against the interpreter; plus the predication and
   architecture-class flows. *)

module P = Ocgra_dfg.Prog_ast
module Op = Ocgra_dfg.Op
module Dfg = Ocgra_dfg.Dfg
module Prog = Ocgra_dfg.Prog
module Eval = Ocgra_dfg.Eval
module Rng = Ocgra_util.Rng

let checkb = Alcotest.check Alcotest.bool

let cgra44 = Ocgra_arch.Cgra.uniform ~rows:4 ~cols:4 ()

(* Full flow: source -> kernel DFG -> CSE/DCE -> map -> simulate. *)
let test_source_to_cycles () =
  let body =
    [
      P.Assign ("t", P.Bin (Op.Mul, P.Read ("A", P.Var "i"), P.Read ("A", P.Var "i")));
      P.Assign ("acc", P.Bin (Op.Add, P.Var "acc", P.Var "t"));
      P.Emit ("acc", P.Var "acc");
    ]
  in
  let kernel = Prog.loop_body_dfg ~init:[ ("acc", 0) ] ~ivar:"i" ~lo:0 body in
  let dfg = Ocgra_dfg.Transform.dce (Ocgra_dfg.Transform.cse kernel.Prog.dfg) in
  Alcotest.(check (list string)) "valid after passes" [] (Dfg.validate dfg);
  (* note: passes drop dead nodes, so re-derive init conservatively: the
     only carried values are acc (init 0) and i (init 0) *)
  let p = Ocgra_core.Problem.temporal ~init:(fun _ -> 0) ~dfg ~cgra:cgra44 () in
  match Ocgra_mappers.Constructive.map p (Rng.create 9) with
  | None, _, _ -> Alcotest.fail "sum-of-squares should map"
  | Some m, _, _ ->
      Alcotest.(check (list string)) "mapping valid" [] (Ocgra_core.Check.validate p m);
      let iters = 6 in
      let memory = [ ("A", Array.init 16 (fun i -> i - 2)) ] in
      let streams = [ ("i", Array.init iters (fun i -> i)) ] in
      let io = Ocgra_sim.Machine.io_of_streams ~memory streams in
      let result = Ocgra_sim.Machine.run p m io ~iters in
      let env = Eval.env_of_streams ~memory streams in
      let reference = Eval.run ~init:(fun _ -> 0) dfg env ~iters in
      Alcotest.(check (list int)) "acc stream"
        (Eval.output_stream reference "acc")
        (Ocgra_sim.Machine.output_stream result "acc")

(* Predicated branch through the whole flow. *)
let test_predicated_branch_flow () =
  let ite =
    {
      Ocgra_cf.Predication.cond = P.Bin (Op.Lt, P.Var "x", P.Int 0);
      then_branch = [ ("y", P.Neg (P.Var "x")) ];
      else_branch = [ ("y", P.Var "x") ];
    }
  in
  List.iter
    (fun scheme ->
      let dfg = Ocgra_cf.Predication.to_dfg scheme ite in
      let p = Ocgra_core.Problem.temporal ~dfg ~cgra:cgra44 () in
      match Ocgra_mappers.Constructive.map p (Rng.create 4) with
      | None, _, _ ->
          Alcotest.fail (Ocgra_cf.Predication.scheme_to_string scheme ^ " should map")
      | Some m, _, _ ->
          let iters = 6 in
          let xs = [| 3; -4; 0; -1; 7; -9 |] in
          let io = Ocgra_sim.Machine.io_of_streams [ ("x", xs) ] in
          let result = Ocgra_sim.Machine.run p m io ~iters in
          Alcotest.(check (list int))
            (Ocgra_cf.Predication.scheme_to_string scheme ^ " |x|")
            [ 3; 4; 0; 1; 7; 9 ]
            (Ocgra_sim.Machine.output_stream result "y"))
    Ocgra_cf.Predication.all_schemes

(* Heterogeneous array: memory ops confined to the first column. *)
let test_heterogeneous_flow () =
  let k = Ocgra_workloads.Kernels.sobel_row () in
  let cgra = Ocgra_arch.Cgra.adres_like ~rows:4 ~cols:4 () in
  let p = Ocgra_core.Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra ~max_ii:16 () in
  match Ocgra_mappers.Constructive.map ~restarts:16 p (Rng.create 6) with
  | None, _, _ -> Alcotest.fail "sobel maps on adres-like"
  | Some m, _, _ ->
      (* every memory op sits in column 0 *)
      Dfg.iter_nodes
        (fun nd ->
          match nd.Dfg.op with
          | Op.Load _ | Op.Store _ | Op.Input _ | Op.Output _ ->
              let pe, _ = m.Ocgra_core.Mapping.binding.(nd.id) in
              let _, col = Ocgra_arch.Cgra.coords cgra pe in
              Alcotest.(check int) "mem/io in column 0" 0 col
          | _ -> ())
        k.dfg;
      let iters = 8 in
      let io = Ocgra_sim.Machine.io_of_streams ~memory:k.memory (k.inputs iters) in
      let result = Ocgra_sim.Machine.run p m io ~iters in
      let reference = Ocgra_workloads.Kernels.eval_reference k ~iters in
      Alcotest.(check (list int)) "edge stream"
        (Eval.output_stream reference "edge")
        (Ocgra_sim.Machine.output_stream result "edge")

(* Spatial pipeline end-to-end on a balanced kernel. *)
let test_spatial_flow () =
  let k = Ocgra_workloads.Kernels.saxpy () in
  let cgra = Ocgra_arch.Cgra.uniform ~topology:Ocgra_arch.Topology.Diagonal ~rows:4 ~cols:4 () in
  let p = Ocgra_core.Problem.spatial ~init:k.init ~dfg:k.dfg ~cgra () in
  match Ocgra_mappers.Constructive.map ~restarts:24 p (Rng.create 2) with
  | None, _, _ -> Alcotest.fail "saxpy spatial"
  | Some m, _, _ ->
      checkb "ii is 1" true (m.Ocgra_core.Mapping.ii = 1);
      (* every PE used at most once overall *)
      let used = Hashtbl.create 16 in
      Array.iter
        (fun (pe, _) ->
          checkb "one op per PE" false (Hashtbl.mem used pe);
          Hashtbl.replace used pe ())
        m.Ocgra_core.Mapping.binding;
      let iters = 10 in
      let io = Ocgra_sim.Machine.io_of_streams ~memory:k.memory (k.inputs iters) in
      let result = Ocgra_sim.Machine.run p m io ~iters in
      let reference = Ocgra_workloads.Kernels.eval_reference k ~iters in
      Alcotest.(check (list int)) "spatial saxpy"
        (Eval.output_stream reference "out")
        (Ocgra_sim.Machine.output_stream result "out")

(* Contexts of a mapped kernel round-trip through the bit encoding. *)
let test_contexts_bit_roundtrip () =
  let k = Ocgra_workloads.Kernels.matvec2 () in
  let p = Ocgra_core.Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra:cgra44 () in
  match Ocgra_mappers.Constructive.map p (Rng.create 3) with
  | None, _, _ -> Alcotest.fail "matvec2 maps"
  | Some m, _, _ ->
      let build = Ocgra_core.Contexts.of_mapping p m in
      let words = Ocgra_core.Contexts.encode build in
      Array.iteri
        (fun c row ->
          Array.iteri
            (fun pe w ->
              checkb "slot roundtrip" true
                (Ocgra_arch.Context.decode_slot w = build.Ocgra_core.Contexts.contexts.(c).(pe)))
            row)
        words

let () =
  Alcotest.run "integration"
    [
      ( "flows",
        [
          Alcotest.test_case "source to cycles" `Quick test_source_to_cycles;
          Alcotest.test_case "predicated branch" `Quick test_predicated_branch_flow;
          Alcotest.test_case "heterogeneous array" `Quick test_heterogeneous_flow;
          Alcotest.test_case "spatial pipeline" `Quick test_spatial_flow;
          Alcotest.test_case "context bit roundtrip" `Quick test_contexts_bit_roundtrip;
        ] );
    ]

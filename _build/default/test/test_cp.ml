(* Constraint solver tests: n-queens counts, constraint filtering,
   optimization, and brute-force agreement on random binary CSPs. *)

module Cp = Ocgra_cp.Solver
module Rng = Ocgra_util.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ---------- n-queens ---------- *)

let queens n =
  let cp = Cp.create () in
  let cols = Array.init n (fun i -> Cp.range_var ~name:(Printf.sprintf "q%d" i) cp 0 (n - 1)) in
  Cp.all_different cp (Array.to_list cols);
  (* diagonals via offset variables: q_i + i and q_i - i + n all different *)
  let diag1 = Array.init n (fun _ -> Cp.range_var cp 0 (2 * n)) in
  let diag2 = Array.init n (fun _ -> Cp.range_var cp 0 (2 * n)) in
  Array.iteri (fun i d -> Cp.eq_offset cp d cols.(i) i) diag1;
  Array.iteri (fun i d -> Cp.eq_offset cp d cols.(i) (n - i)) diag2;
  Cp.all_different cp (Array.to_list diag1);
  Cp.all_different cp (Array.to_list diag2);
  cp

let test_queens_counts () =
  checki "4-queens" 2 (Cp.count_solutions (queens 4));
  checki "5-queens" 10 (Cp.count_solutions (queens 5));
  checki "6-queens" 4 (Cp.count_solutions (queens 6))

let test_queens_solution_valid () =
  match Cp.solve (queens 8) with
  | None -> Alcotest.fail "8-queens should be satisfiable"
  | Some sol ->
      let q = Array.sub sol 0 8 in
      for i = 0 to 7 do
        for j = i + 1 to 7 do
          checkb "no attack" true (q.(i) <> q.(j) && abs (q.(i) - q.(j)) <> j - i)
        done
      done

(* ---------- individual constraints ---------- *)

let test_not_equal_propagation () =
  let cp = Cp.create () in
  let a = Cp.new_var cp [ 3 ] and b = Cp.range_var cp 2 4 in
  Cp.not_equal cp a b;
  match Cp.solve cp with
  | None -> Alcotest.fail "satisfiable"
  | Some sol -> checkb "b avoids 3" true (sol.(b) <> 3)

let test_linear_le_bounds () =
  let cp = Cp.create () in
  let x = Cp.range_var cp 0 9 and y = Cp.range_var cp 0 9 in
  (* 2x + 3y <= 6 and x + y >= 2 (as -x -y <= -2) *)
  Cp.linear_le cp [ (2, x); (3, y) ] 6;
  Cp.linear_le cp [ (-1, x); (-1, y) ] (-2);
  let count = Cp.count_solutions cp in
  (* enumerate by hand: (0,2) (2,0) (3,0) (1,... 2+3y<=4 -> y=0 no (sum<2 fails for (1,0)), y= (1,1): 2+3=5<=6 ok sum 2 ok *)
  let expected =
    List.length
      (List.concat_map
         (fun x ->
           List.filter (fun y -> (2 * x) + (3 * y) <= 6 && x + y >= 2) (List.init 10 Fun.id))
         (List.init 10 Fun.id))
  in
  checki "solution count" expected count

let test_linear_eq () =
  let cp = Cp.create () in
  let x = Cp.range_var cp 0 5 and y = Cp.range_var cp 0 5 in
  Cp.linear_eq cp [ (1, x); (1, y) ] 5;
  checki "x+y=5 over 0..5" 6 (Cp.count_solutions cp)

let test_table_constraint () =
  let cp = Cp.create () in
  let x = Cp.range_var cp 0 3 and y = Cp.range_var cp 0 3 in
  Cp.table cp [ x; y ] [ [| 0; 1 |]; [| 1; 2 |]; [| 2; 3 |] ];
  checki "table rows" 3 (Cp.count_solutions cp);
  (* add x >= 1: two rows left *)
  Cp.linear_le cp [ (-1, x) ] (-1);
  checki "filtered" 2 (Cp.count_solutions cp)

let test_eq_offset_chain () =
  let cp = Cp.create () in
  let x = Cp.range_var cp 0 10 and y = Cp.range_var cp 0 10 and z = Cp.range_var cp 0 10 in
  Cp.eq_offset cp y x 2;
  Cp.eq_offset cp z y 3;
  Cp.linear_le cp [ (1, x) ] 0;
  (* x <= 0 -> x=0, y=2, z=5 *)
  match Cp.solve cp with
  | Some sol ->
      checki "x" 0 sol.(x);
      checki "y" 2 sol.(y);
      checki "z" 5 sol.(z)
  | None -> Alcotest.fail "satisfiable"

let test_all_different_pigeonhole () =
  let cp = Cp.create () in
  let vars = List.init 4 (fun _ -> Cp.range_var cp 0 2) in
  Cp.all_different cp vars;
  checkb "4 pigeons, 3 holes" true (Cp.solve cp = None)

let test_minimize () =
  let cp = Cp.create () in
  let x = Cp.range_var cp 0 9 and y = Cp.range_var cp 0 9 in
  (* x + y >= 7; minimize x *)
  Cp.linear_le cp [ (-1, x); (-1, y) ] (-7);
  (match Cp.minimize cp x with
  | Some (best, sol) ->
      checki "min x" 0 best;
      checkb "constraint holds" true (sol.(x) + sol.(y) >= 7)
  | None -> Alcotest.fail "feasible");
  (* now force x >= 3 and minimize again *)
  Cp.linear_le cp [ (-1, x) ] (-3);
  match Cp.minimize cp x with
  | Some (best, _) -> checki "min x with bound" 3 best
  | None -> Alcotest.fail "feasible"

(* ---------- random binary CSPs vs brute force ---------- *)

let qcheck_random_csp =
  QCheck.Test.make ~name:"random binary CSPs agree with brute force" ~count:150
    QCheck.(pair small_int (int_range 2 5))
    (fun (seed, n) ->
      let rng = Rng.create (seed * 7) in
      let dom = 1 + Rng.int rng 4 in
      (* random forbidden pairs between random variable pairs *)
      let constraints =
        List.init (1 + Rng.int rng 6) (fun _ ->
            let a = Rng.int rng n and b = Rng.int rng n in
            if a = b then None
            else
              Some
                ( a,
                  b,
                  List.filter
                    (fun (_, _) -> true)
                    (List.concat_map
                       (fun x ->
                         List.filter_map
                           (fun y -> if Rng.float rng 1.0 < 0.5 then Some (x, y) else None)
                           (List.init dom Fun.id))
                       (List.init dom Fun.id)) ))
        |> List.filter_map Fun.id
      in
      let cp = Cp.create () in
      let vars = Array.init n (fun _ -> Cp.range_var cp 0 (dom - 1)) in
      List.iter
        (fun (a, b, allowed) ->
          Cp.table cp [ vars.(a); vars.(b) ] (List.map (fun (x, y) -> [| x; y |]) allowed))
        constraints;
      (* brute force count *)
      let rec brute assignment i =
        if i = n then begin
          let ok =
            List.for_all
              (fun (a, b, allowed) -> List.mem (assignment.(a), assignment.(b)) allowed)
              constraints
          in
          if ok then 1 else 0
        end
        else begin
          let total = ref 0 in
          for v = 0 to dom - 1 do
            assignment.(i) <- v;
            total := !total + brute assignment (i + 1)
          done;
          !total
        end
      in
      let expected = brute (Array.make n 0) 0 in
      Cp.count_solutions cp = expected)

let () =
  Alcotest.run "cp"
    [
      ( "queens",
        [
          Alcotest.test_case "solution counts" `Quick test_queens_counts;
          Alcotest.test_case "8-queens valid" `Quick test_queens_solution_valid;
        ] );
      ( "constraints",
        [
          Alcotest.test_case "not_equal" `Quick test_not_equal_propagation;
          Alcotest.test_case "linear_le" `Quick test_linear_le_bounds;
          Alcotest.test_case "linear_eq" `Quick test_linear_eq;
          Alcotest.test_case "table" `Quick test_table_constraint;
          Alcotest.test_case "eq_offset" `Quick test_eq_offset_chain;
          Alcotest.test_case "all_different pigeonhole" `Quick test_all_different_pigeonhole;
          Alcotest.test_case "minimize" `Quick test_minimize;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest qcheck_random_csp ]);
    ]

(* Extension features: PathFinder-style negotiated routing, the affine
   loop-nest transformer, and the negotiated fallback in Finalize. *)

open Ocgra_core
module Nest = Ocgra_cf.Nest
module Kernels = Ocgra_workloads.Kernels
module Rng = Ocgra_util.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let cgra44 = Ocgra_arch.Cgra.uniform ~rows:4 ~cols:4 ()

(* ---------- pathfinder ---------- *)

let test_pathfinder_routes_valid_binding () =
  (* take a heuristic mapping's binding, discard its routes, and ask
     the negotiated router to recover a valid full mapping *)
  List.iter
    (fun (k : Kernels.t) ->
      let p = Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra:cgra44 ~max_ii:16 () in
      match Ocgra_mappers.Constructive.map p (Rng.create 11) with
      | None, _, _ -> Alcotest.fail ("cannot map " ^ k.name)
      | Some m, _, _ -> (
          match Pathfinder.route_all p ~ii:m.Mapping.ii m.Mapping.binding ~max_iters:12 with
          | None -> Alcotest.fail (k.name ^ ": pathfinder failed on a routable binding")
          | Some m' ->
              Alcotest.(check (list string)) (k.name ^ " negotiated valid") []
                (Check.validate p m')))
    [ Kernels.dot_product (); Kernels.fir4 (); Kernels.cmac () ]

let test_pathfinder_rejects_impossible () =
  (* two dependent ops on disconnected... no disconnected topologies
     here; instead: consumer scheduled before its producer *)
  let k = Kernels.saxpy () in
  let p = Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra:cgra44 ~max_ii:4 () in
  let n = Ocgra_dfg.Dfg.node_count k.dfg in
  (* all ops at cycle 0 on distinct PEs: every dependence would need to
     arrive before it is produced *)
  let binding = Array.init n (fun v -> (v, 0)) in
  checkb "impossible binding rejected" true
    (Pathfinder.route_all p ~ii:4 binding ~max_iters:8 = None)

let test_finalize_negotiated_fallback () =
  (* the fallback path in Finalize accepts bindings that strict
     sequential routing also accepts, and never produces invalid maps *)
  let k = Kernels.matvec2 () in
  let p = Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra:cgra44 ~max_ii:8 () in
  match Ocgra_mappers.Constructive.map p (Rng.create 3) with
  | None, _, _ -> Alcotest.fail "matvec2 maps"
  | Some m, _, _ -> (
      match Ocgra_mappers.Finalize.of_binding p ~ii:m.Mapping.ii m.Mapping.binding with
      | None -> Alcotest.fail "finalize on a known-good binding"
      | Some m' -> Alcotest.(check (list string)) "valid" [] (Check.validate p m'))

let test_finalize_rejects_illegal_binding () =
  let k = Kernels.saxpy () in
  let p = Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra:cgra44 ~max_ii:4 () in
  let n = Ocgra_dfg.Dfg.node_count k.dfg in
  (* everyone stacked on the same (pe, slot) *)
  let binding = Array.init n (fun _ -> (0, 0)) in
  checkb "illegal binding" true (Ocgra_mappers.Finalize.of_binding p ~ii:2 binding = None)

(* pathfinder-recovered mappings also execute correctly *)
let test_pathfinder_simulates_correctly () =
  let k = Kernels.fir4 () in
  let p = Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra:cgra44 ~max_ii:16 () in
  match Ocgra_mappers.Constructive.map p (Rng.create 11) with
  | None, _, _ -> Alcotest.fail "fir4 maps"
  | Some m, _, _ -> (
      match Pathfinder.route_all p ~ii:m.Mapping.ii m.Mapping.binding ~max_iters:12 with
      | None -> Alcotest.fail "pathfinder"
      | Some m' ->
          let iters = 9 in
          let io = Ocgra_sim.Machine.io_of_streams ~memory:k.memory (k.inputs iters) in
          let result = Ocgra_sim.Machine.run p m' io ~iters in
          let reference = Kernels.eval_reference k ~iters in
          Alcotest.(check (list int)) "negotiated routes compute the same stream"
            (Ocgra_dfg.Eval.output_stream reference "y")
            (Ocgra_sim.Machine.output_stream result "y"))

(* ---------- affine nest transformation ---------- *)

let test_nest_wavefront () =
  (* classic stencil deps {(1,0),(0,1)}: the (0,1) recurrence pins the
     inner II at the latency no matter the transformation *)
  let deps = [ { Nest.d_outer = 1; d_inner = 0; latency = 2 }; { Nest.d_outer = 0; d_inner = 1; latency = 2 } ] in
  match Nest.best deps with
  | Some (mii, _) -> checki "pinned by (0,1)" 2 mii
  | None -> Alcotest.fail "legal transforms exist"

let test_nest_skew_unlocks_pipelining () =
  (* dep (1,-1) with latency 3: legal as-is but the inner loop cannot
     be pipelined after interchange; skewing by 1 turns it into (1,0),
     freeing the inner loop entirely (II bound 1) *)
  let deps = [ { Nest.d_outer = 1; d_inner = -1; latency = 3 } ] in
  (* identity already leaves the inner loop free (outer-carried) *)
  checki "identity bound" 1 (Nest.inner_rec_mii Nest.Identity deps);
  (* interchange would give (-1,1): illegal *)
  checkb "interchange illegal" false (Nest.legal Nest.Interchange deps);
  match Nest.best deps with
  | Some (mii, _) -> checki "best bound" 1 mii
  | None -> Alcotest.fail "feasible"

let test_nest_interchange_wins () =
  (* dep (0,2) lat 4: inner bound ceil(4/2)=2; interchanged it becomes
     (2,0): outer-carried, bound 1 *)
  let deps = [ { Nest.d_outer = 0; d_inner = 2; latency = 4 } ] in
  checki "identity" 2 (Nest.inner_rec_mii Nest.Identity deps);
  checkb "interchange legal" true (Nest.legal Nest.Interchange deps);
  match Nest.best deps with
  | Some (mii, t) ->
      checki "after transform" 1 mii;
      checkb "transform moves the dep outward" true (Nest.inner_rec_mii t deps = 1)
  | None -> Alcotest.fail "feasible"

let test_nest_legality () =
  (* (0,-1) is lexicographically negative: nothing legal can keep it *)
  let deps = [ { Nest.d_outer = 0; d_inner = -1; latency = 1 } ] in
  checkb "identity illegal" false (Nest.legal Nest.Identity deps);
  (* (1, anything) stays legal under skew *)
  let deps2 = [ { Nest.d_outer = 1; d_inner = -5; latency = 1 } ] in
  checkb "skew keeps legality" true (Nest.legal (Nest.Skew 3) deps2)

let test_nest_report_shape () =
  let deps = [ { Nest.d_outer = 1; d_inner = 1; latency = 2 } ] in
  let report = Nest.report deps in
  checki "all candidates" (List.length Nest.candidate_transforms) (List.length report);
  checkb "identity present and legal" true
    (List.exists (fun (t, ok, _) -> t = Nest.Identity && ok) report)

(* ---------- new kernels through the whole stack ---------- *)

let test_new_kernels_end_to_end () =
  List.iter
    (fun name ->
      let k = Kernels.find name in
      let p = Problem.temporal ~init:k.init ~dfg:k.dfg ~cgra:cgra44 ~max_ii:16 () in
      match Ocgra_mappers.Constructive.map p (Rng.create 8) with
      | None, _, _ -> Alcotest.fail (name ^ " should map")
      | Some m, _, _ ->
          let iters = 9 in
          let io = Ocgra_sim.Machine.io_of_streams ~memory:k.memory (k.inputs iters) in
          let result = Ocgra_sim.Machine.run p m io ~iters in
          let reference = Kernels.eval_reference k ~iters in
          List.iter
            (fun o ->
              Alcotest.(check (list int))
                (name ^ " output " ^ o)
                (Ocgra_dfg.Eval.output_stream reference o)
                (Ocgra_sim.Machine.output_stream result o))
            k.outputs)
    [ "cmac"; "moving-avg3"; "alpha-blend"; "conv3-store" ]

let () =
  Alcotest.run "extensions"
    [
      ( "pathfinder",
        [
          Alcotest.test_case "routes valid bindings" `Quick test_pathfinder_routes_valid_binding;
          Alcotest.test_case "rejects impossible" `Quick test_pathfinder_rejects_impossible;
          Alcotest.test_case "finalize fallback" `Quick test_finalize_negotiated_fallback;
          Alcotest.test_case "finalize legality gate" `Quick test_finalize_rejects_illegal_binding;
          Alcotest.test_case "negotiated routes simulate" `Quick test_pathfinder_simulates_correctly;
        ] );
      ( "affine nest",
        [
          Alcotest.test_case "wavefront" `Quick test_nest_wavefront;
          Alcotest.test_case "skew unlocks" `Quick test_nest_skew_unlocks_pipelining;
          Alcotest.test_case "interchange wins" `Quick test_nest_interchange_wins;
          Alcotest.test_case "legality" `Quick test_nest_legality;
          Alcotest.test_case "report" `Quick test_nest_report_shape;
        ] );
      ( "new kernels",
        [ Alcotest.test_case "end to end" `Quick test_new_kernels_end_to_end ] );
    ]

(* Energy proxy model.

   The Fig. 1 comparison (flexibility / performance / energy-efficiency
   trade-off between architecture classes) needs an energy accounting
   that is consistent across architectures rather than absolutely
   calibrated: per-event costs are in arbitrary "energy units" with
   relative magnitudes taken from the usual CMOS folklore (a multiply
   costs several adds, a memory access costs more than an ALU op, every
   live cycle pays configuration-fetch and leakage). *)

open Ocgra_dfg

type model = {
  alu_op : float;
  mul_op : float;
  mem_op : float;
  io_op : float;
  route_hop : float;
  rf_access : float;
  config_fetch_per_pe : float; (* per active PE per cycle *)
  leakage_per_pe : float; (* per PE per cycle, active or not *)
}

let default =
  {
    alu_op = 1.0;
    mul_op = 4.0;
    mem_op = 6.0;
    io_op = 2.0;
    route_hop = 0.6;
    rf_access = 1.2; (* every value parked in a register file pays write+read;
                        on a single temporal PE *all* forwarding goes this way,
                        which is the sequential processor's energy tax *)
    config_fetch_per_pe = 0.4;
    leakage_per_pe = 0.02;
  }

let op_energy model op =
  match Op.func_class op with
  | Op.F_alu -> model.alu_op
  | Op.F_mul -> model.mul_op
  | Op.F_mem -> model.mem_op
  | Op.F_io -> model.io_op
  | Op.F_route -> model.route_hop

(* Energy of a simulated run on a given array size. *)
let of_run ?(model = default) ~npe (stats : Machine.stats) =
  let dynamic =
    (* op mix is not in the stats; approximate with the ALU cost and add
       the route/rf events exactly *)
    (model.alu_op *. float_of_int stats.Machine.op_instances)
    +. (model.route_hop *. float_of_int stats.route_instances)
    +. (model.rf_access *. float_of_int (stats.rf_reads + stats.rf_writes))
    +. (model.config_fetch_per_pe *. float_of_int stats.pe_active_cycles)
  in
  let static = model.leakage_per_pe *. float_of_int (npe * stats.cycles) in
  dynamic +. static

(* Exact op-mix energy from the DFG and iteration count. *)
let of_mapping_run ?(model = default) (dfg : Dfg.t) ~npe ~iters (stats : Machine.stats) =
  let ops =
    Dfg.fold_nodes (fun nd acc -> acc +. op_energy model nd.Dfg.op) dfg 0.0 *. float_of_int iters
  in
  ops
  +. (model.route_hop *. float_of_int stats.Machine.route_instances)
  +. (model.rf_access *. float_of_int (stats.rf_reads + stats.rf_writes))
  +. (model.config_fetch_per_pe *. float_of_int stats.pe_active_cycles)
  +. (model.leakage_per_pe *. float_of_int (npe * stats.cycles))

(* Throughput in iterations per cycle and efficiency in iterations per
   energy unit: the two axes of the Fig. 1 reproduction. *)
let efficiency ~energy ~iters = float_of_int iters /. energy
let throughput ~cycles ~iters = float_of_int iters /. float_of_int cycles

lib/sim/energy.ml: Dfg Machine Ocgra_dfg Op

lib/sim/energy.mli: Machine Ocgra_dfg

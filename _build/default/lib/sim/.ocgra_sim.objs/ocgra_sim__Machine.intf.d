lib/sim/machine.mli: Hashtbl Ocgra_core

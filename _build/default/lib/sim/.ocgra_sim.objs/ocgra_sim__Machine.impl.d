lib/sim/machine.ml: Array Dfg Eval Hashtbl List Mapping Ocgra_arch Ocgra_core Ocgra_dfg Op Option Printf Problem

(** Energy proxy model for the Fig. 1-style architecture comparisons:
    per-event costs in arbitrary units with CMOS-folklore relative
    magnitudes; consistent across architectures rather than absolutely
    calibrated. *)

type model = {
  alu_op : float;
  mul_op : float;
  mem_op : float;
  io_op : float;
  route_hop : float;
  rf_access : float;
  config_fetch_per_pe : float;  (** per active PE per cycle *)
  leakage_per_pe : float;  (** per PE per cycle, active or not *)
}

val default : model
val op_energy : model -> Ocgra_dfg.Op.t -> float

(** Energy of a simulated run, approximating the op mix as ALU. *)
val of_run : ?model:model -> npe:int -> Machine.stats -> float

(** Exact op-mix energy from the DFG and iteration count. *)
val of_mapping_run : ?model:model -> Ocgra_dfg.Dfg.t -> npe:int -> iters:int -> Machine.stats -> float

val efficiency : energy:float -> iters:int -> float
val throughput : cycles:int -> iters:int -> float

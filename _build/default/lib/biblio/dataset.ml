(* The survey's corpus: the CGRA-mapping publications cited by the
   paper, as structured records.  Reference numbers ([12]..[74]) follow
   the paper's bibliography; scope/technique tags transcribe Table I;
   topic tags transcribe the Fig. 4 annotations (modulo scheduling,
   predication styles, memory awareness, hardware loops, ...).

   Table I and the Fig. 4 timeline are *generated* from this data (see
   Table1 and Timeline), and the unit tests assert that the generated
   Table I cells reproduce the paper's exactly. *)

type scope = S_spatial | S_temporal | S_binding | S_scheduling

type technique =
  | T_heuristic
  | T_ga
  | T_sa
  | T_qea
  | T_ilp
  | T_bb
  | T_cp
  | T_sat
  | T_smt

type topic =
  | Modulo_scheduling
  | Loop_unrolling
  | Full_predication
  | Partial_predication
  | Dual_issue
  | Direct_mapping
  | Memory_aware
  | Hardware_loops
  | Polyhedral
  | Register_allocation
  | Streaming
  | Hierarchical
  | Nested_loops
  | Ai_based

type entry = {
  ref_no : int; (* bibliography number in the paper *)
  authors : string;
  title : string;
  year : int;
  cells : (scope * technique) list; (* Table I memberships *)
  topics : topic list;
}

let e ref_no authors title year cells topics = { ref_no; authors; title; year; cells; topics }

let entries =
  [
    e 12 "Bondalapati & Prasanna" "Mapping loops onto reconfigurable architectures" 1998
      [ (S_temporal, T_heuristic) ] [ Modulo_scheduling; Loop_unrolling ];
    e 13 "Bondalapati" "Parallelizing DSP nested loops using data context switching" 2001 []
      [ Nested_loops; Loop_unrolling ];
    e 14 "Lee, Choi & Dutt" "Compilation approach for coarse-grained reconfigurable architectures"
      2003 [ (S_binding, T_heuristic) ] [];
    e 15 "Guo et al." "Formulating data-arrival synchronizers in ILP for CGRA mapping" 2021
      [ (S_binding, T_ilp); (S_scheduling, T_ilp) ] [ Modulo_scheduling ];
    e 16 "Lee & Carlson" "Ultra-fast CGRA scheduling to enable run time, programmable CGRAs" 2021
      [ (S_temporal, T_heuristic) ] [ Modulo_scheduling ];
    e 17 "Miyasaka et al." "SAT-based mapping of data-flow graphs onto CGRAs" 2021
      [ (S_temporal, T_sat) ] [];
    e 19 "Kojima et al." "GenMap: genetic algorithmic approach for optimizing spatial mapping" 2020
      [ (S_spatial, T_ga) ] [];
    e 22 "Mei et al." "DRESC: a retargetable compiler for CGRAs" 2002 [ (S_temporal, T_sa) ]
      [ Modulo_scheduling ];
    e 23 "Yoon et al." "A graph drawing based spatial mapping algorithm for CGRAs" 2009
      [ (S_spatial, T_heuristic); (S_spatial, T_ilp) ] [];
    e 24 "Das et al." "A scalable design approach to efficiently map applications on CGRAs" 2016
      [ (S_binding, T_heuristic); (S_scheduling, T_heuristic) ] [];
    e 25 "Dave et al." "URECA: unified register file for CGRAs" 2018 [] [ Register_allocation ];
    e 26 "Wijerathne et al." "HiMap: fast and scalable high-quality mapping via hierarchical abstraction"
      2021 [ (S_temporal, T_heuristic) ] [ Modulo_scheduling; Hierarchical ];
    e 27 "Chen & Mitra" "Graph minor approach for application mapping on CGRAs" 2014 []
      [ Modulo_scheduling ];
    e 28 "Hamzeh et al." "EPIMap: using epimorphism to map applications on CGRAs" 2012
      [ (S_binding, T_heuristic); (S_scheduling, T_heuristic) ] [ Modulo_scheduling ];
    e 29 "De Sutter et al." "Placement-and-routing-based register allocation for CGRAs" 2008 []
      [ Register_allocation; Modulo_scheduling ];
    e 30 "Hatanaka & Bagherzadeh" "A modulo scheduling algorithm for a coarse-grain reconfigurable array template"
      2007 [ (S_spatial, T_heuristic); (S_binding, T_sa) ] [ Modulo_scheduling ];
    e 31 "Li et al." "ChordMap: automated mapping of streaming applications onto CGRA" 2021
      [ (S_spatial, T_heuristic) ] [ Streaming ];
    e 32 "Weng et al." "DSAGEN: synthesizing programmable spatial accelerators" 2020
      [ (S_spatial, T_sa) ] [];
    e 33 "Gobieski et al." "SNAFU: an ultra-low-power, energy-minimal CGRA-generation framework" 2021
      [ (S_spatial, T_sa) ] [];
    e 34 "Chin & Anderson" "An architecture-agnostic ILP approach to CGRA mapping" 2018
      [ (S_spatial, T_ilp) ] [];
    e 35 "Nowatzki et al." "A general constraint-centric scheduling framework for spatial architectures"
      2013 [ (S_spatial, T_ilp) ] [];
    e 36 "Zhao et al." "Towards higher performance and robust compilation for CGRA modulo scheduling"
      2020 [ (S_temporal, T_heuristic); (S_scheduling, T_heuristic) ] [ Modulo_scheduling ];
    e 37 "Park et al." "Edge-centric modulo scheduling for coarse-grained reconfigurable architectures"
      2008 [ (S_temporal, T_heuristic) ] [ Modulo_scheduling ];
    e 38 "Dave et al." "RAMP: resource-aware mapping for CGRAs" 2018 [ (S_temporal, T_heuristic) ]
      [ Modulo_scheduling ];
    e 39 "Gu et al." "Stress-aware loops mapping on CGRAs with dynamic multi-map reconfiguration"
      2018 [ (S_temporal, T_heuristic) ] [ Modulo_scheduling ];
    e 40 "Canesche et al." "Traversal: a fast and adaptive graph-based placement and routing for CGRAs"
      2021 [ (S_temporal, T_heuristic) ] [];
    e 41 "Brenner et al." "Optimal simultaneous scheduling, binding and routing for processor-like reconfigurable architectures"
      2006 [ (S_temporal, T_ilp) ] [];
    e 42 "Karunaratne et al." "DNestMap: mapping deeply-nested loops on ultra-low power CGRAs" 2018
      [ (S_temporal, T_bb) ] [ Nested_loops; Hardware_loops ];
    e 43 "Raffin et al." "Scheduling, binding and routing system for a run-time reconfigurable operator based multimedia architecture"
      2010 [ (S_temporal, T_cp) ] [];
    e 44 "Donovick et al." "Agile SMT-based mapping for CGRAs with restricted routing networks" 2019
      [ (S_temporal, T_smt) ] [];
    e 45 "Yin et al." "Joint affine transformation and loop pipelining for mapping nested loop on CGRAs"
      2015 [ (S_binding, T_heuristic) ] [ Polyhedral; Nested_loops; Modulo_scheduling ];
    e 46 "Hamzeh et al." "REGIMap: register-aware application mapping on CGRAs" 2013
      [ (S_binding, T_heuristic); (S_scheduling, T_heuristic) ]
      [ Register_allocation; Modulo_scheduling ];
    e 47 "Peyret et al." "Efficient application mapping on CGRAs based on backward simultaneous scheduling/binding"
      2014 [ (S_binding, T_heuristic) ] [];
    e 48 "Lee, Choi & Dutt" "Mapping multi-domain applications onto coarse-grained reconfigurable architectures"
      2011 [ (S_binding, T_qea); (S_binding, T_ilp); (S_scheduling, T_heuristic) ] [];
    e 49 "Friedman et al." "SPR: an architecture-adaptive CGRA mapping tool" 2009
      [ (S_binding, T_sa) ] [];
    e 50 "Schulz et al." "Rotated parallel mapping: a novel approach for mapping data parallel applications"
      2014 [ (S_binding, T_sa); (S_scheduling, T_heuristic) ] [ Memory_aware ];
    e 51 "Bansal et al." "Analysis of the performance of CGRAs with different PE configurations" 2003
      [ (S_scheduling, T_heuristic) ] [];
    e 52 "Balasubramanian & Shrivastava" "CRIMSON: compute-intensive loop acceleration by randomized iterative modulo scheduling"
      2020 [ (S_scheduling, T_heuristic) ] [ Modulo_scheduling ];
    e 53 "Mu et al." "Routability-enhanced scheduling for application mapping on CGRAs" 2021
      [ (S_scheduling, T_ilp) ] [ Modulo_scheduling ];
    e 54 "Das et al." "An energy-efficient integrated programmable array accelerator and compilation flow"
      2019 [] [ Modulo_scheduling ];
    e 55 "Yuan et al." "Dynamic-II pipeline: compiling loops with irregular branches on static-scheduling CGRA"
      2021 [] [ Dual_issue; Modulo_scheduling ];
    e 56 "Anido et al." "Improving the operation autonomy of SIMD processing elements by using guarded instructions"
      2002 [] [ Full_predication ];
    e 57 "Chang & Choi" "Mapping control intensive kernels onto coarse-grained reconfigurable array architecture"
      2008 [] [ Partial_predication ];
    e 58 "Hamzeh et al." "Branch-aware loop mapping on CGRAs" 2014 [] [ Dual_issue ];
    e 59 "Karunaratne et al." "4D-CGRA: introducing branch dimension to spatio-temporal application mapping"
      2019 [] [ Dual_issue; Modulo_scheduling ];
    e 60 "Das et al." "Efficient mapping of CDFG onto coarse-grained reconfigurable array architectures"
      2017 [] [ Direct_mapping ];
    e 61 "Mei et al." "Exploiting loop-level parallelism on CGRAs using modulo scheduling" 2003 []
      [ Modulo_scheduling ];
    e 62 "Balasubramanian et al." "LASER: a hardware/software approach to accelerate complicated loops"
      2018 [] [ Hardware_loops ];
    e 63 "Sunny et al." "Hardware based loop optimization for CGRA architectures" 2021 []
      [ Hardware_loops ];
    e 64 "Vadivel et al." "Loop overhead reduction techniques for coarse grained reconfigurable architectures"
      2017 [] [ Hardware_loops ];
    e 65 "Li et al." "Combining memory partitioning and subtask generation for parallel data access"
      2021 [] [ Memory_aware ];
    e 66 "Kim et al." "Memory access optimization in compilation for CGRAs" 2011 [] [ Memory_aware ];
    e 67 "Zhao et al." "Optimizing the data placement and transformation for multi-bank CGRA computing system"
      2018 [] [ Memory_aware ];
    e 68 "Yin et al." "Conflict-free loop mapping for CGRA with multi-bank memory" 2017 []
      [ Memory_aware ];
    e 74 "Liu et al." "Data-flow graph mapping optimization for CGRA with deep reinforcement learning"
      2019 [] [ Ai_based ];
  ]

let scope_to_string = function
  | S_spatial -> "Spatial mapping"
  | S_temporal -> "Temporal mapping"
  | S_binding -> "Binding"
  | S_scheduling -> "Scheduling"

let technique_to_string = function
  | T_heuristic -> "heuristic"
  | T_ga -> "GA"
  | T_sa -> "SA"
  | T_qea -> "QEA"
  | T_ilp -> "ILP"
  | T_bb -> "B&B"
  | T_cp -> "CP"
  | T_sat -> "SAT"
  | T_smt -> "SMT"

let topic_to_string = function
  | Modulo_scheduling -> "modulo scheduling"
  | Loop_unrolling -> "loop unrolling"
  | Full_predication -> "full predication"
  | Partial_predication -> "partial predication"
  | Dual_issue -> "dual-issue single execution"
  | Direct_mapping -> "direct CDFG mapping"
  | Memory_aware -> "memory aware"
  | Hardware_loops -> "hardware loops"
  | Polyhedral -> "polyhedral model"
  | Register_allocation -> "register allocation"
  | Streaming -> "streaming"
  | Hierarchical -> "hierarchical"
  | Nested_loops -> "nested loops"
  | Ai_based -> "AI-based"

let by_ref n =
  match List.find_opt (fun entry -> entry.ref_no = n) entries with
  | Some entry -> entry
  | None -> invalid_arg (Printf.sprintf "Dataset.by_ref: [%d] not in the corpus" n)

let years () = List.sort_uniq compare (List.map (fun entry -> entry.year) entries)

let with_topic topic = List.filter (fun entry -> List.mem topic entry.topics) entries

let in_cell scope technique =
  List.filter (fun entry -> List.mem (scope, technique) entry.cells) entries
  |> List.map (fun entry -> entry.ref_no)
  |> List.sort compare

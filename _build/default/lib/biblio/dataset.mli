(** The survey's corpus: the CGRA-mapping publications cited by the
    paper as structured records.  Reference numbers follow the paper's
    bibliography; cell tags transcribe Table I; topic tags transcribe
    the Fig. 4 annotations.  The generated Table I is unit-tested to
    match the paper cell by cell. *)

type scope = S_spatial | S_temporal | S_binding | S_scheduling

type technique =
  | T_heuristic
  | T_ga
  | T_sa
  | T_qea
  | T_ilp
  | T_bb
  | T_cp
  | T_sat
  | T_smt

type topic =
  | Modulo_scheduling
  | Loop_unrolling
  | Full_predication
  | Partial_predication
  | Dual_issue
  | Direct_mapping
  | Memory_aware
  | Hardware_loops
  | Polyhedral
  | Register_allocation
  | Streaming
  | Hierarchical
  | Nested_loops
  | Ai_based

type entry = {
  ref_no : int;
  authors : string;
  title : string;
  year : int;
  cells : (scope * technique) list;
  topics : topic list;
}

val entries : entry list
val scope_to_string : scope -> string
val technique_to_string : technique -> string
val topic_to_string : topic -> string

(** Raises [Invalid_argument] when the reference is not in the corpus. *)
val by_ref : int -> entry

val years : unit -> int list
val with_topic : topic -> entry list

(** Sorted reference numbers of one Table I cell. *)
val in_cell : scope -> technique -> int list

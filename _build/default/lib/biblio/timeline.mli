(** Regenerate the paper's Fig. 4: publications per year with the
    technique-era annotations. *)

val year_range : int * int

(** (year, publication count) for every year in range. *)
val counts : unit -> (int * int) list

(** First appearance year of each annotated technique. *)
val technique_first_years : unit -> (Dataset.topic * int) list

val render : unit -> string

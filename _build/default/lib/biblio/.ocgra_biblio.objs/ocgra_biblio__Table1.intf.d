lib/biblio/table1.mli: Dataset

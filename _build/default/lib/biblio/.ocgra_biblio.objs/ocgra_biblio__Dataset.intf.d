lib/biblio/dataset.mli:

lib/biblio/dataset.ml: List Printf

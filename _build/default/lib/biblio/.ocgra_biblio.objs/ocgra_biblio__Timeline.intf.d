lib/biblio/timeline.mli: Dataset

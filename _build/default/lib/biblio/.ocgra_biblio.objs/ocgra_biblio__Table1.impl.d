lib/biblio/table1.ml: Array Dataset List Ocgra_util Printf String

lib/biblio/timeline.ml: Buffer Dataset List Ocgra_util Printf

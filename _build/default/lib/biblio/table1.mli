(** Regenerate the paper's Table I from the structured corpus. *)

(** Column structure: header + technique sub-columns. *)
val columns : (string * Dataset.technique list) list

val rows : Dataset.scope list

(** The rendered table. *)
val render : unit -> string

(** Raw cell: sorted reference numbers (for the tests comparing
    against the paper). *)
val cell : Dataset.scope -> Dataset.technique -> int list

(* Regenerate Fig. 4: publications per year over two decades, with the
   technique-era annotations the figure overlays (modulo scheduling
   from the start, predication styles through the 2000s-2010s,
   memory-aware methods around 2010, hardware loops late 2010s).

   As the paper itself notes, the count "considers the papers focusing
   on CGRA mapping only, and a subset of selected papers": this corpus
   is that subset. *)

open Dataset

let year_range = (1998, 2021)

let counts () =
  let lo, hi = year_range in
  List.init (hi - lo + 1) (fun i ->
      let year = lo + i in
      (year, List.length (List.filter (fun entry -> entry.year = year) entries)))

(* First appearance of each annotated technique. *)
let technique_first_years () =
  let interesting =
    [
      Modulo_scheduling; Loop_unrolling; Full_predication; Partial_predication; Dual_issue;
      Direct_mapping; Memory_aware; Hardware_loops; Polyhedral; Ai_based;
    ]
  in
  List.filter_map
    (fun topic ->
      match with_topic topic with
      | [] -> None
      | entries ->
          let first = List.fold_left (fun acc entry -> min acc entry.year) max_int entries in
          Some (topic, first))
    interesting

let render () =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "Publications per year (CGRA mapping corpus of the survey):\n";
  let series =
    List.map (fun (year, n) -> (string_of_int year, float_of_int n)) (counts ())
  in
  Buffer.add_string buf (Ocgra_util.Stats.hbar_chart ~width:40 series);
  Buffer.add_string buf "\nTechnique first appearances (the Fig. 4 era annotations):\n";
  List.iter
    (fun (topic, year) ->
      Buffer.add_string buf (Printf.sprintf "  %-28s from %d\n" (topic_to_string topic) year))
    (List.sort (fun (_, a) (_, b) -> compare a b) (technique_first_years ()));
  Buffer.contents buf

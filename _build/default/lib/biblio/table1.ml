(* Regenerate the paper's Table I ("A review of binding and scheduling
   techniques for automated spatial and temporal mapping of
   applications on CGRAs") from the structured corpus. *)

open Dataset

(* The table's column structure: (header, technique sub-columns). *)
let columns =
  [
    ("Heuristics", [ T_heuristic ]);
    ("Meta-heuristics", [ T_ga; T_qea; T_sa ]);
    ("ILP/B&B", [ T_ilp; T_bb ]);
    ("CSP", [ T_cp; T_sat; T_smt ]);
  ]

let rows = [ S_spatial; S_temporal; S_binding; S_scheduling ]

let cite_list refs =
  if refs = [] then "-"
  else String.concat " " (List.map (fun r -> Printf.sprintf "[%d]" r) refs)

let cell_text scope techniques =
  let parts =
    List.filter_map
      (fun t ->
        match in_cell scope t with
        | [] -> None
        | refs ->
            let label =
              match t with
              | T_heuristic -> ""
              | t -> technique_to_string t ^ " "
            in
            Some (label ^ cite_list refs))
      techniques
  in
  match parts with [] -> "-" | _ -> String.concat "  " parts

let render () =
  let headers = Array.of_list ("" :: List.map fst columns) in
  let body =
    List.map
      (fun scope ->
        Array.of_list
          (scope_to_string scope
          :: List.map (fun (_, techniques) -> cell_text scope techniques) columns))
      rows
  in
  Ocgra_util.Table.render ~headers body

(* The raw cell sets, for the tests that compare against the paper. *)
let cell scope technique = in_cell scope technique

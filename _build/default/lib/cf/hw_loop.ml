(* Hardware loop support (Section III.B.2, "hardware loops": [62]
   LASER, [63] Sunny et al., [64] Vadivel et al.).

   Without hardware loops the host processor steers every iteration:
   it issues the kernel, waits, increments, tests and re-issues.  With
   a hardware loop counter inside the CGRA the configuration memory
   replays the kernel II cycles per iteration with zero control
   overhead.  This model quantifies the cycle cost of both regimes and
   the break-even trip count, which is the ablation the papers report. *)

type overhead_model = {
  host_issue_cycles : int; (* host -> CGRA kernel launch *)
  host_control_cycles : int; (* increment + test + branch on the host *)
  config_fetch_cycles : int; (* context switch cost per launch *)
}

let default_overhead = { host_issue_cycles = 4; host_control_cycles = 3; config_fetch_cycles = 2 }

(* Cycles to run [iters] iterations of a kernel with the given II and
   schedule length (pipeline fill) under host-managed looping: the
   kernel is re-launched per iteration (no pipelining across
   iterations, as the paper notes: "letting the control flow managed by
   a host processor ... reduces greatly the possibilities"). *)
let host_managed_cycles model ~schedule_length ~iters =
  iters * (model.host_issue_cycles + model.config_fetch_cycles + schedule_length + model.host_control_cycles)

(* With a hardware loop: one launch, pipelined iterations. *)
let hw_loop_cycles model ~ii ~schedule_length ~iters =
  model.host_issue_cycles + model.config_fetch_cycles + schedule_length + ((iters - 1) * ii)

let speedup model ~ii ~schedule_length ~iters =
  float_of_int (host_managed_cycles model ~schedule_length ~iters)
  /. float_of_int (hw_loop_cycles model ~ii ~schedule_length ~iters)

(* Smallest trip count where the hardware loop wins (always 1 in this
   model, but the function documents the crossover computation used in
   the ablation table). *)
let break_even model ~ii ~schedule_length =
  let rec go iters =
    if iters > 1_000_000 then None
    else if
      hw_loop_cycles model ~ii ~schedule_length ~iters
      < host_managed_cycles model ~schedule_length ~iters
    then Some iters
    else go (iters + 1)
  in
  go 1

(* Nested-loop support ([42] dnestmap, [63]): a two-level hardware loop
   replays the inner kernel [inner] times for each of [outer] passes
   without host intervention; compare against inner-only support. *)
let nested_hw_cycles model ~ii ~schedule_length ~inner ~outer =
  model.host_issue_cycles + model.config_fetch_cycles + schedule_length
  + (((inner * outer) - 1) * ii)

let inner_only_cycles model ~ii ~schedule_length ~inner ~outer =
  outer * hw_loop_cycles model ~ii ~schedule_length ~iters:inner

(** Control-flow mapping for if-then-else regions: the four basic
    methods of Section III.B.1 of the paper, each lowering the same
    branch to a different branch-free DFG.  All four are semantically
    equivalent (property-tested); they differ in op count and depth. *)

type scheme =
  | Full_predication  (** both branches execute, Select at every merge [56] *)
  | Partial_predication  (** branch bodies shared by CSE, Selects at merges [57] *)
  | Dual_issue  (** producers fused into the Select itself [55], [58], [59] *)
  | Direct_cdfg  (** both regions mapped, explicit predicate broadcast [60] *)

val scheme_to_string : scheme -> string
val all_schemes : scheme list

(** An if-then-else region: straight-line branches assigning
    variables; every assigned variable is merged and emitted. *)
type ite = {
  cond : Ocgra_dfg.Prog_ast.expr;
  then_branch : (string * Ocgra_dfg.Prog_ast.expr) list;
  else_branch : (string * Ocgra_dfg.Prog_ast.expr) list;
}

(** Variables assigned in either branch, sorted. *)
val merged_vars : ite -> string list

(** The straight-line program a scheme lowers the region to. *)
val lower : scheme -> ite -> (string * Ocgra_dfg.Prog_ast.expr) list

(** Lower to a mappable DFG (with the scheme's sharing policy). *)
val to_dfg : scheme -> ite -> Ocgra_dfg.Dfg.t

(** Operations excluding Outputs. *)
val op_count : Ocgra_dfg.Dfg.t -> int

(** Each scheme with its DFG, op count and critical path. *)
val compare_schemes : ite -> (scheme * Ocgra_dfg.Dfg.t * int * int) list

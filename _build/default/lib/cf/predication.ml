(* Control-flow mapping for conditional (if-then-else) structures:
   the four basic methods of Section III.B.1 of the paper.

   Input: a branch-free condition DFG fragment description — condition
   expression plus per-branch assignments — in the mini-language.
   Output: a single mappable DFG per scheme, plus the op-count
   accounting that the predication comparison bench reports.

   1. Full predication [56]: both branches execute every iteration,
      every branch-side operation consumes a slot, merges via Select.
   2. Partial predication [57]: branch-side operations execute
      unconditionally but only *merge points* of variables assigned in
      either branch get Selects; operations used by both branches are
      shared (CSE), so the op count is lower than full predication on
      overlapping branches.
   3. Dual-issue single execution [55], [58], [59]: the two candidate
      producers of every merged variable are fused into one
      dual-operation node (both issued, one executes, selected by the
      predicate in the same cycle) — modelled by a Select fused at the
      producer, costing one slot instead of two plus a merge.
   4. Direct CDFG mapping [60]: the CDFG is kept; both basic blocks
      are mapped onto disjoint array regions and the predicate steers
      which region's writeback wins; modelled here as full predication
      plus an explicit predicate broadcast node per branch. *)

open Ocgra_dfg

type scheme = Full_predication | Partial_predication | Dual_issue | Direct_cdfg

let scheme_to_string = function
  | Full_predication -> "full predication"
  | Partial_predication -> "partial predication"
  | Dual_issue -> "dual-issue single execution"
  | Direct_cdfg -> "direct CDFG mapping"

let all_schemes = [ Full_predication; Partial_predication; Dual_issue; Direct_cdfg ]

(* An if-then-else region: straight-line branches assigning variables.
   [inputs] are the visible live-ins; every variable assigned in either
   branch is merged and emitted. *)
type ite = {
  cond : Prog_ast.expr;
  then_branch : (string * Prog_ast.expr) list;
  else_branch : (string * Prog_ast.expr) list;
}

let merged_vars ite =
  List.sort_uniq compare (List.map fst ite.then_branch @ List.map fst ite.else_branch)

(* Build the straight-line program for a scheme; the schemes differ in
   how much sharing / fusion the builder is allowed to perform. *)
let lower scheme ite =
  let open Prog_ast in
  let vars = merged_vars ite in
  let cond_assign = [ ("%p", ite.cond) ] in
  let branch_value branch v =
    match List.assoc_opt v branch with
    | Some e -> e
    | None -> Var v (* keep the incoming value *)
  in
  match scheme with
  | Full_predication | Direct_cdfg ->
      (* both sides computed into disjoint temporaries, Select at merge;
         Direct_cdfg additionally broadcasts the predicate explicitly *)
      let thens = List.map (fun (v, e) -> (v ^ "%t", e)) ite.then_branch in
      let elses = List.map (fun (v, e) -> (v ^ "%f", e)) ite.else_branch in
      let prelude =
        if scheme = Direct_cdfg then [ ("%pf", Bin (Op.Eq, Var "%p", Int 0)) ] else []
      in
      let merges =
        List.map
          (fun v ->
            let tv = if List.mem_assoc v ite.then_branch then Var (v ^ "%t") else Var v in
            let fv = if List.mem_assoc v ite.else_branch then Var (v ^ "%f") else Var v in
            if scheme = Direct_cdfg then
              (* each region owns its predicate; the join is keyed on the
                 else-region's broadcast (select(!p, else, then)) *)
              (v ^ "%out", Select (Var "%pf", fv, tv))
            else (v ^ "%out", Select (Var "%p", tv, fv)))
          vars
      in
      cond_assign @ prelude @ thens @ elses @ merges
  | Partial_predication ->
      (* same structure, but the DFG builder's CSE shares identical
         subexpressions across the branches; only merges differ *)
      let thens = List.map (fun (v, e) -> (v ^ "%t", e)) ite.then_branch in
      let elses = List.map (fun (v, e) -> (v ^ "%f", e)) ite.else_branch in
      let merges =
        List.map
          (fun v ->
            let tv = if List.mem_assoc v ite.then_branch then Var (v ^ "%t") else Var v in
            let fv = if List.mem_assoc v ite.else_branch then Var (v ^ "%f") else Var v in
            (v ^ "%out", Select (Var "%p", tv, fv)))
          vars
      in
      cond_assign @ thens @ elses @ merges
  | Dual_issue ->
      (* fuse the two producers of each merged variable directly into
         the Select (one slot in the schedule instead of a merge after
         both) — operands of the select are the branch expressions *)
      let merges =
        List.map
          (fun v ->
            (v ^ "%out", Select (Var "%p", branch_value ite.then_branch v, branch_value ite.else_branch v)))
          vars
      in
      cond_assign @ merges

(* Lower an ITE region to a DFG under the given scheme.  For the
   schemes that benefit from sharing, the value-numbering CSE of the
   straight-line builder provides it; for full predication we disable
   sharing by suffixing the branch temporaries (done in [lower]) and
   running a dedicated builder pass per branch would be overkill: what
   full predication cannot share is the merged producers, which is
   exactly what the suffixes prevent. *)
let to_dfg scheme ite =
  let stmts = List.map (fun (v, e) -> Prog_ast.Assign (v, e)) (lower scheme ite) in
  let outputs =
    List.map (fun v -> Prog_ast.Emit (v, Prog_ast.Var (v ^ "%out"))) (merged_vars ite)
  in
  (* full predication and direct CDFG mapping replicate the branch
     bodies physically (both regions really execute); the sharing
     schemes get value-numbering plus a CSE pass *)
  let share = scheme = Partial_predication || scheme = Dual_issue in
  let kernel = Ocgra_dfg.Prog.loop_body_dfg ~cse:share (stmts @ outputs) in
  let dfg = Ocgra_dfg.Transform.dce kernel.Ocgra_dfg.Prog.dfg in
  if share then Ocgra_dfg.Transform.cse dfg else dfg

let op_count dfg =
  Dfg.fold_nodes
    (fun nd acc -> match nd.Dfg.op with Op.Output _ -> acc | _ -> acc + 1)
    dfg 0

(* Compare the four schemes on an ITE region: ops and critical path. *)
let compare_schemes ite =
  List.map
    (fun scheme ->
      let dfg = to_dfg scheme ite in
      (scheme, dfg, op_count dfg, Dfg.critical_path dfg))
    all_schemes

(** Host-managed control flow over a CDFG: each basic block is one
    CGRA configuration; the host walks the control-flow graph carrying
    the live variables.  This quantifies the launch/transfer traffic
    that predication avoids. *)

type block_plan = {
  block : int;
  dfg : Ocgra_dfg.Dfg.t;
  live_in : string list;
  live_out : string list;
  ops : int;
}

type plan = {
  blocks : block_plan list;
  transfer_cost_per_var : int;
  launch_cost : int;
}

val make_plan : ?transfer_cost_per_var:int -> ?launch_cost:int -> Ocgra_dfg.Cdfg.t -> plan

(** Execute the CDFG with interpreter semantics from block 0;
    returns (dynamic block trace, output streams (newest first),
    final variable environment). *)
val interpret :
  ?max_steps:int ->
  Ocgra_dfg.Cdfg.t ->
  memory:(string * int array) list ->
  int list * (string, int list) Hashtbl.t * (string, int) Hashtbl.t

(** Launches + live-variable transfers of one dynamic trace. *)
val trace_cost : plan -> int list -> int

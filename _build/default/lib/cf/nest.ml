(* Affine loop-nest transformation for pipelining ([45] Yin et al.,
   "joint affine transformation and loop pipelining": pick a unimodular
   transformation of a 2-deep nest so the *innermost* loop carries as
   little recurrence as possible before modulo scheduling it).

   A dependence of the nest is a distance vector (d_outer, d_inner)
   with the latency of its producing chain.  A transformation is legal
   when every transformed vector stays lexicographically non-negative
   (with (0,0) meaning an intra-iteration dependence, always fine).
   After transformation, only dependences carried by the innermost loop
   (d_outer = 0, d_inner > 0) bound the inner II:
   RecMII >= ceil(latency / d_inner); dependences carried by the outer
   loop impose nothing on the pipeline. *)

type dep = { d_outer : int; d_inner : int; latency : int }

type transform =
  | Identity
  | Interchange
  | Skew of int (* (i, j) -> (i, j + f*i) *)
  | Interchange_skew of int (* interchange then skew *)

let transform_to_string = function
  | Identity -> "identity"
  | Interchange -> "interchange"
  | Skew f -> Printf.sprintf "skew f=%d" f
  | Interchange_skew f -> Printf.sprintf "interchange+skew f=%d" f

let apply t (d : dep) =
  match t with
  | Identity -> d
  | Interchange -> { d with d_outer = d.d_inner; d_inner = d.d_outer }
  | Skew f -> { d with d_inner = d.d_inner + (f * d.d_outer) }
  | Interchange_skew f ->
      let d' = { d with d_outer = d.d_inner; d_inner = d.d_outer } in
      { d' with d_inner = d'.d_inner + (f * d'.d_outer) }

(* Lexicographic non-negativity of every transformed dependence. *)
let legal t deps =
  List.for_all
    (fun d ->
      let d' = apply t d in
      d'.d_outer > 0 || (d'.d_outer = 0 && d'.d_inner >= 0))
    deps

(* Recurrence bound on the innermost II after the transformation.
   Returns None when an intra-iteration self-dependence makes
   pipelining impossible ((0,0) with latency > 0 is a combinational
   cycle and cannot appear in a well-formed nest, so treat it as
   illegal input). *)
let inner_rec_mii t deps =
  List.fold_left
    (fun acc d ->
      let d' = apply t d in
      if d'.d_outer = 0 && d'.d_inner > 0 then
        max acc ((d.latency + d'.d_inner - 1) / d'.d_inner)
      else acc)
    1 deps

let candidate_transforms =
  Identity :: Interchange
  :: List.concat_map (fun f -> [ Skew f; Interchange_skew f ]) [ -3; -2; -1; 1; 2; 3 ]

(* The best legal transformation: minimal inner RecMII, ties broken by
   simplicity (earlier in the candidate list). *)
let best deps =
  let legal_candidates = List.filter (fun t -> legal t deps) candidate_transforms in
  match legal_candidates with
  | [] -> None
  | ts ->
      let scored = List.map (fun t -> (inner_rec_mii t deps, t)) ts in
      let best =
        List.fold_left
          (fun (bm, bt) (m, t) -> if m < bm then (m, t) else (bm, bt))
          (List.hd scored) (List.tl scored)
      in
      Some best

(* Report table for a nest: each candidate with legality and bound. *)
let report deps =
  List.map
    (fun t ->
      let ok = legal t deps in
      (t, ok, if ok then Some (inner_rec_mii t deps) else None))
    candidate_transforms

(* Host-managed control flow over a CDFG: the default strategy of most
   surveyed systems — each basic block becomes one CGRA configuration,
   the host walks the control-flow graph, launching block
   configurations and carrying the live variables between them.

   This is an execution *plan* and cost model (block order is dynamic);
   it quantifies the host<->CGRA traffic that predication avoids. *)

open Ocgra_dfg

type block_plan = {
  block : int;
  dfg : Dfg.t;
  live_in : string list;
  live_out : string list;
  ops : int;
}

type plan = { blocks : block_plan list; transfer_cost_per_var : int; launch_cost : int }

let make_plan ?(transfer_cost_per_var = 2) ?(launch_cost = 6) (cdfg : Cdfg.t) =
  let blocks =
    List.map
      (fun (b : Cdfg.block) ->
        let dfg = Prog.block_dfg b in
        let live_in =
          Dfg.fold_nodes
            (fun nd acc -> match nd.Dfg.op with Op.Input s -> s :: acc | _ -> acc)
            dfg []
        in
        let live_out =
          Dfg.fold_nodes
            (fun nd acc -> match nd.Dfg.op with Op.Output s -> s :: acc | _ -> acc)
            dfg []
        in
        let ops =
          Dfg.fold_nodes
            (fun nd acc ->
              match nd.Dfg.op with Op.Input _ | Op.Output _ -> acc | _ -> acc + 1)
            dfg 0
        in
        { block = b.id; dfg; live_in; live_out; ops })
      (Cdfg.blocks cdfg)
  in
  { blocks; transfer_cost_per_var = transfer_cost_per_var; launch_cost }

(* Execute the CDFG with the interpreter semantics, tracking the block
   trace; returns (trace, env after).  Variables live in a host
   environment; memory arrays are shared. *)
let interpret ?(max_steps = 100_000) (cdfg : Cdfg.t) ~memory =
  let vars : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let mem = Hashtbl.create 8 in
  List.iter (fun (name, arr) -> Hashtbl.replace mem name (Array.copy arr)) memory;
  let outputs = Hashtbl.create 8 in
  let rec eval_expr (e : Prog_ast.expr) =
    match e with
    | Prog_ast.Int n -> n
    | Prog_ast.Var v -> ( match Hashtbl.find_opt vars v with Some x -> x | None -> 0)
    | Prog_ast.Bin (b, x, y) -> Op.eval_binop b (eval_expr x) (eval_expr y)
    | Prog_ast.Not e -> lnot (eval_expr e)
    | Prog_ast.Neg e -> -eval_expr e
    | Prog_ast.Select (c, a, b) -> if eval_expr c <> 0 then eval_expr a else eval_expr b
    | Prog_ast.Read (a, i) -> (
        match Hashtbl.find_opt mem a with
        | None -> 0
        | Some arr -> arr.(((eval_expr i mod Array.length arr) + Array.length arr) mod Array.length arr))
  in
  let run_block (b : Cdfg.block) =
    List.iter
      (fun s ->
        match s with
        | Cdfg.S_assign (v, e) -> Hashtbl.replace vars v (eval_expr e)
        | Cdfg.S_write (a, i, e) -> (
            match Hashtbl.find_opt mem a with
            | None -> ()
            | Some arr ->
                arr.(((eval_expr i mod Array.length arr) + Array.length arr) mod Array.length arr) <-
                  eval_expr e)
        | Cdfg.S_emit (o, e) ->
            let cur = Option.value ~default:[] (Hashtbl.find_opt outputs o) in
            Hashtbl.replace outputs o (eval_expr e :: cur))
      b.stmts
  in
  let trace = ref [] in
  let steps = ref 0 in
  let rec go id =
    if !steps > max_steps then ()
    else begin
      incr steps;
      trace := id :: !trace;
      let b = Cdfg.block cdfg id in
      run_block b;
      match b.term with
      | Cdfg.Jump j -> go j
      | Cdfg.Branch { cond; if_true; if_false } ->
          let c = match Hashtbl.find_opt vars cond with Some x -> x | None -> 0 in
          go (if c <> 0 then if_true else if_false)
      | Cdfg.Return -> ()
    end
  in
  go 0;
  (List.rev !trace, outputs, vars)

(* Host-managed cost of one dynamic trace: launches + live transfers. *)
let trace_cost (plan : plan) trace =
  List.fold_left
    (fun acc id ->
      match List.find_opt (fun bp -> bp.block = id) plan.blocks with
      | None -> acc
      | Some bp ->
          acc + plan.launch_cost
          + (plan.transfer_cost_per_var * (List.length bp.live_in + List.length bp.live_out)))
    0 trace

(** Hardware-loop cost model (Section III.B.2, [62]-[64]): cycles under
    host-managed iteration control versus an in-array loop counter, and
    the crossover trip counts. *)

type overhead_model = {
  host_issue_cycles : int;  (** host -> CGRA kernel launch *)
  host_control_cycles : int;  (** increment + test + branch on the host *)
  config_fetch_cycles : int;  (** context switch per launch *)
}

val default_overhead : overhead_model

(** Host relaunches the kernel each iteration (no cross-iteration
    pipelining). *)
val host_managed_cycles : overhead_model -> schedule_length:int -> iters:int -> int

(** One launch, pipelined iterations at the given II. *)
val hw_loop_cycles : overhead_model -> ii:int -> schedule_length:int -> iters:int -> int

val speedup : overhead_model -> ii:int -> schedule_length:int -> iters:int -> float

(** Smallest trip count where the hardware loop wins. *)
val break_even : overhead_model -> ii:int -> schedule_length:int -> int option

(** Two-level hardware loop for a nest, vs inner-only support. *)
val nested_hw_cycles :
  overhead_model -> ii:int -> schedule_length:int -> inner:int -> outer:int -> int

val inner_only_cycles :
  overhead_model -> ii:int -> schedule_length:int -> inner:int -> outer:int -> int

lib/cf/host_exec.mli: Hashtbl Ocgra_dfg

lib/cf/hw_loop.mli:

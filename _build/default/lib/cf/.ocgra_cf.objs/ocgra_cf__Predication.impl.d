lib/cf/predication.ml: Dfg List Ocgra_dfg Op Prog_ast

lib/cf/hw_loop.ml:

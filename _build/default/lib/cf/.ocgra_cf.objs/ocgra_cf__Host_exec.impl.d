lib/cf/host_exec.ml: Array Cdfg Dfg Hashtbl List Ocgra_dfg Op Option Prog Prog_ast

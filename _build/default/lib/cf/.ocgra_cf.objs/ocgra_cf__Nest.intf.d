lib/cf/nest.mli:

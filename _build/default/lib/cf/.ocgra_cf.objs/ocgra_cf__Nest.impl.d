lib/cf/nest.ml: List Printf

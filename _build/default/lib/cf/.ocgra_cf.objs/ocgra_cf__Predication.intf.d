lib/cf/predication.mli: Ocgra_dfg

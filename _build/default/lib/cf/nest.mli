(** Affine loop-nest transformation before pipelining ([45]): pick a
    unimodular transformation of a 2-deep nest so the innermost loop
    carries as little recurrence as possible.  Only inner-carried
    dependences (transformed to (0, d>0)) bound the inner II. *)

type dep = { d_outer : int; d_inner : int; latency : int }

type transform =
  | Identity
  | Interchange
  | Skew of int  (** (i, j) -> (i, j + f*i) *)
  | Interchange_skew of int

val transform_to_string : transform -> string
val apply : transform -> dep -> dep

(** Every transformed vector lexicographically non-negative? *)
val legal : transform -> dep list -> bool

(** Recurrence bound on the inner II after the transformation. *)
val inner_rec_mii : transform -> dep list -> int

val candidate_transforms : transform list

(** Best legal transformation: (inner RecMII, transform); [None] when
    nothing is legal. *)
val best : dep list -> (int * transform) option

(** Every candidate with its legality and bound. *)
val report : dep list -> (transform * bool * int option) list

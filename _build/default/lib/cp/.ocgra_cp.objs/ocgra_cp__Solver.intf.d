lib/cp/solver.mli: Ocgra_util

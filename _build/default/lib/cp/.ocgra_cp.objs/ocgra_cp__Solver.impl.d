lib/cp/solver.ml: Array List Ocgra_util Printf

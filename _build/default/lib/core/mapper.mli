(** The common mapper interface: every technique in the framework —
    one per Table I cell — is a value of {!t}. *)

type outcome = {
  mapping : Mapping.t option;
  proven_optimal : bool;  (** the II was certified minimal within budget *)
  attempts : int;  (** IIs tried, restarts, ... (method-specific) *)
  elapsed_s : float;
  note : string;
}

type t = {
  name : string;
  citation : string;  (** representative papers from the survey *)
  scope : Taxonomy.scope;
  approach : Taxonomy.approach;
  map : Problem.t -> Ocgra_util.Rng.t -> outcome;
}

val make :
  name:string ->
  citation:string ->
  scope:Taxonomy.scope ->
  approach:Taxonomy.approach ->
  (Problem.t -> Ocgra_util.Rng.t -> outcome) ->
  t

val no_mapping : ?note:string -> attempts:int -> elapsed_s:float -> unit -> outcome

(** Run a mapper and validate its output with {!Check.validate}:
    invalid mappings are demoted to failures with the violations in
    [note], so a mapper can never report a wrong mapping as success. *)
val run : t -> ?seed:int -> Problem.t -> outcome

(* The common mapper interface.

   Every technique in the framework — one per cell of Table I — is a
   value of [t]: a named, classified function from problem to (maybe)
   mapping.  [run] wraps the raw algorithm with the independent
   validator so an invalid mapping is reported as a failure, never as a
   success.  [Harness] adds the production wrapper: wall-clock
   deadlines, retries and an ordered fallback chain for degraded-array
   or budget-limited service. *)

module Rng = Ocgra_util.Rng

type outcome = {
  mapping : Mapping.t option;
  proven_optimal : bool; (* exact method proved II optimal within budget *)
  attempts : int; (* IIs tried, restarts, ... (method-specific) *)
  elapsed_s : float;
  note : string;
}

type t = {
  name : string;
  citation : string; (* representative papers from the survey *)
  scope : Taxonomy.scope;
  approach : Taxonomy.approach;
  map : Problem.t -> Rng.t -> Deadline.t -> outcome;
}

let make ~name ~citation ~scope ~approach map = { name; citation; scope; approach; map }

let no_mapping ?(note = "") ~attempts ~elapsed_s () =
  { mapping = None; proven_optimal = false; attempts; elapsed_s; note }

(* Run a mapper and validate its output; invalid results are demoted to
   failures with the violations in [note].  [elapsed_s] is measured
   here on the wall clock — the technique's self-reported value is
   never trusted.  An unmappable problem (some op with no capable,
   non-faulted PE) fails fast without entering the technique, since
   several meta-heuristics assume non-empty candidate sets. *)
let run (mapper : t) ?(seed = 42) ?deadline_s (p : Problem.t) =
  let rng = Rng.create seed in
  let dl = Deadline.of_seconds deadline_s in
  let t0 = Deadline.now () in
  let finish outcome = { outcome with elapsed_s = Deadline.now () -. t0 } in
  if not (Problem.mappable p) then
    finish
      (no_mapping ~attempts:0 ~elapsed_s:0.0
         ~note:"unmappable: some operation has no capable, non-faulted PE" ())
  else begin
    let outcome = mapper.map p rng dl in
    match outcome.mapping with
    | None -> finish outcome
    | Some m -> (
        match Check.validate p m with
        | [] -> finish outcome
        | violations ->
            finish
              {
                mapping = None;
                proven_optimal = false;
                attempts = outcome.attempts;
                elapsed_s = 0.0;
                note =
                  Printf.sprintf "INVALID mapping produced by %s: %s" mapper.name
                    (String.concat " | " violations);
              })
  end

(* Deadline-bounded, retrying, fallback-chained mapping: the harness a
   mapping service runs instead of a bare [run].  Tier i of an n-tier
   chain receives an equal share of the remaining wall clock
   (remaining / tiers-left), so an exact front tier cannot starve the
   heuristic safety net; each tier is retried with varied seeds; the
   note records which tier answered and why earlier tiers did not. *)
module Harness = struct
  let run ?(seed = 42) ?deadline_s ?(retries = 2) (chain : t list) (p : Problem.t) =
    if chain = [] then invalid_arg "Mapper.Harness.run: empty fallback chain";
    let dl = Deadline.of_seconds deadline_s in
    let t0 = Deadline.now () in
    let n = List.length chain in
    let total_attempts = ref 0 in
    let trail = Buffer.create 64 in
    let record_failure (m : t) ~try_no note =
      Buffer.add_string trail
        (Printf.sprintf "%s[try %d]: %s; " m.name (try_no + 1)
           (if note = "" then "no mapping" else note))
    in
    let rec tiers idx = function
      | [] ->
          {
            mapping = None;
            proven_optimal = false;
            attempts = !total_attempts;
            elapsed_s = Deadline.now () -. t0;
            note = Printf.sprintf "no tier answered: %s" (Buffer.contents trail);
          }
      | m :: rest ->
          let tiers_left = n - idx in
          let rec attempt try_no =
            if try_no >= max 1 retries then None
            else if Deadline.expired dl && try_no > 0 then None
            else begin
              (* equal share of what is left, re-measured per try *)
              let budget =
                Option.map
                  (fun r -> max 0.05 (r /. float_of_int tiers_left))
                  (Deadline.remaining_s dl)
              in
              let o = run m ~seed:(seed + (try_no * 7919)) ?deadline_s:budget p in
              total_attempts := !total_attempts + max 1 o.attempts;
              match o.mapping with
              | Some _ -> Some o
              | None ->
                  record_failure m ~try_no o.note;
                  attempt (try_no + 1)
            end
          in
          (match attempt 0 with
          | Some o ->
              {
                o with
                attempts = !total_attempts;
                elapsed_s = Deadline.now () -. t0;
                note =
                  Printf.sprintf "answered by tier %d/%d (%s)%s%s" (idx + 1) n m.name
                    (if o.note = "" then "" else ": " ^ o.note)
                    (if Buffer.length trail = 0 then ""
                     else " | earlier tiers: " ^ Buffer.contents trail);
              }
          | None -> tiers (idx + 1) rest)
    in
    tiers 0 chain
end

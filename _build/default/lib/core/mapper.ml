(* The common mapper interface.

   Every technique in the framework — one per cell of Table I — is a
   value of [t]: a named, classified function from problem to (maybe)
   mapping.  [run] wraps the raw algorithm with the independent
   validator so an invalid mapping is reported as a failure, never as a
   success. *)

module Rng = Ocgra_util.Rng

type outcome = {
  mapping : Mapping.t option;
  proven_optimal : bool; (* exact method proved II optimal within budget *)
  attempts : int; (* IIs tried, restarts, ... (method-specific) *)
  elapsed_s : float;
  note : string;
}

type t = {
  name : string;
  citation : string; (* representative papers from the survey *)
  scope : Taxonomy.scope;
  approach : Taxonomy.approach;
  map : Problem.t -> Rng.t -> outcome;
}

let make ~name ~citation ~scope ~approach map = { name; citation; scope; approach; map }

let no_mapping ?(note = "") ~attempts ~elapsed_s () =
  { mapping = None; proven_optimal = false; attempts; elapsed_s; note }

(* Run a mapper and validate its output; invalid results are demoted to
   failures with the violations in [note]. *)
let run (mapper : t) ?(seed = 42) (p : Problem.t) =
  let rng = Rng.create seed in
  let t0 = Sys.time () in
  let outcome = mapper.map p rng in
  let elapsed_s = Sys.time () -. t0 in
  match outcome.mapping with
  | None -> { outcome with elapsed_s }
  | Some m -> (
      match Check.validate p m with
      | [] -> { outcome with elapsed_s }
      | violations ->
          {
            mapping = None;
            proven_optimal = false;
            attempts = outcome.attempts;
            elapsed_s;
            note =
              Printf.sprintf "INVALID mapping produced by %s: %s" mapper.name
                (String.concat " | " violations);
          })

lib/core/mii.ml: Cgra Dfg Fun List Ocgra_arch Ocgra_dfg Op Pe

lib/core/mapping.mli: Ocgra_arch Ocgra_dfg

lib/core/taxonomy.mli:

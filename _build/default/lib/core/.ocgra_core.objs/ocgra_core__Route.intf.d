lib/core/route.mli: Mapping Occupancy Ocgra_arch

lib/core/check.mli: Mapping Problem

lib/core/mapper.ml: Buffer Check Deadline List Mapping Ocgra_util Option Printf Problem String Taxonomy

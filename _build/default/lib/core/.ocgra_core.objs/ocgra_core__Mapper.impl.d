lib/core/mapper.ml: Check Mapping Ocgra_util Printf Problem String Sys Taxonomy

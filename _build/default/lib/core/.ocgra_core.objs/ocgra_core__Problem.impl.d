lib/core/problem.ml: Cgra Dfg Ocgra_arch Ocgra_dfg Printf

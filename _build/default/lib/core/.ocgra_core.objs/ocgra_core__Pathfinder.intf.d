lib/core/pathfinder.mli: Mapping Problem

lib/core/occupancy.mli: Mapping Ocgra_arch

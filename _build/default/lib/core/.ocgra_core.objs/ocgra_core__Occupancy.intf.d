lib/core/occupancy.mli: Mapping

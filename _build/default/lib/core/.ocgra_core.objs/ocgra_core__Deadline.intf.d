lib/core/deadline.mli:

lib/core/mapper.mli: Deadline Mapping Ocgra_util Problem Taxonomy

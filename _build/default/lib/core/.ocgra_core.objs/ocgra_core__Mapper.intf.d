lib/core/mapper.mli: Mapping Ocgra_util Problem Taxonomy

lib/core/mii.mli: Ocgra_arch Ocgra_dfg

lib/core/taxonomy.ml: Printf

lib/core/pathfinder.ml: Array Cgra Check Dfg Hashtbl List Mapping Occupancy Ocgra_arch Ocgra_dfg Op Option Problem Route

lib/core/route.ml: Array Cgra List Mapping Occupancy Ocgra_arch

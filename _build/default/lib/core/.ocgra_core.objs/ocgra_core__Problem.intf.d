lib/core/problem.mli: Ocgra_arch Ocgra_dfg

lib/core/cost.ml: Array Cgra Hashtbl List Mapping Ocgra_arch Printf Problem

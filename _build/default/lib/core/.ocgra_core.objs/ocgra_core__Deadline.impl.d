lib/core/deadline.ml: Unix

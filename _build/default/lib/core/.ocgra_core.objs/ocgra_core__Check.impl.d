lib/core/check.ml: Array Cgra Dfg List Mapping Ocgra_arch Ocgra_dfg Op Pe Printf Problem String

lib/core/contexts.ml: Array Cgra Context Dfg Hashtbl List Mapping Ocgra_arch Ocgra_dfg Op Pe Problem

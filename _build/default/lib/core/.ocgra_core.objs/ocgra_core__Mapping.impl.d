lib/core/mapping.ml: Array Buffer List Ocgra_arch Ocgra_dfg Ocgra_util Printf String

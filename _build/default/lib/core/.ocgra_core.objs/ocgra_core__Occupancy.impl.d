lib/core/occupancy.ml: Array List Mapping

lib/core/occupancy.ml: Array List Mapping Ocgra_arch

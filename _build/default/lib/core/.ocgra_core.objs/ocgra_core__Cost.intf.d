lib/core/cost.mli: Mapping Problem

lib/core/contexts.mli: Mapping Ocgra_arch Problem

(** Configuration generation: a valid mapping becomes the II context
    words of Fig. 2c — opcode, operand mux selects, RF write-enables —
    the hardware/software contract the paper highlights. *)

type build = {
  contexts : Ocgra_arch.Context.t array;  (** one context per II cycle *)
  dict : Ocgra_arch.Context.Dict.t;  (** stream / array name interning *)
}

val of_mapping : Problem.t -> Mapping.t -> build

(** Raw 53-bit words: [.(cycle).(pe)]. *)
val encode : build -> int64 array array

val to_string : Problem.t -> build -> string

(* Wall-clock budgets for mapping runs.

   A deadline is an absolute expiry instant (or none).  Engines receive
   it as a cheap [should_stop : unit -> bool] polling hook; mappers
   check it between restarts / II iterations.  Wall clock, not CPU
   time, so a stuck solver is bounded even when it sleeps or pages. *)

type t = No_deadline | Expires_at of float

let none = No_deadline
let after ~seconds = Expires_at (Unix.gettimeofday () +. seconds)
let of_seconds = function None -> No_deadline | Some s -> after ~seconds:s

let expired = function
  | No_deadline -> false
  | Expires_at e -> Unix.gettimeofday () > e

let remaining_s = function
  | No_deadline -> None
  | Expires_at e -> Some (max 0.0 (e -. Unix.gettimeofday ()))

let should_stop t () = expired t
let now () = Unix.gettimeofday ()

(** The classification of the survey's Table I: mapping scope x
    solving technique.  Every mapper registers under one cell. *)

type scope = Spatial_mapping | Temporal_mapping | Binding_only | Scheduling_only

type approach =
  | Heuristic
  | Meta_population of string  (** GA, QEA *)
  | Meta_local of string  (** SA *)
  | Exact_ilp
  | Exact_bb
  | Exact_cp
  | Exact_sat
  | Exact_smt

val scope_to_string : scope -> string
val approach_to_string : approach -> string

(** The four technique columns of Table I. *)
type column = Col_heuristics | Col_metaheuristics | Col_ilp_bb | Col_csp

val column_of_approach : approach -> column
val column_to_string : column -> string

(** Exact methods can prove optimality; heuristics cannot. *)
val is_exact : approach -> bool

val all_scopes : scope list
val all_columns : column list

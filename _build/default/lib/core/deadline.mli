(** Wall-clock budgets for mapping runs.

    Built on [Unix.gettimeofday] (portable, no signals/threads): the
    engines poll [should_stop] at checkpoints, so expiry surfaces as a
    graceful "no mapping / unknown" rather than an interrupt. *)

type t

(** Never expires. *)
val none : t

(** Expires [seconds] of wall clock from now. *)
val after : seconds:float -> t

(** [None] -> {!none}, [Some s] -> {!after} [s]. *)
val of_seconds : float option -> t

val expired : t -> bool

(** Seconds left (clamped at 0), or [None] for {!none}. *)
val remaining_s : t -> float option

(** Polling hook to hand to an engine. *)
val should_stop : t -> unit -> bool

(** Current wall-clock time, for elapsed measurements. *)
val now : unit -> float

(** The independent mapping validator: recomputes every resource and
    timing constraint from scratch, sharing no state with the router,
    so mapper bugs surface as violations instead of silently wrong
    "valid" mappings.  [Mapper.run] passes every mapper's output
    through this. *)

type violation = string

(** Empty list = valid. Checks: II bounds against the problem kind;
    binding shape, ranges and PE capability; FU-slot exclusivity modulo
    II across ops and route hops; register-file capacity per modulo
    slot; per-edge route well-formedness (hop adjacency, hold locality,
    exact timing against the consumer's read cycle). *)
val validate : Problem.t -> Mapping.t -> violation list

val is_valid : Problem.t -> Mapping.t -> bool

(** Quality metrics of a valid mapping: II first (the field's figure of
    merit), then schedule length, routing volume and utilization. *)

type t = {
  ii : int;
  schedule_length : int;
  route_hops : int;
  hold_cycles : int;
  fu_utilization : float;  (** used FU slots / (PE count * II) *)
  ops : int;
}

val of_mapping : Problem.t -> Mapping.t -> t

(** Steady-state iterations per cycle (1 / II). *)
val throughput : t -> float

val to_string : t -> string

(* The classification of Table I: mapping scope x solving technique.

   Every mapper registers itself under one cell of this taxonomy; the
   bench regenerates Table I from these tags next to the bibliographic
   version from the survey dataset. *)

type scope =
  | Spatial_mapping
  | Temporal_mapping
  | Binding_only
  | Scheduling_only

type approach =
  | Heuristic
  | Meta_population of string (* GA, QEA *)
  | Meta_local of string (* SA *)
  | Exact_ilp
  | Exact_bb
  | Exact_cp
  | Exact_sat
  | Exact_smt

let scope_to_string = function
  | Spatial_mapping -> "Spatial mapping"
  | Temporal_mapping -> "Temporal mapping"
  | Binding_only -> "Binding"
  | Scheduling_only -> "Scheduling"

let approach_to_string = function
  | Heuristic -> "Heuristics"
  | Meta_population s -> Printf.sprintf "Population-based (%s)" s
  | Meta_local s -> Printf.sprintf "Local search (%s)" s
  | Exact_ilp -> "ILP"
  | Exact_bb -> "B&B"
  | Exact_cp -> "CP"
  | Exact_sat -> "SAT"
  | Exact_smt -> "SMT"

(* The four technique columns of Table I. *)
type column = Col_heuristics | Col_metaheuristics | Col_ilp_bb | Col_csp

let column_of_approach = function
  | Heuristic -> Col_heuristics
  | Meta_population _ | Meta_local _ -> Col_metaheuristics
  | Exact_ilp | Exact_bb -> Col_ilp_bb
  | Exact_cp | Exact_sat | Exact_smt -> Col_csp

let column_to_string = function
  | Col_heuristics -> "Heuristics"
  | Col_metaheuristics -> "Meta-heuristics"
  | Col_ilp_bb -> "ILP/B&B"
  | Col_csp -> "CSP"

let is_exact = function
  | Exact_ilp | Exact_bb | Exact_cp | Exact_sat | Exact_smt -> true
  | Heuristic | Meta_population _ | Meta_local _ -> false

let all_scopes = [ Spatial_mapping; Temporal_mapping; Binding_only; Scheduling_only ]
let all_columns = [ Col_heuristics; Col_metaheuristics; Col_ilp_bb; Col_csp ]

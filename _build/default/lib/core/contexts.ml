(* Configuration generation: a valid mapping becomes the II context
   words that the paper calls the hardware/software contract (Fig. 2c).

   Every FU slot of the modulo schedule becomes one PE slot in one of
   the II contexts: opcode, operand mux selects (neighbour index, self,
   RF entry, immediate), RF write enable for values that a Hold parks
   in the register file.  RF entries are logical indices into a
   rotating register file ([29]), so one index per hold suffices. *)

open Ocgra_dfg
open Ocgra_arch

type build = {
  contexts : Context.t array; (* ii contexts, each npe slots *)
  dict : Context.Dict.t;
}

let source_from (cgra : Cgra.t) ~consumer_pe ~from_pe ~in_rf ~rf_index =
  if in_rf then Context.Src_rf rf_index
  else if from_pe = consumer_pe then Context.Src_self
  else begin
    let rec find i = function
      | [] -> invalid_arg "Contexts: producer not adjacent to consumer"
      | q :: _ when q = from_pe -> i
      | _ :: rest -> find (i + 1) rest
    in
    Context.Src_dir (find 0 (Cgra.neighbours cgra consumer_pe))
  end

let of_mapping (p : Problem.t) (m : Mapping.t) =
  let dfg = p.dfg and cgra = p.cgra in
  let npe = Cgra.pe_count cgra in
  let dict = Context.Dict.create () in
  let contexts = Array.init m.ii (fun _ -> Array.make npe Context.nop_slot) in
  let slot_of time = ((time mod m.ii) + m.ii) mod m.ii in
  (* assign a logical rotating-RF index to every hold, per PE *)
  let rf_counter = Array.make npe 0 in
  let hold_index = Hashtbl.create 16 in
  (* keyed by (edge, pe, from_) *)
  Array.iteri
    (fun e route ->
      List.iter
        (function
          | Mapping.Hold { pe; from_; _ } ->
              let size = max 1 (Cgra.pe cgra pe).Pe.rf_size in
              Hashtbl.replace hold_index (e, pe, from_) (rf_counter.(pe) mod size);
              rf_counter.(pe) <- rf_counter.(pe) + 1
          | Mapping.Hop _ -> ())
        route)
    m.routes;
  (* location of a value along its route just before a given hop time,
     and at the end for the consumer *)
  let edges = Array.of_list (Dfg.edges dfg) in
  let route_state e upto_time =
    (* state (pe, in_rf, rf_index) of edge e's value readable at
       cycle [upto_time] (exclusive of a hop occurring at that time) *)
    let edge = edges.(e) in
    let src_pe, _ = m.binding.(edge.src) in
    let cur = ref src_pe and in_rf = ref false and rf_idx = ref 0 in
    List.iter
      (fun step ->
        match step with
        | Mapping.Hop { pe; time } -> if time < upto_time then begin
            cur := pe;
            in_rf := false
          end
        | Mapping.Hold { pe; from_; until } ->
            if from_ < upto_time && until >= upto_time then begin
              cur := pe;
              in_rf := true;
              rf_idx := (try Hashtbl.find hold_index (e, pe, from_) with Not_found -> 0)
            end)
      m.routes.(e);
    (!cur, !in_rf, !rf_idx)
  in
  (* 1. op slots *)
  Array.iteri
    (fun v (pe, time) ->
      let op = Dfg.op dfg v in
      let srcs = Array.make 3 Context.Src_none in
      List.iter
        (fun (edge : Dfg.edge) ->
          let e =
            let rec find i = function
              | [] -> invalid_arg "Contexts: edge not found"
              | (x : Dfg.edge) :: rest ->
                  if x.src = edge.src && x.dst = edge.dst && x.port = edge.port && x.dist = edge.dist
                  then i
                  else find (i + 1) rest
            in
            find 0 (Dfg.edges dfg)
          in
          let consume_at = time + (edge.dist * m.ii) in
          let from_pe, in_rf, rf_index = route_state e consume_at in
          srcs.(edge.port) <- source_from cgra ~consumer_pe:pe ~from_pe ~in_rf ~rf_index)
        (Dfg.in_edges dfg v);
      contexts.(slot_of time).(pe) <- Context.slot_of_op dict op srcs)
    m.binding;
  (* 2. route hops *)
  Array.iteri
    (fun e route ->
      List.iter
        (function
          | Mapping.Hop { pe; time } ->
              let from_pe, in_rf, rf_index = route_state e time in
              let srcs =
                [| source_from cgra ~consumer_pe:pe ~from_pe ~in_rf ~rf_index;
                   Context.Src_none; Context.Src_none |]
              in
              contexts.(slot_of time).(pe) <- Context.slot_of_op dict Op.Route srcs
          | Mapping.Hold _ -> ())
        route)
    m.routes;
  (* 3. RF write enables: the instruction executing at (pe, from_) also
     writes its result into the RF *)
  Array.iteri
    (fun e route ->
      ignore e;
      List.iter
        (function
          | Mapping.Hold { pe; from_; _ } ->
              let s = contexts.(slot_of from_).(pe) in
              let waddr = try Hashtbl.find hold_index (e, pe, from_) with Not_found -> 0 in
              contexts.(slot_of from_).(pe) <- { s with Context.rf_we = true; rf_waddr = waddr }
          | Mapping.Hop _ -> ())
        route)
    m.routes;
  { contexts; dict }

(* Raw bit encoding of the whole context memory. *)
let encode (b : build) = Array.map (Array.map Context.encode_slot) b.contexts

let to_string (p : Problem.t) (b : build) = Context.pp_contexts b.contexts p.cgra

(** Router over the time-expanded modulo routing resource graph (MRRG):
    a layered DP over (PE, in-RF?) states, one cycle per layer, with
    caller-supplied resource pricing.

    Setting [ii = 1] drops structurally illegal transitions (self-hops
    and RF holds both need two FU uses of one PE, impossible at II = 1),
    making II = 1 routing exact-length disjoint paths — the systolic
    regime. *)

type cost_model = {
  fu_cost : int -> int -> int option;
      (** [fu_cost pe time]: [None] forbids the FU slot, [Some c]
          prices a routing hop on it *)
  rf_cost : int -> int -> int option;  (** same for holding in the RF *)
}

(** Strict pricing against an occupancy: occupied resources forbidden. *)
val strict : Ocgra_arch.Cgra.t -> Occupancy.t -> cost_model

(** Congestion pricing: overuse allowed but expensive (for negotiated
    routing and annealing costs). *)
val congestion : ?alpha:int -> Ocgra_arch.Cgra.t -> Occupancy.t -> cost_model

(** The DP cost field of one search, reusable for many goals (the
    edge-centric mapper reads it to choose consumer slots). *)
type field

val state_cost : field -> layer:int -> pe:int -> in_rf:bool -> int

(** Build the field from a value readable on [src_pe] at cycle [avail],
    out to [layers] further cycles. *)
val explore : ?ii:int -> Ocgra_arch.Cgra.t -> cost_model -> src_pe:int -> avail:int -> layers:int -> field

(** Cheapest final state from which a consumer on [dst_pe] can read at
    layer [layer] (a neighbour's output register or its own RF). *)
val goal_state : field -> dst_pe:int -> layer:int -> (int * int) option

(** Extract the steps reaching [dst_pe] at cycle [consume_at]. *)
val extract : field -> dst_pe:int -> consume_at:int -> (Mapping.route * int) option

(** One-shot: cheapest route for a value readable at [avail] on
    [src_pe], consumed at [consume_at] on [dst_pe]. *)
val find :
  ?ii:int ->
  Ocgra_arch.Cgra.t ->
  cost_model ->
  src_pe:int ->
  avail:int ->
  dst_pe:int ->
  consume_at:int ->
  (Mapping.route * int) option

(** Route a DFG edge between two bound endpoints ([lat] = producer
    latency; a distance-d edge is consumed d iterations later). *)
val route_edge :
  Ocgra_arch.Cgra.t ->
  cost_model ->
  ii:int ->
  src:int * int ->
  dst:int * int ->
  lat:int ->
  dist:int ->
  (Mapping.route * int) option

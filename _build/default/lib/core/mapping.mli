(** A mapping: the spatial and temporal coordinates of every node and
    arc of the DFG.

    Timing model (shared by router, checker and simulator): an op
    issued at (p, t) reads operands during cycle t — from a
    neighbour's or its own output register written at end of t-1, from
    its own RF, or from the immediate field — and its result is
    readable from t + latency. *)

type step =
  | Hop of { pe : int; time : int }
      (** a Route op on [pe] at absolute cycle [time]: reads the value
          from the current holder and re-emits it (occupies an FU
          slot) *)
  | Hold of { pe : int; from_ : int; until : int }
      (** an RF entry on [pe] keeps the value: written at the end of
          cycle [from_], read during cycle [until] (occupies one RF
          entry per covered cycle, counted per modulo slot) *)

type route = step list

type t = {
  ii : int;  (** 1 for spatial mappings *)
  binding : (int * int) array;  (** node id -> (pe, cycle) *)
  routes : route array;  (** one per DFG edge, in [Dfg.edges] order *)
}

val pe_of : t -> int -> int
val time_of : t -> int -> int

(** Latest scheduled cycle + 1. *)
val schedule_length : t -> int

val route_hops : route -> int
val route_hold_cycles : route -> int
val total_route_hops : t -> int
val total_hold_cycles : t -> int
val step_to_string : step -> string

(** The modulo-schedule grid of Fig. 3: rows = slots 0..II-1, columns =
    PEs, cells = ops (with their absolute cycle). *)
val to_grid : t -> Ocgra_dfg.Dfg.t -> Ocgra_arch.Cgra.t -> string

val to_string : t -> Ocgra_dfg.Dfg.t -> string
